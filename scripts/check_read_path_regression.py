#!/usr/bin/env python3
"""Gate the latch-free read path against the committed baseline.

Usage: check_read_path_regression.py <fresh.json> <committed.json>

Raw Mops/s from a CI runner are not comparable to the machine that recorded
the committed BENCH_read_path.json, so the gate compares the one number that
machine speed divides out of: hot_hit/speedup, the ratio of optimistic to
S-lock throughput measured back-to-back in the same process. A real
regression in the optimistic path (extra fallbacks, a reintroduced lock, a
lost fast path) drags that ratio down wherever it runs. The run fails if the
fresh ratio is below 90% of the committed one (the ">10% regression" gate),
or if the fresh run reports a fallback on a purely resident workload.
"""

import json
import sys

TOLERANCE = 0.90


def metric(doc, name):
    for m in doc["metrics"]:
        if m["name"] == name:
            return float(m["value"])
    raise SystemExit(f"metric {name!r} missing from {doc.get('bench')}")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        committed = json.load(f)

    fresh_ratio = metric(fresh, "hot_hit/speedup")
    committed_ratio = metric(committed, "hot_hit/speedup")
    fallbacks = metric(fresh, "hot_hit/fallbacks")

    floor = committed_ratio * TOLERANCE
    print(f"hot_hit/speedup: fresh={fresh_ratio:.3f} committed={committed_ratio:.3f} "
          f"floor={floor:.3f} fallbacks={fallbacks:.0f}")

    if fallbacks > 0:
        raise SystemExit("FAIL: optimistic reads fell back on a resident "
                         "read-only workload; the fast path is not engaging")
    if fresh_ratio < floor:
        raise SystemExit(f"FAIL: hot-hit speedup {fresh_ratio:.3f} regressed "
                         f"more than 10% below committed {committed_ratio:.3f}")
    print("read-path gate ok")


if __name__ == "__main__":
    main()
