#!/usr/bin/env python3
"""Gate reorg-induced tail latency against the committed YCSB baseline.

Usage: check_ycsb_regression.py <fresh.json> <committed.json>

Raw latencies from a CI runner are not comparable to the machine that
recorded the committed BENCH_ycsb.json, so the gate compares the one number
machine speed divides out of: p99_active / p99_quiesced per (mix, partitions)
cell — how much the reorganizer's presence stretches the p99 tail, with both
phases measured back-to-back in the same process on the same machine. A real
isolation regression (reorg holding locks too long, step-aside not yielding,
executor lanes blocked on reorg work) inflates that ratio wherever it runs.

The threshold is deliberately generous (3x the committed ratio, and ratios
under 2.0 always pass): CI runners are 1-2 CPU machines where a background
reorganizer legitimately steals half the machine, and the quiesced p99 on a
fast cell is a few microseconds, so small absolute wobbles produce large
ratio wobbles. The gate exists to catch order-of-magnitude isolation
failures, not to police noise. Any cell with op failures fails outright.
"""

import json
import sys

RATIO_SLACK = 3.0    # fresh ratio may be up to 3x the committed ratio
ALWAYS_OK = 2.0      # a tail stretch under 2x passes regardless of baseline

MIXES = ("read_heavy", "rmw", "scan")


def metrics(doc):
    return {m["name"]: float(m["value"]) for m in doc["metrics"]}


def cells(doc):
    """Yield (mix, P) cells present in the document."""
    names = metrics(doc)
    out = []
    for mix in MIXES:
        for name in names:
            if name.startswith(mix + ".p") and name.endswith(".active.p99_us"):
                part = name[len(mix) + 1:-len(".active.p99_us")]
                out.append((mix, part))
    return sorted(set(out))


def ratio(names, mix, part):
    active = names[f"{mix}.{part}.active.p99_us"]
    quiesced = names[f"{mix}.{part}.quiesced.p99_us"]
    if quiesced <= 0:
        raise SystemExit(f"FAIL: nonpositive quiesced p99 in {mix}.{part}")
    return active / quiesced


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        committed = json.load(f)

    fresh_names = metrics(fresh)
    committed_names = metrics(committed)
    fresh_cells = cells(fresh)
    if not fresh_cells:
        raise SystemExit("FAIL: no (mix, partitions) cells in fresh run")

    failures = []
    for mix, part in fresh_cells:
        for phase in ("quiesced", "active"):
            ops_failed = fresh_names.get(f"{mix}.{part}.{phase}.failures", 0)
            if ops_failed > 0:
                failures.append(f"{mix}.{part}.{phase}: {ops_failed:.0f} "
                                "op failures")

        fresh_ratio = ratio(fresh_names, mix, part)
        key = f"{mix}.{part}.active.p99_us"
        if key not in committed_names:
            print(f"{mix}.{part}: tail stretch {fresh_ratio:.2f}x "
                  "(no committed baseline, absolute cap only)")
            ceiling = None
        else:
            committed_ratio = ratio(committed_names, mix, part)
            ceiling = committed_ratio * RATIO_SLACK
            print(f"{mix}.{part}: tail stretch fresh={fresh_ratio:.2f}x "
                  f"committed={committed_ratio:.2f}x ceiling={ceiling:.2f}x")
        if fresh_ratio <= ALWAYS_OK:
            continue
        if ceiling is not None and fresh_ratio > ceiling:
            failures.append(f"{mix}.{part}: p99 tail stretch "
                            f"{fresh_ratio:.2f}x exceeds {ceiling:.2f}x "
                            "(3x the committed run)")

    if failures:
        raise SystemExit("FAIL:\n  " + "\n  ".join(failures))
    print("ycsb reorg-isolation gate ok")


if __name__ == "__main__":
    main()
