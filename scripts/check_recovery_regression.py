#!/usr/bin/env python3
"""Gate segmented-WAL redo throughput against the committed baseline.

Usage: check_recovery_regression.py <fresh.json> <committed.json>

Raw redo MB/s from a CI runner are not comparable to the machine that
recorded the committed BENCH_recovery.json, so the gate compares the number
that machine speed divides out of: p6/redo_vs_scan, the ratio of recovery
redo throughput to a bare LogManager::ReadAll scan of the same log measured
back-to-back in the same process. A real regression in the redo path (a
serialized stage, per-record overhead, a lost batch) drags that ratio down
wherever it runs. The run fails if the fresh ratio is below 75% of the
committed one (the ratio itself jitters ~10-15% run to run on small --quick
volumes, so the floor is looser than the read-path gate's), or if the fresh
run redid zero records — a bench that recovers nothing gates nothing.
"""

import json
import sys

TOLERANCE = 0.75


def metric(doc, name):
    for m in doc["metrics"]:
        if m["name"] == name:
            return float(m["value"])
    raise SystemExit(f"metric {name!r} missing from {doc.get('bench')}")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        committed = json.load(f)

    fresh_ratio = metric(fresh, "p6/redo_vs_scan")
    committed_ratio = metric(committed, "p6/redo_vs_scan")
    redone = metric(fresh, "p6/records_redone")
    segments = metric(fresh, "p6/segments_scanned")

    floor = committed_ratio * TOLERANCE
    print(f"p6/redo_vs_scan: fresh={fresh_ratio:.3f} "
          f"committed={committed_ratio:.3f} floor={floor:.3f} "
          f"records_redone={redone:.0f} segments={segments:.0f}")

    if redone <= 0:
        raise SystemExit("FAIL: the crashed image left no redo work; the "
                         "bench is not exercising recovery")
    if segments < 2:
        raise SystemExit("FAIL: redo covered fewer than 2 segments; the "
                         "bench is not crossing segment boundaries")
    if fresh_ratio < floor:
        raise SystemExit(f"FAIL: redo/scan ratio {fresh_ratio:.3f} regressed "
                         f"more than 25% below committed "
                         f"{committed_ratio:.3f}")
    print("recovery gate ok")


if __name__ == "__main__":
    main()
