// PartitionedDatabase: router totality, cross-partition scan merge against a
// single shadow map, partitions=1 equivalence with a plain Database, deadline
// admission, and the concurrent-reorg cap — parameterized over partition
// counts {1, 4, 16}.

#include "src/db/partitioned_db.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/storage/env.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace soreorg {
namespace {

PartitionedDBOptions SmallOptions(size_t partitions) {
  PartitionedDBOptions o;
  o.partitions = partitions;
  o.base.buffer_pool_pages = 256;
  o.executor.workers = 2;
  return o;
}

std::string Val(uint64_t i) { return "v" + std::to_string(i * 7); }

class PartitionedDbTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionedDbTest,
                         ::testing::Values(1u, 4u, 16u));

// The router is a function: deterministic, in range, and the stored record
// lands in exactly the routed partition — no other partition sees the key.
TEST_P(PartitionedDbTest, EveryKeyRoutesToExactlyOnePartition) {
  const size_t kParts = GetParam();
  MemEnv env;
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, SmallOptions(kParts), &pdb)
                  .ok());

  std::vector<std::string> keys;
  for (uint64_t i = 0; i < 200; ++i) keys.push_back(EncodeU64Key(i * 10));
  keys.push_back("");  // empty key routes too
  keys.push_back("plain-string-key");
  keys.push_back(std::string("embedded\0null", 13));

  std::set<size_t> used;
  for (const std::string& k : keys) {
    size_t p = pdb->PartitionOf(k);
    ASSERT_LT(p, kParts);
    ASSERT_EQ(p, pdb->PartitionOf(k)) << "router must be deterministic";
    used.insert(p);
    if (!k.empty()) {
      ASSERT_TRUE(pdb->Put(k, "x" + k).ok());
    }
  }
  if (kParts > 1) {
    EXPECT_GT(used.size(), 1u) << "hash router should spread 200 keys";
  }

  for (const std::string& k : keys) {
    if (k.empty()) continue;
    size_t home = pdb->PartitionOf(k);
    for (size_t p = 0; p < kParts; ++p) {
      std::string v;
      Status s = pdb->partition(p)->Get(k, &v);
      if (p == home) {
        ASSERT_TRUE(s.ok()) << "key missing from its routed partition";
        EXPECT_EQ("x" + k, v);
      } else {
        EXPECT_TRUE(s.IsNotFound())
            << "key " << k << " leaked into partition " << p;
      }
    }
  }
}

// Merged Scan == a single-tree shadow map: globally sorted, duplicate-free,
// same key/value sequence, over point lookups, bounded ranges, unbounded
// ranges, and early callback stop.
TEST_P(PartitionedDbTest, ScanMergeMatchesShadowMap) {
  const size_t kParts = GetParam();
  MemEnv env;
  PartitionedDBOptions opts = SmallOptions(kParts);
  opts.scan_batch = 7;  // force multi-batch refills mid-merge
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, opts, &pdb).ok());

  std::map<std::string, std::string> shadow;
  Random rng(1234);
  for (int i = 0; i < 600; ++i) {
    uint64_t k = rng.Uniform(4000);
    std::string key = EncodeU64Key(k);
    std::string value = Val(k) + "-" + std::to_string(i);
    if (shadow.count(key)) {
      ASSERT_TRUE(pdb->Update(key, value).ok());
    } else {
      ASSERT_TRUE(pdb->Put(key, value).ok());
    }
    shadow[key] = value;
  }
  // Deletions: the resume-key skip must not drop the successor of a deleted
  // cursor key.
  for (int i = 0; i < 150; ++i) {
    uint64_t k = rng.Uniform(4000);
    std::string key = EncodeU64Key(k);
    Status s = pdb->Delete(key);
    ASSERT_TRUE(s.ok() || s.IsNotFound());
    shadow.erase(key);
  }

  auto check_range = [&](const Slice& lo, const Slice& hi) {
    std::vector<std::pair<std::string, std::string>> got;
    ASSERT_TRUE(pdb->Scan(lo, hi,
                          [&](const Slice& k, const Slice& v) {
                            got.emplace_back(k.ToString(), v.ToString());
                            return true;
                          })
                    .ok());
    std::vector<std::pair<std::string, std::string>> want;
    for (const auto& [k, v] : shadow) {
      if (!lo.empty() && Slice(k).compare(lo) < 0) continue;
      if (!hi.empty() && Slice(k).compare(hi) > 0) continue;
      want.emplace_back(k, v);
    }
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].first, got[i].first);
      EXPECT_EQ(want[i].second, got[i].second);
    }
    // Globally sorted and duplicate-free by construction of `want`, but
    // assert on `got` directly for clarity.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LT(got[i - 1].first, got[i].first);
    }
  };

  check_range(Slice(), Slice());  // full scan
  check_range(EncodeU64Key(500), EncodeU64Key(1500));
  check_range(EncodeU64Key(0), EncodeU64Key(10));
  check_range(EncodeU64Key(3990), Slice());       // tail
  check_range(EncodeU64Key(9999999), Slice());    // empty result

  // Early stop: exactly the first 10 records of the shadow map.
  std::vector<std::string> first10;
  ASSERT_TRUE(pdb->Scan(Slice(), Slice(),
                        [&](const Slice& k, const Slice&) {
                          first10.push_back(k.ToString());
                          return first10.size() < 10;
                        })
                  .ok());
  ASSERT_EQ(10u, first10.size());
  auto it = shadow.begin();
  for (size_t i = 0; i < 10; ++i, ++it) EXPECT_EQ(it->first, first10[i]);
}

// Range partitioning: same merge contract, boundaries honored.
TEST(PartitionedDbRangeTest, RangeSchemeRoutesByBoundaryAndScansInOrder) {
  MemEnv env;
  PartitionedDBOptions opts = SmallOptions(4);
  opts.scheme = PartitioningScheme::kRange;
  opts.range_boundaries = {EncodeU64Key(1000), EncodeU64Key(2000),
                           EncodeU64Key(3000)};
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, opts, &pdb).ok());

  EXPECT_EQ(0u, pdb->PartitionOf(EncodeU64Key(0)));
  EXPECT_EQ(0u, pdb->PartitionOf(EncodeU64Key(999)));
  EXPECT_EQ(1u, pdb->PartitionOf(EncodeU64Key(1000)));  // boundary inclusive
  EXPECT_EQ(2u, pdb->PartitionOf(EncodeU64Key(2500)));
  EXPECT_EQ(3u, pdb->PartitionOf(EncodeU64Key(3000)));
  EXPECT_EQ(3u, pdb->PartitionOf(EncodeU64Key(999999)));

  std::map<std::string, std::string> shadow;
  for (uint64_t k = 0; k < 4000; k += 37) {
    ASSERT_TRUE(pdb->Put(EncodeU64Key(k), Val(k)).ok());
    shadow[EncodeU64Key(k)] = Val(k);
  }
  std::vector<std::string> got;
  ASSERT_TRUE(pdb->Scan(EncodeU64Key(500), EncodeU64Key(3500),
                        [&](const Slice& k, const Slice&) {
                          got.push_back(k.ToString());
                          return true;
                        })
                  .ok());
  std::vector<std::string> want;
  for (const auto& [k, v] : shadow) {
    if (k >= EncodeU64Key(500) && k <= EncodeU64Key(3500)) want.push_back(k);
  }
  EXPECT_EQ(want, got);

  // Misconfiguration is rejected, not mis-routed.
  PartitionedDBOptions bad = SmallOptions(4);
  bad.scheme = PartitioningScheme::kRange;
  bad.range_boundaries = {EncodeU64Key(5)};  // needs 3
  std::unique_ptr<PartitionedDatabase> none;
  EXPECT_TRUE(PartitionedDatabase::Open(&env, bad, &none)
                  .IsInvalidArgument());
}

// partitions=1: the serving layer in front of a single tree behaves exactly
// like the plain Database on the same op script — statuses, values, and scan
// sequences all identical.
TEST(PartitionedDbTestSingle, PartitionsOneMatchesPlainDatabase) {
  MemEnv plain_env, part_env;
  DatabaseOptions plain_opts;
  plain_opts.buffer_pool_pages = 256;
  std::unique_ptr<Database> plain;
  ASSERT_TRUE(Database::Open(&plain_env, plain_opts, &plain).ok());

  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(
      PartitionedDatabase::Open(&part_env, SmallOptions(1), &pdb).ok());

  Random rng(77);
  for (int i = 0; i < 1200; ++i) {
    uint64_t k = rng.Uniform(500);
    std::string key = EncodeU64Key(k);
    int dice = static_cast<int>(rng.Uniform(100));
    if (dice < 40) {
      Status a = plain->Put(key, Val(k));
      Status b = pdb->Put(key, Val(k));
      ASSERT_EQ(a.code(), b.code()) << "op " << i;
    } else if (dice < 55) {
      Status a = plain->Update(key, Val(k + 1));
      Status b = pdb->Update(key, Val(k + 1));
      ASSERT_EQ(a.code(), b.code()) << "op " << i;
    } else if (dice < 70) {
      Status a = plain->Delete(key);
      Status b = pdb->Delete(key);
      ASSERT_EQ(a.code(), b.code()) << "op " << i;
    } else if (dice < 90) {
      std::string va, vb;
      Status a = plain->Get(key, &va);
      Status b = pdb->Get(key, &vb);
      ASSERT_EQ(a.code(), b.code()) << "op " << i;
      if (a.ok()) {
        ASSERT_EQ(va, vb);
      }
    } else {
      std::vector<std::pair<std::string, std::string>> ra, rb;
      std::string hi = EncodeU64Key(k + 40);
      ASSERT_TRUE(plain->Scan(key, hi,
                              [&](const Slice& sk, const Slice& sv) {
                                ra.emplace_back(sk.ToString(), sv.ToString());
                                return true;
                              })
                      .ok());
      ASSERT_TRUE(pdb->Scan(key, hi,
                            [&](const Slice& sk, const Slice& sv) {
                              rb.emplace_back(sk.ToString(), sv.ToString());
                              return true;
                            })
                      .ok());
      ASSERT_EQ(ra, rb) << "op " << i;
    }
  }

  // Both reorganize; equivalence must survive the three passes too.
  ASSERT_TRUE(plain->Reorganize().ok());
  ASSERT_TRUE(pdb->ReorganizePartition(0).ok());
  std::vector<std::pair<std::string, std::string>> ra, rb;
  plain->Scan(Slice(), Slice(), [&](const Slice& k, const Slice& v) {
    ra.emplace_back(k.ToString(), v.ToString());
    return true;
  });
  pdb->Scan(Slice(), Slice(), [&](const Slice& k, const Slice& v) {
    rb.emplace_back(k.ToString(), v.ToString());
    return true;
  });
  EXPECT_EQ(ra, rb);
}

// Acceptance pin at the serving-layer level: a saturated bounded queue plus
// a per-op deadline surfaces TimedOut to the caller — no unbounded queueing,
// no hang.
TEST(PartitionedDbDeadlineTest, DeadlineReturnsTimedOutUnderSaturation) {
  MemEnv env;
  PartitionedDBOptions opts = SmallOptions(1);
  opts.executor.workers = 1;
  opts.executor.queue_capacity = 2;
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, opts, &pdb).ok());
  ASSERT_TRUE(pdb->Put(EncodeU64Key(1), "v").ok());

  // Park the single worker, then fill its queue to the bound.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  pdb->executor()->Submit(0, [&]() {
    std::unique_lock<std::mutex> lk(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lk, [&]() { return release; });
    return Status::OK();
  }, [](Status) {});
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&]() { return entered; });
  }
  for (int i = 0; i < 2; ++i) {
    pdb->executor()->Submit(0, []() { return Status::OK(); }, [](Status) {});
  }

  std::string v;
  Status s = pdb->Get(EncodeU64Key(1), &v, /*deadline_ms=*/40);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_GE(pdb->stats().executor.timed_out_queue_full, 1u);

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
    cv.notify_all();
  }
  // After the backlog drains the same op succeeds.
  Status ok = pdb->Get(EncodeU64Key(1), &v, /*deadline_ms=*/5000);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ("v", v);
}

TEST(PartitionedDbReorgTest, ReorganizeAllVisitsEveryPartitionUnderCap) {
  MemEnv env;
  PartitionedDBOptions opts = SmallOptions(4);
  opts.max_concurrent_reorgs = 2;
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, opts, &pdb).ok());

  std::vector<std::pair<std::string, std::string>> records;
  for (uint64_t i = 0; i < 8000; ++i) {
    records.emplace_back(EncodeU64Key(i * 10), Val(i));
  }
  ASSERT_TRUE(pdb->BulkLoad(records, /*leaf_fill=*/0.5).ok());

  ASSERT_TRUE(pdb->ReorganizeAll().ok());
  PartitionedDBStats st = pdb->stats();
  EXPECT_EQ(4u, st.reorgs_completed);
  EXPECT_LE(st.max_concurrent_reorgs_seen, 2u);
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(pdb->partition(p)->tree()->CheckConsistency().ok());
    EXPECT_GT(pdb->partition(p)->reorganizer()->stats().units, 0u)
        << "partition " << p << " was skipped";
  }

  // Round-robin: a second sweep still visits everything.
  ASSERT_TRUE(pdb->ReorganizeAll().ok());
  EXPECT_EQ(8u, pdb->stats().reorgs_completed);
}

TEST(PartitionedDbReorgTest, RmwRoundTripsThroughRoutedPartition) {
  MemEnv env;
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, SmallOptions(4), &pdb).ok());
  ASSERT_TRUE(pdb->Put(EncodeU64Key(5), "count:1").ok());
  ASSERT_TRUE(pdb->ReadModifyWrite(EncodeU64Key(5),
                                   [](const std::string& cur) {
                                     return cur + "+1";
                                   })
                  .ok());
  std::string v;
  ASSERT_TRUE(pdb->Get(EncodeU64Key(5), &v).ok());
  EXPECT_EQ("count:1+1", v);
  EXPECT_TRUE(
      pdb->ReadModifyWrite(EncodeU64Key(404), [](const std::string& c) {
            return c;
          }).IsNotFound());
}

}  // namespace
}  // namespace soreorg
