// Smith '90 (Tandem) baseline tests.

#include <atomic>
#include <thread>

#include "src/baseline/smith_reorg.h"
#include "tests/test_util.h"

namespace soreorg {
namespace {

class SmithTest : public DbFixture {
 protected:
  std::unique_ptr<SmithReorganizer> MakeSmith(SmithOptions opts = {}) {
    return std::make_unique<SmithReorganizer>(
        db_->tree(), db_->buffer_pool(), db_->log_manager(),
        db_->lock_manager(), db_->disk_manager(), db_->reorg_table(),
        db_->txn_manager(), opts);
  }

  std::vector<uint64_t> survivors_;
};

TEST_F(SmithTest, CompactsAndStaysConsistent) {
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.7, 10, 42,
                                 &survivors_)
                  .ok());
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());

  auto smith = MakeSmith();
  ASSERT_TRUE(smith->Run().ok());

  BTreeStats after;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after).ok());
  EXPECT_LT(after.leaf_pages, before.leaf_pages);
  EXPECT_GT(after.avg_leaf_fill, before.avg_leaf_fill);
  EXPECT_EQ(after.records, before.records);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(SmithTest, OneTransactionPerBlockOperation) {
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 2000, 64, 0.95, 0.7, 10, 7,
                                 &survivors_)
                  .ok());
  uint64_t commits_before = db_->txn_manager()->commits();
  auto smith = MakeSmith();
  ASSERT_TRUE(smith->Run().ok());
  uint64_t ops = smith->unit_stats().units;
  EXPECT_GT(ops, 0u);
  // Every block operation committed its own transaction.
  EXPECT_EQ(db_->txn_manager()->commits() - commits_before, ops);
  EXPECT_EQ(smith->stats().transactions, ops);
}

TEST_F(SmithTest, TwoBlockGranularityNeedsMoreUnitsThanPaperMethod) {
  // Same sparse tree, compaction only: Smith (2-block merges) must run
  // more units than the paper's d-page compaction.
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.75, 10, 21,
                                 &survivors_)
                  .ok());
  auto smith = MakeSmith(SmithOptions{.target_fill = 0.9,
                                      .do_ordering_pass = false});
  ASSERT_TRUE(smith->Run().ok());
  uint64_t smith_units = smith->unit_stats().units;

  // Rebuild the identical tree and run the paper's pass 1.
  OpenDb(DatabaseOptions());
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.75, 10, 21,
                                 &survivors_)
                  .ok());
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  uint64_t paper_units = db_->reorganizer()->stats().units;

  EXPECT_GT(smith_units, paper_units);
}

TEST_F(SmithTest, WholeFileLockBlocksReadersDuringOperations) {
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.7, 10, 5,
                                 &survivors_)
                  .ok());
  // While Smith holds the whole-tree X lock inside a unit, a reader's IS
  // tree lock cannot be granted. We verify the mechanism directly.
  ASSERT_TRUE(db_->lock_manager()
                  ->Lock(kReorgTxnId, TreeLock(db_->tree()->incarnation()),
                         LockMode::kX)
                  .ok());
  TxnId reader = db_->tree()->NewEphemeralId();
  EXPECT_TRUE(db_->lock_manager()
                  ->TryLock(reader, TreeLock(db_->tree()->incarnation()),
                            LockMode::kIS)
                  .IsBusy());
  db_->lock_manager()->ReleaseAll(kReorgTxnId);

  // And the paper's reorganizer (IX tree lock) does NOT block that reader.
  ASSERT_TRUE(db_->lock_manager()
                  ->Lock(kReorgTxnId, TreeLock(db_->tree()->incarnation()),
                         LockMode::kIX)
                  .ok());
  EXPECT_TRUE(db_->lock_manager()
                  ->TryLock(reader, TreeLock(db_->tree()->incarnation()),
                            LockMode::kIS)
                  .ok());
  db_->lock_manager()->ReleaseAll(kReorgTxnId);
  db_->lock_manager()->ReleaseAll(reader);
}

TEST_F(SmithTest, FullContentLoggingIsLarger) {
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 2500, 64, 0.95, 0.7, 10, 3,
                                 &survivors_)
                  .ok());
  db_->log_manager()->ResetStats();
  auto smith = MakeSmith(SmithOptions{.target_fill = 0.9,
                                      .do_ordering_pass = false});
  ASSERT_TRUE(smith->Run().ok());
  uint64_t smith_move_bytes =
      db_->log_manager()->bytes_for_type(LogType::kReorgMove);
  uint64_t smith_moved = smith->unit_stats().records_moved;
  ASSERT_GT(smith_moved, 0u);

  OpenDb(DatabaseOptions());
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 2500, 64, 0.95, 0.7, 10, 3,
                                 &survivors_)
                  .ok());
  db_->log_manager()->ResetStats();
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  uint64_t paper_move_bytes =
      db_->log_manager()->bytes_for_type(LogType::kReorgMove);
  uint64_t paper_moved = db_->reorganizer()->stats().records_moved;
  ASSERT_GT(paper_moved, 0u);

  double smith_per_record =
      static_cast<double>(smith_move_bytes) / smith_moved;
  double paper_per_record =
      static_cast<double>(paper_move_bytes) / paper_moved;
  // Keys-only logging (8-byte keys vs 64-byte values) should be several
  // times cheaper per record moved.
  EXPECT_GT(smith_per_record, paper_per_record * 2.5);
}

TEST_F(SmithTest, OrderingPassOrdersLeaves) {
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 2000, 64, 0.95, 0.7, 10, 9,
                                 &survivors_)
                  .ok());
  auto smith = MakeSmith(SmithOptions{.target_fill = 0.9,
                                      .do_ordering_pass = true});
  ASSERT_TRUE(smith->Run().ok());
  std::vector<PageId> leaves;
  ASSERT_TRUE(db_->tree()->CollectLeaves(&leaves).ok());
  for (size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_GT(leaves[i], leaves[i - 1]);
  }
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
