// Multi-threaded consistency: readers, updaters and the reorganizer live
// together under the paper's protocols.

#include <atomic>
#include <thread>

#include "tests/test_util.h"

namespace soreorg {
namespace {

class ConcurrencyTest : public DbFixture {};

TEST_F(ConcurrencyTest, ParallelReadersSeeConsistentData) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v" + std::to_string(i)).ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(t + 1);
      for (int i = 0; i < 500; ++i) {
        uint64_t k = rng.Uniform(1000);
        std::string v;
        if (!db_->Get(EncodeU64Key(k), &v).ok() ||
            v != "v" + std::to_string(k)) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(ConcurrencyTest, ParallelDisjointWriters) {
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < 300; ++i) {
        uint64_t k = static_cast<uint64_t>(t) * 1000000 +
                     static_cast<uint64_t>(i);
        if (!db_->Put(EncodeU64Key(k), std::string(64, 'w')).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(CountRecords(), 1200u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, MixedChurnStaysConsistent) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i) * 10, std::string(64, 'v')).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      Random rng(t * 31 + 7);
      while (!stop.load()) {
        uint64_t slot = rng.Uniform(2000);
        int op = static_cast<int>(rng.Uniform(3));
        Status s;
        if (op == 0) {
          std::string v;
          s = db_->Get(EncodeU64Key(slot * 10), &v);
          if (!s.ok() && !s.IsNotFound()) ++unexpected;
        } else if (op == 1) {
          s = db_->Put(EncodeU64Key(slot * 10 + 1 + rng.Uniform(8)),
                       std::string(64, 'n'));
          if (!s.ok() && !s.IsInvalidArgument()) ++unexpected;
        } else {
          s = db_->Delete(EncodeU64Key(slot * 10));
          if (!s.ok() && !s.IsNotFound()) ++unexpected;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, ReadersRunDuringLeafPassViaBackoffProtocol) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 4000, 64, 0.95, 0.7, 10, 42,
                                 &survivors)
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(t + 11);
      while (!stop.load()) {
        uint64_t k = survivors[rng.Uniform(survivors.size())];
        std::string v;
        Status s = db_->Get(EncodeU64Key(k), &v);
        if (s.ok()) {
          ++reads;
        } else {
          ++errors;  // a missing survivor = lost record
        }
      }
    });
  }
  while (reads.load() == 0 && errors.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status s = db_->reorganizer()->RunLeafPass();
  stop.store(true);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(reads.load(), 100u);
  // (Whether the RX back-off path fires is timing-dependent here; its
  // deterministic coverage lives in lock_manager_test.)
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(ConcurrencyTest, UpdatersRunDuringFullReorganization) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 4000, 64, 0.95, 0.6, 10, 13,
                                 &survivors)
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::atomic<int> errors{0};
  std::thread updater([&]() {
    uint64_t k = 5;  // keys congruent 5 mod 10: never collide with slots
    while (!stop.load()) {
      Status s = db_->Put(EncodeU64Key(k), std::string(64, 'u'));
      if (s.ok()) {
        ++writes;
      } else if (!s.IsInvalidArgument()) {
        ++errors;
      }
      k += 10;
    }
  });
  while (writes.load() == 0 && errors.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status s = db_->Reorganize();
  stop.store(true);
  updater.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(writes.load(), 0u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors.size() + writes.load());
}

TEST_F(ConcurrencyTest, ScansOverlapReorganization) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.6, 10, 17,
                                 &survivors)
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<int> bad_scans{0};
  std::thread scanner([&]() {
    while (!stop.load()) {
      uint64_t prev = 0;
      bool first = true;
      bool ordered = true;
      db_->Scan(Slice(), Slice(), [&](const Slice& k, const Slice&) {
        uint64_t v = DecodeU64Key(k);
        if (!first && v <= prev) ordered = false;
        prev = v;
        first = false;
        return true;
      });
      if (!ordered) ++bad_scans;
    }
  });
  Status s = db_->Reorganize();
  stop.store(true);
  scanner.join();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(bad_scans.load(), 0);
}

}  // namespace
}  // namespace soreorg
