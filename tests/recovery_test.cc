// Redo / undo recovery tests (the standard ARIES-lite part).

#include "tests/test_util.h"

namespace soreorg {
namespace {

class RecoveryTest : public DbFixture {};

TEST_F(RecoveryTest, FreshDatabaseOpensEmpty) {
  EXPECT_EQ(CountRecords(), 0u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(RecoveryTest, RedoRebuildsSplitsAfterCrash) {
  // Enough inserts to force leaf and internal splits, none checkpointed.
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), std::string(64, 'v')).ok());
  }
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());
  ASSERT_GT(before.leaf_pages, 10u);

  ASSERT_TRUE(HardCrashAndReopen().ok());
  BTreeStats after;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after).ok());
  EXPECT_EQ(after.records, before.records);
  EXPECT_EQ(after.leaf_pages, before.leaf_pages);
  EXPECT_EQ(after.height, before.height);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(RecoveryTest, RedoRebuildsFreeAtEmptyAfterCrash) {
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), std::string(64, 'v')).ok());
  }
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(Del(static_cast<uint64_t>(i)).ok());
  }
  ASSERT_TRUE(HardCrashAndReopen().ok());
  EXPECT_EQ(CountRecords(), 0u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(RecoveryTest, RedoIsIdempotentAcrossDoubleCrash) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v").ok());
  }
  ASSERT_TRUE(HardCrashAndReopen().ok());
  ASSERT_TRUE(HardCrashAndReopen().ok());  // recover twice
  EXPECT_EQ(CountRecords(), 500u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(RecoveryTest, MultipleLosersAllRolledBack) {
  // Spread records over many leaves so the two in-flight transactions hold
  // X locks on disjoint leaves (strict 2PL would otherwise serialize them).
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i) * 100, std::string(64, 'v')).ok());
  }
  Transaction* t1 = db_->Begin();
  Transaction* t2 = db_->Begin();
  ASSERT_TRUE(db_->tree()->Insert(t1, EncodeU64Key(105), "l1").ok());
  ASSERT_TRUE(db_->tree()->Insert(t2, EncodeU64Key(70005), "l2").ok());
  ASSERT_TRUE(db_->tree()->Delete(t1, EncodeU64Key(200)).ok());
  db_->log_manager()->Flush();
  ASSERT_TRUE(HardCrashAndReopen().ok());

  std::string v;
  ASSERT_TRUE(Get(200, &v).ok());  // loser delete undone
  EXPECT_TRUE(Get(105, &v).IsNotFound());
  EXPECT_TRUE(Get(70005, &v).IsNotFound());
  EXPECT_EQ(db_->recovery_result().losers.size(), 2u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(RecoveryTest, CommittedAfterCheckpointStillRedone) {
  ASSERT_TRUE(Put(1, "pre").ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  ASSERT_TRUE(Put(2, "post").ok());
  ASSERT_TRUE(HardCrashAndReopen().ok());
  std::string v;
  ASSERT_TRUE(Get(1, &v).ok());
  ASSERT_TRUE(Get(2, &v).ok());
  EXPECT_EQ(v, "post");
}

TEST_F(RecoveryTest, AllocationStateRecovered) {
  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), std::string(64, 'v')).ok());
  }
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(Del(static_cast<uint64_t>(i)).ok());
  }
  PageId next_before = db_->disk_manager()->page_count();
  size_t free_before = db_->disk_manager()->free_count();
  ASSERT_TRUE(HardCrashAndReopen().ok());
  EXPECT_EQ(db_->disk_manager()->page_count(), next_before);
  EXPECT_EQ(db_->disk_manager()->free_count(), free_before);
  // New allocations don't collide with live pages.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        Put(static_cast<uint64_t>(100000 + i), std::string(64, 'n')).ok());
  }
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(RecoveryTest, CrashDuringHeavyChurnAtEveryTenthWalWrite) {
  // Property-style sweep: crash at several WAL write points during churn
  // and verify consistency + committed-data durability each time.
  for (int crash_at = 5; crash_at <= 45; crash_at += 10) {
    OpenDb(DatabaseOptions());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(Put(static_cast<uint64_t>(i), "base").ok());
    }
    ASSERT_TRUE(db_->Checkpoint().ok());

    injector_->ArmAfterOps(crash_at, "soreorg.wal");
    // Churn until the injected crash fires.
    for (int i = 0; i < 10000 && !injector_->fired(); ++i) {
      uint64_t k = static_cast<uint64_t>(1000 + i);
      db_->Put(EncodeU64Key(k), "churn");
    }
    ASSERT_TRUE(injector_->fired()) << "crash point " << crash_at;
    injector_->Disarm();
    db_.reset();
    env_->Crash();
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok())
        << "crash point " << crash_at;
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok())
        << "crash point " << crash_at;
    // The checkpointed base records are all present.
    for (int i = 0; i < 100; ++i) {
      std::string v;
      EXPECT_TRUE(Get(static_cast<uint64_t>(i), &v).ok())
          << "crash point " << crash_at << " key " << i;
    }
  }
}

}  // namespace
}  // namespace soreorg
