#include <gtest/gtest.h>

#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/env.h"
#include "src/storage/slotted_page.h"

namespace soreorg {
namespace {

TEST(MemEnvTest, WriteReadSyncCrash) {
  MemEnv env;
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("t", &f).ok());
  ASSERT_TRUE(f->Append("hello").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append(" world").ok());

  char buf[32];
  size_t n;
  ASSERT_TRUE(f->Read(0, sizeof(buf), buf, &n).ok());
  EXPECT_EQ(std::string(buf, n), "hello world");

  // Crash discards everything after the last sync.
  env.Crash();
  ASSERT_TRUE(f->Read(0, sizeof(buf), buf, &n).ok());
  EXPECT_EQ(std::string(buf, n), "hello");
}

TEST(MemEnvTest, ObserverInjectsCrash) {
  MemEnv env;
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("t", &f).ok());
  int count = 0;
  env.set_write_observer([&](const std::string&, const char*, size_t) {
    return ++count < 3;
  });
  EXPECT_TRUE(f->Append("a").ok());
  EXPECT_TRUE(f->Append("b").ok());
  EXPECT_TRUE(f->Append("c").IsCrashed());
  EXPECT_TRUE(env.crashed());
  // Everything fails until the crash is acknowledged.
  EXPECT_TRUE(f->Append("d").IsCrashed());
  env.Crash();
  env.set_write_observer(nullptr);
  EXPECT_TRUE(f->Append("e").ok());
}

TEST(SlottedPageTest, InsertGetRemove) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  EXPECT_EQ(sp.slot_count(), 0);

  ASSERT_TRUE(sp.InsertCell(0, "bbb").ok());
  ASSERT_TRUE(sp.InsertCell(0, "aaa").ok());
  ASSERT_TRUE(sp.InsertCell(2, "ccc").ok());
  ASSERT_EQ(sp.slot_count(), 3);
  EXPECT_EQ(sp.GetCell(0), Slice("aaa"));
  EXPECT_EQ(sp.GetCell(1), Slice("bbb"));
  EXPECT_EQ(sp.GetCell(2), Slice("ccc"));

  sp.RemoveCell(1);
  ASSERT_EQ(sp.slot_count(), 2);
  EXPECT_EQ(sp.GetCell(0), Slice("aaa"));
  EXPECT_EQ(sp.GetCell(1), Slice("ccc"));
}

TEST(SlottedPageTest, AuxBlobSurvivesChurn) {
  Page page;
  SlottedPage sp(&page);
  sp.Init(Slice("low-mark-key"));
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(sp.InsertCell(i, std::string(20, 'a' + i % 26)).ok());
    }
    for (int i = 49; i >= 0; --i) sp.RemoveCell(i);
  }
  EXPECT_EQ(sp.GetAux(), Slice("low-mark-key"));
  EXPECT_EQ(sp.slot_count(), 0);
}

TEST(SlottedPageTest, FillsToCapacityAndReportsFull) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  int inserted = 0;
  std::string cell(100, 'x');
  while (sp.InsertCell(inserted, cell).ok()) ++inserted;
  // ~4KB page / ~104 bytes per cell.
  EXPECT_GT(inserted, 30);
  EXPECT_LT(inserted, 45);
  EXPECT_TRUE(sp.InsertCell(0, cell).IsBusy());
  // Removing one makes room again (after compaction).
  sp.RemoveCell(5);
  EXPECT_TRUE(sp.InsertCell(0, cell).ok());
}

TEST(SlottedPageTest, CompactionReclaimsFragmentation) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::string small(40, 's');
  int n = 0;
  while (sp.InsertCell(n, small).ok()) ++n;
  // Free every other cell -> fragmented space.
  for (int i = n - 1; i >= 0; i -= 2) sp.RemoveCell(i);
  // A large cell should fit once the page compacts internally.
  std::string large(600, 'L');
  EXPECT_TRUE(sp.InsertCell(0, large).ok());
}

TEST(SlottedPageTest, FillFactorMath) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  EXPECT_DOUBLE_EQ(sp.FillFactor(), 0.0);
  ASSERT_TRUE(sp.InsertCell(0, std::string(1000, 'x')).ok());
  double f = sp.FillFactor();
  EXPECT_GT(f, 0.2);
  EXPECT_LT(f, 0.3);
  EXPECT_EQ(sp.UsedSpace(), 1000u + 2 /*len*/ + 2 /*slot*/);
}

TEST(DiskManagerTest, AllocateWriteReadDeallocate) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());

  PageId a, b;
  ASSERT_TRUE(dm.AllocatePage(&a).ok());
  ASSERT_TRUE(dm.AllocatePage(&b).ok());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);

  Page page;
  page.set_page_lsn(77);
  page.SetHeaderPageId(a);
  ASSERT_TRUE(dm.WritePage(a, page).ok());

  Page read_back;
  ASSERT_TRUE(dm.ReadPage(a, &read_back).ok());
  EXPECT_EQ(read_back.page_lsn(), 77u);
  EXPECT_EQ(read_back.header_page_id(), a);

  ASSERT_TRUE(dm.DeallocatePage(a).ok());
  EXPECT_TRUE(dm.IsFree(a));
  EXPECT_TRUE(dm.DeallocatePage(a).IsInvalidArgument());  // double free
  PageId c;
  ASSERT_TRUE(dm.AllocatePage(&c).ok());
  EXPECT_EQ(c, a);  // lowest free id reused
}

TEST(DiskManagerTest, FirstFreeInRangeDrivesHeuristic) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  for (int i = 0; i < 10; ++i) {
    PageId p;
    dm.AllocatePage(&p);
  }
  dm.DeallocatePage(3);
  dm.DeallocatePage(7);
  EXPECT_EQ(dm.FirstFreeInRange(0, 10), 3u);
  EXPECT_EQ(dm.FirstFreeInRange(4, 10), 7u);
  EXPECT_EQ(dm.FirstFreeInRange(8, 10), kInvalidPageId);
  EXPECT_EQ(dm.FirstFreeInRange(4, 7), kInvalidPageId);
}

TEST(DiskManagerTest, MetaRoundTrip) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  for (int i = 0; i < 6; ++i) {
    PageId p;
    dm.AllocatePage(&p);
  }
  dm.DeallocatePage(2);
  dm.DeallocatePage(4);
  std::string meta = dm.SerializeMeta();

  DiskManager dm2(&env, "pages2");
  ASSERT_TRUE(dm2.Open().ok());
  ASSERT_TRUE(dm2.RestoreMeta(meta).ok());
  EXPECT_EQ(dm2.page_count(), 6u);
  EXPECT_TRUE(dm2.IsFree(2));
  EXPECT_TRUE(dm2.IsFree(4));
  EXPECT_FALSE(dm2.IsFree(3));
}

TEST(BufferPoolTest, FetchPinUnpinEvict) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  BufferPool bp(&dm, 4);

  std::vector<PageId> pids;
  for (int i = 0; i < 8; ++i) {
    PageId pid;
    Page* page;
    ASSERT_TRUE(bp.NewPage(&pid, &page).ok());
    page->data()[100] = static_cast<char>(i);
    ASSERT_TRUE(bp.UnpinPage(pid, true).ok());
    pids.push_back(pid);
  }
  // Pool only holds 4 frames: early pages were evicted (flushed) and must
  // read back correctly.
  for (int i = 0; i < 8; ++i) {
    Page* page;
    ASSERT_TRUE(bp.FetchPage(pids[i], &page).ok());
    EXPECT_EQ(page->data()[100], static_cast<char>(i));
    bp.UnpinPage(pids[i], false);
  }
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  BufferPool bp(&dm, 2);

  PageId a;
  Page* pa;
  ASSERT_TRUE(bp.NewPage(&a, &pa).ok());
  PageId b;
  Page* pb;
  ASSERT_TRUE(bp.NewPage(&b, &pb).ok());
  // Both pinned; a third page cannot get a frame.
  PageId c;
  Page* pc;
  EXPECT_TRUE(bp.NewPage(&c, &pc).IsBusy());
  bp.UnpinPage(a, false);
  ASSERT_TRUE(bp.NewPage(&c, &pc).ok());
  bp.UnpinPage(b, false);
  bp.UnpinPage(c, false);
}

TEST(BufferPoolTest, WalInterlockFlushesLogFirst) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  Lsn flushed_to = 0;
  BufferPool bp(&dm, 4, [&](Lsn lsn) {
    flushed_to = lsn;
    return Status::OK();
  });
  PageId pid;
  Page* page;
  ASSERT_TRUE(bp.NewPage(&pid, &page).ok());
  page->set_page_lsn(12345);
  bp.UnpinPage(pid, true);
  ASSERT_TRUE(bp.FlushPage(pid).ok());
  EXPECT_EQ(flushed_to, 12345u);
}

TEST(BufferPoolTest, CarefulWritingOrdersFlushes) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  BufferPool bp(&dm, 8);

  PageId dest, src;
  Page* p;
  ASSERT_TRUE(bp.NewPage(&dest, &p).ok());
  p->data()[0] = 'D';
  bp.UnpinPage(dest, true);
  ASSERT_TRUE(bp.NewPage(&src, &p).ok());
  p->data()[0] = 'S';
  bp.UnpinPage(src, true);

  bp.AddWriteOrder(dest, src);
  // Flushing src must first write+sync dest.
  ASSERT_TRUE(bp.FlushPage(src).ok());
  EXPECT_TRUE(bp.IsDurable(dest));

  // And the durable image is correct even after a crash.
  env.Crash();
  Page back;
  ASSERT_TRUE(dm.ReadPage(dest, &back).ok());
  EXPECT_EQ(back.data()[0], 'D');
}

TEST(BufferPoolTest, DeferredDeallocGatesOnDurability) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  BufferPool bp(&dm, 8);

  PageId dest, victim;
  Page* p;
  ASSERT_TRUE(bp.NewPage(&dest, &p).ok());
  bp.UnpinPage(dest, true);
  ASSERT_TRUE(bp.NewPage(&victim, &p).ok());
  bp.UnpinPage(victim, true);
  bp.FlushPage(victim);

  ASSERT_TRUE(bp.DeletePageDeferred(victim, dest).ok());
  // dest not durable yet: victim must not be reusable.
  EXPECT_FALSE(dm.IsFree(victim));
  ASSERT_TRUE(bp.FlushAndSync().ok());
  EXPECT_TRUE(dm.IsFree(victim));
}

TEST(BufferPoolTest, ForcePagesSyncsSubset) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  ASSERT_TRUE(dm.Open().ok());
  BufferPool bp(&dm, 8);
  PageId a, b;
  Page* p;
  ASSERT_TRUE(bp.NewPage(&a, &p).ok());
  bp.UnpinPage(a, true);
  ASSERT_TRUE(bp.NewPage(&b, &p).ok());
  bp.UnpinPage(b, true);
  ASSERT_TRUE(bp.ForcePages({a}).ok());
  EXPECT_TRUE(bp.IsDurable(a));
  EXPECT_FALSE(bp.IsDurable(b));
}

}  // namespace
}  // namespace soreorg
