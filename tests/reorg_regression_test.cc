// Regression tests for the correctness subtleties found during
// implementation (DESIGN.md §6): separator exactness, side-file
// cancellation, and reorganization under adversarial interleavings.

#include <atomic>
#include <thread>

#include "tests/test_util.h"

namespace soreorg {
namespace {

class ReorgRegressionTest : public DbFixture {};

TEST_F(ReorgRegressionTest, InsertBelowSeparatorLowersIt) {
  // Build a tree whose leftmost region starts at key 1000, then compact so
  // separators are rewritten, then insert keys below every separator.
  for (uint64_t k = 1000; k < 3000; ++k) {
    ASSERT_TRUE(Put(k, std::string(64, 'v')).ok());
  }
  for (uint64_t k = 1000; k < 3000; k += 2) {
    ASSERT_TRUE(Del(k).ok());
  }
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());

  // Keys below the previous global minimum and between compacted leaves.
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(Put(k, "below").ok());
  }
  ASSERT_TRUE(db_->tree()->CheckConsistency().ok());

  // The critical part: pass 3's flat rebuild must keep every key reachable
  // (this corrupted the tree before separator exactness was enforced).
  ASSERT_TRUE(db_->reorganizer()->RunInternalPass().ok());
  ASSERT_TRUE(db_->tree()->CheckConsistency().ok());
  for (uint64_t k = 0; k < 50; ++k) {
    std::string v;
    ASSERT_TRUE(Get(k, &v).ok()) << k;
    EXPECT_EQ(v, "below");
  }
}

TEST_F(ReorgRegressionTest, SeparatorExactnessHoldsTreeWide) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.6, 10, 3,
                                 &survivors)
                  .ok());
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  Random rng(5);
  for (int i = 0; i < 500; ++i) {
    Put(rng.Uniform(3000) * 10 + 1 + rng.Uniform(8), "x");
  }
  // Every base entry's separator must be <= its leaf's first key.
  std::vector<PageId> bases;
  ASSERT_TRUE(db_->tree()->CollectBasePages(&bases).ok());
  for (PageId b : bases) {
    Page* bp;
    ASSERT_TRUE(db_->buffer_pool()->FetchPage(b, &bp).ok());
    InternalNode node(bp);
    for (int i = 0; i < node.Count(); ++i) {
      PageId leaf = node.ChildAt(i);
      std::string sep = node.KeyAt(i).ToString();
      Page* lp;
      ASSERT_TRUE(db_->buffer_pool()->FetchPage(leaf, &lp).ok());
      LeafNode ln(lp);
      if (ln.Count() > 0) {
        EXPECT_LE(Slice(sep).compare(ln.KeyAt(0)), 0)
            << "base " << b << " slot " << i;
      }
      db_->buffer_pool()->UnpinPage(leaf, false);
    }
    db_->buffer_pool()->UnpinPage(b, false);
  }
}

TEST_F(ReorgRegressionTest, AbortedSplitLeavesNoPhantomSideEntry) {
  // An insert transaction that splits a leaf during pass 3 and then aborts
  // must leave the side file without its entry.
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 4000, 64, 0.95, 0.5, 10, 7,
                                 &survivors)
                  .ok());
  // Install the pass-3 interception machinery without running the pass:
  // activate the bit and an always-record hook via a builder stand-in.
  db_->tree()->set_base_update_hook(
      [this](Transaction* txn, BaseUpdateOp op, const Slice& key, PageId leaf,
             PageId) { return db_->side_file()->Record(txn, op, key, leaf); });
  db_->tree()->set_base_update_cancel_hook(
      [this](Transaction* txn, BaseUpdateOp op, const Slice& key,
             PageId leaf) { db_->side_file()->Cancel(txn, op, key, leaf); });
  db_->tree()->set_reorg_bit(true);

  // Fill one leaf until a split happens inside an explicit txn, then abort.
  Transaction* txn = db_->Begin();
  uint64_t k = 5;
  int inserted = 0;
  while (db_->side_file()->size() == 0 && inserted < 200) {
    ASSERT_TRUE(db_->tree()->Insert(txn, EncodeU64Key(k), std::string(64, 'f'))
                    .ok());
    k += 10;
    ++inserted;
  }
  ASSERT_GT(db_->side_file()->size(), 0u);  // the split recorded its entry
  ASSERT_TRUE(db_->Abort(txn).ok());
  EXPECT_EQ(db_->side_file()->size(), 0u)
      << "aborting the splitter must remove its side entry";
  db_->tree()->set_reorg_bit(false);
  db_->tree()->set_base_update_hook(nullptr);
  db_->tree()->set_base_update_cancel_hook(nullptr);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(ReorgRegressionTest, RepeatedFullReorganizationsUnderChurn) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.6, 10, 17,
                                 &survivors)
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<int> unexpected{0};
  std::thread churn([&]() {
    Random rng(23);
    while (!stop.load()) {
      uint64_t slot = rng.Uniform(3000);
      if (rng.Bernoulli(0.5)) {
        Status s = db_->Put(EncodeU64Key(slot * 10 + 1 + rng.Uniform(8)),
                            std::string(64, 'c'));
        if (!s.ok() && !s.IsInvalidArgument()) ++unexpected;
      } else {
        Status s = db_->Delete(EncodeU64Key(slot * 10));
        if (!s.ok() && !s.IsNotFound()) ++unexpected;
      }
    }
  });
  for (int round = 0; round < 3; ++round) {
    Status rs = db_->Reorganize();
    ASSERT_TRUE(rs.ok()) << "round " << round << " status=" << rs.ToString();
    ASSERT_TRUE(db_->tree()->CheckConsistency().ok()) << "round " << round;
  }
  stop.store(true);
  churn.join();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(ReorgRegressionTest, AgedDatabaseReorganizesFully) {
  AgingOptions aging;
  aging.n = 5000;
  aging.random_delete_frac = 0.6;  // survivors sparse enough to compact
  aging.churn_inserts = 800;
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(AgeDatabase(db_.get(), aging, &survivors).ok());
  EXPECT_GT(db_->disk_manager()->free_count(), 0u);  // holes exist
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());

  ASSERT_TRUE(db_->Reorganize().ok());
  BTreeStats after;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after).ok());
  EXPECT_EQ(after.records, survivors.size());
  EXPECT_LT(after.leaf_pages, before.leaf_pages);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  for (size_t i = 0; i < survivors.size(); i += 11) {
    std::string v;
    EXPECT_TRUE(db_->Get(EncodeU64Key(survivors[i]), &v).ok());
  }
}

TEST_F(ReorgRegressionTest, CheckpointDuringLeafPassIsRecoverable) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.7, 10, 31,
                                 &survivors)
                  .ok());
  std::atomic<bool> stop{false};
  std::thread checkpointer([&]() {
    while (!stop.load()) {
      db_->Checkpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  stop.store(true);
  checkpointer.join();
  // The mid-pass checkpoints carried the reorganization table; a crash now
  // recovers from the latest one.
  ASSERT_TRUE(HardCrashAndReopen().ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors.size());
}

TEST_F(ReorgRegressionTest, LowerSeparatorSurvivesCrash) {
  for (uint64_t k = 1000; k < 2000; ++k) {
    ASSERT_TRUE(Put(k, std::string(64, 'v')).ok());
  }
  for (uint64_t k = 1000; k < 2000; k += 2) {
    ASSERT_TRUE(Del(k).ok());
  }
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  ASSERT_TRUE(Put(5, "low").ok());  // lowers a separator + inserts
  ASSERT_TRUE(HardCrashAndReopen().ok());
  std::string v;
  ASSERT_TRUE(Get(5, &v).ok());
  EXPECT_EQ(v, "low");
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
