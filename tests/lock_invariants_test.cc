// Negative and positive tests for the lock-protocol invariant checker: each
// invariant class is seeded with a deliberate violation through the
// ForceGrantForTest backdoor and must be caught, and a realistic concurrent
// workload must come out clean.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/txn/lock_invariants.h"
#include "src/txn/lock_manager.h"

namespace soreorg {
namespace {

constexpr TxnId kT1 = 100, kT2 = 200, kT3 = 300;

class LockInvariantsTest : public ::testing::Test {
 protected:
  LockInvariantsTest()
      : checker_([](const LockViolation&) {}) {
    // A recording (non-aborting) checker replaces the build default so a
    // seeded violation is observable instead of fatal.
    lm_.SetInvariantChecker(&checker_);
  }

  bool Caught(const std::string& invariant) const {
    for (const LockViolation& v : checker_.recorded()) {
      if (v.invariant == invariant) return true;
    }
    return false;
  }

  LockManager lm_;
  LockInvariantChecker checker_;
};

TEST_F(LockInvariantsTest, SeededTable1ViolationIsCaught) {
  lm_.ForceGrantForTest(kT1, PageLock(1), LockMode::kS);
  EXPECT_EQ(checker_.violations(), 0u);
  // S and X granted together on one name: the core Table-1 violation.
  lm_.ForceGrantForTest(kT2, PageLock(1), LockMode::kX);
  EXPECT_GE(checker_.violations(), 1u);
  EXPECT_TRUE(Caught("table1-compatibility"));
}

TEST_F(LockInvariantsTest, GrantedRsIsCaught) {
  lm_.ForceGrantForTest(kT1, PageLock(2), LockMode::kRS);
  EXPECT_TRUE(Caught("rs-granted"));
}

TEST_F(LockInvariantsTest, RxHeldByNonReorganizerIsCaught) {
  lm_.ForceGrantForTest(kT1, PageLock(3), LockMode::kRX);
  EXPECT_TRUE(Caught("rx-ownership"));
}

TEST_F(LockInvariantsTest, RxOutsidePageNameSpaceIsCaught) {
  lm_.ForceGrantForTest(kReorgTxnId, RecordLock("k"), LockMode::kRX);
  EXPECT_TRUE(Caught("rx-name-space"));
}

TEST_F(LockInvariantsTest, RxOnNonLeafPageIsCaughtWithPredicate) {
  checker_.set_leaf_page_predicate([](uint64_t id) { return id >= 100; });
  lm_.ForceGrantForTest(kReorgTxnId, PageLock(150), LockMode::kRX);
  EXPECT_EQ(checker_.violations(), 0u);  // a leaf: fine
  lm_.ForceGrantForTest(kReorgTxnId, PageLock(7), LockMode::kRX);
  EXPECT_TRUE(Caught("rx-not-leaf"));
}

TEST_F(LockInvariantsTest, VictimPolicyViolationIsCaught) {
  // A user transaction chosen as victim while the reorganizer sits in the
  // cycle breaks §4.1's "the reorganizer loses" rule.
  checker_.CheckVictimChoice(kT1, kT1, /*reorg_in_cycle=*/true);
  EXPECT_TRUE(Caught("victim-policy"));
}

TEST_F(LockInvariantsTest, CorrectVictimChoicesAreClean) {
  checker_.CheckVictimChoice(kT1, kT1, /*reorg_in_cycle=*/false);
  checker_.CheckVictimChoice(kT1, kReorgTxnId, /*reorg_in_cycle=*/true);
  checker_.CheckVictimChoice(kReorgTxnId, kReorgTxnId,
                             /*reorg_in_cycle=*/false);
  EXPECT_EQ(checker_.violations(), 0u);
}

// --- invariant (f): the §7.4 switch window -------------------------------

TEST_F(LockInvariantsTest, SwitchWindowOldTreeXWithoutSideXIsCaught) {
  checker_.NoteSwitchEnter(7);
  lm_.ForceGrantForTest(kReorgTxnId, TreeLock(7), LockMode::kX);
  EXPECT_TRUE(Caught("switch-window"));
}

TEST_F(LockInvariantsTest, SwitchWindowOldTreeXWithSideXIsClean) {
  lm_.ForceGrantForTest(kReorgTxnId, SideFileLock(), LockMode::kX);
  checker_.NoteSwitchEnter(7);
  lm_.ForceGrantForTest(kReorgTxnId, TreeLock(7), LockMode::kX);
  EXPECT_EQ(checker_.violations(), 0u);
}

TEST_F(LockInvariantsTest, SwitchWindowIgnoresOtherIncarnationsAndTxns) {
  checker_.NoteSwitchEnter(7);
  // The *new* tree's lock name is not the old tree's.
  lm_.ForceGrantForTest(kReorgTxnId, TreeLock(8), LockMode::kX);
  // User transactions on the old name are the detector's business, not (f)'s.
  lm_.ForceGrantForTest(kT1, TreeLock(7), LockMode::kIX);
  EXPECT_EQ(checker_.violations(), 0u);
}

TEST_F(LockInvariantsTest, OldTreeXOutsideSwitchWindowIsClean) {
  // Pass-1/2 paths and unit tests take tree locks freely; the check is
  // window-gated.
  lm_.ForceGrantForTest(kReorgTxnId, TreeLock(7), LockMode::kX);
  EXPECT_EQ(checker_.violations(), 0u);
  checker_.NoteSwitchEnter(7);
  checker_.NoteSwitchExit();
  lm_.ForceGrantForTest(kReorgTxnId, TreeLock(7), LockMode::kX);
  EXPECT_EQ(checker_.violations(), 0u);
}

TEST_F(LockInvariantsTest, StepAsideBareReacquireOfOldTreeXIsCaught) {
  // The legal step-aside shape: enter holding side X, win the old-tree X,
  // then release everything for the window...
  lm_.ForceGrantForTest(kReorgTxnId, SideFileLock(), LockMode::kX);
  checker_.NoteSwitchEnter(7);
  lm_.ForceGrantForTest(kReorgTxnId, TreeLock(7), LockMode::kX);
  EXPECT_EQ(checker_.violations(), 0u);
  lm_.ReleaseAll(kReorgTxnId);
  EXPECT_EQ(checker_.violations(), 0u);
  // ...but re-winning the old-tree X without first re-acquiring the side X
  // is exactly the drain-vs-recorder race (f) exists to catch.
  lm_.ForceGrantForTest(kReorgTxnId, TreeLock(7), LockMode::kX);
  EXPECT_TRUE(Caught("switch-window"));
}

TEST_F(LockInvariantsTest, ResetClearsState) {
  lm_.ForceGrantForTest(kT1, PageLock(2), LockMode::kRS);
  ASSERT_GE(checker_.violations(), 1u);
  checker_.Reset();
  EXPECT_EQ(checker_.violations(), 0u);
  EXPECT_TRUE(checker_.recorded().empty());
}

TEST_F(LockInvariantsTest, CheckInvariantsNowRevalidatesAllQueues) {
  ASSERT_TRUE(lm_.Lock(kT1, PageLock(1), LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(kT2, PageLock(1), LockMode::kS).ok());
  ASSERT_TRUE(lm_.Lock(kT3, TreeLock(1), LockMode::kIX).ok());
  lm_.CheckInvariantsNow();
  EXPECT_EQ(checker_.violations(), 0u);
}

// A realistic concurrent mix — reader/updater traffic, R->X conversion,
// instant RS waits, an RX backoff, a genuine deadlock with its kill round —
// must produce zero violations through the legitimate code paths.
TEST_F(LockInvariantsTest, CleanConcurrentWorkloadHasNoViolations) {
  std::thread reorg([&]() {
    for (int i = 0; i < 50; ++i) {
      LockName base = PageLock(9);
      if (!lm_.Lock(kReorgTxnId, base, LockMode::kR, 200).ok()) continue;
      (void)lm_.Lock(kReorgTxnId, base, LockMode::kX, 200);  // upgrade
      (void)lm_.Lock(kReorgTxnId, PageLock(40), LockMode::kRX, 200);
      lm_.ReleaseAll(kReorgTxnId);
    }
  });
  std::vector<std::thread> users;
  for (int u = 0; u < 3; ++u) {
    users.emplace_back([&, u]() {
      TxnId id = 100 + static_cast<TxnId>(u);
      for (int i = 0; i < 100; ++i) {
        Status s = lm_.Lock(id, PageLock(9), LockMode::kS, 200);
        if (s.IsBackoff()) {
          (void)lm_.LockInstant(id, PageLock(9), LockMode::kRS, 200);
        } else if (s.ok() && i % 3 == 0) {
          (void)lm_.Lock(id, PageLock(40), LockMode::kX, 50);
        }
        lm_.ReleaseAll(id);
      }
    });
  }
  reorg.join();
  for (auto& t : users) t.join();

  lm_.CheckInvariantsNow();
  EXPECT_EQ(checker_.violations(), 0u) << "first: "
      << (checker_.recorded().empty()
              ? ""
              : checker_.recorded()[0].invariant + ": " +
                    checker_.recorded()[0].detail);
}

// Without a custom handler the checker aborts the process on a violation —
// the contract debug/sanitizer builds rely on.
TEST(LockInvariantsDeathTest, NullHandlerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        LockManager lm;
        LockInvariantChecker strict;  // null handler: abort on violation
        lm.SetInvariantChecker(&strict);
        lm.ForceGrantForTest(100, PageLock(1), LockMode::kS);
        lm.ForceGrantForTest(200, PageLock(1), LockMode::kX);
      },
      "table1-compatibility");
}

}  // namespace
}  // namespace soreorg
