// Pass 2 (swap/move ordering) tests.

#include "tests/test_util.h"

namespace soreorg {
namespace {

class SwapPassTest : public DbFixture {
 protected:
  void SparsifyAndCompact(uint64_t n = 3000, double delete_frac = 0.7,
                          uint64_t seed = 42) {
    ASSERT_TRUE(SparsifyByDeletion(db_.get(), n, 64, 0.95, delete_frac, 10,
                                   seed, &survivors_)
                    .ok());
    ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  }

  /// Fraction of adjacent key-ordered leaves whose page ids ascend.
  double DiskOrderFraction() {
    std::vector<PageId> leaves;
    EXPECT_TRUE(db_->tree()->CollectLeaves(&leaves).ok());
    if (leaves.size() < 2) return 1.0;
    size_t asc = 0;
    for (size_t i = 1; i < leaves.size(); ++i) {
      if (leaves[i] > leaves[i - 1]) ++asc;
    }
    return static_cast<double>(asc) / static_cast<double>(leaves.size() - 1);
  }

  std::vector<uint64_t> survivors_;
};

TEST_F(SwapPassTest, LeavesEndUpInKeyOrderOnDisk) {
  SparsifyAndCompact();
  ASSERT_TRUE(db_->reorganizer()->RunSwapPass().ok());
  std::vector<PageId> leaves;
  ASSERT_TRUE(db_->tree()->CollectLeaves(&leaves).ok());
  for (size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_GT(leaves[i], leaves[i - 1]) << "leaf " << i << " out of order";
  }
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(SwapPassTest, AllRecordsSurviveSwapping) {
  SparsifyAndCompact();
  ASSERT_TRUE(db_->reorganizer()->RunSwapPass().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
  for (size_t i = 0; i < survivors_.size(); i += 7) {
    std::string v;
    ASSERT_TRUE(db_->Get(EncodeU64Key(survivors_[i]), &v).ok());
  }
}

TEST_F(SwapPassTest, SwapUnitsLogAtLeastOneFullPageImage) {
  SparsifyAndCompact();
  db_->log_manager()->ResetStats();
  ASSERT_TRUE(db_->reorganizer()->RunSwapPass().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(db_->log_manager()->ReadAll(&recs).ok());
  for (const LogRecord& r : recs) {
    if (r.type == LogType::kReorgMove && (r.flags & kSwapImages)) {
      // "there is no way to avoid logging at least one of the full page
      // contents": values are present, not just keys.
      EXPECT_GT(r.payload.size(), 100u);
    }
  }
}

TEST_F(SwapPassTest, HeuristicCompactionNeedsFewSwaps) {
  SparsifyAndCompact(4000, 0.7);
  ASSERT_TRUE(db_->reorganizer()->RunSwapPass().ok());
  const ReorgStats& st = db_->reorganizer()->stats();
  // The paper's claim: the Find-Free-Space heuristic leaves pass 2 with far
  // more cheap moves than expensive swaps.
  EXPECT_LE(st.swap_units, st.move_units + 5);
}

TEST_F(SwapPassTest, SwapPassWithoutSidePointers) {
  DatabaseOptions opts;
  opts.tree.side_pointers = SidePointerMode::kNone;
  OpenDb(opts);
  SparsifyAndCompact(2000);
  ASSERT_TRUE(db_->reorganizer()->RunSwapPass().ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(SwapPassTest, SwapPassIsOptionalInFullRun) {
  DatabaseOptions opts;
  opts.reorg.run_swap_pass = false;
  opts.reorg.run_internal_pass = false;
  OpenDb(opts);
  ASSERT_TRUE(
      SparsifyByDeletion(db_.get(), 2000, 64, 0.95, 0.7, 10, 3, &survivors_)
          .ok());
  ASSERT_TRUE(db_->Reorganize().ok());
  EXPECT_EQ(db_->reorganizer()->stats().swap_units, 0u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(SwapPassTest, ScanAfterOrderingIsSequentialOnDisk) {
  SparsifyAndCompact();
  ASSERT_TRUE(db_->reorganizer()->RunSwapPass().ok());
  EXPECT_GT(DiskOrderFraction(), 0.99);
}

}  // namespace
}  // namespace soreorg
