// Simulation-layer tests: disk cost model, workload generators, crash
// injector.

#include "src/sim/disk_model.h"
#include "tests/test_util.h"

namespace soreorg {
namespace {

TEST(DiskModelTest, SequentialIsCheaperThanRandom) {
  DiskModel seq_model;
  for (PageId p = 0; p < 100; ++p) seq_model.OnAccess(p, false);
  DiskModel rnd_model;
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    rnd_model.OnAccess(static_cast<PageId>(rng.Uniform(100000)), false);
  }
  EXPECT_LT(seq_model.stats().total_ms * 5, rnd_model.stats().total_ms);
  EXPECT_EQ(seq_model.stats().sequential, 99u);
  EXPECT_GT(rnd_model.stats().random, 90u);
}

TEST(DiskModelTest, NearSeeksAreIntermediate) {
  DiskModelOptions opts;
  DiskModel m(opts);
  m.OnAccess(100, false);
  m.OnAccess(104, false);  // near
  auto st = m.stats();
  EXPECT_EQ(st.near, 1u);
  EXPECT_LT(st.total_ms, 2 * (opts.seek_ms + opts.half_rotation_ms));
}

TEST(DiskModelTest, AttachObservesDatabaseIo) {
  MemEnv env;
  DatabaseOptions opts;
  opts.buffer_pool_pages = 16;  // force real page I/O
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
  DiskModel model;
  model.Attach(db->disk_manager());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db->Put(EncodeU64Key(i), std::string(64, 'v')).ok());
  }
  EXPECT_GT(model.stats().accesses, 0u);
}

TEST(WorkloadTest, MakeRecordsSortedAndSized) {
  auto recs = MakeRecords(100, 32, 10, 1);
  ASSERT_EQ(recs.size(), 100u);
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].second.size(), 32u);
    if (i > 0) {
      EXPECT_LT(recs[i - 1].first, recs[i].first);
    }
    EXPECT_EQ(DecodeU64Key(recs[i].first), i * 10);
  }
}

TEST(WorkloadTest, LoadSparseTreeHitsTargetFill) {
  MemEnv env;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, DatabaseOptions(), &db).ok());
  ASSERT_TRUE(LoadSparseTree(db.get(), 3000, 64, 0.3).ok());
  BTreeStats st;
  ASSERT_TRUE(db->tree()->ComputeStats(&st).ok());
  EXPECT_GT(st.avg_leaf_fill, 0.2);
  EXPECT_LT(st.avg_leaf_fill, 0.4);
  EXPECT_EQ(st.records, 3000u);
}

TEST(WorkloadTest, ConcurrentDriverProducesOps) {
  MemEnv env;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, DatabaseOptions(), &db).ok());
  ASSERT_TRUE(LoadSparseTree(db.get(), 2000, 64, 0.8).ok());

  DriverOptions dopts;
  dopts.threads = 2;
  dopts.key_space = 2000;
  ConcurrentDriver driver(db.get(), dopts);
  driver.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  driver.Stop();
  DriverStats st = driver.stats();
  EXPECT_GT(st.ops, 50u);
  EXPECT_EQ(st.failures, 0u);
  EXPECT_GT(st.reads, 0u);
  EXPECT_TRUE(db->tree()->CheckConsistency().ok());
}

TEST(CrashInjectorTest, FiresAtExactOperation) {
  MemEnv env;
  CrashInjector inj(&env);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("data.wal", &f).ok());
  inj.ArmAfterOps(3, ".wal", "append");
  EXPECT_TRUE(f->Append("1").ok());
  EXPECT_TRUE(f->Append("2").ok());
  EXPECT_TRUE(f->Append("3").IsCrashed());
  EXPECT_TRUE(inj.fired());
  inj.Disarm();
  env.Crash();
  EXPECT_TRUE(f->Append("4").ok());
}

TEST(CrashInjectorTest, FiltersByFileAndOp) {
  MemEnv env;
  CrashInjector inj(&env);
  std::unique_ptr<File> wal, pages;
  ASSERT_TRUE(env.NewFile("x.wal", &wal).ok());
  ASSERT_TRUE(env.NewFile("x.pages", &pages).ok());
  inj.ArmAfterOps(1, ".pages", "sync");
  EXPECT_TRUE(wal->Append("a").ok());
  EXPECT_TRUE(wal->Sync().ok());
  EXPECT_TRUE(pages->Write(0, "b").ok());
  EXPECT_TRUE(pages->Sync().IsCrashed());
  EXPECT_TRUE(inj.fired());
}

}  // namespace
}  // namespace soreorg
