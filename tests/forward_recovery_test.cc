// Forward Recovery (§5.1) tests: a reorganization unit interrupted by a
// crash is FINISHED at restart, not rolled back — and the rollback policy
// (the conventional alternative) is validated as the E4 ablation.

#include "tests/test_util.h"

namespace soreorg {
namespace {

class ForwardRecoveryTest : public DbFixture {
 protected:
  void SparsifyAndCheckpoint(uint64_t n = 2000, uint64_t seed = 42) {
    ASSERT_TRUE(SparsifyByDeletion(db_.get(), n, 64, 0.95, 0.7, 10, seed,
                                   &survivors_)
                    .ok());
    ASSERT_TRUE(db_->Checkpoint().ok());
  }

  /// Run the leaf pass with a crash injected at the n-th WAL write; returns
  /// false if the pass finished before the crash fired.
  bool CrashDuringLeafPass(int wal_write_n) {
    injector_->ArmAfterOps(wal_write_n, "soreorg.wal");
    Status s = db_->reorganizer()->RunLeafPass();
    bool fired = injector_->fired();
    injector_->Disarm();
    (void)s;
    return fired;
  }

  std::vector<uint64_t> survivors_;
};

TEST_F(ForwardRecoveryTest, CrashMidUnitThenForwardCompletion) {
  SparsifyAndCheckpoint();
  ASSERT_TRUE(CrashDuringLeafPass(6));

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());

  // The incomplete unit was finished: the reorganization table is closed,
  // the tree is consistent, and no record was lost.
  EXPECT_FALSE(db_->reorg_table()->has_open_unit());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
  EXPECT_GE(db_->reorganizer()->stats().units_resumed, 0u);
}

TEST_F(ForwardRecoveryTest, SweepCrashPointsAcrossTheFirstUnits) {
  // Crash at every WAL write boundary through the first few units.
  for (int crash_at = 2; crash_at <= 30; ++crash_at) {
    OpenDb(DatabaseOptions());
    SparsifyAndCheckpoint(1500, static_cast<uint64_t>(crash_at));
    if (!CrashDuringLeafPass(crash_at)) {
      continue;  // pass finished before this point; later points too
    }
    db_.reset();
    env_->Crash();
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok())
        << "crash at " << crash_at;
    EXPECT_FALSE(db_->reorg_table()->has_open_unit())
        << "crash at " << crash_at;
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok())
        << "crash at " << crash_at;
    EXPECT_EQ(CountRecords(), survivors_.size()) << "crash at " << crash_at;
  }
}

TEST_F(ForwardRecoveryTest, ForwardRecoveryPreservesFinishedUnits) {
  SparsifyAndCheckpoint(3000);
  BTreeStats sparse;
  ASSERT_TRUE(db_->tree()->ComputeStats(&sparse).ok());

  // Let several units complete, then crash.
  ASSERT_TRUE(CrashDuringLeafPass(40));
  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());

  // Work done before the crash survives: LK advanced, and resuming the
  // pass only processes the remainder (it never re-compacts below LK).
  std::string lk = db_->reorg_table()->largest_finished_key();
  EXPECT_FALSE(lk.empty());
  BTreeStats after_recovery;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after_recovery).ok());
  EXPECT_LT(after_recovery.leaf_pages, sparse.leaf_pages);

  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(ForwardRecoveryTest, RollbackPolicyUndoesTheIncompleteUnit) {
  DatabaseOptions opts;
  opts.recovery_policy = RecoveryPolicy::kRollback;
  OpenDb(opts);
  SparsifyAndCheckpoint();
  ASSERT_TRUE(CrashDuringLeafPass(6));

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());

  // Conventional recovery: the unit is gone (no open unit), consistency
  // holds, and no data was lost — but the unit's work was discarded.
  EXPECT_FALSE(db_->reorg_table()->has_open_unit());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(ForwardRecoveryTest, RollbackPolicySweep) {
  for (int crash_at = 3; crash_at <= 24; crash_at += 3) {
    DatabaseOptions opts;
    opts.recovery_policy = RecoveryPolicy::kRollback;
    OpenDb(opts);
    SparsifyAndCheckpoint(1500, static_cast<uint64_t>(crash_at) + 100);
    if (!CrashDuringLeafPass(crash_at)) continue;
    db_.reset();
    env_->Crash();
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok())
        << "crash at " << crash_at;
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok())
        << "crash at " << crash_at;
    EXPECT_EQ(CountRecords(), survivors_.size()) << "crash at " << crash_at;
  }
}

TEST_F(ForwardRecoveryTest, CrashDuringSwapPassRecovers) {
  SparsifyAndCheckpoint(2500);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  ASSERT_TRUE(db_->Checkpoint().ok());

  injector_->ArmAfterOps(4, "soreorg.wal");
  db_->reorganizer()->RunSwapPass();
  bool fired = injector_->fired();
  injector_->Disarm();
  if (!fired) GTEST_SKIP() << "swap pass finished before the crash point";

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());
  EXPECT_FALSE(db_->reorg_table()->has_open_unit());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(ForwardRecoveryTest, CrashDuringPass3RestartsFromStableKey) {
  DatabaseOptions opts;
  opts.reorg.builder.stable_every = 1;
  OpenDb(opts);
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 8000, 64, 0.95, 0.75, 10, 11,
                                 &survivors_)
                  .ok());
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  ASSERT_TRUE(db_->Checkpoint().ok());

  // Crash partway through the internal-page build (page-file writes come
  // from the stable-point force writes).
  injector_->ArmAfterOps(3, "soreorg.pages", "sync");
  db_->reorganizer()->RunInternalPass();
  bool fired = injector_->fired();
  injector_->Disarm();
  if (!fired) GTEST_SKIP() << "pass 3 finished before the crash point";

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());

  if (db_->pass3_pending()) {
    ASSERT_TRUE(db_->ResumeInternalPass().ok());
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
    EXPECT_EQ(CountRecords(), survivors_.size());
  }
}

}  // namespace
}  // namespace soreorg
