// Forward Recovery (§5.1) tests: a reorganization unit interrupted by a
// crash is FINISHED at restart, not rolled back — and the rollback policy
// (the conventional alternative) is validated as the E4 ablation.

#include "src/storage/fault_env.h"
#include "tests/test_util.h"

namespace soreorg {
namespace {

class ForwardRecoveryTest : public DbFixture {
 protected:
  void SparsifyAndCheckpoint(uint64_t n = 2000, uint64_t seed = 42) {
    ASSERT_TRUE(SparsifyByDeletion(db_.get(), n, 64, 0.95, 0.7, 10, seed,
                                   &survivors_)
                    .ok());
    ASSERT_TRUE(db_->Checkpoint().ok());
  }

  /// Run the leaf pass with a crash injected at the n-th WAL write; returns
  /// false if the pass finished before the crash fired.
  bool CrashDuringLeafPass(int wal_write_n) {
    injector_->ArmAfterOps(wal_write_n, "soreorg.wal");
    Status s = db_->reorganizer()->RunLeafPass();
    bool fired = injector_->fired();
    injector_->Disarm();
    (void)s;
    return fired;
  }

  std::vector<uint64_t> survivors_;
};

TEST_F(ForwardRecoveryTest, CrashMidUnitThenForwardCompletion) {
  SparsifyAndCheckpoint();
  ASSERT_TRUE(CrashDuringLeafPass(6));

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());

  // The incomplete unit was finished: the reorganization table is closed,
  // the tree is consistent, and no record was lost.
  EXPECT_FALSE(db_->reorg_table()->has_open_unit());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
  EXPECT_GE(db_->reorganizer()->stats().units_resumed, 0u);
}

TEST_F(ForwardRecoveryTest, SweepCrashPointsAcrossTheFirstUnits) {
  // Crash at every WAL write boundary through the first few units.
  for (int crash_at = 2; crash_at <= 30; ++crash_at) {
    OpenDb(DatabaseOptions());
    SparsifyAndCheckpoint(1500, static_cast<uint64_t>(crash_at));
    if (!CrashDuringLeafPass(crash_at)) {
      continue;  // pass finished before this point; later points too
    }
    db_.reset();
    env_->Crash();
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok())
        << "crash at " << crash_at;
    EXPECT_FALSE(db_->reorg_table()->has_open_unit())
        << "crash at " << crash_at;
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok())
        << "crash at " << crash_at;
    EXPECT_EQ(CountRecords(), survivors_.size()) << "crash at " << crash_at;
  }
}

TEST_F(ForwardRecoveryTest, ForwardRecoveryPreservesFinishedUnits) {
  SparsifyAndCheckpoint(3000);
  BTreeStats sparse;
  ASSERT_TRUE(db_->tree()->ComputeStats(&sparse).ok());

  // Let several units complete, then crash.
  ASSERT_TRUE(CrashDuringLeafPass(40));
  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());

  // Work done before the crash survives: LK advanced, and resuming the
  // pass only processes the remainder (it never re-compacts below LK).
  std::string lk = db_->reorg_table()->largest_finished_key();
  EXPECT_FALSE(lk.empty());
  BTreeStats after_recovery;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after_recovery).ok());
  EXPECT_LT(after_recovery.leaf_pages, sparse.leaf_pages);

  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(ForwardRecoveryTest, RollbackPolicyUndoesTheIncompleteUnit) {
  DatabaseOptions opts;
  opts.recovery_policy = RecoveryPolicy::kRollback;
  OpenDb(opts);
  SparsifyAndCheckpoint();
  ASSERT_TRUE(CrashDuringLeafPass(6));

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());

  // Conventional recovery: the unit is gone (no open unit), consistency
  // holds, and no data was lost — but the unit's work was discarded.
  EXPECT_FALSE(db_->reorg_table()->has_open_unit());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(ForwardRecoveryTest, RollbackPolicySweep) {
  for (int crash_at = 3; crash_at <= 24; crash_at += 3) {
    DatabaseOptions opts;
    opts.recovery_policy = RecoveryPolicy::kRollback;
    OpenDb(opts);
    SparsifyAndCheckpoint(1500, static_cast<uint64_t>(crash_at) + 100);
    if (!CrashDuringLeafPass(crash_at)) continue;
    db_.reset();
    env_->Crash();
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok())
        << "crash at " << crash_at;
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok())
        << "crash at " << crash_at;
    EXPECT_EQ(CountRecords(), survivors_.size()) << "crash at " << crash_at;
  }
}

TEST_F(ForwardRecoveryTest, CrashDuringSwapPassRecovers) {
  SparsifyAndCheckpoint(2500);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  ASSERT_TRUE(db_->Checkpoint().ok());

  injector_->ArmAfterOps(4, "soreorg.wal");
  db_->reorganizer()->RunSwapPass();
  bool fired = injector_->fired();
  injector_->Disarm();
  if (!fired) GTEST_SKIP() << "swap pass finished before the crash point";

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());
  EXPECT_FALSE(db_->reorg_table()->has_open_unit());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(ForwardRecoveryTest, CrashDuringPass3RestartsFromStableKey) {
  DatabaseOptions opts;
  opts.reorg.builder.stable_every = 1;
  OpenDb(opts);
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 8000, 64, 0.95, 0.75, 10, 11,
                                 &survivors_)
                  .ok());
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  ASSERT_TRUE(db_->Checkpoint().ok());

  // Crash partway through the internal-page build (page-file writes come
  // from the stable-point force writes).
  injector_->ArmAfterOps(3, "soreorg.pages", "sync");
  db_->reorganizer()->RunInternalPass();
  bool fired = injector_->fired();
  injector_->Disarm();
  if (!fired) GTEST_SKIP() << "pass 3 finished before the crash point";

  db_.reset();
  env_->Crash();
  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());

  if (db_->pass3_pending()) {
    ASSERT_TRUE(db_->ResumeInternalPass().ok());
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
    EXPECT_EQ(CountRecords(), survivors_.size());
  }
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv crash-point sweeps. Unlike the CrashInjector tests above
// (which crash at hand-picked WAL writes), these count the I/O points of one
// specific pass with a dry run and then crash at points across the whole
// pass — including every point of pass 3 and the switch, where the
// incarnation dichotomy must hold: a recovered incarnation above the
// pre-pass one means the new root is installed; an unchanged incarnation
// means the old root is. Either way the tree serves the full record set.
// ---------------------------------------------------------------------------

class FaultRecoveryTest : public ::testing::Test {
 protected:
  enum Pass { kLeaf = 0, kSwap = 1, kInternal = 2 };

  /// Fresh env + db with the sparse workload built, every pass *before*
  /// `pass` completed cleanly, and a checkpoint taken — the deterministic
  /// state each crash iteration restarts from.
  void BuildTo(Pass pass) {
    db_.reset();
    base_ = std::make_unique<MemEnv>();
    env_ = std::make_unique<FaultInjectionEnv>(base_.get());
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());
    ASSERT_TRUE(SparsifyByDeletion(db_.get(), 1200, 48, 0.95, 0.7, 10, 7,
                                   &survivors_)
                    .ok());
    if (pass > kLeaf) {
      ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
    }
    if (pass > kSwap) {
      ASSERT_TRUE(db_->reorganizer()->RunSwapPass().ok());
    }
    ASSERT_TRUE(db_->Checkpoint().ok());
  }

  Status RunPass(Pass pass) {
    switch (pass) {
      case kLeaf:
        return db_->reorganizer()->RunLeafPass();
      case kSwap:
        return db_->reorganizer()->RunSwapPass();
      case kInternal:
        return db_->reorganizer()->RunInternalPass();
    }
    return Status::OK();
  }

  /// Dry run: how many write/append/sync ops does `pass` perform?
  int CountPoints(Pass pass) {
    BuildTo(pass);
    env_->ObserveOnly();
    Status s = RunPass(pass);
    EXPECT_TRUE(s.ok()) << s.ToString();
    int points = static_cast<int>(env_->ops_observed());
    env_->Disarm();
    return points;
  }

  uint64_t CountRecords() {
    uint64_t n = 0;
    db_->Scan(Slice(), Slice(), [&n](const Slice&, const Slice&) {
      ++n;
      return true;
    });
    return n;
  }

  void VerifyRecovered(int crash_at) {
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok())
        << "crash at " << crash_at;
    EXPECT_EQ(CountRecords(), survivors_.size()) << "crash at " << crash_at;
  }

  /// Crash at ~12 points spread over `pass`, recover, verify.
  void SweepPass(Pass pass) {
    int points = CountPoints(pass);
    ASSERT_GT(points, 0);
    int stride = points > 12 ? points / 12 : 1;
    for (int i = 1; i <= points; i += stride) {
      BuildTo(pass);
      env_->FailOpAfter(i, "", "");
      RunPass(pass);  // dies at point i; the status is the crash itself
      ASSERT_TRUE(env_->fault_fired()) << "crash at " << i;
      db_.reset();
      env_->Crash();
      ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok())
          << "crash at " << i;
      VerifyRecovered(i);
    }
  }

  DatabaseOptions options_;
  std::unique_ptr<MemEnv> base_;
  std::unique_ptr<FaultInjectionEnv> env_;
  std::unique_ptr<Database> db_;
  std::vector<uint64_t> survivors_;
};

TEST_F(FaultRecoveryTest, LeafPassCrashPointSweep) { SweepPass(kLeaf); }

TEST_F(FaultRecoveryTest, SwapPassCrashPointSweep) { SweepPass(kSwap); }

TEST_F(FaultRecoveryTest, InternalPassAndSwitchIncarnationDichotomy) {
  int points = CountPoints(kInternal);
  ASSERT_GT(points, 0);

  int before_switch = 0;
  int after_switch = 0;
  for (int i = 1; i <= points; ++i) {
    BuildTo(kInternal);
    const PageId old_root = db_->tree()->root();
    const uint64_t old_inc = db_->tree()->incarnation();

    env_->FailOpAfter(i, "", "");
    RunPass(kInternal);
    ASSERT_TRUE(env_->fault_fired()) << "crash at " << i;
    db_.reset();
    env_->Crash();
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok())
        << "crash at " << i;

    // The switch is atomic-on-durable-state: either the switch record made
    // it to the durable log (new incarnation, new root) or it did not (old
    // incarnation, old root). Nothing in between.
    const uint64_t inc = db_->tree()->incarnation();
    if (inc > old_inc) {
      EXPECT_NE(db_->tree()->root(), old_root) << "crash at " << i;
      ++after_switch;
    } else {
      EXPECT_EQ(inc, old_inc) << "crash at " << i;
      EXPECT_EQ(db_->tree()->root(), old_root) << "crash at " << i;
      ++before_switch;
    }
    VerifyRecovered(i);

    // A pre-switch crash may leave pass 3 resumable; completing it must
    // still converge to a switched, consistent tree.
    if (db_->pass3_pending()) {
      ASSERT_TRUE(db_->ResumeInternalPass().ok()) << "crash at " << i;
      VerifyRecovered(i);
    }
  }
  // The sweep must actually have exercised both sides of the switch.
  EXPECT_GT(before_switch, 0);
  EXPECT_GT(after_switch, 0);
}

TEST_F(FaultRecoveryTest, TornWalTailSurfacesInRecoveryResult) {
  BuildTo(kLeaf);
  // A committed durable prefix...
  ASSERT_TRUE(db_->Put(EncodeU64Key(1), "durable").ok());
  // ...then the WAL batch write for the next commit tears mid-frame.
  env_->TearWriteAfter(1, ".wal", /*keep_bytes=*/5);
  EXPECT_FALSE(db_->Put(EncodeU64Key(2), "torn").ok());
  db_.reset();
  env_->Crash();

  ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());
  // The torn tail is surfaced as forensics, not an error...
  EXPECT_TRUE(db_->recovery_result().wal_tail_torn);
  EXPECT_GT(db_->recovery_result().wal_bytes_dropped, 0u);
  EXPECT_EQ(db_->recovery_result().page_checksum_failures, 0u);
  // ...including the segment-level fields (ISSUE 10): the tear is in the
  // tail segment, redo visited at least one segment, and the per-thread
  // accounting matches the declared worker count.
  EXPECT_TRUE(db_->recovery_result().tail_segment_torn);
  EXPECT_GT(db_->recovery_result().segments_scanned, 0u);
  EXPECT_GE(db_->recovery_result().redo_threads_used, 1);
  EXPECT_EQ(db_->recovery_result().redo_records_per_thread.size(),
            static_cast<size_t>(db_->recovery_result().redo_threads_used));
  // ...and the durable prefix is intact while the torn commit is gone.
  std::string v;
  EXPECT_TRUE(db_->Get(EncodeU64Key(1), &v).ok());
  EXPECT_EQ(v, "durable");
  EXPECT_TRUE(db_->Get(EncodeU64Key(2), &v).IsNotFound());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
