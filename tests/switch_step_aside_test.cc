// The §7.4 switch-drain deadlock, pinned and fixed (ISSUE 6).
//
// The deterministic repro scripts the fatal interleaving with the schedule
// harness: an updater splits a leaf while the switcher is between "side-file
// X requested" and "granted", so the updater's side-file IX lands *behind*
// the switcher's X and the updater parks in its instant-duration wait still
// holding IX on the old tree's lock name. The switcher then flips the root
// and requests X on the old tree — the §7.4 cycle. Under the legacy
// protocol (enable_step_aside = false) the deadlock detector victimizes the
// reorganizer on every round until the switch fails; the test pins that, and
// pins that the failure now rolls *forward* to a consistent new-tree state
// instead of leaving the tree half-switched. Under the step-aside protocol
// the same schedule must complete: the switcher releases the side-file X,
// the parked updater retires through the Busy-redirect path (recording its
// entry *and* applying it directly to the new tree), and the re-drain
// verifies the duplicate as a no-op.
//
// Both tests run at lock-table stripe counts 1 and 16: stripe 1 is the
// legacy single-mutex manager, so passing at both proves the protocol does
// not depend on striping accidents.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/schedule.h"
#include "src/txn/lock_invariants.h"
#include "tests/test_util.h"

namespace soreorg {
namespace {

class SwitchStepAsideTest : public DbFixture,
                            public ::testing::WithParamInterface<size_t> {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.lock_table_stripes = GetParam();
    OpenDb(opts);
  }

  void BuildTallSparseTree(uint64_t n = 6000) {
    ASSERT_TRUE(SparsifyByDeletion(db_.get(), n, 64, 0.95, 0.75, 10, 42,
                                   &survivors_)
                    .ok());
    ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  }

  // Script the §7.4 interleaving and run pass 3 through it. The five steps:
  //   1. reorg    build finishes; blocks at its side-file X *request*
  //   2. updater  explicit txn, inserts until a leaf split's side-file
  //               record blocks at its IX request (TryLock not yet run, so
  //               nothing is enqueued; the updater holds old-tree IX and its
  //               split-path page locks)
  //   3. reorg    side X granted (updater holds nothing on the side file),
  //               final catch-up, root flip, parks waiting for old-tree X
  //   4. updater  TryLock fails against the X -> blocks at its instant IX
  //               request
  //   5. updater  instant wait parks -> waits-for cycle closes -> the
  //               detector victimizes the reorganizer; free-run from here
  void RunSwitchDrainSchedule(bool step_aside) {
    BuildTallSparseTree();
    old_inc_ = db_->tree()->incarnation();

    SwitcherOptions* sw = &db_->reorganizer()->options()->switcher;
    sw->enable_step_aside = step_aside;
    // Long per-attempt timeout: every failed round in this schedule must
    // come from the deadlock detector, not from timer noise.
    sw->old_tree_timeout_ms = 5000;
    if (step_aside) {
      sw->step_aside_wait_ms = 3000;  // growth signal arrives far sooner
    } else {
      sw->max_wait_rounds = 3;  // legacy: burn the rounds, fail fast
    }

    ctrl_ = std::make_unique<ScheduleController>(ScheduleOptions{
        .seed = 1, .step_timeout_ms = 20000, .settle_us = 2000});
    ctrl_->InstallLockHooks(db_->lock_manager());
    // The first three side-file lock *requests* are scheduling points: the
    // switcher's X (1), the updater's IX TryLock (2) and its instant-
    // duration wait (3) — each trapped before it touches the lock table.
    // Later side-file requests (the updater's Busy-redirect re-record, the
    // switcher's step-aside re-acquire) must flow freely, or the step-aside
    // growth poll would sit out its full deadline waiting on an updater the
    // controller is holding at a point.
    auto hits = std::make_shared<std::atomic<int>>(0);
    ctrl_->SetLockPointPredicate(
        [hits](LockEvent e, const LockName& name, LockMode) {
          return e == LockEvent::kRequest &&
                 name.space == LockSpace::kSideFile &&
                 hits->fetch_add(1) < 3;
        });

    ctrl_->Spawn("reorg", [&] {
      ctrl_->Point("begin");
      reorg_status_ = db_->reorganizer()->RunInternalPass();
    });
    ctrl_->Spawn("updater", [&] {
      ctrl_->Point("begin");
      uint64_t baseline = db_->side_file()->total_recorded();
      Transaction* txn = db_->Begin();
      ASSERT_NE(txn, nullptr);
      // Past the last survivor (~59990): appends into the rightmost leaf,
      // so the first split comes after a deterministic run of inserts and
      // never lowers a separator.
      uint64_t k = 100001;
      while (inserted_ < 4000) {
        updater_status_ =
            db_->tree()->Insert(txn, EncodeU64Key(k), std::string(64, 'u'));
        if (!updater_status_.ok()) break;
        ++inserted_;
        k += 2;
        // Done when our split retired through the side file (step-aside) or
        // the switch is over entirely (legacy roll-forward cleared the bit).
        if (db_->side_file()->total_recorded() != baseline) break;
        if (!db_->tree()->reorg_bit()) break;
      }
      if (updater_status_.ok()) {
        updater_status_ = db_->Commit(txn);
      } else {
        db_->Abort(txn);
      }
    });
    ctrl_->SetScript({"reorg", "updater", "reorg", "updater", "updater"});
    Status sched = ctrl_->Run();
    ASSERT_TRUE(sched.ok()) << sched.ToString() << "\n"
                            << ctrl_->TraceString();

    // Common to both protocols: the updater parked in the §7.4 window and
    // the detector victimized the reorganizer's old-tree X at least once.
    EXPECT_GE(ctrl_->TraceIndex("updater:wait:side-file/0:IX"), 0)
        << ctrl_->TraceString();
    EXPECT_GE(ctrl_->TraceIndex("reorg:deadlock:tree/" +
                                std::to_string(old_inc_) + ":X"),
              0)
        << ctrl_->TraceString();

    // The updater committed and no record was lost, whatever the switcher's
    // fate — its split retired either through the side file or through the
    // Busy redirect onto the new tree.
    ASSERT_TRUE(updater_status_.ok()) << updater_status_.ToString();
    EXPECT_GE(inserted_, 1u);
    EXPECT_EQ(CountRecords(), survivors_.size() + inserted_);
    EXPECT_TRUE(db_->tree()->CheckConsistency().ok());

    // Never half-switched: the flip happened, the new incarnation is live,
    // and the pass-3 machinery is fully dismantled.
    const SwitchStats& sws = db_->reorganizer()->switch_stats();
    EXPECT_TRUE(sws.root_flipped);
    EXPECT_EQ(db_->tree()->incarnation(), old_inc_ + 1);
    EXPECT_FALSE(db_->tree()->reorg_bit());
    EXPECT_TRUE(db_->side_file()->closed());
    EXPECT_EQ(db_->side_file()->size(), 0u);
  }

  std::vector<uint64_t> survivors_;
  std::unique_ptr<ScheduleController> ctrl_;
  uint64_t old_inc_ = 0;
  Status reorg_status_;
  Status updater_status_;
  uint64_t inserted_ = 0;
};

INSTANTIATE_TEST_SUITE_P(Stripes, SwitchStepAsideTest,
                         ::testing::Values(1, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "s" + std::to_string(info.param);
                         });

// The legacy protocol deadlocks on this schedule — every wait round dies to
// the victim policy, the switch fails TimedOut — and the failure must now
// roll forward instead of stranding a half-switched tree.
TEST_P(SwitchStepAsideTest, LegacyProtocolDeadlocksAndRollsForward) {
  RunSwitchDrainSchedule(/*step_aside=*/false);

  ASSERT_TRUE(reorg_status_.IsTimedOut()) << reorg_status_.ToString();
  const SwitchStats& sws = db_->reorganizer()->switch_stats();
  EXPECT_TRUE(sws.rolled_forward);
  EXPECT_EQ(sws.step_asides, 0u);
  EXPECT_EQ(sws.old_tree_wait_rounds, 3u);  // == max_wait_rounds
  EXPECT_GT(sws.old_pages_leaked, 0u);      // counted, not freed
  EXPECT_EQ(sws.old_pages_discarded, 0u);
  // The reorganizer never won the old-tree X.
  EXPECT_EQ(ctrl_->TraceIndex("reorg:granted:tree/" +
                              std::to_string(old_inc_) + ":X"),
            -1)
      << ctrl_->TraceString();

  // The rolled-forward tree is live: ordinary traffic proceeds on the new
  // incarnation with no reorg machinery in the way.
  ASSERT_TRUE(Put(999999, "post-roll-forward").ok());
  std::string v;
  ASSERT_TRUE(Get(999999, &v).ok());
  EXPECT_EQ(v, "post-roll-forward");
}

// The same schedule under the step-aside protocol: the switch completes, the
// parked updater's entry is recorded and re-verified as a no-op, and the old
// upper levels are reclaimed.
TEST_P(SwitchStepAsideTest, StepAsideConvertsDeadlockIntoCompletedSwitch) {
  RunSwitchDrainSchedule(/*step_aside=*/true);

  ASSERT_TRUE(reorg_status_.ok()) << reorg_status_.ToString() << "\n"
                                  << ctrl_->TraceString();
  const SwitchStats& sws = db_->reorganizer()->switch_stats();
  EXPECT_GE(sws.step_asides, 1u);
  EXPECT_GE(sws.step_aside_entries, 1u);
  EXPECT_FALSE(sws.rolled_forward);
  EXPECT_EQ(sws.old_pages_leaked, 0u);
  EXPECT_GT(sws.old_pages_discarded, 0u);
  // The updater's redirected split both recorded its entry and applied it
  // directly to the new tree, so the step-aside re-drain verified it as a
  // no-op — the drain-idempotency machinery under real concurrency.
  EXPECT_GE(db_->reorganizer()->stats().side_reapplied_noops, 1u);
  // This time the old-tree X was eventually granted (invariant (f): only
  // while the side-file X was held — the debug-build checker aborts
  // otherwise, so finishing at all is the assertion).
  EXPECT_GE(ctrl_->TraceIndex("reorg:granted:tree/" +
                              std::to_string(old_inc_) + ":X"),
            0)
      << ctrl_->TraceString();
}

// Drain idempotency as a property test, directly against TreeBuilder's
// ApplyEntry: a seq-tagged duplicate (step-aside re-drain) is skipped by the
// high-water mark; an untagged duplicate (seq 0, as restart re-tagging can
// produce) reaches BaseApply and must verify as a no-op; neither changes the
// new tree.
TEST_P(SwitchStepAsideTest, ReapplyingDrainedEntriesIsVerifiedNoOp) {
  BuildTallSparseTree();

  // Manual pass-3: run the builder to completion, then generate real side
  // entries by splitting leaves while the hook is live (all_read == true,
  // so every base-page change records).
  SideFile* side = db_->side_file();
  TreeBuilder builder(db_->reorganizer()->context(), side,
                      TreeBuilderOptions());
  side->Open();
  db_->tree()->set_base_update_hook(
      [&builder, side](Transaction* txn, BaseUpdateOp op, const Slice& key,
                       PageId leaf, PageId base) -> Status {
        (void)base;
        if (!builder.all_read()) {
          std::string ck = builder.CurrentKey();
          if (key.compare(ck) >= 0) return Status::OK();
        }
        return side->Record(txn, op, key, leaf);
      });
  db_->tree()->set_reorg_bit(true);
  ASSERT_TRUE(builder.Run().ok());
  ASSERT_TRUE(builder.all_read());

  uint64_t k = 200001;
  while (side->size() < 6) {
    ASSERT_TRUE(Put(k, std::string(64, 'v')).ok());
    k += 2;
  }

  std::vector<SideEntry> entries;
  for (;;) {
    SideEntry e;
    bool empty = false;
    Status s = side->PopFront(&e, &empty);
    if (s.IsBusy()) continue;
    ASSERT_TRUE(s.ok()) << s.ToString();
    if (empty) break;
    entries.push_back(e);
  }
  ASSERT_GE(entries.size(), 6u);
  for (const SideEntry& e : entries) {
    ASSERT_EQ(e.op, BaseUpdateOp::kInsert);  // splits record inserts
    ASSERT_GT(e.seq, 0u);
  }

  const ReorgStats& st = db_->reorganizer()->stats();
  for (const SideEntry& e : entries) {
    ASSERT_TRUE(builder.ApplyEntry(e).ok());
  }
  uint64_t hwm = builder.applied_seq_hwm();
  EXPECT_EQ(hwm, entries.back().seq);
  uint64_t applied_once = st.side_entries_applied;

  BTree* nt = builder.new_tree();
  ASSERT_TRUE(nt->CheckConsistency().ok());
  BTreeStats before;
  ASSERT_TRUE(nt->ComputeStats(&before).ok());

  // Round 2: the whole batch again, seq tags intact — a step-aside re-drain
  // after a window in which nothing new was recorded. All skipped.
  uint64_t dup0 = st.side_duplicates_skipped;
  for (const SideEntry& e : entries) {
    ASSERT_TRUE(builder.ApplyEntry(e).ok());
  }
  EXPECT_EQ(st.side_duplicates_skipped, dup0 + entries.size());
  EXPECT_EQ(st.side_entries_applied, applied_once);
  EXPECT_EQ(builder.applied_seq_hwm(), hwm);

  // Round 3: untagged duplicates — the high-water mark cannot help, so each
  // must reach BaseApply and verify, under the base X lock, that the exact
  // (separator, leaf) is already present.
  uint64_t noop0 = st.side_reapplied_noops;
  for (SideEntry e : entries) {
    e.seq = 0;
    ASSERT_TRUE(builder.ApplyEntry(e).ok());
  }
  EXPECT_EQ(st.side_reapplied_noops, noop0 + entries.size());
  EXPECT_EQ(builder.applied_seq_hwm(), hwm);

  // A delete whose separator is already gone (never existed): NotFound is
  // "already in effect", not an error.
  SideEntry ghost;
  ghost.op = BaseUpdateOp::kDelete;
  ghost.key = EncodeU64Key(1);
  ghost.leaf = entries.front().leaf;
  ghost.seq = hwm + 1;
  uint64_t noop1 = st.side_reapplied_noops;
  ASSERT_TRUE(builder.ApplyEntry(ghost).ok());
  EXPECT_EQ(st.side_reapplied_noops, noop1 + 1);
  EXPECT_EQ(builder.applied_seq_hwm(), hwm + 1);

  // The tree is bit-for-bit unmoved by any of the re-applications.
  BTreeStats after;
  ASSERT_TRUE(nt->ComputeStats(&after).ok());
  EXPECT_EQ(after.records, before.records);
  EXPECT_EQ(after.leaf_pages, before.leaf_pages);
  EXPECT_EQ(after.internal_pages, before.internal_pages);
  ASSERT_TRUE(nt->CheckConsistency().ok());

  // Dismantle the manual pass-3 state (the old tree stays live; the new
  // upper levels are simply abandoned here).
  db_->tree()->set_base_update_hook(nullptr);
  db_->tree()->set_reorg_bit(false);
  side->Close();
  db_->reorg_table()->set_pass3(false, Slice(), kInvalidPageId);
}

}  // namespace
}  // namespace soreorg
