// Segmented-WAL behavior (ISSUE 10): rotation keeps LSNs contiguous and
// every record readable; Open validates the seq/LSN chain and distinguishes
// a tail-segment torn tail (self-healed) from mid-log damage (Corruption);
// TruncateBelow removes exactly the wholly-dead sealed segments, parks them
// in the recycle pool, and rotation reuses them; and — the deterministic
// race test — a checkpoint-driven truncation fired from inside an active
// reorganization's step-aside window never removes a segment at or above
// the recovery floor.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/storage/env.h"
#include "src/wal/log_manager.h"
#include "src/wal/log_record.h"

namespace soreorg {
namespace {

LogRecord MakeInsert(TxnId txn, PageId page, const std::string& key,
                     const std::string& value) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn_id = txn;
  rec.page_id = page;
  rec.key = key;
  rec.value = value;
  return rec;
}

LogManagerOptions SmallSegments(uint64_t bytes = 512) {
  LogManagerOptions o;
  o.segment_bytes = bytes;
  o.recycle_max = 2;
  return o;
}

TEST(WalSegmentTest, RotationKeepsLsnsContiguousAndEveryRecordReadable) {
  MemEnv env;
  LogManager log(&env, "wal", SmallSegments());
  ASSERT_TRUE(log.Open().ok());
  EXPECT_EQ(log.segment_count(), 1u);
  EXPECT_EQ(log.tail_segment_name(), LogManager::SegmentFileName("wal", 1));

  std::vector<Lsn> lsns;
  for (int i = 0; i < 60; ++i) {
    LogRecord rec =
        MakeInsert(1, 1, "key" + std::to_string(i), std::string(40, 'v'));
    ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
    lsns.push_back(rec.lsn);
  }
  EXPECT_GT(log.segment_count(), 3u) << "512-byte segments must have rotated";
  EXPECT_GT(log.segments_created(), 3u);

  // The whole stream reads back in order with the append-time LSNs: segment
  // headers are invisible to the LSN space.
  std::vector<LogRecord> recs;
  LogReadStats stats;
  ASSERT_TRUE(log.ReadAll(&recs, 0, &stats).ok());
  ASSERT_EQ(recs.size(), lsns.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].lsn, lsns[i]);
    EXPECT_EQ(recs[i].key, "key" + std::to_string(i));
  }
  EXPECT_EQ(stats.segments_scanned, log.segment_count());
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.mid_log_corruption);

  // Point reads cross segment boundaries transparently.
  for (size_t i = 0; i < lsns.size(); i += 7) {
    LogRecord rec;
    ASSERT_TRUE(log.ReadAt(lsns[i], &rec).ok()) << "lsn " << lsns[i];
    EXPECT_EQ(rec.key, "key" + std::to_string(i));
  }
}

TEST(WalSegmentTest, ReopenRestoresChainAndKeepsAppending) {
  MemEnv env;
  std::vector<Lsn> lsns;
  size_t segs = 0;
  {
    LogManager log(&env, "wal", SmallSegments());
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 40; ++i) {
      LogRecord rec = MakeInsert(1, 1, "k" + std::to_string(i),
                                 std::string(40, 'v'));
      ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
      lsns.push_back(rec.lsn);
    }
    segs = log.segment_count();
    ASSERT_GT(segs, 1u);
  }
  LogManager log(&env, "wal", SmallSegments());
  ASSERT_TRUE(log.Open().ok());
  EXPECT_EQ(log.segment_count(), segs);
  std::vector<LogRecord> recs;
  ASSERT_TRUE(log.ReadAll(&recs).ok());
  ASSERT_EQ(recs.size(), lsns.size());
  for (size_t i = 0; i < recs.size(); ++i) EXPECT_EQ(recs[i].lsn, lsns[i]);

  // Appends resume exactly where the old incarnation stopped.
  LogRecord more = MakeInsert(1, 1, "after-reopen", "v");
  ASSERT_TRUE(log.AppendAndFlush(&more).ok());
  EXPECT_GT(more.lsn, lsns.back());
  recs.clear();
  ASSERT_TRUE(log.ReadAll(&recs).ok());
  EXPECT_EQ(recs.size(), lsns.size() + 1);
}

TEST(WalSegmentTest, TornTailInTailSegmentHealsWithoutSuppressingPriorSegments) {
  // Satellite 1: the torn-tail probe is bounded by the segment, so a tear
  // at the very end of the chain self-heals while every sealed segment's
  // records — arbitrarily far below the 64 KiB window the flat log used to
  // probe — survive untouched.
  MemEnv env;
  std::vector<Lsn> lsns;
  std::string tail_name;
  {
    LogManager log(&env, "wal", SmallSegments());
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 40; ++i) {
      LogRecord rec = MakeInsert(1, 1, "k" + std::to_string(i),
                                 std::string(40, 'v'));
      ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
      lsns.push_back(rec.lsn);
    }
    ASSERT_GT(log.segment_count(), 2u);
    tail_name = log.tail_segment_name();
  }
  // Tear: garbage appended to the tail segment behind the manager's back.
  {
    std::unique_ptr<File> f;
    ASSERT_TRUE(env.NewFile(tail_name, &f).ok());
    ASSERT_TRUE(f->Append("partial-frame-garbage").ok());
  }
  LogManager log(&env, "wal", SmallSegments());
  ASSERT_TRUE(log.Open().ok()) << "a torn tail must self-heal";
  EXPECT_EQ(log.open_dropped_bytes(), sizeof("partial-frame-garbage") - 1);
  std::vector<LogRecord> recs;
  ASSERT_TRUE(log.ReadAll(&recs).ok());
  ASSERT_EQ(recs.size(), lsns.size()) << "no sealed-segment record may vanish";
}

TEST(WalSegmentTest, MidSegmentDamageBelowAValidFrameIsCorruption) {
  MemEnv env;
  std::string tail_name;
  {
    LogManager log(&env, "wal", SmallSegments());
    ASSERT_TRUE(log.Open().ok());
    // Two records in the tail segment so damage to the first leaves a valid
    // frame beyond it.
    LogRecord a = MakeInsert(1, 1, "aaaa", std::string(40, 'v'));
    LogRecord b = MakeInsert(1, 1, "bbbb", std::string(40, 'v'));
    ASSERT_TRUE(log.AppendAndFlush(&a).ok());
    ASSERT_TRUE(log.AppendAndFlush(&b).ok());
    ASSERT_EQ(log.segment_count(), 1u);
    tail_name = log.tail_segment_name();
  }
  {
    std::unique_ptr<File> f;
    ASSERT_TRUE(env.NewFile(tail_name, &f).ok());
    ASSERT_TRUE(f->Write(LogManager::kSegmentHeaderSize +
                             LogManager::kFrameHeader + 2,
                         Slice("\xDE\xAD\xBE\xEF", 4))
                    .ok());
  }
  LogManager log(&env, "wal", SmallSegments());
  Status s = log.Open();
  EXPECT_TRUE(s.IsCorruption())
      << "valid frame beyond damage must refuse to heal: " << s.ToString();
}

TEST(WalSegmentTest, DamageInASealedSegmentIsCorruption) {
  MemEnv env;
  {
    LogManager log(&env, "wal", SmallSegments());
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 40; ++i) {
      LogRecord rec = MakeInsert(1, 1, "k" + std::to_string(i),
                                 std::string(40, 'v'));
      ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
    }
    ASSERT_GT(log.segment_count(), 2u);
  }
  // Flip bytes inside sealed segment 1's first frame.
  {
    std::unique_ptr<File> f;
    ASSERT_TRUE(
        env.NewFile(LogManager::SegmentFileName("wal", 1), &f).ok());
    ASSERT_TRUE(f->Write(LogManager::kSegmentHeaderSize +
                             LogManager::kFrameHeader + 2,
                         Slice("\xDE\xAD\xBE\xEF", 4))
                    .ok());
  }
  LogManager log(&env, "wal", SmallSegments());
  ASSERT_TRUE(log.Open().ok()) << "Open validates headers, not every frame";
  std::vector<LogRecord> recs;
  LogReadStats stats;
  ASSERT_TRUE(log.ReadAll(&recs, 0, &stats).ok());
  EXPECT_TRUE(stats.mid_log_corruption)
      << "damage in a sealed segment is never a healable torn tail";
}

TEST(WalSegmentTest, MissingMiddleSegmentIsCorruption) {
  MemEnv env;
  {
    LogManager log(&env, "wal", SmallSegments());
    ASSERT_TRUE(log.Open().ok());
    for (int i = 0; i < 40; ++i) {
      LogRecord rec = MakeInsert(1, 1, "k" + std::to_string(i),
                                 std::string(40, 'v'));
      ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
    }
    ASSERT_GT(log.segment_count(), 2u);
  }
  ASSERT_TRUE(env.DeleteFile(LogManager::SegmentFileName("wal", 2)).ok());
  LogManager log(&env, "wal", SmallSegments());
  Status s = log.Open();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(WalSegmentTest, TruncateBelowRemovesOnlyWhollyDeadSegmentsAndRecycles) {
  MemEnv env;
  LogManager log(&env, "wal", SmallSegments());
  ASSERT_TRUE(log.Open().ok());
  std::vector<Lsn> lsns;
  for (int i = 0; i < 60; ++i) {
    LogRecord rec = MakeInsert(1, 1, "k" + std::to_string(i),
                               std::string(40, 'v'));
    ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
    lsns.push_back(rec.lsn);
  }
  const size_t before = log.segment_count();
  ASSERT_GT(before, 4u);

  // Floor in the middle of the chain: only segments wholly below it go.
  const Lsn floor = lsns[lsns.size() / 2];
  ASSERT_TRUE(log.TruncateBelow(floor).ok());
  EXPECT_GT(log.segments_truncated(), 0u);
  EXPECT_LT(log.segment_count(), before);
  EXPECT_LE(log.LowestLsn(), floor)
      << "the segment holding the floor must survive";
  EXPECT_EQ(log.recycle_pool_size(), 2u) << "recycle_max parks two victims";

  // Everything at/above the floor still reads.
  std::vector<LogRecord> recs;
  ASSERT_TRUE(log.ReadAll(&recs, floor).ok());
  std::set<Lsn> seen;
  for (const auto& r : recs) seen.insert(r.lsn);
  for (Lsn l : lsns) {
    if (l >= floor) {
      EXPECT_TRUE(seen.count(l)) << "lsn " << l << " lost";
    }
  }
  // Reads below the front segment say NotFound, not garbage.
  LogRecord rec;
  EXPECT_TRUE(log.ReadAt(lsns[0], &rec).IsNotFound());

  // Rotation now reuses the parked files instead of creating fresh ones.
  const uint64_t created_before = log.segments_created();
  for (int i = 0; i < 30; ++i) {
    LogRecord more = MakeInsert(1, 1, "m" + std::to_string(i),
                                std::string(40, 'v'));
    ASSERT_TRUE(log.AppendAndFlush(&more).ok());
  }
  EXPECT_GT(log.segments_recycled(), 0u);
  EXPECT_EQ(log.recycle_pool_size(), 0u);
  // Fresh creations resume only after the pool drained.
  EXPECT_GE(log.segments_created(), created_before);

  // The truncated+recycled chain still reopens clean (seq gap at the front
  // is legal; a gap in the middle is not).
  std::vector<LogRecord> before_reopen;
  ASSERT_TRUE(log.ReadAll(&before_reopen).ok());
  LogManager reopened(&env, "wal", SmallSegments());
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<LogRecord> after_reopen;
  ASSERT_TRUE(reopened.ReadAll(&after_reopen).ok());
  ASSERT_EQ(after_reopen.size(), before_reopen.size());
}

TEST(WalSegmentTest, TruncateNeverRemovesTheTailSegment) {
  MemEnv env;
  LogManager log(&env, "wal", SmallSegments());
  ASSERT_TRUE(log.Open().ok());
  LogRecord rec = MakeInsert(1, 1, "only", "v");
  ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
  // A floor far past the end must still leave the (tail) segment in place.
  ASSERT_TRUE(log.TruncateBelow(rec.lsn + 1000000).ok());
  EXPECT_EQ(log.segment_count(), 1u);
  LogRecord got;
  ASSERT_TRUE(log.ReadAt(rec.lsn, &got).ok());
  EXPECT_EQ(got.key, "only");
}

// ---------------------------------------------------------------------------
// Satellite 3: deterministic truncation-vs-checkpoint race against an active
// reorganization's side-file drain. The switcher is forced through
// step-aside rounds; from inside each released-lock window a full
// Checkpoint() (which truncates the WAL) runs while the reorg unit is still
// open and its side file still holds undrained entries. The assertion: the
// segment holding the open unit's BEGIN record — the forward-recovery floor
// — is never removed, and a crash taken right after any such checkpoint
// still recovers to the correct tree.
// ---------------------------------------------------------------------------
TEST(WalSegmentTest, TruncationDuringSwitchDrainPreservesRecoveryFloor) {
  MemEnv env;
  DatabaseOptions opts;
  opts.buffer_pool_pages = 64;
  opts.wal_segment_bytes = 4096;
  opts.wal_recycle_segments = 2;
  opts.redo_threads = 4;
  opts.reorg.switcher.force_step_asides = 2;
  opts.reorg.switcher.step_aside_wait_ms = 10;

  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
  std::vector<std::pair<std::string, std::string>> model;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    std::string value(40, 'v');
    ASSERT_TRUE(db->Put(key, value).ok());
    if (i % 3 != 0) {
      ASSERT_TRUE(db->Delete(key).ok());
    } else {
      model.emplace_back(key, value);
    }
  }
  ASSERT_TRUE(db->Checkpoint().ok());

  Database* raw = db.get();
  int checkpoints_in_window = 0;
  bool floor_violated = false;
  db->reorganizer()->options()->switcher.on_step_aside = [&] {
    // The race, made deterministic: checkpoint + truncation while the
    // switch is parked mid-drain with an open reorg unit.
    Status s = raw->Checkpoint();
    if (!s.ok()) return;
    ++checkpoints_in_window;
    ReorgTableSnapshot snap = raw->reorg_table()->Snapshot();
    if (snap.has_open_unit && snap.begin_lsn != kInvalidLsn &&
        raw->log_manager()->LowestLsn() > snap.begin_lsn) {
      floor_violated = true;  // a needed segment was truncated away
    }
  };

  ASSERT_TRUE(db->Reorganize().ok());
  EXPECT_GT(checkpoints_in_window, 0)
      << "the race window never opened — the test lost its teeth";
  EXPECT_FALSE(floor_violated)
      << "truncation removed a segment at/above the forward-recovery floor";

  // The truncated log still carries everything recovery needs: crash now
  // and come back.
  db.reset();
  env.Crash();
  std::unique_ptr<Database> recovered;
  ASSERT_TRUE(Database::Open(&env, opts, &recovered).ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(recovered
                  ->Scan(Slice(), Slice(),
                         [&](const Slice& k, const Slice& v) {
                           got.emplace_back(k.ToString(), v.ToString());
                           return true;
                         })
                  .ok());
  EXPECT_EQ(got, model);
  ASSERT_TRUE(recovered->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
