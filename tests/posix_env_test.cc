// PosixEnv: the real-file backend, exercised end to end including a
// process-local "restart" (close + reopen from disk).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/db/database.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

namespace soreorg {
namespace {

class PosixEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/soreorg_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    std::string cmd = "rm -rf " + dir_;
    ASSERT_EQ(system(cmd.c_str()), 0);
  }

  std::string dir_;
  PosixEnv env_;
};

TEST_F(PosixEnvTest, FileReadWriteSyncTruncate) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_.NewFile(dir_ + "/f", &f).ok());
  ASSERT_TRUE(f->Append("hello world").ok());
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(f->Size(), 11u);
  char buf[16];
  size_t n;
  ASSERT_TRUE(f->Read(6, 5, buf, &n).ok());
  EXPECT_EQ(std::string(buf, n), "world");
  ASSERT_TRUE(f->Write(0, "HELLO").ok());
  ASSERT_TRUE(f->Read(0, 5, buf, &n).ok());
  EXPECT_EQ(std::string(buf, n), "HELLO");
  ASSERT_TRUE(f->Truncate(5).ok());
  EXPECT_EQ(f->Size(), 5u);
  EXPECT_TRUE(env_.FileExists(dir_ + "/f"));
  ASSERT_TRUE(env_.DeleteFile(dir_ + "/f").ok());
  EXPECT_FALSE(env_.FileExists(dir_ + "/f"));
}

TEST_F(PosixEnvTest, DatabaseSurvivesCloseAndReopen) {
  DatabaseOptions options;
  options.name = dir_ + "/db";
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(&env_, options, &db).ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          db->Put(EncodeU64Key(static_cast<uint64_t>(i)), "v" + std::to_string(i))
              .ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(&env_, options, &db).ok());
    for (int i = 0; i < 500; ++i) {
      std::string v;
      ASSERT_TRUE(db->Get(EncodeU64Key(static_cast<uint64_t>(i)), &v).ok())
          << i;
      EXPECT_EQ(v, "v" + std::to_string(i));
    }
    EXPECT_TRUE(db->tree()->CheckConsistency().ok());
  }
}

TEST_F(PosixEnvTest, ReopenWithoutCheckpointRedoesFromWal) {
  DatabaseOptions options;
  options.name = dir_ + "/db";
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(&env_, options, &db).ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db->Put(EncodeU64Key(static_cast<uint64_t>(i)),
                          std::string(64, 'w'))
                      .ok());
    }
    // No checkpoint: everything must come back from the WAL alone (the
    // destructor flushes pages, but redo must also work from a cold start;
    // remove the page file to prove it).
  }
  ASSERT_EQ(system(("rm -f " + dir_ + "/db.pages").c_str()), 0);
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(&env_, options, &db).ok());
    uint64_t n = 0;
    db->Scan(Slice(), Slice(), [&n](const Slice&, const Slice&) {
      ++n;
      return true;
    });
    EXPECT_EQ(n, 300u);
    EXPECT_TRUE(db->tree()->CheckConsistency().ok());
  }
}

TEST_F(PosixEnvTest, ReorganizeOnRealFiles) {
  DatabaseOptions options;
  options.name = dir_ + "/db";
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env_, options, &db).ok());
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(
      SparsifyByDeletion(db.get(), 2000, 64, 0.95, 0.7, 10, 5, &survivors)
          .ok());
  ASSERT_TRUE(db->Reorganize().ok());
  EXPECT_TRUE(db->tree()->CheckConsistency().ok());
  uint64_t n = 0;
  db->Scan(Slice(), Slice(), [&n](const Slice&, const Slice&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, survivors.size());
}

}  // namespace
}  // namespace soreorg
