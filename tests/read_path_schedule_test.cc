// Deterministic schedules for the latch-free read path against the
// reorganizer. Two windows matter:
//
//   * pass 2 (RX held on a leaf being moved): the optimistic reader must see
//     the page mark, refuse the latch-free image, and fall into the Table-1
//     protocol — back off, wait out the RX with an instant RS on the base
//     page, and retry after the reorganizer releases;
//   * the pass-3 switch window (§7.4): reads issued while the switcher holds
//     the old tree's X lock must still answer correctly, whether they pass
//     optimistically (incarnation re-check) or drain behind the tree lock.
//
// Both are pinned by script / lock-point predicate, not by stress, and both
// run under the tsan preset.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/btree/iterator.h"
#include "src/db/database.h"
#include "src/sim/schedule.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

namespace soreorg {
namespace {

// An optimistic reader that hits a leaf under RX: the page mark forces the
// fallback, and the fallback runs the paper's back-off/RS-wait dance.
TEST(ReadPathScheduleTest, ReaderFallsBackAndBacksOffUnderRx) {
  MemEnv env;
  DatabaseOptions options;  // optimistic_reads defaults to on
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, options, &db).ok());
  const std::string key = EncodeU64Key(100);
  ASSERT_TRUE(db->Put(key, "moving-value").ok());
  std::string warm;
  ASSERT_TRUE(db->Get(key, &warm).ok());  // resident: descent would succeed

  // The leaf the key lives on and its base page, via a latch-free probe.
  BTree::OptimisticDescent probe;
  ASSERT_TRUE(db->tree()->OptimisticDescend(key, &probe));
  PageId leaf = probe.leaf_pid;
  PageId base = probe.base_pid;

  ReadPathStats before = db->tree()->read_path_stats();
  LockManager* lm = db->lock_manager();
  ScheduleController ctrl;
  ctrl.InstallLockHooks(lm);

  Status get_status;
  std::string value;
  ctrl.Spawn("reorg", [&] {
    ctrl.Point("begin");
    // Pass-2's per-leaf posture: R on the base page, RX on the leaf being
    // moved. The reader's instant RS on the base is what waits the R out.
    ASSERT_TRUE(lm->Lock(kReorgTxnId, PageLock(base), LockMode::kR).ok());
    ASSERT_TRUE(lm->Lock(kReorgTxnId, PageLock(leaf), LockMode::kRX).ok());
    ctrl.Point("rx-held");
    lm->ReleaseAll(kReorgTxnId);
  });
  ctrl.Spawn("reader", [&] {
    ctrl.Point("begin");
    // Optimistic descent sees the leaf's mark -> fallback -> locked path
    // backs off from the RX, waits via instant RS, retries after release.
    get_status = db->Get(key, &value);
  });
  // reorg takes RX; reader runs its Get until it parks in the RS wait;
  // reorg releases; the reader's retry completes in free-run.
  ctrl.SetScript({"reorg", "reader", "reorg"});
  ASSERT_TRUE(ctrl.Run().ok()) << ctrl.TraceString();

  ASSERT_TRUE(get_status.ok()) << get_status.ToString();
  EXPECT_EQ(value, "moving-value");

  ReadPathStats after = db->tree()->read_path_stats();
  EXPECT_GE(after.fallbacks, before.fallbacks + 1)
      << "the reader should have abandoned the optimistic path";

  // The fallback really ran the paper's protocol, in order.
  std::string leaf_name = "page/" + std::to_string(leaf);
  int backoff = ctrl.TraceIndex("reader:backoff:" + leaf_name + ":S");
  int rs_done = ctrl.TraceIndex("reader:instant-granted");
  int retry = ctrl.TraceIndex("reader:granted:" + leaf_name + ":S");
  ASSERT_GE(backoff, 0) << ctrl.TraceString();
  ASSERT_GE(rs_done, 0) << ctrl.TraceString();
  ASSERT_GE(retry, 0) << ctrl.TraceString();
  EXPECT_LT(backoff, rs_done) << ctrl.TraceString();
  EXPECT_LT(rs_done, retry) << ctrl.TraceString();
}

// Reads racing the pass-3 switch itself: the switcher is parked at the
// moment it is granted X on a tree lock (the switch window), the reader
// issues Gets right inside that window, and again after the switch
// completes. Every answer must be correct and the incarnation must have
// moved.
TEST(ReadPathScheduleTest, GetsInsideSwitchWindowStayCorrect) {
  MemEnv env;
  DatabaseOptions options;
  options.buffer_pool_pages = 4096;  // resident: optimistic path engages
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, options, &db).ok());

  std::vector<uint64_t> survivors;
  ASSERT_TRUE(
      SparsifyByDeletion(db.get(), 2000, 64, 0.95, 0.7, 10, 5, &survivors)
          .ok());
  ASSERT_FALSE(survivors.empty());
  uint64_t probe_key = survivors[survivors.size() / 2];
  std::string warm;
  ASSERT_TRUE(db->Get(EncodeU64Key(probe_key), &warm).ok());

  uint64_t inc_before = db->tree()->incarnation();

  ScheduleController ctrl(
      ScheduleOptions{.seed = 1, .step_timeout_ms = 30000, .settle_us = 2000});
  ctrl.InstallLockHooks(db->lock_manager());
  // Park the switcher the moment any tree-lock X is granted: inside the
  // switch window, before the drain completes.
  ctrl.SetLockPointPredicate([](LockEvent e, const LockName& name, LockMode m) {
    return e == LockEvent::kGranted && name.space == LockSpace::kTree &&
           m == LockMode::kX;
  });

  Status reorg_status, get_in_window, get_after;
  std::string v_in_window, v_after;
  ctrl.Spawn("switcher", [&] {
    ctrl.Point("begin");
    reorg_status = db->Reorganize();
    ctrl.Note("reorg-done");
  });
  ctrl.Spawn("reader", [&] {
    ctrl.Point("begin");
    get_in_window = db->Get(EncodeU64Key(probe_key), &v_in_window);
    ctrl.Point("read-in-window");
    get_after = db->Get(EncodeU64Key(probe_key), &v_after);
  });
  // switcher runs the whole reorg until the predicate parks it at the
  // window; reader issues its in-window Get (parking behind the tree lock
  // if it falls back); the epilogue free-runs both to completion.
  ctrl.SetScript({"switcher", "reader", "switcher"});
  ASSERT_TRUE(ctrl.Run().ok()) << ctrl.TraceString();

  ASSERT_TRUE(reorg_status.ok()) << reorg_status.ToString();
  ASSERT_TRUE(get_in_window.ok()) << get_in_window.ToString();
  ASSERT_TRUE(get_after.ok()) << get_after.ToString();
  EXPECT_EQ(v_in_window, warm);
  EXPECT_EQ(v_after, warm);
  EXPECT_GT(db->tree()->incarnation(), inc_before);
  ASSERT_TRUE(db->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
