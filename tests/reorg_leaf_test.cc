// Pass 1 (leaf compaction) tests.

#include "tests/test_util.h"

namespace soreorg {
namespace {

class LeafPassTest : public DbFixture {
 protected:
  void Sparsify(uint64_t n = 3000, double delete_frac = 0.7,
                uint64_t seed = 42) {
    ASSERT_TRUE(SparsifyByDeletion(db_.get(), n, 64, 0.95, delete_frac, 10,
                                   seed, &survivors_)
                    .ok());
  }

  std::vector<uint64_t> survivors_;
};

TEST_F(LeafPassTest, CompactionRaisesFillFactor) {
  Sparsify();
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());
  ASSERT_LT(before.avg_leaf_fill, 0.55);

  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());

  BTreeStats after;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after).ok());
  EXPECT_GT(after.avg_leaf_fill, 0.65);
  EXPECT_LT(after.leaf_pages, before.leaf_pages * 3 / 4);
  EXPECT_EQ(after.records, before.records);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(LeafPassTest, AllRecordsReadableAfterPass) {
  Sparsify();
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  for (uint64_t k : survivors_) {
    std::string v;
    ASSERT_TRUE(db_->Get(EncodeU64Key(k), &v).ok()) << k;
  }
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(LeafPassTest, FreedPagesReturnToFreeList) {
  Sparsify();
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  ASSERT_TRUE(db_->buffer_pool()->FlushAndSync().ok());  // release gates
  BTreeStats after;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after).ok());
  uint64_t freed = before.leaf_pages - after.leaf_pages;
  EXPECT_GT(freed, 0u);
  // Each copy-switch (move) unit consumed one free page while freeing its
  // sources, so the net leaf-count drop is pages_freed - move_units.
  EXPECT_EQ(db_->reorganizer()->stats().pages_freed -
                db_->reorganizer()->stats().move_units,
            freed);
}

TEST_F(LeafPassTest, UnitsAreLoggedBeginToEnd) {
  Sparsify(1500);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  ASSERT_TRUE(db_->log_manager()->Flush().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(db_->log_manager()->ReadAll(&recs).ok());
  int begins = 0, ends = 0, moves = 0, modifies = 0;
  uint32_t open_unit = 0;
  for (const LogRecord& r : recs) {
    switch (r.type) {
      case LogType::kReorgBegin:
        EXPECT_EQ(open_unit, 0u) << "units must not nest";
        open_unit = r.unit;
        ++begins;
        break;
      case LogType::kReorgEnd:
        EXPECT_EQ(open_unit, r.unit);
        open_unit = 0;
        ++ends;
        break;
      case LogType::kReorgMove:
        EXPECT_EQ(r.unit, open_unit);
        ++moves;
        break;
      case LogType::kReorgModify:
        EXPECT_EQ(r.unit, open_unit);
        ++modifies;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(begins, 0);
  EXPECT_EQ(begins, ends);
  EXPECT_GT(moves, 0);
  EXPECT_GT(modifies, 0);
  EXPECT_EQ(db_->reorganizer()->stats().units,
            static_cast<uint64_t>(begins));
}

TEST_F(LeafPassTest, CarefulWritingLogsOnlyKeys) {
  Sparsify(2000);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(db_->log_manager()->ReadAll(&recs).ok());
  bool saw_move = false;
  for (const LogRecord& r : recs) {
    if (r.type != LogType::kReorgMove) continue;
    saw_move = true;
    EXPECT_TRUE(r.flags & kMoveKeysOnly);
    // Keys are 8 bytes; with 64-byte values a full-record payload would be
    // ~9x larger. Sanity-bound the per-record cost.
    std::vector<std::string> keys;
    ASSERT_TRUE(DecodeMovedKeys(r.payload, &keys).ok());
    EXPECT_LE(r.payload.size(), keys.size() * 10 + 8);
  }
  EXPECT_TRUE(saw_move);
}

TEST_F(LeafPassTest, FullLoggingModeCarriesRecordBodies) {
  DatabaseOptions opts;
  opts.reorg.careful_writing = false;
  OpenDb(opts);
  Sparsify(2000);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(db_->log_manager()->ReadAll(&recs).ok());
  bool saw_move = false;
  for (const LogRecord& r : recs) {
    if (r.type != LogType::kReorgMove || (r.flags & kSwapImages)) continue;
    saw_move = true;
    EXPECT_FALSE(r.flags & kMoveKeysOnly);
    std::vector<std::pair<std::string, std::string>> moved;
    ASSERT_TRUE(DecodeMovedRecords(r.payload, &moved).ok());
    for (const auto& [k, v] : moved) EXPECT_EQ(v.size(), 64u);
  }
  EXPECT_TRUE(saw_move);
}

TEST_F(LeafPassTest, PaperHeuristicPrefersCopySwitchIntoHoles) {
  Sparsify(3000, 0.7);
  ASSERT_GT(db_->disk_manager()->free_count(), 0u);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  const ReorgStats& st = db_->reorganizer()->stats();
  // With plenty of deletion-created holes, the heuristic should find good
  // empty pages for at least some units.
  EXPECT_GT(st.move_units, 0u);
}

TEST_F(LeafPassTest, NoNewPlacePolicyCompactsInPlaceOnly) {
  DatabaseOptions opts;
  opts.reorg.compactor.free_space_policy = FreeSpacePolicy::kNone;
  OpenDb(opts);
  Sparsify(2000);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  const ReorgStats& st = db_->reorganizer()->stats();
  EXPECT_GT(st.compact_units, 0u);
  EXPECT_EQ(st.move_units, 0u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(LeafPassTest, TargetFillIsRespected) {
  DatabaseOptions opts;
  opts.reorg.compactor.target_fill = 0.6;
  OpenDb(opts);
  Sparsify(3000, 0.8);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  BTreeStats st;
  ASSERT_TRUE(db_->tree()->ComputeStats(&st).ok());
  // No leaf group was compacted beyond ~0.6 fill.
  EXPECT_LT(st.avg_leaf_fill, 0.72);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(LeafPassTest, SecondPassRunIsIdempotent) {
  Sparsify();
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  BTreeStats first;
  ASSERT_TRUE(db_->tree()->ComputeStats(&first).ok());
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  BTreeStats second;
  ASSERT_TRUE(db_->tree()->ComputeStats(&second).ok());
  EXPECT_EQ(second.records, first.records);
  EXPECT_LE(second.leaf_pages, first.leaf_pages);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(LeafPassTest, WorksWithoutSidePointers) {
  DatabaseOptions opts;
  opts.tree.side_pointers = SidePointerMode::kNone;
  OpenDb(opts);
  Sparsify(2000);
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size());
}

TEST_F(LeafPassTest, EmptyTreeIsANoOp) {
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  EXPECT_EQ(db_->reorganizer()->stats().units, 0u);
}

TEST_F(LeafPassTest, DenseTreeNeedsNoUnits) {
  auto records = MakeRecords(2000, 64);
  ASSERT_TRUE(db_->BulkLoad(records, 0.9).ok());
  ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  EXPECT_EQ(db_->reorganizer()->stats().units, 0u);
}

}  // namespace
}  // namespace soreorg
