#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/reorg/side_file.h"
#include "src/storage/env.h"

namespace soreorg {
namespace {

class SideFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    log_ = std::make_unique<LogManager>(env_.get(), "wal");
    ASSERT_TRUE(log_->Open().ok());
    side_ = std::make_unique<SideFile>(&locks_, log_.get());
  }

  std::unique_ptr<MemEnv> env_;
  LockManager locks_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<SideFile> side_;
};

TEST_F(SideFileTest, RecordPopFifo) {
  Transaction txn(50);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "a", 10).ok());
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kDelete, "b", 11).ok());
  EXPECT_EQ(side_->size(), 2u);
  EXPECT_EQ(side_->total_recorded(), 2u);

  // PopFront respects record locks: the recording transaction must finish
  // before its entries can be consumed.
  locks_.ReleaseAll(50);

  SideEntry e;
  bool empty;
  ASSERT_TRUE(side_->PopFront(&e, &empty).ok());
  EXPECT_FALSE(empty);
  EXPECT_EQ(e.key, "a");
  EXPECT_EQ(e.op, BaseUpdateOp::kInsert);
  EXPECT_EQ(e.leaf, 10u);
  ASSERT_TRUE(side_->PopFront(&e, &empty).ok());
  EXPECT_EQ(e.key, "b");
  ASSERT_TRUE(side_->PopFront(&e, &empty).ok());
  EXPECT_TRUE(empty);
  locks_.ReleaseAll(50);
}

TEST_F(SideFileTest, RecordLogsUnderTransactionChain) {
  Transaction txn(51);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "k", 3).ok());
  EXPECT_NE(txn.last_lsn(), kInvalidLsn);
  ASSERT_TRUE(log_->Flush().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(log_->ReadAll(&recs).ok());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, LogType::kSideInsert);
  EXPECT_EQ(recs[0].txn_id, 51u);
  EXPECT_EQ(recs[0].key, "k");
  EXPECT_EQ(recs[0].page_id, 3u);
  locks_.ReleaseAll(51);
}

TEST_F(SideFileTest, SwitcherXLockMakesRecordReturnBusy) {
  // The switcher holds X on the side file. An updater's Record() must wait
  // (instant-duration IX) and then report kBusy so the caller retries on
  // the new tree.
  ASSERT_TRUE(locks_.Lock(kReorgTxnId, SideFileLock(), LockMode::kX).ok());
  std::atomic<bool> got_busy{false};
  std::thread updater([&]() {
    Transaction txn(60);
    Status s = side_->Record(&txn, BaseUpdateOp::kInsert, "z", 9);
    got_busy.store(s.IsBusy());
    locks_.ReleaseAll(60);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got_busy.load());  // still waiting
  locks_.ReleaseAll(kReorgTxnId);  // switch finishes
  updater.join();
  EXPECT_TRUE(got_busy.load());
  EXPECT_EQ(side_->size(), 0u);  // nothing recorded
}

TEST_F(SideFileTest, UpdaterIxBlocksSwitcherUntilCommit) {
  Transaction txn(61);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "k", 2).ok());
  // The updater's IX is held: the switcher's X must wait.
  EXPECT_TRUE(
      locks_.TryLock(kReorgTxnId, SideFileLock(), LockMode::kX).IsBusy());
  locks_.ReleaseAll(61);  // commit
  EXPECT_TRUE(locks_.Lock(kReorgTxnId, SideFileLock(), LockMode::kX).ok());
  locks_.ReleaseAll(kReorgTxnId);
}

TEST_F(SideFileTest, UndoInsertRemovesNewestMatch) {
  Transaction txn(62);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "k", 1).ok());
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kDelete, "k", 1).ok());
  side_->UndoInsert(BaseUpdateOp::kDelete, "k");
  EXPECT_EQ(side_->size(), 1u);
  locks_.ReleaseAll(62);
  SideEntry e;
  bool empty;
  ASSERT_TRUE(side_->PopFront(&e, &empty).ok());
  EXPECT_EQ(e.op, BaseUpdateOp::kInsert);
}

TEST_F(SideFileTest, SerializeRestoreRoundTrip) {
  Transaction txn(63);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "aa", 5).ok());
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kDelete, "bb", 6).ok());
  std::string image = side_->Serialize();
  locks_.ReleaseAll(63);

  SideFile other(&locks_, log_.get());
  ASSERT_TRUE(other.Restore(image).ok());
  EXPECT_EQ(other.size(), 2u);
  SideEntry e;
  bool empty;
  ASSERT_TRUE(other.PopFront(&e, &empty).ok());
  EXPECT_EQ(e.key, "aa");
  EXPECT_EQ(e.leaf, 5u);
}

TEST_F(SideFileTest, PruneBeyondDropsLateEntries) {
  Transaction txn(64);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "aaa", 1).ok());
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "mmm", 2).ok());
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "zzz", 3).ok());
  side_->PruneBeyond("mmm");
  EXPECT_EQ(side_->size(), 2u);  // "zzz" dropped
  locks_.ReleaseAll(64);
}

TEST_F(SideFileTest, PopWaitsForRecordingTransaction) {
  Transaction txn(70);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "q", 4).ok());
  std::atomic<bool> popped{false};
  std::thread builder([&]() {
    SideEntry e;
    bool empty;
    ASSERT_TRUE(side_->PopFront(&e, &empty).ok());
    EXPECT_FALSE(empty);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(popped.load());  // txn 70 still holds the record lock
  locks_.ReleaseAll(70);        // commit
  builder.join();
  EXPECT_TRUE(popped.load());
}

TEST_F(SideFileTest, CancelRemovesAndLogsCompensation) {
  Transaction txn(71);
  ASSERT_TRUE(side_->Record(&txn, BaseUpdateOp::kInsert, "z", 8).ok());
  ASSERT_TRUE(side_->Cancel(&txn, BaseUpdateOp::kInsert, "z", 8).ok());
  EXPECT_EQ(side_->size(), 0u);
  // Cancel of a non-recorded entry is a silent no-op (and logs nothing).
  uint64_t recs = log_->records_appended();
  ASSERT_TRUE(side_->Cancel(&txn, BaseUpdateOp::kDelete, "nope", 9).ok());
  EXPECT_EQ(log_->records_appended(), recs);
  ASSERT_TRUE(log_->Flush().ok());
  std::vector<LogRecord> all;
  ASSERT_TRUE(log_->ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].type, LogType::kSideInsert);
  EXPECT_EQ(all[1].type, LogType::kSideCancel);
  locks_.ReleaseAll(71);
}

TEST_F(SideFileTest, RedoCancelAndReAddRoundTrip) {
  side_->RedoInsert(BaseUpdateOp::kInsert, "m", 3);
  side_->RedoCancel(BaseUpdateOp::kInsert, "m", 3);
  EXPECT_EQ(side_->size(), 0u);
  side_->ReAdd(BaseUpdateOp::kInsert, "m", 3);
  EXPECT_EQ(side_->size(), 1u);
}

}  // namespace
}  // namespace soreorg
