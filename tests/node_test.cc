// Direct tests of the node layouts (LeafNode / InternalNode) and the
// bottom-up InternalBuilder, including its crash-restart spine restore.

#include <gtest/gtest.h>

#include "src/btree/bulk_builder.h"
#include "src/btree/node.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/env.h"
#include "src/util/coding.h"

namespace soreorg {
namespace {

TEST(LeafNodeTest, InsertKeepsSortedOrderRegardlessOfArrival) {
  Page page;
  LeafNode::Format(&page, 7);
  LeafNode ln(&page);
  for (uint64_t k : {50ull, 10ull, 30ull, 20ull, 40ull}) {
    ASSERT_TRUE(ln.Insert(EncodeU64Key(k), "v").ok());
  }
  ASSERT_EQ(ln.Count(), 5);
  for (int i = 1; i < ln.Count(); ++i) {
    EXPECT_LT(ln.KeyAt(i - 1).compare(ln.KeyAt(i)), 0);
  }
  EXPECT_EQ(page.type(), PageType::kLeaf);
  EXPECT_EQ(page.level(), 0);
  EXPECT_EQ(page.header_page_id(), 7u);
}

TEST(LeafNodeTest, LowerBoundSemantics) {
  Page page;
  LeafNode::Format(&page, 1);
  LeafNode ln(&page);
  for (uint64_t k : {10ull, 20ull, 30ull}) {
    ASSERT_TRUE(ln.Insert(EncodeU64Key(k), "v").ok());
  }
  bool exact;
  EXPECT_EQ(ln.LowerBound(EncodeU64Key(5), &exact), 0);
  EXPECT_FALSE(exact);
  EXPECT_EQ(ln.LowerBound(EncodeU64Key(20), &exact), 1);
  EXPECT_TRUE(exact);
  EXPECT_EQ(ln.LowerBound(EncodeU64Key(25), &exact), 2);
  EXPECT_FALSE(exact);
  EXPECT_EQ(ln.LowerBound(EncodeU64Key(99), &exact), 3);
  EXPECT_FALSE(exact);
}

TEST(LeafNodeTest, DuplicateInsertRejected) {
  Page page;
  LeafNode::Format(&page, 1);
  LeafNode ln(&page);
  ASSERT_TRUE(ln.Insert("k", "1").ok());
  EXPECT_TRUE(ln.Insert("k", "2").IsInvalidArgument());
  EXPECT_EQ(ln.ValueAt(0), Slice("1"));
}

TEST(LeafNodeTest, SetValueAtHandlesSizeChanges) {
  Page page;
  LeafNode::Format(&page, 1);
  LeafNode ln(&page);
  ASSERT_TRUE(ln.Insert("a", "short").ok());
  ASSERT_TRUE(ln.Insert("b", "other").ok());
  ASSERT_TRUE(ln.SetValueAt(0, std::string(200, 'L')).ok());
  EXPECT_EQ(ln.ValueAt(0).size(), 200u);
  EXPECT_EQ(ln.KeyAt(0), Slice("a"));
  EXPECT_EQ(ln.ValueAt(1), Slice("other"));
  ASSERT_TRUE(ln.SetValueAt(0, "tiny").ok());
  EXPECT_EQ(ln.ValueAt(0), Slice("tiny"));
}

TEST(InternalNodeTest, FindChildClampsAndRoutes) {
  Page page;
  InternalNode::Format(&page, 9, /*level=*/1, Slice("low"));
  InternalNode node(&page);
  ASSERT_TRUE(node.Insert(EncodeU64Key(10), 100).ok());
  ASSERT_TRUE(node.Insert(EncodeU64Key(20), 200).ok());
  ASSERT_TRUE(node.Insert(EncodeU64Key(30), 300).ok());
  EXPECT_EQ(node.ChildAt(node.FindChild(EncodeU64Key(5))), 100u);  // clamp
  EXPECT_EQ(node.ChildAt(node.FindChild(EncodeU64Key(10))), 100u);
  EXPECT_EQ(node.ChildAt(node.FindChild(EncodeU64Key(19))), 100u);
  EXPECT_EQ(node.ChildAt(node.FindChild(EncodeU64Key(20))), 200u);
  EXPECT_EQ(node.ChildAt(node.FindChild(EncodeU64Key(999))), 300u);
  EXPECT_EQ(node.LowMark(), Slice("low"));
  EXPECT_EQ(page.level(), 1);
}

TEST(InternalNodeTest, SetKeyAtRepositionsEntry) {
  Page page;
  InternalNode::Format(&page, 9, 1, Slice());
  InternalNode node(&page);
  ASSERT_TRUE(node.Insert(EncodeU64Key(10), 100).ok());
  ASSERT_TRUE(node.Insert(EncodeU64Key(20), 200).ok());
  // Raise 10 -> 15 (stays slot 0), then raise to 25 (moves past 20).
  ASSERT_TRUE(node.SetKeyAt(0, EncodeU64Key(15)).ok());
  EXPECT_EQ(node.ChildAt(0), 100u);
  ASSERT_TRUE(node.SetKeyAt(0, EncodeU64Key(25)).ok());
  EXPECT_EQ(node.ChildAt(0), 200u);
  EXPECT_EQ(node.ChildAt(1), 100u);
  EXPECT_EQ(DecodeU64Key(node.KeyAt(1)), 25u);
}

TEST(InternalNodeTest, FindChildSlotAndSetChild) {
  Page page;
  InternalNode::Format(&page, 9, 1, Slice());
  InternalNode node(&page);
  ASSERT_TRUE(node.Insert(EncodeU64Key(10), 100).ok());
  ASSERT_TRUE(node.Insert(EncodeU64Key(20), 200).ok());
  EXPECT_EQ(node.FindChildSlot(200), 1);
  EXPECT_EQ(node.FindChildSlot(999), -1);
  node.SetChildAt(1, 222);
  EXPECT_EQ(node.ChildAt(1), 222u);
  EXPECT_EQ(DecodeU64Key(node.KeyAt(1)), 20u);  // key unchanged
}

TEST(PackCellsTest, RoundTrip) {
  Page page;
  LeafNode::Format(&page, 1);
  LeafNode ln(&page);
  for (uint64_t k : {1ull, 2ull, 3ull, 4ull}) {
    ASSERT_TRUE(ln.Insert(EncodeU64Key(k), "v" + std::to_string(k)).ok());
  }
  SlottedPage sp(&page);
  std::string bundle = PackCellRange(sp, 1, 3);
  std::vector<std::string> cells;
  ASSERT_TRUE(UnpackCells(Slice(bundle), &cells).ok());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], sp.GetCell(1).ToString());
  EXPECT_EQ(cells[1], sp.GetCell(2).ToString());
  EXPECT_TRUE(UnpackCells(Slice(bundle.data(), bundle.size() - 1), &cells)
                  .IsCorruption());
}

class InternalBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    disk_ = std::make_unique<DiskManager>(env_.get(), "pages");
    ASSERT_TRUE(disk_->Open().ok());
    bp_ = std::make_unique<BufferPool>(disk_.get(), 256);
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> bp_;
};

TEST_F(InternalBuilderTest, SingleBasePageTree) {
  InternalBuilder b(bp_.get(), 0.9);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        b.Add(i == 0 ? Slice() : Slice(EncodeU64Key(i * 100)), 500 + i).ok());
  }
  PageId root;
  uint8_t height;
  ASSERT_TRUE(b.Finish(&root, &height).ok());
  EXPECT_EQ(height, 2);  // one base page IS the root
  Page* page;
  ASSERT_TRUE(bp_->FetchPage(root, &page).ok());
  InternalNode node(page);
  EXPECT_EQ(node.Count(), 10);
  EXPECT_EQ(node.ChildAt(node.FindChild(EncodeU64Key(550))), 505u);
  bp_->UnpinPage(root, false);
}

TEST_F(InternalBuilderTest, SpillsIntoMultipleLevels) {
  InternalBuilder b(bp_.get(), 0.9);
  const int kChildren = 2000;  // forces >1 base page and a parent level
  for (int i = 0; i < kChildren; ++i) {
    ASSERT_TRUE(b.Add(i == 0 ? Slice()
                             : Slice(EncodeU64Key(
                                   static_cast<uint64_t>(i) * 10)),
                      10000 + i)
                    .ok());
  }
  PageId root;
  uint8_t height;
  ASSERT_TRUE(b.Finish(&root, &height).ok());
  EXPECT_GE(height, 3);
  EXPECT_GT(b.created_pages().size(), 5u);
  // Route a few probes through the built levels.
  for (uint64_t probe : {0ull, 5000ull, 19990ull}) {
    PageId cur = root;
    while (true) {
      Page* page;
      ASSERT_TRUE(bp_->FetchPage(cur, &page).ok());
      InternalNode node(page);
      PageId child = node.ChildAt(node.FindChild(EncodeU64Key(probe)));
      uint8_t level = page->level();
      bp_->UnpinPage(cur, false);
      if (level == 1) {
        EXPECT_EQ(child, 10000 + probe / 10);
        break;
      }
      cur = child;
    }
  }
}

TEST_F(InternalBuilderTest, RestoreSpineResumesMidBuild) {
  // Build half the entries, snapshot the top page, then restore a fresh
  // builder from the spine and finish with the remaining entries.
  InternalBuilder b1(bp_.get(), 0.9);
  const int kHalf = 600;
  for (int i = 0; i < kHalf; ++i) {
    ASSERT_TRUE(b1.Add(i == 0 ? Slice()
                              : Slice(EncodeU64Key(
                                    static_cast<uint64_t>(i) * 10)),
                       20000 + i)
                    .ok());
  }
  PageId top = b1.TopPage();
  std::string stable_key = EncodeU64Key((kHalf - 1) * 10);

  InternalBuilder b2(bp_.get(), 0.9);
  ASSERT_TRUE(b2.RestoreSpine(top, stable_key).ok());
  for (int i = kHalf; i < 2 * kHalf; ++i) {
    ASSERT_TRUE(
        b2.Add(EncodeU64Key(static_cast<uint64_t>(i) * 10), 20000 + i).ok());
  }
  PageId root;
  uint8_t height;
  ASSERT_TRUE(b2.Finish(&root, &height).ok());

  // Every child must be reachable at the right position.
  for (int i : {0, kHalf - 1, kHalf, 2 * kHalf - 1, 137, 911}) {
    PageId cur = root;
    uint64_t probe = static_cast<uint64_t>(i) * 10 + 5;
    while (true) {
      Page* page;
      ASSERT_TRUE(bp_->FetchPage(cur, &page).ok());
      InternalNode node(page);
      PageId child = node.ChildAt(node.FindChild(EncodeU64Key(probe)));
      uint8_t level = page->level();
      bp_->UnpinPage(cur, false);
      if (level == 1) {
        EXPECT_EQ(child, 20000u + i) << "probe " << probe;
        break;
      }
      cur = child;
    }
  }
}

}  // namespace
}  // namespace soreorg
