// Shared fixtures for the integration tests: an in-memory database with
// crash/reopen support and sparse-tree construction helpers.

#ifndef SOREORG_TESTS_TEST_UTIL_H_
#define SOREORG_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "src/db/database.h"
#include "src/sim/crash_injector.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

namespace soreorg {

class DbFixture : public ::testing::Test {
 protected:
  void SetUp() override { OpenDb(DatabaseOptions()); }

  void OpenDb(DatabaseOptions options) {
    db_.reset();
    options_ = options;
    env_ = std::make_unique<MemEnv>();
    injector_ = std::make_unique<CrashInjector>(env_.get());
    ASSERT_TRUE(Database::Open(env_.get(), options_, &db_).ok());
  }

  /// Simulate a system failure and restart: un-synced state is lost, then
  /// the database re-opens and runs recovery.
  Status CrashAndReopen() {
    db_.reset();  // note: the destructor flushes; callers that want a hard
                  // crash must have armed the injector or call HardCrash().
    env_->Crash();
    injector_->Disarm();
    return Database::Open(env_.get(), options_, &db_);
  }

  /// Hard crash: drop the Database object without any flushing (the
  /// injector makes all writes fail first so the destructor cannot save
  /// anything), discard un-synced state, reopen.
  Status HardCrashAndReopen() {
    injector_->ArmAfterOps(1);  // next write fails -> env enters crashed mode
    db_.reset();
    injector_->Disarm();
    env_->Crash();
    return Database::Open(env_.get(), options_, &db_);
  }

  Status Put(uint64_t key, const std::string& value) {
    return db_->Put(EncodeU64Key(key), value);
  }
  Status Del(uint64_t key) { return db_->Delete(EncodeU64Key(key)); }
  Status Get(uint64_t key, std::string* value) {
    return db_->Get(EncodeU64Key(key), value);
  }

  uint64_t CountRecords() {
    uint64_t n = 0;
    db_->Scan(Slice(), Slice(), [&n](const Slice&, const Slice&) {
      ++n;
      return true;
    });
    return n;
  }

  DatabaseOptions options_;
  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<CrashInjector> injector_;
  std::unique_ptr<Database> db_;
};

}  // namespace soreorg

#endif  // SOREORG_TESTS_TEST_UTIL_H_
