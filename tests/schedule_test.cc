// Deterministic schedule harness tests: scripted and seeded interleavings
// over the lock manager, the side file's PopFront window, and the §7.4
// switch window. Each test replays, on demand, a race that stress loops hit
// only once in thousands of runs.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/reorg/side_file.h"
#include "src/sim/schedule.h"
#include "src/storage/env.h"
#include "src/txn/lock_invariants.h"
#include "src/txn/lock_manager.h"
#include "src/util/random.h"

namespace soreorg {
namespace {

constexpr TxnId kT1 = 100, kT2 = 200;

// ---------------------------------------------------------------------------
// Harness mechanics
// ---------------------------------------------------------------------------

TEST(ScheduleTest, ScriptedStepsRunInScriptOrder) {
  ScheduleController ctrl;
  auto body = [&ctrl](const char* /*name*/) {
    ctrl.Point("begin");
    ctrl.Point("p1");
    ctrl.Point("p2");
  };
  ctrl.Spawn("a", [&] { body("a"); });
  ctrl.Spawn("b", [&] { body("b"); });
  ctrl.SetScript({"a", "b", "a", "b", "b", "a"});
  ASSERT_TRUE(ctrl.Run().ok()) << ctrl.TraceString();

  std::vector<std::string> expected = {"a:begin", "b:begin", "a:p1", "b:p1",
                                       "b:p2",    "b:done",  "a:p2", "a:done"};
  ASSERT_EQ(ctrl.trace(), expected) << ctrl.TraceString();
}

TEST(ScheduleTest, ScriptNamingAbsentActorStallsInsteadOfHanging) {
  ScheduleController ctrl(ScheduleOptions{.seed = 1,
                                          .step_timeout_ms = 200,
                                          .settle_us = 1000});
  ctrl.Spawn("a", [&] { ctrl.Point("begin"); });
  ctrl.SetScript({"nobody"});
  Status s = ctrl.Run();
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_GE(ctrl.TraceIndex("schedule:stall"), 0) << ctrl.TraceString();
}

TEST(ScheduleTest, SeededScheduleIsReproducible) {
  // Same seed, same actors => bit-identical traces. The bodies avoid lock
  // waits so the trace is a pure function of the grant sequence.
  auto run_once = [](uint64_t seed) {
    LockManager lm;
    ScheduleController ctrl(ScheduleOptions{.seed = seed,
                                            .step_timeout_ms = 10000,
                                            .settle_us = 2000});
    ctrl.InstallLockHooks(&lm);
    for (int i = 0; i < 3; ++i) {
      std::string name = "w" + std::to_string(i);
      TxnId id = 100 + static_cast<TxnId>(i);
      ctrl.Spawn(name, [&ctrl, &lm, id, i] {
        ctrl.Point("begin");
        // Distinct names per actor: no waits, so no wake-up transients.
        (void)lm.Lock(id, PageLock(10 + static_cast<uint32_t>(i)),
                      LockMode::kX);
        ctrl.Point("locked");
        lm.ReleaseAll(id);
        ctrl.Point("released");
      });
    }
    Status s = ctrl.Run();
    EXPECT_TRUE(s.ok()) << ctrl.TraceString();
    return ctrl.trace();
  };
  std::vector<std::string> t1 = run_once(42);
  std::vector<std::string> t2 = run_once(42);
  EXPECT_EQ(t1, t2);
}

TEST(ScheduleTest, FetchHookTracesPageAccesses) {
  MemEnv env;
  DiskManager disk(&env, "pages");
  ASSERT_TRUE(disk.Open().ok());
  BufferPool bp(&disk, 8);

  PageId pid = kInvalidPageId;
  Page* page = nullptr;
  ASSERT_TRUE(bp.NewPage(&pid, &page).ok());
  ASSERT_TRUE(bp.UnpinPage(pid, /*dirty=*/true).ok());

  ScheduleController ctrl;
  ctrl.InstallFetchHook(&bp);
  ctrl.Spawn("reader", [&] {
    ctrl.Point("begin");
    Page* p = nullptr;
    ASSERT_TRUE(bp.FetchPage(pid, &p).ok());
    ASSERT_TRUE(bp.UnpinPage(pid, false).ok());
  });
  ASSERT_TRUE(ctrl.Run().ok()) << ctrl.TraceString();
  EXPECT_GE(ctrl.TraceIndex("reader:fetch:page/" + std::to_string(pid)), 0)
      << ctrl.TraceString();
}

// ---------------------------------------------------------------------------
// Scripted replay of the btree back-off path (§4.1.2): a reader that hits
// the reorganizer's RX lock must back off, wait via instant RS, and retry
// only after the reorganizer is gone.
// ---------------------------------------------------------------------------

// Runs against stripe counts {1, 2, 16}; the deterministic script plus the
// exact trace-index assertions below encode the pre-striping manager's
// behavior (stripe = 1 *is* that manager), so passing at every count proves
// the striped table is trace-equivalent on this schedule. A second test
// asserts the traces are literally identical across counts.
namespace {
std::vector<std::string> RunRxBackoffScript(size_t stripes) {
  LockManager lm{stripes};
  ScheduleController ctrl;
  ctrl.InstallLockHooks(&lm);

  LockName leaf = PageLock(5);
  Status s_read1, s_rs, s_read2;

  ctrl.Spawn("reorg", [&] {
    ctrl.Point("begin");
    ASSERT_TRUE(lm.Lock(kReorgTxnId, leaf, LockMode::kRX).ok());
    ctrl.Point("rx-held");
    lm.ReleaseAll(kReorgTxnId);
  });
  ctrl.Spawn("reader", [&] {
    ctrl.Point("begin");
    s_read1 = lm.Lock(kT1, leaf, LockMode::kS);
    ctrl.Point("backed-off");
    s_rs = lm.LockInstant(kT1, leaf, LockMode::kRS);
    s_read2 = lm.Lock(kT1, leaf, LockMode::kS);
    lm.ReleaseAll(kT1);
  });
  // reorg takes RX; reader backs off; reader then parks in its RS wait;
  // reorg releases; the reader's wait resolves and the retry succeeds.
  ctrl.SetScript({"reorg", "reader", "reader", "reorg"});
  EXPECT_TRUE(ctrl.Run().ok()) << ctrl.TraceString();

  EXPECT_TRUE(s_read1.IsBackoff()) << s_read1.ToString();
  EXPECT_TRUE(s_rs.ok()) << s_rs.ToString();
  EXPECT_TRUE(s_read2.ok()) << s_read2.ToString();
  EXPECT_GE(lm.stats().backoffs, 1u);
  EXPECT_GE(lm.stats().instant_grants, 1u);

  int backoff = ctrl.TraceIndex("reader:backoff:page/5:S");
  int rs_wait = ctrl.TraceIndex("reader:wait:page/5:RS");
  int rs_done = ctrl.TraceIndex("reader:instant-granted:page/5:RS");
  int retry = ctrl.TraceIndex("reader:granted:page/5:S");
  EXPECT_GE(backoff, 0) << ctrl.TraceString();
  EXPECT_GE(rs_wait, 0) << ctrl.TraceString();
  EXPECT_GE(rs_done, 0) << ctrl.TraceString();
  EXPECT_GE(retry, 0) << ctrl.TraceString();
  EXPECT_LT(backoff, rs_wait);
  EXPECT_LT(rs_wait, rs_done);
  EXPECT_LT(rs_done, retry);
  EXPECT_EQ(lm.QueueCount(), 0u);  // nothing leaked by the replay
  return ctrl.trace();
}
}  // namespace

class StripedScheduleTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Stripes, StripedScheduleTest,
                         ::testing::Values(1, 2, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "s" + std::to_string(info.param);
                         });

TEST_P(StripedScheduleTest, ScriptedRxBackoffThenRsWaitReplay) {
  (void)RunRxBackoffScript(GetParam());
}

// The decisive stripe-equivalence check: the same deterministic schedule
// must yield a bit-identical lock-event trace at every stripe count —
// stripe 1 (the legacy single-mutex manager) is the reference.
TEST(ScheduleTest, RxBackoffTraceIdenticalAcrossStripeCounts) {
  std::vector<std::string> reference = RunRxBackoffScript(1);
  EXPECT_EQ(RunRxBackoffScript(2), reference);
  EXPECT_EQ(RunRxBackoffScript(16), reference);
}

// ---------------------------------------------------------------------------
// Side-file fixtures
// ---------------------------------------------------------------------------

class ScheduleSideFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    log_ = std::make_unique<LogManager>(env_.get(), "wal");
    ASSERT_TRUE(log_->Open().ok());
    side_ = std::make_unique<SideFile>(&locks_, log_.get());
  }

  std::unique_ptr<MemEnv> env_;
  LockManager locks_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<SideFile> side_;
};

// The PopFront ABA window, pinned exactly (§7.2): the reorganizer captures
// the front entry, waits out its recording transaction, and must then
// re-verify the front. Script: t1 records entry #1 and rolls it back while
// the reorganizer waits; t2 then records a *field-identical* entry #2 and is
// still in flight when the reorganizer resumes. Field-equality
// re-verification would pass and consume t2's uncommitted entry; the
// sequence-number check forces a second wait, and the pop lands only after
// t2 finishes.
TEST_F(ScheduleSideFileTest, PopFrontRechecksBySequenceNotFields) {
  ScheduleController ctrl;
  ctrl.InstallLockHooks(&locks_);
  // Pin the instant between the reorganizer's record-lock release and its
  // front re-verification — the ABA window itself.
  ctrl.SetLockPointPredicate(
      [](LockEvent e, const LockName& name, LockMode) {
        return e == LockEvent::kUnlock && name.space == LockSpace::kSideKey;
      });

  Status pop_status;
  SideEntry popped;
  bool empty = true;

  ctrl.Spawn("t1", [&] {
    ctrl.Point("begin");
    Transaction txn(kT1);
    ASSERT_TRUE(
        side_->Record(&txn, BaseUpdateOp::kInsert, "k", 7).ok());
    ctrl.Point("recorded");
    // Rollback: the entry is withdrawn and the record lock released.
    side_->UndoInsert(BaseUpdateOp::kInsert, "k");
    locks_.ReleaseAll(kT1);
  });
  ctrl.Spawn("t2", [&] {
    ctrl.Point("begin");
    Transaction txn(kT2);
    ASSERT_TRUE(
        side_->Record(&txn, BaseUpdateOp::kInsert, "k", 7).ok());
    ctrl.Point("recorded");
    locks_.ReleaseAll(kT2);
  });
  ctrl.Spawn("reorg", [&] {
    ctrl.Point("begin");
    pop_status = side_->PopFront(&popped, &empty);
    ctrl.Note("popped seq=" + std::to_string(popped.seq));
  });

  ctrl.SetScript({
      "t1",     // record entry #1 (seq 1), hold its key lock
      "reorg",  // capture front #1, park behind t1's key lock
      "t1",     // roll back #1, release -> reorg wakes, stops at ABA window
      "t2",     // record field-identical entry #2 (seq 2), still in flight
      "reorg",  // re-verify: seq mismatch -> re-wait behind t2
      "t2",     // t2 finishes, releases
      "reorg",  // second window point; re-verify passes, pop #2
  });
  ASSERT_TRUE(ctrl.Run().ok()) << ctrl.TraceString();

  ASSERT_TRUE(pop_status.ok()) << pop_status.ToString();
  ASSERT_FALSE(empty);
  // The popped entry is t2's (seq 2), not the rolled-back seq-1 image.
  EXPECT_EQ(popped.seq, 2u) << ctrl.TraceString();
  EXPECT_EQ(popped.key, "k");
  EXPECT_EQ(side_->size(), 0u);

  // The decisive ordering: with field-equality re-verification the pop
  // would have happened inside the ABA window, *before* t2 released its
  // record lock. The seq check forces it after.
  int t2_release = ctrl.TraceIndex("t2:release-all");
  int pop = ctrl.TraceIndex("reorg:note:popped");
  ASSERT_GE(t2_release, 0) << ctrl.TraceString();
  ASSERT_GE(pop, 0) << ctrl.TraceString();
  EXPECT_LT(t2_release, pop) << ctrl.TraceString();

  // And the reorganizer really did take the key lock twice (two windows).
  int first_grant = ctrl.TraceIndex("reorg:granted:side-key");
  ASSERT_GE(first_grant, 0);
  EXPECT_GE(ctrl.TraceIndex("reorg:granted:side-key", first_grant + 1),
            first_grant + 1)
      << ctrl.TraceString();
}

// The §7.4 switch window: an updater that arrives while the switcher holds
// the side-file X lock must wait it out with an instant-duration IX and then
// be told to retry against the new tree (kBusy), holding nothing.
TEST_F(ScheduleSideFileTest, SwitchWindowUpdaterWaitsThenRetriesOnNewTree) {
  ScheduleController ctrl;
  ctrl.InstallLockHooks(&locks_);

  Status record_status;
  ctrl.Spawn("switcher", [&] {
    ctrl.Point("begin");
    ASSERT_TRUE(
        locks_.Lock(kReorgTxnId, SideFileLock(), LockMode::kX).ok());
    ctrl.Point("x-held");
    locks_.Unlock(kReorgTxnId, SideFileLock());
  });
  ctrl.Spawn("updater", [&] {
    ctrl.Point("begin");
    Transaction txn(kT1);
    record_status = side_->Record(&txn, BaseUpdateOp::kInsert, "u", 3);
    locks_.ReleaseAll(kT1);
  });
  // switcher takes X; updater's TryLock(IX) busies, its instant IX parks;
  // switcher releases; the updater's wait resolves into a retry verdict.
  ctrl.SetScript({"switcher", "updater", "switcher"});
  ASSERT_TRUE(ctrl.Run().ok()) << ctrl.TraceString();

  EXPECT_TRUE(record_status.IsBusy()) << record_status.ToString();
  EXPECT_NE(record_status.message().find("retry on new tree"),
            std::string::npos)
      << record_status.ToString();
  // Nothing recorded, nothing held: the updater retries on the new tree.
  EXPECT_EQ(side_->size(), 0u);
  EXPECT_EQ(locks_.HeldCount(kT1), 0u);

  int busy = ctrl.TraceIndex("updater:busy:side-file/0:IX");
  int wait = ctrl.TraceIndex("updater:wait:side-file/0:IX");
  int resolved = ctrl.TraceIndex("updater:instant-granted:side-file/0:IX");
  ASSERT_GE(busy, 0) << ctrl.TraceString();
  ASSERT_GE(wait, 0) << ctrl.TraceString();
  ASSERT_GE(resolved, 0) << ctrl.TraceString();
  EXPECT_LT(busy, wait);
  EXPECT_LT(wait, resolved);
}

// ---------------------------------------------------------------------------
// Seeded storm: the harness + invariant checker as a protocol fuzzer.
// ---------------------------------------------------------------------------

TEST_P(StripedScheduleTest, SeededLockStormKeepsProtocolInvariants) {
  LockManager lm{GetParam()};
  LockInvariantChecker checker([](const LockViolation&) {});
  lm.SetInvariantChecker(&checker);

  ScheduleController ctrl(ScheduleOptions{.seed = 7,
                                          .step_timeout_ms = 10000,
                                          .settle_us = 2000});
  ctrl.InstallLockHooks(&lm);

  ctrl.Spawn("reorg", [&] {
    ctrl.Point("begin");
    Random rng(1);
    for (int i = 0; i < 15; ++i) {
      LockName base = PageLock(static_cast<uint32_t>(rng.Uniform(2)));
      if (lm.Lock(kReorgTxnId, base, LockMode::kR, 300).ok()) {
        (void)lm.Lock(kReorgTxnId, base, LockMode::kX, 300);
        (void)lm.Lock(kReorgTxnId, PageLock(50), LockMode::kRX, 300);
      }
      ctrl.Point("cycle");
      lm.ReleaseAll(kReorgTxnId);
    }
  });
  for (int u = 0; u < 2; ++u) {
    std::string name = "user" + std::to_string(u);
    TxnId id = 100 + static_cast<TxnId>(u);
    ctrl.Spawn(name, [&ctrl, &lm, id, u] {
      Random rng(10 + static_cast<uint64_t>(u));
      ctrl.Point("begin");
      for (int i = 0; i < 25; ++i) {
        LockName n = PageLock(static_cast<uint32_t>(rng.Uniform(2)));
        Status s = lm.Lock(
            id, n, rng.Bernoulli(0.5) ? LockMode::kS : LockMode::kX, 300);
        if (s.IsBackoff()) {
          (void)lm.LockInstant(id, n, LockMode::kRS, 300);
        } else if (s.ok() && i % 4 == 0) {
          (void)lm.Lock(id, PageLock(50), LockMode::kX, 100);
        }
        ctrl.Point("cycle");
        lm.ReleaseAll(id);
      }
    });
  }
  Status s = ctrl.Run();
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << ctrl.TraceString();

  lm.CheckInvariantsNow();
  EXPECT_EQ(checker.violations(), 0u)
      << (checker.recorded().empty()
              ? ""
              : checker.recorded()[0].invariant + ": " +
                    checker.recorded()[0].detail);
}

}  // namespace
}  // namespace soreorg
