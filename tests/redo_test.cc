// Redo-application unit tests: every redo-able record type applied to
// freshly wiped pages (simulating lost writes) and to up-to-date pages
// (idempotence via pageLSN).

#include <gtest/gtest.h>

#include "src/btree/btree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/env.h"
#include "src/util/coding.h"

namespace soreorg {
namespace {

class RedoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    disk_ = std::make_unique<DiskManager>(env_.get(), "pages");
    ASSERT_TRUE(disk_->Open().ok());
    bp_ = std::make_unique<BufferPool>(disk_.get(), 64);
  }

  PageId NewLeaf() {
    PageId pid;
    Page* page;
    EXPECT_TRUE(bp_->NewPage(&pid, &page).ok());
    LeafNode::Format(page, pid);
    bp_->UnpinPage(pid, true);
    return pid;
  }

  PageId NewBase(const std::vector<std::pair<uint64_t, PageId>>& entries) {
    PageId pid;
    Page* page;
    EXPECT_TRUE(bp_->NewPage(&pid, &page).ok());
    InternalNode::Format(page, pid, 1, Slice());
    InternalNode node(page);
    for (const auto& [k, c] : entries) {
      EXPECT_TRUE(node.Insert(EncodeU64Key(k), c).ok());
    }
    bp_->UnpinPage(pid, true);
    return pid;
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> bp_;
};

TEST_F(RedoTest, InsertDeleteUpdateAreLsnGuarded) {
  PageId leaf = NewLeaf();

  LogRecord ins;
  ins.type = LogType::kInsert;
  ins.page_id = leaf;
  ins.key = EncodeU64Key(5);
  ins.value = "v1";
  ins.lsn = 100;
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), ins).ok());
  // Applying again must be a no-op (pageLSN == 100 not < 100).
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), ins).ok());

  Page* page;
  ASSERT_TRUE(bp_->FetchPage(leaf, &page).ok());
  LeafNode ln(page);
  ASSERT_EQ(ln.Count(), 1);
  EXPECT_EQ(ln.ValueAt(0), Slice("v1"));
  EXPECT_EQ(page->page_lsn(), 100u);
  bp_->UnpinPage(leaf, false);

  LogRecord upd;
  upd.type = LogType::kUpdate;
  upd.page_id = leaf;
  upd.key = EncodeU64Key(5);
  upd.value = "v1";
  upd.value2 = "v2";
  upd.lsn = 200;
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), upd).ok());

  LogRecord del;
  del.type = LogType::kDelete;
  del.page_id = leaf;
  del.key = EncodeU64Key(5);
  del.lsn = 150;  // OLDER than the page: must be skipped
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), del).ok());

  ASSERT_TRUE(bp_->FetchPage(leaf, &page).ok());
  LeafNode ln2(page);
  ASSERT_EQ(ln2.Count(), 1);
  EXPECT_EQ(ln2.ValueAt(0), Slice("v2"));
  bp_->UnpinPage(leaf, false);
}

TEST_F(RedoTest, LeafSplitRedoRebuildsBothHalves) {
  PageId left = NewLeaf();
  PageId right;
  {
    Page* page;
    ASSERT_TRUE(bp_->NewPage(&right, &page).ok());
    bp_->UnpinPage(right, true);
  }
  PageId parent = NewBase({{0, left}});

  // Fill 'left' with 6 records, then fabricate the split record moving the
  // upper 3 to 'right'.
  {
    Page* page;
    ASSERT_TRUE(bp_->FetchPage(left, &page).ok());
    LeafNode ln(page);
    for (uint64_t k = 1; k <= 6; ++k) {
      ASSERT_TRUE(ln.Insert(EncodeU64Key(k), "v").ok());
    }
    SlottedPage sp(page);
    LogRecord rec;
    rec.type = LogType::kLeafSplit;
    rec.page_id = left;
    rec.page_id2 = right;
    rec.page_id3 = parent;
    rec.key = EncodeU64Key(4);
    rec.payload = PackCellRange(sp, 3, 6);
    rec.value.clear();
    PutFixed32(&rec.value, kInvalidPageId);  // no old-next neighbor
    rec.flags = static_cast<uint8_t>(SidePointerMode::kTwoWay);
    rec.lsn = 500;
    bp_->UnpinPage(left, true);
    ASSERT_TRUE(BTree::RedoApply(bp_.get(), rec).ok());
    ASSERT_TRUE(BTree::RedoApply(bp_.get(), rec).ok());  // idempotent
  }

  Page* page;
  ASSERT_TRUE(bp_->FetchPage(left, &page).ok());
  LeafNode lleft(page);
  EXPECT_EQ(lleft.Count(), 3);
  EXPECT_EQ(page->next(), right);
  bp_->UnpinPage(left, false);
  ASSERT_TRUE(bp_->FetchPage(right, &page).ok());
  LeafNode lright(page);
  EXPECT_EQ(lright.Count(), 3);
  EXPECT_EQ(DecodeU64Key(lright.KeyAt(0)), 4u);
  EXPECT_EQ(page->prev(), left);
  bp_->UnpinPage(right, false);
}

TEST_F(RedoTest, NodeFreeRedoUnlinksAndDetaches) {
  PageId a = NewLeaf(), b = NewLeaf(), c = NewLeaf();
  // Chain a <-> b <-> c.
  for (auto [pid, prev, next] : {std::tuple<PageId, PageId, PageId>{a, kInvalidPageId, b},
                                 {b, a, c},
                                 {c, b, kInvalidPageId}}) {
    Page* page;
    ASSERT_TRUE(bp_->FetchPage(pid, &page).ok());
    page->SetPrev(prev);
    page->SetNext(next);
    bp_->UnpinPage(pid, true);
  }
  PageId parent = NewBase({{0, a}, {10, b}, {20, c}});

  LogRecord rec;
  rec.type = LogType::kNodeFree;
  rec.page_id = b;       // freed
  rec.page_id2 = a;      // prev
  rec.page_id3 = parent;
  rec.key = EncodeU64Key(10);
  rec.value.clear();
  PutFixed32(&rec.value, c);  // next
  rec.lsn = 900;
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), rec).ok());
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), rec).ok());  // idempotent

  Page* page;
  ASSERT_TRUE(bp_->FetchPage(parent, &page).ok());
  InternalNode node(page);
  EXPECT_EQ(node.Count(), 2);
  EXPECT_EQ(node.FindChildSlot(b), -1);
  bp_->UnpinPage(parent, false);
  ASSERT_TRUE(bp_->FetchPage(a, &page).ok());
  EXPECT_EQ(page->next(), c);
  bp_->UnpinPage(a, false);
  ASSERT_TRUE(bp_->FetchPage(c, &page).ok());
  EXPECT_EQ(page->prev(), a);
  bp_->UnpinPage(c, false);
}

TEST_F(RedoTest, FormatAndLinkRedo) {
  PageId pid = NewLeaf();
  LogRecord fmt;
  fmt.type = LogType::kFormatPage;
  fmt.page_id = pid;
  fmt.unit_type = static_cast<uint8_t>(PageType::kInternal);
  fmt.flags = 2;  // level
  fmt.key = "lowmark";
  fmt.lsn = 300;
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), fmt).ok());
  Page* page;
  ASSERT_TRUE(bp_->FetchPage(pid, &page).ok());
  EXPECT_EQ(page->type(), PageType::kInternal);
  EXPECT_EQ(page->level(), 2);
  InternalNode node(page);
  EXPECT_EQ(node.LowMark(), Slice("lowmark"));
  bp_->UnpinPage(pid, false);

  LogRecord link;
  link.type = LogType::kLinkPage;
  link.page_id = pid;
  link.page_id2 = 42;
  link.page_id3 = 43;
  link.lsn = 400;
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), link).ok());
  ASSERT_TRUE(bp_->FetchPage(pid, &page).ok());
  EXPECT_EQ(page->prev(), 42u);
  EXPECT_EQ(page->next(), 43u);
  bp_->UnpinPage(pid, false);
}

TEST_F(RedoTest, InternalCellRedo) {
  PageId base = NewBase({{0, 100}});
  LogRecord ins;
  ins.type = LogType::kInsert;
  ins.flags = kInternalCell;
  ins.page_id = base;
  ins.key = EncodeU64Key(50);
  ins.value.clear();
  PutFixed32(&ins.value, 200);
  ins.lsn = 700;
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), ins).ok());
  Page* page;
  ASSERT_TRUE(bp_->FetchPage(base, &page).ok());
  InternalNode node(page);
  EXPECT_EQ(node.Count(), 2);
  EXPECT_EQ(node.ChildAt(node.FindChild(EncodeU64Key(60))), 200u);
  bp_->UnpinPage(base, false);

  LogRecord del;
  del.type = LogType::kDelete;
  del.flags = kInternalCell;
  del.page_id = base;
  del.key = EncodeU64Key(50);
  del.lsn = 800;
  ASSERT_TRUE(BTree::RedoApply(bp_.get(), del).ok());
  ASSERT_TRUE(bp_->FetchPage(base, &page).ok());
  InternalNode node2(page);
  EXPECT_EQ(node2.Count(), 1);
  bp_->UnpinPage(base, false);
}

}  // namespace
}  // namespace soreorg
