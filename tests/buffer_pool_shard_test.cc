// Sharded-buffer-pool suite: shard sizing, single-shard (N=1) equivalence
// with the old global-LRU pool, cross-shard careful-writing edges, and a
// multi-threaded stress run meant for the asan/tsan presets (the tsan test
// preset includes this binary).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/env.h"
#include "src/util/random.h"

namespace soreorg {
namespace {

struct PoolFixture {
  MemEnv env;
  DiskManager dm{&env, "pages"};

  PoolFixture() { EXPECT_TRUE(dm.Open().ok()); }
};

TEST(BufferPoolShardTest, ShardCountSelection) {
  PoolFixture fx;
  // Auto: the machine-sized default (smallest power of two covering the
  // hardware thread count, capped at 16), halved until every shard keeps
  // >= 16 frames.
  const size_t target = BufferPool::DefaultShardTarget();
  EXPECT_EQ(BufferPool(&fx.dm, 4096).shard_count(), target);
  size_t expect96 = target;
  while (expect96 > 1 && 96 / expect96 < 16) expect96 /= 2;
  EXPECT_EQ(BufferPool(&fx.dm, 96).shard_count(), expect96);
  EXPECT_EQ(BufferPool(&fx.dm, 16).shard_count(), 1u);
  EXPECT_EQ(BufferPool(&fx.dm, 2).shard_count(), 1u);
  // Explicit: rounded up to a power of two, capped at the pool size.
  EXPECT_EQ(BufferPool(&fx.dm, 4096, nullptr, 1).shard_count(), 1u);
  EXPECT_EQ(BufferPool(&fx.dm, 4096, nullptr, 5).shard_count(), 8u);
  EXPECT_EQ(BufferPool(&fx.dm, 16, nullptr, 64).shard_count(), 16u);
  // Frame counts are preserved exactly, whatever the shard split.
  EXPECT_EQ(BufferPool(&fx.dm, 100, nullptr, 8).pool_size(), 100u);
}

// With one shard, victim choice follows unpin order over unpinned frames.
// The LRU is advisory since the lock-free read path landed: a clean hit
// resolved through the resident index deliberately does NOT promote the
// frame (that would need the shard mutex), so recency is established by
// dirty unpins and (re)loads, not by reads. A pinned frame is never the
// victim regardless of list position.
TEST(BufferPoolShardTest, SingleShardVictimFollowsUnpinOrder) {
  PoolFixture fx;
  BufferPool bp(&fx.dm, 4, nullptr, 1);
  ASSERT_EQ(bp.shard_count(), 1u);

  PageId p[4];
  for (int i = 0; i < 4; ++i) {
    Page* page;
    ASSERT_TRUE(bp.NewPage(&p[i], &page).ok());
    ASSERT_TRUE(bp.UnpinPage(p[i], true).ok());
  }
  // Recency p3 > p2 > p1 > p0. A clean read hit on p0 does not promote it:
  // p0 stays the victim (the advisory-LRU contract, asserted below).
  Page* page;
  ASSERT_TRUE(bp.FetchPage(p[0], &page).ok());
  ASSERT_TRUE(bp.UnpinPage(p[0], false).ok());
  // A dirty unpin DOES promote: p1 re-touched moves to the front.
  ASSERT_TRUE(bp.FetchPage(p[1], &page).ok());
  ASSERT_TRUE(bp.UnpinPage(p[1], true).ok());

  uint64_t misses_before = bp.miss_count();
  PageId extra;
  ASSERT_TRUE(bp.NewPage(&extra, &page).ok());  // evicts p0, not p1
  ASSERT_TRUE(bp.UnpinPage(extra, false).ok());

  // p1, p2, p3 still resident ...
  for (PageId pid : {p[1], p[2], p[3]}) {
    ASSERT_TRUE(bp.FetchPage(pid, &page).ok());
    ASSERT_TRUE(bp.UnpinPage(pid, false).ok());
  }
  EXPECT_EQ(bp.miss_count(), misses_before);
  // ... and p0 is the one that was evicted.
  ASSERT_TRUE(bp.FetchPage(p[0], &page).ok());
  ASSERT_TRUE(bp.UnpinPage(p[0], false).ok());
  EXPECT_EQ(bp.miss_count(), misses_before + 1);

  // A pinned frame is never the victim: pin p1 and churn the other three.
  Page* pinned;
  ASSERT_TRUE(bp.FetchPage(p[1], &pinned).ok());
  for (int i = 0; i < 3; ++i) {
    PageId churn;
    ASSERT_TRUE(bp.NewPage(&churn, &page).ok());
    ASSERT_TRUE(bp.UnpinPage(churn, false).ok());
  }
  uint64_t before_pinned = bp.miss_count();
  ASSERT_TRUE(bp.FetchPage(p[1], &page).ok());
  EXPECT_EQ(bp.miss_count(), before_pinned);  // still resident
  ASSERT_TRUE(bp.UnpinPage(p[1], false).ok());
  ASSERT_TRUE(bp.UnpinPage(p[1], false).ok());
}

// Regression: installing a page runs page_table[pid] = frame BEFORE the
// resident-index insert, so when that insert triggers a tombstone-threshold
// rebuild, the rebuild already re-creates the pid's entry from page_table —
// and a blind "first empty or tombstone slot" insert would then add a
// second one. ShardIndexErase only tombstones the first match, so the
// duplicate survived eviction and kept resolving the pid to a frame that
// had been recycled for another page: the lock-free fetch path returned
// foreign bytes for the pid. The insert must be idempotent.
TEST(BufferPoolShardTest, ReusedPidKeepsSingleIndexEntry) {
  PoolFixture fx;
  BufferPool bp(&fx.dm, 4, nullptr, 1);  // index cap 8, rebuild at 3 tombstones
  ASSERT_EQ(bp.shard_count(), 1u);

  PageId p[4];
  Page* page;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(bp.NewPage(&p[i], &page).ok());
    ASSERT_TRUE(bp.UnpinPage(p[i], true).ok());
  }
  // Three deletes leave three tombstones: the next index insert rebuilds.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(bp.DeletePage(p[i]).ok());

  // Reuses pid p[0]; the install's index insert fires the rebuild, which
  // re-creates this pid's entry from page_table before the insert runs.
  PageId reused;
  ASSERT_TRUE(bp.NewPage(&reused, &page).ok());
  ASSERT_EQ(reused, p[0]);
  page->data()[64] = 'Z';
  ASSERT_TRUE(bp.UnpinPage(reused, true).ok());

  // Refill the pool, then make `reused` the eviction victim.
  PageId fill[2];
  for (PageId& f : fill) {
    ASSERT_TRUE(bp.NewPage(&f, &page).ok());
    ASSERT_TRUE(bp.UnpinPage(f, true).ok());
  }
  ASSERT_TRUE(bp.FetchPage(p[3], &page).ok());
  ASSERT_TRUE(bp.UnpinPage(p[3], true).ok());  // promote: reused is now LRU

  // Evicting `reused` erases its index entry; with a duplicate left behind,
  // the stale one would now resolve `reused` to this recycled frame.
  PageId evictor;
  ASSERT_TRUE(bp.NewPage(&evictor, &page).ok());
  ASSERT_TRUE(bp.UnpinPage(evictor, false).ok());

  ASSERT_TRUE(bp.FetchPage(reused, &page).ok());
  EXPECT_EQ(page->header_page_id(), reused);
  EXPECT_EQ(page->data()[64], 'Z');
  ASSERT_TRUE(bp.UnpinPage(reused, false).ok());
}

TEST(BufferPoolShardTest, SingleShardDeferredDeallocGating) {
  PoolFixture fx;
  BufferPool bp(&fx.dm, 8, nullptr, 1);

  PageId dest, victim;
  Page* p;
  ASSERT_TRUE(bp.NewPage(&dest, &p).ok());
  bp.UnpinPage(dest, true);
  ASSERT_TRUE(bp.NewPage(&victim, &p).ok());
  bp.UnpinPage(victim, true);
  bp.FlushPage(victim);

  ASSERT_TRUE(bp.DeletePageDeferred(victim, dest).ok());
  EXPECT_FALSE(fx.dm.IsFree(victim));
  EXPECT_EQ(bp.deferred_dealloc_count(), 1u);
  ASSERT_TRUE(bp.FlushAndSync().ok());
  EXPECT_TRUE(fx.dm.IsFree(victim));
  EXPECT_EQ(bp.deferred_dealloc_count(), 0u);
}

// A write-order chain whose pages hash to arbitrary (almost surely distinct)
// shards: flushing the tail must write-and-sync every transitive dependency
// first, exactly as in the single-mutex pool.
TEST(BufferPoolShardTest, CrossShardWriteOrderChain) {
  PoolFixture fx;
  BufferPool bp(&fx.dm, 256, nullptr, 16);
  ASSERT_EQ(bp.shard_count(), 16u);

  PageId a, b, c;
  Page* p;
  ASSERT_TRUE(bp.NewPage(&a, &p).ok());
  p->data()[100] = 'A';
  bp.UnpinPage(a, true);
  ASSERT_TRUE(bp.NewPage(&b, &p).ok());
  p->data()[100] = 'B';
  bp.UnpinPage(b, true);
  ASSERT_TRUE(bp.NewPage(&c, &p).ok());
  p->data()[100] = 'C';
  bp.UnpinPage(c, true);

  bp.AddWriteOrder(a, b);
  bp.AddWriteOrder(b, c);
  ASSERT_TRUE(bp.FlushPage(c).ok());
  EXPECT_TRUE(bp.IsDurable(a));
  EXPECT_TRUE(bp.IsDurable(b));
  EXPECT_FALSE(bp.IsDurable(c));  // written after the barrier, not synced

  // The dependencies survive a crash with correct images.
  fx.env.Crash();
  Page back;
  ASSERT_TRUE(fx.dm.ReadPage(a, &back).ok());
  EXPECT_EQ(back.data()[100], 'A');
  ASSERT_TRUE(fx.dm.ReadPage(b, &back).ok());
  EXPECT_EQ(back.data()[100], 'B');
}

// must_precede_ retains edges across frame drops so a reused page id keeps
// its gate — which also means enough reuse can close a cycle in the graph.
// The flush walk must treat the back edge as stale and terminate (the
// recursive form of this walk used to chase the loop until stack overflow).
TEST(BufferPoolShardTest, WriteOrderCycleFromReusedIdsTerminates) {
  PoolFixture fx;
  BufferPool bp(&fx.dm, 256, nullptr, 16);

  PageId a, b;
  Page* p;
  ASSERT_TRUE(bp.NewPage(&a, &p).ok());
  p->data()[100] = 'a';
  bp.UnpinPage(a, true);
  ASSERT_TRUE(bp.NewPage(&b, &p).ok());
  p->data()[100] = 'b';
  bp.UnpinPage(b, true);

  bp.AddWriteOrder(a, b);
  bp.AddWriteOrder(b, a);  // stale edge from a reused id closes the loop
  ASSERT_TRUE(bp.FlushAndSync().ok());
  EXPECT_TRUE(bp.IsDurable(a));
  EXPECT_TRUE(bp.IsDurable(b));

  // A self-edge is the degenerate cycle; it must also flush.
  PageId c;
  ASSERT_TRUE(bp.NewPage(&c, &p).ok());
  p->data()[100] = 'c';
  bp.UnpinPage(c, true);
  bp.AddWriteOrder(c, c);
  ASSERT_TRUE(bp.FlushPage(c).ok());
  ASSERT_TRUE(bp.FlushAndSync().ok());
  EXPECT_TRUE(bp.IsDurable(c));
}

TEST(BufferPoolShardTest, DeferredDeallocGatesAcrossShards) {
  PoolFixture fx;
  BufferPool bp(&fx.dm, 256, nullptr, 16);

  PageId until, victims[8];
  Page* p;
  ASSERT_TRUE(bp.NewPage(&until, &p).ok());
  bp.UnpinPage(until, true);
  for (PageId& v : victims) {
    ASSERT_TRUE(bp.NewPage(&v, &p).ok());
    bp.UnpinPage(v, true);
    ASSERT_TRUE(bp.FlushPage(v).ok());
    ASSERT_TRUE(bp.DeletePageDeferred(v, until).ok());
    EXPECT_FALSE(fx.dm.IsFree(v));
  }
  EXPECT_EQ(bp.deferred_dealloc_count(), 8u);
  ASSERT_TRUE(bp.FlushAndSync().ok());
  for (PageId v : victims) EXPECT_TRUE(fx.dm.IsFree(v));
}

// Multi-threaded stress across shards: concurrent fetch/unpin with eviction
// pressure, flushes, force-syncs, cross-shard write-order edges, and
// new/delete (plain and deferred) of thread-private pages. Run under the
// asan/tsan presets; assertions check the durability bookkeeping converges.
TEST(BufferPoolShardTest, ConcurrentShardStress) {
  PoolFixture fx;
  // 128 frames vs a 256-page working set: constant eviction traffic.
  // Explicit 8 shards: the auto default is machine-dependent now, and this
  // test is about cross-shard interleavings.
  BufferPool bp(&fx.dm, 128, nullptr, 8);
  ASSERT_EQ(bp.shard_count(), 8u);

  constexpr int kFixedPages = 256;
  constexpr int kThreads = 4;
#ifdef SOREORG_LOCK_INVARIANTS  // proxy for sanitizer builds: keep them short
  constexpr int kOpsPerThread = 1500;
#else
  constexpr int kOpsPerThread = 6000;
#endif

  std::vector<PageId> fixed;
  for (int i = 0; i < kFixedPages; ++i) {
    PageId pid;
    Page* page;
    ASSERT_TRUE(bp.NewPage(&pid, &page).ok());
    page->data()[64] = static_cast<char>(i);
    ASSERT_TRUE(bp.UnpinPage(pid, true).ok());
    fixed.push_back(pid);
  }
  ASSERT_TRUE(bp.FlushAndSync().ok());

  std::atomic<uint64_t> fetch_calls{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      Random rng(77 + ti);
      uint64_t my_fetches = 0;
      for (int i = 0; i < kOpsPerThread && !failed.load(); ++i) {
        uint64_t dice = rng.Uniform(100);
        if (dice < 70) {
          // Hot path: fetch + unpin, sometimes dirty.
          PageId pid = fixed[rng.Uniform(fixed.size())];
          Page* page;
          Status s = bp.FetchPage(pid, &page);
          ++my_fetches;
          if (s.ok()) {
            // Identity check: a pinned frame must hold the requested page
            // (a stale resident-index entry once broke this).
            if (page->header_page_id() != pid) failed = true;
            bp.UnpinPage(pid, rng.Bernoulli(0.25));
          } else if (!s.IsBusy()) {
            failed = true;  // Busy = shard transiently pinned full, tolerated
          }
        } else if (dice < 80) {
          Status s = bp.FlushPage(fixed[rng.Uniform(fixed.size())]);
          if (!s.ok() && !s.IsNotFound()) failed = true;
        } else if (dice < 85) {
          // Acyclic-by-construction cross-shard write-order edge.
          uint64_t x = rng.Uniform(fixed.size());
          uint64_t y = rng.Uniform(fixed.size());
          if (x != y) {
            bp.AddWriteOrder(fixed[std::min(x, y)], fixed[std::max(x, y)]);
          }
        } else if (dice < 90) {
          Status s;
          if (rng.Bernoulli(0.5)) {
            s = bp.FlushAndSync();
          } else {
            s = bp.ForcePages({fixed[rng.Uniform(fixed.size())]});
          }
          if (!s.ok()) failed = true;
        } else {
          // Thread-private page churn: allocate, then delete (half deferred
          // on a fixed page that may live in any shard).
          PageId pid;
          Page* page;
          Status s = bp.NewPage(&pid, &page);
          if (s.IsBusy()) continue;
          if (!s.ok()) {
            failed = true;
            continue;
          }
          bp.UnpinPage(pid, true);
          if (rng.Bernoulli(0.5)) {
            s = bp.DeletePage(pid);
          } else {
            s = bp.DeletePageDeferred(pid, fixed[rng.Uniform(fixed.size())]);
          }
          if (!s.ok()) failed = true;
        }
      }
      fetch_calls.fetch_add(my_fetches);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  // Every fetch counted exactly once as a hit or a miss (NewPage counts as
  // neither).
  EXPECT_EQ(bp.hit_count() + bp.miss_count(), fetch_calls.load());

  // The final force point drains every gate: all fixed pages durable, no
  // deferred dealloc left pending.
  ASSERT_TRUE(bp.FlushAndSync().ok());
  for (PageId pid : fixed) EXPECT_TRUE(bp.IsDurable(pid));
  EXPECT_EQ(bp.deferred_dealloc_count(), 0u);

  // And the persisted images are the ones written at setup.
  fx.env.Crash();
  for (int i = 0; i < kFixedPages; ++i) {
    Page back;
    ASSERT_TRUE(fx.dm.ReadPage(fixed[i], &back).ok());
    EXPECT_EQ(back.data()[64], static_cast<char>(i)) << "page " << fixed[i];
  }
}

}  // namespace
}  // namespace soreorg
