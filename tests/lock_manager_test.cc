#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/txn/lock_manager.h"

namespace soreorg {
namespace {

constexpr TxnId kT1 = 100, kT2 = 200, kT3 = 300;

// ---------------------------------------------------------------------------
// Table 1 — the paper's compatibility matrix, asserted cell by cell.
// ---------------------------------------------------------------------------

struct CompatCase {
  LockMode granted;
  LockMode requested;
  bool compatible;
};

class CompatibilityTest : public ::testing::TestWithParam<CompatCase> {};

TEST_P(CompatibilityTest, MatchesTable1) {
  const CompatCase& c = GetParam();
  EXPECT_EQ(LockCompatible(c.granted, c.requested), c.compatible)
      << LockModeName(c.granted) << " vs " << LockModeName(c.requested);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CompatibilityTest,
    ::testing::Values(
        // IS row
        CompatCase{LockMode::kIS, LockMode::kIS, true},
        CompatCase{LockMode::kIS, LockMode::kIX, true},
        CompatCase{LockMode::kIS, LockMode::kS, true},
        CompatCase{LockMode::kIS, LockMode::kX, false},
        CompatCase{LockMode::kIS, LockMode::kRX, false},
        // IX row
        CompatCase{LockMode::kIX, LockMode::kIS, true},
        CompatCase{LockMode::kIX, LockMode::kIX, true},
        CompatCase{LockMode::kIX, LockMode::kS, false},
        CompatCase{LockMode::kIX, LockMode::kX, false},
        CompatCase{LockMode::kIX, LockMode::kRX, false},
        // S row — R is compatible with S (the paper's key relaxation)
        CompatCase{LockMode::kS, LockMode::kIS, true},
        CompatCase{LockMode::kS, LockMode::kIX, false},
        CompatCase{LockMode::kS, LockMode::kS, true},
        CompatCase{LockMode::kS, LockMode::kX, false},
        CompatCase{LockMode::kS, LockMode::kR, true},
        CompatCase{LockMode::kS, LockMode::kRX, false},
        CompatCase{LockMode::kS, LockMode::kRS, true},
        // X row — nothing
        CompatCase{LockMode::kX, LockMode::kIS, false},
        CompatCase{LockMode::kX, LockMode::kIX, false},
        CompatCase{LockMode::kX, LockMode::kS, false},
        CompatCase{LockMode::kX, LockMode::kX, false},
        CompatCase{LockMode::kX, LockMode::kR, false},
        CompatCase{LockMode::kX, LockMode::kRX, false},
        CompatCase{LockMode::kX, LockMode::kRS, false},
        // R row — share-like; RS must wait R out
        CompatCase{LockMode::kR, LockMode::kS, true},
        CompatCase{LockMode::kR, LockMode::kR, true},
        CompatCase{LockMode::kR, LockMode::kX, false},
        CompatCase{LockMode::kR, LockMode::kIX, false},
        CompatCase{LockMode::kR, LockMode::kRS, false},
        // RX row — "not compatible with any lock mode"
        CompatCase{LockMode::kRX, LockMode::kIS, false},
        CompatCase{LockMode::kRX, LockMode::kIX, false},
        CompatCase{LockMode::kRX, LockMode::kS, false},
        CompatCase{LockMode::kRX, LockMode::kX, false},
        CompatCase{LockMode::kRX, LockMode::kR, false},
        CompatCase{LockMode::kRX, LockMode::kRX, false},
        CompatCase{LockMode::kRX, LockMode::kRS, false}));

TEST(LockModeTest, CoversLattice) {
  EXPECT_TRUE(LockCovers(LockMode::kX, LockMode::kS));
  EXPECT_TRUE(LockCovers(LockMode::kX, LockMode::kIX));
  EXPECT_TRUE(LockCovers(LockMode::kR, LockMode::kS));
  EXPECT_TRUE(LockCovers(LockMode::kRX, LockMode::kX));
  EXPECT_FALSE(LockCovers(LockMode::kS, LockMode::kX));
  EXPECT_FALSE(LockCovers(LockMode::kIS, LockMode::kS));
}

TEST(LockModeTest, SupremumUpgrades) {
  EXPECT_EQ(LockSupremum(LockMode::kR, LockMode::kX), LockMode::kX);
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kX), LockMode::kX);
  EXPECT_EQ(LockSupremum(LockMode::kIS, LockMode::kIX), LockMode::kIX);
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kR), LockMode::kR);
  EXPECT_EQ(LockSupremum(LockMode::kX, LockMode::kS), LockMode::kX);
}

// ---------------------------------------------------------------------------
// Runtime behaviour — every test runs against stripe counts {1, 2, 16}.
// Stripe = 1 collapses the table to the old single-mutex manager, so the
// suite doubles as the legacy-equivalence oracle for the striped rewrite.
// ---------------------------------------------------------------------------

class StripedLockManagerTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Stripes, StripedLockManagerTest,
                         ::testing::Values(1, 2, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "s" + std::to_string(info.param);
                         });

TEST_P(StripedLockManagerTest, SharedThenExclusiveBlocks) {
  LockManager lm{GetParam()};
  LockName n = PageLock(1);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(kT2, n, LockMode::kS).ok());
  EXPECT_TRUE(lm.TryLock(kT3, n, LockMode::kX).IsBusy());
  lm.ReleaseAll(kT1);
  EXPECT_TRUE(lm.TryLock(kT3, n, LockMode::kX).IsBusy());
  lm.ReleaseAll(kT2);
  EXPECT_TRUE(lm.TryLock(kT3, n, LockMode::kX).ok());
}

TEST_P(StripedLockManagerTest, BlockedExclusiveGrantedOnRelease) {
  LockManager lm{GetParam()};
  LockName n = PageLock(1);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kS).ok());
  std::atomic<bool> granted{false};
  std::thread t([&]() {
    ASSERT_TRUE(lm.Lock(kT2, n, LockMode::kX).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(kT1);
  t.join();
  EXPECT_TRUE(granted.load());
}

TEST_P(StripedLockManagerTest, RxConflictBacksOffInsteadOfQueueing) {
  LockManager lm{GetParam()};
  LockName leaf = PageLock(5);
  ASSERT_TRUE(lm.Lock(kReorgTxnId, leaf, LockMode::kRX).ok());
  // A reader (or updater) hitting a granted RX must get kBackoff at once.
  EXPECT_TRUE(lm.Lock(kT1, leaf, LockMode::kS).IsBackoff());
  EXPECT_TRUE(lm.Lock(kT1, leaf, LockMode::kX).IsBackoff());
  EXPECT_TRUE(lm.Lock(kT1, leaf, LockMode::kIS).IsBackoff());
  EXPECT_EQ(lm.stats().backoffs, 3u);
  lm.ReleaseAll(kReorgTxnId);
  EXPECT_TRUE(lm.Lock(kT1, leaf, LockMode::kS).ok());
}

TEST_P(StripedLockManagerTest, InstantRsWaitsOutReorganizerNeverGranted) {
  LockManager lm{GetParam()};
  LockName base = PageLock(9);
  ASSERT_TRUE(lm.Lock(kReorgTxnId, base, LockMode::kR).ok());

  std::atomic<bool> returned{false};
  std::thread reader([&]() {
    // Unconditional instant-duration RS: returns success only once the R
    // lock is gone, and holds nothing afterwards.
    ASSERT_TRUE(lm.LockInstant(kT1, base, LockMode::kRS).ok());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  lm.ReleaseAll(kReorgTxnId);
  reader.join();
  EXPECT_TRUE(returned.load());
  LockMode m;
  EXPECT_FALSE(lm.HeldMode(kT1, base, &m));  // never actually granted
}

TEST_P(StripedLockManagerTest, RCompatibleWithReadersButNotUpdaters) {
  LockManager lm{GetParam()};
  LockName base = PageLock(9);
  ASSERT_TRUE(lm.Lock(kReorgTxnId, base, LockMode::kR).ok());
  EXPECT_TRUE(lm.TryLock(kT1, base, LockMode::kS).ok());   // readers flow
  EXPECT_TRUE(lm.TryLock(kT2, base, LockMode::kX).IsBusy());  // updaters wait
  // And the other direction: S held, reorganizer gets its R.
  LockManager lm2{GetParam()};
  ASSERT_TRUE(lm2.Lock(kT1, base, LockMode::kS).ok());
  EXPECT_TRUE(lm2.TryLock(kReorgTxnId, base, LockMode::kR).ok());
}

TEST_P(StripedLockManagerTest, RToXUpgradeWaitsForReaders) {
  LockManager lm{GetParam()};
  LockName base = PageLock(9);
  ASSERT_TRUE(lm.Lock(kReorgTxnId, base, LockMode::kR).ok());
  ASSERT_TRUE(lm.Lock(kT1, base, LockMode::kS).ok());

  std::atomic<bool> upgraded{false};
  std::thread reorg([&]() {
    ASSERT_TRUE(lm.Lock(kReorgTxnId, base, LockMode::kX).ok());
    upgraded.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(upgraded.load());
  lm.ReleaseAll(kT1);
  reorg.join();
  EXPECT_TRUE(upgraded.load());
  LockMode m;
  ASSERT_TRUE(lm.HeldMode(kReorgTxnId, base, &m));
  EXPECT_EQ(m, LockMode::kX);
  EXPECT_GE(lm.stats().conversions, 1u);
}

TEST_P(StripedLockManagerTest, ConversionHasPriorityOverFreshWaiters) {
  LockManager lm{GetParam()};
  LockName n = PageLock(2);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(kT2, n, LockMode::kS).ok());

  // T3 queues for X (fresh). T1 then converts S->X: the conversion must not
  // wait behind T3.
  std::atomic<bool> t3_granted{false};
  std::thread t3([&]() {
    ASSERT_TRUE(lm.Lock(kT3, n, LockMode::kX).ok());
    t3_granted.store(true);
    lm.ReleaseAll(kT3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::atomic<bool> t1_converted{false};
  std::thread t1([&]() {
    ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kX).ok());
    t1_converted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(t1_converted.load());
  EXPECT_FALSE(t3_granted.load());
  lm.ReleaseAll(kT2);  // last other holder leaves
  t1.join();
  EXPECT_TRUE(t1_converted.load());
  EXPECT_FALSE(t3_granted.load());  // conversion won
  lm.ReleaseAll(kT1);
  t3.join();
}

TEST_P(StripedLockManagerTest, FairnessNoOvertakingQueuedExclusive) {
  LockManager lm{GetParam()};
  LockName n = PageLock(2);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kS).ok());
  std::thread t2([&]() {
    ASSERT_TRUE(lm.Lock(kT2, n, LockMode::kX).ok());
    lm.ReleaseAll(kT2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // A fresh S request must queue behind the waiting X, not starve it.
  EXPECT_TRUE(lm.TryLock(kT3, n, LockMode::kS).IsBusy());
  lm.ReleaseAll(kT1);
  t2.join();
}

TEST_P(StripedLockManagerTest, DeadlockDetectedVictimChosen) {
  LockManager lm{GetParam()};
  LockName a = PageLock(1), b = PageLock(2);
  ASSERT_TRUE(lm.Lock(kT1, a, LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(kT2, b, LockMode::kX).ok());

  std::atomic<int> deadlocks{0};
  std::thread t1([&]() {
    Status s = lm.Lock(kT1, b, LockMode::kX);
    if (s.IsDeadlock()) ++deadlocks;
    lm.ReleaseAll(kT1);
  });
  std::thread t2([&]() {
    Status s = lm.Lock(kT2, a, LockMode::kX);
    if (s.IsDeadlock()) ++deadlocks;
    lm.ReleaseAll(kT2);
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(lm.stats().deadlocks, 1u);
}

TEST_P(StripedLockManagerTest, ReorganizerIsAlwaysTheDeadlockVictim) {
  LockManager lm{GetParam()};
  LockName a = PageLock(1), b = PageLock(2);
  // User txn holds a, reorganizer holds b (RX).
  ASSERT_TRUE(lm.Lock(kT1, a, LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(kReorgTxnId, b, LockMode::kRX).ok());

  std::atomic<bool> user_ok{false};
  std::atomic<bool> reorg_deadlocked{false};
  // User waits for b (RX conflict -> kBackoff though!). Use an S lock on a
  // different name to build the cycle via waiting instead: user waits on a
  // name held X by the reorganizer.
  LockName c = PageLock(3);
  ASSERT_TRUE(lm.Lock(kReorgTxnId, c, LockMode::kX).ok());
  std::thread user([&]() {
    Status s = lm.Lock(kT1, c, LockMode::kX);
    user_ok.store(s.ok());
    lm.ReleaseAll(kT1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread reorg([&]() {
    Status s = lm.Lock(kReorgTxnId, a, LockMode::kX);
    reorg_deadlocked.store(s.IsDeadlock());
    lm.ReleaseAll(kReorgTxnId);
  });
  user.join();
  reorg.join();
  EXPECT_TRUE(reorg_deadlocked.load());  // the paper's victim policy
  EXPECT_TRUE(user_ok.load());           // the user transaction survived
}

TEST_P(StripedLockManagerTest, TimeoutReturnsTimedOut) {
  LockManager lm{GetParam()};
  LockName n = PageLock(4);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kX).ok());
  auto t0 = std::chrono::steady_clock::now();
  Status s = lm.Lock(kT2, n, LockMode::kX, /*timeout_ms=*/50);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_TRUE(s.IsTimedOut());
  EXPECT_GE(ms, 45);
  EXPECT_EQ(lm.stats().timeouts, 1u);
}

TEST_P(StripedLockManagerTest, DowngradeReleasesWaiters) {
  LockManager lm{GetParam()};
  LockName n = PageLock(6);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kX).ok());
  std::atomic<bool> got{false};
  std::thread t([&]() {
    ASSERT_TRUE(lm.Lock(kT2, n, LockMode::kS).ok());
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(lm.Downgrade(kT1, n, LockMode::kS).ok());
  t.join();
  EXPECT_TRUE(got.load());
}

TEST_P(StripedLockManagerTest, ReleaseAllDropsEverything) {
  LockManager lm{GetParam()};
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(lm.Lock(kT1, PageLock(i), LockMode::kS).ok());
  }
  EXPECT_EQ(lm.HeldCount(kT1), 10u);
  lm.ReleaseAll(kT1);
  EXPECT_EQ(lm.HeldCount(kT1), 0u);
  EXPECT_TRUE(lm.TryLock(kT2, PageLock(3), LockMode::kX).ok());
}

TEST_P(StripedLockManagerTest, HeldLockIsReentrant) {
  LockManager lm{GetParam()};
  LockName n = PageLock(8);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kS).ok());  // covered
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kX).ok());  // same mode
  EXPECT_EQ(lm.HeldCount(kT1), 1u);
}

TEST_P(StripedLockManagerTest, DistinctSpacesDoNotCollide) {
  LockManager lm{GetParam()};
  ASSERT_TRUE(lm.Lock(kT1, TreeLock(1), LockMode::kX).ok());
  EXPECT_TRUE(lm.TryLock(kT2, PageLock(1), LockMode::kX).ok());
  EXPECT_TRUE(lm.TryLock(kT3, SideFileLock(), LockMode::kX).ok());
}

// ---------------------------------------------------------------------------
// Regression: instant requests must bypass lock conversion.
// ---------------------------------------------------------------------------

// A transaction already holding a lock on the name it issues an instant RS
// against must not have the request routed through LockSupremum: the old
// fallthrough promoted the conversion target to X, turning a should-be-
// immediate RS return into a wait for full exclusivity against every other
// holder (and a 2 s timeout here).
TEST_P(StripedLockManagerTest, InstantRsWhileHoldingIxDoesNotEscalateToX) {
  LockManager lm{GetParam()};
  LockName base = PageLock(11);
  ASSERT_TRUE(lm.Lock(kT1, base, LockMode::kIX).ok());
  ASSERT_TRUE(lm.Lock(kT2, base, LockMode::kIX).ok());

  // RS is compatible with the other holder's IX, so this returns at once.
  auto t0 = std::chrono::steady_clock::now();
  Status s = lm.LockInstant(kT1, base, LockMode::kRS, /*timeout_ms=*/2000);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_LT(ms, 1000);
  EXPECT_GE(lm.stats().instant_grants, 1u);

  // The instant request granted nothing: T1 still holds plain IX.
  LockMode m;
  ASSERT_TRUE(lm.HeldMode(kT1, base, &m));
  EXPECT_EQ(m, LockMode::kIX);
}

// The instant request must still genuinely wait when the requested mode
// conflicts — holding a lock of one's own is no shortcut past the
// reorganizer's R lock.
TEST_P(StripedLockManagerTest, InstantRsWhileHoldingStillWaitsOutR) {
  LockManager lm{GetParam()};
  LockName base = PageLock(12);
  ASSERT_TRUE(lm.Lock(kT1, base, LockMode::kIS).ok());
  ASSERT_TRUE(lm.Lock(kReorgTxnId, base, LockMode::kR).ok());

  std::atomic<bool> returned{false};
  std::thread waiter([&]() {
    ASSERT_TRUE(lm.LockInstant(kT1, base, LockMode::kRS).ok());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());  // R vs RS: incompatible, must wait
  lm.ReleaseAll(kReorgTxnId);
  waiter.join();
  EXPECT_TRUE(returned.load());
  LockMode m;
  ASSERT_TRUE(lm.HeldMode(kT1, base, &m));
  EXPECT_EQ(m, LockMode::kIS);  // unchanged
}

// ---------------------------------------------------------------------------
// Exhaustive property checks over all 49 (granted, requested) mode pairs:
// LockCompatible, LockCovers and LockSupremum must agree with each other and
// with the structural rules of Table 1 on every cell, not just the ones the
// parameterized suite above spells out.
// ---------------------------------------------------------------------------

constexpr LockMode kAllModes[kNumLockModes] = {
    LockMode::kIS, LockMode::kIX, LockMode::kS, LockMode::kX,
    LockMode::kR,  LockMode::kRX, LockMode::kRS};

TEST(LockModePropertyTest, RxRowAndColumnAreAllIncompatible) {
  for (LockMode m : kAllModes) {
    EXPECT_FALSE(LockCompatible(LockMode::kRX, m)) << LockModeName(m);
    EXPECT_FALSE(LockCompatible(m, LockMode::kRX)) << LockModeName(m);
  }
}

TEST(LockModePropertyTest, RsIsNeverCompatibleAsGrantedAndNeverCovers) {
  // RS is never granted, so its granted-axis row is all-false, it covers
  // nothing, and nothing covers it.
  for (LockMode m : kAllModes) {
    EXPECT_FALSE(LockCompatible(LockMode::kRS, m)) << LockModeName(m);
    EXPECT_FALSE(LockCovers(LockMode::kRS, m)) << LockModeName(m);
    EXPECT_FALSE(LockCovers(m, LockMode::kRS)) << LockModeName(m);
  }
}

TEST(LockModePropertyTest, CompatibilityIsSymmetricAwayFromRs) {
  // RS is the only asymmetric mode (instant-duration request-only); every
  // other pair must commute.
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      if (a == LockMode::kRS || b == LockMode::kRS) continue;
      EXPECT_EQ(LockCompatible(a, b), LockCompatible(b, a))
          << LockModeName(a) << " vs " << LockModeName(b);
    }
  }
}

TEST(LockModePropertyTest, CoversIsReflexiveExceptRs) {
  for (LockMode m : kAllModes) {
    if (m == LockMode::kRS) continue;
    EXPECT_TRUE(LockCovers(m, m)) << LockModeName(m);
  }
}

TEST(LockModePropertyTest, CoveringModeConflictsAtLeastAsMuch) {
  // If `strong` covers `weak`, anything compatible with `strong` must be
  // compatible with `weak`: a stronger lock can only add conflicts.
  for (LockMode strong : kAllModes) {
    for (LockMode weak : kAllModes) {
      if (!LockCovers(strong, weak)) continue;
      for (LockMode m : kAllModes) {
        if (LockCompatible(strong, m)) {
          EXPECT_TRUE(LockCompatible(weak, m))
              << LockModeName(strong) << " covers " << LockModeName(weak)
              << " but conflicts less against " << LockModeName(m);
        }
      }
    }
  }
}

TEST(LockModePropertyTest, SupremumCoversBothInputsAndCommutes) {
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      if (a == LockMode::kRS || b == LockMode::kRS) continue;
      LockMode s = LockSupremum(a, b);
      EXPECT_EQ(s, LockSupremum(b, a))
          << LockModeName(a) << " vs " << LockModeName(b);
      EXPECT_TRUE(LockCovers(s, a))
          << "sup(" << LockModeName(a) << "," << LockModeName(b) << ") = "
          << LockModeName(s);
      EXPECT_TRUE(LockCovers(s, b))
          << "sup(" << LockModeName(a) << "," << LockModeName(b) << ") = "
          << LockModeName(s);
      // And therefore (by the covering property) the conversion target
      // conflicts with at most what either input already allowed:
      for (LockMode m : kAllModes) {
        if (LockCompatible(s, m)) {
          EXPECT_TRUE(LockCompatible(a, m) && LockCompatible(b, m));
        }
      }
    }
  }
}

TEST(LockModePropertyTest, RsActsAsIdentityInSupremum) {
  // The S1 regression, stated as a matrix property: an RS input must never
  // change a conversion target (it is never held, so it adds nothing).
  for (LockMode m : kAllModes) {
    EXPECT_EQ(LockSupremum(m, LockMode::kRS), m) << LockModeName(m);
    EXPECT_EQ(LockSupremum(LockMode::kRS, m), m) << LockModeName(m);
  }
}

}  // namespace
}  // namespace soreorg
