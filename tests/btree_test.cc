#include <gtest/gtest.h>

#include <map>

#include "src/btree/btree.h"
#include "src/btree/bulk_builder.h"
#include "src/btree/iterator.h"
#include "src/storage/env.h"
#include "src/txn/txn_manager.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace soreorg {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(BTreeOptions()); }

  void Reset(BTreeOptions options) {
    tree_.reset();
    txn_mgr_.reset();
    bp_.reset();
    log_.reset();
    disk_.reset();
    env_ = std::make_unique<MemEnv>();
    disk_ = std::make_unique<DiskManager>(env_.get(), "pages");
    ASSERT_TRUE(disk_->Open().ok());
    log_ = std::make_unique<LogManager>(env_.get(), "wal");
    ASSERT_TRUE(log_->Open().ok());
    bp_ = std::make_unique<BufferPool>(disk_.get(), 512, [this](Lsn lsn) {
      return log_->FlushTo(lsn);
    });
    txn_mgr_ = std::make_unique<TransactionManager>(log_.get(), &locks_);
    tree_ = std::make_unique<BTree>(bp_.get(), log_.get(), &locks_, options);
    ASSERT_TRUE(tree_->Create().ok());
    BTree* t = tree_.get();
    txn_mgr_->set_undo_applier(
        [t](const LogRecord& rec, Transaction* txn) -> Status {
          if (rec.flags & kInternalCell) return Status::OK();
          return t->UndoRecordOp(txn, rec);
        });
  }

  Status Put(uint64_t key, const std::string& value) {
    Transaction* txn = txn_mgr_->Begin();
    Status s = tree_->Insert(txn, EncodeU64Key(key), value);
    if (s.ok()) return txn_mgr_->Commit(txn);
    txn_mgr_->Abort(txn);
    return s;
  }

  Status Del(uint64_t key) {
    Transaction* txn = txn_mgr_->Begin();
    Status s = tree_->Delete(txn, EncodeU64Key(key));
    if (s.ok()) return txn_mgr_->Commit(txn);
    txn_mgr_->Abort(txn);
    return s;
  }

  Status Get(uint64_t key, std::string* value) {
    return tree_->Get(nullptr, EncodeU64Key(key), value);
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BufferPool> bp_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, CreateMakesHeightTwoTree) {
  EXPECT_EQ(tree_->height(), 2);
  BTreeStats st;
  ASSERT_TRUE(tree_->ComputeStats(&st).ok());
  EXPECT_EQ(st.leaf_pages, 1u);
  EXPECT_EQ(st.base_pages, 1u);
  EXPECT_EQ(st.records, 0u);
  EXPECT_TRUE(tree_->CheckConsistency().ok());
}

TEST_F(BTreeTest, InsertGetDeleteSingle) {
  ASSERT_TRUE(Put(42, "value-42").ok());
  std::string v;
  ASSERT_TRUE(Get(42, &v).ok());
  EXPECT_EQ(v, "value-42");
  EXPECT_TRUE(Get(43, &v).IsNotFound());
  ASSERT_TRUE(Del(42).ok());
  EXPECT_TRUE(Get(42, &v).IsNotFound());
  EXPECT_TRUE(Del(42).IsNotFound());
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(Put(1, "a").ok());
  EXPECT_TRUE(Put(1, "b").IsInvalidArgument());
  std::string v;
  ASSERT_TRUE(Get(1, &v).ok());
  EXPECT_EQ(v, "a");
}

TEST_F(BTreeTest, ManyInsertsCauseSplitsAndStayConsistent) {
  const int kN = 2000;
  std::string value(64, 'v');
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i) * 3, value).ok()) << i;
  }
  ASSERT_TRUE(tree_->CheckConsistency().ok());
  BTreeStats st;
  ASSERT_TRUE(tree_->ComputeStats(&st).ok());
  EXPECT_EQ(st.records, static_cast<uint64_t>(kN));
  EXPECT_GT(st.leaf_pages, 30u);
  EXPECT_GE(st.height, 2u);
  for (int i = 0; i < kN; ++i) {
    std::string v;
    ASSERT_TRUE(Get(static_cast<uint64_t>(i) * 3, &v).ok()) << i;
  }
}

TEST_F(BTreeTest, RandomOrderInsertsMatchModel) {
  Random rng(99);
  std::map<uint64_t, std::string> model;
  while (model.size() < 1500) {
    uint64_t k = rng.Uniform(1000000);
    std::string v = "v" + std::to_string(k);
    if (model.emplace(k, v).second) {
      ASSERT_TRUE(Put(k, v).ok());
    }
  }
  ASSERT_TRUE(tree_->CheckConsistency().ok());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
}

TEST_F(BTreeTest, UpdateInPlaceAndGrowing) {
  ASSERT_TRUE(Put(5, "short").ok());
  Transaction* txn = txn_mgr_->Begin();
  ASSERT_TRUE(tree_->Update(txn, EncodeU64Key(5), "other").ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  std::string v;
  ASSERT_TRUE(Get(5, &v).ok());
  EXPECT_EQ(v, "other");

  txn = txn_mgr_->Begin();
  std::string big(500, 'B');
  ASSERT_TRUE(tree_->Update(txn, EncodeU64Key(5), big).ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  ASSERT_TRUE(Get(5, &v).ok());
  EXPECT_EQ(v, big);
  EXPECT_TRUE(tree_->CheckConsistency().ok());
}

TEST_F(BTreeTest, FreeAtEmptyDeallocatesDrainedLeaves) {
  const int kN = 1000;
  std::string value(64, 'v');
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), value).ok());
  }
  BTreeStats before;
  ASSERT_TRUE(tree_->ComputeStats(&before).ok());
  ASSERT_GT(before.leaf_pages, 10u);

  // Delete everything: free-at-empty should release almost all leaves.
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(Del(static_cast<uint64_t>(i)).ok()) << i;
  }
  BTreeStats after;
  ASSERT_TRUE(tree_->ComputeStats(&after).ok());
  EXPECT_EQ(after.records, 0u);
  EXPECT_LE(after.leaf_pages, 2u);  // at most the last kept-empty leaf
  EXPECT_GT(disk_->free_count(), before.leaf_pages / 2);
  EXPECT_TRUE(tree_->CheckConsistency().ok());
}

TEST_F(BTreeTest, PartialDeletesLeaveSparseLeaves) {
  // This is the paper's §2 scenario: no consolidation, so deleting most
  // records leaves many pages sparsely filled.
  const int kN = 2000;
  std::string value(64, 'v');
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), value).ok());
  }
  Random rng(7);
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.7)) Del(static_cast<uint64_t>(i));
  }
  BTreeStats st;
  ASSERT_TRUE(tree_->ComputeStats(&st).ok());
  EXPECT_LT(st.avg_leaf_fill, 0.5);   // sparse
  EXPECT_GT(st.leaf_pages, 20u);      // but pages were NOT merged
  EXPECT_TRUE(tree_->CheckConsistency().ok());
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i) * 10, "v").ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(tree_
                  ->Scan(nullptr, EncodeU64Key(1000), EncodeU64Key(2000),
                         [&](const Slice& k, const Slice&) {
                           seen.push_back(DecodeU64Key(k));
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 101u);  // 1000,1010,...,2000
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1000 + 10 * i);
  }
}

TEST_F(BTreeTest, ScanEarlyStopAndEmptyRange) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v").ok());
  }
  int count = 0;
  ASSERT_TRUE(tree_
                  ->Scan(nullptr, EncodeU64Key(0), EncodeU64Key(99),
                         [&](const Slice&, const Slice&) {
                           return ++count < 5;
                         })
                  .ok());
  EXPECT_EQ(count, 5);

  count = 0;
  ASSERT_TRUE(tree_
                  ->Scan(nullptr, EncodeU64Key(1000), EncodeU64Key(2000),
                         [&](const Slice&, const Slice&) {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 0);
}

TEST_F(BTreeTest, IteratorTrailVisitsLeavesInKeyOrder) {
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), std::string(64, 'v')).ok());
  }
  BTreeIterator it(tree_.get(), nullptr);
  ASSERT_TRUE(it.Seek(Slice()).ok());
  uint64_t prev = 0;
  bool first = true;
  uint64_t n = 0;
  while (it.Valid()) {
    uint64_t k = DecodeU64Key(it.key());
    if (!first) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    first = false;
    ++n;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(n, 800u);
  EXPECT_GT(it.leaf_trail().size(), 5u);
}

TEST_F(BTreeTest, SidePointersChainMatchesKeyOrder) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), std::string(64, 'v')).ok());
  }
  std::vector<PageId> leaves;
  ASSERT_TRUE(tree_->CollectLeaves(&leaves).ok());
  ASSERT_GT(leaves.size(), 2u);
  for (size_t i = 0; i < leaves.size(); ++i) {
    Page* page;
    ASSERT_TRUE(bp_->FetchPage(leaves[i], &page).ok());
    PageId want_prev = i > 0 ? leaves[i - 1] : kInvalidPageId;
    PageId want_next = i + 1 < leaves.size() ? leaves[i + 1] : kInvalidPageId;
    EXPECT_EQ(page->prev(), want_prev) << i;
    EXPECT_EQ(page->next(), want_next) << i;
    bp_->UnpinPage(leaves[i], false);
  }
}

TEST_F(BTreeTest, SidePointerModeNoneWorks) {
  Reset(BTreeOptions{.side_pointers = SidePointerMode::kNone});
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), std::string(64, 'v')).ok());
  }
  for (int i = 0; i < 600; i += 2) {
    ASSERT_TRUE(Del(static_cast<uint64_t>(i)).ok());
  }
  ASSERT_TRUE(tree_->CheckConsistency().ok());
  int count = 0;
  ASSERT_TRUE(tree_
                  ->Scan(nullptr, Slice(), Slice(),
                         [&](const Slice&, const Slice&) {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 300);
}

TEST_F(BTreeTest, AbortUndoesInserts) {
  ASSERT_TRUE(Put(1, "keep").ok());
  Transaction* txn = txn_mgr_->Begin();
  ASSERT_TRUE(tree_->Insert(txn, EncodeU64Key(2), "drop").ok());
  ASSERT_TRUE(tree_->Insert(txn, EncodeU64Key(3), "drop").ok());
  ASSERT_TRUE(txn_mgr_->Abort(txn).ok());
  std::string v;
  EXPECT_TRUE(Get(1, &v).ok());
  EXPECT_TRUE(Get(2, &v).IsNotFound());
  EXPECT_TRUE(Get(3, &v).IsNotFound());
}

TEST_F(BTreeTest, AbortUndoesDeletesAndUpdates) {
  ASSERT_TRUE(Put(1, "original").ok());
  ASSERT_TRUE(Put(2, "second").ok());
  Transaction* txn = txn_mgr_->Begin();
  ASSERT_TRUE(tree_->Delete(txn, EncodeU64Key(1)).ok());
  ASSERT_TRUE(tree_->Update(txn, EncodeU64Key(2), "changed").ok());
  ASSERT_TRUE(txn_mgr_->Abort(txn).ok());
  std::string v;
  ASSERT_TRUE(Get(1, &v).ok());
  EXPECT_EQ(v, "original");
  ASSERT_TRUE(Get(2, &v).ok());
  EXPECT_EQ(v, "second");
}

TEST_F(BTreeTest, BasePageUtilities) {
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), std::string(64, 'v')).ok());
  }
  std::vector<PageId> bases;
  ASSERT_TRUE(tree_->CollectBasePages(&bases).ok());
  ASSERT_GE(bases.size(), 1u);

  // FirstBasePage + NextBasePage walk them all in order.
  TxnId id = tree_->NewEphemeralId();
  std::string lm;
  PageId pid;
  ASSERT_TRUE(tree_->FirstBasePage(id, &lm, &pid).ok());
  EXPECT_EQ(pid, bases[0]);
  size_t count = 1;
  while (true) {
    Status s = tree_->NextBasePage(id, lm, &lm, &pid);
    if (s.IsNotFound()) break;
    ASSERT_TRUE(s.ok());
    ASSERT_LT(count, bases.size());
    EXPECT_EQ(pid, bases[count]);
    ++count;
  }
  EXPECT_EQ(count, bases.size());

  // LockBasePage lands on the right base page for a key.
  PageGuard guard;
  PageId base_pid;
  ASSERT_TRUE(tree_
                  ->LockBasePage(id, EncodeU64Key(1500), LockMode::kR,
                                 &base_pid, &guard)
                  .ok());
  InternalNode node(guard.get());
  EXPECT_GE(node.FindChildSlot(node.ChildAt(node.FindChild(
                EncodeU64Key(1500)))), 0);
  guard.Release();
  locks_.ReleaseAll(id);
}

TEST_F(BTreeTest, BaseApplyInsertAndRemove) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i) * 10, std::string(64, 'v')).ok());
  }
  // Fabricate a leaf and register it at the base level via BaseApply.
  PageId leaf_pid;
  Page* leaf_page;
  ASSERT_TRUE(bp_->NewPage(&leaf_pid, &leaf_page).ok());
  LeafNode::Format(leaf_page, leaf_pid);
  LeafNode ln(leaf_page);
  std::string key = EncodeU64Key(1501);
  ASSERT_TRUE(ln.Insert(key, "planted").ok());
  bp_->UnpinPage(leaf_pid, true);

  Transaction* txn = txn_mgr_->Begin();
  ASSERT_TRUE(
      tree_->BaseApply(txn, BaseUpdateOp::kInsert, key, leaf_pid).ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(nullptr, key, &v).ok());
  EXPECT_EQ(v, "planted");

  txn = txn_mgr_->Begin();
  ASSERT_TRUE(
      tree_->BaseApply(txn, BaseUpdateOp::kDelete, key, leaf_pid).ok());
  ASSERT_TRUE(txn_mgr_->Commit(txn).ok());
  EXPECT_TRUE(tree_->Get(nullptr, key, &v).IsNotFound());
}

TEST(BulkBuilderTest, BuildsAtRequestedFill) {
  MemEnv env;
  DiskManager disk(&env, "pages");
  ASSERT_TRUE(disk.Open().ok());
  BufferPool bp(&disk, 512);

  BTreeOptions topt;
  BulkBuilder builder(&bp, topt, /*leaf_fill=*/0.5, /*internal_fill=*/0.9);
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(builder.Add(EncodeU64Key(i), std::string(64, 'v')).ok());
  }
  PageId root;
  uint8_t height;
  ASSERT_TRUE(builder.Finish(&root, &height).ok());
  ASSERT_GE(height, 2);

  LockManager locks;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());
  BTree tree(&bp, &log, &locks, topt);
  tree.Attach(root, height, 1);
  ASSERT_TRUE(tree.CheckConsistency().ok());
  BTreeStats st;
  ASSERT_TRUE(tree.ComputeStats(&st).ok());
  EXPECT_EQ(st.records, static_cast<uint64_t>(kN));
  EXPECT_GT(st.avg_leaf_fill, 0.38);
  EXPECT_LT(st.avg_leaf_fill, 0.62);
  std::string v;
  ASSERT_TRUE(tree.Get(nullptr, EncodeU64Key(kN / 2), &v).ok());
}

TEST(BulkBuilderTest, BulkLoadedLeavesAreDiskContiguous) {
  MemEnv env;
  DiskManager disk(&env, "pages");
  ASSERT_TRUE(disk.Open().ok());
  BufferPool bp(&disk, 512);
  BTreeOptions topt;
  BulkBuilder builder(&bp, topt, 0.9, 0.9);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(builder.Add(EncodeU64Key(i), std::string(64, 'v')).ok());
  }
  PageId root;
  uint8_t height;
  ASSERT_TRUE(builder.Finish(&root, &height).ok());
  LockManager locks;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());
  BTree tree(&bp, &log, &locks, topt);
  tree.Attach(root, height, 1);
  BTreeStats st;
  ASSERT_TRUE(tree.ComputeStats(&st).ok());
  // Leaves were allocated in key order; the only gaps are the occasional
  // internal-page allocation interleaved when a level page fills.
  EXPECT_GE(st.leaves_in_disk_order + 4, st.leaf_pages - 1);
}

}  // namespace
}  // namespace soreorg
