// BTreeIterator behaviors: seek semantics, upper-bound hops across leaves
// and base pages, empty-leaf tolerance, and stability under concurrent
// structural change.

#include <thread>

#include "src/btree/iterator.h"
#include "tests/test_util.h"

namespace soreorg {
namespace {

class IteratorTest : public DbFixture {};

TEST_F(IteratorTest, SeekLandsOnLowerBound) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i) * 10, "v").ok());
  }
  BTreeIterator it(db_->tree(), nullptr);
  ASSERT_TRUE(it.Seek(EncodeU64Key(105)).ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(DecodeU64Key(it.key()), 110u);  // first key >= 105
  ASSERT_TRUE(it.Seek(EncodeU64Key(110)).ok());
  EXPECT_EQ(DecodeU64Key(it.key()), 110u);  // exact hit
}

TEST_F(IteratorTest, SeekPastEndIsInvalid) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v").ok());
  }
  BTreeIterator it(db_->tree(), nullptr);
  ASSERT_TRUE(it.Seek(EncodeU64Key(1000)).ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(IteratorTest, EmptyTreeIteratesNothing) {
  BTreeIterator it(db_->tree(), nullptr);
  ASSERT_TRUE(it.Seek(Slice()).ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(IteratorTest, FullIterationCrossesManyLeavesAndBasePages) {
  const int kN = 20000;  // multiple base pages => NextBasePage hops
  auto records = MakeRecords(kN, 64);
  ASSERT_TRUE(db_->BulkLoad(records, 0.9).ok());
  BTreeIterator it(db_->tree(), nullptr);
  ASSERT_TRUE(it.Seek(Slice()).ok());
  uint64_t n = 0, prev = 0;
  while (it.Valid()) {
    uint64_t k = DecodeU64Key(it.key());
    if (n > 0) {
      ASSERT_GT(k, prev);
    }
    prev = k;
    ++n;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(n, static_cast<uint64_t>(kN));
  EXPECT_GT(it.leaf_trail().size(), 300u);
}

TEST_F(IteratorTest, SkipsEmptyLeavesLeftByFailedUnlink) {
  // Force an empty leaf to remain linked: delete the only record of the
  // last leaf under the root when it is the single leaf (kept empty).
  ASSERT_TRUE(Put(1, "only").ok());
  ASSERT_TRUE(Del(1).ok());  // the last leaf is kept (empty)
  ASSERT_TRUE(Put(2, "two").ok());
  int count = 0;
  ASSERT_TRUE(db_->Scan(Slice(), Slice(),
                        [&](const Slice&, const Slice&) {
                          ++count;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(IteratorTest, CursorStabilityUnderConcurrentReorganization) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 4000, 64, 0.95, 0.6, 10, 3,
                                 &survivors)
                  .ok());
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread scanner([&]() {
    while (!stop.load()) {
      BTreeIterator it(db_->tree(), nullptr);
      if (!it.Seek(Slice()).ok()) continue;
      uint64_t prev = 0;
      bool first = true;
      while (it.Valid()) {
        uint64_t k = DecodeU64Key(it.key());
        if (!first && k <= prev) {
          ++bad;
          break;
        }
        prev = k;
        first = false;
        if (!it.Next().ok()) break;
      }
    }
  });
  ASSERT_TRUE(db_->Reorganize().ok());
  stop.store(true);
  scanner.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST_F(IteratorTest, TransactionalIteratorUsesTxnLockOwner) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v").ok());
  }
  Transaction* txn = db_->Begin();
  {
    BTreeIterator it(db_->tree(), txn);
    ASSERT_TRUE(it.Seek(Slice()).ok());
    int n = 0;
    while (it.Valid() && n < 50) {
      ++n;
      ASSERT_TRUE(it.Next().ok());
    }
    EXPECT_EQ(n, 50);
  }
  ASSERT_TRUE(db_->Commit(txn).ok());
}

}  // namespace
}  // namespace soreorg
