// Striped lock table: sizing, the queue-leak regression, cross-stripe
// deadlock detection, per-waiter wakeup behaviour, and a multi-thread
// protocol stress run with the invariant checker engaged — all over stripe
// counts {1, 2, 16} (stripe = 1 is the legacy single-mutex manager).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/txn/lock_invariants.h"
#include "src/txn/lock_manager.h"

namespace soreorg {
namespace {

constexpr TxnId kT1 = 100, kT2 = 200, kT3 = 300;

TEST(LockStripeSizingTest, DefaultAndRounding) {
  EXPECT_EQ(LockManager{}.stripe_count(), LockManager::kDefaultStripes);
  EXPECT_EQ(LockManager{0}.stripe_count(), LockManager::kDefaultStripes);
  EXPECT_EQ(LockManager{1}.stripe_count(), 1u);
  EXPECT_EQ(LockManager{2}.stripe_count(), 2u);
  EXPECT_EQ(LockManager{3}.stripe_count(), 4u);  // rounded up to a power of 2
  EXPECT_EQ(LockManager{16}.stripe_count(), 16u);
  EXPECT_EQ(LockManager{5000}.stripe_count(), LockManager::kMaxStripes);
}

class LockStripeTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Stripes, LockStripeTest, ::testing::Values(1, 2, 16),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "s" + std::to_string(info.param);
                         });

// The seed manager never erased an empty queue, so every name ever locked
// leaked one map node — a long churn run grew the table without bound.
TEST_P(LockStripeTest, EmptyQueuesAreErasedOnLastRelease) {
  LockManager lm{GetParam()};
  for (uint32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(lm.Lock(kT1, PageLock(i), LockMode::kX).ok());
    ASSERT_TRUE(lm.Unlock(kT1, PageLock(i)).ok());
  }
  EXPECT_EQ(lm.QueueCount(), 0u);

  for (uint32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(lm.Lock(kT2, PageLock(i), LockMode::kS).ok());
  }
  EXPECT_EQ(lm.QueueCount(), 200u);
  lm.ReleaseAll(kT2);
  EXPECT_EQ(lm.QueueCount(), 0u);
}

// Request paths that never end up holding anything must not leave a node
// behind either: instant grants on fresh names, timeouts, and try-lock
// failures.
TEST_P(LockStripeTest, TransientRequestsLeaveNoQueueBehind) {
  LockManager lm{GetParam()};
  // Instant-duration request against an unlocked name.
  ASSERT_TRUE(lm.LockInstant(kT1, PageLock(7), LockMode::kRS).ok());
  EXPECT_EQ(lm.QueueCount(), 0u);

  // A timed-out waiter was the queue's only prospective user.
  ASSERT_TRUE(lm.Lock(kT1, PageLock(8), LockMode::kX).ok());
  EXPECT_TRUE(lm.Lock(kT2, PageLock(8), LockMode::kX, 30).IsTimedOut());
  EXPECT_EQ(lm.QueueCount(), 1u);  // only T1's held lock remains
  ASSERT_TRUE(lm.Unlock(kT1, PageLock(8)).ok());
  EXPECT_EQ(lm.QueueCount(), 0u);
}

// A cycle whose two names live in different stripes: detection must build
// the waits-for graph across stripes, and the victim must still follow the
// paper's policy.
TEST_P(LockStripeTest, CrossStripeDeadlockDetected) {
  LockManager lm{GetParam()};
  LockName a = PageLock(1), b = PageLock(2);
  ASSERT_TRUE(lm.Lock(kT1, a, LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(kT2, b, LockMode::kX).ok());

  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    if (lm.Lock(kT1, b, LockMode::kX).IsDeadlock()) ++deadlocks;
    lm.ReleaseAll(kT1);
  });
  std::thread t2([&] {
    if (lm.Lock(kT2, a, LockMode::kX).IsDeadlock()) ++deadlocks;
    lm.ReleaseAll(kT2);
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_EQ(lm.QueueCount(), 0u);
}

TEST_P(LockStripeTest, CrossStripeReorganizerIsAlwaysTheVictim) {
  LockManager lm{GetParam()};
  LockName a = PageLock(1), c = PageLock(3);
  ASSERT_TRUE(lm.Lock(kT1, a, LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(kReorgTxnId, c, LockMode::kX).ok());

  std::atomic<bool> user_ok{false};
  std::atomic<bool> reorg_deadlocked{false};
  std::thread user([&] {
    Status s = lm.Lock(kT1, c, LockMode::kX);
    user_ok.store(s.ok());
    lm.ReleaseAll(kT1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread reorg([&] {
    Status s = lm.Lock(kReorgTxnId, a, LockMode::kX);
    reorg_deadlocked.store(s.IsDeadlock());
    lm.ReleaseAll(kReorgTxnId);
  });
  user.join();
  reorg.join();
  EXPECT_TRUE(reorg_deadlocked.load());
  EXPECT_TRUE(user_ok.load());
}

// Per-waiter wakeups: a waiter's departure must hand wake tokens to the
// FIFO followers it was blocking. T2 queues for X behind T1's S; T3's fresh
// S queues behind T2 (no overtaking). When T2 times out, T3 is compatible
// with the sole remaining holder and must be granted without any release.
TEST_P(LockStripeTest, TimedOutWaiterWakesBlockedFollower) {
  LockManager lm{GetParam()};
  LockName n = PageLock(4);
  ASSERT_TRUE(lm.Lock(kT1, n, LockMode::kS).ok());
  std::thread t2([&] {
    EXPECT_TRUE(lm.Lock(kT2, n, LockMode::kX, /*timeout_ms=*/80).IsTimedOut());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::atomic<bool> t3_granted{false};
  std::thread t3([&] {
    ASSERT_TRUE(lm.Lock(kT3, n, LockMode::kS).ok());
    t3_granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(t3_granted.load());  // queued behind the waiting X
  t2.join();                        // T2 times out and departs
  t3.join();                        // ... which must wake T3
  EXPECT_TRUE(t3_granted.load());
  lm.ReleaseAll(kT1);
  lm.ReleaseAll(kT3);
}

// A conversion to RX past a queued waiter flips that waiter from "waiting"
// to "must back off"; the grant must deliver the wake token (the legacy
// manager's broadcast hid this case).
TEST_P(LockStripeTest, RxConversionWakesQueuedWaiterIntoBackoff) {
  LockManager lm{GetParam()};
  LockName leaf = PageLock(5);
  ASSERT_TRUE(lm.Lock(kReorgTxnId, leaf, LockMode::kX).ok());
  std::atomic<bool> backed_off{false};
  std::thread t1([&] {
    Status s = lm.Lock(kT1, leaf, LockMode::kS);
    backed_off.store(s.IsBackoff());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(backed_off.load());
  // X -> RX conversion (skip-queue priority) lands while T1 is queued.
  ASSERT_TRUE(lm.Lock(kReorgTxnId, leaf, LockMode::kRX).ok());
  t1.join();
  EXPECT_TRUE(backed_off.load());
  lm.ReleaseAll(kReorgTxnId);
}

// Multi-thread protocol stress with the invariant checker recording instead
// of aborting: disjoint and overlapping names, conversions, instant RS,
// release-all churn. Zero violations and an empty table at the end.
TEST_P(LockStripeTest, ConcurrentChurnKeepsInvariantsAndLeaksNothing) {
  LockManager lm{GetParam()};
  std::vector<LockViolation> violations;
  std::mutex vmu;
  LockInvariantChecker checker([&](const LockViolation& v) {
    std::lock_guard<std::mutex> g(vmu);
    violations.push_back(v);
  });
  lm.SetInvariantChecker(&checker);

  constexpr int kThreads = 4;
  constexpr int kRounds = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TxnId txn = 1000 + t;
      for (int r = 0; r < kRounds; ++r) {
        uint32_t hot = static_cast<uint32_t>(r % 7);
        uint32_t cold = static_cast<uint32_t>(1000 + t * kRounds + r);
        if (lm.Lock(txn, PageLock(hot), LockMode::kS, 200).ok()) {
          (void)lm.Lock(txn, PageLock(cold), LockMode::kX, 200);
          if (r % 3 == 0) {
            // Conversion on the hot name; deadlock/timeout are legal outcomes.
            (void)lm.Lock(txn, PageLock(hot), LockMode::kX, 50);
          }
          if (r % 5 == 0) {
            (void)lm.LockInstant(txn, PageLock(hot), LockMode::kRS, 50);
          }
        }
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();

  lm.CheckInvariantsNow();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations; first: "
      << violations.front().invariant << ": " << violations.front().detail;
  EXPECT_EQ(lm.QueueCount(), 0u);
}

// Cross-stripe release-all bookkeeping: locks spread over many stripes are
// all dropped, and the held index (sharded by TxnId) ends empty.
TEST_P(LockStripeTest, ReleaseAllSpansStripes) {
  LockManager lm{GetParam()};
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(lm.Lock(kT1, PageLock(i), LockMode::kS).ok());
  }
  ASSERT_TRUE(lm.Lock(kT1, TreeLock(1), LockMode::kIS).ok());
  ASSERT_TRUE(lm.Lock(kT1, SideFileLock(), LockMode::kIX).ok());
  EXPECT_EQ(lm.HeldCount(kT1), 66u);
  lm.ReleaseAll(kT1);
  EXPECT_EQ(lm.HeldCount(kT1), 0u);
  EXPECT_EQ(lm.QueueCount(), 0u);
  EXPECT_TRUE(lm.TryLock(kT2, PageLock(13), LockMode::kX).ok());
}

}  // namespace
}  // namespace soreorg
