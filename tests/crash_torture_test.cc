// Crash-torture sweeps (ISSUE 5 acceptance): crash at *every* WAL and page
// I/O point of a full insert -> delete -> reorganize cycle, recover, and
// verify the recovered tree equals the pre-reorg model and passes the
// invariant checker. Torn-page mode additionally requires every tear to be
// either invisible (superseded by redo) or *detected* via the page checksum
// — never silently accepted into a wrong tree.

#include "src/sim/torture.h"

#include <gtest/gtest.h>

namespace soreorg {
namespace {

TortureOptions SmallWorkload(TortureMode mode) {
  TortureOptions opt;
  opt.mode = mode;
  opt.records = 800;
  opt.value_size = 40;
  // A small pool forces evictions mid-reorganization, so the sweep also
  // crosses page writes issued by victim flushes, not just checkpoints.
  opt.db.buffer_pool_pages = 24;
  return opt;
}

void LogStats(const TortureStats& stats) {
  std::fprintf(stderr,
               "[torture] points_total=%d tested=%d fired=%d recoveries_ok=%d "
               "detected=%d failures=%d\n",
               stats.points_total, stats.points_tested, stats.faults_fired,
               stats.recoveries_ok, stats.detected_corruptions,
               stats.failures);
  for (const auto& d : stats.failure_details) {
    std::fprintf(stderr, "[torture]   %s\n", d.c_str());
  }
}

TEST(CrashTortureTest, CleanCrashAtEveryIoPoint) {
  TortureHarness harness(SmallWorkload(TortureMode::kCleanCrash));
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_GT(stats.points_total, 0);
  EXPECT_EQ(stats.points_tested, stats.points_total);
  EXPECT_EQ(stats.faults_fired, stats.points_tested);
  // A clean crash never tears anything, so nothing should read as corrupt.
  EXPECT_EQ(stats.detected_corruptions, 0);
  EXPECT_EQ(stats.recoveries_ok, stats.points_tested);
}

TEST(CrashTortureTest, CleanCrashThenCompleteReorganization) {
  // Forward recovery (§5.1) promises more than a readable tree: the
  // reorganization must be *resumable*. Crash at every 3rd point, recover,
  // run Reorganize() to completion, verify again.
  TortureOptions opt = SmallWorkload(TortureMode::kCleanCrash);
  opt.stride = 3;
  opt.complete_after = true;
  TortureHarness harness(opt);
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.recoveries_ok, stats.points_tested);
}

TEST(CrashTortureTest, CleanCrashAcrossStepAsideWindow) {
  // ISSUE 6: the step-aside protocol releases and re-acquires the side-file
  // X lock mid-switch, with a live updater transaction running inside the
  // window. Force two step-aside rounds on every Reorganize() so the sweep's
  // crash points land before, inside, and after the release-reacquire
  // window — including mid-transaction of the window updater — then recover
  // and complete. The model must hold at every point: the window updater
  // deletes and re-inserts one model key, so commit and rollback are both
  // model-equal.
  TortureOptions opt = SmallWorkload(TortureMode::kCleanCrash);
  opt.stride = 3;
  opt.complete_after = true;
  opt.force_step_asides = 2;
  TortureHarness harness(opt);
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.recoveries_ok, stats.points_tested);
}

TEST(CrashTortureTest, TornWalWriteAcrossStepAsideWindow) {
  // Same window, torn-WAL flavor: the window updater's own log records are
  // the ones being cut short, and recovery must still converge on the model.
  TortureOptions opt = SmallWorkload(TortureMode::kTornWalWrite);
  opt.stride = 4;
  opt.force_step_asides = 2;
  TortureHarness harness(opt);
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.detected_corruptions, 0);
  EXPECT_EQ(stats.recoveries_ok, stats.points_tested);
}

TEST(CrashTortureTest, TornPageWriteAtEveryPageIoPoint) {
  TortureHarness harness(SmallWorkload(TortureMode::kTornPageWrite));
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.points_tested, stats.points_total);
  // Every iteration either recovered model-equal or detected the tear.
  EXPECT_EQ(stats.recoveries_ok + stats.detected_corruptions,
            stats.points_tested);
}

TEST(CrashTortureTest, TornPageWriteTinyPrefix) {
  // A 100-byte prefix leaves even the page header torn — the checksum field
  // itself may be half old, half new.
  TortureOptions opt = SmallWorkload(TortureMode::kTornPageWrite);
  opt.tear_keep_bytes = 100;
  opt.stride = 2;
  TortureHarness harness(opt);
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
}

TEST(CrashTortureTest, CleanCrashAcrossSegmentRotationAndTruncation) {
  // ISSUE 10 acceptance: tiny WAL segments force rotation every few records,
  // and a checkpoint inside the swept window drives truncation — so the
  // sweep crashes at every I/O point of the seal / create-or-recycle /
  // dirsync / park-rename / delete protocol, not just at record writes.
  // Recovery (with parallel redo) must produce the model at every point.
  TortureOptions opt = SmallWorkload(TortureMode::kCleanCrash);
  opt.stride = 3;
  opt.checkpoint_churn_txns = 24;
  opt.db.wal_segment_bytes = 4096;
  opt.db.wal_recycle_segments = 2;
  opt.db.redo_threads = 4;
  TortureHarness harness(opt);
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.detected_corruptions, 0);
  EXPECT_EQ(stats.recoveries_ok, stats.points_tested);
}

TEST(CrashTortureTest, TornWalWriteAcrossSegmentBoundaries) {
  // Torn WAL writes with segments so small that tears land on header
  // writes, seals, and final frames of a segment. A tear in segment N must
  // read as a torn tail (self-healing), never suppress valid frames in
  // segment N+1, and never read as silent corruption.
  TortureOptions opt = SmallWorkload(TortureMode::kTornWalWrite);
  opt.stride = 4;
  opt.checkpoint_churn_txns = 24;
  opt.db.wal_segment_bytes = 4096;
  opt.db.redo_threads = 4;
  TortureHarness harness(opt);
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.recoveries_ok + stats.detected_corruptions,
            stats.points_tested);
}

TEST(CrashTortureTest, TornWalWriteAtEveryWalIoPoint) {
  // A torn WAL frame is the normal post-crash state: recovery must treat it
  // as end-of-log and roll forward from what is durable — never error out,
  // never replay garbage.
  TortureHarness harness(SmallWorkload(TortureMode::kTornWalWrite));
  TortureStats stats;
  Status s = harness.Run(&stats);
  LogStats(stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.detected_corruptions, 0);  // torn tail is not corruption
  EXPECT_EQ(stats.recoveries_ok, stats.points_tested);
}

}  // namespace
}  // namespace soreorg
