// Partitioned parallel redo (ISSUE 10): replaying the same crashed image
// with 1 and with 4 redo threads must produce bit-identical page files (the
// serial replay is the verification oracle); checkpoint-driven truncation
// floors bound the redo scan to the segments written since the floor; and
// the RecoveryResult forensics (threads used, per-thread work, segment
// counts, torn tail) are populated and consistent.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/storage/env.h"
#include "src/storage/fault_env.h"
#include "src/wal/log_manager.h"

namespace soreorg {
namespace {

std::string KeyOf(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

DatabaseOptions SmallSegmentOptions() {
  DatabaseOptions opts;
  opts.buffer_pool_pages = 48;
  opts.wal_segment_bytes = 2048;
  opts.wal_recycle_segments = 2;
  return opts;
}

// Deterministic workload that ends in a crash: load + checkpoint baseline,
// then scattered single-page updates/deletes until the armed fault takes
// the env down. Two runs with the same options produce identical durable
// images, so recoveries with different thread counts start from the same
// bytes.
void BuildCrashedImage(FaultInjectionEnv* env, const DatabaseOptions& opts,
                       int crash_at_op) {
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(env, opts, &db).ok());
  const std::string value(100, 'v');
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db->Put(KeyOf(i), value).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());

  env->FailOpAfter(crash_at_op, "", "");
  int i = 0;
  while (true) {
    Status s;
    if (i % 5 == 4) {
      s = db->Delete(KeyOf((i * 7) % 300));
      if (s.IsNotFound()) s = Status::OK();  // already deleted earlier
    } else {
      s = db->Update(KeyOf((i * 13) % 300), std::string(100, 'a' + i % 20));
      if (s.IsNotFound()) s = Status::OK();  // hit a deleted key
    }
    if (!s.ok()) break;  // the fault fired; the env is down
    ++i;
    ASSERT_LT(i, 100000) << "fault never fired";
  }
  ASSERT_TRUE(env->fault_fired());
  db.reset();   // destructor flushes fail against the downed env
  env->Crash();  // volatile state is gone
}

// Whole-file durable bytes, for bit-identity comparison.
std::string FileBytes(Env* env, const std::string& name) {
  std::unique_ptr<File> f;
  if (!env->NewFile(name, &f).ok()) return {};
  const uint64_t size = f->Size();
  std::string buf(size, '\0');
  size_t got = 0;
  if (!f->Read(0, size, buf.data(), &got).ok()) return {};
  buf.resize(got);
  return buf;
}

TEST(ParallelRedoTest, ParallelRedoIsBitIdenticalToSerialOracle) {
  constexpr int kCrashAt = 400;
  MemEnv base1, base4;
  FaultInjectionEnv env1(&base1), env4(&base4);
  DatabaseOptions build = SmallSegmentOptions();
  BuildCrashedImage(&env1, build, kCrashAt);
  BuildCrashedImage(&env4, build, kCrashAt);
  ASSERT_EQ(FileBytes(&env1, "soreorg.pages"),
            FileBytes(&env4, "soreorg.pages"))
      << "the two crashed images must start identical";

  DatabaseOptions serial = build;
  serial.redo_threads = 1;
  DatabaseOptions parallel = build;
  parallel.redo_threads = 4;

  std::unique_ptr<Database> db1, db4;
  ASSERT_TRUE(Database::Open(&env1, serial, &db1).ok());
  ASSERT_TRUE(Database::Open(&env4, parallel, &db4).ok());
  const RecoveryResult& r1 = db1->recovery_result();
  const RecoveryResult& r4 = db4->recovery_result();
  EXPECT_EQ(r1.redo_threads_used, 1);
  EXPECT_GE(r4.redo_threads_used, 1);
  EXPECT_GT(r1.records_redone, 0u) << "the crash must leave redo work";
  EXPECT_EQ(r1.records_redone, r4.records_redone);
  EXPECT_EQ(r1.records_scanned, r4.records_scanned);

  // Logical equality first (better failure messages than a byte diff)...
  std::vector<std::pair<std::string, std::string>> got1, got4;
  auto collect = [](std::vector<std::pair<std::string, std::string>>* out) {
    return [out](const Slice& k, const Slice& v) {
      out->emplace_back(k.ToString(), v.ToString());
      return true;
    };
  };
  ASSERT_TRUE(db1->Scan(Slice(), Slice(), collect(&got1)).ok());
  ASSERT_TRUE(db4->Scan(Slice(), Slice(), collect(&got4)).ok());
  EXPECT_EQ(got1, got4);
  ASSERT_TRUE(db1->tree()->CheckConsistency().ok());
  ASSERT_TRUE(db4->tree()->CheckConsistency().ok());

  // ...then the hard claim: after a full flush the page files are
  // bit-identical — parallel redo left no page in a different state than
  // the serial oracle.
  ASSERT_TRUE(db1->buffer_pool()->FlushAndSync().ok());
  ASSERT_TRUE(db4->buffer_pool()->FlushAndSync().ok());
  db1.reset();
  db4.reset();
  const std::string pages1 = FileBytes(&env1, "soreorg.pages");
  const std::string pages4 = FileBytes(&env4, "soreorg.pages");
  ASSERT_FALSE(pages1.empty());
  EXPECT_EQ(pages1, pages4);
}

TEST(ParallelRedoTest, CheckpointFloorBoundsSegmentsScanned) {
  // Acceptance: write 10x the segment size, checkpoint, recover — redo must
  // visit only the segments at/above the floor, not the whole log.
  // Truncation is off so the old segments still exist on disk and the bound
  // is proven by the *scan*, not by deletion.
  MemEnv env;
  DatabaseOptions opts = SmallSegmentOptions();
  opts.wal_truncate_on_checkpoint = false;
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
    const std::string value(100, 'v');
    // >= 10 segments of 2 KiB = 20 KiB of WAL; each put logs ~150 bytes.
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db->Put(KeyOf(i), value).ok());
    }
    ASSERT_GE(db->log_manager()->segment_count(), 10u);
    ASSERT_TRUE(db->Checkpoint().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db->Update(KeyOf(i), std::string(100, 'u')).ok());
    }
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
  const RecoveryResult& rr = db->recovery_result();
  EXPECT_GE(db->log_manager()->segment_count(), 10u)
      << "with truncation off the whole history must still be on disk";
  EXPECT_LE(rr.segments_scanned, 3u)
      << "redo scanned segments below the checkpoint floor";
  EXPECT_GT(rr.segments_scanned, 0u);
  std::string v;
  ASSERT_TRUE(db->Get(KeyOf(0), &v).ok());
  EXPECT_EQ(v, std::string(100, 'u'));
}

TEST(ParallelRedoTest, TruncationShrinksRecoveryScanAndLog) {
  // Same shape with truncation on: the checkpoint removes the dead
  // segments themselves, and recovery scans the short chain.
  MemEnv env;
  DatabaseOptions opts = SmallSegmentOptions();
  {
    std::unique_ptr<Database> db;
    ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
    const std::string value(100, 'v');
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db->Put(KeyOf(i), value).ok());
    }
    ASSERT_GE(db->log_manager()->segment_count(), 10u);
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_LE(db->log_manager()->segment_count(), 3u)
        << "checkpoint truncation left dead segments behind";
    EXPECT_GT(db->log_manager()->segments_truncated(), 0u);
    EXPECT_GT(db->log_manager()->LowestLsn(), 1u);
  }
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
  EXPECT_LE(db->recovery_result().segments_scanned, 3u);
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(db->Scan(Slice(), Slice(),
                       [&](const Slice& k, const Slice& v) {
                         got.emplace_back(k.ToString(), v.ToString());
                         return true;
                       })
                  .ok());
  EXPECT_EQ(got.size(), 300u);
}

TEST(ParallelRedoTest, ForensicsFieldsAreConsistent) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  DatabaseOptions build = SmallSegmentOptions();
  BuildCrashedImage(&env, build, 300);

  // Tear the tail segment too, so the torn-tail forensics have something
  // to report.
  {
    LogManager probe(&env, "soreorg.wal", LogManagerOptions{2048, 2});
    ASSERT_TRUE(probe.Open().ok());
    std::unique_ptr<File> f;
    ASSERT_TRUE(env.NewFile(probe.tail_segment_name(), &f).ok());
    ASSERT_TRUE(f->Append("garbage-torn-tail").ok());
  }

  DatabaseOptions opts = build;
  opts.redo_threads = 4;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
  const RecoveryResult& rr = db->recovery_result();
  EXPECT_TRUE(rr.tail_segment_torn);
  EXPECT_GT(rr.wal_bytes_dropped, 0u);
  EXPECT_GT(rr.segments_scanned, 0u);
  EXPECT_GE(rr.redo_threads_used, 1);
  ASSERT_EQ(rr.redo_pages_per_thread.size(),
            static_cast<size_t>(rr.redo_threads_used));
  ASSERT_EQ(rr.redo_records_per_thread.size(),
            static_cast<size_t>(rr.redo_threads_used));
  uint64_t sum = 0;
  for (uint64_t n : rr.redo_records_per_thread) sum += n;
  EXPECT_EQ(sum, rr.records_redone)
      << "per-thread record counts must add up to the total";
  ASSERT_TRUE(db->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
