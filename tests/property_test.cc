// Property-based sweeps (parameterized): invariants that must hold across
// the whole configuration space — sparsity levels, fill targets, side
// pointer modes, free-space policies.

#include <map>

#include "tests/test_util.h"

namespace soreorg {
namespace {

// ---------------------------------------------------------------------------
// Invariant 1: reorganization at any sparsity preserves exactly the record
// set and raises fill.
// ---------------------------------------------------------------------------

class SparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SparsitySweep, ReorganizePreservesRecordsAndRaisesFill) {
  double delete_frac = GetParam();
  MemEnv env;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, DatabaseOptions(), &db).ok());
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db.get(), 2500, 64, 0.95, delete_frac, 10,
                                 99, &survivors)
                  .ok());
  BTreeStats before;
  ASSERT_TRUE(db->tree()->ComputeStats(&before).ok());

  ASSERT_TRUE(db->Reorganize().ok());

  BTreeStats after;
  ASSERT_TRUE(db->tree()->ComputeStats(&after).ok());
  EXPECT_EQ(after.records, survivors.size());
  if (delete_frac >= 0.4) {
    EXPECT_GT(after.avg_leaf_fill, before.avg_leaf_fill);
    EXPECT_LT(after.leaf_pages, before.leaf_pages);
  }
  EXPECT_TRUE(db->tree()->CheckConsistency().ok());
  for (size_t i = 0; i < survivors.size(); i += 13) {
    std::string v;
    EXPECT_TRUE(db->Get(EncodeU64Key(survivors[i]), &v).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Sparsity, SparsitySweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.9));

// ---------------------------------------------------------------------------
// Invariant 2: every (side-pointer mode x free-space policy) combination
// reorganizes correctly.
// ---------------------------------------------------------------------------

struct ConfigCase {
  SidePointerMode side;
  FreeSpacePolicy policy;
};

class ConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigSweep, ReorganizeUnderConfig) {
  const ConfigCase& c = GetParam();
  MemEnv env;
  DatabaseOptions opts;
  opts.tree.side_pointers = c.side;
  opts.reorg.compactor.free_space_policy = c.policy;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(
      SparsifyByDeletion(db.get(), 2000, 64, 0.95, 0.65, 10, 5, &survivors)
          .ok());
  ASSERT_TRUE(db->Reorganize().ok());
  EXPECT_TRUE(db->tree()->CheckConsistency().ok());
  uint64_t n = 0;
  db->Scan(Slice(), Slice(), [&n](const Slice&, const Slice&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, survivors.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSweep,
    ::testing::Values(
        ConfigCase{SidePointerMode::kNone, FreeSpacePolicy::kPaperHeuristic},
        ConfigCase{SidePointerMode::kOneWay,
                   FreeSpacePolicy::kPaperHeuristic},
        ConfigCase{SidePointerMode::kTwoWay,
                   FreeSpacePolicy::kPaperHeuristic},
        ConfigCase{SidePointerMode::kTwoWay,
                   FreeSpacePolicy::kFirstFitAnywhere},
        ConfigCase{SidePointerMode::kTwoWay, FreeSpacePolicy::kNone}));

// ---------------------------------------------------------------------------
// Invariant 3: target fill factors are honoured across f2 values.
// ---------------------------------------------------------------------------

class FillSweep : public ::testing::TestWithParam<double> {};

TEST_P(FillSweep, CompactionApproachesTargetFill) {
  double f2 = GetParam();
  MemEnv env;
  DatabaseOptions opts;
  opts.reorg.compactor.target_fill = f2;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, opts, &db).ok());
  ASSERT_TRUE(LoadSparseTree(db.get(), 4000, 64, 0.3).ok());

  ASSERT_TRUE(db->reorganizer()->RunLeafPass().ok());
  BTreeStats st;
  ASSERT_TRUE(db->tree()->ComputeStats(&st).ok());
  EXPECT_LE(st.avg_leaf_fill, f2 + 0.13);
  EXPECT_GE(st.avg_leaf_fill, f2 - 0.25);
  EXPECT_TRUE(db->tree()->CheckConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Fill, FillSweep,
                         ::testing::Values(0.5, 0.7, 0.9));

// ---------------------------------------------------------------------------
// Invariant 4: random operation sequences against a std::map model.
// ---------------------------------------------------------------------------

class ModelSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelSweep, RandomOpsMatchModelWithPeriodicReorg) {
  uint64_t seed = GetParam();
  MemEnv env;
  std::unique_ptr<Database> db;
  ASSERT_TRUE(Database::Open(&env, DatabaseOptions(), &db).ok());
  Random rng(seed);
  std::map<uint64_t, std::string> model;

  for (int step = 0; step < 4000; ++step) {
    uint64_t k = rng.Uniform(5000);
    int op = static_cast<int>(rng.Uniform(10));
    if (op < 5) {  // insert
      std::string v = "v" + std::to_string(k) + "-" + std::to_string(step);
      Status s = db->Put(EncodeU64Key(k), v);
      if (model.count(k)) {
        EXPECT_TRUE(s.IsInvalidArgument());
      } else {
        ASSERT_TRUE(s.ok());
        model[k] = v;
      }
    } else if (op < 8) {  // delete
      Status s = db->Delete(EncodeU64Key(k));
      if (model.count(k)) {
        ASSERT_TRUE(s.ok());
        model.erase(k);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {  // read
      std::string v;
      Status s = db->Get(EncodeU64Key(k), &v);
      auto it = model.find(k);
      if (it != model.end()) {
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(v, it->second);
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    }
    if (step == 2000) {
      ASSERT_TRUE(db->Reorganize().ok());
      ASSERT_TRUE(db->tree()->CheckConsistency().ok());
    }
  }
  // Final full comparison via scan.
  auto it = model.begin();
  uint64_t scanned = 0;
  ASSERT_TRUE(db->Scan(Slice(), Slice(),
                       [&](const Slice& k, const Slice& v) {
                         EXPECT_NE(it, model.end());
                         if (it == model.end()) return false;
                         EXPECT_EQ(DecodeU64Key(k), it->first);
                         EXPECT_EQ(v.ToString(), it->second);
                         ++it;
                         ++scanned;
                         return true;
                       })
                  .ok());
  EXPECT_EQ(scanned, model.size());
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace soreorg
