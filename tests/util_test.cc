#include <gtest/gtest.h>

#include "src/util/coding.h"
#include "src/util/crc32c.h"
#include "src/util/random.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace soreorg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "NotFound: missing");

  EXPECT_TRUE(Status::Backoff().IsBackoff());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Crashed().IsCrashed());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("").compare(Slice("a")), 0);
  EXPECT_TRUE(Slice("abc").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("abc").starts_with(Slice("bc")));
}

TEST(SliceTest, EmptyIsMinusInfinity) {
  // The tree uses the empty slice as -infinity separator; it must compare
  // below every non-empty key.
  EXPECT_LT(Slice("").compare(Slice(std::string(1, '\0'))), 0);
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xbeef);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint16_t v16;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed16(&in, &v16));
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v16, 0xbeef);
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::string buf;
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 32,
                     ~0ull}) {
    PutVarint64(&buf, v);
  }
  Slice in(buf);
  for (uint64_t want : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 32,
                        ~0ull}) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, want);
  }
}

TEST(CodingTest, VarintTruncated) {
  std::string buf;
  PutVarint32(&buf, 1u << 30);
  Slice in(buf.data(), buf.size() - 1);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, Slice("hello"));
  PutLengthPrefixedSlice(&buf, Slice(""));
  Slice in(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  EXPECT_EQ(a, Slice("hello"));
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, U64KeyOrderMatchesNumericOrder) {
  std::string prev = EncodeU64Key(0);
  for (uint64_t v : {1ull, 2ull, 255ull, 256ull, 65535ull, 1ull << 31,
                     (1ull << 63) + 5}) {
    std::string cur = EncodeU64Key(v);
    EXPECT_LT(Slice(prev).compare(cur), 0) << v;
    EXPECT_EQ(DecodeU64Key(cur), v);
    prev = cur;
  }
}

TEST(Crc32cTest, KnownProperties) {
  const char* data = "hello world";
  uint32_t c1 = crc32c::Value(data, 11);
  uint32_t c2 = crc32c::Value(data, 11);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, crc32c::Value(data, 10));
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(c1)), c1);
  EXPECT_NE(crc32c::Mask(c1), c1);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const char* data = "hello world";
  uint32_t whole = crc32c::Value(data, 11);
  uint32_t split = crc32c::Extend(crc32c::Value(data, 5), data + 5, 6);
  EXPECT_EQ(whole, split);
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(17), b(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Random r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    uint64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

}  // namespace
}  // namespace soreorg
