// Reorganization-under-load across partitions: one partition runs the full
// three passes — with a forced step-aside window in the switch — while the
// executor keeps serving Gets on every partition. Reorganizing one partition
// must not touch the others' trees, and the usual tier-1 invariants hold on
// all of them afterwards.

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/db/partitioned_db.h"
#include "src/storage/env.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace soreorg {
namespace {

std::string Val(uint64_t i) { return "value-" + std::to_string(i * 3 + 1); }

TEST(PartitionReorgTest, GetsServedOnAllPartitionsWhilePartitionZeroReorgs) {
  MemEnv env;
  PartitionedDBOptions opts;
  opts.partitions = 4;
  opts.base.buffer_pool_pages = 512;
  opts.executor.workers = 2;
  // Every Get must actually flow through the worker lanes here — the inline
  // fast path would serve idle-lane ops on the reader threads themselves.
  opts.executor.inline_when_idle = false;
  // Force a deterministic step-aside round in partition 0's switch so the
  // release-reacquire window is part of the schedule, not a lucky race.
  opts.base.reorg.switcher.force_step_asides = 1;
  opts.base.reorg.switcher.step_aside_wait_ms = 25;
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, opts, &pdb).ok());

  // Sparse load so pass 1 has real compaction work in every partition.
  std::vector<std::pair<std::string, std::string>> records;
  std::map<std::string, std::string> shadow;
  for (uint64_t i = 0; i < 6000; ++i) {
    std::string k = EncodeU64Key(i * 10);
    records.emplace_back(k, Val(i));
    shadow[k] = Val(i);
  }
  ASSERT_TRUE(pdb->BulkLoad(records, /*leaf_fill=*/0.5).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(900 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t i = rng.Uniform(6000);
        std::string key = EncodeU64Key(i * 10);
        std::string v;
        Status s = pdb->Get(key, &v);
        if (!s.ok() || v != Val(i)) failures.fetch_add(1);
        gets.fetch_add(1);
      }
    });
  }

  Status reorg = pdb->ReorganizePartition(0);
  stop.store(true);
  for (auto& r : readers) r.join();
  ASSERT_TRUE(reorg.ok()) << reorg.ToString();

  EXPECT_GT(gets.load(), 0u);
  EXPECT_EQ(0u, failures.load())
      << "every Get during the reorg must return the correct value";

  // The forced step-aside actually happened on partition 0's switch.
  EXPECT_GE(pdb->partition(0)->reorganizer()->switch_stats().step_asides, 1u);
  EXPECT_GT(pdb->partition(0)->reorganizer()->stats().units, 0u);

  // No cross-partition interference: the other reorganizers never ran a unit.
  for (size_t p = 1; p < 4; ++p) {
    EXPECT_EQ(0u, pdb->partition(p)->reorganizer()->stats().units)
        << "partition " << p << " was touched by partition 0's reorg";
  }

  // Tier-1 invariants on every partition, reorganized or not.
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(pdb->partition(p)->tree()->CheckConsistency().ok())
        << "partition " << p;
  }

  // The merged view still equals the shadow map record-for-record.
  auto it = shadow.begin();
  uint64_t seen = 0;
  ASSERT_TRUE(pdb->Scan(Slice(), Slice(),
                        [&](const Slice& k, const Slice& v) {
                          EXPECT_NE(shadow.end(), it);
                          EXPECT_EQ(it->first, k.ToString());
                          EXPECT_EQ(it->second, v.ToString());
                          ++it;
                          ++seen;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(shadow.size(), seen);

  // The serving path itself stayed clean: no deadline or shutdown failures.
  ExecutorStats ex = pdb->stats().executor;
  EXPECT_EQ(0u, ex.timed_out_queue_full);
  EXPECT_EQ(0u, ex.timed_out_unstarted);
  EXPECT_EQ(0u, ex.aborted_at_shutdown);
}

// Writes routed to a *different* partition proceed concurrently with the
// reorg and land durably; partition 0's switch never blocks them.
TEST(PartitionReorgTest, WritesToOtherPartitionsProceedDuringReorg) {
  MemEnv env;
  PartitionedDBOptions opts;
  opts.partitions = 4;
  opts.base.buffer_pool_pages = 512;
  opts.executor.workers = 2;
  // Every Get must actually flow through the worker lanes here — the inline
  // fast path would serve idle-lane ops on the reader threads themselves.
  opts.executor.inline_when_idle = false;
  opts.base.reorg.switcher.force_step_asides = 1;
  opts.base.reorg.switcher.step_aside_wait_ms = 25;
  std::unique_ptr<PartitionedDatabase> pdb;
  ASSERT_TRUE(PartitionedDatabase::Open(&env, opts, &pdb).ok());

  std::vector<std::pair<std::string, std::string>> records;
  for (uint64_t i = 0; i < 6000; ++i) {
    records.emplace_back(EncodeU64Key(i * 10), Val(i));
  }
  ASSERT_TRUE(pdb->BulkLoad(records, /*leaf_fill=*/0.5).ok());

  // Fresh keys (odd suffixes, disjoint from the load) that do NOT route to
  // partition 0.
  std::vector<std::string> fresh;
  for (uint64_t i = 0; fresh.size() < 300; ++i) {
    std::string k = EncodeU64Key(i * 10 + 7);
    if (pdb->PartitionOf(k) != 0) fresh.push_back(k);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> puts_done{0};
  std::atomic<uint64_t> put_failures{0};
  std::thread writer([&]() {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed) && i < fresh.size()) {
      if (!pdb->Put(fresh[i], "fresh").ok()) put_failures.fetch_add(1);
      puts_done.fetch_add(1);
      ++i;
    }
  });

  ASSERT_TRUE(pdb->ReorganizePartition(0).ok());
  stop.store(true);
  writer.join();

  EXPECT_GT(puts_done.load(), 0u);
  EXPECT_EQ(0u, put_failures.load());
  EXPECT_GE(pdb->partition(0)->reorganizer()->switch_stats().step_asides, 1u);

  // Every write that completed is durable and readable.
  for (uint64_t i = 0; i < puts_done.load(); ++i) {
    std::string v;
    ASSERT_TRUE(pdb->Get(fresh[i], &v).ok()) << "lost write " << i;
    EXPECT_EQ("fresh", v);
  }
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(pdb->partition(p)->tree()->CheckConsistency().ok());
  }
}

}  // namespace
}  // namespace soreorg
