// Executor: bounded MPSC admission, start-deadlines surfacing TimedOut, and
// the shutdown drain that fails queued-but-unstarted ops with Aborted.
//
// The deterministic lever in every test is a gate task: worker 0 parks on a
// condition variable we control, so "queued behind a busy worker" is a state
// the test constructs exactly, not a race it hopes for.

#include "src/db/executor.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace soreorg {
namespace {

/// A task the test can park the worker on, and release at will.
class Gate {
 public:
  Executor::Task BlockingTask() {
    return [this]() {
      std::unique_lock<std::mutex> lk(mu_);
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lk, [this]() { return released_; });
      return Status::OK();
    };
  }

  void AwaitEntered() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this]() { return entered_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(ExecutorTest, RunsTasksAndReturnsTheirStatus) {
  ExecutorOptions opts;
  opts.workers = 2;
  Executor ex(opts);
  EXPECT_EQ(2, ex.workers());

  EXPECT_TRUE(ex.Execute(0, []() { return Status::OK(); }).ok());
  Status s = ex.Execute(1, []() { return Status::NotFound("gone"); });
  EXPECT_TRUE(s.IsNotFound());

  ExecutorStats st = ex.stats();
  EXPECT_EQ(2u, st.submitted);
  EXPECT_EQ(2u, st.executed);
}

TEST(ExecutorTest, SameWorkerIsOneThread) {
  ExecutorOptions opts;
  opts.workers = 2;
  opts.inline_when_idle = false;  // pin the strict worker-thread mode
  Executor ex(opts);
  std::thread::id first{};
  for (int i = 0; i < 8; ++i) {
    std::thread::id tid;
    ASSERT_TRUE(
        ex.Execute(0, [&tid]() {
            tid = std::this_thread::get_id();
            return Status::OK();
          }).ok());
    if (i == 0) {
      first = tid;
    } else {
      EXPECT_EQ(first, tid) << "worker 0 must be a single pinned thread";
    }
  }
}

// The inline fast path: an idle lane runs Execute() on the calling thread;
// any backlog (an op in flight on the lane) sends it through the worker.
// Lane exclusivity holds either way.
TEST(ExecutorTest, InlineWhenIdleRunsOnCallerUntilLaneIsBusy) {
  ExecutorOptions opts;
  opts.workers = 1;
  Executor ex(opts);  // inline_when_idle defaults on

  // Idle lane: the task runs right here.
  std::thread::id inline_tid;
  ASSERT_TRUE(ex.Execute(0, [&inline_tid]() {
                  inline_tid = std::this_thread::get_id();
                  return Status::OK();
                }).ok());
  EXPECT_EQ(std::this_thread::get_id(), inline_tid);
  EXPECT_EQ(1u, ex.stats().submitted);
  EXPECT_EQ(1u, ex.stats().executed);

  // Busy lane (gate op in flight): Execute must take the queue and run on
  // the worker thread, strictly after the in-flight op finishes.
  Gate gate;
  std::thread::id worker_tid;
  ex.Submit(0, [&gate, &worker_tid]() {
    worker_tid = std::this_thread::get_id();
    return gate.BlockingTask()();
  }, [](Status) {});
  gate.AwaitEntered();

  std::atomic<bool> done{false};
  std::thread::id queued_tid;
  std::thread caller([&]() {
    ASSERT_TRUE(ex.Execute(0, [&queued_tid]() {
                    queued_tid = std::this_thread::get_id();
                    return Status::OK();
                  }).ok());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load()) << "op must wait behind the in-flight gate";
  gate.Release();
  caller.join();
  EXPECT_EQ(worker_tid, queued_tid)
      << "backlogged ops run on the pinned worker, not inline";
  ex.Shutdown();
}

// Acceptance pin: a saturated bounded queue + a deadline returns TimedOut —
// the request neither queues unboundedly nor hangs.
TEST(ExecutorTest, SaturatedQueueDeadlineReturnsTimedOut) {
  ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  Executor ex(opts);

  Gate gate;
  std::atomic<int> done_count{0};
  ex.Submit(0, gate.BlockingTask(),
            [&](Status s) { (void)s; done_count.fetch_add(1); });
  gate.AwaitEntered();  // worker parked; queue now empty
  for (int i = 0; i < 2; ++i) {  // fill the queue to its bound
    ex.Submit(0, []() { return Status::OK(); },
              [&](Status s) { (void)s; done_count.fetch_add(1); });
  }

  auto t0 = std::chrono::steady_clock::now();
  Status s = ex.Execute(0, []() { return Status::OK(); },
                        /*deadline_ms=*/50);
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(s.IsTimedOut()) << s.ToString();
  EXPECT_GE(waited.count(), 40);
  EXPECT_LT(waited.count(), 5000) << "deadline must not hang";
  EXPECT_EQ(1u, ex.stats().timed_out_queue_full);

  gate.Release();
  ex.Shutdown();
  EXPECT_EQ(3, done_count.load());  // gate + the two fillers all completed
}

// An admitted op whose deadline expires while still queued fails TimedOut
// without its task ever running.
TEST(ExecutorTest, AdmittedOpExpiredInQueueDoesNotRun) {
  ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  Executor ex(opts);

  Gate gate;
  ex.Submit(0, gate.BlockingTask(), [](Status) {});
  gate.AwaitEntered();

  std::atomic<bool> ran{false};
  std::atomic<bool> completed{false};
  Status result;
  ex.Submit(
      0,
      [&ran]() {
        ran.store(true);
        return Status::OK();
      },
      [&](Status s) {
        result = std::move(s);
        completed.store(true);
      },
      /*deadline_ms=*/30);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  gate.Release();
  while (!completed.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(result.IsTimedOut()) << result.ToString();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(1u, ex.stats().timed_out_unstarted);
  ex.Shutdown();
}

// Satellite pin: the shutdown drain fails every queued-but-unstarted op with
// Aborted — completions fire for all of them, nothing is dropped silently.
TEST(ExecutorTest, ShutdownAbortsQueuedUnstartedOps) {
  ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 16;
  Executor ex(opts);

  Gate gate;
  std::atomic<bool> gate_completed{false};
  Status gate_status = Status::Corruption("completion never ran");
  ex.Submit(0, gate.BlockingTask(), [&](Status s) {
    gate_status = std::move(s);
    gate_completed.store(true);
  });
  gate.AwaitEntered();

  constexpr int kQueued = 5;
  std::atomic<int> aborted{0}, other{0};
  std::atomic<bool> any_ran{false};
  for (int i = 0; i < kQueued; ++i) {
    ex.Submit(
        0,
        [&any_ran]() {
          any_ran.store(true);
          return Status::OK();
        },
        [&](Status s) {
          if (s.IsAborted()) {
            aborted.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        });
  }

  // Begin the shutdown from a helper thread (Shutdown joins, and the worker
  // is still parked on the gate); release the gate only after the drain flag
  // is visibly set, so the queued ops are deterministically unstarted at
  // shutdown time.
  std::thread closer([&ex]() { ex.Shutdown(); });
  while (!ex.shutting_down()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.Release();
  closer.join();

  EXPECT_TRUE(gate_completed.load());
  EXPECT_TRUE(gate_status.ok()) << "in-flight task runs to completion";
  EXPECT_EQ(kQueued, aborted.load());
  EXPECT_EQ(0, other.load());
  EXPECT_FALSE(any_ran.load());
  EXPECT_EQ(static_cast<uint64_t>(kQueued),
            ex.stats().aborted_at_shutdown);
}

TEST(ExecutorTest, SubmitAfterShutdownFailsAborted) {
  ExecutorOptions opts;
  opts.workers = 1;
  Executor ex(opts);
  ex.Shutdown();
  Status s = ex.Execute(0, []() { return Status::OK(); });
  EXPECT_TRUE(s.IsAborted());
}

// With no deadline a producer blocked on a full queue is backpressure, not
// failure: it completes once the worker drains.
TEST(ExecutorTest, NoDeadlineBlocksUntilSpaceThenSucceeds) {
  ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  Executor ex(opts);

  Gate gate;
  ex.Submit(0, gate.BlockingTask(), [](Status) {});
  gate.AwaitEntered();
  ex.Submit(0, []() { return Status::OK(); }, [](Status) {});  // fills slot

  std::atomic<bool> admitted_done{false};
  std::thread producer([&]() {
    Status s = ex.Execute(0, []() { return Status::OK(); });
    EXPECT_TRUE(s.ok()) << s.ToString();
    admitted_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(admitted_done.load()) << "producer must be blocked, not failed";
  gate.Release();
  producer.join();
  EXPECT_TRUE(admitted_done.load());
  ex.Shutdown();
  EXPECT_EQ(0u, ex.stats().timed_out_queue_full);
}

// Concurrent producers under churn: every submission's completion fires
// exactly once, with OK or Aborted only (smoke for the MPSC path; runs under
// TSan in the tsan preset).
TEST(ExecutorTest, ConcurrentProducersEveryCompletionFires) {
  ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 4;
  Executor ex(opts);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> completions{0};
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        ex.Submit(
            t + i,
            [&executed]() {
              executed.fetch_add(1);
              return Status::OK();
            },
            [&completions](Status s) {
              ASSERT_TRUE(s.ok() || s.IsAborted()) << s.ToString();
              completions.fetch_add(1);
            });
      }
    });
  }
  for (auto& p : producers) p.join();
  ex.Shutdown();
  EXPECT_EQ(kThreads * kOpsPerThread, completions.load());
  ExecutorStats st = ex.stats();
  EXPECT_EQ(static_cast<uint64_t>(kThreads * kOpsPerThread), st.submitted);
  EXPECT_EQ(st.submitted, st.executed + st.aborted_at_shutdown);
  EXPECT_LE(st.max_queue_depth, 4u);
}

}  // namespace
}  // namespace soreorg
