#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/storage/env.h"
#include "src/storage/fault_env.h"
#include "src/txn/txn_manager.h"

namespace soreorg {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    log_ = std::make_unique<LogManager>(env_.get(), "wal");
    ASSERT_TRUE(log_->Open().ok());
    mgr_ = std::make_unique<TransactionManager>(log_.get(), &locks_);
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<LogManager> log_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> mgr_;
};

TEST_F(TxnTest, BeginAssignsIncreasingIds) {
  Transaction* a = mgr_->Begin();
  Transaction* b = mgr_->Begin();
  EXPECT_GE(a->id(), kFirstUserTxnId);
  EXPECT_GT(b->id(), a->id());
  mgr_->Forget(a);
  mgr_->Forget(b);
}

TEST_F(TxnTest, CommitWritesFlushedCommitRecordAndReleasesLocks) {
  Transaction* txn = mgr_->Begin();
  ASSERT_TRUE(locks_.Lock(txn->id(), PageLock(1), LockMode::kX).ok());
  TxnId id = txn->id();
  ASSERT_TRUE(mgr_->Commit(txn).ok());
  EXPECT_EQ(locks_.HeldCount(id), 0u);

  std::vector<LogRecord> recs;
  ASSERT_TRUE(log_->ReadAll(&recs).ok());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, LogType::kCommit);
  EXPECT_EQ(recs[0].txn_id, id);
  EXPECT_LT(recs[0].lsn, log_->FlushedLsn());  // durable at commit
}

// Concurrent commits ride the WAL's group-commit path: every commit record
// is durable at return, all locks are released, and N commits cost fewer
// fsyncs than the one-per-commit a serial run pays.
TEST_F(TxnTest, ConcurrentCommitsAreDurableAndShareFsyncs) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  // Open() itself fsyncs (segment-1 header); count only commit-path syncs.
  const uint64_t base_syncs = env_->sync_count();
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Transaction* txn = mgr_->Begin();
        ASSERT_TRUE(
            locks_
                .Lock(txn->id(),
                      PageLock(static_cast<uint32_t>(t * kPerThread + i)),
                      LockMode::kX)
                .ok());
        TxnId id = txn->id();
        ASSERT_TRUE(mgr_->Commit(txn).ok());
        EXPECT_EQ(locks_.HeldCount(id), 0u);
        ++committed;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(committed.load(), kThreads * kPerThread);

  // Every commit record survived and was durable when Commit returned.
  std::vector<LogRecord> recs;
  ASSERT_TRUE(log_->ReadAll(&recs).ok());
  ASSERT_EQ(recs.size(), static_cast<size_t>(kThreads * kPerThread));
  for (const auto& r : recs) {
    EXPECT_EQ(r.type, LogType::kCommit);
    EXPECT_LT(r.lsn, log_->FlushedLsn());
  }
  // Group commit: at most one fsync per commit, and the lock table ends
  // empty (the queue-leak fix).
  EXPECT_LE(env_->sync_count() - base_syncs,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(locks_.QueueCount(), 0u);
}

TEST_F(TxnTest, AbortWalksPrevLsnChainThroughApplier) {
  std::vector<std::string> undone;
  mgr_->set_undo_applier(
      [&](const LogRecord& rec, Transaction*) -> Status {
        undone.push_back(rec.key);
        return Status::OK();
      });

  Transaction* txn = mgr_->Begin();
  for (int i = 0; i < 3; ++i) {
    LogRecord rec;
    rec.type = LogType::kInsert;
    rec.txn_id = txn->id();
    rec.prev_lsn = txn->last_lsn();
    rec.key = "k" + std::to_string(i);
    ASSERT_TRUE(log_->Append(&rec).ok());
    txn->set_last_lsn(rec.lsn);
  }
  ASSERT_TRUE(mgr_->Abort(txn).ok());
  // Undo runs newest-first.
  ASSERT_EQ(undone.size(), 3u);
  EXPECT_EQ(undone[0], "k2");
  EXPECT_EQ(undone[1], "k1");
  EXPECT_EQ(undone[2], "k0");
  EXPECT_EQ(mgr_->aborts(), 1u);
}

TEST_F(TxnTest, AbortSkipsClrChains) {
  std::vector<std::string> undone;
  mgr_->set_undo_applier(
      [&](const LogRecord& rec, Transaction*) -> Status {
        undone.push_back(rec.key);
        return Status::OK();
      });
  Transaction* txn = mgr_->Begin();
  LogRecord a;
  a.type = LogType::kInsert;
  a.txn_id = txn->id();
  a.key = "a";
  ASSERT_TRUE(log_->Append(&a).ok());
  LogRecord b;
  b.type = LogType::kInsert;
  b.txn_id = txn->id();
  b.prev_lsn = a.lsn;
  b.key = "b";
  ASSERT_TRUE(log_->Append(&b).ok());
  // A CLR that says "b already undone; continue from a's prev (= none)".
  LogRecord clr;
  clr.type = LogType::kClr;
  clr.txn_id = txn->id();
  clr.prev_lsn = b.lsn;
  clr.lsn2 = a.lsn;  // undo-next: a
  ASSERT_TRUE(log_->Append(&clr).ok());
  txn->set_last_lsn(clr.lsn);

  ASSERT_TRUE(mgr_->Abort(txn).ok());
  ASSERT_EQ(undone.size(), 1u);  // only "a" — the CLR skipped "b"
  EXPECT_EQ(undone[0], "a");
}

// A transaction whose COMMIT (or ABORT) record cannot reach the WAL — the
// torture harness's simulated crash — must still vacate the lock table and
// the active set. Leaked locks from such a zombie have no waits-for cycle,
// so the deadlock detector never frees them and the next request for the
// same lock waits forever (this hung the step-aside crash-torture sweep).
TEST(TxnFaultTest, FailedCommitAndAbortStillReleaseLocks) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());
  LockManager locks;
  TransactionManager mgr(&log, &locks);

  Transaction* txn = mgr.Begin();
  TxnId id = txn->id();
  ASSERT_TRUE(locks.Lock(id, PageLock(1), LockMode::kX).ok());
  env.FailOpAfter(1, "", "");  // next WAL touch crashes, sticky
  ASSERT_FALSE(mgr.Commit(txn).ok());
  EXPECT_EQ(locks.HeldCount(id), 0u);
  EXPECT_TRUE(mgr.ActiveSnapshot().empty());

  env.Disarm();
  Transaction* txn2 = mgr.Begin();
  TxnId id2 = txn2->id();
  ASSERT_TRUE(locks.Lock(id2, PageLock(1), LockMode::kX).ok());
  env.FailOpAfter(1, "", "");
  ASSERT_FALSE(mgr.Abort(txn2).ok());
  EXPECT_EQ(locks.HeldCount(id2), 0u);
  EXPECT_TRUE(mgr.ActiveSnapshot().empty());

  env.Disarm();
  Transaction* txn3 = mgr.Begin();
  TxnId id3 = txn3->id();
  EXPECT_TRUE(locks.Lock(id3, PageLock(1), LockMode::kX).ok());  // reacquirable
  mgr.Forget(txn3);  // destroys txn3
  locks.ReleaseAll(id3);
}

TEST_F(TxnTest, ActiveSnapshotTracksLiveTransactions) {
  Transaction* a = mgr_->Begin();
  Transaction* b = mgr_->Begin();
  a->set_last_lsn(11);
  b->set_last_lsn(22);
  auto snap = mgr_->ActiveSnapshot();
  EXPECT_EQ(snap.size(), 2u);
  ASSERT_TRUE(mgr_->Commit(a).ok());
  snap = mgr_->ActiveSnapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, b->id());
  EXPECT_EQ(snap[0].second, 22u);
  ASSERT_TRUE(mgr_->Commit(b).ok());
  EXPECT_TRUE(mgr_->ActiveSnapshot().empty());
}

TEST_F(TxnTest, RestoreNextTxnIdOnlyMovesForward) {
  mgr_->RestoreNextTxnId(500);
  Transaction* a = mgr_->Begin();
  EXPECT_GE(a->id(), 500u);
  mgr_->RestoreNextTxnId(10);  // must not go backwards
  Transaction* b = mgr_->Begin();
  EXPECT_GT(b->id(), a->id());
  mgr_->Forget(a);
  mgr_->Forget(b);
}

}  // namespace
}  // namespace soreorg
