// Read-path tests: the latch-free optimistic path must be invisible in
// results (identical answers to the S-lock protocol, against a shadow map)
// and invisible in lock traces when switched off — optimistic_reads=false
// takes exactly the Table-1 locks the pre-optimistic reader took.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/btree/iterator.h"
#include "src/db/database.h"
#include "src/sim/workload.h"
#include "src/txn/lock_manager.h"
#include "src/util/coding.h"
#include "src/util/random.h"

namespace soreorg {
namespace {

const char* EventName(LockEvent e) {
  switch (e) {
    case LockEvent::kRequest: return "request";
    case LockEvent::kWait: return "wait";
    case LockEvent::kGranted: return "granted";
    case LockEvent::kInstantGranted: return "instant-granted";
    case LockEvent::kBusy: return "busy";
    case LockEvent::kBackoff: return "backoff";
    case LockEvent::kDeadlock: return "deadlock";
    case LockEvent::kTimeout: return "timeout";
    case LockEvent::kUnlock: return "unlock";
    case LockEvent::kReleaseAll: return "release-all";
  }
  return "?";
}

std::string EventString(LockEvent e, const LockName& name, LockMode mode) {
  return std::string(EventName(e)) + ":" +
         std::to_string(static_cast<int>(name.space)) + "/" +
         std::to_string(name.id) + ":" + LockModeName(mode);
}

struct Fixture {
  MemEnv env;
  std::unique_ptr<Database> db;
  std::map<std::string, std::string> shadow;

  explicit Fixture(bool optimistic, uint64_t n = 500) {
    DatabaseOptions options;
    options.optimistic_reads = optimistic;
    EXPECT_TRUE(Database::Open(&env, options, &db).ok());
    Random rng(99);
    for (uint64_t i = 0; i < n; ++i) {
      std::string key = EncodeU64Key(i * 10);
      std::string value = "v" + std::to_string(rng.Next());
      EXPECT_TRUE(db->Put(key, value).ok());
      shadow[key] = value;
    }
    // A few deletes so missing keys exercise the not-found path.
    for (uint64_t i = 0; i < n; i += 7) {
      std::string key = EncodeU64Key(i * 10);
      EXPECT_TRUE(db->Delete(key).ok());
      shadow.erase(key);
    }
  }
};

// Every Get — present, deleted, and never-inserted keys — answers exactly
// what the shadow map says, and the optimistic path actually served them.
TEST(ReadPathTest, OptimisticGetsMatchShadowMap) {
  Fixture fx(/*optimistic=*/true);
  for (uint64_t i = 0; i < 520; ++i) {
    std::string key = EncodeU64Key(i * 10);
    std::string value;
    Status s = fx.db->Get(key, &value);
    auto it = fx.shadow.find(key);
    if (it != fx.shadow.end()) {
      ASSERT_TRUE(s.ok()) << s.ToString() << " key " << i;
      EXPECT_EQ(value, it->second) << "key " << i;
    } else {
      EXPECT_TRUE(s.IsNotFound()) << s.ToString() << " key " << i;
    }
  }
  ReadPathStats st = fx.db->tree()->read_path_stats();
  EXPECT_GT(st.optimistic_gets, 0u);
}

// Scans through the iterator (which uses the optimistic batch path) return
// the same records in the same order as the shadow map.
TEST(ReadPathTest, OptimisticScanMatchesShadowMap) {
  Fixture fx(/*optimistic=*/true);
  std::vector<std::pair<std::string, std::string>> seen;
  Status s = fx.db->Scan("", "", [&](const Slice& k, const Slice& v) {
    seen.emplace_back(k.ToString(), v.ToString());
    return true;
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(seen.size(), fx.shadow.size());
  auto it = fx.shadow.begin();
  for (size_t i = 0; i < seen.size(); ++i, ++it) {
    EXPECT_EQ(seen[i].first, it->first);
    EXPECT_EQ(seen[i].second, it->second);
  }
  ReadPathStats st = fx.db->tree()->read_path_stats();
  EXPECT_GT(st.optimistic_batches, 0u);
}

// Same answers with the path off; no optimistic read ever runs.
TEST(ReadPathTest, DisabledPathMatchesShadowMapAndStaysCold) {
  Fixture fx(/*optimistic=*/false);
  for (uint64_t i = 0; i < 520; ++i) {
    std::string key = EncodeU64Key(i * 10);
    std::string value;
    Status s = fx.db->Get(key, &value);
    auto it = fx.shadow.find(key);
    if (it != fx.shadow.end()) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(value, it->second);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << s.ToString();
    }
  }
  std::string value;
  (void)fx.db->Scan("", "", [](const Slice&, const Slice&) { return true; });
  ReadPathStats st = fx.db->tree()->read_path_stats();
  EXPECT_EQ(st.optimistic_gets, 0u);
  EXPECT_EQ(st.optimistic_batches, 0u);
  EXPECT_EQ(st.fallbacks, 0u);
}

// The trace property behind "off reproduces today's behaviour": a
// single-threaded Get sequence with optimistic_reads=false produces a
// deterministic lock-event trace (two identically built databases agree
// event for event), and that trace contains the Table-1 reader protocol —
// tree IS grants and page S grants. With the path on, the same sequence
// emits no lock events at all once the working set is resident.
TEST(ReadPathTest, DisabledTraceIsDeterministicAndOptimisticTraceIsEmpty) {
  auto run = [](bool optimistic) {
    Fixture fx(optimistic);
    // Warm everything (faults pages in, possibly taking locks) before the
    // recorded window.
    std::string value;
    for (uint64_t i = 0; i < 520; ++i) {
      (void)fx.db->Get(EncodeU64Key(i * 10), &value);
    }
    std::vector<std::string> trace;
    fx.db->lock_manager()->SetEventHook(
        [&trace](LockEvent e, TxnId, const LockName& name, LockMode mode) {
          trace.push_back(EventString(e, name, mode));
        });
    for (uint64_t i = 0; i < 520; ++i) {
      (void)fx.db->Get(EncodeU64Key(i * 10), &value);
    }
    fx.db->lock_manager()->SetEventHook(nullptr);
    return trace;
  };

  std::vector<std::string> off1 = run(false);
  std::vector<std::string> off2 = run(false);
  EXPECT_EQ(off1, off2);
  ASSERT_FALSE(off1.empty());
  bool saw_tree_is = false, saw_page_s = false;
  for (const std::string& e : off1) {
    if (e.starts_with("granted:0/") && e.ends_with(":IS")) saw_tree_is = true;
    if (e.starts_with("granted:1/") && e.ends_with(":S") &&
        !e.ends_with(":IS") && !e.ends_with(":RS")) {
      saw_page_s = true;
    }
  }
  EXPECT_TRUE(saw_tree_is);
  EXPECT_TRUE(saw_page_s);

  std::vector<std::string> on = run(true);
  EXPECT_TRUE(on.empty()) << "first stray event: " << on[0];
}

// PageSharedReadBlocked: the lock-free signal optimistic readers consult.
// Exactly the modes incompatible with S (X, IX, RX) mark a page; S, R and
// IS do not; every release path (Unlock, Downgrade, ReleaseAll) clears.
TEST(ReadPathTest, PageSharedReadBlockedFollowsHolders) {
  LockManager lm;
  constexpr TxnId kT1 = 71;
  const uint32_t pid = 5;

  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));

  ASSERT_TRUE(lm.Lock(kT1, PageLock(pid), LockMode::kS).ok());
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));
  ASSERT_TRUE(lm.Unlock(kT1, PageLock(pid)).ok());

  ASSERT_TRUE(lm.Lock(kT1, PageLock(pid), LockMode::kIS).ok());
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));
  ASSERT_TRUE(lm.Unlock(kT1, PageLock(pid)).ok());

  ASSERT_TRUE(lm.Lock(kReorgTxnId, PageLock(pid), LockMode::kR).ok());
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));
  lm.ReleaseAll(kReorgTxnId);

  ASSERT_TRUE(lm.Lock(kT1, PageLock(pid), LockMode::kX).ok());
  EXPECT_TRUE(lm.PageSharedReadBlocked(pid));
  ASSERT_TRUE(lm.Unlock(kT1, PageLock(pid)).ok());
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));

  ASSERT_TRUE(lm.Lock(kT1, PageLock(pid), LockMode::kIX).ok());
  EXPECT_TRUE(lm.PageSharedReadBlocked(pid));
  lm.ReleaseAll(kT1);
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));

  ASSERT_TRUE(lm.Lock(kReorgTxnId, PageLock(pid), LockMode::kRX).ok());
  EXPECT_TRUE(lm.PageSharedReadBlocked(pid));
  lm.ReleaseAll(kReorgTxnId);
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));

  // Conversion down: an X holder downgrading to S unmarks the page.
  ASSERT_TRUE(lm.Lock(kT1, PageLock(pid), LockMode::kX).ok());
  EXPECT_TRUE(lm.PageSharedReadBlocked(pid));
  ASSERT_TRUE(lm.Downgrade(kT1, PageLock(pid), LockMode::kS).ok());
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));
  lm.ReleaseAll(kT1);

  // Two marking holders (IX + IX are compatible): the mark clears only when
  // the last one goes.
  ASSERT_TRUE(lm.Lock(kT1, PageLock(pid), LockMode::kIX).ok());
  ASSERT_TRUE(lm.Lock(kT1 + 1, PageLock(pid), LockMode::kIX).ok());
  EXPECT_TRUE(lm.PageSharedReadBlocked(pid));
  lm.ReleaseAll(kT1);
  EXPECT_TRUE(lm.PageSharedReadBlocked(pid));
  lm.ReleaseAll(kT1 + 1);
  EXPECT_FALSE(lm.PageSharedReadBlocked(pid));
}

// While an updater holds its (uncommitted) X page locks, an optimistic
// reader must fall back rather than serve a dirty image. Single-threaded
// deterministic variant: mark the leaf the way an updater's X lock would,
// then confirm the Get still answers — through the fallback path.
TEST(ReadPathTest, MarkedLeafForcesFallback) {
  Fixture fx(/*optimistic=*/true);
  std::string value;
  // Warm so the descent would otherwise stay optimistic.
  ASSERT_TRUE(fx.db->Get(EncodeU64Key(10), &value).ok());
  ReadPathStats before = fx.db->tree()->read_path_stats();

  // Find the leaf holding key 10 and mark it via a real X page lock.
  BTreeIterator it(fx.db->tree(), nullptr);
  ASSERT_TRUE(it.Seek(EncodeU64Key(10)).ok());
  ASSERT_FALSE(it.leaf_trail().empty());
  PageId leaf = it.leaf_trail().front();
  constexpr TxnId kBlocker = 4242;
  ASSERT_TRUE(
      fx.db->lock_manager()->Lock(kBlocker, PageLock(leaf), LockMode::kX).ok());

  // The locked fallback path would wait forever behind the X lock, so probe
  // only the optimistic layer directly: every restart must refuse.
  BTree::OptimisticDescent d;
  EXPECT_FALSE(fx.db->tree()->OptimisticDescend(EncodeU64Key(10), &d));

  fx.db->lock_manager()->ReleaseAll(kBlocker);
  ASSERT_TRUE(fx.db->Get(EncodeU64Key(10), &value).ok());
  ReadPathStats after = fx.db->tree()->read_path_stats();
  EXPECT_GT(after.optimistic_gets, before.optimistic_gets);
}

}  // namespace
}  // namespace soreorg
