#include "tests/test_util.h"

namespace soreorg {
namespace {

TEST_F(DbFixture, PutGetDeleteAutoCommit) {
  ASSERT_TRUE(Put(1, "one").ok());
  ASSERT_TRUE(Put(2, "two").ok());
  std::string v;
  ASSERT_TRUE(Get(1, &v).ok());
  EXPECT_EQ(v, "one");
  ASSERT_TRUE(Del(1).ok());
  EXPECT_TRUE(Get(1, &v).IsNotFound());
  ASSERT_TRUE(Get(2, &v).ok());
}

TEST_F(DbFixture, ExplicitTransactionCommit) {
  Transaction* txn = db_->Begin();
  ASSERT_TRUE(db_->tree()->Insert(txn, EncodeU64Key(10), "ten").ok());
  ASSERT_TRUE(db_->tree()->Insert(txn, EncodeU64Key(11), "eleven").ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  EXPECT_EQ(CountRecords(), 2u);
}

TEST_F(DbFixture, ExplicitTransactionAbortRollsBack) {
  ASSERT_TRUE(Put(1, "keep").ok());
  Transaction* txn = db_->Begin();
  ASSERT_TRUE(db_->tree()->Insert(txn, EncodeU64Key(2), "x").ok());
  ASSERT_TRUE(db_->tree()->Delete(txn, EncodeU64Key(1)).ok());
  ASSERT_TRUE(db_->Abort(txn).ok());
  std::string v;
  ASSERT_TRUE(Get(1, &v).ok());
  EXPECT_EQ(v, "keep");
  EXPECT_TRUE(Get(2, &v).IsNotFound());
}

TEST_F(DbFixture, CommittedDataSurvivesCrash) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(HardCrashAndReopen().ok());
  for (int i = 0; i < 200; ++i) {
    std::string v;
    ASSERT_TRUE(Get(static_cast<uint64_t>(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(DbFixture, UncommittedTransactionRolledBackAtRecovery) {
  ASSERT_TRUE(Put(1, "committed").ok());
  Transaction* txn = db_->Begin();
  ASSERT_TRUE(db_->tree()->Insert(txn, EncodeU64Key(2), "loser").ok());
  db_->log_manager()->Flush();  // the loser's records ARE durable
  // Crash without commit.
  ASSERT_TRUE(HardCrashAndReopen().ok());
  std::string v;
  ASSERT_TRUE(Get(1, &v).ok());
  EXPECT_TRUE(Get(2, &v).IsNotFound()) << "loser insert must be undone";
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(DbFixture, CheckpointShortensRecovery) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v").ok());
  }
  ASSERT_TRUE(db_->Checkpoint().ok());
  for (int i = 100; i < 120; ++i) {
    ASSERT_TRUE(Put(static_cast<uint64_t>(i), "v").ok());
  }
  ASSERT_TRUE(HardCrashAndReopen().ok());
  EXPECT_EQ(CountRecords(), 120u);
  // Only the post-checkpoint tail was scanned.
  EXPECT_LT(db_->recovery_result().records_scanned, 100u);
}

TEST_F(DbFixture, BulkLoadProducesRequestedFill) {
  auto records = MakeRecords(5000, 64);
  ASSERT_TRUE(db_->BulkLoad(records, 0.45).ok());
  BTreeStats st;
  ASSERT_TRUE(db_->tree()->ComputeStats(&st).ok());
  EXPECT_EQ(st.records, 5000u);
  EXPECT_GT(st.avg_leaf_fill, 0.33);
  EXPECT_LT(st.avg_leaf_fill, 0.57);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  // Bulk load checkpointed: survives a crash.
  ASSERT_TRUE(HardCrashAndReopen().ok());
  EXPECT_EQ(CountRecords(), 5000u);
}

TEST_F(DbFixture, SparsifyByDeletionLeavesSparseTreeAndFreePages) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 4000, 64, 0.95, 0.7, 10, 42,
                                 &survivors)
                  .ok());
  BTreeStats st;
  ASSERT_TRUE(db_->tree()->ComputeStats(&st).ok());
  EXPECT_EQ(st.records, survivors.size());
  EXPECT_LT(st.avg_leaf_fill, 0.55);
  EXPECT_GT(db_->disk_manager()->free_count(), 0u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(DbFixture, FullReorganizeRoundTrip) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 4000, 64, 0.95, 0.7, 10, 42,
                                 &survivors)
                  .ok());
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());

  ASSERT_TRUE(db_->Reorganize().ok());

  BTreeStats after;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after).ok());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(after.records, before.records);
  EXPECT_LT(after.leaf_pages, before.leaf_pages);
  EXPECT_GT(after.avg_leaf_fill, before.avg_leaf_fill);

  // Every surviving record is still readable.
  for (uint64_t k : survivors) {
    std::string v;
    ASSERT_TRUE(db_->Get(EncodeU64Key(k), &v).ok()) << k;
  }
}

TEST_F(DbFixture, ReorganizedTreeSurvivesCrash) {
  std::vector<uint64_t> survivors;
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 3000, 64, 0.95, 0.6, 10, 1,
                                 &survivors)
                  .ok());
  ASSERT_TRUE(db_->Reorganize().ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  ASSERT_TRUE(HardCrashAndReopen().ok());
  EXPECT_EQ(CountRecords(), survivors.size());
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
