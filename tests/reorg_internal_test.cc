// Pass 3 (internal rebuild + side file + switch) tests.

#include <thread>

#include "tests/test_util.h"

namespace soreorg {
namespace {

class InternalPassTest : public DbFixture {
 protected:
  void BuildTallSparseTree(uint64_t n = 6000) {
    ASSERT_TRUE(SparsifyByDeletion(db_.get(), n, 64, 0.95, 0.75, 10, 42,
                                   &survivors_)
                    .ok());
    ASSERT_TRUE(db_->reorganizer()->RunLeafPass().ok());
  }

  std::vector<uint64_t> survivors_;
};

TEST_F(InternalPassTest, RebuildShrinksInternalLevelAndSwitches) {
  BuildTallSparseTree();
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());
  uint64_t old_incarnation = db_->tree()->incarnation();
  PageId old_root = db_->tree()->root();

  ASSERT_TRUE(db_->reorganizer()->RunInternalPass().ok());

  EXPECT_NE(db_->tree()->root(), old_root);
  EXPECT_EQ(db_->tree()->incarnation(), old_incarnation + 1);
  BTreeStats after;
  ASSERT_TRUE(db_->tree()->ComputeStats(&after).ok());
  EXPECT_LE(after.height, before.height);
  EXPECT_LE(after.internal_pages, before.internal_pages);
  EXPECT_EQ(after.records, before.records);
  EXPECT_EQ(after.leaf_pages, before.leaf_pages);  // leaves shared, not moved
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_FALSE(db_->tree()->reorg_bit());
}

TEST_F(InternalPassTest, OldUpperLevelsAreReclaimed) {
  BuildTallSparseTree();
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());
  size_t free_before = db_->disk_manager()->free_count();
  ASSERT_TRUE(db_->reorganizer()->RunInternalPass().ok());
  const SwitchStats& sw = db_->reorganizer()->switch_stats();
  EXPECT_EQ(sw.old_pages_discarded, before.internal_pages);
  EXPECT_GT(db_->disk_manager()->free_count() + 0, free_before);
}

TEST_F(InternalPassTest, StablePointsAreLogged) {
  DatabaseOptions opts;
  opts.reorg.builder.stable_every = 1;
  OpenDb(opts);
  BuildTallSparseTree();
  ASSERT_TRUE(db_->reorganizer()->RunInternalPass().ok());
  EXPECT_GE(db_->reorganizer()->stats().stable_points, 1u);
  std::vector<LogRecord> recs;
  ASSERT_TRUE(db_->log_manager()->ReadAll(&recs).ok());
  int stable = 0, switches = 0;
  for (const LogRecord& r : recs) {
    if (r.type == LogType::kStableKey) ++stable;
    if (r.type == LogType::kTreeSwitch) ++switches;
  }
  EXPECT_GE(stable, 1);
  EXPECT_EQ(switches, 1);
}

TEST_F(InternalPassTest, ConcurrentSplitsLandInSideFileAndCatchUp) {
  BuildTallSparseTree(8000);
  BTreeStats before;
  ASSERT_TRUE(db_->tree()->ComputeStats(&before).ok());

  // Run pass 3 while an updater thread splits leaves (inserting runs of
  // records into already-read regions forces base-page inserts that must be
  // caught via the side file).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inserted{0};
  std::thread updater([&]() {
    uint64_t k = 1;  // odd keys: between the bulk-loaded even slots
    while (!stop.load()) {
      if (db_->Put(EncodeU64Key(k), std::string(64, 'n')).ok()) {
        ++inserted;
      }
      k += 2;
    }
  });
  Status s = db_->reorganizer()->RunInternalPass();
  stop.store(true);
  updater.join();
  ASSERT_TRUE(s.ok()) << s.ToString();

  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
  EXPECT_EQ(CountRecords(), survivors_.size() + inserted.load());
  EXPECT_EQ(db_->side_file()->size(), 0u);  // fully caught up
}

TEST_F(InternalPassTest, UpdatersContinueDuringBuild) {
  BuildTallSparseTree(6000);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_ok{0};
  std::thread reader([&]() {
    Random rng(5);
    while (!stop.load()) {
      uint64_t k = survivors_[rng.Uniform(survivors_.size())];
      std::string v;
      if (db_->Get(EncodeU64Key(k), &v).ok()) ++reads_ok;
    }
  });
  // Let the reader get going before the (possibly very fast) pass runs.
  while (reads_ok.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(db_->reorganizer()->RunInternalPass().ok());
  stop.store(true);
  reader.join();
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

TEST_F(InternalPassTest, SwitchBumpsIncarnationSoNewOpsUseNewLockName) {
  BuildTallSparseTree();
  uint64_t inc = db_->tree()->incarnation();
  ASSERT_TRUE(db_->reorganizer()->RunInternalPass().ok());
  EXPECT_EQ(db_->tree()->incarnation(), inc + 1);
  // Operations proceed normally against the new tree.
  ASSERT_TRUE(Put(999999961, "post-switch").ok());
  std::string v;
  ASSERT_TRUE(Get(999999961, &v).ok());
  EXPECT_EQ(v, "post-switch");
}

TEST_F(InternalPassTest, FullThreePassRunMatchesFigureOne) {
  // Figure 1: sparse leaves -> compact -> swap -> shrink. Large enough that
  // the sparse tree has height 3 and the rebuilt tree can lose a level.
  ASSERT_TRUE(SparsifyByDeletion(db_.get(), 40000, 64, 0.95, 0.85, 10, 9,
                                 &survivors_)
                  .ok());
  BTreeStats s0;
  ASSERT_TRUE(db_->tree()->ComputeStats(&s0).ok());
  ASSERT_GE(s0.height, 3u);

  ASSERT_TRUE(db_->Reorganize().ok());

  BTreeStats s3;
  ASSERT_TRUE(db_->tree()->ComputeStats(&s3).ok());
  EXPECT_LT(s3.leaf_pages, s0.leaf_pages);
  EXPECT_GT(s3.avg_leaf_fill, s0.avg_leaf_fill);
  EXPECT_LT(s3.height, s0.height);  // the tree shrank
  EXPECT_LT(s3.internal_pages, s0.internal_pages);
  EXPECT_EQ(s3.records, s0.records);
  // Pass 2 ran: leaves strictly ascend on disk and are mostly contiguous.
  std::vector<PageId> leaves;
  ASSERT_TRUE(db_->tree()->CollectLeaves(&leaves).ok());
  for (size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_GT(leaves[i], leaves[i - 1]);
  }
  EXPECT_GT(s3.leaves_in_disk_order, s3.leaf_pages / 2);
  EXPECT_TRUE(db_->tree()->CheckConsistency().ok());
}

}  // namespace
}  // namespace soreorg
