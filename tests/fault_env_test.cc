// FaultInjectionEnv semantics (deterministic Nth-op faults, transient vs
// sticky failures, torn-write persistence across Crash, short reads) and the
// per-page checksum that detects torn images at read time.

#include "src/storage/fault_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/storage/disk_manager.h"
#include "src/storage/page.h"
#include "src/util/coding.h"

namespace soreorg {
namespace {

std::string ReadAll(File* f) {
  std::string out(f->Size(), '\0');
  size_t n = 0;
  EXPECT_TRUE(f->Read(0, out.size(), out.data(), &n).ok());
  out.resize(n);
  return out;
}

TEST(FaultEnvTest, PassesThroughUnfaulted) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("a.dat", &f).ok());
  ASSERT_TRUE(f->Append(Slice("hello")).ok());
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(ReadAll(f.get()), "hello");
  EXPECT_TRUE(env.FileExists("a.dat"));
  EXPECT_EQ(base.sync_count(), 1u);
  EXPECT_FALSE(env.fault_fired());
}

TEST(FaultEnvTest, ObserveOnlyCountsMatchingOps) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<File> pages, wal;
  ASSERT_TRUE(env.NewFile("db.pages", &pages).ok());
  ASSERT_TRUE(env.NewFile("db.wal", &wal).ok());

  env.ObserveOnly(".wal", "");
  ASSERT_TRUE(pages->Write(0, Slice("xx")).ok());
  ASSERT_TRUE(wal->Append(Slice("yy")).ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(env.ops_observed(), 2u);  // append + sync on .wal; .pages ignored
  EXPECT_FALSE(env.fault_fired());

  env.ObserveOnly("", "sync");
  ASSERT_TRUE(pages->Write(0, Slice("xx")).ok());
  ASSERT_TRUE(pages->Sync().ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(env.ops_observed(), 2u);  // syncs only, any file
}

TEST(FaultEnvTest, StickyFailureTakesEnvDown) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("a.dat", &f).ok());

  env.FailOpAfter(2, "", "sync");
  ASSERT_TRUE(f->Append(Slice("one")).ok());
  ASSERT_TRUE(f->Sync().ok());          // 1st sync: fine
  ASSERT_TRUE(f->Append(Slice("two")).ok());
  EXPECT_FALSE(f->Sync().ok());         // 2nd sync: injected failure
  EXPECT_TRUE(env.fault_fired());
  EXPECT_TRUE(env.down());
  // Down means *everything* write-like fails until Crash().
  EXPECT_FALSE(f->Append(Slice("three")).ok());
  EXPECT_FALSE(f->Sync().ok());

  env.Crash();
  EXPECT_FALSE(env.down());
  EXPECT_EQ(ReadAll(f.get()), "one");  // "two" was never synced
  ASSERT_TRUE(f->Append(Slice("four")).ok());
  ASSERT_TRUE(f->Sync().ok());
}

TEST(FaultEnvTest, TransientFailureFailsExactlyOnce) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("a.dat", &f).ok());

  env.FailOpAfter(1, "", "sync", /*transient=*/true);
  ASSERT_TRUE(f->Append(Slice("data")).ok());
  EXPECT_FALSE(f->Sync().ok());  // fails once...
  EXPECT_TRUE(env.fault_fired());
  EXPECT_FALSE(env.down());
  EXPECT_TRUE(f->Sync().ok());  // ...and the retry goes through
  EXPECT_EQ(base.sync_count(), 1u);
  EXPECT_EQ(ReadAll(f.get()), "data");
}

TEST(FaultEnvTest, TornWritePersistsPrefixAcrossCrash) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("a.dat", &f).ok());
  ASSERT_TRUE(f->Write(0, Slice("AAAAAAAA")).ok());
  ASSERT_TRUE(f->Sync().ok());

  env.TearWriteAfter(1, "", /*keep_bytes=*/3);
  EXPECT_FALSE(f->Write(0, Slice("BBBBBBBB")).ok());
  EXPECT_TRUE(env.fault_fired());
  EXPECT_TRUE(env.down());

  env.Crash();
  // The torn prefix survived the power cut; the rest of the old image stays.
  EXPECT_EQ(ReadAll(f.get()), "BBBAAAAA");
}

TEST(FaultEnvTest, TornWriteBeyondOldEndSurvivesAsShortFile) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("a.dat", &f).ok());

  env.TearWriteAfter(1, "", /*keep_bytes=*/4);
  EXPECT_FALSE(f->Append(Slice("ABCDEFGH")).ok());
  env.Crash();
  EXPECT_EQ(ReadAll(f.get()), "ABCD");
}

TEST(FaultEnvTest, ShortReadCapsOneRead) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("a.dat", &f).ok());
  ASSERT_TRUE(f->Write(0, Slice("0123456789")).ok());

  env.ShortReadAfter(2, "", /*keep_bytes=*/4);
  char buf[16];
  size_t n = 0;
  ASSERT_TRUE(f->Read(0, 10, buf, &n).ok());
  EXPECT_EQ(n, 10u);  // 1st read: unfaulted
  ASSERT_TRUE(f->Read(0, 10, buf, &n).ok());
  EXPECT_EQ(n, 4u);   // 2nd read: cut short
  EXPECT_TRUE(env.fault_fired());
}

// --- page checksum ---------------------------------------------------------

class ChecksumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<MemEnv>();
    fault_ = std::make_unique<FaultInjectionEnv>(env_.get());
    disk_ = std::make_unique<DiskManager>(fault_.get(), "c.pages");
    ASSERT_TRUE(disk_->Open().ok());
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<FaultInjectionEnv> fault_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(ChecksumTest, RoundTripStampsAndVerifies) {
  PageId pid;
  ASSERT_TRUE(disk_->AllocatePage(&pid).ok());
  Page page;
  page.SetHeaderPageId(pid);
  page.set_type(PageType::kLeaf);
  memcpy(page.data() + Page::kHeaderSize, "payload", 7);
  ASSERT_TRUE(disk_->WritePage(pid, page).ok());

  Page back;
  ASSERT_TRUE(disk_->ReadPage(pid, &back).ok());
  EXPECT_EQ(memcmp(back.data() + Page::kHeaderSize, "payload", 7), 0);
  // The stored checksum matches the helper's recomputation.
  EXPECT_EQ(DecodeFixed32(back.data() + kPageChecksumOffset),
            PageChecksum(back.data()));
  EXPECT_EQ(disk_->checksum_failures(), 0u);
}

TEST_F(ChecksumTest, FreshNeverWrittenPageIsAccepted) {
  PageId a, b;
  ASSERT_TRUE(disk_->AllocatePage(&a).ok());
  ASSERT_TRUE(disk_->AllocatePage(&b).ok());
  Page page;
  page.SetHeaderPageId(b);
  ASSERT_TRUE(disk_->WritePage(b, page).ok());  // extends the file past `a`
  // `a` was allocated but never written: reads as all-zero, no complaint.
  Page back;
  ASSERT_TRUE(disk_->ReadPage(a, &back).ok());
  EXPECT_EQ(disk_->checksum_failures(), 0u);
}

TEST_F(ChecksumTest, TornPageWriteIsDetectedOnRead) {
  PageId pid;
  ASSERT_TRUE(disk_->AllocatePage(&pid).ok());
  Page page;
  page.SetHeaderPageId(pid);
  page.set_type(PageType::kLeaf);
  for (size_t i = Page::kHeaderSize; i < kPageSize; ++i) {
    page.data()[i] = static_cast<char>('A' + (i % 23));
  }
  ASSERT_TRUE(disk_->WritePage(pid, page).ok());
  ASSERT_TRUE(disk_->SyncFile().ok());

  // Second write of a different image tears mid-page; power is lost.
  fault_->TearWriteAfter(1, ".pages", kPageSize / 3);
  for (size_t i = Page::kHeaderSize; i < kPageSize; ++i) {
    page.data()[i] = static_cast<char>('a' + (i % 19));
  }
  EXPECT_FALSE(disk_->WritePage(pid, page).ok());
  fault_->Crash();

  // The durable image is new-prefix + old-suffix: the checksum must refuse
  // it rather than hand back a franken-page.
  Page back;
  Status s = disk_->ReadPage(pid, &back);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(disk_->checksum_failures(), 1u);
}

TEST_F(ChecksumTest, ShortPageReadIsDetected) {
  PageId pid;
  ASSERT_TRUE(disk_->AllocatePage(&pid).ok());
  Page page;
  page.SetHeaderPageId(pid);
  page.set_type(PageType::kLeaf);
  for (size_t i = Page::kHeaderSize; i < kPageSize; ++i) {
    page.data()[i] = static_cast<char>('A' + (i % 23));
  }
  ASSERT_TRUE(disk_->WritePage(pid, page).ok());

  // The device returns only part of the page: never silently zero-extended
  // into a "valid" image — the checksum refuses it. (The lost suffix must
  // be nonzero for the truncation to be observable at all; an all-zero
  // tail zero-extends back to the identical image, which is fine.)
  fault_->ShortReadAfter(1, ".pages", /*keep_bytes=*/512);
  Page back;
  Status s = disk_->ReadPage(pid, &back);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(disk_->checksum_failures(), 1u);
  // The next (full) read is fine.
  EXPECT_TRUE(disk_->ReadPage(pid, &back).ok());
}

TEST_F(ChecksumTest, BitRotIsDetected) {
  PageId pid;
  ASSERT_TRUE(disk_->AllocatePage(&pid).ok());
  Page page;
  page.SetHeaderPageId(pid);
  memcpy(page.data() + Page::kHeaderSize, "stable bytes", 12);
  ASSERT_TRUE(disk_->WritePage(pid, page).ok());

  // Flip one byte behind the DiskManager's back.
  std::unique_ptr<File> raw;
  ASSERT_TRUE(env_->NewFile("c.pages", &raw).ok());
  uint64_t off = static_cast<uint64_t>(pid) * kPageSize + Page::kHeaderSize;
  ASSERT_TRUE(raw->Write(off, Slice("X")).ok());

  Page back;
  EXPECT_TRUE(disk_->ReadPage(pid, &back).IsCorruption());
  EXPECT_EQ(disk_->checksum_failures(), 1u);
}

}  // namespace
}  // namespace soreorg
