#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/storage/env.h"
#include "src/storage/fault_env.h"
#include "src/wal/checkpoint.h"
#include "src/wal/log_manager.h"
#include "src/wal/log_record.h"

namespace soreorg {
namespace {

LogRecord MakeInsert(TxnId txn, PageId page, const std::string& key,
                     const std::string& value) {
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn_id = txn;
  rec.page_id = page;
  rec.key = key;
  rec.value = value;
  return rec;
}

TEST(LogRecordTest, RoundTripAllFields) {
  LogRecord rec;
  rec.type = LogType::kReorgModify;
  rec.txn_id = kReorgTxnId;
  rec.prev_lsn = 12345;
  rec.lsn2 = 999;
  rec.page_id = 7;
  rec.page_id2 = 8;
  rec.page_id3 = 9;
  rec.unit = 42;
  rec.unit_type = static_cast<uint8_t>(ReorgUnitType::kSwap);
  rec.flags = kMoveKeysOnly;
  rec.key = "org-key";
  rec.key2 = "new-key";
  rec.value = "org-ptr";
  rec.value2 = "new-ptr";
  rec.payload = std::string(300, 'p');

  std::string buf;
  rec.AppendTo(&buf);
  LogRecord got;
  ASSERT_TRUE(LogRecord::Parse(Slice(buf), &got).ok());
  EXPECT_EQ(got.type, rec.type);
  EXPECT_EQ(got.txn_id, rec.txn_id);
  EXPECT_EQ(got.prev_lsn, rec.prev_lsn);
  EXPECT_EQ(got.lsn2, rec.lsn2);
  EXPECT_EQ(got.page_id, rec.page_id);
  EXPECT_EQ(got.page_id2, rec.page_id2);
  EXPECT_EQ(got.page_id3, rec.page_id3);
  EXPECT_EQ(got.unit, rec.unit);
  EXPECT_EQ(got.unit_type, rec.unit_type);
  EXPECT_EQ(got.flags, rec.flags);
  EXPECT_EQ(got.key, rec.key);
  EXPECT_EQ(got.key2, rec.key2);
  EXPECT_EQ(got.value, rec.value);
  EXPECT_EQ(got.value2, rec.value2);
  EXPECT_EQ(got.payload, rec.payload);
}

TEST(LogRecordTest, ParseRejectsTruncation) {
  LogRecord rec = MakeInsert(5, 3, "k", "v");
  std::string buf;
  rec.AppendTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    LogRecord got;
    EXPECT_FALSE(LogRecord::Parse(Slice(buf.data(), cut), &got).ok());
  }
}

TEST(LogManagerTest, AppendAssignsMonotonicLsns) {
  MemEnv env;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());
  LogRecord a = MakeInsert(2, 1, "a", "1");
  LogRecord b = MakeInsert(2, 1, "b", "2");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());
  EXPECT_LT(a.lsn, b.lsn);
  EXPECT_EQ(log.FlushedLsn(), 1u);  // nothing durable yet (LSNs start at 1)
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_GT(log.FlushedLsn(), b.lsn);
}

TEST(LogManagerTest, ReadAllAndReadAt) {
  MemEnv env;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());
  std::vector<Lsn> lsns;
  for (int i = 0; i < 20; ++i) {
    LogRecord rec = MakeInsert(2, 1, "k" + std::to_string(i), "v");
    ASSERT_TRUE(log.Append(&rec).ok());
    lsns.push_back(rec.lsn);
  }
  ASSERT_TRUE(log.Flush().ok());

  std::vector<LogRecord> all;
  ASSERT_TRUE(log.ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(all[i].key, "k" + std::to_string(i));
    EXPECT_EQ(all[i].lsn, lsns[i]);
  }

  LogRecord one;
  ASSERT_TRUE(log.ReadAt(lsns[7], &one).ok());
  EXPECT_EQ(one.key, "k7");

  std::vector<LogRecord> tail;
  ASSERT_TRUE(log.ReadAll(&tail, lsns[15]).ok());
  EXPECT_EQ(tail.size(), 5u);
}

TEST(LogManagerTest, CrashDiscardsUnflushedTail) {
  MemEnv env;
  {
    LogManager log(&env, "wal");
    ASSERT_TRUE(log.Open().ok());
    LogRecord a = MakeInsert(2, 1, "durable", "v");
    ASSERT_TRUE(log.AppendAndFlush(&a).ok());
    LogRecord b = MakeInsert(2, 1, "lost", "v");
    ASSERT_TRUE(log.Append(&b).ok());  // buffered only
  }
  env.Crash();
  LogManager log2(&env, "wal");
  ASSERT_TRUE(log2.Open().ok());
  std::vector<LogRecord> all;
  ASSERT_TRUE(log2.ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].key, "durable");
}

TEST(LogManagerTest, TornTailIsTruncatedOnOpen) {
  MemEnv env;
  Lsn first_lsn;
  {
    LogManager log(&env, "wal");
    ASSERT_TRUE(log.Open().ok());
    LogRecord a = MakeInsert(2, 1, "good", "v");
    ASSERT_TRUE(log.AppendAndFlush(&a).ok());
    first_lsn = a.lsn;
  }
  // Corrupt the file by appending garbage bytes (a torn frame).
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile("wal", &f).ok());
  ASSERT_TRUE(f->Append("garbage-frame-bytes").ok());
  ASSERT_TRUE(f->Sync().ok());

  LogManager log2(&env, "wal");
  ASSERT_TRUE(log2.Open().ok());
  std::vector<LogRecord> all;
  ASSERT_TRUE(log2.ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].key, "good");
  // New appends land where the valid prefix ended.
  LogRecord b = MakeInsert(2, 1, "after", "v");
  ASSERT_TRUE(log2.AppendAndFlush(&b).ok());
  EXPECT_GT(b.lsn, first_lsn);
  all.clear();
  ASSERT_TRUE(log2.ReadAll(&all).ok());
  EXPECT_EQ(all.size(), 2u);
}

TEST(LogManagerTest, PerTypeByteAccounting) {
  MemEnv env;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());
  LogRecord a = MakeInsert(2, 1, "k", "v");
  ASSERT_TRUE(log.Append(&a).ok());
  LogRecord mv;
  mv.type = LogType::kReorgMove;
  mv.payload = std::string(500, 'm');
  ASSERT_TRUE(log.Append(&mv).ok());
  EXPECT_GT(log.bytes_for_type(LogType::kReorgMove), 500u);
  EXPECT_GT(log.bytes_for_type(LogType::kInsert), 0u);
  EXPECT_EQ(log.bytes_for_type(LogType::kCommit), 0u);
  EXPECT_EQ(log.records_appended(), 2u);
  EXPECT_EQ(log.bytes_appended(), log.bytes_for_type(LogType::kReorgMove) +
                                      log.bytes_for_type(LogType::kInsert));
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

// The fsync-count contract: records buffered by one thread, then flushed by
// K threads concurrently — the first leader steals the whole buffer, so the
// sync count rises by exactly 1 and every FlushTo returns durable.
TEST(LogManagerTest, GroupFlushOfBufferedRecordsCostsOneSync) {
  MemEnv env;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());

  constexpr int kN = 8;
  std::vector<Lsn> lsns;
  for (int i = 0; i < kN; ++i) {
    LogRecord rec = MakeInsert(1, 1, "k" + std::to_string(i), "v");
    ASSERT_TRUE(log.Append(&rec).ok());
    lsns.push_back(rec.lsn);
  }
  uint64_t syncs_before = env.sync_count();

  std::vector<std::thread> threads;
  for (int i = 0; i < kN; ++i) {
    threads.emplace_back(
        [&log, lsn = lsns[i]] { ASSERT_TRUE(log.FlushTo(lsn).ok()); });
  }
  for (auto& t : threads) t.join();

  // One leader, one physical batch: N "commits" cost exactly 1 fsync.
  EXPECT_EQ(env.sync_count() - syncs_before, 1u);
  EXPECT_EQ(log.sync_batches(), 1u);
  for (Lsn lsn : lsns) EXPECT_LT(lsn, log.FlushedLsn());

  // And they really are durable: a crash keeps all of them.
  env.Crash();
  LogManager reopened(&env, "wal");
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(reopened.ReadAll(&recs).ok());
  EXPECT_EQ(recs.size(), static_cast<size_t>(kN));
}

// Concurrent AppendAndFlush from many threads: every record lands exactly
// once, recovery replays the identical record set a per-commit-flush run
// produces, and the fsync count stays well under one per commit.
TEST(LogManagerTest, ConcurrentAppendAndFlushRecoversEveryRecordOnce) {
  MemEnv env;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec = MakeInsert(100 + t, 1,
                                   "t" + std::to_string(t) + "-" +
                                       std::to_string(i),
                                   "v");
        ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
        ASSERT_LT(rec.lsn, log.FlushedLsn());  // durable on return
      }
    });
  }
  for (auto& t : threads) t.join();

  // Group commit must have batched at least some of the 200 commits.
  EXPECT_LE(log.sync_batches(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(log.sync_batches(), 1u);

  env.Crash();  // discard nothing that was acked
  LogManager reopened(&env, "wal");
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(reopened.ReadAll(&recs).ok());
  ASSERT_EQ(recs.size(), static_cast<size_t>(kThreads * kPerThread));

  // Same record multiset as a serial per-commit-flush reference run.
  std::multiset<std::string> got, want;
  for (const auto& r : recs) got.insert(r.key);
  MemEnv ref_env;
  LogManager ref(&ref_env, "wal");
  ASSERT_TRUE(ref.Open().ok());
  const uint64_t ref_base_syncs = ref_env.sync_count();  // Open's header sync
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      LogRecord rec = MakeInsert(100 + t, 1,
                                 "t" + std::to_string(t) + "-" +
                                     std::to_string(i),
                                 "v");
      ASSERT_TRUE(ref.AppendAndFlush(&rec).ok());
    }
  }
  std::vector<LogRecord> ref_recs;
  ASSERT_TRUE(ref.ReadAll(&ref_recs).ok());
  for (const auto& r : ref_recs) want.insert(r.key);
  EXPECT_EQ(got, want);
  // The serial reference pays one fsync per commit; the concurrent run
  // must not pay more.
  EXPECT_EQ(ref_env.sync_count() - ref_base_syncs,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_LE(env.sync_count(), ref_env.sync_count());
}

// FlushTo's fast path: an already-durable LSN returns without any file
// traffic, and FlushedLsn() itself is a lock-free read.
TEST(LogManagerTest, FlushToIsANoOpWhenAlreadyDurable) {
  MemEnv env;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());

  LogRecord rec = MakeInsert(1, 1, "k", "v");
  ASSERT_TRUE(log.AppendAndFlush(&rec).ok());
  uint64_t syncs = env.sync_count();
  uint64_t batches = log.sync_batches();

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(log.FlushTo(rec.lsn).ok());
  }
  EXPECT_EQ(env.sync_count(), syncs);       // no I/O at all
  EXPECT_EQ(log.sync_batches(), batches);

  // The boundary stays exact: the next (not yet appended) LSN is not
  // durable, so probing it triggers a real (empty-buffer, no-op) pass.
  LogRecord rec2 = MakeInsert(1, 1, "k2", "v");
  ASSERT_TRUE(log.Append(&rec2).ok());
  ASSERT_TRUE(log.FlushTo(rec2.lsn).ok());
  EXPECT_GT(env.sync_count(), syncs);
  EXPECT_LT(rec2.lsn, log.FlushedLsn());
}

// The group-commit failure path: a leader whose fsync fails must splice its
// stolen batch back at the front of the buffer, at the original offsets, so
// that (a) no record is lost, (b) no record is duplicated, and (c) every
// record keeps the LSN it was assigned at Append time. A later flush retries
// the whole batch and pays exactly one successful fsync.
TEST(LogManagerTest, SyncFailureSplicesBatchBackAndRetriesExactlyOnce) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());

  LogRecord a = MakeInsert(1, 1, "a", "v");
  LogRecord b = MakeInsert(1, 1, "b", "v");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());

  const uint64_t base_syncs = base.sync_count();  // Open's header sync
  env.FailOpAfter(1, "", "sync", /*transient=*/true);
  Status s = log.Flush();
  ASSERT_FALSE(s.ok()) << "injected fsync failure must surface";
  EXPECT_TRUE(env.fault_fired());
  // Nothing was acked durable and no successful batch was counted.
  EXPECT_LE(log.FlushedLsn(), a.lsn);
  EXPECT_EQ(log.sync_batches(), 0u);
  EXPECT_EQ(base.sync_count(), base_syncs);

  // Records appended after the failure land *behind* the spliced batch.
  LogRecord c = MakeInsert(1, 1, "c", "v");
  ASSERT_TRUE(log.Append(&c).ok());
  EXPECT_GT(c.lsn, b.lsn);

  // The retry flushes everything exactly once.
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_GT(log.FlushedLsn(), c.lsn);
  EXPECT_EQ(log.sync_batches(), 1u);
  EXPECT_EQ(base.sync_count(), base_syncs + 1);

  std::vector<LogRecord> all;
  ASSERT_TRUE(log.ReadAll(&all).ok());
  ASSERT_EQ(all.size(), 3u);
  // Exactly-once, in order, and the file-offset-derived LSNs match the
  // Append-time LSNs: the splice kept the batch contiguous at its offsets.
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[1].key, "b");
  EXPECT_EQ(all[2].key, "c");
  EXPECT_EQ(all[0].lsn, a.lsn);
  EXPECT_EQ(all[1].lsn, b.lsn);
  EXPECT_EQ(all[2].lsn, c.lsn);

  // And durably so: the record set survives a crash.
  env.Crash();
  LogManager reopened(&env, "wal");
  ASSERT_TRUE(reopened.Open().ok());
  all.clear();
  ASSERT_TRUE(reopened.ReadAll(&all).ok());
  EXPECT_EQ(all.size(), 3u);
}

// Same failure under concurrency: the leader that eats the injected fsync
// error reports it to its caller; the other committers elect a new leader
// and the retried batch carries every record exactly once.
TEST(LogManagerTest, ConcurrentCommitSurvivesOneSyncFailure) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());

  env.FailOpAfter(1, "", "sync", /*transient=*/true);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec = MakeInsert(100 + t, 1,
                                   "t" + std::to_string(t) + "-" +
                                       std::to_string(i),
                                   "v");
        Status s = log.AppendAndFlush(&rec);
        if (!s.ok()) {
          // This thread led the batch the injected fault killed. The record
          // is spliced back, not lost: retrying the flush makes it durable.
          s = log.FlushTo(rec.lsn);
        }
        ASSERT_TRUE(s.ok());
        ASSERT_LT(rec.lsn, log.FlushedLsn());  // durable on return
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(env.fault_fired());

  env.Crash();
  LogManager reopened(&env, "wal");
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<LogRecord> recs;
  ASSERT_TRUE(reopened.ReadAll(&recs).ok());
  ASSERT_EQ(recs.size(), static_cast<size_t>(kThreads * kPerThread));

  // Exactly once each, and LSNs stayed strictly increasing with no holes
  // in the byte stream (ReadAll derives them from file offsets).
  std::multiset<std::string> got;
  for (const auto& r : recs) got.insert(r.key);
  EXPECT_EQ(got.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<std::string> uniq(got.begin(), got.end());
  EXPECT_EQ(uniq.size(), got.size()) << "a record was duplicated";
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].lsn, recs[i].lsn);
  }
}

// Torn-tail forensics: ReadAll reports a torn trailing frame via
// LogReadStats (normal after a crash), while *mid-log* damage — valid
// frames beyond the corruption — is flagged, and a fresh Open refuses to
// "heal" it by truncation (that would destroy acknowledged records).
TEST(LogManagerTest, ReadStatsDistinguishTornTailFromMidLogCorruption) {
  MemEnv env;
  LogManager log(&env, "wal");
  ASSERT_TRUE(log.Open().ok());
  LogRecord a = MakeInsert(2, 1, "first", "v");
  ASSERT_TRUE(log.AppendAndFlush(&a).ok());
  LogRecord b = MakeInsert(2, 1, "second", "v");
  ASSERT_TRUE(log.AppendAndFlush(&b).ok());

  // Clean log: no tear, nothing dropped.
  std::vector<LogRecord> recs;
  LogReadStats stats;
  ASSERT_TRUE(log.ReadAll(&recs, 0, &stats).ok());
  EXPECT_EQ(stats.records_read, 2u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.mid_log_corruption);
  EXPECT_EQ(stats.dropped_bytes, 0u);

  // Append garbage behind the manager's back: a torn final frame. Dropped
  // bytes are reported, but it is NOT corruption — the valid prefix reads
  // clean and a reopen self-heals by truncating.
  std::unique_ptr<File> f;
  ASSERT_TRUE(env.NewFile(LogManager::SegmentFileName("wal", 1), &f).ok());
  ASSERT_TRUE(f->Append("torn-frame-garbage").ok());
  recs.clear();
  ASSERT_TRUE(log.ReadAll(&recs, 0, &stats).ok());
  EXPECT_EQ(stats.records_read, 2u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_FALSE(stats.mid_log_corruption);
  EXPECT_EQ(stats.dropped_bytes, sizeof("torn-frame-garbage") - 1);
  {
    LogManager healed(&env, "wal");
    EXPECT_TRUE(healed.Open().ok());
  }

  // Mid-log damage: zero bytes *inside the first frame's body* so a
  // CRC-valid frame (the second record) survives beyond the corruption.
  ASSERT_TRUE(f->Write(LogManager::kSegmentHeaderSize +
                           LogManager::kFrameHeader + 2,
                       Slice("\xDE\xAD\xBE\xEF", 4)).ok());
  recs.clear();
  ASSERT_TRUE(log.ReadAll(&recs, 0, &stats).ok());
  EXPECT_EQ(stats.records_read, 0u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_TRUE(stats.mid_log_corruption)
      << "the intact second frame beyond the damage must be flagged";
  EXPECT_GT(stats.dropped_bytes, 0u);

  // A fresh Open must refuse rather than truncate away the second record.
  LogManager reopened(&env, "wal");
  Status s = reopened.Open();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(CheckpointTest, ImageRoundTrip) {
  CheckpointImage img;
  img.disk_meta = "disk-meta-bytes";
  img.active_txns = {{5, 100}, {9, 222}};
  img.next_txn_id = 10;
  img.reorg.has_open_unit = true;
  img.reorg.unit = 3;
  img.reorg.begin_lsn = 50;
  img.reorg.recent_lsn = 80;
  img.reorg.largest_finished_key = "LK";
  img.reorg.leaf_pass_active = true;
  img.reorg.reorg_bit = true;
  img.reorg.stable_key = "SK";
  img.reorg.new_tree_root = 77;
  img.tree_root = 3;
  img.tree_height = 4;
  img.tree_incarnation = 2;
  img.side_file_image = "side-bytes";

  std::string buf = img.Serialize();
  CheckpointImage got;
  ASSERT_TRUE(CheckpointImage::Parse(Slice(buf), &got).ok());
  EXPECT_EQ(got.disk_meta, img.disk_meta);
  EXPECT_EQ(got.active_txns, img.active_txns);
  EXPECT_EQ(got.next_txn_id, img.next_txn_id);
  EXPECT_EQ(got.reorg.has_open_unit, true);
  EXPECT_EQ(got.reorg.unit, 3u);
  EXPECT_EQ(got.reorg.begin_lsn, 50u);
  EXPECT_EQ(got.reorg.recent_lsn, 80u);
  EXPECT_EQ(got.reorg.largest_finished_key, "LK");
  EXPECT_TRUE(got.reorg.leaf_pass_active);
  EXPECT_TRUE(got.reorg.reorg_bit);
  EXPECT_EQ(got.reorg.stable_key, "SK");
  EXPECT_EQ(got.reorg.new_tree_root, 77u);
  EXPECT_EQ(got.tree_root, 3u);
  EXPECT_EQ(got.tree_height, 4);
  EXPECT_EQ(got.tree_incarnation, 2u);
  EXPECT_EQ(got.side_file_image, "side-bytes");
}

TEST(CheckpointTest, MasterStoreLoad) {
  MemEnv env;
  CheckpointMaster master(&env, "ckpt");
  ASSERT_TRUE(master.Open().ok());
  Lsn lsn;
  EXPECT_TRUE(master.Load(&lsn).IsNotFound());
  ASSERT_TRUE(master.Store(4242).ok());
  ASSERT_TRUE(master.Load(&lsn).ok());
  EXPECT_EQ(lsn, 4242u);
  ASSERT_TRUE(master.Store(9999).ok());
  ASSERT_TRUE(master.Load(&lsn).ok());
  EXPECT_EQ(lsn, 9999u);
}

}  // namespace
}  // namespace soreorg
