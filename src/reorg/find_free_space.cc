#include "src/reorg/find_free_space.h"

namespace soreorg {

PageId FindFreeSpace::Find(PageId last_finished, PageId current) const {
  switch (policy_) {
    case FreeSpacePolicy::kNone:
      return kInvalidPageId;
    case FreeSpacePolicy::kFirstFitAnywhere:
      return disk_->FirstFreeInRange(0, disk_->page_count());
    case FreeSpacePolicy::kPaperHeuristic: {
      PageId lo = (last_finished == kInvalidPageId) ? 0 : last_finished + 1;
      if (current == kInvalidPageId || lo >= current) return kInvalidPageId;
      return disk_->FirstFreeInRange(lo, current);
    }
  }
  return kInvalidPageId;
}

}  // namespace soreorg
