// Pass 2 (§3, §4.1, §6): put the compacted leaves into key order on disk.
//
// The pass snapshots the leaves in key order, computes the target layout —
// the N lowest page ids among (current leaf pids ∪ free pids) assigned in
// key order — and then, leaf by leaf:
//   * if the target slot is a free page, runs a MOVE unit (new-place, cheap
//     keys-only logging under careful writing);
//   * if the target slot currently holds another leaf, runs a SWAP unit —
//     an in-place exchange of two pages' contents that locks up to two base
//     pages (this is why the paper prefers moving to swapping) and must log
//     at least one full page image.
//
// The pass is optional ("choose to do swapping only when range query
// performance falls below some acceptable level") and tolerates concurrent
// splits: the result need not be perfectly ordered.

#ifndef SOREORG_REORG_SWAP_PASS_H_
#define SOREORG_REORG_SWAP_PASS_H_

#include <vector>

#include "src/reorg/context.h"
#include "src/reorg/leaf_compactor.h"

namespace soreorg {

struct SwapPassOptions {
  int max_unit_retries = 16;
  /// See LeafCompactorOptions::unit_wrapper.
  std::function<Status(const std::function<Status()>&)> unit_wrapper;
};

class SwapPass {
 public:
  SwapPass(ReorgContext* ctx, LeafCompactor* compactor, SwapPassOptions opts);

  Status Run();

  /// One swap unit: exchange the contents of leaves a and b (full §4.1
  /// two-base-page protocol). Public for tests and forward recovery.
  Status SwapUnit(uint32_t unit, PageId a, PageId b, bool resume);

 private:
  Status SwapUnitOnce(uint32_t unit, PageId a, PageId b, bool resume);

  /// Base page currently holding `leaf` (R-locked on success; caller
  /// unlocks). Verified by child lookup.
  Status FindAndLockBaseOf(PageId leaf, PageId* base_pid);

  ReorgContext* ctx_;
  LeafCompactor* compactor_;
  SwapPassOptions options_;
};

}  // namespace soreorg

#endif  // SOREORG_REORG_SWAP_PASS_H_
