// Find-Free-Space (§6.1): choose the empty page that a copy-switch unit
// should construct its new leaf in.
//
// The paper's heuristic picks the FIRST free page that lies AFTER the
// largest finished page id L and BEFORE the page being reorganized, C. This
// moves C "left" (the tree shrinks, so left is the right direction) while
// staying in relative key order with everything already compacted, which is
// what minimizes pass-2 swaps.
//
// Two alternative policies exist purely for the E1 ablation benchmark:
//   kFirstFitAnywhere — lowest-numbered free page regardless of L/C;
//   kNone             — never use new-place (forces in-place + swaps).

#ifndef SOREORG_REORG_FIND_FREE_SPACE_H_
#define SOREORG_REORG_FIND_FREE_SPACE_H_

#include "src/storage/disk_manager.h"

namespace soreorg {

enum class FreeSpacePolicy {
  kPaperHeuristic = 0,
  kFirstFitAnywhere = 1,
  kNone = 2,
};

class FindFreeSpace {
 public:
  FindFreeSpace(DiskManager* disk, FreeSpacePolicy policy)
      : disk_(disk), policy_(policy) {}

  /// A "good" empty page for the unit about to reorganize page `current`,
  /// given the largest finished page id `last_finished` (kInvalidPageId when
  /// nothing is finished yet). Returns kInvalidPageId if the policy finds
  /// none; the caller then compacts in place.
  PageId Find(PageId last_finished, PageId current) const;

  FreeSpacePolicy policy() const { return policy_; }

 private:
  DiskManager* disk_;
  FreeSpacePolicy policy_;
};

}  // namespace soreorg

#endif  // SOREORG_REORG_FIND_FREE_SPACE_H_
