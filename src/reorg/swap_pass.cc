#include "src/reorg/swap_pass.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/util/coding.h"

namespace soreorg {

namespace {

std::string EncodePid(PageId pid) {
  std::string s;
  PutFixed32(&s, pid);
  return s;
}

std::vector<std::string> ReadAllCells(Page* page) {
  SlottedPage sp(page);
  std::vector<std::string> cells;
  cells.reserve(sp.slot_count());
  for (int i = 0; i < sp.slot_count(); ++i) {
    cells.push_back(sp.GetCell(i).ToString());
  }
  return cells;
}

void WriteAllCells(Page* page, const std::vector<std::string>& cells) {
  SlottedPage sp(page);
  sp.Clear();
  for (size_t i = 0; i < cells.size(); ++i) {
    sp.InsertCell(static_cast<int>(i), cells[i]);
  }
}

std::string PackCells(const std::vector<std::string>& cells) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(cells.size()));
  for (const std::string& c : cells) PutLengthPrefixedSlice(&out, c);
  return out;
}

}  // namespace

SwapPass::SwapPass(ReorgContext* ctx, LeafCompactor* compactor,
                   SwapPassOptions opts)
    : ctx_(ctx), compactor_(compactor), options_(opts) {}

Status SwapPass::FindAndLockBaseOf(PageId leaf, PageId* base_pid) {
  BufferPool* bp = ctx_->bp;
  for (int attempt = 0; attempt < 16; ++attempt) {
    Page* leaf_page;
    Status s = bp->FetchPage(leaf, &leaf_page);
    if (!s.ok()) return s;
    std::string key;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      if (ln.Count() > 0) key = ln.KeyAt(0).ToString();
    }
    bp->UnpinPage(leaf, false);

    PageGuard guard;
    s = ctx_->tree->LockBasePage(kReorgTxnId, key, LockMode::kR, base_pid,
                                 &guard);
    if (!s.ok()) return s;
    bool found;
    {
      std::shared_lock<PageLatch> latch(guard->latch());
      InternalNode base(guard.get());
      found = base.FindChildSlot(leaf) >= 0;
    }
    guard.Release();
    if (found) return Status::OK();
    ctx_->locks->Unlock(kReorgTxnId, PageLock(*base_pid));
    // The leaf's first key may have been stale; retry.
  }
  return Status::Busy("could not locate leaf's base page");
}

Status SwapPass::Run() {
  Status s = ctx_->locks->Lock(kReorgTxnId, TreeLock(ctx_->tree->incarnation()),
                               LockMode::kIX);
  if (!s.ok()) return s;
  auto unlock_tree = [&]() {
    ctx_->locks->Unlock(kReorgTxnId, TreeLock(ctx_->tree->incarnation()));
  };

  // Make pass-1's gated deallocations durable so their pages are available
  // as move targets (the paper assumes free pages exist in the database).
  s = ctx_->bp->FlushAndSync();
  if (!s.ok()) {
    unlock_tree();
    return s;
  }

  std::vector<PageId> leaves;
  s = ctx_->tree->CollectLeaves(&leaves);
  if (!s.ok()) {
    unlock_tree();
    return s;
  }

  // Candidate slots: current leaf pids plus all free pages.
  std::set<PageId> candidates(leaves.begin(), leaves.end());
  PageId probe = 0;
  while (true) {
    PageId f = ctx_->disk->FirstFreeInRange(probe, ctx_->disk->page_count());
    if (f == kInvalidPageId) break;
    candidates.insert(f);
    probe = f + 1;
  }
  std::vector<PageId> targets(candidates.begin(), candidates.end());
  targets.resize(leaves.size());  // the N smallest candidates, ascending

  std::map<PageId, size_t> where;  // pid -> index in `leaves`
  for (size_t i = 0; i < leaves.size(); ++i) where[leaves[i]] = i;

  for (size_t i = 0; i < leaves.size(); ++i) {
    PageId cur = leaves[i];
    PageId tgt = targets[i];
    if (cur == tgt) continue;
    auto occ = where.find(tgt);
    if (occ != where.end()) {
      // Swap with the leaf currently at the target slot.
      size_t j = occ->second;
      uint32_t unit = ctx_->next_unit.fetch_add(1);
      if (options_.unit_wrapper) {
        s = options_.unit_wrapper(
            [&]() { return SwapUnit(unit, cur, tgt, /*resume=*/false); });
      } else {
        s = SwapUnit(unit, cur, tgt, /*resume=*/false);
      }
      if (s.IsBusy() || s.IsDeadlock()) continue;  // skip; best effort
      if (!s.ok()) {
        unlock_tree();
        return s;
      }
      leaves[i] = tgt;
      leaves[j] = cur;
      where[tgt] = i;
      where[cur] = j;
    } else {
      // Move into the free page.
      PageId base_pid;
      s = FindAndLockBaseOf(cur, &base_pid);
      if (!s.ok()) continue;
      ctx_->locks->Unlock(kReorgTxnId, PageLock(base_pid));
      uint32_t unit = ctx_->next_unit.fetch_add(1);
      auto run_unit = [&]() {
        if (options_.unit_wrapper) {
          return options_.unit_wrapper([&]() {
            return compactor_->ExecuteUnit(unit, base_pid, {cur}, tgt,
                                           /*resume=*/false);
          });
        }
        return compactor_->ExecuteUnit(unit, base_pid, {cur}, tgt,
                                       /*resume=*/false);
      };
      s = run_unit();
      if (s.IsBusy()) {
        // The target may be a page this pass vacated earlier whose
        // deallocation is still gated on a durability barrier: make the
        // pending deallocations durable and retry once.
        ctx_->bp->FlushAndSync();
        s = run_unit();
      }
      if (s.IsBusy() || s.IsDeadlock()) continue;
      if (!s.ok()) {
        unlock_tree();
        return s;
      }
      leaves[i] = tgt;
      where.erase(cur);
      where[tgt] = i;
    }
  }
  unlock_tree();
  return Status::OK();
}

Status SwapPass::SwapUnit(uint32_t unit, PageId a, PageId b, bool resume) {
  for (int attempt = 0; attempt < options_.max_unit_retries; ++attempt) {
    Status s = SwapUnitOnce(unit, a, b, resume);
    if (s.IsDeadlock()) {
      ++ctx_->stats->unit_retries;
      continue;
    }
    return s;
  }
  return Status::Deadlock("swap retries exhausted");
}

Status SwapPass::SwapUnitOnce(uint32_t unit, PageId a, PageId b, bool resume) {
  const TxnId id = kReorgTxnId;
  LockManager* locks = ctx_->locks;
  BufferPool* bp = ctx_->bp;

  std::vector<LockName> held;
  auto lock = [&](const LockName& name, LockMode mode) -> Status {
    Status s = locks->Lock(id, name, mode);
    if (s.ok()) held.push_back(name);
    return s;
  };
  auto release_all = [&]() {
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
      locks->Unlock(id, *it);
    }
    held.clear();
  };

  // --- base pages ------------------------------------------------------------
  PageId base_a;
  Status s = FindAndLockBaseOf(a, &base_a);
  if (!s.ok()) return s;
  held.push_back(PageLock(base_a));

  PageId base_b = base_a;
  bool b_same_base;
  {
    Page* bpg;
    s = bp->FetchPage(base_a, &bpg);
    if (!s.ok()) {
      release_all();
      return s;
    }
    std::shared_lock<PageLatch> latch(bpg->latch());
    InternalNode base(bpg);
    b_same_base = base.FindChildSlot(b) >= 0;
    bp->UnpinPage(base_a, false);
  }
  if (!b_same_base) {
    s = FindAndLockBaseOf(b, &base_b);
    if (!s.ok()) {
      release_all();
      return s;
    }
    held.push_back(PageLock(base_b));
  }

  // --- leaves + neighbors ------------------------------------------------------
  s = lock(PageLock(a), LockMode::kRX);
  if (s.ok()) s = lock(PageLock(b), LockMode::kRX);
  if (!s.ok()) {
    release_all();
    return s;
  }

  PageId pa = kInvalidPageId, na = kInvalidPageId;
  PageId pb = kInvalidPageId, nb = kInvalidPageId;
  if (ctx_->tree->options().side_pointers != SidePointerMode::kNone) {
    Page* pg;
    s = bp->FetchPage(a, &pg);
    if (!s.ok()) {
      release_all();
      return s;
    }
    pa = pg->prev();
    na = pg->next();
    bp->UnpinPage(a, false);
    s = bp->FetchPage(b, &pg);
    if (!s.ok()) {
      release_all();
      return s;
    }
    pb = pg->prev();
    nb = pg->next();
    bp->UnpinPage(b, false);

    std::vector<PageId> neighbors;
    for (PageId n : {pa, na, pb, nb}) {
      if (n == kInvalidPageId || n == a || n == b) continue;
      if (std::find(neighbors.begin(), neighbors.end(), n) ==
          neighbors.end()) {
        neighbors.push_back(n);
      }
    }
    for (PageId n : neighbors) {
      bool same_base = false;
      for (PageId base : {base_a, base_b}) {
        Page* bpg;
        if (!bp->FetchPage(base, &bpg).ok()) continue;
        std::shared_lock<PageLatch> latch(bpg->latch());
        InternalNode node(bpg);
        if (node.FindChildSlot(n) >= 0) same_base = true;
        bp->UnpinPage(base, false);
      }
      s = lock(PageLock(n), same_base ? LockMode::kRX : LockMode::kX);
      if (!s.ok()) {
        release_all();
        return s;
      }
    }
  }

  // --- BEGIN -------------------------------------------------------------------
  // As in the leaf pass, every logged step brackets its append and effects
  // in a BufferPool::ApplyScope (per step, never across a lock wait) so a
  // concurrent checkpoint's redo floor cannot split record from effect.
  if (!resume) {
    BufferPool::ApplyScope apply_scope(bp);
    LogRecord begin;
    begin.type = LogType::kReorgBegin;
    begin.txn_id = id;
    begin.unit = unit;
    begin.unit_type = static_cast<uint8_t>(ReorgUnitType::kSwap);
    std::vector<PageId> bases{base_a};
    if (base_b != base_a) bases.push_back(base_b);
    begin.payload = EncodeBeginPages(bases, {a, b});
    ctx_->log->Append(&begin);
    ctx_->table->BeginUnit(unit, begin.lsn);
  }

  // On resume, detect whether the content swap already happened (the crash
  // may have fallen anywhere in the unit; redo reinstalled whatever was
  // logged). The base entry's separator matches the page's current first
  // key iff the contents are where the entry says they are.
  bool skip_swap = false;
  if (resume) {
    Page* bpg;
    s = bp->FetchPage(base_a, &bpg);
    if (!s.ok()) {
      release_all();
      return s;
    }
    int slot_a;
    std::string sep_a;
    {
      std::shared_lock<PageLatch> latch(bpg->latch());
      InternalNode node(bpg);
      slot_a = node.FindChildSlot(a);
      if (slot_a >= 0) sep_a = node.KeyAt(slot_a).ToString();
    }
    bp->UnpinPage(base_a, false);
    if (slot_a >= 0) {
      Page* pga;
      s = bp->FetchPage(a, &pga);
      if (!s.ok()) {
        release_all();
        return s;
      }
      std::string first_a;
      {
        std::shared_lock<PageLatch> latch(pga->latch());
        LeafNode ln(pga);
        if (ln.Count() > 0) first_a = ln.KeyAt(0).ToString();
      }
      bp->UnpinPage(a, false);
      skip_swap = !first_a.empty() && first_a != sep_a;
    } else {
      skip_swap = true;  // base already repointed: the swap happened
    }
  }

  // --- the swap itself (one atomic record; full image of page a) ---------------
  auto do_swap = [&]() -> Status {
    Page* page_a;
    Page* page_b;
    Status ss = bp->FetchPage(a, &page_a);
    if (!ss.ok()) return ss;
    ss = bp->FetchPage(b, &page_b);
    if (!ss.ok()) {
      bp->UnpinPage(a, false);
      return ss;
    }
    std::vector<std::string> cells_a, cells_b;
    {
      std::shared_lock<PageLatch> la(page_a->latch());
      cells_a = ReadAllCells(page_a);
    }
    {
      std::shared_lock<PageLatch> lb(page_b->latch());
      cells_b = ReadAllCells(page_b);
    }
    BufferPool::ApplyScope apply_scope(bp);
    LogRecord move;
    move.type = LogType::kReorgMove;
    move.txn_id = id;
    move.unit = unit;
    move.prev_lsn = ctx_->table->recent_lsn();
    move.page_id = a;
    move.page_id2 = b;
    move.flags = kSwapImages;
    move.payload = PackCells(cells_a);
    ctx_->log->Append(&move);
    ctx_->table->RecordLsn(move.lsn);
    // Careful-writing order (§6.1): b (which now holds a's old image) must
    // not reach disk before a is durable. The edge goes in BEFORE either
    // page's bytes change — once b's post-swap image exists, any flusher
    // may pick it up, and without the edge it could reach disk with a
    // still stale, which is exactly the state swap redo refuses to repair.
    bp->AddWriteOrder(a, b);
    {
      std::unique_lock<PageLatch> la(page_a->latch());
      WriteAllCells(page_a, cells_b);
      page_a->set_page_lsn(move.lsn);
    }
    {
      std::unique_lock<PageLatch> lb(page_b->latch());
      WriteAllCells(page_b, cells_a);
      page_b->set_page_lsn(move.lsn);
    }
    bp->UnpinPage(a, true);
    bp->UnpinPage(b, true);
    ctx_->stats->records_moved += cells_a.size() + cells_b.size();
    return Status::OK();
  };
  if (!skip_swap) {
    s = do_swap();
    if (!s.ok()) {
      release_all();
      return s;
    }
  }

  // --- upgrade base locks to X ---------------------------------------------------
  Status up = locks->Lock(id, PageLock(base_a), LockMode::kX);
  if (up.ok() && base_b != base_a) {
    up = locks->Lock(id, PageLock(base_b), LockMode::kX);
  }
  if (!up.ok()) {
    // Undo-at-deadlock: a swap is self-inverse.
    do_swap();
    BufferPool::ApplyScope apply_scope(bp);
    LogRecord end;
    end.type = LogType::kReorgEnd;
    end.txn_id = id;
    end.unit = unit;
    end.prev_lsn = ctx_->table->recent_lsn();
    end.key = ctx_->table->largest_finished_key();
    ctx_->log->AppendAndFlush(&end);
    ctx_->table->EndUnit(end.key);
    release_all();
    return Status::Deadlock("swap base upgrade deadlock");
  }

  // --- MODIFY the base pointers ----------------------------------------------------
  // Locate both entries FIRST, then flip them — flipping one at a time
  // would make the second lookup find the freshly flipped entry when both
  // leaves share a base page.
  auto set_child = [&](PageId base, Page* bpg, int slot,
                       PageId to) {
    InternalNode node(bpg);
    std::string sep = node.KeyAt(slot).ToString();
    PageId from = node.ChildAt(slot);
    LogRecord mod;
    mod.type = LogType::kReorgModify;
    mod.txn_id = id;
    mod.unit = unit;
    mod.prev_lsn = ctx_->table->recent_lsn();
    mod.page_id = base;
    mod.key = sep;
    mod.value = EncodePid(from);
    mod.key2 = sep;
    mod.value2 = EncodePid(to);
    ctx_->log->Append(&mod);
    ctx_->table->RecordLsn(mod.lsn);
    node.SetChildAt(slot, to);
    bpg->set_page_lsn(mod.lsn);
  };
  {
    Page* pg_a;
    s = bp->FetchPage(base_a, &pg_a);
    if (!s.ok()) {
      release_all();
      return s;
    }
    Page* pg_b = pg_a;
    if (base_b != base_a) {
      s = bp->FetchPage(base_b, &pg_b);
      if (!s.ok()) {
        bp->UnpinPage(base_a, false);
        release_all();
        return s;
      }
    }
    int slot_a, slot_b;
    BufferPool::ApplyScope apply_scope(bp);
    {
      std::unique_lock<PageLatch> la(pg_a->latch());
      std::unique_lock<PageLatch> lb_maybe(
          base_b != base_a ? pg_b->latch() : pg_a->latch(),
          std::defer_lock);
      if (base_b != base_a) lb_maybe.lock();
      InternalNode na(pg_a);
      InternalNode nb(pg_b);
      slot_a = na.FindChildSlot(a);
      slot_b = nb.FindChildSlot(b);
      // On resume the entries may already be flipped; only flip when both
      // are in their pre-swap orientation.
      if (slot_a >= 0) set_child(base_a, pg_a, slot_a, b);
      if (slot_b >= 0) set_child(base_b, pg_b, slot_b, a);
    }
    bp->UnpinPage(base_a, true);
    if (base_b != base_a) bp->UnpinPage(base_b, true);
  }

  // --- side pointers -----------------------------------------------------------------
  if (ctx_->tree->options().side_pointers != SidePointerMode::kNone) {
    auto set_links = [&](PageId pid, PageId prev, PageId next) {
      Page* pg;
      if (!bp->FetchPage(pid, &pg).ok()) return;
      BufferPool::ApplyScope apply_scope(bp);
      LogRecord link;
      link.type = LogType::kLinkPage;
      link.txn_id = id;
      link.unit = unit;
      link.prev_lsn = ctx_->table->recent_lsn();
      link.page_id = pid;
      link.page_id2 = prev;
      link.page_id3 = next;
      ctx_->log->Append(&link);
      ctx_->table->RecordLsn(link.lsn);
      std::unique_lock<PageLatch> latch(pg->latch());
      pg->SetPrev(prev);
      pg->SetNext(next);
      pg->set_page_lsn(link.lsn);
      bp->UnpinPage(pid, true);
    };
    auto swap_ab = [&](PageId x) { return x == a ? b : (x == b ? a : x); };
    // Page b now sits at a's key position and vice versa.
    set_links(b, swap_ab(pa), swap_ab(na));
    set_links(a, swap_ab(pb), swap_ab(nb));
    if (pa != kInvalidPageId && pa != a && pa != b) {
      Page* pg;
      if (bp->FetchPage(pa, &pg).ok()) {
        PageId keep_prev = pg->prev();
        bp->UnpinPage(pa, false);
        set_links(pa, keep_prev, b);
      }
    }
    if (na != kInvalidPageId && na != a && na != b) {
      Page* pg;
      if (bp->FetchPage(na, &pg).ok()) {
        PageId keep_next = pg->next();
        bp->UnpinPage(na, false);
        set_links(na, b, keep_next);
      }
    }
    if (pb != kInvalidPageId && pb != a && pb != b) {
      Page* pg;
      if (bp->FetchPage(pb, &pg).ok()) {
        PageId keep_prev = pg->prev();
        bp->UnpinPage(pb, false);
        set_links(pb, keep_prev, a);
      }
    }
    if (nb != kInvalidPageId && nb != a && nb != b) {
      Page* pg;
      if (bp->FetchPage(nb, &pg).ok()) {
        PageId keep_next = pg->next();
        bp->UnpinPage(nb, false);
        set_links(nb, a, keep_next);
      }
    }
  }

  // --- END ------------------------------------------------------------------------------
  BufferPool::ApplyScope end_scope(bp);
  LogRecord end;
  end.type = LogType::kReorgEnd;
  end.txn_id = id;
  end.unit = unit;
  end.prev_lsn = ctx_->table->recent_lsn();
  end.key = ctx_->table->largest_finished_key();
  ctx_->log->AppendAndFlush(&end);
  ctx_->table->EndUnit(end.key);
  ++ctx_->stats->units;
  ++ctx_->stats->swap_units;
  if (resume) ++ctx_->stats->units_resumed;

  release_all();
  return Status::OK();
}

}  // namespace soreorg
