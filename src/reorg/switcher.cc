#include "src/reorg/switcher.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/txn/lock_invariants.h"

namespace soreorg {

namespace {

// Per-instance default jitter seed (satellite fix: every switcher built with
// default options used to share one constant and back off in lockstep).
uint64_t DeriveSeed(const Switcher* self) {
  static std::atomic<uint64_t> counter{0};
  uint64_t z = counter.fetch_add(1) * 0x9e3779b97f4a7c15ull;
  z ^= reinterpret_cast<uintptr_t>(self);
  return z ^ 0x5157c0ffeeull;
}

}  // namespace

Switcher::Switcher(ReorgContext* ctx, SideFile* side_file,
                   SwitcherOptions options)
    : ctx_(ctx),
      side_file_(side_file),
      options_(options),
      jitter_(options.backoff_seed ? options.backoff_seed : DeriveSeed(this)) {}

Status Switcher::AcquireSideX(SwitchStats* stats) {
  // The reorganizer always loses deadlocks (§4.1), so retry until granted —
  // with jittered exponential backoff: an immediate retry re-enters the
  // exact conflict window that just killed us and, on a busy system, turns
  // the acquire into a hot spin that starves the very updaters it is
  // waiting on. Re-acquire after a step-aside cannot starve either: fresh
  // recorders use TryLock, which respects the FIFO queue and will not
  // overtake our waiting X request.
  Status s;
  int64_t delay_us = std::max<int64_t>(1, options_.side_lock_backoff_min_us);
  for (int attempt = 0;; ++attempt) {
    s = ctx_->locks->Lock(kReorgTxnId, SideFileLock(), LockMode::kX);
    if (s.ok()) return s;
    if ((!s.IsDeadlock() && !s.IsBusy()) ||
        attempt >= options_.max_side_lock_attempts) {
      return s;
    }
    ++stats->side_lock_retries;
    int64_t span = delay_us / 2;
    int64_t sleep_us = span + static_cast<int64_t>(jitter_.Uniform(
                                  static_cast<uint64_t>(span + 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    delay_us = std::min(delay_us * 2, options_.side_lock_backoff_max_us);
  }
}

Status Switcher::Switch(TreeBuilder* builder, SwitchStats* stats) {
  const TxnId id = kReorgTxnId;
  LockManager* locks = ctx_->locks;
  BTree* tree = ctx_->tree;
  LockInvariantChecker* checker = locks->invariant_checker();
  auto t0 = std::chrono::steady_clock::now();

  // 1. X lock the side file: blocks new base-page updates on either tree
  // and waits out every transaction holding a side-file IX lock.
  Status s = AcquireSideX(stats);
  if (!s.ok()) return s;
  auto unlock_side = [&]() { locks->Unlock(id, SideFileLock()); };

  int step_asides = 0;

  // The drain can itself lose a deadlock: an updater parked on the
  // side-file lock still holds the page locks BaseApply needs — §7.4's
  // cycle one level down, with the same always-victimized reorganizer, so
  // every BaseApply retry re-forms it until the retry budget returns Busy.
  // The remedy is the same step-aside maneuver as step 4: release the side
  // X, let the parked writer record and retire, re-acquire, re-drain the
  // (idempotent) tail. Returns with the side X held unless *side_held says
  // otherwise.
  auto drain_stepping_aside = [&](bool* side_held) -> Status {
    *side_held = true;
    for (;;) {
      Status ds = builder->DrainSideFile();
      if (ds.ok()) return ds;
      if (!ds.IsBusy() && !ds.IsDeadlock()) return ds;
      if (!options_.enable_step_aside ||
          step_asides >= options_.max_step_asides) {
        return ds;
      }
      ++step_asides;
      ++stats->step_asides;
      uint64_t recorded_before = side_file_->total_recorded();
      unlock_side();
      if (options_.on_step_aside) options_.on_step_aside();
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options_.step_aside_wait_ms);
      while (side_file_->total_recorded() == recorded_before &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      Status as = AcquireSideX(stats);
      if (!as.ok()) {
        *side_held = false;
        return as;
      }
    }
  };

  // 2. Final catch-up under the X lock.
  uint64_t before = ctx_->stats->side_entries_applied;
  {
    bool side_held = true;
    s = drain_stepping_aside(&side_held);
    if (!s.ok()) {
      // Nothing has flipped; the reorganizer's failure cleanup dismantles
      // the pass-3 state.
      if (side_held) unlock_side();
      return s;
    }
  }
  stats->final_catchup_entries = ctx_->stats->side_entries_applied - before;

  // 3. Flip the root pointer; the new tree gets a new lock name.
  uint64_t old_inc = tree->incarnation();
  PageId old_root = tree->root();
  BTree* new_tree = builder->new_tree();
  s = tree->SwitchRoot(new_tree->root(), new_tree->height(), old_inc + 1);
  if (!s.ok()) {
    unlock_side();
    return s;
  }
  stats->root_flipped = true;
  if (checker) checker->NoteSwitchEnter(old_inc);

  // Post-flip failures roll FORWARD: the new tree is live and consistent
  // (the root record is durable, every side entry either drained or will
  // drain below), so the only sane terminal state is "switch finished, old
  // upper levels leaked". Leaving the reorg bit set and the hooks installed
  // — what the old code did — strands every future base update in a side
  // file nobody will ever drain. Must be called with the side-file X held;
  // releases it.
  auto roll_forward = [&]() {
    builder->DrainSideFile();  // best effort; entries are idempotent anyway
    side_file_->Close();
    tree->set_reorg_bit(false);
    tree->set_base_update_hook(nullptr);
    tree->set_base_update_cancel_hook(nullptr);
    ctx_->table->set_pass3(false, Slice(), kInvalidPageId);
    std::vector<PageId> leaked;
    if (tree->CollectInternalPages(old_root, &leaked).ok()) {
      stats->old_pages_leaked = leaked.size();
    }
    if (checker) checker->NoteSwitchExit();
    unlock_side();
    stats->rolled_forward = true;
  };

  // 4. Drain transactions still using the old tree: X on the old tree lock.
  // We keep the side-file X lock across the acquisition, because base-page
  // updates on the new tree would make the old tree's leaf addresses
  // obsolete for in-flight old-tree searches (§7.4). When the wait times
  // out or loses a deadlock, step aside (see the header): release the side
  // X, let a parked updater retire, re-acquire, drain the delta, retry.
  int rounds = 0;
  for (;;) {
    bool force = step_asides < options_.force_step_asides;
    if (!force) {
      s = locks->Lock(id, TreeLock(old_inc), LockMode::kX,
                      options_.old_tree_timeout_ms);
      if (s.ok()) break;
      if (!s.IsTimedOut() && !s.IsDeadlock()) {
        roll_forward();
        return s;
      }
      ++stats->old_tree_wait_rounds;
      if (++rounds >= options_.max_wait_rounds) {
        roll_forward();
        return Status::TimedOut("old-tree transactions did not drain");
      }
      if (!options_.enable_step_aside) continue;
      if (step_asides >= options_.max_step_asides) {
        roll_forward();
        return Status::TimedOut("step-aside budget exhausted");
      }
    }

    // Step aside. Capture the side-file growth baseline BEFORE releasing
    // the X lock so a fast updater's recording cannot be missed.
    ++step_asides;
    ++stats->step_asides;
    uint64_t recorded_before = side_file_->total_recorded();
    unlock_side();
    if (options_.on_step_aside) options_.on_step_aside();

    // A growth in total_recorded() means a previously parked updater got
    // its entry in — i.e. one old-tree IX holder is now on its way to
    // commit. The deadline covers pure readers (IS holders), which block
    // the old-tree X without ever touching the side file.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.step_aside_wait_ms);
    while (side_file_->total_recorded() == recorded_before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    s = AcquireSideX(stats);
    if (!s.ok()) {
      // Degenerate: the side lock never came back. Dismantle the pass-3
      // state without it — Close() first, so the worst case is a benign
      // already-recorded entry, never a new one.
      side_file_->Close();
      tree->set_reorg_bit(false);
      tree->set_base_update_hook(nullptr);
      tree->set_base_update_cancel_hook(nullptr);
      ctx_->table->set_pass3(false, Slice(), kInvalidPageId);
      if (checker) checker->NoteSwitchExit();
      stats->rolled_forward = true;
      return s;
    }

    // Drain the delta recorded during the window, stepping aside again if
    // the drain itself deadlocks against a newly parked writer. Idempotent:
    // entries the redirect path already applied verify as no-ops.
    uint64_t applied_before = ctx_->stats->side_entries_applied;
    bool side_held = true;
    s = drain_stepping_aside(&side_held);
    if (!s.ok()) {
      if (!side_held) {
        side_file_->Close();
        tree->set_reorg_bit(false);
        tree->set_base_update_hook(nullptr);
        tree->set_base_update_cancel_hook(nullptr);
        ctx_->table->set_pass3(false, Slice(), kInvalidPageId);
        if (checker) checker->NoteSwitchExit();
        stats->rolled_forward = true;
        return s;
      }
      roll_forward();
      return s;
    }
    stats->step_aside_entries +=
        ctx_->stats->side_entries_applied - applied_before;
  }

  // 5. Discard the old upper levels and reclaim the space. Failure here is
  // not silent (the old code dropped it on the floor): it is surfaced in
  // the stats and logged, but does not fail the switch — both trees are
  // intact, only the old internal pages leak.
  std::vector<PageId> old_internals;
  s = tree->CollectInternalPages(old_root, &old_internals);
  if (s.ok()) {
    BufferPool::ApplyScope apply_scope(ctx_->bp);
    for (PageId p : old_internals) {
      LogRecord de;
      de.type = LogType::kDeallocPage;
      de.txn_id = id;
      de.page_id = p;
      ctx_->log->Append(&de);
      ctx_->bp->DeletePage(p);
      ++stats->old_pages_discarded;
    }
    ctx_->log->Flush();
  } else {
    stats->reclaim_failed = true;
    stats->reclaim_error = s.ToString();
    std::fprintf(stderr,
                 "switcher: old-tree reclaim failed (%s); internal pages of "
                 "root %u leaked\n",
                 stats->reclaim_error.c_str(), old_root);
  }

  // 6. Close the side file (no recorder can be in flight: we hold the
  // X lock), clear the reorganization bit and release everything.
  side_file_->Close();
  tree->set_reorg_bit(false);
  tree->set_base_update_hook(nullptr);
  tree->set_base_update_cancel_hook(nullptr);
  ctx_->table->set_pass3(false, Slice(), kInvalidPageId);
  locks->Unlock(id, TreeLock(old_inc));
  if (checker) checker->NoteSwitchExit();
  unlock_side();

  stats->switch_window_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return Status::OK();
}

}  // namespace soreorg
