#include "src/reorg/switcher.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/util/random.h"

namespace soreorg {

Switcher::Switcher(ReorgContext* ctx, SideFile* side_file,
                   SwitcherOptions options)
    : ctx_(ctx), side_file_(side_file), options_(options) {}

Status Switcher::Switch(TreeBuilder* builder, SwitchStats* stats) {
  const TxnId id = kReorgTxnId;
  LockManager* locks = ctx_->locks;
  BTree* tree = ctx_->tree;
  auto t0 = std::chrono::steady_clock::now();

  // 1. X lock the side file: blocks new base-page updates on either tree
  // and waits out every transaction holding a side-file IX lock. The
  // reorganizer always loses deadlocks (§4.1), so retry until granted —
  // with jittered exponential backoff: an immediate retry re-enters the
  // exact conflict window that just killed us and, on a busy system, turns
  // step 1 into a hot spin that starves the very updaters it is waiting on.
  Status s;
  Random jitter(options_.backoff_seed);
  int64_t delay_us = std::max<int64_t>(1, options_.side_lock_backoff_min_us);
  for (int attempt = 0;; ++attempt) {
    s = locks->Lock(id, SideFileLock(), LockMode::kX);
    if (s.ok()) break;
    if ((!s.IsDeadlock() && !s.IsBusy()) ||
        attempt >= options_.max_side_lock_attempts) {
      return s;
    }
    ++stats->side_lock_retries;
    int64_t span = delay_us / 2;
    int64_t sleep_us = span + static_cast<int64_t>(jitter.Uniform(
                                  static_cast<uint64_t>(span + 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    delay_us = std::min(delay_us * 2, options_.side_lock_backoff_max_us);
  }
  auto unlock_side = [&]() { locks->Unlock(id, SideFileLock()); };

  // 2. Final catch-up under the X lock.
  uint64_t before = ctx_->stats->side_entries_applied;
  s = builder->DrainSideFile();
  if (!s.ok()) {
    unlock_side();
    return s;
  }
  stats->final_catchup_entries = ctx_->stats->side_entries_applied - before;

  // 3. Flip the root pointer; the new tree gets a new lock name.
  uint64_t old_inc = tree->incarnation();
  PageId old_root = tree->root();
  BTree* new_tree = builder->new_tree();
  s = tree->SwitchRoot(new_tree->root(), new_tree->height(), old_inc + 1);
  if (!s.ok()) {
    unlock_side();
    return s;
  }

  // 4. Drain transactions still using the old tree: X on the old tree lock.
  // We keep the side-file X lock until this succeeds, because base-page
  // updates on the new tree would make the old tree's leaf addresses
  // obsolete for in-flight old-tree searches (§7.4).
  for (int round = 0; round < options_.max_wait_rounds; ++round) {
    s = locks->Lock(id, TreeLock(old_inc), LockMode::kX,
                    options_.old_tree_timeout_ms);
    if (s.ok()) break;
    if (!s.IsTimedOut() && !s.IsDeadlock()) {
      unlock_side();
      return s;
    }
    ++stats->old_tree_wait_rounds;
  }
  if (!s.ok()) {
    unlock_side();
    return Status::TimedOut("old-tree transactions did not drain");
  }

  // 5. Discard the old upper levels and reclaim the space.
  std::vector<PageId> old_internals;
  s = tree->CollectInternalPages(old_root, &old_internals);
  if (s.ok()) {
    for (PageId p : old_internals) {
      LogRecord de;
      de.type = LogType::kDeallocPage;
      de.txn_id = id;
      de.page_id = p;
      ctx_->log->Append(&de);
      ctx_->bp->DeletePage(p);
      ++stats->old_pages_discarded;
    }
    ctx_->log->Flush();
  }

  // 6. Clear the reorganization bit and release everything.
  tree->set_reorg_bit(false);
  tree->set_base_update_hook(nullptr);
  tree->set_base_update_cancel_hook(nullptr);
  ctx_->table->set_pass3(false, Slice(), kInvalidPageId);
  locks->Unlock(id, TreeLock(old_inc));
  unlock_side();

  stats->switch_window_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return Status::OK();
}

}  // namespace soreorg
