#include "src/reorg/side_file.h"

#include "src/util/coding.h"

namespace soreorg {

SideFile::SideFile(LockManager* locks, LogManager* log)
    : locks_(locks), log_(log) {}

Status SideFile::Record(Transaction* txn, BaseUpdateOp op, const Slice& key,
                        PageId leaf) {
  // IX on the table; held to end of transaction (the lock manager releases
  // it at commit/abort via ReleaseAll).
  Status s = locks_->TryLock(txn->id(), SideFileLock(), LockMode::kIX);
  if (!s.ok()) {
    // The switcher holds (or is converting to) X: wait it out with an
    // instant-duration IX, then tell the caller to retry on the new tree.
    s = locks_->LockInstant(txn->id(), SideFileLock(), LockMode::kIX);
    if (!s.ok()) return s;
    return Status::Busy("switch completed; retry on new tree");
  }
  {
    // closed_ flips only under the side-file X lock, which excludes our IX,
    // so this check cannot race with a concurrent Close(). It catches the
    // updater that captured the base-update hook just before the switch
    // dismantled it: recording now would leave a phantom entry with no
    // drain left to apply it.
    std::lock_guard<std::mutex> g(mu_);
    if (closed_) return Status::Busy("switch completed; retry on new tree");
  }
  s = locks_->Lock(txn->id(), SideKeyLock(key.ToString()), LockMode::kX);
  if (!s.ok()) return s;

  LogRecord rec;
  rec.type = LogType::kSideInsert;
  rec.txn_id = txn->id();
  rec.prev_lsn = txn->last_lsn();
  rec.unit_type = static_cast<uint8_t>(op);
  rec.key = key.ToString();
  rec.page_id = leaf;

  // Append and insert under one mutex hold: the checkpoint watermark
  // (last_lsn_) promises that entries_ reflects exactly the side records
  // up to it, which a gap between the append and the insert would break.
  std::lock_guard<std::mutex> g(mu_);
  s = log_->Append(&rec);
  if (!s.ok()) return s;
  txn->set_last_lsn(rec.lsn);
  entries_.push_back(SideEntry{op, key.ToString(), leaf, ++next_seq_});
  last_lsn_ = rec.lsn;
  ++total_recorded_;
  return Status::OK();
}

Status SideFile::PopFront(SideEntry* entry, bool* empty) {
  SideEntry e;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 64) {
      // Retryable: the front kept being cancelled/re-recorded under us.
      // Somebody else made progress each time, so the caller just retries.
      return Status::Busy("side-file front contended; retry");
    }
    {
      std::lock_guard<std::mutex> g(mu_);
      if (entries_.empty()) {
        *empty = true;
        return Status::OK();
      }
      e = entries_.front();
    }
    // Wait out the recording transaction: it holds an X record lock on the
    // entry's key until commit/abort, and may still cancel the entry.
    Status ls = locks_->Lock(kReorgTxnId, SideKeyLock(e.key), LockMode::kX);
    if (!ls.ok()) return ls;  // deadlock victim: caller retries
    locks_->Unlock(kReorgTxnId, SideKeyLock(e.key));
    std::lock_guard<std::mutex> g(mu_);
    if (entries_.empty()) {
      *empty = true;
      return Status::OK();
    }
    // The front may have been cancelled while we waited; re-verify by seq.
    // Field equality is not enough: a cancel + fresh insert of the same
    // (op, key, leaf) would pass while the new entry's transaction is still
    // in flight and could still cancel it (classic ABA).
    if (entries_.front().seq != e.seq) {
      continue;
    }
    // Log the application and pop under the same mutex hold so the
    // checkpoint watermark stays exact; on append failure the entry stays
    // queued (nothing was consumed) and the caller sees the error.
    LogRecord rec;
    rec.type = LogType::kSideApply;
    rec.txn_id = kReorgTxnId;
    rec.unit_type = static_cast<uint8_t>(e.op);
    rec.key = e.key;
    rec.page_id = e.leaf;
    Status s = log_->Append(&rec);
    if (!s.ok()) return s;
    last_lsn_ = rec.lsn;
    entries_.pop_front();
    break;
  }
  *empty = false;
  *entry = e;
  return Status::OK();
}

Status SideFile::Cancel(Transaction* txn, BaseUpdateOp op, const Slice& key,
                        PageId leaf) {
  std::lock_guard<std::mutex> g(mu_);
  auto found = entries_.rend();
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->op == op && it->key == key.view() && it->leaf == leaf) {
      found = it;
      break;
    }
  }
  if (found == entries_.rend()) return Status::OK();
  // Log first, erase second, all under the mutex: the erase must never be
  // visible (to a checkpoint's Serialize) without its record accounted in
  // the watermark, and an unlogged erase would resurrect as a phantom when
  // recovery replays the original kSideInsert.
  LogRecord rec;
  rec.type = LogType::kSideCancel;
  rec.txn_id = txn->id();
  rec.prev_lsn = txn->last_lsn();
  rec.unit_type = static_cast<uint8_t>(op);
  rec.key = key.ToString();
  rec.page_id = leaf;
  Status s = log_->Append(&rec);
  if (!s.ok()) return s;
  txn->set_last_lsn(rec.lsn);
  last_lsn_ = rec.lsn;
  entries_.erase(std::next(found).base());
  return Status::OK();
}

void SideFile::RedoCancel(BaseUpdateOp op, const Slice& key, PageId leaf) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->op == op && it->key == key.view() && it->leaf == leaf) {
      entries_.erase(std::next(it).base());
      return;
    }
  }
}

void SideFile::ReAdd(BaseUpdateOp op, const Slice& key, PageId leaf) {
  std::lock_guard<std::mutex> g(mu_);
  entries_.push_back(SideEntry{op, key.ToString(), leaf, ++next_seq_});
}

void SideFile::UndoInsert(BaseUpdateOp op, const Slice& key) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->op == op && it->key == key.view()) {
      entries_.erase(std::next(it).base());
      return;
    }
  }
}

void SideFile::Open() {
  std::lock_guard<std::mutex> g(mu_);
  closed_ = false;
}

void SideFile::Close() {
  std::lock_guard<std::mutex> g(mu_);
  closed_ = true;
}

bool SideFile::closed() const {
  std::lock_guard<std::mutex> g(mu_);
  return closed_;
}

size_t SideFile::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.size();
}

uint64_t SideFile::total_recorded() const {
  std::lock_guard<std::mutex> g(mu_);
  return total_recorded_;
}

void SideFile::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  entries_.clear();
}

std::string SideFile::Serialize() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out;
  PutVarint64(&out, last_lsn_);
  PutVarint32(&out, static_cast<uint32_t>(entries_.size()));
  for (const SideEntry& e : entries_) {
    out.push_back(static_cast<char>(e.op));
    PutLengthPrefixedSlice(&out, e.key);
    PutFixed32(&out, e.leaf);
  }
  return out;
}

Status SideFile::Restore(const Slice& image) {
  Slice in = image;
  uint64_t watermark;
  if (!GetVarint64(&in, &watermark)) {
    return Status::Corruption("side file image");
  }
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("side file image");
  std::deque<SideEntry> entries;
  for (uint32_t i = 0; i < n; ++i) {
    if (in.empty()) return Status::Corruption("side file image");
    SideEntry e;
    e.op = static_cast<BaseUpdateOp>(in[0]);
    in.remove_prefix(1);
    Slice k;
    if (!GetLengthPrefixedSlice(&in, &k)) {
      return Status::Corruption("side file image");
    }
    e.key = k.ToString();
    uint32_t pid;
    if (!GetFixed32(&in, &pid)) return Status::Corruption("side file image");
    e.leaf = pid;
    entries.push_back(std::move(e));
  }
  std::lock_guard<std::mutex> g(mu_);
  // The checkpoint image carries no seqs (they are process-local); re-tag.
  for (SideEntry& e : entries) e.seq = ++next_seq_;
  entries_ = std::move(entries);
  restored_lsn_ = watermark;
  last_lsn_ = watermark;
  return Status::OK();
}

Lsn SideFile::restored_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return restored_lsn_;
}

void SideFile::RedoInsert(BaseUpdateOp op, const Slice& key, PageId leaf) {
  std::lock_guard<std::mutex> g(mu_);
  entries_.push_back(SideEntry{op, key.ToString(), leaf, ++next_seq_});
}

void SideFile::RedoApply() {
  std::lock_guard<std::mutex> g(mu_);
  if (!entries_.empty()) entries_.pop_front();
}

void SideFile::PruneBeyond(const Slice& stable_key) {
  std::lock_guard<std::mutex> g(mu_);
  std::deque<SideEntry> kept;
  for (const SideEntry& e : entries_) {
    if (Slice(e.key).compare(stable_key) <= 0) kept.push_back(e);
  }
  entries_ = std::move(kept);
}

}  // namespace soreorg
