// Shared state threaded through the reorganization passes.

#ifndef SOREORG_REORG_CONTEXT_H_
#define SOREORG_REORG_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "src/btree/btree.h"
#include "src/reorg/reorg_log.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/txn/lock_manager.h"
#include "src/wal/log_manager.h"

namespace soreorg {

struct ReorgStats {
  uint64_t units = 0;
  uint64_t compact_units = 0;   // in-place compactions (pass 1)
  uint64_t move_units = 0;      // copy-switch to an empty page (pass 1 + 2)
  uint64_t swap_units = 0;      // pairwise swaps (pass 2)
  uint64_t records_moved = 0;
  uint64_t pages_freed = 0;
  uint64_t unit_retries = 0;    // deadlock-victim retries (§4.1, §5.2)
  uint64_t side_entries_applied = 0;
  /// Entries skipped by the drain's seq high-water mark (already applied in
  /// an earlier catch-up round; §7.4 step-aside re-drains).
  uint64_t side_duplicates_skipped = 0;
  /// Entries whose application found the base change already present — the
  /// recording updater also applied it directly after a Busy redirect — and
  /// verified the no-op instead of failing on the duplicate separator.
  uint64_t side_reapplied_noops = 0;
  uint64_t stable_points = 0;
  uint64_t units_resumed = 0;   // forward-recovery completions
};

struct ReorgContext {
  BTree* tree = nullptr;
  BufferPool* bp = nullptr;
  LogManager* log = nullptr;
  LockManager* locks = nullptr;
  DiskManager* disk = nullptr;
  ReorgTable* table = nullptr;
  ReorgStats* stats = nullptr;

  /// §5: with careful writing enforced by the buffer pool, MOVE records
  /// carry keys only; otherwise full record bodies.
  bool careful_writing = true;

  /// Monotonically increasing reorganization unit number.
  std::atomic<uint32_t> next_unit{1};
};

}  // namespace soreorg

#endif  // SOREORG_REORG_CONTEXT_H_
