#include "src/reorg/tree_builder.h"

#include <chrono>
#include <thread>

namespace soreorg {

TreeBuilder::TreeBuilder(ReorgContext* ctx, SideFile* side_file,
                         TreeBuilderOptions options)
    : ctx_(ctx),
      side_file_(side_file),
      options_(options),
      builder_(ctx->bp, options.internal_fill) {
  // §7.3: "space allocation ... is also logged"; allocations after the last
  // force-write are reclaimed at recovery. Logging happens inside the
  // builder, before the new page is formatted, so a recycled page id gets
  // its LSN stamp before its unlogged image can ever reach disk.
  builder_.set_alloc_logger([this](PageId pid, Lsn* stamp) {
    LogRecord alloc;
    alloc.type = LogType::kAllocPage;
    alloc.txn_id = kReorgTxnId;
    alloc.page_id = pid;
    alloc.flags = 1;  // pass-3 allocation (reclaimable past the stable key)
    Status s = ctx_->log->Append(&alloc);
    if (!s.ok()) return s;
    *stamp = alloc.lsn;
    ++pages_since_stable_;
    return Status::OK();
  });
}

std::string TreeBuilder::CurrentKey() const {
  std::lock_guard<std::mutex> g(mu_);
  return current_key_;
}

bool TreeBuilder::all_read() const {
  std::lock_guard<std::mutex> g(mu_);
  return all_read_;
}

Status TreeBuilder::ReadBasePage(PageId pid) {
  // One S lock at a time (§7.5) — this is what keeps readers flowing and
  // blocks only updaters that would change this very base page.
  Status s = ctx_->locks->Lock(kReorgTxnId, PageLock(pid), LockMode::kS);
  if (s.IsDeadlock()) return Status::Busy("base page lock lost; re-find");
  if (!s.ok()) return s;
  Page* page;
  s = ctx_->bp->FetchPage(pid, &page);
  if (!s.ok()) {
    ctx_->locks->Unlock(kReorgTxnId, PageLock(pid));
    return s;
  }
  std::vector<std::pair<std::string, PageId>> entries;
  std::string low_mark;
  {
    std::shared_lock<PageLatch> latch(page->latch());
    if (page->type() != PageType::kInternal || page->level() != 1) {
      ctx_->bp->UnpinPage(pid, false);
      ctx_->locks->Unlock(kReorgTxnId, PageLock(pid));
      return Status::Busy("base page changed type");
    }
    InternalNode node(page);
    low_mark = node.LowMark().ToString();
    for (int i = 0; i < node.Count(); ++i) {
      entries.emplace_back(node.KeyAt(i).ToString(), node.ChildAt(i));
    }
  }
  ctx_->bp->UnpinPage(pid, false);

  for (const auto& [sep, child] : entries) {
    s = builder_.Add(sep, child);
    if (!s.ok()) {
      ctx_->locks->Unlock(kReorgTxnId, PageLock(pid));
      return s;
    }
  }

  // Advance CK to Get_Next(CK) *before* giving up the S lock (§7.1).
  std::string next_lm;
  PageId next_pid;
  Status next = ctx_->tree->NextBasePage(kReorgTxnId, low_mark, &next_lm,
                                         &next_pid);
  if (next.IsDeadlock() || next.IsBusy()) {
    // The reorganizer lost a deadlock against an updater's X-coupled
    // descent. Release this base page's S lock (the updater proceeds) and
    // have the caller re-find and RE-READ the page by CK: updates made
    // while unlocked have keys >= CK, and the builder skips duplicates, so
    // the re-read is safe and complete.
    ctx_->locks->Unlock(kReorgTxnId, PageLock(pid));
    return Status::Busy("Get_Next lost a deadlock; re-read the page");
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    if (next.ok()) {
      current_key_ = next_lm;
    } else {
      all_read_ = true;
    }
  }
  ctx_->locks->Unlock(kReorgTxnId, PageLock(pid));

  if (options_.base_page_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.base_page_delay_ms));
  }

  if (pages_since_stable_ >= options_.stable_every) {
    s = StablePoint();
    if (!s.ok()) return s;
  }

  if (next.IsNotFound()) return Status::NotFound("all base pages read");
  if (!next.ok()) return next;
  // Tail-call into the next page is done by the caller loop.
  next_base_ = next_pid;
  return Status::OK();
}

Status TreeBuilder::StablePoint() {
  std::vector<PageId> force = builder_.TakeCompletedPages();
  for (PageId p : builder_.OpenPages()) force.push_back(p);
  Status s = ctx_->bp->ForcePages(force);
  if (!s.ok()) return s;

  // Apply scope: the stable-key record and the table's pass-3 state must
  // land on the same side of a concurrent checkpoint's redo floor.
  BufferPool::ApplyScope apply_scope(ctx_->bp);
  LogRecord rec;
  rec.type = LogType::kStableKey;
  rec.txn_id = kReorgTxnId;
  rec.key = CurrentKey();
  rec.page_id = builder_.TopPage();
  s = ctx_->log->AppendAndFlush(&rec);
  if (!s.ok()) return s;

  ctx_->table->set_pass3(true, rec.key, builder_.TopPage());
  pages_since_stable_ = 0;
  ++ctx_->stats->stable_points;
  return Status::OK();
}

Status TreeBuilder::Run(const Slice& resume_key, PageId resume_top) {
  // Re-reads of a base page (deadlock back-off, crash resume) must be
  // idempotent.
  builder_.set_skip_duplicates(true);
  Status s;
  PageId start_pid;
  if (resume_top != kInvalidPageId && !resume_key.empty()) {
    // §7.3 restart: rebuild builder state from the durable partial tree and
    // continue reading at the stable key.
    s = builder_.RestoreSpine(resume_top, resume_key);
    if (!s.ok()) return s;
    {
      std::lock_guard<std::mutex> g(mu_);
      current_key_ = resume_key.ToString();
    }
    PageGuard guard;
    s = ctx_->tree->LockBasePage(kReorgTxnId, resume_key, LockMode::kS,
                                 &start_pid, &guard);
    if (!s.ok()) return s;
    guard.Release();
    ctx_->locks->Unlock(kReorgTxnId, PageLock(start_pid));
  } else {
    std::string lm;
    s = ctx_->tree->FirstBasePage(kReorgTxnId, &lm, &start_pid);
    if (!s.ok()) return s;
    std::lock_guard<std::mutex> g(mu_);
    current_key_ = lm;
  }

  PageId pid = start_pid;
  while (true) {
    next_base_ = kInvalidPageId;
    s = ReadBasePage(pid);
    if (s.IsNotFound()) break;  // all read
    if (s.IsBusy() || s.IsDeadlock()) {
      // The page changed under us (it split), or Get_Next backed off a
      // deadlock: re-find the page by CK and re-read it.
      PageGuard guard;
      Status f = ctx_->tree->LockBasePage(kReorgTxnId, CurrentKey(),
                                          LockMode::kS, &pid, &guard);
      if (f.IsDeadlock() || f.IsBusy()) continue;
      if (!f.ok()) return f;
      guard.Release();
      ctx_->locks->Unlock(kReorgTxnId, PageLock(pid));
      continue;
    }
    if (!s.ok()) return s;
    pid = next_base_;
  }

  // Close the build.
  PageId new_root;
  uint8_t new_height;
  s = builder_.Finish(&new_root, &new_height);
  if (!s.ok()) return s;
  s = StablePoint();  // final force + stable key
  if (!s.ok()) return s;

  new_tree_ = std::make_unique<BTree>(ctx_->bp, ctx_->log, ctx_->locks,
                                      ctx_->tree->options());
  new_tree_->Attach(new_root, new_height, ctx_->tree->incarnation() + 1);

  // Catch-up: apply side-file entries until it drains (§7.1 end).
  return DrainSideFile();
}

Status TreeBuilder::ApplyEntry(const SideEntry& entry) {
  if (entry.seq != 0 && entry.seq <= applied_seq_hwm_) {
    // Already applied in an earlier catch-up round; re-application after a
    // step-aside re-drain (§7.4) must be a no-op.
    ++ctx_->stats->side_duplicates_skipped;
    return Status::OK();
  }
  bool already_applied = false;
  Status s = new_tree_->BaseApply(&reorg_txn_, entry.op, entry.key,
                                  entry.leaf, &already_applied);
  if (s.IsNotFound()) {
    // Deleting an absent separator: the change is already in effect.
    s = Status::OK();
    already_applied = true;
  }
  if (!s.ok()) return s;
  if (entry.seq > applied_seq_hwm_) applied_seq_hwm_ = entry.seq;
  if (already_applied) ++ctx_->stats->side_reapplied_noops;
  ++ctx_->stats->side_entries_applied;
  return Status::OK();
}

Status TreeBuilder::DrainSideFile() {
  int deadlock_retries = 0;
  while (true) {
    SideEntry entry;
    bool empty = false;
    Status s = side_file_->PopFront(&entry, &empty);
    if (s.IsDeadlock() || s.IsBusy()) {
      // The reorganizer always loses deadlocks (§4.1): back off briefly and
      // keep draining.
      if (++deadlock_retries > 1024) return s;
      continue;
    }
    if (!s.ok()) return s;
    if (empty) return Status::OK();
    // A successful pop is progress: reset the retry budget so a long drain
    // under sustained updater churn cannot accumulate scattered retries
    // into a spurious hard failure.
    deadlock_retries = 0;
    s = ApplyEntry(entry);
    if (!s.ok()) return s;
  }
}

}  // namespace soreorg
