#include "src/reorg/reorg_log.h"

#include "src/util/coding.h"

namespace soreorg {

std::string EncodeBeginPages(const std::vector<PageId>& base_pages,
                             const std::vector<PageId>& leaf_pages) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(base_pages.size()));
  for (PageId p : base_pages) PutFixed32(&out, p);
  PutVarint32(&out, static_cast<uint32_t>(leaf_pages.size()));
  for (PageId p : leaf_pages) PutFixed32(&out, p);
  return out;
}

Status DecodeBeginPages(const Slice& payload, std::vector<PageId>* base_pages,
                        std::vector<PageId>* leaf_pages) {
  Slice in = payload;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("begin payload");
  base_pages->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t p;
    if (!GetFixed32(&in, &p)) return Status::Corruption("begin payload");
    base_pages->push_back(p);
  }
  if (!GetVarint32(&in, &n)) return Status::Corruption("begin payload");
  leaf_pages->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t p;
    if (!GetFixed32(&in, &p)) return Status::Corruption("begin payload");
    leaf_pages->push_back(p);
  }
  return Status::OK();
}

std::string EncodeMovedRecords(
    const std::vector<std::pair<std::string, std::string>>& records) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(records.size()));
  for (const auto& [k, v] : records) {
    PutLengthPrefixedSlice(&out, k);
    PutLengthPrefixedSlice(&out, v);
  }
  return out;
}

Status DecodeMovedRecords(
    const Slice& payload,
    std::vector<std::pair<std::string, std::string>>* records) {
  Slice in = payload;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("move payload");
  records->clear();
  for (uint32_t i = 0; i < n; ++i) {
    Slice k, v;
    if (!GetLengthPrefixedSlice(&in, &k) || !GetLengthPrefixedSlice(&in, &v)) {
      return Status::Corruption("move payload");
    }
    records->emplace_back(k.ToString(), v.ToString());
  }
  return Status::OK();
}

std::string EncodeMovedKeys(const std::vector<std::string>& keys) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(keys.size()));
  for (const std::string& k : keys) PutLengthPrefixedSlice(&out, k);
  return out;
}

Status DecodeMovedKeys(const Slice& payload, std::vector<std::string>* keys) {
  Slice in = payload;
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("move keys payload");
  keys->clear();
  for (uint32_t i = 0; i < n; ++i) {
    Slice k;
    if (!GetLengthPrefixedSlice(&in, &k)) {
      return Status::Corruption("move keys payload");
    }
    keys->push_back(k.ToString());
  }
  return Status::OK();
}

void ReorgTable::BeginUnit(uint32_t unit, Lsn begin_lsn) {
  std::lock_guard<std::mutex> g(mu_);
  state_.has_open_unit = true;
  state_.unit = unit;
  state_.begin_lsn = begin_lsn;
  state_.recent_lsn = begin_lsn;
}

void ReorgTable::RecordLsn(Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  state_.recent_lsn = lsn;
}

Lsn ReorgTable::recent_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return state_.recent_lsn;
}

void ReorgTable::EndUnit(const Slice& largest_key) {
  std::lock_guard<std::mutex> g(mu_);
  state_.has_open_unit = false;
  state_.begin_lsn = kInvalidLsn;
  state_.recent_lsn = kInvalidLsn;
  if (largest_key.compare(state_.largest_finished_key) > 0) {
    state_.largest_finished_key = largest_key.ToString();
  }
}

void ReorgTable::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  state_ = ReorgTableSnapshot{};
}

void ReorgTable::set_leaf_pass_active(bool b) {
  std::lock_guard<std::mutex> g(mu_);
  state_.leaf_pass_active = b;
}

void ReorgTable::set_pass3(bool reorg_bit, const Slice& stable_key,
                           PageId new_root) {
  std::lock_guard<std::mutex> g(mu_);
  state_.reorg_bit = reorg_bit;
  state_.stable_key = stable_key.ToString();
  state_.new_tree_root = new_root;
}

std::string ReorgTable::largest_finished_key() const {
  std::lock_guard<std::mutex> g(mu_);
  return state_.largest_finished_key;
}

bool ReorgTable::has_open_unit() const {
  std::lock_guard<std::mutex> g(mu_);
  return state_.has_open_unit;
}

uint32_t ReorgTable::open_unit() const {
  std::lock_guard<std::mutex> g(mu_);
  return state_.unit;
}

ReorgTableSnapshot ReorgTable::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  return state_;
}

void ReorgTable::Restore(const ReorgTableSnapshot& snap) {
  std::lock_guard<std::mutex> g(mu_);
  state_ = snap;
}

}  // namespace soreorg
