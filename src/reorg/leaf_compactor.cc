#include "src/reorg/leaf_compactor.h"

#include <algorithm>
#include <cassert>

#include "src/util/coding.h"

namespace soreorg {

namespace {

std::string EncodePid(PageId pid) {
  std::string s;
  PutFixed32(&s, pid);
  return s;
}

std::string Successor(const Slice& k) {
  std::string s = k.ToString();
  s.push_back('\0');
  return s;
}

/// Last (largest) key currently on a leaf page, or empty if none.
std::string LastKeyOf(Page* page) {
  LeafNode ln(page);
  int n = ln.Count();
  return n == 0 ? std::string() : ln.KeyAt(n - 1).ToString();
}

}  // namespace

LeafCompactor::LeafCompactor(ReorgContext* ctx, LeafCompactorOptions options)
    : ctx_(ctx), options_(options), ffs_(ctx->disk, options.free_space_policy) {}

Status LeafCompactor::Run() {
  ctx_->table->set_leaf_pass_active(true);
  std::string cursor = ctx_->table->largest_finished_key();
  Status s = ctx_->locks->Lock(kReorgTxnId, TreeLock(ctx_->tree->incarnation()),
                               LockMode::kIX);
  if (!s.ok()) return s;

  while (true) {
    PageId base_pid;
    std::vector<PageId> sources;
    PageId dest;
    s = PlanNextUnit(&cursor, &base_pid, &sources, &dest);
    if (s.IsNotFound()) break;         // pass complete
    if (s.IsNotSupported()) continue;  // nothing at this position; advanced
    if (!s.ok()) {
      ctx_->locks->Unlock(kReorgTxnId, TreeLock(ctx_->tree->incarnation()));
      ctx_->table->set_leaf_pass_active(false);
      return s;
    }
    uint32_t unit = ctx_->next_unit.fetch_add(1);
    if (options_.unit_wrapper) {
      s = options_.unit_wrapper([&]() {
        return ExecuteUnit(unit, base_pid, sources, dest, /*resume=*/false);
      });
    } else {
      s = ExecuteUnit(unit, base_pid, sources, dest, /*resume=*/false);
    }
    if (s.IsBusy() || s.IsDeadlock()) continue;  // replan from the cursor
    if (!s.ok()) {
      ctx_->locks->Unlock(kReorgTxnId, TreeLock(ctx_->tree->incarnation()));
      ctx_->table->set_leaf_pass_active(false);
      return s;
    }
    cursor = ctx_->table->largest_finished_key();
    if (dest != sources[0] || dest > last_finished_ ||
        last_finished_ == kInvalidPageId) {
      last_finished_ = dest;
    }
  }
  ctx_->locks->Unlock(kReorgTxnId, TreeLock(ctx_->tree->incarnation()));
  ctx_->table->set_leaf_pass_active(false);
  return Status::OK();
}

Status LeafCompactor::PlanNextUnit(std::string* cursor, PageId* base_pid,
                                   std::vector<PageId>* sources,
                                   PageId* dest) {
  std::string probe = Successor(*cursor);
  PageGuard base_guard;
  Status s = ctx_->tree->LockBasePage(kReorgTxnId, probe, LockMode::kS,
                                      base_pid, &base_guard);
  if (!s.ok()) return s;
  auto unlock_base = [&]() {
    base_guard.Release();
    ctx_->locks->Unlock(kReorgTxnId, PageLock(*base_pid));
  };

  InternalNode base(base_guard.get());
  int count = base.Count();
  int slot = base.FindChild(probe);

  sources->clear();
  size_t group_used = 0;
  size_t capacity = 0;
  std::string advance_key = *cursor;
  std::string last_sep;
  int scanned = slot;

  bool group_complete = false;
  for (; scanned < count && !group_complete; ++scanned) {
    PageId leaf_pid = base.ChildAt(scanned);
    last_sep = base.KeyAt(scanned).ToString();
    Page* leaf_page;
    s = ctx_->bp->FetchPage(leaf_pid, &leaf_page);
    if (!s.ok()) {
      unlock_base();
      return s;
    }
    size_t used;
    std::string last_key;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      used = ln.UsedSpace();
      capacity = ln.Capacity();
      last_key = LastKeyOf(leaf_page);
    }
    ctx_->bp->UnpinPage(leaf_pid, false);

    double limit = options_.target_fill * static_cast<double>(capacity);
    if (!sources->empty() &&
        (static_cast<double>(group_used + used) > limit ||
         sources->size() >= options_.max_group)) {
      if (sources->size() >= 2) {
        group_complete = true;  // execute this group
        break;
      }
      // A singleton "group" cannot be compacted with anything: skip past it
      // and start a fresh group at the current leaf.
      sources->clear();
      group_used = 0;
    }
    if (sources->empty() && static_cast<double>(used) > limit) {
      // Already full enough: nothing to gain; skip past it.
      advance_key = std::max(
          advance_key, last_key.empty() ? last_sep : last_key);
      continue;
    }
    sources->push_back(leaf_pid);
    group_used += used;
    advance_key =
        std::max(advance_key, last_key.empty() ? last_sep : last_key);
  }

  if (sources->size() >= 2) {
    unlock_base();
    PageId empty = ffs_.Find(last_finished_, (*sources)[0]);
    *dest = (empty != kInvalidPageId) ? empty : (*sources)[0];
    return Status::OK();
  }

  // Nothing compactable on the rest of this base page: hop to the next
  // base page (its low mark becomes the probe position) or finish.
  unlock_base();
  std::string lm;
  PageId next_base;
  std::string key_for_next = advance_key.empty() ? last_sep : advance_key;
  s = ctx_->tree->NextBasePage(kReorgTxnId, key_for_next, &lm, &next_base);
  if (s.IsNotFound()) {
    if (*cursor == advance_key) return Status::NotFound("pass complete");
    *cursor = advance_key;
    return Status::NotSupported("tail; advanced");
  }
  if (!s.ok()) return s;
  // Position the cursor at the next base page's low mark. The probe (cursor
  // successor) then lands on that page's first leaf; no records are skipped
  // because planning always takes whole leaves.
  *cursor = lm;
  return Status::NotSupported("advanced to next base page");
}

Status LeafCompactor::ExecuteUnit(uint32_t unit, PageId base_pid,
                                  const std::vector<PageId>& sources,
                                  PageId dest, bool resume) {
  for (int attempt = 0; attempt < options_.max_unit_retries; ++attempt) {
    Status s = ExecuteUnitOnce(unit, base_pid, sources, dest, resume);
    if (s.IsDeadlock()) {
      ++ctx_->stats->unit_retries;
      continue;
    }
    return s;
  }
  return Status::Deadlock("unit retries exhausted");
}

Status LeafCompactor::ExecuteUnitOnce(uint32_t unit, PageId base_pid,
                                      const std::vector<PageId>& sources,
                                      PageId dest, bool resume) {
  const TxnId id = kReorgTxnId;
  LockManager* locks = ctx_->locks;
  BufferPool* bp = ctx_->bp;
  const bool in_place = (dest == sources[0]);

  std::vector<LockName> held;
  auto lock = [&](const LockName& name, LockMode mode) -> Status {
    Status s = locks->Lock(id, name, mode);
    if (s.ok()) held.push_back(name);
    return s;
  };
  auto release_all = [&]() {
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
      locks->Unlock(id, *it);
    }
    held.clear();
  };

  // --- 1. R lock the base page, verify the plan is still valid ------------
  Status s = lock(PageLock(base_pid), LockMode::kR);
  if (!s.ok()) {
    release_all();
    return s;
  }
  Page* base_page;
  s = bp->FetchPage(base_pid, &base_page);
  if (!s.ok()) {
    release_all();
    return s;
  }
  {
    std::shared_lock<PageLatch> latch(base_page->latch());
    if (base_page->type() != PageType::kInternal || base_page->level() != 1) {
      bp->UnpinPage(base_pid, false);
      release_all();
      return Status::Busy("base page changed");
    }
    InternalNode base(base_page);
    for (PageId src : sources) {
      if (base.FindChildSlot(src) < 0 && !resume) {
        bp->UnpinPage(base_pid, false);
        release_all();
        return Status::Busy("source no longer under base page");
      }
    }
  }
  bp->UnpinPage(base_pid, false);

  // --- 2. RX lock the unit's leaves (and X the new destination) -----------
  for (PageId src : sources) {
    s = lock(PageLock(src), LockMode::kRX);
    if (!s.ok()) {
      release_all();
      return s;
    }
  }
  if (!in_place) {
    s = lock(PageLock(dest), LockMode::kX);
    if (!s.ok()) {
      release_all();
      return s;
    }
  }

  // Side-pointer neighbors (§4.3): prev of the first source, next of the
  // last source — RX when under the same base page, X otherwise.
  PageId prev_nb = kInvalidPageId, next_nb = kInvalidPageId;
  if (ctx_->tree->options().side_pointers != SidePointerMode::kNone) {
    Page* first_page;
    s = bp->FetchPage(sources.front(), &first_page);
    if (!s.ok()) {
      release_all();
      return s;
    }
    prev_nb = first_page->prev();
    bp->UnpinPage(sources.front(), false);
    Page* last_page;
    s = bp->FetchPage(sources.back(), &last_page);
    if (!s.ok()) {
      release_all();
      return s;
    }
    next_nb = last_page->next();
    bp->UnpinPage(sources.back(), false);

    for (PageId nb : {prev_nb, next_nb}) {
      if (nb == kInvalidPageId) continue;
      if (std::find(sources.begin(), sources.end(), nb) != sources.end()) {
        continue;  // internal to the unit
      }
      bool same_base;
      s = bp->FetchPage(base_pid, &base_page);
      if (!s.ok()) {
        release_all();
        return s;
      }
      {
        std::shared_lock<PageLatch> latch(base_page->latch());
        InternalNode base(base_page);
        same_base = base.FindChildSlot(nb) >= 0;
      }
      bp->UnpinPage(base_pid, false);
      s = lock(PageLock(nb), same_base ? LockMode::kRX : LockMode::kX);
      if (!s.ok()) {
        release_all();
        return s;
      }
    }
  }

  // Claim a new-place destination atomically BEFORE logging BEGIN: a
  // concurrent split may have taken the planned free page (AllocatePageAt
  // fails in that case and the unit is replanned). Only a resumed unit may
  // find its destination already claimed — by itself, before the crash.
  bool dest_claimed = false;
  if (!in_place) {
    Status claim = ctx_->disk->AllocatePageAt(dest);
    if (!claim.ok() && !resume) {
      release_all();
      return Status::Busy("destination page no longer free");
    }
    dest_claimed = claim.ok();
  }

  // --- 3. BEGIN ------------------------------------------------------------
  // Each logged step below (BEGIN through END) brackets its append and the
  // matching page/table effects in a BufferPool::ApplyScope so a concurrent
  // checkpoint's redo floor cannot land between a record and its effects.
  // The scopes stay per-step — never spanning a lock-manager wait such as
  // the base X upgrade — so the checkpoint is never stalled behind lock
  // contention.
  if (!resume) {
    BufferPool::ApplyScope apply_scope(bp);
    LogRecord begin;
    begin.type = LogType::kReorgBegin;
    begin.txn_id = id;
    begin.unit = unit;
    begin.unit_type = static_cast<uint8_t>(
        in_place ? ReorgUnitType::kCompact : ReorgUnitType::kMove);
    std::vector<PageId> leaf_list;
    leaf_list.push_back(dest);
    for (PageId p : sources) leaf_list.push_back(p);
    begin.payload = EncodeBeginPages({base_pid}, leaf_list);
    ctx_->log->Append(&begin);
    ctx_->table->BeginUnit(unit, begin.lsn);
  }

  // --- 4. Prepare the destination ------------------------------------------
  if (!in_place) {
    BufferPool::ApplyScope apply_scope(bp);
    if (dest_claimed) {
      LogRecord alloc;
      alloc.type = LogType::kAllocPage;
      alloc.txn_id = id;
      alloc.unit = unit;
      alloc.prev_lsn = ctx_->table->recent_lsn();
      alloc.page_id = dest;
      ctx_->log->Append(&alloc);
      ctx_->table->RecordLsn(alloc.lsn);
    }
    Page* dest_page;
    s = bp->NewFrameForExisting(dest, &dest_page);
    if (!s.ok()) {
      release_all();
      return s;
    }
    if (dest_page->type() != PageType::kLeaf) {
      std::unique_lock<PageLatch> latch(dest_page->latch());
      LeafNode::Format(dest_page, dest);
      LogRecord fmt;
      fmt.type = LogType::kFormatPage;
      fmt.txn_id = id;
      fmt.unit = unit;
      fmt.prev_lsn = ctx_->table->recent_lsn();
      fmt.page_id = dest;
      fmt.unit_type = static_cast<uint8_t>(PageType::kLeaf);
      ctx_->log->Append(&fmt);
      ctx_->table->RecordLsn(fmt.lsn);
      dest_page->set_page_lsn(fmt.lsn);
    }
    bp->UnpinPage(dest, true);
  }

  // --- 5. Move records, one source at a time -------------------------------
  struct DoneMove {
    PageId src;
    std::vector<std::pair<std::string, std::string>> records;
  };
  std::vector<DoneMove> done_moves;
  std::string unit_high_key;

  for (PageId src : sources) {
    if (src == dest) {
      Page* p;
      s = bp->FetchPage(src, &p);
      if (!s.ok()) break;
      unit_high_key = std::max(unit_high_key, LastKeyOf(p));
      bp->UnpinPage(src, false);
      continue;
    }
    Page* src_page;
    s = bp->FetchPage(src, &src_page);
    if (!s.ok()) break;
    std::vector<std::pair<std::string, std::string>> records;
    {
      std::shared_lock<PageLatch> latch(src_page->latch());
      LeafNode ln(src_page);
      for (int i = 0; i < ln.Count(); ++i) {
        records.emplace_back(ln.KeyAt(i).ToString(), ln.ValueAt(i).ToString());
      }
    }
    bp->UnpinPage(src, false);
    if (records.empty()) continue;  // nothing left (resume)

    Page* dest_page;
    s = bp->FetchPage(dest, &dest_page);
    if (!s.ok()) break;
    // Determine how many fit (planning raced with live inserts).
    size_t take = 0;
    {
      std::shared_lock<PageLatch> latch(dest_page->latch());
      LeafNode dl(dest_page);
      size_t free = dl.FreeSpace();
      for (const auto& [k, v] : records) {
        size_t need = LeafNode::CellSize(k, v);
        if (free < need) break;
        free -= need;
        ++take;
      }
    }
    if (take == 0) {
      bp->UnpinPage(dest, false);
      unit_high_key = std::max(unit_high_key,
                               records.back().first);
      continue;
    }
    std::vector<std::pair<std::string, std::string>> moved(
        records.begin(), records.begin() + take);

    // Log the MOVE (org first, then the physical change — the paper writes
    // the org-page record first; we use one record covering both pages).
    BufferPool::ApplyScope apply_scope(bp);
    LogRecord move;
    move.type = LogType::kReorgMove;
    move.txn_id = id;
    move.unit = unit;
    move.prev_lsn = ctx_->table->recent_lsn();
    move.page_id = src;
    move.page_id2 = dest;
    if (ctx_->careful_writing) {
      std::vector<std::string> keys;
      keys.reserve(moved.size());
      for (const auto& [k, v] : moved) keys.push_back(k);
      move.payload = EncodeMovedKeys(keys);
      move.flags = kMoveKeysOnly;
    } else {
      move.payload = EncodeMovedRecords(moved);
    }
    ctx_->log->Append(&move);
    ctx_->table->RecordLsn(move.lsn);

    if (ctx_->careful_writing) {
      // The source's old disk image must survive until the destination is
      // durable (that is what lets the MOVE record carry only keys).
      // Register the dependency BEFORE touching either page: once the
      // source's post-move bytes exist, any flusher — an eviction or a
      // checkpoint's walk — may pick the source up, and without the edge
      // in place it would write the record-less image with the destination
      // still stale, making the moved records unrecoverable.
      bp->AddWriteOrder(dest, src);
    }

    {
      std::unique_lock<PageLatch> latch(dest_page->latch());
      LeafNode dl(dest_page);
      for (const auto& [k, v] : moved) {
        bool exact;
        dl.LowerBound(k, &exact);
        if (!exact) dl.Insert(k, v);
      }
      dest_page->set_page_lsn(move.lsn);
    }
    bp->UnpinPage(dest, true);

    s = bp->FetchPage(src, &src_page);
    if (!s.ok()) break;
    {
      std::unique_lock<PageLatch> latch(src_page->latch());
      LeafNode sl(src_page);
      for (size_t i = 0; i < take && sl.Count() > 0; ++i) sl.RemoveAt(0);
      src_page->set_page_lsn(move.lsn);
    }
    bp->UnpinPage(src, true);

    done_moves.push_back({src, moved});
    ctx_->stats->records_moved += moved.size();
    unit_high_key = std::max(unit_high_key, moved.back().first);
    if (take < records.size()) {
      unit_high_key = std::max(unit_high_key, records.back().first);
    }
  }
  if (!s.ok()) {
    release_all();
    return s;
  }

  // --- 6. Upgrade the base-page lock to X ----------------------------------
  s = locks->Lock(id, PageLock(base_pid), LockMode::kX);
  if (!s.ok()) {
    // §5.2 undo-at-deadlock: move everything back, then close the unit.
    BufferPool::ApplyScope apply_scope(bp);
    for (auto it = done_moves.rbegin(); it != done_moves.rend(); ++it) {
      LogRecord back;
      back.type = LogType::kReorgMove;
      back.txn_id = id;
      back.unit = unit;
      back.prev_lsn = ctx_->table->recent_lsn();
      back.page_id = dest;
      back.page_id2 = it->src;
      back.payload = EncodeMovedRecords(it->records);
      ctx_->log->Append(&back);
      ctx_->table->RecordLsn(back.lsn);
      Page* dest_page;
      if (bp->FetchPage(dest, &dest_page).ok()) {
        std::unique_lock<PageLatch> latch(dest_page->latch());
        LeafNode dl(dest_page);
        for (const auto& [k, v] : it->records) {
          bool exact;
          int pos = dl.LowerBound(k, &exact);
          if (exact) dl.RemoveAt(pos);
        }
        dest_page->set_page_lsn(back.lsn);
        bp->UnpinPage(dest, true);
      }
      Page* src_page;
      if (bp->FetchPage(it->src, &src_page).ok()) {
        std::unique_lock<PageLatch> latch(src_page->latch());
        LeafNode sl(src_page);
        for (const auto& [k, v] : it->records) {
          bool exact;
          sl.LowerBound(k, &exact);
          if (!exact) sl.Insert(k, v);
        }
        src_page->set_page_lsn(back.lsn);
        bp->UnpinPage(it->src, true);
      }
    }
    LogRecord end;
    end.type = LogType::kReorgEnd;
    end.txn_id = id;
    end.unit = unit;
    end.prev_lsn = ctx_->table->recent_lsn();
    end.key = ctx_->table->largest_finished_key();  // LK unchanged
    ctx_->log->AppendAndFlush(&end);
    ctx_->table->EndUnit(end.key);
    release_all();
    return Status::Deadlock("base-page upgrade deadlock");
  }

  // --- 7. MODIFY the base page ---------------------------------------------
  auto log_modify = [&](const Slice& org_key, PageId org_pid,
                        const Slice& new_key, PageId new_pid, Page* bpage) {
    LogRecord mod;
    mod.type = LogType::kReorgModify;
    mod.txn_id = id;
    mod.unit = unit;
    mod.prev_lsn = ctx_->table->recent_lsn();
    mod.page_id = base_pid;
    mod.key = org_key.ToString();
    mod.value = EncodePid(org_pid);
    mod.key2 = new_key.ToString();
    mod.value2 = EncodePid(new_pid);
    ctx_->log->Append(&mod);
    ctx_->table->RecordLsn(mod.lsn);
    bpage->set_page_lsn(mod.lsn);
  };

  s = bp->FetchPage(base_pid, &base_page);
  if (!s.ok()) {
    release_all();
    return s;
  }
  // Peek every touched leaf's (count, first key) BEFORE latching the base
  // page: the unit's page locks (RX on the leaves, X on the base) keep the
  // leaves byte-stable through step 7, so the values cannot go stale — and
  // keeping latch acquisition flat (never leaf-under-base) means frame
  // latches have no nesting order for concurrent reorganizers to invert.
  struct LeafPeek {
    bool fetched = false;
    int cnt = 0;
    std::string first_key;
  };
  auto peek = [&](PageId pid) {
    LeafPeek pk;
    Page* p;
    if (!bp->FetchPage(pid, &p).ok()) return pk;
    {
      std::shared_lock<PageLatch> slatch(p->latch());
      LeafNode ln(p);
      pk.cnt = ln.Count();
      if (pk.cnt > 0) pk.first_key = ln.KeyAt(0).ToString();
    }
    bp->UnpinPage(pid, false);
    pk.fetched = true;
    return pk;
  };
  std::vector<LeafPeek> src_peeks;
  src_peeks.reserve(sources.size());
  for (PageId src : sources) {
    src_peeks.push_back(src == dest ? LeafPeek{} : peek(src));
  }
  LeafPeek dest_peek = in_place ? LeafPeek{} : peek(dest);

  std::vector<PageId> now_empty;
  std::vector<PageId> live_sources;
  BufferPool::ApplyScope modify_scope(bp);
  {
    std::unique_lock<PageLatch> latch(base_page->latch());
    InternalNode base(base_page);
    for (size_t i = 0; i < sources.size(); ++i) {
      PageId src = sources[i];
      if (src == dest) {
        live_sources.push_back(src);
        continue;
      }
      const LeafPeek& pk = src_peeks[i];
      if (!pk.fetched) continue;
      int slot = base.FindChildSlot(src);
      if (pk.cnt == 0) {
        if (slot >= 0) {
          log_modify(base.KeyAt(slot), src, Slice(), kInvalidPageId,
                     base_page);
          base.RemoveAt(slot);
        }
        now_empty.push_back(src);
      } else {
        live_sources.push_back(src);
        if (slot >= 0 && base.KeyAt(slot).compare(pk.first_key) != 0) {
          std::string old_sep = base.KeyAt(slot).ToString();
          log_modify(old_sep, src, pk.first_key, src, base_page);
          base.SetKeyAt(slot, pk.first_key);
        }
      }
    }
    if (!in_place && dest_peek.fetched) {
      // Map the (new) destination into the base page under its first key.
      if (base.FindChildSlot(dest) < 0 && !dest_peek.first_key.empty()) {
        log_modify(Slice(), kInvalidPageId, dest_peek.first_key, dest,
                   base_page);
        base.Insert(dest_peek.first_key, dest);
      }
    }
  }
  bp->UnpinPage(base_pid, true);

  // --- 8. Side pointers ------------------------------------------------------
  if (ctx_->tree->options().side_pointers != SidePointerMode::kNone) {
    std::vector<PageId> chain;
    if (prev_nb != kInvalidPageId) chain.push_back(prev_nb);
    if (!in_place) chain.push_back(dest);
    for (PageId src : sources) {
      if (std::find(now_empty.begin(), now_empty.end(), src) ==
          now_empty.end()) {
        chain.push_back(src);
      }
    }
    if (next_nb != kInvalidPageId) chain.push_back(next_nb);
    for (size_t i = 0; i < chain.size(); ++i) {
      PageId p = chain[i];
      PageId np = (i + 1 < chain.size()) ? chain[i + 1] : kInvalidPageId;
      PageId pp = (i > 0) ? chain[i - 1] : kInvalidPageId;
      Page* page;
      if (!bp->FetchPage(p, &page).ok()) continue;
      PageId want_prev = (i == 0) ? page->prev() : pp;
      PageId want_next =
          (i + 1 == chain.size()) ? page->next() : np;
      if (page->prev() != want_prev || page->next() != want_next) {
        LogRecord link;
        link.type = LogType::kLinkPage;
        link.txn_id = id;
        link.unit = unit;
        link.prev_lsn = ctx_->table->recent_lsn();
        link.page_id = p;
        link.page_id2 = want_prev;
        link.page_id3 = want_next;
        ctx_->log->Append(&link);
        ctx_->table->RecordLsn(link.lsn);
        std::unique_lock<PageLatch> latch(page->latch());
        page->SetPrev(want_prev);
        page->SetNext(want_next);
        page->set_page_lsn(link.lsn);
        bp->UnpinPage(p, true);
      } else {
        bp->UnpinPage(p, false);
      }
    }
  }

  // --- 9. Deallocate drained sources (dealloc gated on dest durability) ----
  for (PageId src : now_empty) {
    LogRecord de;
    de.type = LogType::kDeallocPage;
    de.txn_id = id;
    de.unit = unit;
    de.prev_lsn = ctx_->table->recent_lsn();
    de.page_id = src;
    ctx_->log->Append(&de);
    ctx_->table->RecordLsn(de.lsn);
    if (ctx_->careful_writing) {
      bp->DeletePageDeferred(src, dest);
    } else {
      bp->DeletePage(src);
    }
    ++ctx_->stats->pages_freed;
  }

  // --- 10. END ---------------------------------------------------------------
  LogRecord end;
  end.type = LogType::kReorgEnd;
  end.txn_id = id;
  end.unit = unit;
  end.prev_lsn = ctx_->table->recent_lsn();
  end.key = std::max(unit_high_key, ctx_->table->largest_finished_key());
  ctx_->log->AppendAndFlush(&end);
  ctx_->table->EndUnit(end.key);

  ++ctx_->stats->units;
  if (in_place) {
    ++ctx_->stats->compact_units;
  } else {
    ++ctx_->stats->move_units;
  }
  if (resume) ++ctx_->stats->units_resumed;

  release_all();
  return Status::OK();
}

}  // namespace soreorg
