// Pass 1 (§4.1, §5, §6): compact groups of sparse leaves that share one base
// page, either in place (into the group's first leaf) or by copying into a
// well-placed empty page chosen by Find-Free-Space (§6.1).
//
// Each group is one *reorganization unit*:
//   1. IX the tree lock; S lock-couple to the base page; hold it in R mode.
//   2. RX lock the unit's leaves; RX/X lock side-pointer neighbors (§4.3):
//      RX when the neighbor is a child of the same base page, X otherwise.
//      All locks are taken before any record moves, so a deadlock abort
//      loses no work (the reorganizer is always the deadlock victim).
//   3. Log (BEGIN, unit, type, base pages, leaf pages).
//   4. Move records source-by-source into the destination, logging one
//      (MOVE, org, dest, contents|keys) per source; with careful writing
//      the buffer pool is told dest-must-precede-source and the source's
//      deallocation is gated on the destination being durable.
//   5. Upgrade the base-page R lock to X; apply + log the (MODIFY, ...) key
//      and pointer changes; fix side pointers.
//   6. Log (END, unit); advance LK in the reorganization table; release.
//
// ExecuteUnit is idempotent: forward recovery re-runs it after a crash and
// it skips whatever the redo pass already reinstalled.

#ifndef SOREORG_REORG_LEAF_COMPACTOR_H_
#define SOREORG_REORG_LEAF_COMPACTOR_H_

#include <string>
#include <vector>

#include "src/reorg/context.h"
#include "src/reorg/find_free_space.h"

namespace soreorg {

struct LeafCompactorOptions {
  /// f2: the post-reorganization leaf fill target.
  double target_fill = 0.9;
  FreeSpacePolicy free_space_policy = FreeSpacePolicy::kPaperHeuristic;
  /// Upper bound on leaves per unit (lock-hold bound; the paper compacts
  /// d = ceil(f2/f1) pages per unit on average).
  size_t max_group = 16;
  /// Retries per unit after a deadlock abort.
  int max_unit_retries = 16;
  /// If set, each unit executes inside this wrapper. The Smith '90 baseline
  /// uses it to hold a whole-tree X lock and run one database transaction
  /// per block operation.
  std::function<Status(const std::function<Status()>&)> unit_wrapper;
};

class LeafCompactor {
 public:
  LeafCompactor(ReorgContext* ctx, LeafCompactorOptions options);

  /// Run pass 1 over the whole tree (or resume from the reorganization
  /// table's LK after a restart).
  Status Run();

  /// Execute one unit: move every record of `sources` into `dest`
  /// (dest == sources[0] means in-place; otherwise dest must be a free page
  /// already chosen by Find-Free-Space). Exposed for the swap/move pass and
  /// for forward recovery. If `resume` is set, the unit's BEGIN was already
  /// logged (recovery) and locks are re-acquired fresh.
  Status ExecuteUnit(uint32_t unit, PageId base_pid,
                     const std::vector<PageId>& sources, PageId dest,
                     bool resume);

  PageId last_finished() const { return last_finished_; }

 private:
  /// Plan the next unit after `cursor`: the base page, the source group and
  /// the destination. Returns kNotFound when the pass is complete,
  /// kNotSupported when this position has nothing to compact (caller
  /// advances the cursor).
  Status PlanNextUnit(std::string* cursor, PageId* base_pid,
                      std::vector<PageId>* sources, PageId* dest);

  /// One attempt at a unit; kDeadlock means the reorganizer was chosen as
  /// the victim (work already done was undone per §5.2) and may retry.
  Status ExecuteUnitOnce(uint32_t unit, PageId base_pid,
                         const std::vector<PageId>& sources, PageId dest,
                         bool resume);

  ReorgContext* ctx_;
  LeafCompactorOptions options_;
  FindFreeSpace ffs_;
  PageId last_finished_ = kInvalidPageId;
};

}  // namespace soreorg

#endif  // SOREORG_REORG_LEAF_COMPACTOR_H_
