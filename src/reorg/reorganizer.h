// Reorganizer: the paper's on-line reorganization process, orchestrating the
// three passes of Figure 1 as one background process (not one transaction
// per block operation — that is the Smith '90 baseline's model):
//
//   pass 1  LeafCompactor  — compact sparse leaves (in-place + copy-switch)
//   pass 2  SwapPass       — optional: swap/move leaves into disk key order
//   pass 3  TreeBuilder    — rebuild the upper levels new-place, side file
//           + Switcher     — catch up and switch to the new tree (§7.4)
//
// Also hosts Forward Recovery (§5.1): after a crash, the single
// possibly-incomplete reorganization unit is *finished* — its locks are
// re-acquired and the idempotent unit executor completes the remaining
// moves, key modifications and END record — instead of being rolled back.

#ifndef SOREORG_REORG_REORGANIZER_H_
#define SOREORG_REORG_REORGANIZER_H_

#include <memory>

#include "src/reorg/context.h"
#include "src/reorg/leaf_compactor.h"
#include "src/reorg/side_file.h"
#include "src/reorg/swap_pass.h"
#include "src/reorg/switcher.h"
#include "src/reorg/tree_builder.h"

namespace soreorg {

struct ReorganizerOptions {
  LeafCompactorOptions compactor;
  bool run_swap_pass = true;
  SwapPassOptions swap;
  bool run_internal_pass = true;
  TreeBuilderOptions builder;
  SwitcherOptions switcher;
  /// §5: keys-only MOVE logging backed by buffer-pool careful writing.
  bool careful_writing = true;
};

class Reorganizer {
 public:
  Reorganizer(BTree* tree, BufferPool* bp, LogManager* log, LockManager* locks,
              DiskManager* disk, SideFile* side_file, ReorgTable* table,
              ReorganizerOptions options);

  /// All passes, in order (pass 2 and 3 subject to the options).
  Status Run();

  Status RunLeafPass();
  Status RunSwapPass();
  /// Pass 3 including the switch. `resume_key`/`resume_top` restart a
  /// build interrupted by a crash (§7.3).
  Status RunInternalPass(const Slice& resume_key = Slice(),
                         PageId resume_top = kInvalidPageId);

  /// Forward Recovery (§5.1): finish the incomplete unit described by its
  /// WAL records (BEGIN first). Locks are re-acquired; already-redone work
  /// is skipped by the idempotent executors.
  Status FinishIncompleteUnit(const std::vector<LogRecord>& unit_records);

  const ReorgStats& stats() const { return stats_; }
  const SwitchStats& switch_stats() const { return switch_stats_; }
  ReorgContext* context() { return &ctx_; }
  ReorganizerOptions* options() { return &options_; }

 private:
  /// Install the §7.2 base-update hook that consults CK and records side
  /// entries.
  void InstallHook(TreeBuilder* builder);

  ReorganizerOptions options_;
  ReorgStats stats_;
  SwitchStats switch_stats_;
  ReorgContext ctx_;
  SideFile* side_file_;
  std::unique_ptr<LeafCompactor> compactor_;
  std::unique_ptr<SwapPass> swap_pass_;
};

}  // namespace soreorg

#endif  // SOREORG_REORG_REORGANIZER_H_
