// Reorganization logging helpers and the in-memory reorganization table.
//
// The table is the paper's §5 structure: it holds LK (the largest key of the
// last finished reorganization unit), and — while a unit is open — the
// unit's id, its BEGIN record LSN and its most recent LSN. It is copied into
// every checkpoint record so recovery can find the one possibly-incomplete
// unit and the restart position.

#ifndef SOREORG_REORG_REORG_LOG_H_
#define SOREORG_REORG_REORG_LOG_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/storage/page.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/wal/checkpoint.h"
#include "src/wal/log_record.h"

namespace soreorg {

/// Encode/decode the BEGIN record's page lists into its payload.
std::string EncodeBeginPages(const std::vector<PageId>& base_pages,
                             const std::vector<PageId>& leaf_pages);
Status DecodeBeginPages(const Slice& payload, std::vector<PageId>* base_pages,
                        std::vector<PageId>* leaf_pages);

/// MOVE record payloads. Full mode packs whole (key, value) records;
/// keys-only mode (careful writing, §5) packs just the keys.
std::string EncodeMovedRecords(
    const std::vector<std::pair<std::string, std::string>>& records);
Status DecodeMovedRecords(
    const Slice& payload,
    std::vector<std::pair<std::string, std::string>>* records);
std::string EncodeMovedKeys(const std::vector<std::string>& keys);
Status DecodeMovedKeys(const Slice& payload, std::vector<std::string>* keys);

class ReorgTable {
 public:
  void BeginUnit(uint32_t unit, Lsn begin_lsn);
  void RecordLsn(Lsn lsn);
  Lsn recent_lsn() const;
  /// Closes the open unit and advances LK.
  void EndUnit(const Slice& largest_key);
  void Clear();

  void set_leaf_pass_active(bool b);
  void set_pass3(bool reorg_bit, const Slice& stable_key, PageId new_root);

  std::string largest_finished_key() const;
  bool has_open_unit() const;
  uint32_t open_unit() const;

  ReorgTableSnapshot Snapshot() const;
  void Restore(const ReorgTableSnapshot& snap);

 private:
  mutable std::mutex mu_;
  ReorgTableSnapshot state_;
};

}  // namespace soreorg

#endif  // SOREORG_REORG_REORG_LOG_H_
