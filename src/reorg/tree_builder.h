// Pass 3 (§7.1–§7.3): rebuild the internal levels new-place.
//
// The builder reads the old tree's base pages left to right — holding only
// one S lock at a time — and feeds their (separator, leaf) entries to a
// bottom-up InternalBuilder, producing a compact new upper tree over the
// *same leaf pages*. While it runs:
//   * CK (Get_Current) is the low mark of the base page being read; the
//     base-update hook compares an updater's key with CK to decide whether
//     a side-file entry is needed (§7.2);
//   * every `stable_every` new pages, the builder force-writes the new
//     pages plus the open ancestors and logs a STABLE_KEY record (§7.3), so
//     a crash restarts from the most recent stable key instead of from
//     scratch;
//   * after the last base page, it drains the side file into the new tree
//     (catch-up) via a temporary BTree attached to the new root.
//
// The final switch (§7.4) is the Switcher's job.

#ifndef SOREORG_REORG_TREE_BUILDER_H_
#define SOREORG_REORG_TREE_BUILDER_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/btree/bulk_builder.h"
#include "src/reorg/context.h"
#include "src/reorg/side_file.h"

namespace soreorg {

struct TreeBuilderOptions {
  double internal_fill = 0.9;
  /// Force-write + STABLE_KEY every N completed new pages (paper: "say 5").
  int stable_every = 5;
  /// Artificial pacing: sleep this long after reading each base page (with
  /// no locks held). Simulates the multi-minute builds of very large trees
  /// so experiments can observe concurrent side-file traffic mid-build.
  int base_page_delay_ms = 0;
};

class TreeBuilder {
 public:
  TreeBuilder(ReorgContext* ctx, SideFile* side_file,
              TreeBuilderOptions options);

  /// Build the new upper levels and run catch-up until the side file is
  /// empty. On return *new_tree() is ready for the switch. `resume_key` is
  /// empty for a fresh run, or the stable key + partial-tree top recovered
  /// after a crash.
  Status Run(const Slice& resume_key = Slice(),
             PageId resume_top = kInvalidPageId);

  /// Get_Current (§7.1): low mark of the base page currently being read.
  /// Once reading has finished every key is "already read", represented by
  /// all_read() == true.
  std::string CurrentKey() const;
  bool all_read() const;

  /// The new tree (valid after Run): same leaves, fresh upper levels.
  BTree* new_tree() { return new_tree_.get(); }

  /// Drain side-file entries into the new tree; used by Run and again by
  /// the Switcher for the final catch-up under the side-file X lock — and,
  /// under the step-aside protocol (§7.4), once more per step-aside round
  /// for the delta recorded while the X lock was released.
  Status DrainSideFile();

  /// Apply one side entry to the new tree, idempotently. Entries carry
  /// monotonic seq tags and the drain pops them in seq order, so a seq at
  /// or below the applied high-water mark is a duplicate from an earlier
  /// round and is skipped outright; a fresh entry whose base change turns
  /// out to be already present (the recording updater also applied it
  /// directly after a Busy redirect) is verified as a no-op. Exposed for
  /// the drain-idempotency property test.
  Status ApplyEntry(const SideEntry& entry);

  /// Highest SideEntry::seq already applied to the new tree.
  uint64_t applied_seq_hwm() const { return applied_seq_hwm_; }

 private:
  Status StablePoint();
  Status ReadBasePage(PageId pid);

  ReorgContext* ctx_;
  SideFile* side_file_;
  TreeBuilderOptions options_;
  InternalBuilder builder_;

  mutable std::mutex mu_;
  std::string current_key_;
  bool all_read_ = false;

  std::unique_ptr<BTree> new_tree_;
  uint64_t applied_seq_hwm_ = 0;  // only the drain thread writes it
  Transaction reorg_txn_{kReorgTxnId};
  int pages_since_stable_ = 0;
  PageId next_base_ = kInvalidPageId;  // set by ReadBasePage
};

}  // namespace soreorg

#endif  // SOREORG_REORG_TREE_BUILDER_H_
