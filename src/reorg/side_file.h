// SideFile (§7.2): the append-only system table that absorbs base-page
// updates made by user transactions while pass 3 rebuilds the upper levels.
//
// Concurrency follows the paper: an updater that needs to record an entry
// holds an IX lock on the side-file table (kept to end of transaction, which
// is what lets the switcher's X lock drain all in-flight updaters) and an X
// lock on the entry key. If the IX lock is unavailable the switch is in
// progress: the updater waits it out with an *instant-duration* IX request
// and then retries its operation against the new tree (MaybeRecord returns
// kBusy).
//
// Durability: every insertion is logged under the inserting transaction
// (kSideInsert); applications by the reorganizer are logged as kSideApply.
// The full entry list is also serialized into each checkpoint, and recovery
// prunes entries whose key lies beyond the most recent stable key (§7.3) —
// the builder will re-read those base pages anyway.

#ifndef SOREORG_REORG_SIDE_FILE_H_
#define SOREORG_REORG_SIDE_FILE_H_

#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/btree/btree.h"
#include "src/txn/lock_manager.h"
#include "src/util/status.h"
#include "src/wal/log_manager.h"

namespace soreorg {

struct SideEntry {
  BaseUpdateOp op;
  std::string key;
  PageId leaf = kInvalidPageId;
  /// Monotonic insertion tag, assigned under the side-file mutex. PopFront
  /// re-verifies the front by seq after waiting out the recording
  /// transaction: field equality (op, key, leaf) is ABA-prone — a cancel
  /// followed by a fresh insert of the same logical update would pass the
  /// check while the new entry's transaction is still in flight. Not
  /// serialized; restart re-tags restored entries.
  uint64_t seq = 0;
};

class SideFile {
 public:
  SideFile(LockManager* locks, LogManager* log);

  /// Record a base-page change from a user transaction (already holding the
  /// base page X lock). Returns kBusy if the switch completed while waiting,
  /// in which case the caller retries its update against the new tree.
  Status Record(Transaction* txn, BaseUpdateOp op, const Slice& key,
                PageId leaf);

  /// Accept recordings (reorg start). The side file starts open.
  void Open();

  /// Stop accepting recordings: every later Record returns kBusy even if
  /// the table lock is free. Called by the Switcher — under the side-file X
  /// lock — just before it dismantles the pass-3 state, closing the race
  /// where an updater captured the base-update hook before cleanup cleared
  /// it and would otherwise insert a phantom entry nobody will ever drain.
  void Close();
  bool closed() const;

  /// Remove one entry (FIFO) for the reorganizer to apply; logs kSideApply.
  /// Sets *empty when nothing was pending. Acquires (and releases) the
  /// entry's record lock under the reorganizer id first, so an entry whose
  /// recording transaction is still in flight — and might still cancel it —
  /// is not consumed early (§7.2 record-level locking). The front is
  /// re-verified by SideEntry::seq after the wait; if it changed too many
  /// times in a row the retryable kBusy is returned and the caller simply
  /// calls again (progress was made by whoever kept changing the front).
  Status PopFront(SideEntry* entry, bool* empty);

  /// Compensate a recorded entry whose structure modification failed and
  /// will be retried or abandoned: drop the newest matching entry and log
  /// kSideCancel under the transaction's chain. No-op if nothing matches
  /// (the hook may not have recorded anything).
  Status Cancel(Transaction* txn, BaseUpdateOp op, const Slice& key,
                PageId leaf);

  /// Undo of a kSideInsert (user transaction rollback): drop the newest
  /// matching entry.
  void UndoInsert(BaseUpdateOp op, const Slice& key);

  size_t size() const;
  uint64_t total_recorded() const;
  void Clear();

  /// Checkpoint/restart support. The image carries a watermark: the LSN of
  /// the newest side log record whose effect the entry list reflects.
  /// Record/PopFront/Cancel append their log record and mutate the list
  /// under one mutex hold, so the watermark is exact — recovery skips side
  /// records at or below it (RedoInsert/RedoApply are not idempotent) and
  /// replays only the tail the image has not seen.
  std::string Serialize() const;
  Status Restore(const Slice& image);
  /// Watermark carried by the image Restore() consumed (0 if none).
  Lsn restored_lsn() const;
  /// Re-apply a logged insertion during recovery redo.
  void RedoInsert(BaseUpdateOp op, const Slice& key, PageId leaf);
  /// Drop one entry during recovery redo of kSideApply.
  void RedoApply();
  /// Drop the newest matching entry during recovery redo of kSideCancel.
  void RedoCancel(BaseUpdateOp op, const Slice& key, PageId leaf);
  /// Re-add an entry (undo of kSideCancel during loser rollback).
  void ReAdd(BaseUpdateOp op, const Slice& key, PageId leaf);
  /// §7.3: entries past the most recent stable key will be re-read by the
  /// restarted builder — drop them.
  void PruneBeyond(const Slice& stable_key);

 private:
  LockManager* locks_;
  LogManager* log_;

  mutable std::mutex mu_;
  std::deque<SideEntry> entries_;
  uint64_t total_recorded_ = 0;
  uint64_t next_seq_ = 0;  // SideEntry::seq source; guarded by mu_
  bool closed_ = false;    // set under the side-file X lock; guarded by mu_
  /// LSN of the newest side record reflected in entries_; guarded by mu_.
  /// Updated atomically with the list mutation it describes, so a
  /// checkpoint's Serialize() snapshot is exact.
  Lsn last_lsn_ = kInvalidLsn;
  Lsn restored_lsn_ = kInvalidLsn;  // watermark from the restored image
};

}  // namespace soreorg

#endif  // SOREORG_REORG_SIDE_FILE_H_
