// Switcher (§7.4): the first detailed published protocol for switching from
// the old B+-tree to the new one — extended with the *step-aside* loop that
// fixes the protocol's liveness hole.
//
//   1. X-lock the side file. Updaters hold their side-file IX locks to end
//      of transaction, so this drains every in-flight base-page updater.
//   2. Final catch-up: apply the few side-file entries recorded while
//      waiting for the X lock.
//   3. Flip the root pointer (kTreeSwitch, flushed) and give the new tree a
//      fresh lock name (incarnation). New operations now use the new tree.
//   4. Still holding the side-file X lock, request an X lock on the *old*
//      tree's lock name: since every transaction that was using the old
//      tree holds IS/IX on it, granting means they have all finished.
//
//      The literal protocol deadlocks here: an updater that holds IX on the
//      old tree (to end of transaction) and is parked in an instant-duration
//      IX wait on the side-file lock can never finish while we hold the
//      side-file X — and we can never get the old-tree X while it lives. The
//      deadlock detector victimizes the reorganizer (§4.1), so every round
//      of the wait loop dies with kDeadlock until the rounds run out and the
//      switch fails with the root already flipped.
//
//      **Step-aside** (this repo's fix): when the old-tree wait times out or
//      loses a deadlock, release the side-file X lock, let the parked
//      updater proceed (its instant wait resolves; its entry lands in the
//      side file through the normal Busy-redirect path), wait for the side
//      file to grow (or a bounded interval for long readers), re-acquire the
//      X lock, drain the delta, and retry the old-tree X. Each step-aside
//      retires at least one parked old-tree updater — after the flip no NEW
//      transaction can acquire the old incarnation's lock name, so the
//      holder set shrinks monotonically and the loop terminates. Re-drains
//      are safe because DrainSideFile is idempotent (seq high-water mark +
//      duplicate-tolerant BaseApply; see TreeBuilder::ApplyEntry).
//   5. Discard the old tree's upper levels (all its internal pages; leaves
//      are shared with the new tree) and reclaim their space. A failure to
//      collect them is surfaced in SwitchStats (reclaim_failed) — the switch
//      itself still succeeds; the pages leak but the trees are intact.
//   6. Close the side file, clear the reorganization bit, drop the hooks,
//      release all locks.
//
// Failure discipline (post-flip): once the root has flipped the switch can
// no longer be "undone" — the new tree IS the tree. If step 4 exhausts its
// rounds/step-asides, the switcher *rolls forward*: final best-effort drain,
// close the side file, dismantle the pass-3 state, count (but do not free)
// the old internal pages — in-flight old-tree transactions may still be
// navigating them — and return TimedOut with stats->rolled_forward set. The
// system is left fully consistent on the new tree; only the old upper-level
// pages leak (stats->old_pages_leaked).
//
// Lock-order note (invariant (f), lock_invariants.h): inside the switch
// window the reorganizer holds X on the old tree lock only while it also
// holds the side-file X lock. The step-aside release/re-acquire happens
// strictly while the old-tree X is NOT held, so a drain can never run
// concurrently with a recording updater.

#ifndef SOREORG_REORG_SWITCHER_H_
#define SOREORG_REORG_SWITCHER_H_

#include <functional>
#include <string>

#include "src/reorg/context.h"
#include "src/reorg/side_file.h"
#include "src/reorg/tree_builder.h"
#include "src/util/random.h"

namespace soreorg {

struct SwitcherOptions {
  /// Per-attempt bound on the old-tree X-lock wait (§7.4's time limit).
  int64_t old_tree_timeout_ms = 2000;
  int max_wait_rounds = 30;
  /// Side-file X lock retry policy (step 1 and every step-aside
  /// re-acquire). The reorganizer always loses deadlocks (§4.1), so under
  /// updater pressure the lock attempt can fail many times in a row; each
  /// retry backs off exponentially with full jitter (uniform in
  /// [delay/2, delay]) so retries do not chase the same conflict window,
  /// starting at `side_lock_backoff_min_us` and capped at
  /// `side_lock_backoff_max_us`.
  int max_side_lock_attempts = 1024;
  int64_t side_lock_backoff_min_us = 50;
  int64_t side_lock_backoff_max_us = 20000;
  /// Jitter seed. 0 (the default) derives a distinct per-instance seed —
  /// concurrent switchers sharing one constant would back off in lockstep
  /// and collide on every retry. Set an explicit nonzero value only when a
  /// test needs a reproducible jitter sequence.
  uint64_t backoff_seed = 0;

  /// Step-aside protocol (the §7.4 deadlock fix). Disabled only by the
  /// regression test that pins the legacy deadlock behaviour.
  bool enable_step_aside = true;
  /// Hard cap on step-aside rounds. Progress is guaranteed (each round
  /// retires at least one parked old-tree updater and no new ones can
  /// appear post-flip), so this only bounds pathological schedules; when it
  /// trips the switcher rolls forward and returns TimedOut.
  int max_step_asides = 64;
  /// How long a step-aside waits for the side file to grow before
  /// re-acquiring the X lock anyway. The growth signal means a parked
  /// updater retired; the timeout covers old-tree *readers* (IS holders),
  /// which never touch the side file but still block the old-tree X.
  int64_t step_aside_wait_ms = 200;

  /// TEST ONLY. Force the first N step 4 rounds to step aside without even
  /// attempting the old-tree lock — drives the release-reacquire window
  /// deterministically for crash-torture sweeps.
  int force_step_asides = 0;
  /// TEST ONLY. Called once per step-aside, right after the side-file X
  /// lock is released, from the switcher thread.
  std::function<void()> on_step_aside;
};

struct SwitchStats {
  uint64_t final_catchup_entries = 0;
  uint64_t old_pages_discarded = 0;
  uint64_t old_tree_wait_rounds = 0;
  /// Side-file X-lock attempts that failed and were retried after a backoff
  /// sleep (deadlock-victim kills and busy returns), across step 1 and all
  /// step-aside re-acquires.
  uint64_t side_lock_retries = 0;
  /// Wall-clock nanoseconds updaters were blocked by the side-file X lock.
  uint64_t switch_window_ns = 0;

  /// Step-aside rounds taken (release side X → wait → re-acquire → drain).
  uint64_t step_asides = 0;
  /// Side-file entries applied by step-aside re-drains (excludes the step-2
  /// final catch-up).
  uint64_t step_aside_entries = 0;

  /// The root pointer flipped (step 3 succeeded). After this the switch can
  /// only roll forward; the reorganizer's failure cleanup keys off it.
  bool root_flipped = false;
  /// Step 4 gave up and the switcher rolled forward to a consistent
  /// new-tree state instead of leaving the system half-switched.
  bool rolled_forward = false;
  /// Old internal pages intentionally leaked by a roll-forward (in-flight
  /// old-tree transactions may still navigate them, so they cannot be freed).
  uint64_t old_pages_leaked = 0;

  /// Step 5 could not enumerate the old upper levels; the switch still
  /// succeeded but the old internal pages were not reclaimed.
  bool reclaim_failed = false;
  std::string reclaim_error;
};

class Switcher {
 public:
  Switcher(ReorgContext* ctx, SideFile* side_file, SwitcherOptions options);

  Status Switch(TreeBuilder* builder, SwitchStats* stats);

 private:
  /// Acquire the side-file X lock with jittered exponential backoff.
  Status AcquireSideX(SwitchStats* stats);

  ReorgContext* ctx_;
  SideFile* side_file_;
  SwitcherOptions options_;
  Random jitter_;
};

}  // namespace soreorg

#endif  // SOREORG_REORG_SWITCHER_H_
