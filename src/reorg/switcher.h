// Switcher (§7.4): the first detailed published protocol for switching from
// the old B+-tree to the new one.
//
//   1. X-lock the side file. Updaters hold their side-file IX locks to end
//      of transaction, so this drains every in-flight base-page updater.
//   2. Final catch-up: apply the few side-file entries recorded while
//      waiting for the X lock.
//   3. Flip the root pointer (kTreeSwitch, flushed) and give the new tree a
//      fresh lock name (incarnation). New operations now use the new tree.
//   4. Still holding the side-file X lock, request an X lock on the *old*
//      tree's lock name: since every transaction that was using the old
//      tree holds IS/IX on it, granting means they have all finished.
//      The wait is bounded by `old_tree_timeout_ms`; on timeout the switch
//      simply keeps waiting in a loop (the paper's alternative — forcibly
//      aborting stragglers — is reported in stats instead of enforced).
//   5. Discard the old tree's upper levels (all its internal pages; leaves
//      are shared with the new tree) and reclaim their space.
//   6. Clear the reorganization bit, drop the hook, release all locks.

#ifndef SOREORG_REORG_SWITCHER_H_
#define SOREORG_REORG_SWITCHER_H_

#include "src/reorg/context.h"
#include "src/reorg/side_file.h"
#include "src/reorg/tree_builder.h"

namespace soreorg {

struct SwitcherOptions {
  /// Per-attempt bound on the old-tree X-lock wait (§7.4's time limit).
  int64_t old_tree_timeout_ms = 2000;
  int max_wait_rounds = 30;
  /// Step-1 retry policy for the side-file X lock. The reorganizer always
  /// loses deadlocks (§4.1), so under updater pressure the lock attempt can
  /// fail many times in a row; each retry backs off exponentially with full
  /// jitter (uniform in [delay/2, delay]) so retries do not chase the same
  /// conflict window, starting at `side_lock_backoff_min_us` and capped at
  /// `side_lock_backoff_max_us`.
  int max_side_lock_attempts = 1024;
  int64_t side_lock_backoff_min_us = 50;
  int64_t side_lock_backoff_max_us = 20000;
  uint64_t backoff_seed = 0x5157c0ffee;  // deterministic jitter for tests
};

struct SwitchStats {
  uint64_t final_catchup_entries = 0;
  uint64_t old_pages_discarded = 0;
  uint64_t old_tree_wait_rounds = 0;
  /// Step-1 side-file X-lock attempts that failed and were retried after a
  /// backoff sleep (deadlock-victim kills and busy returns).
  uint64_t side_lock_retries = 0;
  /// Wall-clock nanoseconds updaters were blocked by the side-file X lock.
  uint64_t switch_window_ns = 0;
};

class Switcher {
 public:
  Switcher(ReorgContext* ctx, SideFile* side_file, SwitcherOptions options);

  Status Switch(TreeBuilder* builder, SwitchStats* stats);

 private:
  ReorgContext* ctx_;
  SideFile* side_file_;
  SwitcherOptions options_;
};

}  // namespace soreorg

#endif  // SOREORG_REORG_SWITCHER_H_
