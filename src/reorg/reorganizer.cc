#include "src/reorg/reorganizer.h"

namespace soreorg {

Reorganizer::Reorganizer(BTree* tree, BufferPool* bp, LogManager* log,
                         LockManager* locks, DiskManager* disk,
                         SideFile* side_file, ReorgTable* table,
                         ReorganizerOptions options)
    : options_(options), side_file_(side_file) {
  ctx_.tree = tree;
  ctx_.bp = bp;
  ctx_.log = log;
  ctx_.locks = locks;
  ctx_.disk = disk;
  ctx_.table = table;
  ctx_.stats = &stats_;
  ctx_.careful_writing = options.careful_writing;
  compactor_ = std::make_unique<LeafCompactor>(&ctx_, options.compactor);
  swap_pass_ =
      std::make_unique<SwapPass>(&ctx_, compactor_.get(), options.swap);
}

Status Reorganizer::Run() {
  Status s = RunLeafPass();
  if (!s.ok()) return s;
  if (options_.run_swap_pass) {
    s = RunSwapPass();
    if (!s.ok()) return s;
  }
  if (options_.run_internal_pass) {
    s = RunInternalPass();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status Reorganizer::RunLeafPass() { return compactor_->Run(); }

Status Reorganizer::RunSwapPass() { return swap_pass_->Run(); }

void Reorganizer::InstallHook(TreeBuilder* builder) {
  SideFile* side = side_file_;
  ctx_.tree->set_base_update_hook(
      [builder, side](Transaction* txn, BaseUpdateOp op, const Slice& key,
                      PageId leaf, PageId base) -> Status {
        (void)base;
        // §7.2: under the base page's X lock, compare the key with CK.
        if (!builder->all_read()) {
          std::string ck = builder->CurrentKey();
          if (key.compare(ck) >= 0) {
            // The builder has not read this base page yet; it will pick the
            // change up naturally.
            return Status::OK();
          }
        }
        return side->Record(txn, op, key, leaf);
      });
  ctx_.tree->set_base_update_cancel_hook(
      [side](Transaction* txn, BaseUpdateOp op, const Slice& key,
             PageId leaf) { side->Cancel(txn, op, key, leaf); });
}

Status Reorganizer::RunInternalPass(const Slice& resume_key,
                                    PageId resume_top) {
  TreeBuilder builder(&ctx_, side_file_, options_.builder);

  // §7.2: create the side file and set the reorganization bit *before*
  // reading begins. Open() re-admits recorders after a previous switch
  // closed the side file.
  side_file_->Open();
  switch_stats_ = SwitchStats{};
  InstallHook(&builder);
  ctx_.tree->set_reorg_bit(true);
  ctx_.table->set_pass3(true, resume_key, resume_top);

  Status s = builder.Run(resume_key, resume_top);
  if (!s.ok()) {
    side_file_->Close();
    ctx_.tree->set_reorg_bit(false);
    ctx_.tree->set_base_update_hook(nullptr);
    ctx_.tree->set_base_update_cancel_hook(nullptr);
    ctx_.table->set_pass3(false, Slice(), kInvalidPageId);
    return s;
  }

  Switcher switcher(&ctx_, side_file_, options_.switcher);
  s = switcher.Switch(&builder, &switch_stats_);
  if (!s.ok() && !switch_stats_.root_flipped) {
    // Pre-flip failure: the old tree is still the tree; dismantle the
    // pass-3 state entirely. (Post-flip failures roll forward inside the
    // Switcher, which leaves the system consistent on the new tree — there
    // is nothing left to clean here, and doing so would double-clear.)
    side_file_->Close();
    ctx_.tree->set_reorg_bit(false);
    ctx_.tree->set_base_update_hook(nullptr);
    ctx_.tree->set_base_update_cancel_hook(nullptr);
    ctx_.table->set_pass3(false, Slice(), kInvalidPageId);
  }
  return s;
}

Status Reorganizer::FinishIncompleteUnit(
    const std::vector<LogRecord>& unit_records) {
  if (unit_records.empty()) return Status::OK();
  const LogRecord& begin = unit_records.front();
  if (begin.type != LogType::kReorgBegin) {
    return Status::InvalidArgument("unit records must start with BEGIN");
  }
  std::vector<PageId> bases, leaves;
  Status s = DecodeBeginPages(begin.payload, &bases, &leaves);
  if (!s.ok()) return s;
  if (bases.empty() || leaves.empty()) {
    return Status::Corruption("empty BEGIN page lists");
  }
  ctx_.table->BeginUnit(begin.unit, begin.lsn);
  for (const LogRecord& rec : unit_records) {
    if (rec.lsn > ctx_.table->recent_lsn()) ctx_.table->RecordLsn(rec.lsn);
  }

  switch (static_cast<ReorgUnitType>(begin.unit_type)) {
    case ReorgUnitType::kCompact:
    case ReorgUnitType::kMove: {
      PageId dest = leaves.front();
      std::vector<PageId> sources(leaves.begin() + 1, leaves.end());
      if (sources.empty()) sources.push_back(dest);
      s = compactor_->ExecuteUnit(begin.unit, bases.front(), sources, dest,
                                  /*resume=*/true);
      break;
    }
    case ReorgUnitType::kSwap: {
      if (leaves.size() != 2) {
        return Status::Corruption("swap unit without two leaves");
      }
      s = swap_pass_->SwapUnit(begin.unit, leaves[0], leaves[1],
                               /*resume=*/true);
      break;
    }
    case ReorgUnitType::kNone:
      return Status::Corruption("unit with no type");
  }
  if (s.ok()) ++stats_.units_resumed;
  return s;
}

}  // namespace soreorg
