// BufferPool: fixed-size page cache with pin/unpin, LRU eviction, the WAL
// interlock (a dirty page cannot reach disk before the WAL is flushed up to
// its pageLSN), and the paper's **careful writing** discipline (§5, [LT95]):
//
//   * AddWriteOrder(first, then): page `then` must not reach the disk before
//     page `first` is durable. Used by the reorganizer so a source leaf whose
//     records were partially moved cannot be written (or its old image
//     clobbered) before the destination page is safe — which is what lets
//     MOVE log records carry only keys instead of full record bodies.
//   * DeferredDealloc(victim, until): `victim` may not be returned to the
//     free list (where it could be reused and overwritten) until `until` is
//     durable. Used when a fully-drained source page is freed.
//
// Durability here is write + fsync of the page file; the MemEnv crash model
// discards everything after the last fsync, so the dependency machinery is
// exercised for real by the crash tests.

#ifndef SOREORG_STORAGE_BUFFER_POOL_H_
#define SOREORG_STORAGE_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/storage/disk_manager.h"
#include "src/storage/page.h"
#include "src/util/status.h"

namespace soreorg {

class BufferPool {
 public:
  /// Flush the WAL up to (at least) the given LSN. Wired to
  /// LogManager::FlushTo; may be empty when running without a WAL.
  using WalFlushFn = std::function<Status(Lsn)>;

  BufferPool(DiskManager* disk, size_t pool_size,
             WalFlushFn wal_flush = nullptr);

  /// Install `hook` to observe every FetchPage call. Invoked before the
  /// pool's mutex is taken, so it may block — the deterministic schedule
  /// harness (src/sim/schedule.h) uses this to pin interleavings at page
  /// access boundaries. Install before concurrent use.
  void SetFetchHook(std::function<void(PageId)> hook);

  /// Pin and return the page. Caller must UnpinPage (or use PageGuard).
  Status FetchPage(PageId page_id, Page** page);

  /// Allocate a fresh page (zeroed, typed kFree) and pin it.
  Status NewPage(PageId* page_id, Page** page);

  /// Pin a frame for a page id that is already allocated on disk but whose
  /// current disk content is irrelevant (recovery re-creating a page image).
  Status NewFrameForExisting(PageId page_id, Page** page);

  Status UnpinPage(PageId page_id, bool dirty);

  /// Drop the page from the pool and return it to the disk free list,
  /// honouring any DeferredDealloc gate. The page must be unpinned.
  Status DeletePage(PageId page_id);

  Status FlushPage(PageId page_id);
  Status FlushAll();

  /// Flush everything and fsync the page file (a "force write" / stable
  /// point in the paper's pass-3 durability scheme §7.3).
  Status FlushAndSync();

  /// Flush + fsync a specific set of pages (force-write of the N new pages
  /// plus changed ancestors at a stable point).
  Status ForcePages(const std::vector<PageId>& page_ids);

  // --- careful writing -----------------------------------------------------
  void AddWriteOrder(PageId first, PageId then);
  /// Like DeletePage, but the disk page is only returned to the free list
  /// once `until` is durable (the paper's dealloc gate).
  Status DeletePageDeferred(PageId victim, PageId until);
  /// True iff the page has been written and fsynced since it last went dirty.
  bool IsDurable(PageId page_id) const;

  size_t pool_size() const { return frames_.size(); }
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

 private:
  struct Frame {
    std::unique_ptr<Page> page = std::make_unique<Page>();
    bool in_use = false;
  };

  // All Locked* helpers require mu_ held.
  Status LockedGetVictim(size_t* frame_idx);
  Status LockedDropFrame(PageId page_id);
  Status LockedFlushFrame(size_t frame_idx);
  // Write dependencies of page_id first (with an fsync barrier when needed).
  Status LockedSatisfyWriteOrder(PageId page_id);
  Status LockedWriteFrame(size_t frame_idx);
  Status LockedSync();
  void LockedTouch(size_t frame_idx);
  void LockedProcessDeferredDeallocs();

  DiskManager* disk_;
  WalFlushFn wal_flush_;
  std::function<void(PageId)> fetch_hook_;

  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;  // front = most recent; only unpinned frames listed
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;

  // Careful writing state.
  std::map<PageId, std::set<PageId>> must_precede_;   // then -> {first...}
  std::set<PageId> written_unsynced_;
  std::set<PageId> durable_;
  std::vector<std::pair<PageId, PageId>> deferred_deallocs_;  // (victim,until)

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// RAII pin holder.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    return *this;
  }
  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace soreorg

#endif  // SOREORG_STORAGE_BUFFER_POOL_H_
