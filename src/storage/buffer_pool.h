// BufferPool: fixed-size page cache with pin/unpin, LRU eviction, the WAL
// interlock (a dirty page cannot reach disk before the WAL is flushed up to
// its pageLSN), and the paper's **careful writing** discipline (§5, [LT95]):
//
//   * AddWriteOrder(first, then): page `then` must not reach the disk before
//     page `first` is durable. Used by the reorganizer so a source leaf whose
//     records were partially moved cannot be written (or its old image
//     clobbered) before the destination page is safe — which is what lets
//     MOVE log records carry only keys instead of full record bodies.
//   * DeferredDealloc(victim, until): `victim` may not be returned to the
//     free list (where it could be reused and overwritten) until `until` is
//     durable. Used when a fully-drained source page is freed.
//
// Durability here is write + fsync of the page file; the MemEnv crash model
// discards everything after the last fsync, so the dependency machinery is
// exercised for real by the crash tests.
//
// Concurrency: the pool is N-way sharded (N a power of two, default derived
// from hardware_concurrency() capped at 16, scaled down so small pools keep
// a useful number of frames per shard). A page's shard is chosen by a mix of
// its PageId, and each shard owns its own mutex, frame set, page table and
// LRU list — fetch/unpin/eviction of pages in different shards never
// contend. The careful-writing state (write-order edges, durability sets,
// deferred deallocs) is global by nature — an edge may connect pages in
// different shards — so it lives behind a separate flush-ordering mutex that
// also serializes every page write to disk.
//
// Read fast path: each shard additionally keeps a lock-free open-addressed
// resident index (PageId → frame) probed without the shard mutex. Clean
// FetchPage hits pin through it (an eviction-claim CAS on the pin count
// keeps a lock-free pin and a concurrent eviction from both winning the
// frame), clean unpins release through it, and the optimistic read path
// (OptimisticPageGuard + FindResident) locates frames through it without
// pinning at all, relying on the PageLatch version stamp to invalidate any
// copy taken from a frame that was concurrently written or recycled. The
// index is only mutated under the shard mutex, wherever page_table changes.
//
// Lock order: shard mutex → flush mutex. A thread may take flush_mu_ while
// holding (at most) one shard mutex; code holding flush_mu_ never takes a
// shard mutex. Cross-shard write-order dependencies are flushed via the
// dirty-page registry (PageId → Page*, maintained under flush_mu_), so
// satisfying an edge whose `first` lives in another shard needs no second
// shard lock and cannot self-deadlock. The registry's pointers are stable:
// frames own their Page on the heap, and a dirty page cannot be evicted or
// deleted without first passing through flush_mu_ (to be written or
// deregistered), which excludes any concurrent registry user.
//
// The dirty flag transitions under flush_mu_ (set at dirty-unpin / NewPage
// registration, cleared at write-out); it is atomic so shard-side code can
// read it lock-free — a `false` read under the shard mutex is authoritative
// (pages only become dirty via that shard's mutex), a `true` read must be
// re-confirmed under flush_mu_ before acting on it.

#ifndef SOREORG_STORAGE_BUFFER_POOL_H_
#define SOREORG_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/storage/disk_manager.h"
#include "src/storage/page.h"
#include "src/util/status.h"

namespace soreorg {

class BufferPool {
 public:
  /// Flush the WAL up to (at least) the given LSN. Wired to
  /// LogManager::FlushTo; may be empty when running without a WAL.
  using WalFlushFn = std::function<Status(Lsn)>;

  /// `num_shards` = 0 picks the default (DefaultShardTarget(), i.e. the
  /// smallest power of two covering hardware_concurrency() capped at 16 —
  /// sharding past the core count only buys cache-line spread the machine
  /// cannot use — halved until every shard keeps at least
  /// kMinFramesPerShard frames, so tiny test pools degrade to a single
  /// shard and preserve exact global-LRU semantics). An explicit value is
  /// rounded up to a power of two and capped at pool_size.
  BufferPool(DiskManager* disk, size_t pool_size, WalFlushFn wal_flush = nullptr,
             size_t num_shards = 0);

  /// Install `hook` to observe every FetchPage call. Invoked before any pool
  /// mutex (shard or flush) is taken, so it may block — the deterministic
  /// schedule harness (src/sim/schedule.h) uses this to pin interleavings at
  /// page access boundaries. Install before concurrent use.
  void SetFetchHook(std::function<void(PageId)> hook);

  /// Pin and return the page. Caller must UnpinPage (or use PageGuard).
  /// Clean hits are served lock-free through the shard's resident index.
  Status FetchPage(PageId page_id, Page** page);

  /// Locate a resident frame without pinning it, entirely lock-free. The
  /// returned pointer is a *frame*, not a stable page: the frame may be
  /// concurrently written, evicted, or recycled for another page id at any
  /// moment. It is only usable through OptimisticPageGuard::Capture, whose
  /// version-stamp validation discards every copy such a race could tear.
  /// Returns nullptr when the page is not resident (or the lock-free probe
  /// gave up); the caller falls back to the pinned/locked path. Invokes the
  /// fetch hook like FetchPage, so the schedule harness can interpose.
  Page* FindResident(PageId page_id);

  /// Allocate a fresh page (zeroed, typed kFree) and pin it.
  Status NewPage(PageId* page_id, Page** page);

  /// Pin a frame for a page id that is already allocated on disk but whose
  /// current disk content is irrelevant (recovery re-creating a page image).
  Status NewFrameForExisting(PageId page_id, Page** page);

  Status UnpinPage(PageId page_id, bool dirty);

  /// Drop the page from the pool and return it to the disk free list,
  /// honouring any DeferredDealloc gate. The page must be unpinned.
  Status DeletePage(PageId page_id);

  // Flushers never read live page bytes: each page image is copied through
  // PageLatch::SnapshotBytes (which refuses while an exclusive writer is
  // mid-update) into a scratch buffer and written from there. A refused page
  // is deferred with Status::Busy internally; the public entry points retry
  // with all pool mutexes released between attempts, so the writer that made
  // the bytes unstable can finish its unpin. This closes the old
  // flush-vs-modify byte race without the flusher ever blocking on a latch
  // while holding flush_mu_ (which would deadlock against latch-holders
  // parked on flush_mu_ inside fetch-eviction or dirty unpin).
  Status FlushPage(PageId page_id);
  Status FlushAll();

  /// Flush everything and fsync the page file (a "force write" / stable
  /// point in the paper's pass-3 durability scheme §7.3).
  Status FlushAndSync();

  /// Flush + fsync a specific set of pages (force-write of the N new pages
  /// plus changed ancestors at a stable point).
  Status ForcePages(const std::vector<PageId>& page_ids);

  // --- checkpoint apply barrier --------------------------------------------
  // The checkpoint's redo floor (CheckpointImage::redo_lsn) is only sound if
  // no log record below it has page effects that the checkpoint's flush walk
  // could miss. Mutators therefore bracket each (WAL append → page-byte
  // apply → dirty unpin) cluster in an ApplyScope; CaptureAtQuiescence runs
  // `capture` at an instant when no scope is active, so every record below
  // the captured floor is fully in the pool — bytes applied, page marked
  // dirty — before the walk starts, and every record at or above it is
  // replayed by recovery. Entering a scope never blocks (it is a counter
  // increment under a leaf mutex), so scopes may nest and may be held
  // across page latches and buffer-pool calls. Do NOT hold one across a
  // lock-manager wait: a scope is a promise of prompt completion, and the
  // checkpoint stalls for as long as scopes keep overlapping.
  void BeginApply();
  void EndApply();
  Lsn CaptureAtQuiescence(const std::function<Lsn()>& capture);

  class ApplyScope {
   public:
    explicit ApplyScope(BufferPool* bp) : bp_(bp) { bp_->BeginApply(); }
    ApplyScope(const ApplyScope&) = delete;
    ApplyScope& operator=(const ApplyScope&) = delete;
    ~ApplyScope() { bp_->EndApply(); }

   private:
    BufferPool* bp_;
  };

  // --- careful writing -----------------------------------------------------
  void AddWriteOrder(PageId first, PageId then);
  /// Like DeletePage, but the disk page is only returned to the free list
  /// once `until` is durable (the paper's dealloc gate).
  Status DeletePageDeferred(PageId victim, PageId until);
  /// True iff the page has been written and fsynced since it last went dirty.
  bool IsDurable(PageId page_id) const;
  /// Deallocations still gated on a not-yet-durable page (test observability).
  size_t deferred_dealloc_count() const;

  size_t pool_size() const { return total_frames_; }
  size_t shard_count() const { return shards_.size(); }
  uint64_t hit_count() const;
  uint64_t miss_count() const;

  static constexpr size_t kDefaultShards = 16;
  static constexpr size_t kMinFramesPerShard = 16;

  /// Shard count used when the caller does not request one: the smallest
  /// power of two >= hardware_concurrency(), capped at kDefaultShards.
  static size_t DefaultShardTarget();

  /// Pin-count value an evictor CASes in (from 0) to claim a frame. Large
  /// and negative so any number of transient lock-free pins on top of it
  /// still reads as "claimed" (< 0) and cannot overflow back past zero.
  static constexpr int kEvictClaim = -(1 << 30);

 private:
  struct Frame {
    std::unique_ptr<Page> page = std::make_unique<Page>();
  };

  // Lock-free resident-index slot encoding.
  static constexpr uint64_t kIdxEmpty = 0;      // probe stops here
  static constexpr uint64_t kIdxTombstone = 1;  // probe continues
  static constexpr size_t kIdxMaxProbe = 32;    // lock-free probe cap
  static uint64_t IdxEncode(PageId pid, size_t frame_idx) {
    return (static_cast<uint64_t>(pid) << 32) |
           static_cast<uint64_t>(frame_idx + 2);
  }

  struct Shard {
    mutable std::mutex mu;
    std::vector<Frame> frames;
    std::unordered_map<PageId, size_t> page_table;
    std::list<size_t> lru;  // front = most recent; unpinned-or-fastpath-pinned
    std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos;
    std::vector<size_t> free_frames;  // never-used / dropped frame indices
    // Per-shard hit counter: one shared cache line for the hit count would
    // serialize the hot read path the sharding just opened up.
    std::atomic<uint64_t> hits{0};
    // Lock-free resident index: open-addressed (linear probing), fixed
    // power-of-two capacity >= 2x frames, mutated only under mu wherever
    // page_table changes, probed without mu by the read fast paths. Slots
    // hold IdxEncode(pid, frame) or kIdxEmpty/kIdxTombstone.
    std::unique_ptr<std::atomic<uint64_t>[]> index;
    size_t index_mask = 0;
    size_t index_tombstones = 0;  // under mu; triggers in-place rebuild
    // Mirrors lru membership per frame (maintained under mu, read lock-free
    // by the clean-unpin fast path): a frame already in the LRU list needs
    // no mutex visit when its last pin drops. Staleness is benign — worst
    // case the unpin takes the mutex path or the frame keeps an old recency.
    std::unique_ptr<std::atomic<uint8_t>[]> in_lru;
  };

  static size_t PickShardCount(size_t pool_size, size_t requested);
  Shard& shard_for(PageId page_id);

  // Shard* helpers require that shard's mu held...
  Status ShardGetVictim(Shard* shard, size_t* frame_idx);
  Status ShardDropFrame(Shard* shard, PageId page_id);
  void ShardTouch(Shard* shard, size_t frame_idx);
  void ShardLruErase(Shard* shard, size_t frame_idx);
  void ShardIndexInsert(Shard* shard, PageId pid, size_t frame_idx);
  void ShardIndexErase(Shard* shard, PageId pid);
  void ShardIndexRebuild(Shard* shard);
  // ...except the probe, which is the lock-free read-side entry point.
  Page* ShardIndexProbe(const Shard& shard, PageId pid,
                        size_t* frame_idx) const;

  // FlushLocked* helpers require flush_mu_ held (and never take shard locks).
  // FlushLockedWrite walks the write-order graph iteratively (cycle-safe:
  // retained edges plus page-id reuse can close a loop) and writes every
  // non-durable dependency, with fsync barriers, before the page itself.
  // Returns Busy when a page's bytes are unstable (exclusive writer active);
  // aborting mid-walk is safe: an edge set is only erased after its
  // dependencies are written and their barrier issued, so a retry re-walks
  // exactly the constraints that still need enforcing.
  Status FlushLockedWrite(Page* page);
  // Single page image: snapshot via the latch interlock (Busy if a writer
  // is active), WAL interlock, disk write, bookkeeping. No dependency
  // handling — only FlushLockedWrite calls this.
  Status FlushLockedWriteOne(Page* page);
  Status FlushLockedWriteAllDirty();
  Status FlushLockedSync();
  void FlushLockedProcessDeferredDeallocs();

  DiskManager* disk_;
  WalFlushFn wal_flush_;
  std::function<void(PageId)> fetch_hook_;

  std::vector<Shard> shards_;  // size is a power of two; never resized
  size_t shard_mask_;
  size_t total_frames_;

  // Checkpoint apply barrier. apply_mu_ is a leaf lock: nothing else is
  // acquired while it is held (CaptureAtQuiescence's callback reads the
  // log's next LSN, which takes only the log mutex).
  mutable std::mutex apply_mu_;
  std::condition_variable apply_cv_;
  int active_appliers_ = 0;

  // Careful-writing / flush-ordering state. Guarded by flush_mu_.
  mutable std::mutex flush_mu_;
  std::unordered_map<PageId, Page*> dirty_pages_;    // dirty ∩ cached
  std::map<PageId, std::set<PageId>> must_precede_;  // then -> {first...}
  std::set<PageId> written_unsynced_;
  std::set<PageId> durable_;
  std::vector<std::pair<PageId, PageId>> deferred_deallocs_;  // (victim,until)
  // Flush snapshot buffer: every page write goes disk-ward from here, never
  // from live frame bytes. Guarded by flush_mu_ like the rest.
  char flush_scratch_[kPageSize];

  std::atomic<uint64_t> misses_{0};
};

/// RAII pin holder.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    o.dirty_ = false;
    return *this;
  }
  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

/// Latch-free validated snapshot of one page (the optimistic read path's
/// unit of work). Capture() stamps the frame's seqlock version, copies the
/// 4 KiB image unlatched into a private buffer, then validates that no
/// exclusive-latch hold or frame recycling intervened — so a true return
/// hands back a byte-consistent image that existed in the pool at capture
/// time, without touching the lock manager, the shard mutex, or the pin
/// count. Revalidate() re-checks the same stamp later; optimistic lock
/// coupling uses it to confirm a parent image was still current after its
/// child was captured.
class OptimisticPageGuard {
 public:
  OptimisticPageGuard() = default;
  OptimisticPageGuard(const OptimisticPageGuard&) = delete;
  OptimisticPageGuard& operator=(const OptimisticPageGuard&) = delete;

  /// Snapshot `frame` expecting it to hold page `expected`. False on any of:
  /// writer active (odd version), version changed across the copy, or the
  /// copied image's self-id differing from `expected` (the frame was
  /// recycled for another page between lookup and capture).
  bool Capture(Page* frame, PageId expected);

  /// True iff the captured frame's version still equals the capture stamp
  /// (no exclusive hold or recycling since). Only valid after a successful
  /// Capture.
  bool Revalidate() const { return frame_->latch().ValidateVersion(stamp_); }

  /// The private, immutable image. Safe to parse with the node/slotted-page
  /// readers; never aliased by concurrent writers.
  Page* page() { return &image_; }
  const Page* page() const { return &image_; }

 private:
  Page image_{Page::NoInit{}};
  Page* frame_ = nullptr;
  uint64_t stamp_ = 0;
};

}  // namespace soreorg

#endif  // SOREORG_STORAGE_BUFFER_POOL_H_
