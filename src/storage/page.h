// Page: the unit of disk I/O and buffering.
//
// On-disk layout of the common 32-byte header (little-endian):
//   [0..7]   page_lsn    : LSN of the last WAL record applied to this page
//   [8..11]  page_id     : self id (redundant, for corruption checks)
//   [12]     page_type   : PageType
//   [13]     level       : 0 for leaves, parents-of-leaves ("base pages") = 1
//   [14..15] flags
//   [16..19] prev_page   : side pointer (leaf level), kInvalidPageId if none
//   [20..23] next_page   : side pointer (leaf level), kInvalidPageId if none
//   [24..27] checksum    : masked CRC32C of the page image (stamped by
//                          DiskManager::WritePage, verified by ReadPage;
//                          0 only on a never-written all-zero page)
//   [28..31] reserved
// The remainder of the 4 KiB is owned by the layout on top (SlottedPage).
//
// A Page object lives inside a buffer-pool frame; the runtime fields (pin
// count, dirty bit, latch) are frame state and are never written to disk.

#ifndef SOREORG_STORAGE_PAGE_H_
#define SOREORG_STORAGE_PAGE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "src/util/coding.h"

// TSan must not instrument the optimistic read path's byte copy: it reads
// page bytes that a concurrent exclusive-latch holder may be writing, and
// the version validation that follows discards any torn copy. See
// RacyCopyPageBytes in buffer_pool.cc.
#if defined(__has_attribute)
#if __has_attribute(no_sanitize)
#define SOREORG_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#endif
#endif
#ifndef SOREORG_NO_SANITIZE_THREAD
#define SOREORG_NO_SANITIZE_THREAD
#endif
#if defined(__SANITIZE_THREAD__)
#define SOREORG_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SOREORG_TSAN_BUILD 1
#endif
#endif

namespace soreorg {

using PageId = uint32_t;
using Lsn = uint64_t;

constexpr size_t kPageSize = 4096;
constexpr PageId kInvalidPageId = 0xffffffffu;
constexpr Lsn kInvalidLsn = 0;

/// Byte offset of the per-page checksum within the header. The checksum
/// covers every page byte except its own four ([0,24) ++ [28,4096)).
constexpr size_t kPageChecksumOffset = 24;

enum class PageType : uint8_t {
  kFree = 0,
  kLeaf = 1,
  kInternal = 2,   // includes base pages (level 1) and all upper levels
  kMeta = 3,       // database superblock
  kSideFile = 4,   // pass-3 side-file table pages
};

/// The per-frame physical latch, plus the IO-in-progress interlock that lets
/// the buffer-pool flusher copy page bytes without racing an exclusive
/// writer. Satisfies the SharedMutex concept, so std::unique_lock /
/// std::shared_lock over it work unchanged at every existing call site.
///
/// Why not have the flusher take the shared latch? Threads hold page latches
/// while calling into the pool (fetch-eviction, dirty unpin), which acquires
/// shard and flush mutexes — so a flusher that blocked on a latch while
/// holding the flush mutex would deadlock (latch → flush vs flush → latch).
/// Instead SnapshotBytes never blocks: it copies under a tiny leaf mutex if
/// and only if no exclusive writer is active, else reports "unstable" and the
/// flusher defers the page and retries after releasing the flush mutex.
///
/// Lock order: snap_mu_ is a leaf. Writers take mu_ → snap_mu_ (flag flip
/// only); the flusher takes flush_mu_ → snap_mu_ (memcpy only). Nothing
/// blocks inside snap_mu_, so no cycle is possible. The interlock is what
/// makes the copy race-free under TSan: page bytes mutate only between the
/// writing_=true and writing_=false flips, and the memcpy runs only while
/// writing_ is false, with both sides ordered by snap_mu_.
/// The latch doubles as the page's optimistic-read version stamp (a seqlock):
/// version_ is odd exactly while an exclusive writer is active, and every
/// exclusive acquire/release bumps it. A latch-free reader snapshots an even
/// version, copies the bytes unlatched, and re-checks the version; any
/// concurrent exclusive hold — or a frame replacement bracketed by
/// BeginReplace/EndReplace — changes the stamp and invalidates the copy.
class PageLatch {
 public:
  void lock() {
    mu_.lock();
    // acq_rel: the acquire half keeps the holder's page writes from being
    // hoisted above the odd bump, so a reader that copied bytes touched by
    // this holder cannot still observe the old (even) version.
    version_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> g(snap_mu_);
    writing_ = true;
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    version_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> g(snap_mu_);
    writing_ = true;
    return true;
  }

  void unlock() {
    {
      std::lock_guard<std::mutex> g(snap_mu_);
      writing_ = false;
    }
    // release: the holder's writes happen-before the even bump a validating
    // reader must observe.
    version_.fetch_add(1, std::memory_order_release);
    mu_.unlock();
  }

  void lock_shared() { mu_.lock_shared(); }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }

  /// Copy `n` bytes from src to dst iff no exclusive writer is mid-update.
  /// Returns false (copying nothing) when the bytes are unstable; the caller
  /// must retry later without holding locks the writer may need.
  bool SnapshotBytes(const char* src, char* dst, size_t n) {
    std::lock_guard<std::mutex> g(snap_mu_);
    if (writing_) return false;
    memcpy(dst, src, n);
    return true;
  }

  // --- optimistic-read (seqlock) face ---------------------------------------

  /// First half of a latch-free read: an even result may be used as the
  /// validation stamp; an odd result means an exclusive writer (or a frame
  /// replacement) is mid-update and the read must not even start.
  uint64_t OptimisticVersion() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Second half: true iff no exclusive hold or frame replacement started
  /// since `stamp` was read. The acquire fence orders the caller's byte
  /// reads before the re-load (the seqlock reader-side rmb).
  bool ValidateVersion(uint64_t stamp) const {
#if defined(SOREORG_TSAN_BUILD)
    // TSan cannot model fences (GCC hard-errors under -Wtsan). The byte
    // copy this fence orders is TSan-opaque anyway (RacyCopyPageBytes), so
    // under TSan an acquire re-load of the version stands in for the
    // fence + relaxed-load pair.
    return version_.load(std::memory_order_acquire) == stamp;
#else
    std::atomic_thread_fence(std::memory_order_acquire);
    return version_.load(std::memory_order_relaxed) == stamp;
#endif
  }

  /// Frame-replacement bracket for the buffer pool: while a frame's bytes
  /// are replaced outside the latch (disk read into a recycled frame, Reset
  /// in NewPage), the version must look writer-active so a concurrent
  /// optimistic reader discards its copy. The pool owns the frame
  /// exclusively at these points (eviction claim / free-list pop), so only
  /// the parity matters, not mutual exclusion.
  void BeginReplace() { version_.fetch_add(1, std::memory_order_acq_rel); }
  void EndReplace() { version_.fetch_add(1, std::memory_order_release); }

  /// One-shot invalidation for a frame leaving the pool with its bytes
  /// intact (DeletePage): stays even, but any in-flight optimistic copy of
  /// the old contents fails validation.
  void InvalidateVersion() { version_.fetch_add(2, std::memory_order_release); }

 private:
  std::shared_mutex mu_;
  std::mutex snap_mu_;  // leaf: guards writing_ and the snapshot memcpy
  bool writing_ = false;
  std::atomic<uint64_t> version_{0};
};

/// Raw unsynchronized page-byte copy used by OptimisticPageGuard. Must stay
/// out of TSan (the read intentionally races exclusive-latch writers; the
/// caller validates the version afterwards and discards torn copies) and out
/// of instrumented callers (noinline, so the attribute keeps its effect).
SOREORG_NO_SANITIZE_THREAD
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void RacyCopyPageBytes(char* dst, const char* src);

class Page {
 public:
  Page() { Reset(); }

  /// Uninitialized-bytes constructor for OptimisticPageGuard's local image:
  /// the guard overwrites all kPageSize bytes on capture, so zeroing them
  /// first would only add a memset to every latch-free read.
  struct NoInit {};
  explicit Page(NoInit) {}

  // --- raw bytes -----------------------------------------------------------
  char* data() { return data_; }
  const char* data() const { return data_; }

  void Reset() {
    memset(data_, 0, kPageSize);
    SetHeaderPageId(kInvalidPageId);
    SetPrev(kInvalidPageId);
    SetNext(kInvalidPageId);
  }

  // --- on-disk header accessors -------------------------------------------
  Lsn page_lsn() const { return DecodeFixed64(data_ + 0); }
  void set_page_lsn(Lsn lsn) { EncodeFixed64(data_ + 0, lsn); }

  PageId header_page_id() const { return DecodeFixed32(data_ + 8); }
  void SetHeaderPageId(PageId id) { EncodeFixed32(data_ + 8, id); }

  PageType type() const { return static_cast<PageType>(data_[12]); }
  void set_type(PageType t) { data_[12] = static_cast<char>(t); }

  uint8_t level() const { return static_cast<uint8_t>(data_[13]); }
  void set_level(uint8_t lvl) { data_[13] = static_cast<char>(lvl); }

  uint16_t flags() const { return DecodeFixed16(data_ + 14); }
  void set_flags(uint16_t f) { EncodeFixed16(data_ + 14, f); }

  PageId prev() const { return DecodeFixed32(data_ + 16); }
  void SetPrev(PageId id) { EncodeFixed32(data_ + 16, id); }

  PageId next() const { return DecodeFixed32(data_ + 20); }
  void SetNext(PageId id) { EncodeFixed32(data_ + 20, id); }

  // --- frame (runtime-only) state -----------------------------------------
  PageId page_id() const { return page_id_; }
  void set_page_id(PageId id) { page_id_ = id; }

  int pin_count() const { return pin_count_.load(std::memory_order_relaxed); }

  /// Returns the pre-increment count. The lock-free FetchPage fast path
  /// needs it to detect an eviction claim (a large negative count, see
  /// BufferPool::kEvictClaim): pinning such a frame must be undone. acq_rel
  /// so a successful lock-free pin synchronizes with the evictor's claim.
  int IncPin() { return pin_count_.fetch_add(1, std::memory_order_acq_rel); }
  int DecPin() { return pin_count_.fetch_sub(1, std::memory_order_acq_rel); }

  /// Eviction-claim CAS: atomically take a frame with no pins out of
  /// circulation. Only the pool's victim scan uses this.
  bool TryClaimForEvict(int claim_value) {
    int expected = 0;
    return pin_count_.compare_exchange_strong(expected, claim_value,
                                              std::memory_order_acq_rel);
  }

  /// Adjust the pin count by an arbitrary delta (release/restore an eviction
  /// claim without clobbering concurrent transient pins).
  void AdjustPin(int delta) {
    pin_count_.fetch_add(delta, std::memory_order_acq_rel);
  }

  // Atomic so the sharded buffer pool can read it without a lock; the
  // transitions themselves are serialized by the pool's flush mutex (see
  // buffer_pool.h for the authoritative-read rules). Release/acquire, not
  // relaxed: an evictor that reads `false` and reuses the frame must see the
  // flusher's byte reads as completed.
  bool is_dirty() const { return dirty_.load(std::memory_order_acquire); }
  void set_dirty(bool d) { dirty_.store(d, std::memory_order_release); }

  /// Short-duration physical latch (distinct from logical locks held in the
  /// LockManager). Shared for readers, exclusive for modifiers; the flusher
  /// uses PageLatch::SnapshotBytes instead of acquiring it.
  PageLatch& latch() { return latch_; }

  static constexpr size_t kHeaderSize = 32;

 private:
  alignas(8) char data_[kPageSize];
  PageId page_id_ = kInvalidPageId;
  std::atomic<int> pin_count_{0};
  std::atomic<bool> dirty_{false};
  PageLatch latch_;
};

}  // namespace soreorg

#endif  // SOREORG_STORAGE_PAGE_H_
