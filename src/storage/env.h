// Env: the file-system abstraction under the DiskManager and LogManager.
//
// Two implementations:
//  - PosixEnv: real files, for durable databases on disk.
//  - MemEnv:   in-memory files with *crash semantics*: writes land in a
//    volatile image; Sync() promotes the file to a durable image; Crash()
//    rolls every file back to its durable image. This is how the test suite
//    and the forward-recovery benchmarks simulate "system failure" while
//    exercising the exact WAL / careful-writing code paths a real disk would.
//
// MemEnv also accepts a WriteObserver hook so the crash injector can fault
// the system at the N-th write or sync.

#ifndef SOREORG_STORAGE_ENV_H_
#define SOREORG_STORAGE_ENV_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/slice.h"
#include "src/util/status.h"

namespace soreorg {

class File {
 public:
  virtual ~File() = default;

  /// Read up to n bytes at offset into buf; *out_n gets the count actually
  /// read (short reads at EOF are not errors).
  virtual Status Read(uint64_t offset, size_t n, char* buf,
                      size_t* out_n) const = 0;

  /// Write data at offset, extending the file if needed.
  virtual Status Write(uint64_t offset, const Slice& data) = 0;

  /// Append data at the current end of file.
  virtual Status Append(const Slice& data) = 0;

  /// Make all previous writes durable.
  virtual Status Sync() = 0;

  virtual uint64_t Size() const = 0;

  /// Shrink the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Open (creating if absent) a read-write file.
  virtual Status NewFile(const std::string& name,
                         std::unique_ptr<File>* file) = 0;
  virtual bool FileExists(const std::string& name) const = 0;
  virtual Status DeleteFile(const std::string& name) = 0;

  /// Names of all existing files starting with `prefix`, sorted. The
  /// segmented WAL uses this to discover surviving segments on Open.
  virtual Status ListFiles(const std::string& prefix,
                           std::vector<std::string>* out) const = 0;

  /// Atomically rename `from` to `to`, replacing `to` if it exists. The
  /// caller is responsible for the SyncDir that makes the rename durable.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Make directory-level metadata (creates, deletes, renames) durable for
  /// the directory containing `hint` (a file path; the directory component
  /// is fsynced). The segment rotation protocol calls this after every
  /// create/recycle so a crash never observes a seq gap.
  virtual Status SyncDir(const std::string& hint) = 0;
};

/// Suffix match that also recognizes numbered WAL segments: `name` matches
/// `suffix` if it ends with `suffix` (legacy single-file logs, page files)
/// or with `suffix` + "." + <digits> (segment files like "db.wal.000017").
/// Recycle-pool files ("db.wal-recycle.0") deliberately do NOT match — they
/// hold no live log. Empty suffix matches everything.
bool WalAwareSuffixMatch(const std::string& name, const std::string& suffix);

/// In-memory Env with crash simulation. Thread-safe.
class MemEnv : public Env {
 public:
  /// Called before each write/append/sync with (file name, op, size). If it
  /// returns false the operation fails with Status::Crashed and the Env
  /// enters the crashed state (every later op fails until Crash()+Recover()).
  using WriteObserver =
      std::function<bool(const std::string& name, const char* op, size_t n)>;

  MemEnv() = default;

  Status NewFile(const std::string& name,
                 std::unique_ptr<File>* file) override;
  bool FileExists(const std::string& name) const override;
  Status DeleteFile(const std::string& name) override;
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) const override;
  /// Modeled as durable-immediately (the rotation protocol always SyncDirs
  /// right after, and the crash-just-before case is covered by failing the
  /// rename op itself via the observer). Routed through BeforeWrite with op
  /// "rename" so the fault injector can crash mid-rotation.
  Status RenameFile(const std::string& from, const std::string& to) override;
  /// Counted no-op (op "dirsync") — MemEnv metadata is always durable.
  Status SyncDir(const std::string& hint) override;

  /// Simulate a system failure: discard all un-synced writes, clear the
  /// crashed flag. Open File handles remain usable and see durable state.
  void Crash();

  /// Promote bytes [offset, offset+n) of `name`'s volatile image into the
  /// durable image, extending it if needed, without a full Sync(). This is
  /// the torn-write primitive: FaultInjectionEnv uses it to model a power
  /// cut that persisted only a prefix of a page write — the prefix must
  /// survive the subsequent Crash() or the tear would be invisible.
  Status SyncRange(const std::string& name, uint64_t offset, size_t n);

  void set_write_observer(WriteObserver obs);

  /// True once an injected fault has fired (until Crash() clears it).
  bool crashed() const;

  /// Total bytes synced across all files (for I/O accounting in benches).
  uint64_t bytes_synced() const;

  /// Number of Sync() calls across all files — the "fsync count" oracle for
  /// the group-commit tests (N concurrent commits should cost ~1 sync).
  uint64_t sync_count() const;

  // Implementation details, public for the MemFile helper in env.cc.
  struct FileState {
    std::string durable;
    std::string volatile_image;
    bool exists = true;
  };

  // Returns false (and sets crashed_) if the observer vetoes the operation.
  bool BeforeWrite(const std::string& name, const char* op, size_t n);

  uint64_t bytes_synced_ = 0;
  uint64_t sync_count_ = 0;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  WriteObserver observer_;
  bool crashed_ = false;
};

/// Real files via POSIX pread/pwrite/fsync.
class PosixEnv : public Env {
 public:
  Status NewFile(const std::string& name,
                 std::unique_ptr<File>* file) override;
  bool FileExists(const std::string& name) const override;
  Status DeleteFile(const std::string& name) override;
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) const override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& hint) override;
};

}  // namespace soreorg

#endif  // SOREORG_STORAGE_ENV_H_
