// DiskManager: page-granular I/O over one Env file, plus page allocation.
//
// Free pages ("not connected to the B+-tree", paper §2) are tracked in an
// in-memory ordered free set so the reorganizer's Find-Free-Space heuristic
// can ask for "the first free page in [lo, hi)". Allocation state is made
// recoverable by (a) serializing it into each checkpoint and (b) WAL
// ALLOC/DEALLOC records redone by the RecoveryManager.
//
// An IoObserver hook lets the simulation layer (DiskModel) account seek vs
// sequential cost per physical page access — this is how the range-scan
// experiments (E5) time "disk reads" without spinning media.

#ifndef SOREORG_STORAGE_DISK_MANAGER_H_
#define SOREORG_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/storage/env.h"
#include "src/storage/page.h"
#include "src/util/status.h"

namespace soreorg {

class DiskManager {
 public:
  /// (page_id, is_write). Called on every physical page transfer.
  using IoObserver = std::function<void(PageId, bool)>;

  DiskManager(Env* env, std::string file_name);

  /// Open/create the backing file.
  Status Open();

  /// Reads verify the per-page checksum: a mismatch returns
  /// Status::Corruption (torn or rotted images are detected, never silently
  /// replayed). A never-written all-zero page is accepted as fresh.
  Status ReadPage(PageId page_id, Page* page);
  Status WritePage(PageId page_id, const Page& page);

  /// Write a raw 4 KiB page image (the buffer pool's flush snapshot). The
  /// checksum is stamped into `page_image` in place before the write.
  Status WritePage(PageId page_id, char* page_image);

  /// fsync the page file.
  Status SyncFile();

  /// Allocate a page id: lowest free id if any, else extend the file.
  Status AllocatePage(PageId* page_id);

  /// Allocate a specific id (used by redo). Fails if already allocated.
  Status AllocatePageAt(PageId page_id);

  /// Return a page to the free set.
  Status DeallocatePage(PageId page_id);

  /// First free page id in [lo, hi), or kInvalidPageId. Backing store for
  /// the paper's Find-Free-Space heuristic (§6.1).
  PageId FirstFreeInRange(PageId lo, PageId hi) const;

  bool IsFree(PageId page_id) const;
  bool IsAllocated(PageId page_id) const;

  /// One past the highest page id ever used (file size in pages).
  PageId page_count() const;
  size_t free_count() const;

  /// Snapshot/restore (next_page_id + free set) for checkpoints.
  std::string SerializeMeta() const;
  Status RestoreMeta(const Slice& meta);

  void set_io_observer(IoObserver obs);

  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }
  /// ReadPage checksum mismatches since open (recovery surfaces this).
  uint64_t checksum_failures() const;
  void ResetStats() { pages_read_ = pages_written_ = 0; }

 private:
  Env* env_;
  std::string file_name_;
  std::unique_ptr<File> file_;

  mutable std::mutex mu_;
  PageId next_page_id_ = 0;
  std::set<PageId> free_pages_;
  IoObserver io_observer_;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t checksum_failures_ = 0;
};

/// Masked CRC32C of a 4 KiB page image, covering every byte except the
/// checksum field itself ([0, kPageChecksumOffset) ++ [kPageChecksumOffset+4,
/// kPageSize)). Exposed so tests can forge and verify images.
uint32_t PageChecksum(const char* page_image);

}  // namespace soreorg

#endif  // SOREORG_STORAGE_DISK_MANAGER_H_
