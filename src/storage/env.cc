#include "src/storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace soreorg {

bool WalAwareSuffixMatch(const std::string& name, const std::string& suffix) {
  if (suffix.empty()) return true;
  if (name.size() >= suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return true;
  }
  // "db.wal.000017" matches suffix ".wal": find suffix + "." and require the
  // remainder to be all digits.
  size_t pos = name.rfind(suffix + ".");
  if (pos == std::string::npos) return false;
  size_t digits = pos + suffix.size() + 1;
  if (digits >= name.size()) return false;
  for (size_t i = digits; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// MemEnv
// ---------------------------------------------------------------------------

namespace {

class MemFile : public File {
 public:
  MemFile(MemEnv* env, std::string name,
          std::shared_ptr<MemEnv::FileState> state, std::mutex* mu)
      : env_(env), name_(std::move(name)), state_(std::move(state)), mu_(mu) {}

  Status Read(uint64_t offset, size_t n, char* buf,
              size_t* out_n) const override {
    std::lock_guard<std::mutex> g(*mu_);
    const std::string& img = state_->volatile_image;
    if (offset >= img.size()) {
      *out_n = 0;
      return Status::OK();
    }
    size_t avail = img.size() - offset;
    size_t take = n < avail ? n : avail;
    memcpy(buf, img.data() + offset, take);
    *out_n = take;
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    if (!env_->BeforeWrite(name_, "write", data.size())) {
      return Status::Crashed("injected fault on write to " + name_);
    }
    std::lock_guard<std::mutex> g(*mu_);
    std::string& img = state_->volatile_image;
    if (img.size() < offset + data.size()) img.resize(offset + data.size());
    memcpy(img.data() + offset, data.data(), data.size());
    return Status::OK();
  }

  Status Append(const Slice& data) override {
    if (!env_->BeforeWrite(name_, "append", data.size())) {
      return Status::Crashed("injected fault on append to " + name_);
    }
    std::lock_guard<std::mutex> g(*mu_);
    state_->volatile_image.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    if (!env_->BeforeWrite(name_, "sync", 0)) {
      return Status::Crashed("injected fault on sync of " + name_);
    }
    std::lock_guard<std::mutex> g(*mu_);
    env_->bytes_synced_ +=
        state_->volatile_image.size() > state_->durable.size()
            ? state_->volatile_image.size() - state_->durable.size()
            : 0;
    env_->sync_count_ += 1;
    state_->durable = state_->volatile_image;
    return Status::OK();
  }

  uint64_t Size() const override {
    std::lock_guard<std::mutex> g(*mu_);
    return state_->volatile_image.size();
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> g(*mu_);
    if (size < state_->volatile_image.size()) {
      state_->volatile_image.resize(size);
    }
    return Status::OK();
  }

 private:
  MemEnv* env_;
  std::string name_;
  std::shared_ptr<MemEnv::FileState> state_;
  std::mutex* mu_;
};

}  // namespace

Status MemEnv::NewFile(const std::string& name, std::unique_ptr<File>* file) {
  std::shared_ptr<FileState> state;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = files_.find(name);
    if (it == files_.end() || !it->second->exists) {
      state = std::make_shared<FileState>();
      files_[name] = state;
    } else {
      state = it->second;
    }
  }
  *file = std::make_unique<MemFile>(this, name, std::move(state), &mu_);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(name);
  return it != files_.end() && it->second->exists;
}

Status MemEnv::DeleteFile(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(name);
  if (it == files_.end() || !it->second->exists) {
    return Status::NotFound(name);
  }
  it->second->exists = false;
  it->second->durable.clear();
  it->second->volatile_image.clear();
  return Status::OK();
}

Status MemEnv::ListFiles(const std::string& prefix,
                         std::vector<std::string>* out) const {
  std::lock_guard<std::mutex> g(mu_);
  out->clear();
  for (const auto& [name, state] : files_) {
    if (state->exists && name.compare(0, prefix.size(), prefix) == 0) {
      out->push_back(name);
    }
  }
  return Status::OK();  // map iteration is already sorted
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  if (!BeforeWrite(to, "rename", 0)) {
    return Status::Crashed("injected fault on rename to " + to);
  }
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(from);
  if (it == files_.end() || !it->second->exists) {
    return Status::NotFound(from);
  }
  // Atomic metadata move; durable immediately (see header). Open handles on
  // `from` keep their FileState — like POSIX fds surviving a rename.
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::SyncDir(const std::string& hint) {
  if (!BeforeWrite(hint, "dirsync", 0)) {
    return Status::Crashed("injected fault on dirsync of " + hint);
  }
  return Status::OK();
}

void MemEnv::Crash() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [name, state] : files_) {
    state->volatile_image = state->durable;
  }
  crashed_ = false;
}

Status MemEnv::SyncRange(const std::string& name, uint64_t offset, size_t n) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(name);
  if (it == files_.end() || !it->second->exists) {
    return Status::NotFound(name);
  }
  FileState& st = *it->second;
  if (offset > st.volatile_image.size()) return Status::OK();
  size_t avail = st.volatile_image.size() - offset;
  size_t take = n < avail ? n : avail;
  if (st.durable.size() < offset + take) st.durable.resize(offset + take);
  memcpy(st.durable.data() + offset, st.volatile_image.data() + offset, take);
  return Status::OK();
}

void MemEnv::set_write_observer(WriteObserver obs) {
  std::lock_guard<std::mutex> g(mu_);
  observer_ = std::move(obs);
}

bool MemEnv::crashed() const {
  std::lock_guard<std::mutex> g(mu_);
  return crashed_;
}

uint64_t MemEnv::bytes_synced() const {
  std::lock_guard<std::mutex> g(mu_);
  return bytes_synced_;
}

uint64_t MemEnv::sync_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return sync_count_;
}

bool MemEnv::BeforeWrite(const std::string& name, const char* op, size_t n) {
  WriteObserver obs;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (crashed_) return false;
    obs = observer_;
  }
  if (obs && !obs(name, op, n)) {
    std::lock_guard<std::mutex> g(mu_);
    crashed_ = true;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// PosixEnv
// ---------------------------------------------------------------------------

namespace {

class PosixFile : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* buf,
              size_t* out_n) const override {
    ssize_t r = ::pread(fd_, buf, n, static_cast<off_t>(offset));
    if (r < 0) return Status::IOError(strerror(errno));
    *out_n = static_cast<size_t>(r);
    return Status::OK();
  }

  Status Write(uint64_t offset, const Slice& data) override {
    ssize_t r =
        ::pwrite(fd_, data.data(), data.size(), static_cast<off_t>(offset));
    if (r < 0 || static_cast<size_t>(r) != data.size()) {
      return Status::IOError(strerror(errno));
    }
    return Status::OK();
  }

  Status Append(const Slice& data) override {
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) return Status::IOError(strerror(errno));
    return Write(static_cast<uint64_t>(end), data);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::IOError(strerror(errno));
    return Status::OK();
  }

  uint64_t Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IOError(strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

}  // namespace

Status PosixEnv::NewFile(const std::string& name,
                         std::unique_ptr<File>* file) {
  int fd = ::open(name.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(name + ": " + strerror(errno));
  *file = std::make_unique<PosixFile>(fd);
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& name) const {
  return ::access(name.c_str(), F_OK) == 0;
}

Status PosixEnv::DeleteFile(const std::string& name) {
  if (::unlink(name.c_str()) != 0) {
    return Status::IOError(name + ": " + strerror(errno));
  }
  return Status::OK();
}

Status PosixEnv::ListFiles(const std::string& prefix,
                           std::vector<std::string>* out) const {
  out->clear();
  size_t slash = prefix.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : prefix.substr(0, slash);
  std::string stem =
      slash == std::string::npos ? prefix : prefix.substr(slash + 1);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError(dir + ": " + strerror(errno));
  while (struct dirent* e = ::readdir(d)) {
    std::string base(e->d_name);
    if (base.compare(0, stem.size(), stem) != 0) continue;
    out->push_back(slash == std::string::npos ? base : dir + "/" + base);
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError(from + " -> " + to + ": " + strerror(errno));
  }
  return Status::OK();
}

Status PosixEnv::SyncDir(const std::string& hint) {
  size_t slash = hint.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : hint.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(dir + ": " + strerror(errno));
  Status s;
  if (::fsync(fd) != 0) s = Status::IOError(dir + ": " + strerror(errno));
  ::close(fd);
  return s;
}

}  // namespace soreorg
