// SlottedPage: classic slot-array + cell-heap layout over a Page.
//
// Layout after the 32-byte common header:
//   [32..33] num_slots   (u16)
//   [34..35] heap_top    (u16)  offset of the lowest byte used by any cell
//   [36..37] aux_off     (u16)  offset of the aux blob (0 = none)
//   [38..39] aux_size    (u16)
//   [40.. ]  slot array: one u16 cell-offset per slot, in logical order
//   ........ free space ........
//   [heap_top .. heap_end) cell heap, grows downward
//
// Cells are opaque byte strings; the B+-tree node layer defines their
// contents. The "aux" blob stores the base-page low-mark key (paper §7.1):
// it is set once when the page is formatted and pinned at the top of the
// heap for the page's lifetime.
//
// Each cell is stored with a 2-byte length prefix so removal/compaction can
// walk the heap.

#ifndef SOREORG_STORAGE_SLOTTED_PAGE_H_
#define SOREORG_STORAGE_SLOTTED_PAGE_H_

#include "src/storage/page.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace soreorg {

class SlottedPage {
 public:
  /// Wrap an existing, already-formatted page.
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Format the page: zero slots, empty heap, optional aux blob (e.g. the
  /// low-mark key). The common header fields are the caller's business.
  void Init(const Slice& aux = Slice());

  int slot_count() const;

  /// The cell stored in slot i (0 <= i < slot_count()).
  Slice GetCell(int i) const;

  /// Insert `cell` so it becomes slot i, shifting later slots up.
  /// Fails with kBusy if the page lacks room even after compaction.
  Status InsertCell(int i, const Slice& cell);

  /// Replace slot i's cell.
  Status SetCell(int i, const Slice& cell);

  /// Remove slot i, shifting later slots down.
  void RemoveCell(int i);

  /// Remove every cell (keeps aux).
  void Clear();

  /// Bytes available for a new cell (accounting for its slot entry), after
  /// compaction if needed.
  size_t FreeSpace() const;

  /// Bytes used by cells + slots (excludes headers and aux). This is the
  /// numerator of the fill factor.
  size_t UsedSpace() const;

  /// Capacity available to cells+slots on an empty page with this aux size.
  size_t Capacity() const;

  /// UsedSpace()/Capacity(), in [0,1].
  double FillFactor() const;

  Slice GetAux() const;

  /// Defragment the heap in place.
  void Compact();

  Page* page() { return page_; }
  const Page* page() const { return page_; }

  static constexpr size_t kSlotsOff = Page::kHeaderSize;       // 32
  static constexpr size_t kNumSlotsOff = kSlotsOff + 0;        // 32
  static constexpr size_t kHeapTopOff = kSlotsOff + 2;         // 34
  static constexpr size_t kAuxOffOff = kSlotsOff + 4;          // 36
  static constexpr size_t kAuxSizeOff = kSlotsOff + 6;         // 38
  static constexpr size_t kSlotArrayOff = kSlotsOff + 8;       // 40
  static constexpr size_t kCellLenPrefix = 2;

 private:
  uint16_t num_slots() const { return DecodeFixed16(page_->data() + kNumSlotsOff); }
  void set_num_slots(uint16_t n) { EncodeFixed16(page_->data() + kNumSlotsOff, n); }
  uint16_t heap_top() const { return DecodeFixed16(page_->data() + kHeapTopOff); }
  void set_heap_top(uint16_t v) { EncodeFixed16(page_->data() + kHeapTopOff, v); }
  uint16_t aux_off() const { return DecodeFixed16(page_->data() + kAuxOffOff); }
  uint16_t aux_size() const { return DecodeFixed16(page_->data() + kAuxSizeOff); }

  uint16_t slot(int i) const {
    return DecodeFixed16(page_->data() + kSlotArrayOff + 2 * i);
  }
  void set_slot(int i, uint16_t off) {
    EncodeFixed16(page_->data() + kSlotArrayOff + 2 * i, off);
  }

  /// End of the heap region: just below the aux blob, or the page end.
  uint16_t heap_end() const {
    return aux_off() != 0 ? aux_off() : static_cast<uint16_t>(kPageSize);
  }

  /// Contiguous bytes between the slot array and heap_top.
  size_t ContiguousFree() const;

  Page* page_;
};

}  // namespace soreorg

#endif  // SOREORG_STORAGE_SLOTTED_PAGE_H_
