#include "src/storage/buffer_pool.h"

#include <cassert>
#include <thread>

namespace soreorg {

namespace {

// murmur3 fmix32: PageIds are often sequential ranges (a leaf run being
// compacted), and without mixing they would all land in neighbouring shards.
uint32_t MixPageId(PageId id) {
  uint32_t h = static_cast<uint32_t>(id);
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

}  // namespace

void RacyCopyPageBytes(char* dst, const char* src) {
#if defined(SOREORG_TSAN_BUILD)
  // A library memcpy goes through the sanitizer's interceptor, which records
  // the reads regardless of the no_sanitize attribute on this function. Copy
  // through volatile words instead: volatile keeps the compiler from
  // outlining the loop back into a memcpy call, and the attribute keeps the
  // loop itself uninstrumented. Any torn word is discarded by the version
  // validation that follows the copy.
  const volatile uint64_t* s = reinterpret_cast<const volatile uint64_t*>(src);
  uint64_t* d = reinterpret_cast<uint64_t*>(dst);
  for (size_t i = 0; i < kPageSize / sizeof(uint64_t); ++i) d[i] = s[i];
#else
  memcpy(dst, src, kPageSize);
#endif
}

size_t BufferPool::DefaultShardTarget() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return kDefaultShards;  // unknown: keep the old default
  size_t target = 1;
  while (target < hw && target < kDefaultShards) target <<= 1;
  return target;
}

size_t BufferPool::PickShardCount(size_t pool_size, size_t requested) {
  if (pool_size == 0) pool_size = 1;
  size_t shards;
  if (requested == 0) {
    // Adaptive default: no point sharding past the core count — on a small
    // machine the extra shards only spread the working set across more
    // mutex/LRU cache lines without removing any real contention (visible
    // as shards=16 trailing shards=1 on single-core hot-hit runs).
    shards = DefaultShardTarget();
    while (shards > 1 && pool_size / shards < kMinFramesPerShard) shards >>= 1;
  } else {
    shards = 1;
    while (shards < requested) shards <<= 1;
    while (shards > 1 && shards > pool_size) shards >>= 1;
  }
  return shards;
}

BufferPool::BufferPool(DiskManager* disk, size_t pool_size, WalFlushFn wal_flush,
                       size_t num_shards)
    : disk_(disk),
      wal_flush_(std::move(wal_flush)),
      shards_(PickShardCount(pool_size, num_shards)),
      shard_mask_(shards_.size() - 1),
      total_frames_(pool_size == 0 ? 1 : pool_size) {
  const size_t n_shards = shards_.size();
  const size_t base = total_frames_ / n_shards;
  const size_t rem = total_frames_ % n_shards;
  for (size_t i = 0; i < n_shards; ++i) {
    const size_t n = base + (i < rem ? 1 : 0);
    shards_[i].frames = std::vector<Frame>(n);
    shards_[i].free_frames.reserve(n);
    // Push in reverse so pop_back hands out frame 0 first (matches the old
    // pool's lowest-unused-frame-first behaviour).
    for (size_t f = n; f-- > 0;) shards_[i].free_frames.push_back(f);
    // Resident index: fixed capacity, >= 2x frames and >= 8, power of two.
    size_t cap = 8;
    while (cap < 2 * n) cap <<= 1;
    shards_[i].index = std::make_unique<std::atomic<uint64_t>[]>(cap);
    for (size_t s = 0; s < cap; ++s) {
      shards_[i].index[s].store(kIdxEmpty, std::memory_order_relaxed);
    }
    shards_[i].index_mask = cap - 1;
    shards_[i].in_lru = std::make_unique<std::atomic<uint8_t>[]>(n == 0 ? 1 : n);
    for (size_t f = 0; f < n; ++f) {
      shards_[i].in_lru[f].store(0, std::memory_order_relaxed);
    }
  }
}

bool OptimisticPageGuard::Capture(Page* frame, PageId expected) {
  frame_ = frame;
  stamp_ = frame->latch().OptimisticVersion();
  if (stamp_ & 1) return false;  // exclusive writer / frame replacement active
  RacyCopyPageBytes(image_.data(), frame->data());
  if (!frame->latch().ValidateVersion(stamp_)) return false;
  // Self-id check: the frame may have been recycled for another page (and
  // back to even parity) between the caller's index probe and our stamp.
  if (image_.header_page_id() != expected) return false;
  image_.set_page_id(expected);
  return true;
}

BufferPool::Shard& BufferPool::shard_for(PageId page_id) {
  return shards_[MixPageId(page_id) & shard_mask_];
}

void BufferPool::SetFetchHook(std::function<void(PageId)> hook) {
  fetch_hook_ = std::move(hook);
}

uint64_t BufferPool::hit_count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.hits.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t BufferPool::miss_count() const {
  return misses_.load(std::memory_order_relaxed);
}

void BufferPool::ShardTouch(Shard* shard, size_t frame_idx) {
  ShardLruErase(shard, frame_idx);
  if (shard->frames[frame_idx].page->pin_count() == 0) {
    shard->lru.push_front(frame_idx);
    shard->lru_pos[frame_idx] = shard->lru.begin();
    shard->in_lru[frame_idx].store(1, std::memory_order_release);
  }
}

void BufferPool::ShardLruErase(Shard* shard, size_t frame_idx) {
  auto it = shard->lru_pos.find(frame_idx);
  if (it != shard->lru_pos.end()) {
    shard->lru.erase(it->second);
    shard->lru_pos.erase(it);
  }
  shard->in_lru[frame_idx].store(0, std::memory_order_release);
}

void BufferPool::ShardIndexInsert(Shard* shard, PageId pid, size_t frame_idx) {
  // Periodic in-place compaction: erase/insert churn accumulates tombstones
  // that stretch probe chains past the lock-free cap. Concurrent lock-free
  // probes racing a rebuild can only false-miss (and fall back to the
  // mutex path) or find a duplicate entry for the same pid — both point at
  // the same frame, since the pid → frame mapping itself is stable under mu.
  if (shard->index_tombstones > (shard->index_mask + 1) / 4) {
    ShardIndexRebuild(shard);
  }
  // Idempotent insert: scan the whole chain (to the first empty) before
  // choosing a slot, refreshing a live entry for this pid in place if one
  // exists. Stopping at the first tombstone instead would plant a duplicate
  // whenever the pid is already present — e.g. the rebuild above reinserted
  // it from page_table, where install paths record the pid first. A
  // duplicate is not benign: ShardIndexErase tombstones only the first
  // match, and the survivor would keep resolving the pid to a frame long
  // after it was recycled for another page.
  size_t slot = MixPageId(pid) & shard->index_mask;
  size_t target = SIZE_MAX;  // first reusable (tombstone) slot seen
  while (true) {
    uint64_t e = shard->index[slot].load(std::memory_order_relaxed);
    if (e == kIdxEmpty) break;
    if (e == kIdxTombstone) {
      if (target == SIZE_MAX) target = slot;
    } else if (static_cast<PageId>(e >> 32) == pid) {
      shard->index[slot].store(IdxEncode(pid, frame_idx),
                               std::memory_order_release);
      return;
    }
    slot = (slot + 1) & shard->index_mask;
  }
  if (target == SIZE_MAX) {
    target = slot;  // the empty slot that ended the scan
  } else {
    --shard->index_tombstones;
  }
  shard->index[target].store(IdxEncode(pid, frame_idx),
                             std::memory_order_release);
}

void BufferPool::ShardIndexErase(Shard* shard, PageId pid) {
  size_t slot = MixPageId(pid) & shard->index_mask;
  while (true) {
    uint64_t e = shard->index[slot].load(std::memory_order_relaxed);
    if (e == kIdxEmpty) return;  // not present (never inserted / rebuilt away)
    if (e != kIdxTombstone && static_cast<PageId>(e >> 32) == pid) {
      shard->index[slot].store(kIdxTombstone, std::memory_order_release);
      ++shard->index_tombstones;
      return;
    }
    slot = (slot + 1) & shard->index_mask;
  }
}

void BufferPool::ShardIndexRebuild(Shard* shard) {
  const size_t cap = shard->index_mask + 1;
  for (size_t s = 0; s < cap; ++s) {
    shard->index[s].store(kIdxEmpty, std::memory_order_release);
  }
  shard->index_tombstones = 0;
  for (const auto& entry : shard->page_table) {
    size_t slot = MixPageId(entry.first) & shard->index_mask;
    while (shard->index[slot].load(std::memory_order_relaxed) != kIdxEmpty) {
      slot = (slot + 1) & shard->index_mask;
    }
    shard->index[slot].store(IdxEncode(entry.first, entry.second),
                             std::memory_order_release);
  }
}

Page* BufferPool::ShardIndexProbe(const Shard& shard, PageId pid,
                                  size_t* frame_idx) const {
  size_t slot = MixPageId(pid) & shard.index_mask;
  for (size_t probe = 0; probe <= kIdxMaxProbe; ++probe) {
    const uint64_t e = shard.index[slot].load(std::memory_order_acquire);
    if (e == kIdxEmpty) return nullptr;
    if (e != kIdxTombstone && static_cast<PageId>(e >> 32) == pid) {
      const size_t idx = static_cast<size_t>(e & 0xffffffffu) - 2;
      *frame_idx = idx;
      return shard.frames[idx].page.get();
    }
    slot = (slot + 1) & shard.index_mask;
  }
  return nullptr;  // probe cap: treat as a miss, the caller takes the mutex
}

Page* BufferPool::FindResident(PageId page_id) {
  if (fetch_hook_) fetch_hook_(page_id);
  Shard& shard = shard_for(page_id);
  size_t frame_idx;
  return ShardIndexProbe(shard, page_id, &frame_idx);
}

Status BufferPool::ShardGetVictim(Shard* shard, size_t* frame_idx) {
  // Either source hands the frame back *claimed* (pin count at kEvictClaim):
  // the claim CAS is what arbitrates against lock-free fast-path pins, which
  // see the negative count, undo their increment, and take the mutex path.
  // The caller converts the claim into the first real pin with
  // AdjustPin(1 - kEvictClaim) once the frame is reinstalled (or releases it
  // with AdjustPin(-kEvictClaim) on failure).
  //
  // Prefer a never-used (or dropped) frame.
  for (size_t i = shard->free_frames.size(); i-- > 0;) {
    size_t idx = shard->free_frames[i];
    Page* p = shard->frames[idx].page.get();
    // A transient lock-free pin (stale index hit racing the frame's drop)
    // can briefly hold the count above zero; skip such a frame this round.
    if (!p->TryClaimForEvict(kEvictClaim)) continue;
    shard->free_frames.erase(shard->free_frames.begin() + i);
    *frame_idx = idx;
    return Status::OK();
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
    size_t idx = *it;
    Page* p = shard->frames[idx].page.get();
    // The LRU list may hold frames whose pins arrived through the lock-free
    // fast path; the claim CAS fails on those and we move on.
    if (!p->TryClaimForEvict(kEvictClaim)) continue;
    if (p->is_dirty()) {
      // shard → flush lock order; re-check under flush_mu_ because a
      // cross-shard dependency flush may have cleaned it meanwhile.
      std::lock_guard<std::mutex> fg(flush_mu_);
      if (p->is_dirty()) {
        Status s = FlushLockedWrite(p);
        // Busy: the victim (or one of its write-order dependencies) has an
        // exclusive writer mid-update. Skip to the next LRU candidate rather
        // than blocking with two pool mutexes held.
        if (s.IsBusy()) {
          p->AdjustPin(-kEvictClaim);
          continue;
        }
        if (!s.ok()) {
          p->AdjustPin(-kEvictClaim);
          return s;
        }
      }
    }
    ShardIndexErase(shard, p->page_id());
    shard->page_table.erase(p->page_id());
    ShardLruErase(shard, idx);
    *frame_idx = idx;
    return Status::OK();
  }
  return Status::Busy("buffer pool shard exhausted (all pages pinned)");
}

Status BufferPool::FlushLockedSync() {
  Status s = disk_->SyncFile();
  if (!s.ok()) return s;
  for (PageId p : written_unsynced_) durable_.insert(p);
  written_unsynced_.clear();
  FlushLockedProcessDeferredDeallocs();
  return Status::OK();
}

void BufferPool::FlushLockedProcessDeferredDeallocs() {
  auto it = deferred_deallocs_.begin();
  while (it != deferred_deallocs_.end()) {
    if (durable_.count(it->second) > 0) {
      disk_->DeallocatePage(it->first);
      it = deferred_deallocs_.erase(it);
    } else {
      ++it;
    }
  }
}

Status BufferPool::FlushLockedWriteOne(Page* p) {
  const PageId pid = p->page_id();
  // Copy the page image through the latch's snapshot interlock instead of
  // reading the live bytes: an exclusive writer may be mid-update, and we
  // must not block on its latch while holding flush_mu_ (it may be parked on
  // flush_mu_ inside a fetch-eviction or dirty unpin). Unstable bytes defer
  // the page — callers retry after releasing flush_mu_.
  if (!p->latch().SnapshotBytes(p->data(), flush_scratch_, kPageSize)) {
    return Status::Busy("page bytes unstable (exclusive writer active)");
  }
  // WAL interlock against the snapshot's LSN: it is the image being written,
  // not whatever the live bytes say by now.
  const Lsn snap_lsn = DecodeFixed64(flush_scratch_);
  if (wal_flush_ && snap_lsn != kInvalidLsn) {
    Status s = wal_flush_(snap_lsn);
    if (!s.ok()) return s;
  }
  Status s = disk_->WritePage(pid, flush_scratch_);
  if (!s.ok()) return s;
  // A writer that modified bytes after our snapshot re-marks the page dirty
  // at unpin — that transition takes flush_mu_, so it serializes after this
  // clear and the newer image is flushed on the next pass.
  p->set_dirty(false);
  dirty_pages_.erase(pid);
  durable_.erase(pid);
  written_unsynced_.insert(pid);
  return Status::OK();
}

Status BufferPool::FlushLockedWrite(Page* page) {
  // Post-order walk of the write-order graph: every `first` is written, and
  // its fsync barrier issued, before its dependent. Iterative on purpose:
  // must_precede_ deliberately retains edges across frame drops (the id may
  // come back from the free list as a new page), so after enough reuse the
  // graph can contain a cycle, and the natural recursive form chases it
  // until the stack overflows. A back edge to a page already on the current
  // walk path is such a stale constraint — both orders cannot hold — and is
  // skipped; the dependent's edge set is dropped wholesale once its barrier
  // has been issued.
  struct Node {
    PageId pid;
    bool expanded;
  };
  std::vector<Node> stack;
  std::set<PageId> on_path;
  stack.push_back({page->page_id(), false});
  while (!stack.empty()) {
    const PageId pid = stack.back().pid;
    if (!stack.back().expanded) {
      stack.back().expanded = true;
      on_path.insert(pid);
      auto dep = must_precede_.find(pid);
      if (dep != must_precede_.end()) {
        for (PageId first : dep->second) {
          if (durable_.count(first) > 0) continue;
          if (on_path.count(first) > 0) continue;  // stale cycle edge
          stack.push_back({first, false});
        }
      }
      continue;
    }
    stack.pop_back();
    on_path.erase(pid);
    // All of pid's dependencies have been written; issue the barrier if any
    // of them is not durable yet (just written above, or written earlier
    // without a sync).
    auto dep = must_precede_.find(pid);
    if (dep != must_precede_.end()) {
      bool need_sync = false;
      for (PageId first : dep->second) {
        if (durable_.count(first) == 0) {
          need_sync = true;
          break;
        }
      }
      if (need_sync) {
        Status s = FlushLockedSync();
        if (!s.ok()) return s;
      }
      must_precede_.erase(pid);
    }
    // The registry resolves pid to its frame regardless of which shard it
    // lives in — no shard lock needed, so no cross-shard deadlock. Absent
    // or already-clean pages (e.g. a dependency shared by two dependents)
    // need no write; the ordering constraint still got its barrier above.
    auto reg = dirty_pages_.find(pid);
    if (reg != dirty_pages_.end() && reg->second->is_dirty()) {
      Status s = FlushLockedWriteOne(reg->second);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status BufferPool::FlushLockedWriteAllDirty() {
  // Snapshot: FlushLockedWrite erases entries as it goes, and dependency
  // flushes may clean pages we have not reached yet.
  std::vector<Page*> dirty;
  dirty.reserve(dirty_pages_.size());
  for (const auto& entry : dirty_pages_) dirty.push_back(entry.second);
  bool busy = false;
  for (Page* p : dirty) {
    if (!p->is_dirty()) continue;  // already written as someone's dependency
    Status s = FlushLockedWrite(p);
    if (s.IsBusy()) {
      // A writer is mid-update on this page (or a dependency): flush the
      // rest now, report Busy so the caller retries after releasing
      // flush_mu_ — the writer needs it to finish its unpin.
      busy = true;
      continue;
    }
    if (!s.ok()) return s;
  }
  return busy ? Status::Busy("dirty pages deferred (writers active)")
              : Status::OK();
}

Status BufferPool::FetchPage(PageId page_id, Page** page) {
  if (fetch_hook_) fetch_hook_(page_id);
  Shard& shard = shard_for(page_id);
  // Lock-free hit path: resolve through the resident index and pin without
  // the shard mutex. The pin is validated two ways: the pre-increment count
  // must not carry an eviction claim, and the index must still map the page
  // to this frame afterwards (our pin makes a recycle impossible from that
  // point on, so a stable mapping means the bytes are this page's). The
  // frame deliberately stays wherever it is in the LRU list — membership is
  // advisory now, the evictor's claim CAS is what protects pinned frames.
  {
    size_t frame_idx;
    Page* p = ShardIndexProbe(shard, page_id, &frame_idx);
    if (p != nullptr) {
      if (p->IncPin() >= 0 &&
          ShardIndexProbe(shard, page_id, &frame_idx) == p) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        *page = p;
        return Status::OK();
      }
      // Claimed by an evictor or recycled under us: undo, go through the
      // mutex. (On a recycled frame this transient pin merely delays the
      // frame's next eviction by one claim attempt.)
      p->DecPin();
    }
  }
  std::lock_guard<std::mutex> g(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it != shard.page_table.end()) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    Page* p = shard.frames[it->second].page.get();
    p->IncPin();
    ShardTouch(&shard, it->second);
    *page = p;
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  size_t idx;
  Status s = ShardGetVictim(&shard, &idx);
  if (!s.ok()) return s;
  Page* p = shard.frames[idx].page.get();
  // Replace the frame's bytes under the version bracket: an optimistic
  // reader still holding this frame (stale index value or old capture) must
  // see the stamp move, whether it races the disk read or a completed
  // reinstall of a different page.
  p->latch().BeginReplace();
  s = disk_->ReadPage(page_id, p);
  if (!s.ok()) {
    p->latch().EndReplace();
    p->AdjustPin(-kEvictClaim);  // release the eviction claim
    shard.free_frames.push_back(idx);
    return s;
  }
  p->set_page_id(page_id);
  p->set_dirty(false);
  p->latch().EndReplace();
  p->AdjustPin(1 - kEvictClaim);  // claim -> first pin
  shard.page_table[page_id] = idx;
  ShardIndexInsert(&shard, page_id, idx);
  ShardTouch(&shard, idx);
  *page = p;
  return Status::OK();
}

Status BufferPool::NewPage(PageId* page_id, Page** page) {
  PageId pid;
  Status s = disk_->AllocatePage(&pid);
  if (!s.ok()) return s;
  Shard& shard = shard_for(pid);
  std::lock_guard<std::mutex> g(shard.mu);
  // The allocator can hand back a freed pid whose old image never left the
  // pool (recovery redo deallocates on disk without touching frames). Drop
  // that frame first: the resident index keeps the first entry it finds for
  // a pid, so a silent page_table overwrite would leave lock-free readers
  // resolving the pid to the stale frame.
  s = ShardDropFrame(&shard, pid);
  if (!s.ok()) {
    disk_->DeallocatePage(pid);
    return s;
  }
  size_t idx;
  s = ShardGetVictim(&shard, &idx);
  if (!s.ok()) {
    disk_->DeallocatePage(pid);
    return s;
  }
  Page* p = shard.frames[idx].page.get();
  p->latch().BeginReplace();
  p->Reset();
  p->set_page_id(pid);
  p->SetHeaderPageId(pid);
  p->latch().EndReplace();
  p->AdjustPin(1 - kEvictClaim);  // claim -> first pin
  shard.page_table[pid] = idx;
  ShardIndexInsert(&shard, pid, idx);
  ShardTouch(&shard, idx);
  {
    std::lock_guard<std::mutex> fg(flush_mu_);
    p->set_dirty(true);
    dirty_pages_[pid] = p;
  }
  *page_id = pid;
  *page = p;
  return Status::OK();
}

Status BufferPool::NewFrameForExisting(PageId page_id, Page** page) {
  Shard& shard = shard_for(page_id);
  std::lock_guard<std::mutex> g(shard.mu);
  // The destination pid comes from the free set, but its freed image may
  // still sit in a frame (same stale-resident hazard as NewPage); drop it
  // before remapping so no shadowing index entry survives.
  Status drop = ShardDropFrame(&shard, page_id);
  if (!drop.ok()) return drop;
  auto it = shard.page_table.find(page_id);
  if (it != shard.page_table.end()) {
    Page* p = shard.frames[it->second].page.get();
    p->IncPin();
    ShardTouch(&shard, it->second);
    *page = p;
    return Status::OK();
  }
  size_t idx;
  Status s = ShardGetVictim(&shard, &idx);
  if (!s.ok()) return s;
  Page* p = shard.frames[idx].page.get();
  p->latch().BeginReplace();
  p->Reset();
  p->set_page_id(page_id);
  p->SetHeaderPageId(page_id);
  p->latch().EndReplace();
  p->AdjustPin(1 - kEvictClaim);  // claim -> first pin
  shard.page_table[page_id] = idx;
  ShardIndexInsert(&shard, page_id, idx);
  ShardTouch(&shard, idx);
  {
    std::lock_guard<std::mutex> fg(flush_mu_);
    p->set_dirty(true);
    dirty_pages_[page_id] = p;
  }
  *page = p;
  return Status::OK();
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  Shard& shard = shard_for(page_id);
  // Lock-free clean-unpin path: the caller's pin keeps the frame resident
  // and its index entry stable, so a successful probe is authoritative. The
  // shard mutex is only needed when the frame must (re)enter the LRU list
  // and is not already there; a frame still in the list keeps its old
  // recency — advisory staleness the evictor tolerates.
  if (!dirty) {
    size_t frame_idx;
    Page* p = ShardIndexProbe(shard, page_id, &frame_idx);
    if (p != nullptr) {
      const int prior = p->DecPin();
      if (prior <= 0) {
        p->AdjustPin(1);  // undo; preserve the mutex path's error contract
        return Status::InvalidArgument("unpin of unpinned page");
      }
      if (prior == 1 &&
          shard.in_lru[frame_idx].load(std::memory_order_acquire) == 0) {
        std::lock_guard<std::mutex> g(shard.mu);
        auto it = shard.page_table.find(page_id);
        if (it != shard.page_table.end() && it->second == frame_idx) {
          ShardTouch(&shard, frame_idx);  // adds only if still unpinned
        }
      }
      return Status::OK();
    }
  }
  std::lock_guard<std::mutex> g(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) {
    return Status::InvalidArgument("unpin of unknown page");
  }
  Page* p = shard.frames[it->second].page.get();
  if (p->pin_count() <= 0) {
    return Status::InvalidArgument("unpin of unpinned page");
  }
  if (dirty) {
    // The dirty transition must happen under flush_mu_: a concurrent
    // dependency flush could otherwise clean-and-deregister the page while
    // we mark it dirty, leaving a dirty page the registry cannot see.
    std::lock_guard<std::mutex> fg(flush_mu_);
    p->set_dirty(true);
    durable_.erase(page_id);
    dirty_pages_[page_id] = p;
  }
  if (p->DecPin() == 1) {
    ShardTouch(&shard, it->second);  // becomes evictable
  }
  return Status::OK();
}

Status BufferPool::ShardDropFrame(Shard* shard, PageId page_id) {
  auto it = shard->page_table.find(page_id);
  if (it != shard->page_table.end()) {
    size_t idx = it->second;
    Page* p = shard->frames[idx].page.get();
    // Claim, don't just check: a lock-free fetch could pin the frame between
    // a bare pin_count() read and the index erase below. The claim makes
    // such a racer undo its pin and take the mutex path (where the page is
    // gone). A transient lock-free pin also fails the CAS; report Busy, same
    // as for a real pin.
    if (!p->TryClaimForEvict(kEvictClaim)) {
      return Status::Busy("delete of pinned page");
    }
    ShardIndexErase(shard, page_id);
    shard->page_table.erase(it);
    ShardLruErase(shard, idx);
    // The bytes stay as they are, but any in-flight optimistic capture of
    // them must not validate once the page has left the pool.
    p->latch().InvalidateVersion();
    p->AdjustPin(-kEvictClaim);  // frame rests in the free list at pin 0
    shard->free_frames.push_back(idx);
    std::lock_guard<std::mutex> fg(flush_mu_);
    p->set_dirty(false);
    dirty_pages_.erase(page_id);
    written_unsynced_.erase(page_id);
    durable_.erase(page_id);
    return Status::OK();
  }
  // Keep any must_precede_ entry: if the page id is reused as a new
  // destination before its write-order dependency is durable, the stale
  // gate forces an (otherwise unnecessary but safe) fsync barrier — which
  // is exactly what protects the old image the dependency was guarding.
  std::lock_guard<std::mutex> fg(flush_mu_);
  written_unsynced_.erase(page_id);
  durable_.erase(page_id);
  return Status::OK();
}

Status BufferPool::DeletePage(PageId page_id) {
  Shard& shard = shard_for(page_id);
  std::lock_guard<std::mutex> g(shard.mu);
  Status s = ShardDropFrame(&shard, page_id);
  if (!s.ok()) return s;
  return disk_->DeallocatePage(page_id);
}

Status BufferPool::DeletePageDeferred(PageId victim, PageId until) {
  Shard& shard = shard_for(victim);
  std::lock_guard<std::mutex> g(shard.mu);
  Status s = ShardDropFrame(&shard, victim);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> fg(flush_mu_);
  if (durable_.count(until) > 0) {
    return disk_->DeallocatePage(victim);
  }
  deferred_deallocs_.emplace_back(victim, until);
  return Status::OK();
}

// The flush entry points below retry on Busy with every pool mutex released
// between attempts: the exclusive writer that made the bytes unstable may
// itself be parked on flush_mu_ (dirty unpin, fetch-eviction), so spinning
// while holding it would livelock. Writers hold exclusive latches only for
// short in-memory updates, so the loops terminate.

Status BufferPool::FlushPage(PageId page_id) {
  Shard& shard = shard_for(page_id);
  while (true) {
    {
      std::lock_guard<std::mutex> g(shard.mu);
      auto it = shard.page_table.find(page_id);
      if (it == shard.page_table.end()) {
        return Status::NotFound("flush of uncached page");
      }
      Page* p = shard.frames[it->second].page.get();
      if (!p->is_dirty()) return Status::OK();
      std::lock_guard<std::mutex> fg(flush_mu_);
      if (!p->is_dirty()) return Status::OK();  // cleaned as a dependency
      Status s = FlushLockedWrite(p);
      if (!s.IsBusy()) return s;
    }
    std::this_thread::yield();
  }
}

Status BufferPool::FlushAll() {
  while (true) {
    {
      std::lock_guard<std::mutex> fg(flush_mu_);
      Status s = FlushLockedWriteAllDirty();
      if (!s.IsBusy()) return s;
    }
    std::this_thread::yield();
  }
}

Status BufferPool::FlushAndSync() {
  while (true) {
    {
      std::lock_guard<std::mutex> fg(flush_mu_);
      Status s = FlushLockedWriteAllDirty();
      if (s.ok()) return FlushLockedSync();
      if (!s.IsBusy()) return s;
    }
    std::this_thread::yield();
  }
}

Status BufferPool::ForcePages(const std::vector<PageId>& page_ids) {
  while (true) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> fg(flush_mu_);
      bool wrote = false;
      for (PageId pid : page_ids) {
        auto it = dirty_pages_.find(pid);
        if (it == dirty_pages_.end()) continue;  // uncached or already clean
        Status s = FlushLockedWrite(it->second);
        if (s.IsBusy()) {
          busy = true;
          continue;
        }
        if (!s.ok()) return s;
        wrote = true;
      }
      if (!busy) {
        // Pages written on an earlier (Busy) attempt sit in
        // written_unsynced_, so the sync condition still sees them.
        if (wrote || !written_unsynced_.empty()) {
          return FlushLockedSync();
        }
        return Status::OK();
      }
    }
    std::this_thread::yield();
  }
}

void BufferPool::BeginApply() {
  std::lock_guard<std::mutex> g(apply_mu_);
  ++active_appliers_;
}

void BufferPool::EndApply() {
  std::lock_guard<std::mutex> g(apply_mu_);
  if (--active_appliers_ == 0) apply_cv_.notify_all();
}

Lsn BufferPool::CaptureAtQuiescence(const std::function<Lsn()>& capture) {
  std::unique_lock<std::mutex> l(apply_mu_);
  apply_cv_.wait(l, [&] { return active_appliers_ == 0; });
  return capture();
}

void BufferPool::AddWriteOrder(PageId first, PageId then) {
  std::lock_guard<std::mutex> fg(flush_mu_);
  must_precede_[then].insert(first);
}

bool BufferPool::IsDurable(PageId page_id) const {
  std::lock_guard<std::mutex> fg(flush_mu_);
  return durable_.count(page_id) > 0;
}

size_t BufferPool::deferred_dealloc_count() const {
  std::lock_guard<std::mutex> fg(flush_mu_);
  return deferred_deallocs_.size();
}

}  // namespace soreorg
