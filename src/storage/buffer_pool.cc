#include "src/storage/buffer_pool.h"

#include <cassert>

namespace soreorg {

BufferPool::BufferPool(DiskManager* disk, size_t pool_size,
                       WalFlushFn wal_flush)
    : disk_(disk), wal_flush_(std::move(wal_flush)), frames_(pool_size) {}

void BufferPool::SetFetchHook(std::function<void(PageId)> hook) {
  fetch_hook_ = std::move(hook);
}

void BufferPool::LockedTouch(size_t frame_idx) {
  auto it = lru_pos_.find(frame_idx);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
    lru_pos_.erase(it);
  }
  if (frames_[frame_idx].page->pin_count() == 0) {
    lru_.push_front(frame_idx);
    lru_pos_[frame_idx] = lru_.begin();
  }
}

Status BufferPool::LockedGetVictim(size_t* frame_idx) {
  // Prefer a never-used frame.
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].in_use) {
      *frame_idx = i;
      return Status::OK();
    }
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t idx = *it;
    Page* p = frames_[idx].page.get();
    if (p->pin_count() > 0) continue;
    if (p->is_dirty()) {
      Status s = LockedFlushFrame(idx);
      if (!s.ok()) return s;
    }
    page_table_.erase(p->page_id());
    lru_.erase(lru_pos_[idx]);
    lru_pos_.erase(idx);
    *frame_idx = idx;
    return Status::OK();
  }
  return Status::Busy("buffer pool exhausted (all pages pinned)");
}

Status BufferPool::LockedSync() {
  Status s = disk_->SyncFile();
  if (!s.ok()) return s;
  for (PageId p : written_unsynced_) durable_.insert(p);
  written_unsynced_.clear();
  LockedProcessDeferredDeallocs();
  return Status::OK();
}

void BufferPool::LockedProcessDeferredDeallocs() {
  auto it = deferred_deallocs_.begin();
  while (it != deferred_deallocs_.end()) {
    if (durable_.count(it->second) > 0) {
      disk_->DeallocatePage(it->first);
      it = deferred_deallocs_.erase(it);
    } else {
      ++it;
    }
  }
}

Status BufferPool::LockedSatisfyWriteOrder(PageId page_id) {
  auto dep_it = must_precede_.find(page_id);
  if (dep_it == must_precede_.end()) return Status::OK();
  // Copy: LockedWriteFrame mutates must_precede_ via recursion.
  std::set<PageId> firsts = dep_it->second;
  bool need_sync = false;
  for (PageId first : firsts) {
    if (durable_.count(first) > 0) continue;
    auto pt = page_table_.find(first);
    if (pt != page_table_.end() && frames_[pt->second].page->is_dirty()) {
      Status s = LockedWriteFrame(pt->second);
      if (!s.ok()) return s;
    }
    // Whether it was just written or written earlier without a sync, it now
    // needs the barrier.
    need_sync = true;
  }
  if (need_sync) {
    Status s = LockedSync();
    if (!s.ok()) return s;
  }
  must_precede_.erase(page_id);
  return Status::OK();
}

Status BufferPool::LockedWriteFrame(size_t frame_idx) {
  Page* p = frames_[frame_idx].page.get();
  Status s = LockedSatisfyWriteOrder(p->page_id());
  if (!s.ok()) return s;
  if (wal_flush_ && p->page_lsn() != kInvalidLsn) {
    s = wal_flush_(p->page_lsn());
    if (!s.ok()) return s;
  }
  s = disk_->WritePage(p->page_id(), *p);
  if (!s.ok()) return s;
  p->set_dirty(false);
  durable_.erase(p->page_id());
  written_unsynced_.insert(p->page_id());
  return Status::OK();
}

Status BufferPool::LockedFlushFrame(size_t frame_idx) {
  return LockedWriteFrame(frame_idx);
}

Status BufferPool::FetchPage(PageId page_id, Page** page) {
  if (fetch_hook_) fetch_hook_(page_id);
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++hits_;
    Page* p = frames_[it->second].page.get();
    p->IncPin();
    LockedTouch(it->second);
    *page = p;
    return Status::OK();
  }
  ++misses_;
  size_t idx;
  Status s = LockedGetVictim(&idx);
  if (!s.ok()) return s;
  Page* p = frames_[idx].page.get();
  s = disk_->ReadPage(page_id, p);
  if (!s.ok()) return s;
  frames_[idx].in_use = true;
  p->set_page_id(page_id);
  p->set_dirty(false);
  p->IncPin();
  page_table_[page_id] = idx;
  LockedTouch(idx);
  *page = p;
  return Status::OK();
}

Status BufferPool::NewPage(PageId* page_id, Page** page) {
  std::lock_guard<std::mutex> g(mu_);
  PageId pid;
  Status s = disk_->AllocatePage(&pid);
  if (!s.ok()) return s;
  size_t idx;
  s = LockedGetVictim(&idx);
  if (!s.ok()) {
    disk_->DeallocatePage(pid);
    return s;
  }
  Page* p = frames_[idx].page.get();
  p->Reset();
  p->set_page_id(pid);
  p->SetHeaderPageId(pid);
  p->set_dirty(true);
  p->IncPin();
  frames_[idx].in_use = true;
  page_table_[pid] = idx;
  LockedTouch(idx);
  *page_id = pid;
  *page = p;
  return Status::OK();
}

Status BufferPool::NewFrameForExisting(PageId page_id, Page** page) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Page* p = frames_[it->second].page.get();
    p->IncPin();
    LockedTouch(it->second);
    *page = p;
    return Status::OK();
  }
  size_t idx;
  Status s = LockedGetVictim(&idx);
  if (!s.ok()) return s;
  Page* p = frames_[idx].page.get();
  p->Reset();
  p->set_page_id(page_id);
  p->SetHeaderPageId(page_id);
  p->set_dirty(true);
  p->IncPin();
  frames_[idx].in_use = true;
  page_table_[page_id] = idx;
  LockedTouch(idx);
  *page = p;
  return Status::OK();
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::InvalidArgument("unpin of unknown page");
  }
  Page* p = frames_[it->second].page.get();
  if (p->pin_count() <= 0) {
    return Status::InvalidArgument("unpin of unpinned page");
  }
  if (dirty) {
    p->set_dirty(true);
    durable_.erase(page_id);
  }
  if (p->DecPin() == 1) {
    LockedTouch(it->second);  // becomes evictable
  }
  return Status::OK();
}

Status BufferPool::LockedDropFrame(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Page* p = frames_[it->second].page.get();
    if (p->pin_count() > 0) {
      return Status::Busy("delete of pinned page");
    }
    size_t idx = it->second;
    page_table_.erase(it);
    auto lp = lru_pos_.find(idx);
    if (lp != lru_pos_.end()) {
      lru_.erase(lp->second);
      lru_pos_.erase(lp);
    }
    frames_[idx].in_use = false;
    p->set_dirty(false);
  }
  // Keep any must_precede_ entry: if the page id is reused as a new
  // destination before its write-order dependency is durable, the stale
  // gate forces an (otherwise unnecessary but safe) fsync barrier — which
  // is exactly what protects the old image the dependency was guarding.
  written_unsynced_.erase(page_id);
  durable_.erase(page_id);
  return Status::OK();
}

Status BufferPool::DeletePage(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  Status s = LockedDropFrame(page_id);
  if (!s.ok()) return s;
  return disk_->DeallocatePage(page_id);
}

Status BufferPool::DeletePageDeferred(PageId victim, PageId until) {
  std::lock_guard<std::mutex> g(mu_);
  Status s = LockedDropFrame(victim);
  if (!s.ok()) return s;
  if (durable_.count(until) > 0) {
    return disk_->DeallocatePage(victim);
  }
  deferred_deallocs_.emplace_back(victim, until);
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of uncached page");
  }
  if (!frames_[it->second].page->is_dirty()) return Status::OK();
  return LockedFlushFrame(it->second);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> g(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].page->is_dirty()) {
      Status s = LockedFlushFrame(i);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAndSync() {
  std::lock_guard<std::mutex> g(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use && frames_[i].page->is_dirty()) {
      Status s = LockedFlushFrame(i);
      if (!s.ok()) return s;
    }
  }
  return LockedSync();
}

Status BufferPool::ForcePages(const std::vector<PageId>& page_ids) {
  std::lock_guard<std::mutex> g(mu_);
  bool wrote = false;
  for (PageId pid : page_ids) {
    auto it = page_table_.find(pid);
    if (it == page_table_.end()) continue;
    if (!frames_[it->second].page->is_dirty()) continue;
    Status s = LockedFlushFrame(it->second);
    if (!s.ok()) return s;
    wrote = true;
  }
  if (wrote || !written_unsynced_.empty()) {
    return LockedSync();
  }
  return Status::OK();
}

void BufferPool::AddWriteOrder(PageId first, PageId then) {
  std::lock_guard<std::mutex> g(mu_);
  must_precede_[then].insert(first);
}

bool BufferPool::IsDurable(PageId page_id) const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_.count(page_id) > 0;
}

}  // namespace soreorg
