// FaultInjectionEnv: an Env decorator that injects deterministic I/O faults
// for the crash-torture harness and the recovery tests.
//
// Faults are armed by (file-suffix, op) filter plus a 1-based countdown over
// the matching operations, so a test can say "fail the 3rd sync of the WAL"
// or "tear the 7th page write after 1000 bytes" and replay the exact same
// fault on every run. Supported faults:
//
//  - FailOpAfter:   the Nth matching write/append/sync fails. Sticky by
//    default (the env goes "down": every later write-like op fails until
//    Crash(), like a machine that lost power), or transient (that one op
//    fails, later ops proceed — models a retryable fsync error, which the
//    WAL group-commit failure path must survive).
//  - TearWriteAfter: the Nth matching write persists only a keep_bytes
//    prefix — the prefix is promoted into MemEnv's durable image (a power
//    cut mid-sector leaves the sector half-written on the platter) — and
//    the env goes down.
//  - ShortReadAfter: the Nth matching read returns at most keep_bytes.
//
// Crash() drops all un-synced writes (delegating to the wrapped MemEnv) and
// brings the env back up, so a test can crash, reopen, and recover.
//
// ops_observed() counts the operations matching the current filter; a
// counting pass with ObserveOnly() sizes a crash-point sweep ("how many I/O
// points does one reorganization have?") before the faulting passes replay
// it point by point.

#ifndef SOREORG_STORAGE_FAULT_ENV_H_
#define SOREORG_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/storage/env.h"

namespace soreorg {

class FaultInjectionEnv : public Env {
 public:
  enum class FaultKind {
    kNone,       // observe/count only, never fire
    kFailOp,     // fail the Nth matching write/append/sync
    kTornWrite,  // persist a keep_bytes prefix of the Nth matching write
    kShortRead,  // return at most keep_bytes from the Nth matching read
  };

  struct FaultSpec {
    FaultKind kind = FaultKind::kNone;
    std::string file_suffix;  // "" matches every file; ".wal" also matches
                              // numbered segments (see WalAwareSuffixMatch)
    std::string op;           // "write" (covers append) | "append" | "sync" |
                              // "rename" | "dirsync" | "delete"; "" = any
    int countdown = -1;       // fires on the countdown-th matching op; <0 never
    size_t keep_bytes = 0;    // torn-write prefix / short-read cap
    bool transient = false;   // fail one op vs. take the env down
  };

  /// The base env must be a MemEnv: torn-write persistence and Crash() need
  /// its durable/volatile image split.
  explicit FaultInjectionEnv(MemEnv* base) : base_(base) {}

  Status NewFile(const std::string& name,
                 std::unique_ptr<File>* file) override;
  bool FileExists(const std::string& name) const override;
  /// Deletes, renames, and directory syncs are write-like crash points too:
  /// segment truncation/recycling must survive a crash at any of them.
  Status DeleteFile(const std::string& name) override;
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) const override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& hint) override;

  void Arm(FaultSpec spec);
  void FailOpAfter(int n, const std::string& suffix, const std::string& op,
                   bool transient = false);
  void TearWriteAfter(int n, const std::string& suffix, size_t keep_bytes);
  void ShortReadAfter(int n, const std::string& suffix, size_t keep_bytes);
  /// Count matching ops without ever firing (for sizing crash-point sweeps).
  void ObserveOnly(const std::string& suffix = "", const std::string& op = "");
  void Disarm();

  /// Power loss: un-synced writes vanish, the env comes back up, the armed
  /// fault (if any) is cleared.
  void Crash();

  bool fault_fired() const;
  /// Matching ops seen since the last Arm/ObserveOnly.
  uint64_t ops_observed() const;
  /// True after a non-transient fault fired: all write-like ops fail.
  bool down() const;

  MemEnv* base() { return base_; }

  // --- hooks for the FaultFile wrapper (public for env.cc-style helpers) ---
  struct WriteDecision {
    enum Action { kProceed, kFail, kTear } action = kProceed;
    size_t keep_bytes = 0;
  };
  WriteDecision OnWriteLikeOp(const std::string& name, const char* op,
                              size_t n);
  /// Returns the byte cap for this read (SIZE_MAX = unfaulted).
  size_t OnRead(const std::string& name, size_t n);
  Status PersistTornPrefix(const std::string& name, uint64_t offset,
                           const Slice& data, size_t keep_bytes);

 private:
  bool Matches(const std::string& name, const char* op) const;  // under mu_

  MemEnv* base_;
  mutable std::mutex mu_;
  FaultSpec spec_;
  uint64_t observed_ = 0;
  bool fired_ = false;
  bool down_ = false;
};

}  // namespace soreorg

#endif  // SOREORG_STORAGE_FAULT_ENV_H_
