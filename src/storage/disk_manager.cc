#include "src/storage/disk_manager.h"

#include <cstring>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace soreorg {

namespace {

bool AllZero(const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

}  // namespace

uint32_t PageChecksum(const char* page_image) {
  uint32_t crc = crc32c::Value(page_image, kPageChecksumOffset);
  crc = crc32c::Extend(crc, page_image + kPageChecksumOffset + 4,
                       kPageSize - kPageChecksumOffset - 4);
  return crc32c::Mask(crc);
}

DiskManager::DiskManager(Env* env, std::string file_name)
    : env_(env), file_name_(std::move(file_name)) {}

Status DiskManager::Open() {
  Status s = env_->NewFile(file_name_, &file_);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> g(mu_);
  next_page_id_ = static_cast<PageId>(file_->Size() / kPageSize);
  return Status::OK();
}

Status DiskManager::ReadPage(PageId page_id, Page* page) {
  IoObserver obs;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (page_id >= next_page_id_) {
      return Status::InvalidArgument("read past end of page file");
    }
    ++pages_read_;
    obs = io_observer_;
  }
  size_t n = 0;
  Status s = file_->Read(static_cast<uint64_t>(page_id) * kPageSize, kPageSize,
                         page->data(), &n);
  if (!s.ok()) return s;
  if (n < kPageSize) {
    // Page was allocated but never written (fresh extension), or the image
    // was cut short — zero-fill and let the checksum decide which.
    memset(page->data() + n, 0, kPageSize - n);
  }
  uint32_t stored = DecodeFixed32(page->data() + kPageChecksumOffset);
  if (n > 0 && !(stored == 0 && AllZero(page->data(), kPageSize))) {
    if (stored != PageChecksum(page->data())) {
      std::lock_guard<std::mutex> g(mu_);
      ++checksum_failures_;
      return Status::Corruption("page " + std::to_string(page_id) +
                                " checksum mismatch (torn or corrupt image)");
    }
  }
  page->set_page_id(page_id);
  if (obs) obs(page_id, /*is_write=*/false);
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const Page& page) {
  // Callers of this overload hand over a quiescent Page (recovery redo,
  // tests); copy to a scratch image so stamping never mutates their bytes.
  char scratch[kPageSize];
  memcpy(scratch, page.data(), kPageSize);
  return WritePage(page_id, scratch);
}

Status DiskManager::WritePage(PageId page_id, char* page_image) {
  IoObserver obs;
  {
    std::lock_guard<std::mutex> g(mu_);
    ++pages_written_;
    obs = io_observer_;
  }
  EncodeFixed32(page_image + kPageChecksumOffset, PageChecksum(page_image));
  Status s = file_->Write(static_cast<uint64_t>(page_id) * kPageSize,
                          Slice(page_image, kPageSize));
  if (!s.ok()) return s;
  if (obs) obs(page_id, /*is_write=*/true);
  return Status::OK();
}

Status DiskManager::SyncFile() { return file_->Sync(); }

Status DiskManager::AllocatePage(PageId* page_id) {
  std::lock_guard<std::mutex> g(mu_);
  if (!free_pages_.empty()) {
    *page_id = *free_pages_.begin();
    free_pages_.erase(free_pages_.begin());
  } else {
    *page_id = next_page_id_++;
  }
  return Status::OK();
}

Status DiskManager::AllocatePageAt(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_id >= next_page_id_) {
    for (PageId p = next_page_id_; p < page_id; ++p) free_pages_.insert(p);
    next_page_id_ = page_id + 1;
    return Status::OK();
  }
  auto it = free_pages_.find(page_id);
  if (it == free_pages_.end()) {
    return Status::InvalidArgument("page already allocated");
  }
  free_pages_.erase(it);
  return Status::OK();
}

Status DiskManager::DeallocatePage(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_id >= next_page_id_) {
    return Status::InvalidArgument("dealloc past end of page file");
  }
  if (!free_pages_.insert(page_id).second) {
    return Status::InvalidArgument("double free of page");
  }
  return Status::OK();
}

PageId DiskManager::FirstFreeInRange(PageId lo, PageId hi) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = free_pages_.lower_bound(lo);
  if (it != free_pages_.end() && *it < hi) return *it;
  return kInvalidPageId;
}

bool DiskManager::IsFree(PageId page_id) const {
  std::lock_guard<std::mutex> g(mu_);
  return free_pages_.count(page_id) > 0;
}

bool DiskManager::IsAllocated(PageId page_id) const {
  std::lock_guard<std::mutex> g(mu_);
  return page_id < next_page_id_ && free_pages_.count(page_id) == 0;
}

PageId DiskManager::page_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_page_id_;
}

uint64_t DiskManager::checksum_failures() const {
  std::lock_guard<std::mutex> g(mu_);
  return checksum_failures_;
}

size_t DiskManager::free_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return free_pages_.size();
}

std::string DiskManager::SerializeMeta() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out;
  PutFixed32(&out, next_page_id_);
  PutVarint32(&out, static_cast<uint32_t>(free_pages_.size()));
  for (PageId p : free_pages_) PutFixed32(&out, p);
  return out;
}

Status DiskManager::RestoreMeta(const Slice& meta) {
  std::lock_guard<std::mutex> g(mu_);
  Slice in = meta;
  uint32_t next;
  if (!GetFixed32(&in, &next)) return Status::Corruption("disk meta");
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("disk meta");
  std::set<PageId> free_set;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t p;
    if (!GetFixed32(&in, &p)) return Status::Corruption("disk meta");
    free_set.insert(p);
  }
  next_page_id_ = next;
  free_pages_ = std::move(free_set);
  return Status::OK();
}

void DiskManager::set_io_observer(IoObserver obs) {
  std::lock_guard<std::mutex> g(mu_);
  io_observer_ = std::move(obs);
}

}  // namespace soreorg
