#include "src/storage/fault_env.h"

#include <algorithm>
#include <string_view>
#include <utility>

namespace soreorg {

namespace {

class FaultFile : public File {
 public:
  FaultFile(FaultInjectionEnv* env, std::string name,
            std::unique_ptr<File> base)
      : env_(env), name_(std::move(name)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* buf,
              size_t* out_n) const override {
    size_t cap = env_->OnRead(name_, n);
    Status s = base_->Read(offset, n, buf, out_n);
    if (s.ok() && *out_n > cap) *out_n = cap;
    return s;
  }

  Status Write(uint64_t offset, const Slice& data) override {
    FaultInjectionEnv::WriteDecision d =
        env_->OnWriteLikeOp(name_, "write", data.size());
    switch (d.action) {
      case FaultInjectionEnv::WriteDecision::kProceed:
        return base_->Write(offset, data);
      case FaultInjectionEnv::WriteDecision::kFail:
        return Status::IOError("injected fault on write to " + name_);
      case FaultInjectionEnv::WriteDecision::kTear:
        return env_->PersistTornPrefix(name_, offset, data, d.keep_bytes);
    }
    return Status::IOError("unreachable");
  }

  Status Append(const Slice& data) override {
    FaultInjectionEnv::WriteDecision d =
        env_->OnWriteLikeOp(name_, "append", data.size());
    switch (d.action) {
      case FaultInjectionEnv::WriteDecision::kProceed:
        return base_->Append(data);
      case FaultInjectionEnv::WriteDecision::kFail:
        return Status::IOError("injected fault on append to " + name_);
      case FaultInjectionEnv::WriteDecision::kTear:
        return env_->PersistTornPrefix(name_, base_->Size(), data,
                                       d.keep_bytes);
    }
    return Status::IOError("unreachable");
  }

  Status Sync() override {
    FaultInjectionEnv::WriteDecision d = env_->OnWriteLikeOp(name_, "sync", 0);
    if (d.action != FaultInjectionEnv::WriteDecision::kProceed) {
      return Status::IOError("injected fault on sync of " + name_);
    }
    return base_->Sync();
  }

  uint64_t Size() const override { return base_->Size(); }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

 private:
  FaultInjectionEnv* env_;
  std::string name_;
  std::unique_ptr<File> base_;
};

}  // namespace

Status FaultInjectionEnv::NewFile(const std::string& name,
                                  std::unique_ptr<File>* file) {
  std::unique_ptr<File> base_file;
  Status s = base_->NewFile(name, &base_file);
  if (!s.ok()) return s;
  *file = std::make_unique<FaultFile>(this, name, std::move(base_file));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& name) const {
  return base_->FileExists(name);
}

Status FaultInjectionEnv::DeleteFile(const std::string& name) {
  WriteDecision d = OnWriteLikeOp(name, "delete", 0);
  if (d.action != WriteDecision::kProceed) {
    return Status::IOError("injected fault on delete of " + name);
  }
  return base_->DeleteFile(name);
}

Status FaultInjectionEnv::ListFiles(const std::string& prefix,
                                    std::vector<std::string>* out) const {
  return base_->ListFiles(prefix, out);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  WriteDecision d = OnWriteLikeOp(to, "rename", 0);
  if (d.action != WriteDecision::kProceed) {
    return Status::IOError("injected fault on rename to " + to);
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::SyncDir(const std::string& hint) {
  WriteDecision d = OnWriteLikeOp(hint, "dirsync", 0);
  if (d.action != WriteDecision::kProceed) {
    return Status::IOError("injected fault on dirsync of " + hint);
  }
  return base_->SyncDir(hint);
}

void FaultInjectionEnv::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> g(mu_);
  spec_ = std::move(spec);
  observed_ = 0;
  fired_ = false;
}

void FaultInjectionEnv::FailOpAfter(int n, const std::string& suffix,
                                    const std::string& op, bool transient) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailOp;
  spec.file_suffix = suffix;
  spec.op = op;
  spec.countdown = n;
  spec.transient = transient;
  Arm(std::move(spec));
}

void FaultInjectionEnv::TearWriteAfter(int n, const std::string& suffix,
                                       size_t keep_bytes) {
  FaultSpec spec;
  spec.kind = FaultKind::kTornWrite;
  spec.file_suffix = suffix;
  spec.op = "write";
  spec.countdown = n;
  spec.keep_bytes = keep_bytes;
  Arm(std::move(spec));
}

void FaultInjectionEnv::ShortReadAfter(int n, const std::string& suffix,
                                       size_t keep_bytes) {
  FaultSpec spec;
  spec.kind = FaultKind::kShortRead;
  spec.file_suffix = suffix;
  spec.countdown = n;
  spec.keep_bytes = keep_bytes;
  Arm(std::move(spec));
}

void FaultInjectionEnv::ObserveOnly(const std::string& suffix,
                                    const std::string& op) {
  FaultSpec spec;
  spec.kind = FaultKind::kNone;
  spec.file_suffix = suffix;
  spec.op = op;
  Arm(std::move(spec));
}

void FaultInjectionEnv::Disarm() {
  std::lock_guard<std::mutex> g(mu_);
  spec_ = FaultSpec();
}

void FaultInjectionEnv::Crash() {
  base_->Crash();
  std::lock_guard<std::mutex> g(mu_);
  down_ = false;
  spec_ = FaultSpec();
}

bool FaultInjectionEnv::fault_fired() const {
  std::lock_guard<std::mutex> g(mu_);
  return fired_;
}

uint64_t FaultInjectionEnv::ops_observed() const {
  std::lock_guard<std::mutex> g(mu_);
  return observed_;
}

bool FaultInjectionEnv::down() const {
  std::lock_guard<std::mutex> g(mu_);
  return down_;
}

bool FaultInjectionEnv::Matches(const std::string& name,
                                const char* op) const {
  if (!WalAwareSuffixMatch(name, spec_.file_suffix)) return false;
  if (spec_.op.empty()) return true;
  // "write" covers both positional writes and appends: each puts bytes on
  // the platter and can tear (the WAL only ever appends).
  if (spec_.op == "write") {
    return std::string_view(op) == "write" || std::string_view(op) == "append";
  }
  return spec_.op == op;
}

FaultInjectionEnv::WriteDecision FaultInjectionEnv::OnWriteLikeOp(
    const std::string& name, const char* op, size_t n) {
  (void)n;
  WriteDecision d;
  std::lock_guard<std::mutex> g(mu_);
  if (down_) {
    d.action = WriteDecision::kFail;
    return d;
  }
  if (spec_.kind == FaultKind::kShortRead || !Matches(name, op)) return d;
  ++observed_;
  if (spec_.kind == FaultKind::kNone || spec_.countdown < 0 ||
      observed_ != static_cast<uint64_t>(spec_.countdown)) {
    return d;
  }
  fired_ = true;
  if (spec_.kind == FaultKind::kTornWrite) {
    d.action = WriteDecision::kTear;
    d.keep_bytes = spec_.keep_bytes;
    down_ = true;  // power is lost mid-write; later ops fail until Crash()
  } else {
    d.action = WriteDecision::kFail;
    if (spec_.transient) {
      spec_ = FaultSpec();  // one-shot: auto-disarm so the retry proceeds
    } else {
      down_ = true;
    }
  }
  return d;
}

size_t FaultInjectionEnv::OnRead(const std::string& name, size_t n) {
  std::lock_guard<std::mutex> g(mu_);
  if (spec_.kind != FaultKind::kShortRead ||
      !WalAwareSuffixMatch(name, spec_.file_suffix)) {
    return SIZE_MAX;
  }
  ++observed_;
  if (spec_.countdown < 0 ||
      observed_ != static_cast<uint64_t>(spec_.countdown)) {
    return SIZE_MAX;
  }
  fired_ = true;
  size_t cap = spec_.keep_bytes;
  if (spec_.transient) spec_ = FaultSpec();
  return cap < n ? cap : n;
}

Status FaultInjectionEnv::PersistTornPrefix(const std::string& name,
                                            uint64_t offset, const Slice& data,
                                            size_t keep_bytes) {
  size_t keep = std::min(keep_bytes, data.size());
  // Land the prefix in the volatile image, then promote exactly those bytes
  // to the durable image: the platter finished part of the sector before the
  // power cut, so the prefix must survive the Crash() that follows.
  std::unique_ptr<File> f;
  Status s = base_->NewFile(name, &f);
  if (s.ok() && keep > 0) s = f->Write(offset, Slice(data.data(), keep));
  if (s.ok() && keep > 0) s = base_->SyncRange(name, offset, keep);
  if (!s.ok()) return s;
  return Status::IOError("injected torn write to " + name + " (kept " +
                         std::to_string(keep) + " of " +
                         std::to_string(data.size()) + " bytes)");
}

}  // namespace soreorg
