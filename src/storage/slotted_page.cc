#include "src/storage/slotted_page.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace soreorg {

void SlottedPage::Init(const Slice& aux) {
  char* d = page_->data();
  set_num_slots(0);
  uint16_t aoff = 0;
  uint16_t asize = 0;
  if (!aux.empty()) {
    assert(aux.size() < kPageSize / 4);
    aoff = static_cast<uint16_t>(kPageSize - aux.size());
    asize = static_cast<uint16_t>(aux.size());
    memcpy(d + aoff, aux.data(), aux.size());
  }
  EncodeFixed16(d + kAuxOffOff, aoff);
  EncodeFixed16(d + kAuxSizeOff, asize);
  set_heap_top(heap_end());
}

int SlottedPage::slot_count() const { return num_slots(); }

Slice SlottedPage::GetCell(int i) const {
  assert(i >= 0 && i < slot_count());
  const char* d = page_->data();
  uint16_t off = slot(i);
  uint16_t len = DecodeFixed16(d + off);
  return Slice(d + off + kCellLenPrefix, len);
}

size_t SlottedPage::ContiguousFree() const {
  size_t slots_end = kSlotArrayOff + 2 * static_cast<size_t>(num_slots());
  uint16_t top = heap_top();
  return top > slots_end ? top - slots_end : 0;
}

size_t SlottedPage::FreeSpace() const {
  // Total free = contiguous + reclaimable-by-compaction. We track it as
  // heap capacity minus live bytes.
  size_t live = 0;
  for (int i = 0; i < slot_count(); ++i) {
    live += kCellLenPrefix + GetCell(i).size();
  }
  size_t slots_end = kSlotArrayOff + 2 * static_cast<size_t>(num_slots());
  size_t total = heap_end() - slots_end;
  size_t free_total = total - live;
  // A new cell also needs a 2-byte slot entry.
  return free_total > 2 ? free_total - 2 : 0;
}

size_t SlottedPage::UsedSpace() const {
  size_t live = 0;
  for (int i = 0; i < slot_count(); ++i) {
    live += kCellLenPrefix + GetCell(i).size() + 2 /*slot entry*/;
  }
  return live;
}

size_t SlottedPage::Capacity() const {
  return heap_end() - kSlotArrayOff;
}

double SlottedPage::FillFactor() const {
  size_t cap = Capacity();
  return cap == 0 ? 0.0 : static_cast<double>(UsedSpace()) /
                              static_cast<double>(cap);
}

Slice SlottedPage::GetAux() const {
  uint16_t aoff = aux_off();
  if (aoff == 0) return Slice();
  return Slice(page_->data() + aoff, aux_size());
}

void SlottedPage::Compact() {
  // Rewrite all live cells tightly against heap_end, preserving slot order.
  int n = slot_count();
  std::vector<std::string> cells;
  cells.reserve(n);
  for (int i = 0; i < n; ++i) cells.push_back(GetCell(i).ToString());
  char* d = page_->data();
  uint16_t top = heap_end();
  for (int i = 0; i < n; ++i) {
    uint16_t len = static_cast<uint16_t>(cells[i].size());
    top = static_cast<uint16_t>(top - len - kCellLenPrefix);
    EncodeFixed16(d + top, len);
    memcpy(d + top + kCellLenPrefix, cells[i].data(), len);
    set_slot(i, top);
  }
  set_heap_top(top);
}

Status SlottedPage::InsertCell(int i, const Slice& cell) {
  assert(i >= 0 && i <= slot_count());
  size_t need = kCellLenPrefix + cell.size();
  size_t need_with_slot = need + 2;
  {
    size_t live = 0;
    for (int j = 0; j < slot_count(); ++j) {
      live += kCellLenPrefix + GetCell(j).size();
    }
    size_t slots_end = kSlotArrayOff + 2 * static_cast<size_t>(num_slots());
    size_t total = heap_end() - slots_end;
    if (total < live || total - live < need_with_slot) {
      return Status::Busy("page full");
    }
  }
  if (ContiguousFree() < need_with_slot) Compact();
  assert(ContiguousFree() >= need_with_slot);

  char* d = page_->data();
  uint16_t top = static_cast<uint16_t>(heap_top() - need);
  EncodeFixed16(d + top, static_cast<uint16_t>(cell.size()));
  memcpy(d + top + kCellLenPrefix, cell.data(), cell.size());
  set_heap_top(top);

  int n = slot_count();
  // Shift slots [i, n) up by one.
  for (int j = n; j > i; --j) set_slot(j, slot(j - 1));
  set_slot(i, top);
  set_num_slots(static_cast<uint16_t>(n + 1));
  return Status::OK();
}

Status SlottedPage::SetCell(int i, const Slice& cell) {
  assert(i >= 0 && i < slot_count());
  Slice old = GetCell(i);
  if (old.size() == cell.size()) {
    memcpy(page_->data() + slot(i) + kCellLenPrefix, cell.data(), cell.size());
    return Status::OK();
  }
  RemoveCell(i);
  Status s = InsertCell(i, cell);
  assert(s.ok() || !s.ok());  // caller handles full-page (rare on shrink)
  return s;
}

void SlottedPage::RemoveCell(int i) {
  assert(i >= 0 && i < slot_count());
  int n = slot_count();
  uint16_t off = slot(i);
  uint16_t len = DecodeFixed16(page_->data() + off);
  for (int j = i; j < n - 1; ++j) set_slot(j, slot(j + 1));
  set_num_slots(static_cast<uint16_t>(n - 1));
  // If the removed cell was the heap top, reclaim it cheaply; otherwise the
  // space is reclaimed lazily by Compact().
  if (off == heap_top()) {
    set_heap_top(static_cast<uint16_t>(off + kCellLenPrefix + len));
  }
}

void SlottedPage::Clear() {
  set_num_slots(0);
  set_heap_top(heap_end());
}

}  // namespace soreorg
