// Smith '90 (Tandem) baseline: "Online reorganization of key-sequenced
// tables and files", the comparator the paper's §8 argues against.
//
// Faithful-to-the-comparison properties:
//   * every block operation (merge of two blocks, move of one block to an
//     empty block, swap of two blocks) runs as its OWN database transaction
//     — a BEGIN/COMMIT pair of log records, flushed at commit;
//   * each operation holds an X lock on the WHOLE FILE (the tree lock), so
//     user transactions cannot access the B+-tree at all while a block
//     operation runs;
//   * each operation touches exactly TWO blocks (so filling one page to the
//     target fill factor takes several transactions — the paper's
//     "granularity" point);
//   * logging is conventional full-content logging (careful writing off);
//   * an interrupted operation is ROLLED BACK at restart, not finished
//     (pair with RecoveryPolicy::kRollback).
//
// Upper levels are not rebuilt (Smith reorganizes the key-sequenced file —
// the leaf level); the tree is left to shrink through normal operations.

#ifndef SOREORG_BASELINE_SMITH_REORG_H_
#define SOREORG_BASELINE_SMITH_REORG_H_

#include <memory>

#include "src/reorg/context.h"
#include "src/reorg/leaf_compactor.h"
#include "src/reorg/swap_pass.h"
#include "src/txn/txn_manager.h"

namespace soreorg {

struct SmithOptions {
  double target_fill = 0.9;
  bool do_ordering_pass = true;  // block swaps/moves for key order
};

struct SmithStats {
  uint64_t transactions = 0;  // one per block operation
  uint64_t merges = 0;
  uint64_t moves = 0;
  uint64_t swaps = 0;
};

class SmithReorganizer {
 public:
  SmithReorganizer(BTree* tree, BufferPool* bp, LogManager* log,
                   LockManager* locks, DiskManager* disk, ReorgTable* table,
                   TransactionManager* txn_mgr, SmithOptions options);

  Status Run();

  const SmithStats& stats() const { return stats_; }
  const ReorgStats& unit_stats() const { return unit_stats_; }

 private:
  Status WrapUnit(const std::function<Status()>& unit);

  SmithOptions options_;
  SmithStats stats_;
  ReorgStats unit_stats_;
  ReorgContext ctx_;
  TransactionManager* txn_mgr_;
  std::unique_ptr<LeafCompactor> compactor_;
  std::unique_ptr<SwapPass> swap_pass_;
};

}  // namespace soreorg

#endif  // SOREORG_BASELINE_SMITH_REORG_H_
