#include "src/baseline/smith_reorg.h"

namespace soreorg {

SmithReorganizer::SmithReorganizer(BTree* tree, BufferPool* bp,
                                   LogManager* log, LockManager* locks,
                                   DiskManager* disk, ReorgTable* table,
                                   TransactionManager* txn_mgr,
                                   SmithOptions options)
    : options_(options), txn_mgr_(txn_mgr) {
  ctx_.tree = tree;
  ctx_.bp = bp;
  ctx_.log = log;
  ctx_.locks = locks;
  ctx_.disk = disk;
  ctx_.table = table;
  ctx_.stats = &unit_stats_;
  ctx_.careful_writing = false;  // conventional full-content logging

  LeafCompactorOptions copts;
  copts.target_fill = options.target_fill;
  // Smith never constructs into a spare page during compaction; merges are
  // strictly two-block in-place operations.
  copts.free_space_policy = FreeSpacePolicy::kNone;
  copts.max_group = 2;
  copts.unit_wrapper = [this](const std::function<Status()>& unit) {
    return WrapUnit(unit);
  };
  compactor_ = std::make_unique<LeafCompactor>(&ctx_, copts);

  SwapPassOptions sopts;
  sopts.unit_wrapper = [this](const std::function<Status()>& unit) {
    return WrapUnit(unit);
  };
  swap_pass_ = std::make_unique<SwapPass>(&ctx_, compactor_.get(), sopts);
}

Status SmithReorganizer::WrapUnit(const std::function<Status()>& unit) {
  // One database transaction per block operation, with the whole file
  // locked exclusively for its duration.
  Status s = ctx_.locks->Lock(kReorgTxnId, TreeLock(ctx_.tree->incarnation()),
                              LockMode::kX);
  if (!s.ok()) return s;
  Transaction* txn = txn_mgr_->Begin();
  s = unit();
  if (s.ok()) {
    txn_mgr_->Commit(txn);
    ++stats_.transactions;
  } else {
    txn_mgr_->Abort(txn);
  }
  // Drop back to the IX the pass loops expect to keep holding.
  ctx_.locks->Downgrade(kReorgTxnId, TreeLock(ctx_.tree->incarnation()),
                        LockMode::kIX);
  return s;
}

Status SmithReorganizer::Run() {
  uint64_t before_compact = unit_stats_.compact_units;
  Status s = compactor_->Run();
  if (!s.ok()) return s;
  stats_.merges = unit_stats_.compact_units - before_compact;

  if (options_.do_ordering_pass) {
    uint64_t before_swaps = unit_stats_.swap_units;
    uint64_t before_moves = unit_stats_.move_units;
    s = swap_pass_->Run();
    if (!s.ok()) return s;
    stats_.swaps = unit_stats_.swap_units - before_swaps;
    stats_.moves = unit_stats_.move_units - before_moves;
  }
  return Status::OK();
}

}  // namespace soreorg
