// Checkpointing.
//
// A checkpoint is a kCheckpoint WAL record whose payload is a
// CheckpointImage; its LSN is recorded in a small master file so recovery
// can find the most recent one without scanning the whole log. The image
// carries a redo_lsn captured BEFORE the buffer pool's flush walk begins:
// the walk is fuzzy (updaters and the reorganizer keep logging while it
// runs in several flush-lock holds), so an update logged during the walk
// may be only partially durable when the checkpoint record is written.
// Redo therefore starts at redo_lsn, not at the checkpoint record — every
// record the walk could have half-captured is replayed, idempotently
// (page redo is pageLSN-guarded, allocation redo is set-idempotent, and
// side-file redo is skipped up to the watermark the side image carries).
//
// The image carries the paper's §5 in-memory reorganization table: LK (the
// largest key of the last finished reorganization unit), and — if a unit is
// open — its unit id, BEGIN LSN and most recent LSN. It also carries the
// pass-3 state (§7.3): reorganization bit, most recent stable key, and the
// location of the concurrent new-tree root.

#ifndef SOREORG_WAL_CHECKPOINT_H_
#define SOREORG_WAL_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/storage/env.h"
#include "src/storage/page.h"
#include "src/wal/log_record.h"

namespace soreorg {

/// The paper's in-memory reorganization table (§5): at most one open unit.
struct ReorgTableSnapshot {
  bool has_open_unit = false;
  uint32_t unit = 0;
  Lsn begin_lsn = kInvalidLsn;
  Lsn recent_lsn = kInvalidLsn;
  /// LK — largest key of the last *finished* unit (restart position).
  std::string largest_finished_key;
  bool leaf_pass_active = false;

  // Pass-3 (internal page reorganization) state.
  bool reorg_bit = false;           // side-file interception active
  std::string stable_key;           // most recent stable key (§7.3)
  PageId new_tree_root = kInvalidPageId;
};

struct CheckpointImage {
  Lsn checkpoint_lsn = kInvalidLsn;  // filled on read
  /// Redo starting point: the log position captured before the checkpoint's
  /// buffer-pool flush walk started. Everything at or after this LSN is
  /// replayed; everything before it is fully durable in the flushed pages.
  Lsn redo_lsn = kInvalidLsn;
  std::string disk_meta;             // DiskManager::SerializeMeta()
  std::vector<std::pair<TxnId, Lsn>> active_txns;  // (txn, last lsn)
  TxnId next_txn_id = kFirstUserTxnId;
  ReorgTableSnapshot reorg;
  PageId tree_root = kInvalidPageId;
  uint8_t tree_height = 0;
  uint64_t tree_incarnation = 1;
  /// Serialized SideFile contents (pass-3 catch-up queue).
  std::string side_file_image;

  std::string Serialize() const;
  static Status Parse(const Slice& in, CheckpointImage* img);
};

/// Master pointer file: remembers the LSN of the latest checkpoint record.
class CheckpointMaster {
 public:
  CheckpointMaster(Env* env, std::string file_name);
  Status Open();
  Status Store(Lsn checkpoint_lsn);
  /// kNotFound if no checkpoint has ever been taken.
  Status Load(Lsn* checkpoint_lsn) const;

 private:
  Env* env_;
  std::string file_name_;
  std::unique_ptr<File> file_;
};

}  // namespace soreorg

#endif  // SOREORG_WAL_CHECKPOINT_H_
