// LogManager: append-only WAL with group buffering, CRC framing, and
// byte-offset LSNs.
//
// Framing on disk:  [fixed32 len][fixed32 masked crc32c(payload)][payload]
// A record's LSN is the file offset of its frame, so LSN order == log order
// and FlushedLsn() comparisons are trivial. Recovery scans forward and stops
// at the first frame that is truncated or fails its CRC (the torn tail after
// a crash).
//
// Per-type byte counters feed the log-volume experiment (E3).

#ifndef SOREORG_WAL_LOG_MANAGER_H_
#define SOREORG_WAL_LOG_MANAGER_H_

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/env.h"
#include "src/storage/page.h"
#include "src/wal/log_record.h"

namespace soreorg {

class LogManager {
 public:
  LogManager(Env* env, std::string file_name);

  /// Open/create the log file; positions the append offset at the end of the
  /// valid prefix (scanning past any torn tail).
  Status Open();

  /// Assign an LSN, buffer the record. Flushes only when the in-memory
  /// buffer exceeds its cap (group-commit style). rec->lsn is set.
  Status Append(LogRecord* rec);

  /// Cap on the in-memory log buffer; exceeding it triggers a flush on the
  /// next Append (default 256 KiB). Small caps make WAL writes frequent —
  /// the crash-injection experiments use this to land failures mid-unit.
  void set_buffer_limit(size_t bytes);

  /// Append and make durable immediately.
  Status AppendAndFlush(LogRecord* rec);

  /// Make everything appended so far durable.
  Status Flush();

  /// Make records up to and including `lsn` durable (no-op if already).
  Status FlushTo(Lsn lsn);

  Lsn NextLsn() const;
  Lsn FlushedLsn() const;

  /// Scan all valid records from `start_lsn` (default: start of log).
  /// Corrupt/torn tails terminate the scan without error.
  Status ReadAll(std::vector<LogRecord>* out, Lsn start_lsn = 0) const;

  /// Read the single record at `lsn`.
  Status ReadAt(Lsn lsn, LogRecord* rec) const;

  // --- statistics (E3) -----------------------------------------------------
  uint64_t bytes_appended() const;
  uint64_t records_appended() const;
  uint64_t bytes_for_type(LogType t) const;
  void ResetStats();

  static constexpr size_t kFrameHeader = 8;  // len + crc

 private:
  Status LockedFlush();

  Env* env_;
  std::string file_name_;
  std::unique_ptr<File> file_;

  mutable std::mutex mu_;
  std::string buffer_;        // not-yet-written frames
  Lsn buffer_start_ = 0;      // LSN of buffer_[0]
  Lsn next_lsn_ = 0;
  Lsn flushed_lsn_ = 0;       // all records with lsn < flushed_lsn_ durable
  size_t buffer_limit_ = 256 * 1024;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
  std::array<uint64_t, 32> type_bytes_{};
};

}  // namespace soreorg

#endif  // SOREORG_WAL_LOG_MANAGER_H_
