// LogManager: append-only segmented WAL with group buffering, CRC framing,
// and byte-offset LSNs.
//
// The log is a chain of fixed-size segment files ("db.wal.000017"-style).
// Each segment starts with a 48-byte header carrying {segment seq, first
// LSN, previous segment's first LSN, sealed size, header CRC}; the data that
// follows is the usual frame stream:
//
//   frame:  [fixed32 len][fixed32 masked crc32c(payload)][payload]
//
// A record's LSN is its global *data* byte offset (headers excluded) + 1, so
// LSN order == log order, LSNs stay contiguous across segment boundaries
// (first_lsn(N+1) = first_lsn(N) + sealed_size(N)), and FlushedLsn()
// comparisons are trivial. Frames never straddle a segment boundary; a frame
// larger than the segment size gets a segment to itself.
//
// Rotation runs inside the flush leader (see below) when the next frame
// would overflow the tail segment: the leader (1) syncs the tail's data,
// (2) rewrites the tail's header with the final sealed size and syncs it —
// the seal, (3) creates the successor (reusing a parked recycle file via
// rename when one is available), writes + syncs its header, and (4) fsyncs
// the directory. A crash at any of those I/O points leaves either a sealed
// tail with no successor (Open creates one) or an embryonic successor with
// a short/stale header (Open recreates it); it can never leave a seq gap or
// lose sealed bytes.
//
// TruncateBelow(floor) removes every *sealed, non-tail* segment whose data
// lies wholly below the floor — callers pass min(redo_lsn, ckpt_lsn, oldest
// active-txn first LSN, open reorg unit's BEGIN LSN) so neither redo nor
// undo nor forward recovery can ever need a truncated byte. Victims are
// removed oldest-first (so the surviving seq range stays contiguous across
// a crash mid-truncation) and either parked into a bounded recycle pool
// ("db.wal-recycle.3") or deleted.
//
// Concurrency — group commit. Serialization into the buffer (Append) runs
// under mu_ and never touches a file. Durability (Flush/FlushTo) runs a
// leader/follower protocol under a separate commit_mu_: the first committer
// to find no flush in progress becomes the leader, steals the entire buffer
// under mu_ (appends continue behind it), and performs the chunked
// write+rotate+fsync with no LogManager mutex held; every committer whose
// target LSN lands inside that batch waits on commit_cv_ and returns as
// soon as flushed_lsn_ covers it. On failure the leader splices the
// not-yet-durable suffix of the batch back onto the front of the buffer
// (bytes sealed into a finished segment stay durable), so the failure is
// retryable and LSN assignment never skews; rewrites after a retry land at
// the same global offsets and are byte-identical.
//
// The segment list is guarded by seg_mu_ and handed out as a shared_ptr
// snapshot, so ReadAll/ReadAt never block appends or flushes; a reader that
// races the leader's in-flight frame sees a CRC failure and reports it as a
// torn tail, exactly like the single-file log did.

#ifndef SOREORG_WAL_LOG_MANAGER_H_
#define SOREORG_WAL_LOG_MANAGER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/env.h"
#include "src/storage/page.h"
#include "src/wal/log_record.h"

namespace soreorg {

/// What a full-log scan found past the valid prefix. A torn tail (the last
/// frame of the tail segment cut short or CRC-failed) is the normal
/// post-crash state and not an error; a valid frame *beyond* garbage within
/// the same segment, or any damage in a sealed (non-tail) segment, means
/// the middle of the log is damaged and replay must not proceed silently.
struct LogReadStats {
  uint64_t records_read = 0;
  uint64_t valid_bytes = 0;    // global data bytes in the cleanly-parsed prefix
  uint64_t dropped_bytes = 0;  // data bytes past the valid prefix
  uint64_t segments_scanned = 0;  // segments the scan actually visited
  bool torn_tail = false;      // scan stopped on a bad/short frame
  bool mid_log_corruption = false;  // valid frame found after the bad one
};

struct LogManagerOptions {
  /// Segment data capacity (excluding the header). 0 = unbounded: a single
  /// segment, behaviorally the old flat log. A frame larger than this still
  /// gets written (alone, in an otherwise empty segment).
  uint64_t segment_bytes = 4 * 1024 * 1024;
  /// Max truncated segments parked for reuse instead of deleted.
  size_t recycle_max = 2;
};

class LogManager {
 public:
  LogManager(Env* env, std::string base_name, LogManagerOptions opts = {});

  /// Discover/validate the segment chain (creating segment 1 for a virgin
  /// log); positions the append offset at the end of the tail's valid
  /// prefix, truncating a torn tail. Damage below the tail — a bad sealed
  /// header, a broken seq/LSN chain, or a torn frame that is followed by a
  /// valid one in the same segment — is Corruption, never self-healed.
  Status Open();

  /// Assign an LSN, buffer the record. Flushes only when the in-memory
  /// buffer exceeds its cap (group-commit style). rec->lsn is set.
  Status Append(LogRecord* rec);

  /// Cap on the in-memory log buffer; exceeding it triggers a flush on the
  /// next Append (default 256 KiB). Small caps make WAL writes frequent —
  /// the crash-injection experiments use this to land failures mid-unit.
  void set_buffer_limit(size_t bytes);

  /// Append and make durable immediately (group-commit path: concurrent
  /// callers share one leader's fsync).
  Status AppendAndFlush(LogRecord* rec);

  /// Make everything appended so far durable.
  Status Flush();

  /// Make records up to and including `lsn` durable. No-op fast path (one
  /// atomic load, no mutex, no I/O) when the LSN is already durable.
  Status FlushTo(Lsn lsn);

  /// Remove (recycle or delete) every sealed non-tail segment whose data is
  /// wholly below `floor`. The caller must have made `floor` safe: no redo,
  /// undo chain, or forward-recovery replay may ever need a byte below it.
  Status TruncateBelow(Lsn floor);

  Lsn NextLsn() const;
  Lsn FlushedLsn() const;
  /// First LSN still present in the log (advances with truncation).
  Lsn LowestLsn() const;

  /// Scan all valid records from `start_lsn` (default: start of log).
  /// Corrupt/torn tails terminate the scan without error; when `stats` is
  /// given, the tail is characterized (bytes dropped, and whether a valid
  /// frame exists beyond it — mid-log corruption the caller should refuse).
  Status ReadAll(std::vector<LogRecord>* out, Lsn start_lsn = 0,
                 LogReadStats* stats = nullptr) const;

  /// Read the single record at `lsn`.
  Status ReadAt(Lsn lsn, LogRecord* rec) const;

  // --- statistics (E3 / P6) ------------------------------------------------
  uint64_t bytes_appended() const;
  uint64_t records_appended() const;
  uint64_t bytes_for_type(LogType t) const;
  /// Physical write+fsync batches performed by flush leaders. Together with
  /// an Env sync counter this is the oracle for "N concurrent commits cost
  /// ~1 fsync".
  uint64_t sync_batches() const;
  /// Torn-tail bytes Open() truncated away (0 for a clean log). Recovery
  /// surfaces this in RecoveryResult — the tail is gone by the time redo's
  /// ReadAll runs, so only Open can report it.
  uint64_t open_dropped_bytes() const;
  void ResetStats();

  // Segment-level forensics.
  size_t segment_count() const;
  uint64_t tail_segment_seq() const;
  std::string tail_segment_name() const;
  size_t recycle_pool_size() const;
  uint64_t segments_created() const;   // fresh files created
  uint64_t segments_recycled() const;  // successors built from the pool
  uint64_t segments_truncated() const; // victims removed by TruncateBelow

  static std::string SegmentFileName(const std::string& base, uint64_t seq);
  static std::string RecycleFileName(const std::string& base, uint64_t k);

  static constexpr size_t kFrameHeader = 8;  // len + crc
  static constexpr size_t kSegmentHeaderSize = 48;
  static constexpr uint32_t kSegmentMagic = 0x4C415753;  // "SWAL"
  static constexpr uint32_t kSegmentVersion = 1;

 private:
  struct Segment {
    uint64_t seq = 0;
    Lsn first_lsn = 1;       // biased global data offset of the first frame
    Lsn prev_first_lsn = 0;  // 0 = no predecessor (or predecessor truncated)
    // Data bytes written past the header (excludes the header itself).
    // Mutated only by the flush leader / Open; published by `sealed`.
    uint64_t data_size = 0;
    std::atomic<bool> sealed{false};
    std::string name;
    std::unique_ptr<File> file;
  };
  using SegmentPtr = std::shared_ptr<Segment>;

  struct SegmentHeader {
    uint64_t seq = 0;
    Lsn first_lsn = 1;
    Lsn prev_first_lsn = 0;
    uint64_t sealed_size = 0;  // 0 = active (unsealed)
  };

  static void EncodeSegmentHeader(const SegmentHeader& h, char* out);
  static bool DecodeSegmentHeader(const char* in, SegmentHeader* h);

  // Chunked write of a stolen batch: fills the tail, rotating as needed.
  // *durable_done is the batch prefix guaranteed durable on return (always
  // at a frame boundary — seals and the final sync are the only advances).
  Status WriteBatch(const std::string& batch, Lsn batch_off,
                    uint64_t* durable_done);
  // Sync the tail's data, rewrite its header with the final size, sync it.
  Status SealSegment(const SegmentPtr& seg);
  // Create segment seq+1 after `sealed_tail`, reusing a parked recycle file
  // when available; pushes it onto segments_. Resumable after any failure.
  Status CreateSuccessor(const SegmentPtr& sealed_tail);
  Status WriteFreshHeader(File* file, const SegmentHeader& h);

  SegmentPtr TailSegment() const;
  std::vector<SegmentPtr> SnapshotSegments() const;

  Env* env_;
  std::string base_;
  LogManagerOptions opts_;

  // Segment chain: ordered by seq, front = oldest. Guarded by seg_mu_;
  // readers take shared_ptr snapshots and do file I/O lock-free.
  mutable std::mutex seg_mu_;
  std::deque<SegmentPtr> segments_;
  std::deque<std::string> recycle_pool_;
  uint64_t recycle_seq_ = 0;  // next recycle-file number (monotonic)
  uint64_t segments_created_ = 0;
  uint64_t segments_recycled_ = 0;
  uint64_t segments_truncated_ = 0;

  // Serialization state: guarded by mu_. No file I/O under mu_.
  mutable std::mutex mu_;
  std::string buffer_;        // not-yet-written frames
  Lsn buffer_start_ = 0;      // 0-based global data offset of buffer_[0]
  Lsn next_lsn_ = 0;
  size_t buffer_limit_ = 256 * 1024;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t open_dropped_bytes_ = 0;
  std::array<uint64_t, 32> type_bytes_{};

  // Durability state: all records with lsn < flushed_lsn_ are durable.
  // Written by the flush leader (under commit_mu_), read lock-free.
  std::atomic<Lsn> flushed_lsn_{0};
  std::atomic<uint64_t> sync_batches_{0};

  // Group-commit coordination. commit_cv_ is keyed by flushed_lsn_
  // advancing (or the leader slot freeing up).
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  bool flush_active_ = false;
};

}  // namespace soreorg

#endif  // SOREORG_WAL_LOG_MANAGER_H_
