// LogManager: append-only WAL with group buffering, CRC framing, and
// byte-offset LSNs.
//
// Framing on disk:  [fixed32 len][fixed32 masked crc32c(payload)][payload]
// A record's LSN is the file offset of its frame, so LSN order == log order
// and FlushedLsn() comparisons are trivial. Recovery scans forward and stops
// at the first frame that is truncated or fails its CRC (the torn tail after
// a crash).
//
// Concurrency — group commit. Serialization into the buffer (Append) runs
// under mu_ and never touches the file. Durability (Flush/FlushTo) runs a
// leader/follower protocol under a separate commit_mu_: the first committer
// to find no flush in progress becomes the leader, steals the entire buffer
// under mu_ (appends continue behind it), and performs the write+fsync with
// no LogManager mutex held; every committer whose target LSN lands inside
// that batch waits on commit_cv_ and returns as soon as flushed_lsn_ covers
// it — K concurrent AppendAndFlush calls cost ~1 fsync instead of K. A
// committer appended after the steal becomes the next leader when the
// current one finishes. flushed_lsn_ is atomic so the FlushTo fast path
// (and the buffer pool's WAL interlock probe) is a single load, no mutex.
//
// Lock order: commit_mu_ → mu_ (the leader's buffer steal and failure
// restore). Nothing takes commit_mu_ while holding mu_, and the file
// write+fsync happens with neither held. A concurrent ReadAt can observe
// the leader's half-written frame; the CRC framing turns that into a clean
// Corruption which callers (txn abort) retry after a Flush.
//
// On a failed write/sync the leader splices the stolen batch back onto the
// front of the buffer (appends that ran behind it stay at the right
// offsets), so the failure is retryable and LSN assignment never skews.
//
// Per-type byte counters feed the log-volume experiment (E3).

#ifndef SOREORG_WAL_LOG_MANAGER_H_
#define SOREORG_WAL_LOG_MANAGER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/env.h"
#include "src/storage/page.h"
#include "src/wal/log_record.h"

namespace soreorg {

/// What a full-log scan found past the valid prefix. A torn tail (the last
/// frame cut short or CRC-failed) is the normal post-crash state and not an
/// error; a valid frame *beyond* garbage means the middle of the log is
/// damaged and replay must not proceed silently.
struct LogReadStats {
  uint64_t records_read = 0;
  uint64_t valid_bytes = 0;    // length of the cleanly-parsed prefix
  uint64_t dropped_bytes = 0;  // file bytes past the valid prefix
  bool torn_tail = false;      // scan stopped on a bad/short frame
  bool mid_log_corruption = false;  // valid frame found after the bad one
};

class LogManager {
 public:
  LogManager(Env* env, std::string file_name);

  /// Open/create the log file; positions the append offset at the end of the
  /// valid prefix (scanning past any torn tail).
  Status Open();

  /// Assign an LSN, buffer the record. Flushes only when the in-memory
  /// buffer exceeds its cap (group-commit style). rec->lsn is set.
  Status Append(LogRecord* rec);

  /// Cap on the in-memory log buffer; exceeding it triggers a flush on the
  /// next Append (default 256 KiB). Small caps make WAL writes frequent —
  /// the crash-injection experiments use this to land failures mid-unit.
  void set_buffer_limit(size_t bytes);

  /// Append and make durable immediately (group-commit path: concurrent
  /// callers share one leader's fsync).
  Status AppendAndFlush(LogRecord* rec);

  /// Make everything appended so far durable.
  Status Flush();

  /// Make records up to and including `lsn` durable. No-op fast path (one
  /// atomic load, no mutex, no I/O) when the LSN is already durable.
  Status FlushTo(Lsn lsn);

  Lsn NextLsn() const;
  Lsn FlushedLsn() const;

  /// Scan all valid records from `start_lsn` (default: start of log).
  /// Corrupt/torn tails terminate the scan without error; when `stats` is
  /// given, the tail is characterized (bytes dropped, and whether a valid
  /// frame exists beyond it — mid-log corruption the caller should refuse).
  Status ReadAll(std::vector<LogRecord>* out, Lsn start_lsn = 0,
                 LogReadStats* stats = nullptr) const;

  /// Read the single record at `lsn`.
  Status ReadAt(Lsn lsn, LogRecord* rec) const;

  // --- statistics (E3) -----------------------------------------------------
  uint64_t bytes_appended() const;
  uint64_t records_appended() const;
  uint64_t bytes_for_type(LogType t) const;
  /// Physical write+fsync batches performed by flush leaders. Together with
  /// an Env sync counter this is the oracle for "N concurrent commits cost
  /// ~1 fsync".
  uint64_t sync_batches() const;
  /// Torn-tail bytes Open() truncated away (0 for a clean log). Recovery
  /// surfaces this in RecoveryResult — the tail is gone by the time redo's
  /// ReadAll runs, so only Open can report it.
  uint64_t open_dropped_bytes() const;
  void ResetStats();

  static constexpr size_t kFrameHeader = 8;  // len + crc

 private:
  Env* env_;
  std::string file_name_;
  std::unique_ptr<File> file_;

  // Serialization state: guarded by mu_. No file I/O under mu_.
  mutable std::mutex mu_;
  std::string buffer_;        // not-yet-written frames
  Lsn buffer_start_ = 0;      // LSN of buffer_[0]
  Lsn next_lsn_ = 0;
  size_t buffer_limit_ = 256 * 1024;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t open_dropped_bytes_ = 0;
  std::array<uint64_t, 32> type_bytes_{};

  // Durability state: all records with lsn < flushed_lsn_ are durable.
  // Written by the flush leader (under commit_mu_), read lock-free.
  std::atomic<Lsn> flushed_lsn_{0};
  std::atomic<uint64_t> sync_batches_{0};

  // Group-commit coordination. commit_cv_ is keyed by flushed_lsn_
  // advancing (or the leader slot freeing up).
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  bool flush_active_ = false;
};

}  // namespace soreorg

#endif  // SOREORG_WAL_LOG_MANAGER_H_
