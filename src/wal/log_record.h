// WAL record types.
//
// Three families:
//  * transaction records (insert/delete/update on leaf records, CLRs,
//    commit/abort) — ARIES-style physiological logging, undone via the
//    per-transaction prev_lsn chain;
//  * page lifecycle records (alloc/dealloc/format) so allocation state and
//    page images are reconstructible;
//  * reorganization records, exactly the paper's §5 set:
//      (BEGIN, unit, type, base pages..., leaf pages...)
//      (MOVE, record contents | keys-only, org page, dest page, prev_lsn)
//      (MODIFY, base page, org key, org ptr, new key, new ptr, prev_lsn)
//      (END, unit)
//    plus the pass-3 records (§7.3): STABLE_KEY, SIDE_APPLY, TREE_SWITCH.
//
// One struct covers all types; unused fields serialize to a byte or two, and
// the per-type byte accounting feeds the log-volume experiment (E3).

#ifndef SOREORG_WAL_LOG_RECORD_H_
#define SOREORG_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/page.h"
#include "src/util/slice.h"
#include "src/util/status.h"

namespace soreorg {

using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;
/// The reorganizer logs under this pseudo-transaction id.
constexpr TxnId kReorgTxnId = 1;
constexpr TxnId kFirstUserTxnId = 2;

enum class LogType : uint8_t {
  kInvalid = 0,
  // Transaction records.
  kInsert = 1,       // page_id, key, value
  kDelete = 2,       // page_id, key, old value (for undo)
  kUpdate = 3,       // page_id, key, old value, new value
  kClr = 4,          // compensation; undo_next_lsn in lsn2
  kCommit = 5,
  kAbort = 6,
  // Page lifecycle.
  kAllocPage = 7,    // page_id
  kDeallocPage = 8,  // page_id
  kFormatPage = 9,   // page_id, u8 page type in unit_type, level in flags, aux key
  kLinkPage = 10,    // page_id: set prev/next side pointers (page_id2=prev, page_id3=next)
  // Reorganization unit records (§5).
  kReorgBegin = 11,  // unit, unit_type, pages[] = base pages then leaf pages (split at n_base)
  kReorgMove = 12,   // org = page_id, dest = page_id2, payload = packed records or keys
  kReorgModify = 13, // base = page_id, key/value = org key+ptr, key2/value2 = new key+ptr
  kReorgEnd = 14,    // unit; key = largest key processed (LK update)
  // Internal-page (pass 3) records (§7.3).
  kStableKey = 15,   // key = most recent stable key; page_id = new-tree root so far
  kSideApply = 16,   // a side-file record applied to the new tree
  kTreeSwitch = 17,  // page_id = new root, page_id2 = old root
  // Checkpointing.
  kCheckpoint = 18,  // payload = CheckpointImage
  // Tree metadata.
  kRootChange = 19,  // page_id = new root, page_id2 = old root, flags = height
  // Structure modifications (single atomic records; never undone).
  kLeafSplit = 20,     // page_id = old leaf, page_id2 = new leaf,
                       // page_id3 = parent, key = separator,
                       // payload = moved cells, value = fixed32 old-next pid
  kInternalSplit = 21, // page_id = old, page_id2 = new, page_id3 = parent
                       // (kInvalidPageId => root split; value2 = fixed32 new
                       // root pid, flags = new height), key = separator,
                       // payload = moved cells
  kNodeFree = 22,      // page_id = freed node, page_id3 = parent,
                       // key = separator removed from parent,
                       // page_id2 = prev leaf, value = fixed32 next leaf pid
                       // (side-pointer unlink; leaves only)
  // Side file (pass 3, §7.2).
  kSideInsert = 23,    // unit_type = BaseUpdateOp, key, page_id = leaf,
                       // logged under the user transaction's chain
  kSideCancel = 24,    // compensation: the structure modification that
                       // recorded the matching kSideInsert failed and will
                       // be retried (or abandoned); drop the entry
};

/// Reorganization unit types (the BEGIN record's Type field).
enum class ReorgUnitType : uint8_t {
  kNone = 0,
  kCompact = 1,  // compact leaves under one base page, in place
  kSwap = 2,     // swap two leaf pages (one or two base pages)
  kMove = 3,     // move one leaf page to an empty page
};

struct LogRecord {
  LogType type = LogType::kInvalid;
  TxnId txn_id = kInvalidTxnId;
  Lsn prev_lsn = kInvalidLsn;   // per-txn / per-unit backward chain
  Lsn lsn2 = kInvalidLsn;       // CLR undo-next
  PageId page_id = kInvalidPageId;
  PageId page_id2 = kInvalidPageId;
  PageId page_id3 = kInvalidPageId;
  uint32_t unit = 0;            // reorganization unit number
  uint8_t unit_type = 0;        // ReorgUnitType / PageType for kFormatPage
  uint8_t flags = 0;            // level for kFormatPage; keys-only bit for kReorgMove
  std::string key;
  std::string key2;
  std::string value;
  std::string value2;
  std::string payload;          // bulk data (checkpoint image, move bundle)

  // Assigned by LogManager::Append; not serialized (the LSN is the record's
  // file offset).
  Lsn lsn = kInvalidLsn;

  void AppendTo(std::string* dst) const;
  static Status Parse(Slice input, LogRecord* rec);

  /// Serialized size in bytes (what Append will write, before framing).
  size_t EncodedSize() const;
};

/// kReorgMove flag bit: payload carries keys only (careful-writing mode),
/// not full record bodies.
constexpr uint8_t kMoveKeysOnly = 0x1;
/// kInsert/kDelete/kUpdate flag bit: the target page is an internal (base)
/// page and `value` is a fixed32 child page id, not a record payload.
constexpr uint8_t kInternalCell = 0x2;
/// kClr flag bit: the compensating action is an insert (undo of a delete);
/// otherwise it is a delete (undo of an insert).
constexpr uint8_t kClrInsert = 0x4;
/// kReorgMove flag bit: this MOVE is a page-content *swap*; the payload is
/// the full cell image of the org page (the paper: "there is no way to avoid
/// logging at least one of the full page contents" when swapping).
constexpr uint8_t kSwapImages = 0x8;

const char* LogTypeName(LogType t);

}  // namespace soreorg

#endif  // SOREORG_WAL_LOG_RECORD_H_
