#include "src/wal/log_record.h"

#include "src/util/coding.h"

namespace soreorg {

void LogRecord::AppendTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, txn_id);
  PutVarint64(dst, prev_lsn);
  PutVarint64(dst, lsn2);
  PutVarint32(dst, page_id);
  PutVarint32(dst, page_id2);
  PutVarint32(dst, page_id3);
  PutVarint32(dst, unit);
  dst->push_back(static_cast<char>(unit_type));
  dst->push_back(static_cast<char>(flags));
  PutLengthPrefixedSlice(dst, key);
  PutLengthPrefixedSlice(dst, key2);
  PutLengthPrefixedSlice(dst, value);
  PutLengthPrefixedSlice(dst, value2);
  PutLengthPrefixedSlice(dst, payload);
}

size_t LogRecord::EncodedSize() const {
  std::string tmp;
  AppendTo(&tmp);
  return tmp.size();
}

Status LogRecord::Parse(Slice in, LogRecord* rec) {
  auto fail = [] { return Status::Corruption("bad log record"); };
  if (in.empty()) return fail();
  rec->type = static_cast<LogType>(in[0]);
  in.remove_prefix(1);
  uint64_t v64;
  uint32_t v32;
  if (!GetVarint64(&in, &v64)) return fail();
  rec->txn_id = v64;
  if (!GetVarint64(&in, &v64)) return fail();
  rec->prev_lsn = v64;
  if (!GetVarint64(&in, &v64)) return fail();
  rec->lsn2 = v64;
  if (!GetVarint32(&in, &v32)) return fail();
  rec->page_id = v32;
  if (!GetVarint32(&in, &v32)) return fail();
  rec->page_id2 = v32;
  if (!GetVarint32(&in, &v32)) return fail();
  rec->page_id3 = v32;
  if (!GetVarint32(&in, &v32)) return fail();
  rec->unit = v32;
  if (in.size() < 2) return fail();
  rec->unit_type = static_cast<uint8_t>(in[0]);
  rec->flags = static_cast<uint8_t>(in[1]);
  in.remove_prefix(2);
  Slice s;
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  rec->key = s.ToString();
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  rec->key2 = s.ToString();
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  rec->value = s.ToString();
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  rec->value2 = s.ToString();
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  rec->payload = s.ToString();
  if (!in.empty()) return fail();
  return Status::OK();
}

const char* LogTypeName(LogType t) {
  switch (t) {
    case LogType::kInvalid:
      return "INVALID";
    case LogType::kInsert:
      return "INSERT";
    case LogType::kDelete:
      return "DELETE";
    case LogType::kUpdate:
      return "UPDATE";
    case LogType::kClr:
      return "CLR";
    case LogType::kCommit:
      return "COMMIT";
    case LogType::kAbort:
      return "ABORT";
    case LogType::kAllocPage:
      return "ALLOC";
    case LogType::kDeallocPage:
      return "DEALLOC";
    case LogType::kFormatPage:
      return "FORMAT";
    case LogType::kLinkPage:
      return "LINK";
    case LogType::kReorgBegin:
      return "REORG_BEGIN";
    case LogType::kReorgMove:
      return "REORG_MOVE";
    case LogType::kReorgModify:
      return "REORG_MODIFY";
    case LogType::kReorgEnd:
      return "REORG_END";
    case LogType::kStableKey:
      return "STABLE_KEY";
    case LogType::kSideApply:
      return "SIDE_APPLY";
    case LogType::kTreeSwitch:
      return "TREE_SWITCH";
    case LogType::kCheckpoint:
      return "CHECKPOINT";
    case LogType::kRootChange:
      return "ROOT_CHANGE";
    case LogType::kLeafSplit:
      return "LEAF_SPLIT";
    case LogType::kInternalSplit:
      return "INTERNAL_SPLIT";
    case LogType::kNodeFree:
      return "NODE_FREE";
    case LogType::kSideInsert:
      return "SIDE_INSERT";
    case LogType::kSideCancel:
      return "SIDE_CANCEL";
  }
  return "?";
}

}  // namespace soreorg
