#include "src/wal/checkpoint.h"

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace soreorg {

std::string CheckpointImage::Serialize() const {
  std::string out;
  PutVarint64(&out, redo_lsn);
  PutLengthPrefixedSlice(&out, disk_meta);
  PutVarint32(&out, static_cast<uint32_t>(active_txns.size()));
  for (const auto& [txn, lsn] : active_txns) {
    PutVarint64(&out, txn);
    PutVarint64(&out, lsn);
  }
  PutVarint64(&out, next_txn_id);
  out.push_back(reorg.has_open_unit ? 1 : 0);
  PutVarint32(&out, reorg.unit);
  PutVarint64(&out, reorg.begin_lsn);
  PutVarint64(&out, reorg.recent_lsn);
  PutLengthPrefixedSlice(&out, reorg.largest_finished_key);
  out.push_back(reorg.leaf_pass_active ? 1 : 0);
  out.push_back(reorg.reorg_bit ? 1 : 0);
  PutLengthPrefixedSlice(&out, reorg.stable_key);
  PutFixed32(&out, reorg.new_tree_root);
  PutFixed32(&out, tree_root);
  out.push_back(static_cast<char>(tree_height));
  PutVarint64(&out, tree_incarnation);
  PutLengthPrefixedSlice(&out, side_file_image);
  return out;
}

Status CheckpointImage::Parse(const Slice& input, CheckpointImage* img) {
  Slice in = input;
  auto fail = [] { return Status::Corruption("bad checkpoint image"); };
  uint64_t redo;
  if (!GetVarint64(&in, &redo)) return fail();
  img->redo_lsn = redo;
  Slice s;
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  img->disk_meta = s.ToString();
  uint32_t n;
  if (!GetVarint32(&in, &n)) return fail();
  img->active_txns.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t txn, lsn;
    if (!GetVarint64(&in, &txn) || !GetVarint64(&in, &lsn)) return fail();
    img->active_txns.emplace_back(txn, lsn);
  }
  uint64_t v64;
  if (!GetVarint64(&in, &v64)) return fail();
  img->next_txn_id = v64;
  if (in.size() < 1) return fail();
  img->reorg.has_open_unit = in[0] != 0;
  in.remove_prefix(1);
  uint32_t v32;
  if (!GetVarint32(&in, &v32)) return fail();
  img->reorg.unit = v32;
  if (!GetVarint64(&in, &v64)) return fail();
  img->reorg.begin_lsn = v64;
  if (!GetVarint64(&in, &v64)) return fail();
  img->reorg.recent_lsn = v64;
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  img->reorg.largest_finished_key = s.ToString();
  if (in.size() < 2) return fail();
  img->reorg.leaf_pass_active = in[0] != 0;
  img->reorg.reorg_bit = in[1] != 0;
  in.remove_prefix(2);
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  img->reorg.stable_key = s.ToString();
  if (!GetFixed32(&in, &v32)) return fail();
  img->reorg.new_tree_root = v32;
  if (!GetFixed32(&in, &v32)) return fail();
  img->tree_root = v32;
  if (in.size() < 1) return fail();
  img->tree_height = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  if (!GetVarint64(&in, &v64)) return fail();
  img->tree_incarnation = v64;
  if (!GetLengthPrefixedSlice(&in, &s)) return fail();
  img->side_file_image = s.ToString();
  return Status::OK();
}

CheckpointMaster::CheckpointMaster(Env* env, std::string file_name)
    : env_(env), file_name_(std::move(file_name)) {}

Status CheckpointMaster::Open() { return env_->NewFile(file_name_, &file_); }

Status CheckpointMaster::Store(Lsn checkpoint_lsn) {
  char buf[12];
  EncodeFixed64(buf, checkpoint_lsn);
  EncodeFixed32(buf + 8, crc32c::Mask(crc32c::Value(buf, 8)));
  Status s = file_->Write(0, Slice(buf, sizeof(buf)));
  if (!s.ok()) return s;
  return file_->Sync();
}

Status CheckpointMaster::Load(Lsn* checkpoint_lsn) const {
  char buf[12];
  size_t n = 0;
  Status s = file_->Read(0, sizeof(buf), buf, &n);
  if (!s.ok()) return s;
  if (n < sizeof(buf)) return Status::NotFound("no checkpoint");
  if (crc32c::Unmask(DecodeFixed32(buf + 8)) != crc32c::Value(buf, 8)) {
    return Status::Corruption("checkpoint master crc");
  }
  *checkpoint_lsn = DecodeFixed64(buf);
  return Status::OK();
}

}  // namespace soreorg
