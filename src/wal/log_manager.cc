#include "src/wal/log_manager.h"

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace soreorg {

LogManager::LogManager(Env* env, std::string file_name)
    : env_(env), file_name_(std::move(file_name)) {}

Status LogManager::Open() {
  Status s = env_->NewFile(file_name_, &file_);
  if (!s.ok()) return s;

  // Find the end of the valid prefix.
  std::lock_guard<std::mutex> g(mu_);
  uint64_t size = file_->Size();
  uint64_t off = 0;
  while (off + kFrameHeader <= size) {
    char hdr[kFrameHeader];
    size_t n = 0;
    s = file_->Read(off, kFrameHeader, hdr, &n);
    if (!s.ok() || n < kFrameHeader) break;
    uint32_t len = DecodeFixed32(hdr);
    uint32_t masked = DecodeFixed32(hdr + 4);
    if (len == 0 || off + kFrameHeader + len > size) break;
    std::string body(len, '\0');
    s = file_->Read(off + kFrameHeader, len, body.data(), &n);
    if (!s.ok() || n < len) break;
    if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) break;
    off += kFrameHeader + len;
  }
  // Discard any torn tail so new appends start clean. LSNs are byte
  // offsets biased by +1 so that offset 0 is representable (kInvalidLsn
  // is 0).
  file_->Truncate(off);
  next_lsn_ = off + 1;
  flushed_lsn_ = off + 1;
  buffer_start_ = off;
  buffer_.clear();
  return Status::OK();
}

Status LogManager::Append(LogRecord* rec) {
  std::lock_guard<std::mutex> g(mu_);
  std::string body;
  rec->AppendTo(&body);
  rec->lsn = next_lsn_;

  char hdr[kFrameHeader];
  EncodeFixed32(hdr, static_cast<uint32_t>(body.size()));
  EncodeFixed32(hdr + 4, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  buffer_.append(hdr, kFrameHeader);
  buffer_.append(body);

  next_lsn_ += kFrameHeader + body.size();
  bytes_appended_ += kFrameHeader + body.size();
  ++records_appended_;
  type_bytes_[static_cast<size_t>(rec->type) % type_bytes_.size()] +=
      kFrameHeader + body.size();
  if (buffer_.size() > buffer_limit_) return LockedFlush();
  return Status::OK();
}

void LogManager::set_buffer_limit(size_t bytes) {
  std::lock_guard<std::mutex> g(mu_);
  buffer_limit_ = bytes;
}

Status LogManager::AppendAndFlush(LogRecord* rec) {
  Status s = Append(rec);
  if (!s.ok()) return s;
  return Flush();
}

Status LogManager::LockedFlush() {
  if (buffer_.empty()) return Status::OK();
  Status s = file_->Write(buffer_start_, buffer_);
  if (!s.ok()) return s;
  s = file_->Sync();
  if (!s.ok()) return s;
  buffer_start_ += buffer_.size();
  buffer_.clear();
  flushed_lsn_ = buffer_start_ + 1;
  return Status::OK();
}

Status LogManager::Flush() {
  std::lock_guard<std::mutex> g(mu_);
  return LockedFlush();
}

Status LogManager::FlushTo(Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  if (lsn < flushed_lsn_) return Status::OK();
  return LockedFlush();
}

Lsn LogManager::NextLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_lsn_;
}

Lsn LogManager::FlushedLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return flushed_lsn_;
}

Status LogManager::ReadAll(std::vector<LogRecord>* out, Lsn start_lsn) const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t size = file_->Size();
  uint64_t off = start_lsn == 0 ? 0 : start_lsn - 1;
  while (off + kFrameHeader <= size) {
    char hdr[kFrameHeader];
    size_t n = 0;
    Status s = file_->Read(off, kFrameHeader, hdr, &n);
    if (!s.ok() || n < kFrameHeader) break;
    uint32_t len = DecodeFixed32(hdr);
    uint32_t masked = DecodeFixed32(hdr + 4);
    if (len == 0 || off + kFrameHeader + len > size) break;
    std::string body(len, '\0');
    s = file_->Read(off + kFrameHeader, len, body.data(), &n);
    if (!s.ok() || n < len) break;
    if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) break;
    LogRecord rec;
    s = LogRecord::Parse(Slice(body), &rec);
    if (!s.ok()) break;
    rec.lsn = off + 1;
    out->push_back(std::move(rec));
    off += kFrameHeader + len;
  }
  return Status::OK();
}

Status LogManager::ReadAt(Lsn lsn, LogRecord* rec) const {
  if (lsn == kInvalidLsn) return Status::NotFound("invalid lsn");
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t off = lsn - 1;
  char hdr[kFrameHeader];
  size_t n = 0;
  Status s = file_->Read(off, kFrameHeader, hdr, &n);
  if (!s.ok()) return s;
  if (n < kFrameHeader) return Status::NotFound("lsn past end of log");
  uint32_t len = DecodeFixed32(hdr);
  uint32_t masked = DecodeFixed32(hdr + 4);
  std::string body(len, '\0');
  s = file_->Read(off + kFrameHeader, len, body.data(), &n);
  if (!s.ok()) return s;
  if (n < len) return Status::Corruption("truncated record");
  if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) {
    return Status::Corruption("crc mismatch");
  }
  s = LogRecord::Parse(Slice(body), rec);
  if (!s.ok()) return s;
  rec->lsn = lsn;
  return Status::OK();
}

uint64_t LogManager::bytes_appended() const {
  std::lock_guard<std::mutex> g(mu_);
  return bytes_appended_;
}

uint64_t LogManager::records_appended() const {
  std::lock_guard<std::mutex> g(mu_);
  return records_appended_;
}

uint64_t LogManager::bytes_for_type(LogType t) const {
  std::lock_guard<std::mutex> g(mu_);
  return type_bytes_[static_cast<size_t>(t) % type_bytes_.size()];
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  bytes_appended_ = 0;
  records_appended_ = 0;
  type_bytes_.fill(0);
}

}  // namespace soreorg
