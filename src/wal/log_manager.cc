#include "src/wal/log_manager.h"

#include <algorithm>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace soreorg {

namespace {
bool ValidFrameAt(const File* file, uint64_t off, uint64_t size);
}  // namespace

LogManager::LogManager(Env* env, std::string file_name)
    : env_(env), file_name_(std::move(file_name)) {}

Status LogManager::Open() {
  Status s = env_->NewFile(file_name_, &file_);
  if (!s.ok()) return s;

  // Find the end of the valid prefix.
  std::lock_guard<std::mutex> g(mu_);
  uint64_t size = file_->Size();
  uint64_t off = 0;
  while (off + kFrameHeader <= size) {
    char hdr[kFrameHeader];
    size_t n = 0;
    s = file_->Read(off, kFrameHeader, hdr, &n);
    if (!s.ok() || n < kFrameHeader) break;
    uint32_t len = DecodeFixed32(hdr);
    uint32_t masked = DecodeFixed32(hdr + 4);
    if (len == 0 || off + kFrameHeader + len > size) break;
    std::string body(len, '\0');
    s = file_->Read(off + kFrameHeader, len, body.data(), &n);
    if (!s.ok() || n < len) break;
    if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) break;
    off += kFrameHeader + len;
  }
  // Before discarding the tail as torn, make sure it really is a tail: a
  // CRC-valid frame beyond the damage means mid-log corruption, and
  // truncating would silently destroy valid (possibly acknowledged)
  // records. That must fail loudly, not self-heal.
  if (off < size) {
    constexpr uint64_t kResyncWindow = 64 * 1024;
    const uint64_t limit = std::min(size, off + kResyncWindow);
    for (uint64_t probe = off + 1; probe < limit; ++probe) {
      if (ValidFrameAt(file_.get(), probe, size)) {
        return Status::Corruption(
            "WAL has valid records beyond a corrupt frame at offset " +
            std::to_string(off) + " (mid-log damage, not a torn tail)");
      }
    }
  }
  // Discard the torn tail so new appends start clean. LSNs are byte
  // offsets biased by +1 so that offset 0 is representable (kInvalidLsn
  // is 0).
  open_dropped_bytes_ = size - off;
  file_->Truncate(off);
  next_lsn_ = off + 1;
  flushed_lsn_.store(off + 1, std::memory_order_release);
  buffer_start_ = off;
  buffer_.clear();
  return Status::OK();
}

Status LogManager::Append(LogRecord* rec) {
  bool over_limit;
  {
    std::lock_guard<std::mutex> g(mu_);
    std::string body;
    rec->AppendTo(&body);
    rec->lsn = next_lsn_;

    char hdr[kFrameHeader];
    EncodeFixed32(hdr, static_cast<uint32_t>(body.size()));
    EncodeFixed32(hdr + 4,
                  crc32c::Mask(crc32c::Value(body.data(), body.size())));
    buffer_.append(hdr, kFrameHeader);
    buffer_.append(body);

    next_lsn_ += kFrameHeader + body.size();
    bytes_appended_ += kFrameHeader + body.size();
    ++records_appended_;
    type_bytes_[static_cast<size_t>(rec->type) % type_bytes_.size()] +=
        kFrameHeader + body.size();
    over_limit = buffer_.size() > buffer_limit_;
  }
  // The capacity flush runs through the group-commit path with mu_
  // released, so serialization never waits on file I/O.
  if (over_limit) return Flush();
  return Status::OK();
}

void LogManager::set_buffer_limit(size_t bytes) {
  std::lock_guard<std::mutex> g(mu_);
  buffer_limit_ = bytes;
}

Status LogManager::AppendAndFlush(LogRecord* rec) {
  Status s = Append(rec);
  if (!s.ok()) return s;
  return FlushTo(rec->lsn);
}

Status LogManager::Flush() {
  Lsn target;
  {
    std::lock_guard<std::mutex> g(mu_);
    target = next_lsn_ - 1;  // durable through the last appended byte
  }
  return FlushTo(target);
}

Status LogManager::FlushTo(Lsn lsn) {
  // Fast path: already durable. One atomic load — the buffer pool probes
  // this on every page write, so it must never touch a mutex or the file.
  if (lsn < flushed_lsn_.load(std::memory_order_acquire)) return Status::OK();

  std::unique_lock<std::mutex> cl(commit_mu_);
  while (true) {
    if (lsn < flushed_lsn_.load(std::memory_order_acquire)) {
      // A leader's batch covered us while we queued: group commit — we ride
      // its fsync and pay nothing.
      return Status::OK();
    }
    if (!flush_active_) break;
    commit_cv_.wait(cl);
  }
  flush_active_ = true;

  // Leader: steal the whole buffer. Appends continue behind the steal at
  // their already-assigned offsets.
  std::string batch;
  Lsn batch_off = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    batch.swap(buffer_);
    batch_off = buffer_start_;
    buffer_start_ += batch.size();
  }

  Status s = Status::OK();
  if (!batch.empty()) {
    cl.unlock();  // write+fsync with no LogManager mutex held
    s = file_->Write(batch_off, batch);
    if (s.ok()) s = file_->Sync();
    cl.lock();
    if (s.ok()) {
      flushed_lsn_.store(batch_off + batch.size() + 1,
                         std::memory_order_release);
      sync_batches_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Splice the batch back so the failure is retryable; records appended
      // behind the steal keep their offsets.
      std::lock_guard<std::mutex> g(mu_);
      buffer_.insert(0, batch);
      buffer_start_ -= batch.size();
    }
  }
  flush_active_ = false;
  commit_cv_.notify_all();
  return s;
}

Lsn LogManager::NextLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_lsn_;
}

Lsn LogManager::FlushedLsn() const {
  return flushed_lsn_.load(std::memory_order_acquire);
}

namespace {

/// True iff a whole, CRC-valid, parseable frame starts at `off`.
bool ValidFrameAt(const File* file, uint64_t off, uint64_t size) {
  if (off + LogManager::kFrameHeader > size) return false;
  char hdr[LogManager::kFrameHeader];
  size_t n = 0;
  if (!file->Read(off, LogManager::kFrameHeader, hdr, &n).ok() ||
      n < LogManager::kFrameHeader) {
    return false;
  }
  uint32_t len = DecodeFixed32(hdr);
  uint32_t masked = DecodeFixed32(hdr + 4);
  if (len == 0 || off + LogManager::kFrameHeader + len > size) return false;
  std::string body(len, '\0');
  if (!file->Read(off + LogManager::kFrameHeader, len, body.data(), &n).ok() ||
      n < len) {
    return false;
  }
  if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) return false;
  LogRecord rec;
  return LogRecord::Parse(Slice(body), &rec).ok();
}

}  // namespace

Status LogManager::ReadAll(std::vector<LogRecord>* out, Lsn start_lsn,
                           LogReadStats* stats) const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t size = file_->Size();
  uint64_t off = start_lsn == 0 ? 0 : start_lsn - 1;
  bool bad_frame = false;
  while (off + kFrameHeader <= size) {
    char hdr[kFrameHeader];
    size_t n = 0;
    Status s = file_->Read(off, kFrameHeader, hdr, &n);
    if (!s.ok() || n < kFrameHeader) {
      bad_frame = true;
      break;
    }
    uint32_t len = DecodeFixed32(hdr);
    uint32_t masked = DecodeFixed32(hdr + 4);
    if (len == 0 || off + kFrameHeader + len > size) {
      bad_frame = true;
      break;
    }
    std::string body(len, '\0');
    s = file_->Read(off + kFrameHeader, len, body.data(), &n);
    if (!s.ok() || n < len) {
      bad_frame = true;
      break;
    }
    if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) {
      bad_frame = true;
      break;
    }
    LogRecord rec;
    s = LogRecord::Parse(Slice(body), &rec);
    if (!s.ok()) {
      bad_frame = true;
      break;
    }
    rec.lsn = off + 1;
    out->push_back(std::move(rec));
    off += kFrameHeader + len;
  }
  if (stats != nullptr) {
    stats->records_read = out->size();
    stats->valid_bytes = off;
    stats->dropped_bytes = size > off ? size - off : 0;
    stats->torn_tail = bad_frame && size > off;
    stats->mid_log_corruption = false;
    if (stats->torn_tail) {
      // A torn tail is the expected shape after power loss: the last batch
      // was cut off and nothing follows it. If a valid frame re-appears at
      // some later offset, the damage is in the *middle* of the log and
      // silently stopping here would drop committed records — scan a
      // bounded window for one. (A false positive needs random bytes to
      // pass a CRC32C, ~2^-32 per candidate offset.)
      constexpr uint64_t kResyncWindow = 64 * 1024;
      uint64_t limit = std::min(size, off + kResyncWindow);
      for (uint64_t cand = off + 1; cand + kFrameHeader <= limit; ++cand) {
        if (ValidFrameAt(file_.get(), cand, size)) {
          stats->mid_log_corruption = true;
          break;
        }
      }
    }
  }
  return Status::OK();
}

Status LogManager::ReadAt(Lsn lsn, LogRecord* rec) const {
  if (lsn == kInvalidLsn) return Status::NotFound("invalid lsn");
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t off = lsn - 1;
  char hdr[kFrameHeader];
  size_t n = 0;
  Status s = file_->Read(off, kFrameHeader, hdr, &n);
  if (!s.ok()) return s;
  if (n < kFrameHeader) return Status::NotFound("lsn past end of log");
  uint32_t len = DecodeFixed32(hdr);
  uint32_t masked = DecodeFixed32(hdr + 4);
  std::string body(len, '\0');
  s = file_->Read(off + kFrameHeader, len, body.data(), &n);
  if (!s.ok()) return s;
  if (n < len) return Status::Corruption("truncated record");
  if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) {
    return Status::Corruption("crc mismatch");
  }
  s = LogRecord::Parse(Slice(body), rec);
  if (!s.ok()) return s;
  rec->lsn = lsn;
  return Status::OK();
}

uint64_t LogManager::bytes_appended() const {
  std::lock_guard<std::mutex> g(mu_);
  return bytes_appended_;
}

uint64_t LogManager::records_appended() const {
  std::lock_guard<std::mutex> g(mu_);
  return records_appended_;
}

uint64_t LogManager::bytes_for_type(LogType t) const {
  std::lock_guard<std::mutex> g(mu_);
  return type_bytes_[static_cast<size_t>(t) % type_bytes_.size()];
}

uint64_t LogManager::sync_batches() const {
  return sync_batches_.load(std::memory_order_relaxed);
}

uint64_t LogManager::open_dropped_bytes() const {
  std::lock_guard<std::mutex> g(mu_);
  return open_dropped_bytes_;
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  bytes_appended_ = 0;
  records_appended_ = 0;
  type_bytes_.fill(0);
  sync_batches_.store(0, std::memory_order_relaxed);
}

}  // namespace soreorg
