#include "src/wal/log_manager.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace soreorg {

namespace {

/// True iff a whole, CRC-valid, parseable frame starts at file offset `off`
/// with the frame fully inside [0, limit).
bool ValidFrameAt(const File* file, uint64_t off, uint64_t limit) {
  if (off + LogManager::kFrameHeader > limit) return false;
  char hdr[LogManager::kFrameHeader];
  size_t n = 0;
  if (!file->Read(off, LogManager::kFrameHeader, hdr, &n).ok() ||
      n < LogManager::kFrameHeader) {
    return false;
  }
  uint32_t len = DecodeFixed32(hdr);
  uint32_t masked = DecodeFixed32(hdr + 4);
  if (len == 0 || off + LogManager::kFrameHeader + len > limit) return false;
  std::string body(len, '\0');
  if (!file->Read(off + LogManager::kFrameHeader, len, body.data(), &n).ok() ||
      n < len) {
    return false;
  }
  if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) return false;
  LogRecord rec;
  return LogRecord::Parse(Slice(body), &rec).ok();
}

}  // namespace

LogManager::LogManager(Env* env, std::string base_name, LogManagerOptions opts)
    : env_(env), base_(std::move(base_name)), opts_(opts) {}

std::string LogManager::SegmentFileName(const std::string& base,
                                        uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(seq));
  return base + "." + buf;
}

std::string LogManager::RecycleFileName(const std::string& base, uint64_t k) {
  return base + "-recycle." + std::to_string(k);
}

void LogManager::EncodeSegmentHeader(const SegmentHeader& h, char* out) {
  EncodeFixed32(out, kSegmentMagic);
  EncodeFixed32(out + 4, kSegmentVersion);
  EncodeFixed64(out + 8, h.seq);
  EncodeFixed64(out + 16, h.first_lsn);
  EncodeFixed64(out + 24, h.prev_first_lsn);
  EncodeFixed64(out + 32, h.sealed_size);
  EncodeFixed32(out + 40, crc32c::Mask(crc32c::Value(out, 40)));
  EncodeFixed32(out + 44, 0);  // reserved
}

bool LogManager::DecodeSegmentHeader(const char* in, SegmentHeader* h) {
  if (DecodeFixed32(in) != kSegmentMagic) return false;
  if (DecodeFixed32(in + 4) != kSegmentVersion) return false;
  if (crc32c::Unmask(DecodeFixed32(in + 40)) != crc32c::Value(in, 40)) {
    return false;
  }
  h->seq = DecodeFixed64(in + 8);
  h->first_lsn = DecodeFixed64(in + 16);
  h->prev_first_lsn = DecodeFixed64(in + 24);
  h->sealed_size = DecodeFixed64(in + 32);
  return true;
}

Status LogManager::WriteFreshHeader(File* file, const SegmentHeader& h) {
  char hdr[kSegmentHeaderSize];
  EncodeSegmentHeader(h, hdr);
  Status s = file->Truncate(0);
  if (s.ok()) s = file->Write(0, Slice(hdr, kSegmentHeaderSize));
  if (s.ok()) s = file->Sync();
  return s;
}

Status LogManager::Open() {
  std::lock_guard<std::mutex> g(mu_);
  {
    std::lock_guard<std::mutex> sg(seg_mu_);
    segments_.clear();
    recycle_pool_.clear();
  }
  open_dropped_bytes_ = 0;

  // Discover surviving segments (names are base + "." + digits).
  std::vector<std::string> names;
  Status s = env_->ListFiles(base_ + ".", &names);
  if (!s.ok()) return s;
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const std::string& name : names) {
    std::string tail = name.substr(base_.size() + 1);
    if (tail.empty()) continue;
    bool digits = true;
    for (char c : tail) {
      if (!std::isdigit(static_cast<unsigned char>(c))) digits = false;
    }
    if (!digits) continue;
    found.emplace_back(std::strtoull(tail.c_str(), nullptr, 10), name);
  }
  std::sort(found.begin(), found.end());

  if (found.empty()) {
    // Virgin log: create segment 1.
    auto seg = std::make_shared<Segment>();
    seg->seq = 1;
    seg->first_lsn = 1;
    seg->prev_first_lsn = 0;
    seg->name = SegmentFileName(base_, 1);
    s = env_->NewFile(seg->name, &seg->file);
    if (!s.ok()) return s;
    SegmentHeader h{1, 1, 0, 0};
    s = WriteFreshHeader(seg->file.get(), h);
    if (s.ok()) s = env_->SyncDir(seg->name);
    if (!s.ok()) return s;
    std::lock_guard<std::mutex> sg(seg_mu_);
    segments_.push_back(std::move(seg));
    ++segments_created_;
  } else {
    // Seqs must be a contiguous range (truncation removes oldest-first, so
    // any crash leaves a contiguous suffix; a hole means lost segments).
    for (size_t i = 1; i < found.size(); ++i) {
      if (found[i].first != found[0].first + i) {
        return Status::Corruption("WAL segment seq gap: " +
                                  found[i - 1].second + " then " +
                                  found[i].second);
      }
    }
    std::deque<SegmentPtr> chain;
    for (size_t i = 0; i < found.size(); ++i) {
      const bool last = (i + 1 == found.size());
      auto seg = std::make_shared<Segment>();
      seg->seq = found[i].first;
      seg->name = found[i].second;
      s = env_->NewFile(seg->name, &seg->file);
      if (!s.ok()) return s;

      char raw[kSegmentHeaderSize];
      size_t n = 0;
      SegmentHeader h;
      bool valid = seg->file->Read(0, kSegmentHeaderSize, raw, &n).ok() &&
                   n == kSegmentHeaderSize && DecodeSegmentHeader(raw, &h) &&
                   h.seq == seg->seq;

      if (!valid) {
        // Embryonic tail: rotation (or virgin creation) crashed before this
        // segment's header became durable — or a recycled file was renamed
        // into place but still holds its stale pre-recycle image. Legal only
        // for the newest segment, with a sealed predecessor (or none).
        if (!last) {
          return Status::Corruption("WAL segment " + seg->name +
                                    " has an invalid header below the tail");
        }
        if (!chain.empty() && !chain.back()->sealed.load()) {
          return Status::Corruption(
              "WAL tail segment " + seg->name +
              " has an invalid header but its predecessor is not sealed");
        }
        if (chain.empty() && seg->seq != 1) {
          return Status::Corruption("WAL sole segment " + seg->name +
                                    " has an invalid header");
        }
        seg->first_lsn = chain.empty() ? 1
                                       : chain.back()->first_lsn +
                                             chain.back()->data_size;
        seg->prev_first_lsn = chain.empty() ? 0 : chain.back()->first_lsn;
        SegmentHeader fresh{seg->seq, seg->first_lsn, seg->prev_first_lsn, 0};
        s = env_->DeleteFile(seg->name);
        if (!s.ok()) return s;
        s = env_->NewFile(seg->name, &seg->file);
        if (s.ok()) s = WriteFreshHeader(seg->file.get(), fresh);
        if (s.ok()) s = env_->SyncDir(seg->name);
        if (!s.ok()) return s;
        seg->data_size = 0;
        chain.push_back(std::move(seg));
        continue;
      }

      // Chain consistency against the predecessor.
      if (!chain.empty()) {
        const SegmentPtr& prev = chain.back();
        if (h.first_lsn != prev->first_lsn + prev->data_size ||
            h.prev_first_lsn != prev->first_lsn) {
          return Status::Corruption("WAL segment " + seg->name +
                                    " breaks the LSN chain");
        }
      }
      seg->first_lsn = h.first_lsn;
      seg->prev_first_lsn = h.prev_first_lsn;

      if (h.sealed_size > 0) {
        // Sealed: the seal was written only after the data was durable, so
        // a file shorter than the sealed extent is real corruption.
        if (seg->file->Size() < kSegmentHeaderSize + h.sealed_size) {
          return Status::Corruption("WAL sealed segment " + seg->name +
                                    " is shorter than its sealed size");
        }
        seg->data_size = h.sealed_size;
        seg->sealed.store(true, std::memory_order_release);
        chain.push_back(std::move(seg));
        continue;
      }

      // Unsealed: must be the tail; scan its frames for the valid prefix.
      if (!last) {
        return Status::Corruption("WAL segment " + seg->name +
                                  " is unsealed below the tail");
      }
      uint64_t size = seg->file->Size();
      uint64_t off = kSegmentHeaderSize;
      while (off + kFrameHeader <= size) {
        char fh[kFrameHeader];
        s = seg->file->Read(off, kFrameHeader, fh, &n);
        if (!s.ok() || n < kFrameHeader) break;
        uint32_t len = DecodeFixed32(fh);
        uint32_t masked = DecodeFixed32(fh + 4);
        if (len == 0 || off + kFrameHeader + len > size) break;
        std::string body(len, '\0');
        s = seg->file->Read(off + kFrameHeader, len, body.data(), &n);
        if (!s.ok() || n < len) break;
        if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) break;
        off += kFrameHeader + len;
      }
      if (off < size) {
        // Before discarding the tail as torn, make sure it really is a
        // tail: probe the rest of THIS segment for a CRC-valid frame. A
        // valid frame beyond the damage means mid-segment corruption, and
        // truncating would silently destroy valid (possibly acknowledged)
        // records. The probe stops at the segment boundary — frames in the
        // next segment (there is none here: this is the tail) can never be
        // suppressed by a tear in this one.
        for (uint64_t probe = off + 1; probe < size; ++probe) {
          if (ValidFrameAt(seg->file.get(), probe, size)) {
            return Status::Corruption(
                "WAL has valid records beyond a corrupt frame at offset " +
                std::to_string(probe) + " of " + seg->name +
                " (mid-segment damage, not a torn tail)");
          }
        }
        open_dropped_bytes_ += size - off;
        seg->file->Truncate(off);
      }
      seg->data_size = off - kSegmentHeaderSize;
      chain.push_back(std::move(seg));
    }
    {
      std::lock_guard<std::mutex> sg(seg_mu_);
      segments_ = std::move(chain);
    }
    // A sealed tail means rotation crashed between the seal and the
    // successor's creation: finish the rotation now.
    if (TailSegment()->sealed.load()) {
      s = CreateSuccessor(TailSegment());
      if (!s.ok()) return s;
    }
  }

  // Adopt parked recycle files (cap the pool; extras are deleted).
  std::vector<std::string> parked;
  s = env_->ListFiles(base_ + "-recycle.", &parked);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> sg(seg_mu_);
    for (const std::string& name : parked) {
      std::string tail = name.substr(base_.size() + std::string("-recycle.").size());
      uint64_t k = std::strtoull(tail.c_str(), nullptr, 10);
      if (k + 1 > recycle_seq_) recycle_seq_ = k + 1;
      if (recycle_pool_.size() < opts_.recycle_max) {
        recycle_pool_.push_back(name);
      } else {
        env_->DeleteFile(name);
      }
    }
  }

  SegmentPtr tail = TailSegment();
  next_lsn_ = tail->first_lsn + tail->data_size;
  flushed_lsn_.store(next_lsn_, std::memory_order_release);
  buffer_start_ = next_lsn_ - 1;
  buffer_.clear();
  return Status::OK();
}

LogManager::SegmentPtr LogManager::TailSegment() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_.back();
}

std::vector<LogManager::SegmentPtr> LogManager::SnapshotSegments() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return std::vector<SegmentPtr>(segments_.begin(), segments_.end());
}

Status LogManager::Append(LogRecord* rec) {
  bool over_limit;
  {
    std::lock_guard<std::mutex> g(mu_);
    std::string body;
    rec->AppendTo(&body);
    rec->lsn = next_lsn_;

    char hdr[kFrameHeader];
    EncodeFixed32(hdr, static_cast<uint32_t>(body.size()));
    EncodeFixed32(hdr + 4,
                  crc32c::Mask(crc32c::Value(body.data(), body.size())));
    buffer_.append(hdr, kFrameHeader);
    buffer_.append(body);

    next_lsn_ += kFrameHeader + body.size();
    bytes_appended_ += kFrameHeader + body.size();
    ++records_appended_;
    type_bytes_[static_cast<size_t>(rec->type) % type_bytes_.size()] +=
        kFrameHeader + body.size();
    over_limit = buffer_.size() > buffer_limit_;
  }
  // The capacity flush runs through the group-commit path with mu_
  // released, so serialization never waits on file I/O.
  if (over_limit) return Flush();
  return Status::OK();
}

void LogManager::set_buffer_limit(size_t bytes) {
  std::lock_guard<std::mutex> g(mu_);
  buffer_limit_ = bytes;
}

Status LogManager::AppendAndFlush(LogRecord* rec) {
  Status s = Append(rec);
  if (!s.ok()) return s;
  return FlushTo(rec->lsn);
}

Status LogManager::Flush() {
  Lsn target;
  {
    std::lock_guard<std::mutex> g(mu_);
    target = next_lsn_ - 1;  // durable through the last appended byte
  }
  return FlushTo(target);
}

Status LogManager::SealSegment(const SegmentPtr& seg) {
  Status s = seg->file->Sync();  // data durable before the seal claims it
  if (!s.ok()) return s;
  SegmentHeader h{seg->seq, seg->first_lsn, seg->prev_first_lsn,
                  seg->data_size};
  char hdr[kSegmentHeaderSize];
  EncodeSegmentHeader(h, hdr);
  s = seg->file->Write(0, Slice(hdr, kSegmentHeaderSize));
  if (s.ok()) s = seg->file->Sync();
  if (!s.ok()) return s;
  seg->sealed.store(true, std::memory_order_release);
  return Status::OK();
}

Status LogManager::CreateSuccessor(const SegmentPtr& sealed_tail) {
  const uint64_t seq = sealed_tail->seq + 1;
  const std::string name = SegmentFileName(base_, seq);
  // Reuse a parked segment when one is available: rename it into place,
  // then overwrite its (durably empty) content with a fresh header. The
  // pool entry is consumed only after the rename succeeded, so a failed
  // rename is retryable without losing the parked file.
  std::string parked;
  {
    std::lock_guard<std::mutex> g(seg_mu_);
    if (!recycle_pool_.empty()) parked = recycle_pool_.front();
  }
  bool recycled = false;
  if (!parked.empty()) {
    Status s = env_->RenameFile(parked, name);
    if (!s.ok()) return s;
    {
      std::lock_guard<std::mutex> g(seg_mu_);
      if (!recycle_pool_.empty() && recycle_pool_.front() == parked) {
        recycle_pool_.pop_front();
      }
    }
    recycled = true;
  }
  auto seg = std::make_shared<Segment>();
  seg->seq = seq;
  seg->first_lsn = sealed_tail->first_lsn + sealed_tail->data_size;
  seg->prev_first_lsn = sealed_tail->first_lsn;
  seg->name = name;
  Status s = env_->NewFile(name, &seg->file);
  if (!s.ok()) return s;
  SegmentHeader h{seq, seg->first_lsn, seg->prev_first_lsn, 0};
  s = WriteFreshHeader(seg->file.get(), h);
  if (s.ok()) s = env_->SyncDir(name);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> g(seg_mu_);
    segments_.push_back(std::move(seg));
    if (recycled) {
      ++segments_recycled_;
    } else {
      ++segments_created_;
    }
  }
  return Status::OK();
}

Status LogManager::WriteBatch(const std::string& batch, Lsn batch_off,
                              uint64_t* durable_done) {
  *durable_done = 0;
  uint64_t done = 0;  // batch bytes written (possibly still volatile)
  while (done < batch.size()) {
    SegmentPtr tail = TailSegment();
    if (tail->sealed.load(std::memory_order_acquire)) {
      // Resume an interrupted rotation: the tail was sealed but its
      // successor never materialized.
      Status s = CreateSuccessor(tail);
      if (!s.ok()) return s;
      continue;
    }
    // Take as many whole frames as fit in the tail. An oversized frame is
    // allowed alone in an otherwise empty segment (it must go somewhere).
    uint64_t take = 0;
    while (done + take + kFrameHeader <= batch.size()) {
      uint32_t len = DecodeFixed32(batch.data() + done + take);
      uint64_t frame = kFrameHeader + len;
      if (opts_.segment_bytes != 0 &&
          tail->data_size + take + frame > opts_.segment_bytes &&
          !(tail->data_size == 0 && take == 0)) {
        break;
      }
      take += frame;
    }
    if (take == 0) {
      // Nothing fits: seal the tail and rotate. Sealing syncs the data, so
      // everything written so far in this batch becomes durable.
      Status s = SealSegment(tail);
      if (!s.ok()) return s;
      *durable_done = done;
      s = CreateSuccessor(tail);
      if (!s.ok()) return s;
      continue;
    }
    uint64_t file_off =
        kSegmentHeaderSize + (batch_off + done - (tail->first_lsn - 1));
    Status s = tail->file->Write(file_off, Slice(batch.data() + done, take));
    if (!s.ok()) return s;
    done += take;
    // Derived from global offsets (not incremented) so a retried batch that
    // rewrites the same bytes cannot double-count.
    tail->data_size = (batch_off + done) - (tail->first_lsn - 1);
  }
  SegmentPtr tail = TailSegment();
  Status s = tail->file->Sync();
  if (!s.ok()) return s;
  *durable_done = batch.size();
  return Status::OK();
}

Status LogManager::FlushTo(Lsn lsn) {
  // Fast path: already durable. One atomic load — the buffer pool probes
  // this on every page write, so it must never touch a mutex or the file.
  if (lsn < flushed_lsn_.load(std::memory_order_acquire)) return Status::OK();

  std::unique_lock<std::mutex> cl(commit_mu_);
  while (true) {
    if (lsn < flushed_lsn_.load(std::memory_order_acquire)) {
      // A leader's batch covered us while we queued: group commit — we ride
      // its fsync and pay nothing.
      return Status::OK();
    }
    if (!flush_active_) break;
    commit_cv_.wait(cl);
  }
  flush_active_ = true;

  // Leader: steal the whole buffer. Appends continue behind the steal at
  // their already-assigned offsets.
  std::string batch;
  Lsn batch_off = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    batch.swap(buffer_);
    batch_off = buffer_start_;
    buffer_start_ += batch.size();
  }

  Status s = Status::OK();
  if (!batch.empty()) {
    cl.unlock();  // write+rotate+fsync with no LogManager mutex held
    uint64_t durable_done = 0;
    s = WriteBatch(batch, batch_off, &durable_done);
    cl.lock();
    if (s.ok()) {
      flushed_lsn_.store(batch_off + batch.size() + 1,
                         std::memory_order_release);
      sync_batches_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Splice the not-yet-durable suffix back so the failure is retryable;
      // bytes a mid-batch seal already made durable stay flushed (they sit
      // in finished segments and will never be rewritten), and records
      // appended behind the steal keep their offsets. durable_done is
      // always a frame boundary.
      if (durable_done > 0) {
        flushed_lsn_.store(batch_off + durable_done + 1,
                           std::memory_order_release);
        sync_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> g(mu_);
      buffer_.insert(0, batch.substr(durable_done));
      buffer_start_ -= (batch.size() - durable_done);
    }
  }
  flush_active_ = false;
  commit_cv_.notify_all();
  return s;
}

Status LogManager::TruncateBelow(Lsn floor) {
  std::vector<SegmentPtr> victims;
  {
    std::lock_guard<std::mutex> g(seg_mu_);
    // Oldest-first, never the tail (also guards the rotation window where
    // the back segment is transiently sealed before its successor's push).
    while (segments_.size() > 1) {
      const SegmentPtr& s0 = segments_.front();
      if (!s0->sealed.load(std::memory_order_acquire)) break;
      if (s0->first_lsn + s0->data_size > floor) break;
      victims.push_back(s0);
      segments_.pop_front();
    }
  }
  Status s;
  for (const SegmentPtr& v : victims) {
    // v->file stays open: a concurrent ReadAll snapshot may still hold this
    // segment. Renaming/deleting under an open handle is safe in both Envs;
    // such a reader can only be scanning below the floor, which no caller
    // of a safe floor ever needs.
    bool park;
    {
      std::lock_guard<std::mutex> g(seg_mu_);
      park = recycle_pool_.size() < opts_.recycle_max;
    }
    if (park) {
      // Rename first (removing the name from the segment namespace keeps
      // the surviving seq range contiguous under any crash), then durably
      // empty the parked file so a later reuse can't resurrect stale
      // frames. A crash between the two leaves a stale recycle file, which
      // the reuse path (fresh header + sync) and Open's stale-tail check
      // both tolerate.
      std::string parked_name;
      {
        std::lock_guard<std::mutex> g(seg_mu_);
        parked_name = RecycleFileName(base_, recycle_seq_++);
      }
      s = env_->RenameFile(v->name, parked_name);
      if (!s.ok()) return s;
      std::unique_ptr<File> f;
      s = env_->NewFile(parked_name, &f);
      if (s.ok()) s = f->Truncate(0);
      if (s.ok()) s = f->Sync();
      if (!s.ok()) return s;
      std::lock_guard<std::mutex> g(seg_mu_);
      recycle_pool_.push_back(parked_name);
      ++segments_truncated_;
    } else {
      s = env_->DeleteFile(v->name);
      if (!s.ok()) return s;
      std::lock_guard<std::mutex> g(seg_mu_);
      ++segments_truncated_;
    }
  }
  if (!victims.empty()) s = env_->SyncDir(base_);
  return s;
}

Lsn LogManager::NextLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_lsn_;
}

Lsn LogManager::FlushedLsn() const {
  return flushed_lsn_.load(std::memory_order_acquire);
}

Lsn LogManager::LowestLsn() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_.empty() ? kInvalidLsn : segments_.front()->first_lsn;
}

Status LogManager::ReadAll(std::vector<LogRecord>* out, Lsn start_lsn,
                           LogReadStats* stats) const {
  std::vector<SegmentPtr> segs = SnapshotSegments();
  uint64_t segments_scanned = 0;
  uint64_t valid_end = 0;  // 0-based global data offset of the valid prefix end
  uint64_t total_end = 0;  // 0-based global data offset of the log's last byte
  bool bad_frame = false;
  bool mid_log = false;

  for (size_t i = 0; i < segs.size(); ++i) {
    const SegmentPtr& seg = segs[i];
    const bool last = (i + 1 == segs.size());
    uint64_t fsize = seg->file->Size();
    // Sealed extents are authoritative from the header; the tail's extent
    // is whatever has been written (a racing in-flight frame CRC-fails and
    // reads as a torn tail, same as the single-file log).
    uint64_t extent = seg->sealed.load(std::memory_order_acquire)
                          ? seg->data_size
                          : (fsize > kSegmentHeaderSize
                                 ? fsize - kSegmentHeaderSize
                                 : 0);
    uint64_t limit = kSegmentHeaderSize + extent;
    if (limit > fsize) limit = fsize;  // sealed-but-short reads as damage
    uint64_t seg_begin = seg->first_lsn - 1;  // 0-based global
    total_end = seg_begin + extent;

    if (start_lsn != 0 && start_lsn - 1 >= seg_begin + extent) {
      continue;  // wholly below the requested start
    }
    if (bad_frame) {
      // Damage was found in an earlier segment but this one still exists:
      // the log has (or had) content beyond the tear — that is mid-log
      // damage, not a torn tail.
      mid_log = true;
      continue;
    }
    ++segments_scanned;

    uint64_t off = kSegmentHeaderSize;
    if (start_lsn != 0 && start_lsn - 1 > seg_begin) {
      off = kSegmentHeaderSize + (start_lsn - 1 - seg_begin);
    }
    while (off + kFrameHeader <= limit) {
      char hdr[kFrameHeader];
      size_t n = 0;
      Status s = seg->file->Read(off, kFrameHeader, hdr, &n);
      if (!s.ok() || n < kFrameHeader) {
        bad_frame = true;
        break;
      }
      uint32_t len = DecodeFixed32(hdr);
      uint32_t masked = DecodeFixed32(hdr + 4);
      if (len == 0 || off + kFrameHeader + len > limit) {
        bad_frame = true;
        break;
      }
      std::string body(len, '\0');
      s = seg->file->Read(off + kFrameHeader, len, body.data(), &n);
      if (!s.ok() || n < len) {
        bad_frame = true;
        break;
      }
      if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) {
        bad_frame = true;
        break;
      }
      LogRecord rec;
      s = LogRecord::Parse(Slice(body), &rec);
      if (!s.ok()) {
        bad_frame = true;
        break;
      }
      rec.lsn = seg->first_lsn + (off - kSegmentHeaderSize);
      out->push_back(std::move(rec));
      off += kFrameHeader + len;
    }
    if (!bad_frame && off < limit) bad_frame = true;  // sub-header remnant
    valid_end = seg_begin + (off - kSegmentHeaderSize);
    if (bad_frame) {
      // Probe the rest of THIS segment only: a valid frame past the damage
      // means a hole, not a tail. The probe never crosses the segment
      // boundary — frames starting the next segment are judged by the
      // segment chain itself (the `mid_log` branch above), so a torn tail
      // here can never suppress them. (A false positive needs random bytes
      // to pass a CRC32C, ~2^-32 per candidate offset.)
      for (uint64_t cand = off + 1; cand + kFrameHeader <= limit; ++cand) {
        if (ValidFrameAt(seg->file.get(), cand, limit)) {
          mid_log = true;
          break;
        }
      }
      // Damage inside a sealed segment is never a tail: the seal promised
      // the data was durable.
      if (!last || seg->sealed.load(std::memory_order_acquire)) {
        mid_log = true;
      }
    }
  }

  if (stats != nullptr) {
    stats->records_read = out->size();
    stats->valid_bytes = bad_frame ? valid_end : total_end;
    stats->dropped_bytes = total_end > valid_end && bad_frame
                               ? total_end - valid_end
                               : 0;
    stats->segments_scanned = segments_scanned;
    stats->torn_tail = bad_frame;
    stats->mid_log_corruption = mid_log;
  }
  return Status::OK();
}

Status LogManager::ReadAt(Lsn lsn, LogRecord* rec) const {
  if (lsn == kInvalidLsn) return Status::NotFound("invalid lsn");
  std::vector<SegmentPtr> segs = SnapshotSegments();
  if (segs.empty()) return Status::NotFound("log not open");
  if (lsn < segs.front()->first_lsn) {
    return Status::NotFound("lsn below the truncated log start");
  }
  // Last segment whose first_lsn <= lsn holds the frame.
  const SegmentPtr* holder = &segs.front();
  for (const SegmentPtr& seg : segs) {
    if (seg->first_lsn <= lsn) holder = &seg;
  }
  const SegmentPtr& seg = *holder;
  const uint64_t off = kSegmentHeaderSize + (lsn - seg->first_lsn);
  char hdr[kFrameHeader];
  size_t n = 0;
  Status s = seg->file->Read(off, kFrameHeader, hdr, &n);
  if (!s.ok()) return s;
  if (n < kFrameHeader) return Status::NotFound("lsn past end of log");
  uint32_t len = DecodeFixed32(hdr);
  uint32_t masked = DecodeFixed32(hdr + 4);
  std::string body(len, '\0');
  s = seg->file->Read(off + kFrameHeader, len, body.data(), &n);
  if (!s.ok()) return s;
  if (n < len) return Status::Corruption("truncated record");
  if (crc32c::Unmask(masked) != crc32c::Value(body.data(), len)) {
    return Status::Corruption("crc mismatch");
  }
  s = LogRecord::Parse(Slice(body), rec);
  if (!s.ok()) return s;
  rec->lsn = lsn;
  return Status::OK();
}

uint64_t LogManager::bytes_appended() const {
  std::lock_guard<std::mutex> g(mu_);
  return bytes_appended_;
}

uint64_t LogManager::records_appended() const {
  std::lock_guard<std::mutex> g(mu_);
  return records_appended_;
}

uint64_t LogManager::bytes_for_type(LogType t) const {
  std::lock_guard<std::mutex> g(mu_);
  return type_bytes_[static_cast<size_t>(t) % type_bytes_.size()];
}

uint64_t LogManager::sync_batches() const {
  return sync_batches_.load(std::memory_order_relaxed);
}

uint64_t LogManager::open_dropped_bytes() const {
  std::lock_guard<std::mutex> g(mu_);
  return open_dropped_bytes_;
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  bytes_appended_ = 0;
  records_appended_ = 0;
  type_bytes_.fill(0);
  sync_batches_.store(0, std::memory_order_relaxed);
}

size_t LogManager::segment_count() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_.size();
}

uint64_t LogManager::tail_segment_seq() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_.empty() ? 0 : segments_.back()->seq;
}

std::string LogManager::tail_segment_name() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_.empty() ? std::string() : segments_.back()->name;
}

size_t LogManager::recycle_pool_size() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return recycle_pool_.size();
}

uint64_t LogManager::segments_created() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_created_;
}

uint64_t LogManager::segments_recycled() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_recycled_;
}

uint64_t LogManager::segments_truncated() const {
  std::lock_guard<std::mutex> g(seg_mu_);
  return segments_truncated_;
}

}  // namespace soreorg
