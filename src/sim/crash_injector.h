// CrashInjector: deterministic "system failure" for recovery tests and the
// forward-recovery experiments. Arms a MemEnv write observer that fails the
// N-th matching operation; everything un-synced at that moment is lost when
// the test then calls MemEnv::Crash() (the paper's failure model).

#ifndef SOREORG_SIM_CRASH_INJECTOR_H_
#define SOREORG_SIM_CRASH_INJECTOR_H_

#include <atomic>
#include <string>

#include "src/storage/env.h"

namespace soreorg {

class CrashInjector {
 public:
  explicit CrashInjector(MemEnv* env) : env_(env) {}

  /// Crash on the n-th (1-based) write/append/sync/rename/dirsync whose
  /// file name matches `file_suffix` ("" = any file; ".wal" also matches
  /// numbered segment files, see WalAwareSuffixMatch). op_filter: "" = any
  /// op, else one of "write", "append", "sync", "rename", "dirsync".
  void ArmAfterOps(int n, std::string file_suffix = "",
                   std::string op_filter = "");

  /// Stop injecting (keeps counters).
  void Disarm();

  /// True once the armed fault has fired.
  bool fired() const { return fired_.load(); }

  /// Matching operations observed so far (armed or not). Useful to size a
  /// crash-point sweep: run once disarmed, read the count, then crash at
  /// each i in [1, count].
  uint64_t observed() const { return observed_.load(); }
  void ResetObserved() { observed_.store(0); }

 private:
  MemEnv* env_;
  std::atomic<int> remaining_{-1};
  std::atomic<bool> fired_{false};
  std::atomic<uint64_t> observed_{0};
};

}  // namespace soreorg

#endif  // SOREORG_SIM_CRASH_INJECTOR_H_
