// Workload generation: sparse-tree construction and concurrent user drivers
// for the experiments.
//
// Sparse trees arise two ways, both provided:
//   * LoadSparseTree — bulk-load directly at fill factor f1 (fast, uniform);
//   * SparsifyByDeletion — load dense, then delete a fraction of records at
//     random; with free-at-empty this leaves sparse leaves and scattered
//     empty pages, the situation of the paper's §2.
//
// ConcurrentDriver runs reader/updater threads against the Database while a
// reorganization is in flight, measuring throughput and worst-case latency
// (experiments E2 and E8).

#ifndef SOREORG_SIM_WORKLOAD_H_
#define SOREORG_SIM_WORKLOAD_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/db/database.h"
#include "src/util/random.h"

namespace soreorg {

/// n sorted records with keys i * key_stride (big-endian u64) and
/// pseudo-random values of value_size bytes.
std::vector<std::pair<std::string, std::string>> MakeRecords(
    uint64_t n, size_t value_size, uint64_t key_stride = 10,
    uint64_t seed = 42);

/// Bulk-load a fresh tree at leaf fill factor f1.
Status LoadSparseTree(Database* db, uint64_t n, size_t value_size, double f1,
                      uint64_t key_stride = 10, uint64_t seed = 42);

/// Load dense (fill ~= dense_fill), then randomly delete `delete_fraction`
/// of the records — free-at-empty leaves the survivors sparse and scattered.
Status SparsifyByDeletion(Database* db, uint64_t n, size_t value_size,
                          double dense_fill, double delete_fraction,
                          uint64_t key_stride = 10, uint64_t seed = 42,
                          std::vector<uint64_t>* surviving_keys = nullptr);

/// The paper's full degradation scenario (§2): load dense, then
///   * clustered deletions (dropping whole key ranges, e.g. expired data)
///     empty entire leaves — free-at-empty returns those pages, creating
///     the "free pages available in the database";
///   * scattered deletions leave the surviving leaves sparse;
///   * insert churn splits leaves, reusing the freed holes, so the leaf
///     order on disk degrades.
struct AgingOptions {
  uint64_t n = 30000;
  size_t value_size = 64;
  uint64_t key_stride = 10;
  double cluster_delete_frac = 0.35;  // fraction deleted in runs of ~3 leaves
  double random_delete_frac = 0.35;   // fraction deleted at random
  uint64_t churn_inserts = 5000;
  uint64_t seed = 42;
};

Status AgeDatabase(Database* db, const AgingOptions& options,
                   std::vector<uint64_t>* surviving_keys = nullptr);

struct DriverOptions {
  int threads = 4;
  double read_fraction = 0.7;
  double insert_fraction = 0.1;
  double delete_fraction = 0.1;
  double scan_fraction = 0.1;  // short range scans (~50 records)
  uint64_t key_space = 100000;
  uint64_t key_stride = 10;
  size_t value_size = 64;
  uint64_t seed = 7;
};

struct DriverStats {
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t failures = 0;       // unexpected statuses
  uint64_t total_latency_ns = 0;
  uint64_t max_latency_ns = 0;
  /// Per-op latency percentiles from the drivers' log-bucket histograms
  /// (~1.6% relative resolution: 16 sub-buckets per power of two). Zero
  /// until at least one op completed.
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

class ConcurrentDriver {
 public:
  ConcurrentDriver(Database* db, DriverOptions options);
  ~ConcurrentDriver();

  void Start();
  /// Stop all threads and join; stats() is stable afterwards.
  void Stop();

  /// Safe to call while the driver is running (mid-reorg progress probes do);
  /// each counter is read atomically, so totals are consistent per field
  /// though not across fields.
  DriverStats stats() const;

 private:
  /// Log-bucket latency histogram shape: 16 sub-buckets per power of two of
  /// nanoseconds (4 mantissa bits), values below 16 ns exact. 1024 slots
  /// covers the full uint64 range.
  static constexpr size_t kLatHistBuckets = 1024;
  static size_t LatBucket(uint64_t ns);
  static uint64_t LatBucketValue(size_t idx);

  // Per-thread slot with atomic counters: worker threads publish with relaxed
  // stores while stats() reads concurrently from the measuring thread.
  struct AtomicStats {
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> total_latency_ns{0};
    std::atomic<uint64_t> max_latency_ns{0};
    std::atomic<uint64_t> lat_hist[kLatHistBuckets] = {};
  };

  void ThreadMain(int idx);

  Database* db_;
  DriverOptions options_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;
  std::vector<AtomicStats> per_thread_;
};

}  // namespace soreorg

#endif  // SOREORG_SIM_WORKLOAD_H_
