// Workload generation: sparse-tree construction and concurrent user drivers
// for the experiments.
//
// Sparse trees arise two ways, both provided:
//   * LoadSparseTree — bulk-load directly at fill factor f1 (fast, uniform);
//   * SparsifyByDeletion — load dense, then delete a fraction of records at
//     random; with free-at-empty this leaves sparse leaves and scattered
//     empty pages, the situation of the paper's §2.
//
// ConcurrentDriver runs reader/updater threads against the Database while a
// reorganization is in flight, measuring throughput and worst-case latency
// (experiments E2 and E8).

#ifndef SOREORG_SIM_WORKLOAD_H_
#define SOREORG_SIM_WORKLOAD_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/db/database.h"
#include "src/util/random.h"

namespace soreorg {

/// n sorted records with keys i * key_stride (big-endian u64) and
/// pseudo-random values of value_size bytes.
std::vector<std::pair<std::string, std::string>> MakeRecords(
    uint64_t n, size_t value_size, uint64_t key_stride = 10,
    uint64_t seed = 42);

/// Bulk-load a fresh tree at leaf fill factor f1.
Status LoadSparseTree(Database* db, uint64_t n, size_t value_size, double f1,
                      uint64_t key_stride = 10, uint64_t seed = 42);

/// Load dense (fill ~= dense_fill), then randomly delete `delete_fraction`
/// of the records — free-at-empty leaves the survivors sparse and scattered.
Status SparsifyByDeletion(Database* db, uint64_t n, size_t value_size,
                          double dense_fill, double delete_fraction,
                          uint64_t key_stride = 10, uint64_t seed = 42,
                          std::vector<uint64_t>* surviving_keys = nullptr);

/// The paper's full degradation scenario (§2): load dense, then
///   * clustered deletions (dropping whole key ranges, e.g. expired data)
///     empty entire leaves — free-at-empty returns those pages, creating
///     the "free pages available in the database";
///   * scattered deletions leave the surviving leaves sparse;
///   * insert churn splits leaves, reusing the freed holes, so the leaf
///     order on disk degrades.
struct AgingOptions {
  uint64_t n = 30000;
  size_t value_size = 64;
  uint64_t key_stride = 10;
  double cluster_delete_frac = 0.35;  // fraction deleted in runs of ~3 leaves
  double random_delete_frac = 0.35;   // fraction deleted at random
  uint64_t churn_inserts = 5000;
  uint64_t seed = 42;
};

Status AgeDatabase(Database* db, const AgingOptions& options,
                   std::vector<uint64_t>* surviving_keys = nullptr);

/// Thread-safe log-bucket latency histogram: 16 sub-buckets per power of two
/// of nanoseconds (4 mantissa bits, ~1.6% relative resolution), values below
/// 16 ns exact, 1024 slots covering the full uint64 range. Workers Record()
/// with relaxed atomics; a measuring thread merges and reads percentiles.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 1024;

  void Record(uint64_t ns) {
    buckets_[Bucket(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Adds other's counts into this histogram (relaxed reads — counts are
  /// consistent per bucket, not across buckets, like ConcurrentDriver
  /// stats()).
  void MergeFrom(const LatencyHistogram& other) {
    for (size_t i = 0; i < kBuckets; ++i) {
      uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
  }

  uint64_t total_count() const {
    uint64_t n = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      n += buckets_[i].load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Lower edge of the bucket holding the q-quantile; 0 when empty.
  uint64_t Percentile(double q) const;

  static size_t Bucket(uint64_t ns);
  static uint64_t BucketValue(size_t idx);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// YCSB-style zipfian generator over [0, n): item 0 is the hottest, with
/// P(i) proportional to 1/(i+1)^theta. The zeta normalizer is computed once
/// at construction and extended incrementally when the item space Grow()s
/// (the "latest" distribution advances it per insert).
class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next item, hottest first (0 is the most popular).
  uint64_t Next();
  /// Next item scattered over the key space with fmix64 so the hot set is
  /// not one contiguous key run (YCSB's scrambled zipfian).
  uint64_t NextScrambled();

  /// Extend the item space to new_n (>= current n).
  void Grow(uint64_t new_n);

  uint64_t n() const { return n_; }

 private:
  void RecomputeConstants();

  uint64_t n_;
  double theta_;
  double zetan_;   // zeta(n, theta), extended incrementally by Grow
  double zeta2_;   // zeta(2, theta)
  double alpha_;
  double eta_;
  Random rng_;
};

/// YCSB's "latest" distribution: the most recently inserted items are the
/// hottest. Next() returns an item in [0, max), skewed toward max-1;
/// Advance() records that inserts moved the frontier.
class LatestGenerator {
 public:
  LatestGenerator(uint64_t initial_max, uint64_t seed)
      : zipf_(initial_max == 0 ? 1 : initial_max,
              ZipfianGenerator::kDefaultTheta, seed) {}

  uint64_t Next() {
    uint64_t max = zipf_.n();
    uint64_t off = zipf_.Next();
    return max - 1 - off;
  }

  void Advance(uint64_t new_max) {
    if (new_max > zipf_.n()) zipf_.Grow(new_max);
  }

  uint64_t max() const { return zipf_.n(); }

 private:
  ZipfianGenerator zipf_;
};

struct DriverOptions {
  int threads = 4;
  double read_fraction = 0.7;
  double insert_fraction = 0.1;
  double delete_fraction = 0.1;
  double scan_fraction = 0.1;  // short range scans (~50 records)
  uint64_t key_space = 100000;
  uint64_t key_stride = 10;
  size_t value_size = 64;
  uint64_t seed = 7;
};

struct DriverStats {
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t failures = 0;       // unexpected statuses
  uint64_t total_latency_ns = 0;
  uint64_t max_latency_ns = 0;
  /// Per-op latency percentiles from the drivers' log-bucket histograms
  /// (~1.6% relative resolution: 16 sub-buckets per power of two). Zero
  /// until at least one op completed.
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

class ConcurrentDriver {
 public:
  ConcurrentDriver(Database* db, DriverOptions options);
  ~ConcurrentDriver();

  void Start();
  /// Stop all threads and join; stats() is stable afterwards.
  void Stop();

  /// Safe to call while the driver is running (mid-reorg progress probes do);
  /// each counter is read atomically, so totals are consistent per field
  /// though not across fields.
  DriverStats stats() const;

 private:
  // Per-thread slot with atomic counters: worker threads publish with relaxed
  // stores while stats() reads concurrently from the measuring thread.
  struct AtomicStats {
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> total_latency_ns{0};
    std::atomic<uint64_t> max_latency_ns{0};
    LatencyHistogram lat_hist;
  };

  void ThreadMain(int idx);

  Database* db_;
  DriverOptions options_;
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;
  std::vector<AtomicStats> per_thread_;
};

}  // namespace soreorg

#endif  // SOREORG_SIM_WORKLOAD_H_
