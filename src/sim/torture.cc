#include "src/sim/torture.h"

#include <utility>

#include "src/sim/workload.h"

namespace soreorg {

namespace {

constexpr size_t kMaxFailureDetails = 8;

}  // namespace

TortureHarness::TortureHarness(TortureOptions options)
    : options_(std::move(options)) {}

Status TortureHarness::BuildWorkload(FaultInjectionEnv* env,
                                     std::unique_ptr<Database>* db) {
  Status s = Database::Open(env, options_.db, db);
  if (!s.ok()) return s;
  std::vector<uint64_t> survivors;
  s = SparsifyByDeletion((*db).get(), options_.records, options_.value_size,
                         options_.dense_fill, options_.delete_fraction,
                         options_.key_stride, options_.seed, &survivors);
  if (!s.ok()) return s;
  // Checkpoint so every iteration crashes against the same durable baseline;
  // the reorganization is then the only work between checkpoint and crash.
  return (*db)->Checkpoint();
}

void TortureHarness::ArmStepAside(Database* db) {
  if (options_.force_step_asides <= 0 || model_.empty()) return;
  SwitcherOptions* sw = &db->reorganizer()->options()->switcher;
  sw->force_step_asides = options_.force_step_asides;
  sw->step_aside_wait_ms = 10;  // the callback records immediately
  // Mid-window transaction: delete + re-insert one model key with its model
  // value. Commit restores the exact model state; a crash mid-transaction
  // rolls the loser back to it — so verification holds at every crash
  // point. The statuses are deliberately dropped: once the armed fault
  // fires every operation (including Abort) fails with kCrashed.
  const auto& kv = model_[model_.size() / 2];
  sw->on_step_aside = [db, kv]() {
    Transaction* txn = db->Begin();
    if (txn == nullptr) return;
    Status s = db->tree()->Delete(txn, kv.first);
    if (s.ok()) s = db->tree()->Insert(txn, kv.first, kv.second);
    if (s.ok()) {
      db->Commit(txn);
    } else {
      db->Abort(txn);
    }
  };
}

Status TortureHarness::SweptWork(Database* db) {
  if (options_.checkpoint_churn_txns > 0) {
    // Each churn op is one transaction inserting and deleting the same
    // non-model key: committed or rolled back, the key is absent, so the
    // model holds at every crash point while the WAL still grows.
    for (int k = 0; k < options_.checkpoint_churn_txns; ++k) {
      Transaction* txn = db->Begin();
      if (txn == nullptr) break;
      const std::string key = "~churn" + std::to_string(k);
      const std::string val(options_.churn_value_bytes, 'c');
      Status s = db->tree()->Insert(txn, key, val);
      if (s.ok()) s = db->tree()->Delete(txn, key);
      if (s.ok()) {
        s = db->Commit(txn);
      } else {
        db->Abort(txn);  // best effort; the env may already be down
      }
      if (!s.ok()) return s;
    }
    Status s = db->Checkpoint();
    if (!s.ok()) return s;
  }
  Status s = db->Reorganize();
  if (!s.ok()) return s;
  if (options_.checkpoint_churn_txns > 0) s = db->Checkpoint();
  return s;
}

Status TortureHarness::VerifyAgainstModel(Database* db, const char* where) {
  std::vector<std::pair<std::string, std::string>> got;
  Status s = db->Scan(Slice(), Slice(),
                      [&got](const Slice& k, const Slice& v) {
                        got.emplace_back(k.ToString(), v.ToString());
                        return true;
                      });
  if (!s.ok()) {
    // Read error (e.g. detected torn page): propagate, tagged with the
    // verification stage so sweep failures name where the read blew up.
    if (s.IsCorruption()) return s;  // keep the detected-tear contract
    return Status::InvalidArgument(std::string(where) +
                                   ": scan error: " + s.ToString());
  }
  if (got != model_) {
    return Status::InvalidArgument(
        std::string(where) + ": scan diverged from model (" +
        std::to_string(got.size()) + " records vs " +
        std::to_string(model_.size()) + " expected)");
  }
  s = db->tree()->CheckConsistency();
  if (!s.ok()) {
    return Status::InvalidArgument(std::string(where) +
                                   ": invariant check failed: " +
                                   s.ToString());
  }
  return Status::OK();
}

void TortureHarness::RecordFailure(TortureStats* stats, int point,
                                   const std::string& what) {
  ++stats->failures;
  if (stats->failure_details.size() < kMaxFailureDetails) {
    stats->failure_details.push_back("crash point " + std::to_string(point) +
                                     ": " + what);
  }
}

Status TortureHarness::Run(TortureStats* stats) {
  *stats = TortureStats();

  const char* suffix = "";
  const char* op = "";
  switch (options_.mode) {
    case TortureMode::kCleanCrash:
      break;  // every write/append/sync on every file is a crash point
    case TortureMode::kTornPageWrite:
      suffix = ".pages";
      op = "write";
      break;
    case TortureMode::kTornWalWrite:
      suffix = ".wal";
      op = "write";
      break;
  }

  // --- dry run: capture the model and count the I/O points -----------------
  {
    MemEnv base;
    FaultInjectionEnv env(&base);
    std::unique_ptr<Database> db;
    Status s = BuildWorkload(&env, &db);
    if (!s.ok()) return s;
    model_.clear();
    s = db->Scan(Slice(), Slice(),
                 [this](const Slice& k, const Slice& v) {
                   model_.emplace_back(k.ToString(), v.ToString());
                   return true;
                 });
    if (!s.ok()) return s;
    ArmStepAside(db.get());
    env.ObserveOnly(suffix, op);
    s = SweptWork(db.get());
    if (!s.ok()) return s;
    stats->points_total = static_cast<int>(env.ops_observed());
    env.Disarm();
    s = VerifyAgainstModel(db.get(), "dry run");
    if (!s.ok()) return s;
  }

  // --- sweep: crash at point i, recover, verify ----------------------------
  for (int i = 1; i <= stats->points_total; i += options_.stride) {
    if (options_.max_points > 0 &&
        stats->points_tested >= options_.max_points) {
      break;
    }
    ++stats->points_tested;

    MemEnv base;
    FaultInjectionEnv env(&base);
    std::unique_ptr<Database> db;
    Status s = BuildWorkload(&env, &db);
    if (!s.ok()) return s;
    ArmStepAside(db.get());

    switch (options_.mode) {
      case TortureMode::kCleanCrash:
        env.FailOpAfter(i, "", "");
        break;
      case TortureMode::kTornPageWrite:
        env.TearWriteAfter(i, ".pages", options_.tear_keep_bytes);
        break;
      case TortureMode::kTornWalWrite:
        env.TearWriteAfter(i, ".wal", options_.tear_keep_bytes);
        break;
    }

    SweptWork(db.get());  // fails once the fault fires; the status is the crash
    if (env.fault_fired()) ++stats->faults_fired;
    db.reset();   // destructor flushes fail while the env is down
    env.Crash();  // un-synced state is gone; torn prefixes survive

    std::unique_ptr<Database> recovered;
    s = Database::Open(&env, options_.db, &recovered);
    if (!s.ok()) {
      if (options_.mode == TortureMode::kTornPageWrite && s.IsCorruption()) {
        // The checksum caught the torn image and recovery refused it —
        // detection is the contract for a tear that redo must replay.
        ++stats->detected_corruptions;
      } else {
        RecordFailure(stats, i, "reopen failed: " + s.ToString());
      }
      continue;
    }

    s = VerifyAgainstModel(recovered.get(), "after recovery");
    if (s.ok() && options_.complete_after) {
      ArmStepAside(recovered.get());
      if (recovered->pass3_pending()) {
        s = recovered->ResumeInternalPass();
        if (!s.ok() && !s.IsCorruption()) {
          s = Status::InvalidArgument("resume pass 3: " + s.ToString());
        }
      }
      if (s.ok()) {
        s = recovered->Reorganize();
        if (!s.ok() && !s.IsCorruption()) {
          s = Status::InvalidArgument("complete reorg: " + s.ToString());
        }
      }
      if (s.ok()) s = VerifyAgainstModel(recovered.get(), "after completion");
    }
    if (!s.ok()) {
      if (options_.mode == TortureMode::kTornPageWrite && s.IsCorruption()) {
        ++stats->detected_corruptions;  // tear detected at first touch
      } else {
        RecordFailure(stats, i, s.ToString());
      }
      continue;
    }
    ++stats->recoveries_ok;
  }

  if (stats->failures > 0) {
    return Status::Corruption(
        std::to_string(stats->failures) + " undetected failure(s); first: " +
        (stats->failure_details.empty() ? "?" : stats->failure_details[0]));
  }
  return Status::OK();
}

}  // namespace soreorg
