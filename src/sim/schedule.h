// ScheduleController: a deterministic schedule harness for multi-threaded
// lock-protocol tests.
//
// The races this codebase cares about — the btree back-off/RS-wait paths, the
// side file's PopFront re-verification, the §7.4 switch window — live in
// windows a few instructions wide. Stress loops hit them once in thousands of
// runs; this harness pins them on demand and replays them bit-for-bit.
//
// Model: each logical thread of the test is an *actor*. Actor bodies mark
// interesting program points with ctrl.Point("event"); the controller blocks
// every actor at its current point and releases exactly one at a time, chosen
// either by a script (an explicit sequence of actor names) or by a seeded RNG.
// In between, the controller listens to LockManager's event hook and
// BufferPool's fetch hook: an actor whose lock request blocks (LockEvent
// kWait) is marked *parked* — it is descheduled without consuming a step and
// becomes runnable again only when another actor's action unblocks it. Every
// point, park, and lock event is appended to a trace; a test asserts on trace
// ordering, which makes the interleaving itself the test oracle.
//
// Conventions:
//   * every actor body calls ctrl.Point("begin") first, so no work happens
//     before the controller starts scheduling;
//   * actors that can genuinely deadlock must pass lock timeouts — a parked
//     actor is invisible to the controller until LockManager wakes it;
//   * after a script is exhausted, remaining actors free-run to completion
//     (a script pins the interesting prefix, not the epilogue).
//
// If no step can be scheduled for step_timeout_ms (script names an actor that
// never arrives at a point, or every live actor is parked), the controller
// declares a stall: Run() returns kTimedOut and all points are released so
// the test fails with a status instead of hanging.

#ifndef SOREORG_SIM_SCHEDULE_H_
#define SOREORG_SIM_SCHEDULE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/buffer_pool.h"
#include "src/txn/lock_manager.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace soreorg {

struct ScheduleOptions {
  uint64_t seed = 1;             // RNG-mode schedule choice
  int64_t step_timeout_ms = 10000;  // stall declaration threshold
  int64_t settle_us = 2000;      // quiescence debounce window
};

class ScheduleController {
 public:
  explicit ScheduleController(ScheduleOptions options = {});
  ~ScheduleController();

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  /// Route the manager's LockEvent stream into this controller: kWait parks
  /// the emitting actor, every event lands in the trace. Events from threads
  /// that are not actors (test setup) are ignored.
  void InstallLockHooks(LockManager* lm);

  /// Make selected lock events scheduling points: when `pred` returns true
  /// for an event emitted by an actor, that actor blocks there exactly as if
  /// it had called Point(). This is how a test pins a window that has no
  /// source-level hook — e.g. the instant between the side file's record-
  /// lock release and its front re-verification. kWait events are exempt
  /// (they park, which is their own scheduling semantic).
  using LockPointPredicate =
      std::function<bool(LockEvent, const LockName&, LockMode)>;
  void SetLockPointPredicate(LockPointPredicate pred);

  /// Record every FetchPage by an actor as "actor:fetch:page/<id>".
  void InstallFetchHook(BufferPool* bp);

  /// Fix the schedule: step i releases the actor named script[i]. Unset (or
  /// after the last entry) the controller falls back to seeded free-run.
  void SetScript(std::vector<std::string> script);

  /// Register an actor. Its thread starts immediately but blocks until Run().
  void Spawn(const std::string& name, std::function<void()> body);

  /// Actor-side: mark a named program point; blocks until scheduled. The
  /// trace entry is recorded at *grant* time, so point entries appear in
  /// schedule order (arrival order of the first points is a thread race).
  /// No-op when called from a non-actor thread; non-blocking after a stall.
  void Point(const std::string& event);

  /// Actor-side: append "actor:note:<event>" to the trace without blocking.
  void Note(const std::string& event);

  /// Start scheduling, drive every actor to completion, join all threads.
  /// OK on a clean run; kTimedOut on a stall (trace shows how far it got).
  Status Run();

  /// The interleaving that actually happened, e.g. {"t1:begin",
  /// "t1:granted:record/…:X", "reorg:wait:…", "t1:release-all", …}.
  const std::vector<std::string>& trace() const { return trace_; }

  /// Index of the first trace entry at or after `from` containing `needle`,
  /// or -1. Tests assert interleaving order via index comparisons.
  int TraceIndex(const std::string& needle, int from = 0) const;

  /// Whole trace, newline-joined (failure diagnostics).
  std::string TraceString() const;

 private:
  enum class ActorState : uint8_t {
    kRunning,  // executing (or granted and about to resume)
    kAtPoint,  // blocked in Point(), schedulable
    kParked,   // blocked inside LockManager, not schedulable
    kDone,     // body returned
  };

  struct Actor {
    std::string name;
    ScheduleController* ctrl = nullptr;
    std::thread thread;
    ActorState state = ActorState::kRunning;
    bool granted = false;
  };

  void OnLockEvent(LockEvent e, TxnId txn, const LockName& name,
                   LockMode mode);
  void OnFetch(PageId page_id);

  // All Locked* helpers require mu_ held.
  // Block the calling actor at a scheduling point until granted (or a stall
  // releases everything).
  void LockedWaitAtPoint(Actor* a, std::unique_lock<std::mutex>* lk);
  void LockedAddTrace(std::string entry);
  bool LockedQuiescent() const;  // no actor running
  bool LockedAllDone() const;
  Actor* LockedFindActor(const std::string& name);
  // Wait (with the stall deadline) until no actor is running, debounced by
  // settle_us so a just-woken parked thread is not mistaken for quiescence.
  bool LockedAwaitQuiescence(std::unique_lock<std::mutex>* lk);
  void LockedStall(const std::string& why);

  ScheduleOptions options_;
  Random rng_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Actor>> actors_;
  LockPointPredicate lock_point_pred_;
  std::vector<std::string> script_;
  size_t script_pos_ = 0;
  std::vector<std::string> trace_;
  bool started_ = false;
  bool free_run_ = false;  // points stop blocking (stall or script epilogue)
  bool stalled_ = false;
};

}  // namespace soreorg

#endif  // SOREORG_SIM_SCHEDULE_H_
