// DiskModel: a 1996-era disk-arm cost model layered over DiskManager's I/O
// observer, used to time range scans and reorganization I/O the way the
// paper reasons about them ("it will take more page reads for a sparsely
// populated B+-tree"; leaves out of key order cost extra seeks).
//
// Cost per physical page access:
//   * sequential (page id == previous + 1): transfer only;
//   * near (|page id - previous| <= near_threshold): short seek + transfer;
//   * random: average seek + half-rotation + transfer.
//
// Defaults approximate a mid-90s 7200rpm drive. The absolute numbers do not
// matter for reproduction — only the sequential/random ratio shapes the
// results.

#ifndef SOREORG_SIM_DISK_MODEL_H_
#define SOREORG_SIM_DISK_MODEL_H_

#include <cstdint>
#include <mutex>

#include "src/storage/disk_manager.h"

namespace soreorg {

struct DiskModelOptions {
  double seek_ms = 9.0;
  double half_rotation_ms = 4.17;  // 7200 rpm
  double short_seek_ms = 1.5;
  double transfer_ms = 0.12;  // 4 KiB at ~33 MB/s
  PageId near_threshold = 16;
};

struct DiskModelStats {
  uint64_t accesses = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sequential = 0;
  uint64_t near = 0;
  uint64_t random = 0;
  double total_ms = 0.0;
};

class DiskModel {
 public:
  explicit DiskModel(DiskModelOptions options = DiskModelOptions())
      : options_(options) {}

  /// Register as the DiskManager's I/O observer.
  void Attach(DiskManager* disk);

  void OnAccess(PageId page_id, bool is_write);

  /// Realtime mode: actually stall each page access for
  /// (simulated cost) * scale. scale = 1.0 replays 1996-era latencies in
  /// real time; the concurrency experiments use a small scale (e.g. 0.01)
  /// so lock-hold windows reflect I/O without hour-long runs. 0 disables.
  void set_realtime_scale(double scale) { realtime_scale_ = scale; }

  DiskModelStats stats() const;
  void Reset();

 private:
  double realtime_scale_ = 0.0;
  DiskModelOptions options_;
  mutable std::mutex mu_;
  DiskModelStats stats_;
  PageId last_ = kInvalidPageId;
};

}  // namespace soreorg

#endif  // SOREORG_SIM_DISK_MODEL_H_
