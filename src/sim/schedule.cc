#include "src/sim/schedule.h"

#include <algorithm>
#include <chrono>

namespace soreorg {

namespace {

// The actor owning the calling thread (null on non-actor threads, e.g. the
// test body doing setup). Set once by the thread wrapper in Spawn.
thread_local void* tls_actor = nullptr;

const char* SpaceStr(LockSpace s) {
  switch (s) {
    case LockSpace::kTree:
      return "tree";
    case LockSpace::kPage:
      return "page";
    case LockSpace::kRecord:
      return "record";
    case LockSpace::kSideFile:
      return "side-file";
    case LockSpace::kSideKey:
      return "side-key";
  }
  return "?";
}

}  // namespace

ScheduleController::ScheduleController(ScheduleOptions options)
    : options_(options), rng_(options.seed) {}

ScheduleController::~ScheduleController() {
  {
    std::lock_guard<std::mutex> g(mu_);
    started_ = true;
    free_run_ = true;
  }
  cv_.notify_all();
  for (auto& a : actors_) {
    if (a->thread.joinable()) a->thread.join();
  }
}

void ScheduleController::InstallLockHooks(LockManager* lm) {
  lm->SetEventHook([this](LockEvent e, TxnId txn, const LockName& name,
                          LockMode mode) { OnLockEvent(e, txn, name, mode); });
}

void ScheduleController::InstallFetchHook(BufferPool* bp) {
  bp->SetFetchHook([this](PageId page_id) { OnFetch(page_id); });
}

void ScheduleController::SetLockPointPredicate(LockPointPredicate pred) {
  std::lock_guard<std::mutex> g(mu_);
  lock_point_pred_ = std::move(pred);
}

void ScheduleController::SetScript(std::vector<std::string> script) {
  std::lock_guard<std::mutex> g(mu_);
  script_ = std::move(script);
  script_pos_ = 0;
}

void ScheduleController::Spawn(const std::string& name,
                               std::function<void()> body) {
  auto actor = std::make_unique<Actor>();
  actor->name = name;
  actor->ctrl = this;
  Actor* a = actor.get();
  {
    std::lock_guard<std::mutex> g(mu_);
    actors_.push_back(std::move(actor));
  }
  a->thread = std::thread([this, a, body = std::move(body)]() {
    tls_actor = a;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return started_; });
    }
    body();
    {
      std::lock_guard<std::mutex> g(mu_);
      a->state = ActorState::kDone;
      LockedAddTrace(a->name + ":done");
    }
    cv_.notify_all();
  });
}

void ScheduleController::LockedWaitAtPoint(Actor* a,
                                           std::unique_lock<std::mutex>* lk) {
  a->state = ActorState::kAtPoint;
  a->granted = false;
  cv_.notify_all();
  cv_.wait(*lk, [&] { return a->granted || free_run_; });
  a->granted = false;
  a->state = ActorState::kRunning;
}

void ScheduleController::Point(const std::string& event) {
  Actor* a = static_cast<Actor*>(tls_actor);
  if (a == nullptr || a->ctrl != this) return;
  std::unique_lock<std::mutex> lk(mu_);
  if (!free_run_) LockedWaitAtPoint(a, &lk);
  // Recorded after the grant so point entries land in schedule order.
  LockedAddTrace(a->name + ":" + event);
}

void ScheduleController::Note(const std::string& event) {
  Actor* a = static_cast<Actor*>(tls_actor);
  if (a == nullptr || a->ctrl != this) return;
  std::lock_guard<std::mutex> g(mu_);
  LockedAddTrace(a->name + ":note:" + event);
}

void ScheduleController::OnLockEvent(LockEvent e, TxnId txn,
                                     const LockName& name, LockMode mode) {
  (void)txn;
  Actor* a = static_cast<Actor*>(tls_actor);
  if (a == nullptr || a->ctrl != this) return;
  std::string entry = a->name + ":" + LockEventName(e);
  if (e != LockEvent::kReleaseAll) {
    entry += std::string(":") + SpaceStr(name.space) + "/" +
             std::to_string(name.id) + ":" + LockModeName(mode);
  }
  std::unique_lock<std::mutex> lk(mu_);
  LockedAddTrace(std::move(entry));
  if (e == LockEvent::kWait) {
    // The request is about to block inside LockManager: deschedule the actor
    // without consuming a step. It becomes runnable again when the manager
    // wakes it (the terminal event below).
    a->state = ActorState::kParked;
    cv_.notify_all();
    return;
  }
  if (a->state == ActorState::kParked) a->state = ActorState::kRunning;
  cv_.notify_all();
  // Selected lock events double as scheduling points (hooks run with the
  // manager's mutex released, so blocking here is safe).
  if (!free_run_ && lock_point_pred_ && lock_point_pred_(e, name, mode)) {
    LockedWaitAtPoint(a, &lk);
  }
}

void ScheduleController::OnFetch(PageId page_id) {
  Actor* a = static_cast<Actor*>(tls_actor);
  if (a == nullptr || a->ctrl != this) return;
  std::lock_guard<std::mutex> g(mu_);
  LockedAddTrace(a->name + ":fetch:page/" + std::to_string(page_id));
}

void ScheduleController::LockedAddTrace(std::string entry) {
  trace_.push_back(std::move(entry));
}

bool ScheduleController::LockedQuiescent() const {
  for (const auto& a : actors_) {
    if (a->state == ActorState::kRunning) return false;
  }
  return true;
}

bool ScheduleController::LockedAllDone() const {
  for (const auto& a : actors_) {
    if (a->state != ActorState::kDone) return false;
  }
  return true;
}

ScheduleController::Actor* ScheduleController::LockedFindActor(
    const std::string& name) {
  for (auto& a : actors_) {
    if (a->name == name) return a.get();
  }
  return nullptr;
}

void ScheduleController::LockedStall(const std::string& why) {
  stalled_ = true;
  free_run_ = true;
  LockedAddTrace("schedule:stall:" + why);
  cv_.notify_all();
}

bool ScheduleController::LockedAwaitQuiescence(
    std::unique_lock<std::mutex>* lk) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.step_timeout_ms);
  while (true) {
    if (LockedQuiescent()) {
      // Debounce: a parked actor that was just unblocked takes a moment to
      // wake inside LockManager and report itself running. Hold the step
      // until the settle window passes without a state change.
      cv_.wait_for(*lk, std::chrono::microseconds(options_.settle_us));
      if (LockedQuiescent()) return true;
      continue;
    }
    if (cv_.wait_until(*lk, deadline) == std::cv_status::timeout &&
        !LockedQuiescent()) {
      LockedStall("an actor never came back to a point");
      return false;
    }
  }
}

Status ScheduleController::Run() {
  {
    std::lock_guard<std::mutex> g(mu_);
    started_ = true;
  }
  cv_.notify_all();

  {
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      if (!LockedAwaitQuiescence(&lk)) break;
      if (LockedAllDone()) break;

      Actor* next = nullptr;
      if (script_pos_ < script_.size()) {
        const std::string& want = script_[script_pos_];
        Actor* a = LockedFindActor(want);
        if (a == nullptr) {
          LockedStall("script names unknown actor '" + want + "'");
          break;
        }
        auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.step_timeout_ms);
        while (a->state != ActorState::kAtPoint) {
          if (a->state == ActorState::kDone) break;
          if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
        }
        if (a->state != ActorState::kAtPoint) {
          LockedStall("script step " + std::to_string(script_pos_) + " ('" +
                      want + "') never reached a point");
          break;
        }
        next = a;
        ++script_pos_;
      } else if (!script_.empty()) {
        // Script exhausted: the remaining actors free-run to completion.
        free_run_ = true;
        cv_.notify_all();
        auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.step_timeout_ms);
        while (!LockedAllDone()) {
          if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
              !LockedAllDone()) {
            LockedStall("free-run epilogue did not finish");
            break;
          }
        }
        break;
      } else {
        // Seeded mode: release one of the actors waiting at a point.
        std::vector<Actor*> ready;
        for (auto& a : actors_) {
          if (a->state == ActorState::kAtPoint) ready.push_back(a.get());
        }
        if (ready.empty()) {
          // Everyone is parked or done (but not all done): wait for
          // LockManager to wake somebody, or stall.
          auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.step_timeout_ms);
          bool progress = false;
          while (!progress) {
            if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
            for (auto& a : actors_) {
              if (a->state == ActorState::kAtPoint ||
                  a->state == ActorState::kRunning) {
                progress = true;
              }
            }
            if (LockedAllDone()) progress = true;
          }
          if (!progress) {
            LockedStall("all live actors are parked");
            break;
          }
          continue;
        }
        std::sort(ready.begin(), ready.end(),
                  [](const Actor* x, const Actor* y) {
                    return x->name < y->name;
                  });
        next = ready[rng_.Uniform(ready.size())];
      }

      if (next != nullptr) {
        next->granted = true;
        next->state = ActorState::kRunning;
        cv_.notify_all();
      }
    }
  }

  for (auto& a : actors_) {
    if (a->thread.joinable()) a->thread.join();
  }

  std::lock_guard<std::mutex> g(mu_);
  if (stalled_) return Status::TimedOut("schedule stalled; see trace");
  return Status::OK();
}

int ScheduleController::TraceIndex(const std::string& needle, int from) const {
  std::lock_guard<std::mutex> g(mu_);
  for (size_t i = static_cast<size_t>(from < 0 ? 0 : from); i < trace_.size();
       ++i) {
    if (trace_[i].find(needle) != std::string::npos) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string ScheduleController::TraceString() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out;
  for (const std::string& e : trace_) {
    out += e;
    out += '\n';
  }
  return out;
}

}  // namespace soreorg
