// Crash-torture harness: the executable form of the paper's §5.1 claim that
// the reorganizer is forward-recoverable from a crash at *any* point.
//
// One torture run fixes a deterministic workload (load dense, sparsify by
// deletion, checkpoint — the survivors are the model), counts the I/O points
// a full Reorganize() performs (every WAL/page write, append and sync, via
// FaultInjectionEnv::ObserveOnly), then replays the workload once per crash
// point: rebuild, arm the fault at point i, reorganize until the fault
// fires, Crash() the env, reopen (running RecoveryManager + forward
// recovery), and verify the recovered tree — scan equals the model, key
// count matches, CheckConsistency passes.
//
// Modes:
//   kCleanCrash    — the Nth write/append/sync fails and the env goes down:
//                    classic power loss; recovery must produce the model.
//   kTornPageWrite — the Nth page-file write persists only a prefix: the
//                    page checksum must detect the tear (Open returns
//                    Corruption) or recovery must still produce the model
//                    (the torn page was superseded/never replayed). A torn
//                    image silently accepted into a wrong tree is a failure.
//   kTornWalWrite  — the Nth WAL write is cut short: a torn tail, which
//                    recovery must treat as end-of-log and roll forward
//                    from, never as an error and never past it.
//
// Used by tests/crash_torture_test.cc (full sweep) and
// bench/bench_crash_torture.cc (--quick CI smoke).

#ifndef SOREORG_SIM_TORTURE_H_
#define SOREORG_SIM_TORTURE_H_

#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/storage/fault_env.h"

namespace soreorg {

enum class TortureMode {
  kCleanCrash,
  kTornPageWrite,
  kTornWalWrite,
};

struct TortureOptions {
  TortureMode mode = TortureMode::kCleanCrash;

  // Workload shape (SparsifyByDeletion).
  uint64_t records = 600;
  size_t value_size = 48;
  double dense_fill = 0.95;
  double delete_fraction = 0.6;
  uint64_t key_stride = 10;
  uint64_t seed = 42;

  // Sweep shape: crash at every `stride`-th I/O point, at most `max_points`
  // iterations (0 = unbounded). stride 1 = crash at *every* point.
  int stride = 1;
  int max_points = 0;

  // Torn-write modes: bytes of the write that reach the durable image.
  size_t tear_keep_bytes = 1536;

  // After a successful recovery, run Reorganize() to completion and verify
  // again — proves the recovered state is not just readable but resumable.
  bool complete_after = false;

  // Force the switcher through N step-aside rounds (§7.4 fix) on every
  // Reorganize(), with a mid-window transaction that deletes and re-inserts
  // a model key. Drives crash points into the release-reacquire window the
  // step-aside protocol opens; 0 leaves the switcher alone.
  int force_step_asides = 0;

  // WAL-churn + checkpoint inside the swept window: run this many
  // insert+delete single-transaction churn ops (model-neutral at every
  // crash point), then Checkpoint() — and checkpoint again after the
  // reorganization. With a small db.wal_segment_bytes this drives segment
  // rotation (seal, create/recycle, dirsync) and checkpoint-driven
  // truncation (rename, delete) I/O into the crash sweep. 0 = off.
  int checkpoint_churn_txns = 0;
  size_t churn_value_bytes = 120;

  DatabaseOptions db;
};

struct TortureStats {
  int points_total = 0;    // I/O points one clean Reorganize() performs
  int points_tested = 0;   // crash iterations executed
  int faults_fired = 0;    // iterations where the armed fault actually hit
  int recoveries_ok = 0;   // reopened and verified model-equal + consistent
  int detected_corruptions = 0;  // torn image detected (Open -> Corruption)
  int failures = 0;              // undetected divergence — must be zero
  std::vector<std::string> failure_details;  // first few, for the test log
};

class TortureHarness {
 public:
  explicit TortureHarness(TortureOptions options);

  /// Runs the full sweep. Returns OK iff stats->failures == 0.
  Status Run(TortureStats* stats);

 private:
  Status BuildWorkload(FaultInjectionEnv* env,
                       std::unique_ptr<Database>* db);
  /// The work performed inside the fault-armed window: optional WAL churn +
  /// checkpoint (segment rotation/truncation I/O), then Reorganize(), then
  /// a second checkpoint. Identical op sequence in dry run and sweep.
  Status SweptWork(Database* db);
  /// Apply options_.force_step_asides to the live reorganizer, installing
  /// the mid-window model-key rewrite transaction. Needs model_ populated.
  void ArmStepAside(Database* db);
  Status VerifyAgainstModel(Database* db, const char* where);
  void RecordFailure(TortureStats* stats, int point, const std::string& what);

  TortureOptions options_;
  std::vector<std::pair<std::string, std::string>> model_;
};

}  // namespace soreorg

#endif  // SOREORG_SIM_TORTURE_H_
