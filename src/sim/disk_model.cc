#include "src/sim/disk_model.h"

#include <chrono>
#include <thread>

namespace soreorg {

void DiskModel::Attach(DiskManager* disk) {
  disk->set_io_observer(
      [this](PageId pid, bool is_write) { OnAccess(pid, is_write); });
}

void DiskModel::OnAccess(PageId page_id, bool is_write) {
  double cost_for_stall = 0.0;
  {
    std::lock_guard<std::mutex> g(mu_);
  ++stats_.accesses;
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  double cost = options_.transfer_ms;
  if (last_ != kInvalidPageId && page_id == last_ + 1) {
    ++stats_.sequential;
  } else if (last_ != kInvalidPageId &&
             (page_id > last_ ? page_id - last_ : last_ - page_id) <=
                 options_.near_threshold) {
    ++stats_.near;
    cost += options_.short_seek_ms;
  } else {
    ++stats_.random;
    cost += options_.seek_ms + options_.half_rotation_ms;
  }
  stats_.total_ms += cost;
  last_ = page_id;
  cost_for_stall = cost;
  }
  if (realtime_scale_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        cost_for_stall * realtime_scale_));
  }
}

DiskModelStats DiskModel::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void DiskModel::Reset() {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = DiskModelStats{};
  last_ = kInvalidPageId;
}

}  // namespace soreorg
