#include "src/sim/workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/util/coding.h"

namespace soreorg {

std::vector<std::pair<std::string, std::string>> MakeRecords(
    uint64_t n, size_t value_size, uint64_t key_stride, uint64_t seed) {
  Random rng(seed);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string value(value_size, '\0');
    for (size_t j = 0; j < value_size; ++j) {
      value[j] = static_cast<char>('a' + rng.Uniform(26));
    }
    out.emplace_back(EncodeU64Key(i * key_stride), std::move(value));
  }
  return out;
}

Status LoadSparseTree(Database* db, uint64_t n, size_t value_size, double f1,
                      uint64_t key_stride, uint64_t seed) {
  auto records = MakeRecords(n, value_size, key_stride, seed);
  return db->BulkLoad(records, f1);
}

Status SparsifyByDeletion(Database* db, uint64_t n, size_t value_size,
                          double dense_fill, double delete_fraction,
                          uint64_t key_stride, uint64_t seed,
                          std::vector<uint64_t>* surviving_keys) {
  auto records = MakeRecords(n, value_size, key_stride, seed);
  Status s = db->BulkLoad(records, dense_fill);
  if (!s.ok()) return s;

  Random rng(seed + 1);
  std::vector<uint64_t> survivors;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(delete_fraction)) {
      s = db->Delete(EncodeU64Key(i * key_stride));
      if (!s.ok() && !s.IsNotFound()) return s;
    } else {
      survivors.push_back(i * key_stride);
    }
  }
  if (surviving_keys != nullptr) *surviving_keys = std::move(survivors);
  // Settle the aged database: make the freed pages durable so they are
  // genuinely free (later splits and the reorganizer's Find-Free-Space see
  // the holes deletion created).
  return db->buffer_pool()->FlushAndSync();
}

Status AgeDatabase(Database* db, const AgingOptions& options,
                   std::vector<uint64_t>* surviving_keys) {
  auto records =
      MakeRecords(options.n, options.value_size, options.key_stride,
                  options.seed);
  Status s = db->BulkLoad(records, 0.95);
  if (!s.ok()) return s;
  Random rng(options.seed + 1);
  std::vector<bool> alive(options.n, true);
  uint64_t live = options.n;

  // Clustered deletions: runs of ~150 slots (~3 leaves at 64-byte values).
  uint64_t cluster_target = static_cast<uint64_t>(
      static_cast<double>(options.n) * (1.0 - options.cluster_delete_frac));
  while (live > cluster_target) {
    uint64_t start = rng.Uniform(options.n);
    for (uint64_t i = start; i < std::min(start + 150, options.n); ++i) {
      if (!alive[i]) continue;
      s = db->Delete(EncodeU64Key(i * options.key_stride));
      if (!s.ok() && !s.IsNotFound()) return s;
      alive[i] = false;
      --live;
    }
  }
  // Scattered deletions.
  uint64_t random_target = static_cast<uint64_t>(
      static_cast<double>(cluster_target) *
      (1.0 - options.random_delete_frac));
  while (live > random_target) {
    uint64_t i = rng.Uniform(options.n);
    if (!alive[i]) continue;
    s = db->Delete(EncodeU64Key(i * options.key_stride));
    if (!s.ok() && !s.IsNotFound()) return s;
    alive[i] = false;
    --live;
  }
  // Settle: the emptied pages become genuinely free.
  s = db->buffer_pool()->FlushAndSync();
  if (!s.ok()) return s;

  // Insert churn: splits reuse the freed holes, degrading disk order.
  std::vector<std::pair<uint64_t, bool>> extras;
  for (uint64_t c = 0; c < options.churn_inserts; ++c) {
    uint64_t slot = rng.Uniform(options.n);
    uint64_t key = slot * options.key_stride + 1 + rng.Uniform(7);
    s = db->Put(EncodeU64Key(key), std::string(options.value_size, 'c'));
    if (s.ok()) extras.emplace_back(key, true);
    else if (!s.IsInvalidArgument()) return s;
  }

  if (surviving_keys != nullptr) {
    surviving_keys->clear();
    for (uint64_t i = 0; i < options.n; ++i) {
      if (alive[i]) surviving_keys->push_back(i * options.key_stride);
    }
    for (const auto& [k, ok] : extras) surviving_keys->push_back(k);
    std::sort(surviving_keys->begin(), surviving_keys->end());
    surviving_keys->erase(
        std::unique(surviving_keys->begin(), surviving_keys->end()),
        surviving_keys->end());
  }
  return Status::OK();
}

ConcurrentDriver::ConcurrentDriver(Database* db, DriverOptions options)
    : db_(db), options_(options), per_thread_(options.threads) {}

ConcurrentDriver::~ConcurrentDriver() { Stop(); }

void ConcurrentDriver::Start() {
  running_.store(true);
  for (int i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this, i]() { ThreadMain(i); });
  }
}

void ConcurrentDriver::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

size_t LatencyHistogram::Bucket(uint64_t ns) {
  if (ns < 16) return static_cast<size_t>(ns);
  int e = 63 - __builtin_clzll(ns);  // e >= 4
  uint64_t mant = (ns >> (e - 4)) & 15;
  return static_cast<size_t>(e - 3) * 16 + static_cast<size_t>(mant);
}

uint64_t LatencyHistogram::BucketValue(size_t idx) {
  if (idx < 16) return static_cast<uint64_t>(idx);
  int e = static_cast<int>(idx / 16) + 3;
  uint64_t mant = idx % 16;
  return (uint64_t{1} << e) | (mant << (e - 4));
}

uint64_t LatencyHistogram::Percentile(double q) const {
  uint64_t counts[kBuckets];
  uint64_t n = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    n += counts[i];
  }
  if (n == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) return BucketValue(i);
  }
  return BucketValue(kBuckets - 1);
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
  zetan_ = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
  RecomputeConstants();
}

void ZipfianGenerator::RecomputeConstants() {
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

void ZipfianGenerator::Grow(uint64_t new_n) {
  if (new_n <= n_) return;
  // Incremental zeta: extend the harmonic-like sum rather than recomputing
  // from 1 (Advance() runs once per insert in the latest distribution).
  for (uint64_t i = n_ + 1; i <= new_n; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  n_ = new_n;
  RecomputeConstants();
}

uint64_t ZipfianGenerator::Next() {
  // Gray/Flessner rejection-free inversion, as in the YCSB core generator.
  double u = static_cast<double>(rng_.Next() >> 11) *
             (1.0 / 9007199254740992.0);
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t item = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return item >= n_ ? n_ - 1 : item;
}

uint64_t ZipfianGenerator::NextScrambled() {
  uint64_t v = Next();
  // fmix64 (murmur3 finalizer) spreads the hot head over the key space.
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v % n_;
}

DriverStats ConcurrentDriver::stats() const {
  DriverStats total;
  LatencyHistogram merged;
  for (const AtomicStats& s : per_thread_) {
    total.ops += s.ops.load(std::memory_order_relaxed);
    total.reads += s.reads.load(std::memory_order_relaxed);
    total.inserts += s.inserts.load(std::memory_order_relaxed);
    total.deletes += s.deletes.load(std::memory_order_relaxed);
    total.scans += s.scans.load(std::memory_order_relaxed);
    total.failures += s.failures.load(std::memory_order_relaxed);
    total.total_latency_ns +=
        s.total_latency_ns.load(std::memory_order_relaxed);
    total.max_latency_ns =
        std::max(total.max_latency_ns,
                 s.max_latency_ns.load(std::memory_order_relaxed));
    merged.MergeFrom(s.lat_hist);
  }
  if (merged.total_count() > 0) {
    total.p50_ns = merged.Percentile(0.50);
    total.p99_ns = merged.Percentile(0.99);
    total.p999_ns = merged.Percentile(0.999);
  }
  return total;
}

void ConcurrentDriver::ThreadMain(int idx) {
  Random rng(options_.seed + static_cast<uint64_t>(idx) * 7919);
  // Only this thread writes its slot; relaxed fetch_add is enough for
  // stats() readers on other threads.
  AtomicStats& st = per_thread_[idx];
  const uint64_t max_slot = options_.key_space;

  while (running_.load(std::memory_order_relaxed)) {
    double dice = static_cast<double>(rng.Uniform(10000)) / 10000.0;
    uint64_t slot = rng.Uniform(max_slot);
    std::string key = EncodeU64Key(slot * options_.key_stride);

    auto t0 = std::chrono::steady_clock::now();
    Status s;
    if (dice < options_.read_fraction) {
      std::string value;
      s = db_->Get(key, &value);
      st.reads.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok() && !s.IsNotFound()) {
        st.failures.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (dice < options_.read_fraction + options_.insert_fraction) {
      // Insert between existing slots so it always lands in a live range.
      std::string ikey =
          EncodeU64Key(slot * options_.key_stride + 1 + rng.Uniform(7));
      std::string value(options_.value_size, 'x');
      s = db_->Put(ikey, value);
      st.inserts.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok() && !s.IsInvalidArgument()) {
        st.failures.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (dice < options_.read_fraction + options_.insert_fraction +
                          options_.delete_fraction) {
      s = db_->Delete(key);
      st.deletes.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok() && !s.IsNotFound()) {
        st.failures.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      uint64_t count = 0;
      std::string hi = EncodeU64Key((slot + 50) * options_.key_stride);
      s = db_->Scan(key, hi, [&count](const Slice&, const Slice&) {
        ++count;
        return count < 64;
      });
      st.scans.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok()) st.failures.fetch_add(1, std::memory_order_relaxed);
    }
    auto dt = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    st.total_latency_ns.fetch_add(dt, std::memory_order_relaxed);
    st.lat_hist.Record(dt);
    uint64_t prev = st.max_latency_ns.load(std::memory_order_relaxed);
    while (dt > prev && !st.max_latency_ns.compare_exchange_weak(
                            prev, dt, std::memory_order_relaxed)) {
    }
    st.ops.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace soreorg
