#include "src/sim/workload.h"

#include <algorithm>
#include <chrono>

#include "src/util/coding.h"

namespace soreorg {

std::vector<std::pair<std::string, std::string>> MakeRecords(
    uint64_t n, size_t value_size, uint64_t key_stride, uint64_t seed) {
  Random rng(seed);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string value(value_size, '\0');
    for (size_t j = 0; j < value_size; ++j) {
      value[j] = static_cast<char>('a' + rng.Uniform(26));
    }
    out.emplace_back(EncodeU64Key(i * key_stride), std::move(value));
  }
  return out;
}

Status LoadSparseTree(Database* db, uint64_t n, size_t value_size, double f1,
                      uint64_t key_stride, uint64_t seed) {
  auto records = MakeRecords(n, value_size, key_stride, seed);
  return db->BulkLoad(records, f1);
}

Status SparsifyByDeletion(Database* db, uint64_t n, size_t value_size,
                          double dense_fill, double delete_fraction,
                          uint64_t key_stride, uint64_t seed,
                          std::vector<uint64_t>* surviving_keys) {
  auto records = MakeRecords(n, value_size, key_stride, seed);
  Status s = db->BulkLoad(records, dense_fill);
  if (!s.ok()) return s;

  Random rng(seed + 1);
  std::vector<uint64_t> survivors;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(delete_fraction)) {
      s = db->Delete(EncodeU64Key(i * key_stride));
      if (!s.ok() && !s.IsNotFound()) return s;
    } else {
      survivors.push_back(i * key_stride);
    }
  }
  if (surviving_keys != nullptr) *surviving_keys = std::move(survivors);
  // Settle the aged database: make the freed pages durable so they are
  // genuinely free (later splits and the reorganizer's Find-Free-Space see
  // the holes deletion created).
  return db->buffer_pool()->FlushAndSync();
}

Status AgeDatabase(Database* db, const AgingOptions& options,
                   std::vector<uint64_t>* surviving_keys) {
  auto records =
      MakeRecords(options.n, options.value_size, options.key_stride,
                  options.seed);
  Status s = db->BulkLoad(records, 0.95);
  if (!s.ok()) return s;
  Random rng(options.seed + 1);
  std::vector<bool> alive(options.n, true);
  uint64_t live = options.n;

  // Clustered deletions: runs of ~150 slots (~3 leaves at 64-byte values).
  uint64_t cluster_target = static_cast<uint64_t>(
      static_cast<double>(options.n) * (1.0 - options.cluster_delete_frac));
  while (live > cluster_target) {
    uint64_t start = rng.Uniform(options.n);
    for (uint64_t i = start; i < std::min(start + 150, options.n); ++i) {
      if (!alive[i]) continue;
      s = db->Delete(EncodeU64Key(i * options.key_stride));
      if (!s.ok() && !s.IsNotFound()) return s;
      alive[i] = false;
      --live;
    }
  }
  // Scattered deletions.
  uint64_t random_target = static_cast<uint64_t>(
      static_cast<double>(cluster_target) *
      (1.0 - options.random_delete_frac));
  while (live > random_target) {
    uint64_t i = rng.Uniform(options.n);
    if (!alive[i]) continue;
    s = db->Delete(EncodeU64Key(i * options.key_stride));
    if (!s.ok() && !s.IsNotFound()) return s;
    alive[i] = false;
    --live;
  }
  // Settle: the emptied pages become genuinely free.
  s = db->buffer_pool()->FlushAndSync();
  if (!s.ok()) return s;

  // Insert churn: splits reuse the freed holes, degrading disk order.
  std::vector<std::pair<uint64_t, bool>> extras;
  for (uint64_t c = 0; c < options.churn_inserts; ++c) {
    uint64_t slot = rng.Uniform(options.n);
    uint64_t key = slot * options.key_stride + 1 + rng.Uniform(7);
    s = db->Put(EncodeU64Key(key), std::string(options.value_size, 'c'));
    if (s.ok()) extras.emplace_back(key, true);
    else if (!s.IsInvalidArgument()) return s;
  }

  if (surviving_keys != nullptr) {
    surviving_keys->clear();
    for (uint64_t i = 0; i < options.n; ++i) {
      if (alive[i]) surviving_keys->push_back(i * options.key_stride);
    }
    for (const auto& [k, ok] : extras) surviving_keys->push_back(k);
    std::sort(surviving_keys->begin(), surviving_keys->end());
    surviving_keys->erase(
        std::unique(surviving_keys->begin(), surviving_keys->end()),
        surviving_keys->end());
  }
  return Status::OK();
}

ConcurrentDriver::ConcurrentDriver(Database* db, DriverOptions options)
    : db_(db), options_(options), per_thread_(options.threads) {}

ConcurrentDriver::~ConcurrentDriver() { Stop(); }

void ConcurrentDriver::Start() {
  running_.store(true);
  for (int i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this, i]() { ThreadMain(i); });
  }
}

void ConcurrentDriver::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

size_t ConcurrentDriver::LatBucket(uint64_t ns) {
  if (ns < 16) return static_cast<size_t>(ns);
  int e = 63 - __builtin_clzll(ns);  // e >= 4
  uint64_t mant = (ns >> (e - 4)) & 15;
  return static_cast<size_t>(e - 3) * 16 + static_cast<size_t>(mant);
}

uint64_t ConcurrentDriver::LatBucketValue(size_t idx) {
  if (idx < 16) return static_cast<uint64_t>(idx);
  int e = static_cast<int>(idx / 16) + 3;
  uint64_t mant = idx % 16;
  return (uint64_t{1} << e) | (mant << (e - 4));
}

DriverStats ConcurrentDriver::stats() const {
  DriverStats total;
  uint64_t hist[kLatHistBuckets] = {};
  for (const AtomicStats& s : per_thread_) {
    total.ops += s.ops.load(std::memory_order_relaxed);
    total.reads += s.reads.load(std::memory_order_relaxed);
    total.inserts += s.inserts.load(std::memory_order_relaxed);
    total.deletes += s.deletes.load(std::memory_order_relaxed);
    total.scans += s.scans.load(std::memory_order_relaxed);
    total.failures += s.failures.load(std::memory_order_relaxed);
    total.total_latency_ns +=
        s.total_latency_ns.load(std::memory_order_relaxed);
    total.max_latency_ns =
        std::max(total.max_latency_ns,
                 s.max_latency_ns.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kLatHistBuckets; ++i) {
      hist[i] += s.lat_hist[i].load(std::memory_order_relaxed);
    }
  }
  uint64_t n = 0;
  for (uint64_t c : hist) n += c;
  if (n > 0) {
    auto percentile = [&](double q) -> uint64_t {
      uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
      uint64_t seen = 0;
      for (size_t i = 0; i < kLatHistBuckets; ++i) {
        seen += hist[i];
        if (seen > rank) return LatBucketValue(i);
      }
      return LatBucketValue(kLatHistBuckets - 1);
    };
    total.p50_ns = percentile(0.50);
    total.p99_ns = percentile(0.99);
    total.p999_ns = percentile(0.999);
  }
  return total;
}

void ConcurrentDriver::ThreadMain(int idx) {
  Random rng(options_.seed + static_cast<uint64_t>(idx) * 7919);
  // Only this thread writes its slot; relaxed fetch_add is enough for
  // stats() readers on other threads.
  AtomicStats& st = per_thread_[idx];
  const uint64_t max_slot = options_.key_space;

  while (running_.load(std::memory_order_relaxed)) {
    double dice = static_cast<double>(rng.Uniform(10000)) / 10000.0;
    uint64_t slot = rng.Uniform(max_slot);
    std::string key = EncodeU64Key(slot * options_.key_stride);

    auto t0 = std::chrono::steady_clock::now();
    Status s;
    if (dice < options_.read_fraction) {
      std::string value;
      s = db_->Get(key, &value);
      st.reads.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok() && !s.IsNotFound()) {
        st.failures.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (dice < options_.read_fraction + options_.insert_fraction) {
      // Insert between existing slots so it always lands in a live range.
      std::string ikey =
          EncodeU64Key(slot * options_.key_stride + 1 + rng.Uniform(7));
      std::string value(options_.value_size, 'x');
      s = db_->Put(ikey, value);
      st.inserts.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok() && !s.IsInvalidArgument()) {
        st.failures.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (dice < options_.read_fraction + options_.insert_fraction +
                          options_.delete_fraction) {
      s = db_->Delete(key);
      st.deletes.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok() && !s.IsNotFound()) {
        st.failures.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      uint64_t count = 0;
      std::string hi = EncodeU64Key((slot + 50) * options_.key_stride);
      s = db_->Scan(key, hi, [&count](const Slice&, const Slice&) {
        ++count;
        return count < 64;
      });
      st.scans.fetch_add(1, std::memory_order_relaxed);
      if (!s.ok()) st.failures.fetch_add(1, std::memory_order_relaxed);
    }
    auto dt = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    st.total_latency_ns.fetch_add(dt, std::memory_order_relaxed);
    st.lat_hist[LatBucket(dt)].fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = st.max_latency_ns.load(std::memory_order_relaxed);
    while (dt > prev && !st.max_latency_ns.compare_exchange_weak(
                            prev, dt, std::memory_order_relaxed)) {
    }
    st.ops.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace soreorg
