#include "src/sim/crash_injector.h"

namespace soreorg {

void CrashInjector::ArmAfterOps(int n, std::string file_suffix,
                                std::string op_filter) {
  fired_.store(false);
  remaining_.store(n);
  env_->set_write_observer(
      [this, file_suffix = std::move(file_suffix),
       op_filter = std::move(op_filter)](const std::string& name,
                                         const char* op, size_t) -> bool {
        // Segment-aware: ".wal" also matches "db.wal.000017" so the
        // forward-recovery sweeps keep counting I/O points after the log
        // went segmented.
        if (!WalAwareSuffixMatch(name, file_suffix)) return true;
        if (!op_filter.empty() && op_filter != op) return true;
        observed_.fetch_add(1);
        int r = remaining_.load();
        if (r < 0) return true;  // counting only
        if (remaining_.fetch_sub(1) == 1) {
          fired_.store(true);
          return false;  // fail this operation: the system has "crashed"
        }
        return true;
      });
}

void CrashInjector::Disarm() {
  remaining_.store(-1);
  env_->set_write_observer(nullptr);
}

}  // namespace soreorg
