#include "src/db/database.h"

#include <cstdio>

#include "src/btree/bulk_builder.h"

namespace soreorg {

Status Database::Open(Env* env, DatabaseOptions options,
                      std::unique_ptr<Database>* out) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  db->env_ = env;
  const std::string& name = db->options_.name;

  db->disk_ = std::make_unique<DiskManager>(env, name + ".pages");
  Status s = db->disk_->Open();
  if (!s.ok()) return s;

  LogManagerOptions log_opts;
  log_opts.segment_bytes = db->options_.wal_segment_bytes;
  log_opts.recycle_max = db->options_.wal_recycle_segments;
  db->log_ = std::make_unique<LogManager>(env, name + ".wal", log_opts);
  s = db->log_->Open();
  if (!s.ok()) return s;
  db->log_->set_buffer_limit(db->options_.log_buffer_bytes);

  db->master_ = std::make_unique<CheckpointMaster>(env, name + ".ckpt");
  s = db->master_->Open();
  if (!s.ok()) return s;

  LogManager* log = db->log_.get();
  db->bp_ = std::make_unique<BufferPool>(
      db->disk_.get(), db->options_.buffer_pool_pages,
      [log](Lsn lsn) { return log->FlushTo(lsn); },
      db->options_.buffer_pool_shards);

  db->txn_mgr_ = std::make_unique<TransactionManager>(
      db->log_.get(), &db->locks_, db->bp_.get());
  db->side_file_ = std::make_unique<SideFile>(&db->locks_, db->log_.get());

  // --- restart recovery: analysis + redo ------------------------------------
  db->recovery_ = std::make_unique<RecoveryManager>(
      db->disk_.get(), db->bp_.get(), db->log_.get(), db->master_.get(),
      db->side_file_.get());
  db->recovery_->set_redo_threads(db->options_.redo_threads);
  s = db->recovery_->Recover(&db->recovery_result_);
  if (!s.ok()) return s;
  const RecoveryResult& rr = db->recovery_result_;
  if (db->options_.verbose_recovery) {
    std::fprintf(stderr,
                 "[recovery] records=%llu redone=%llu segments=%llu "
                 "recycled=%llu tail_torn=%d dropped=%llu threads=%d\n",
                 static_cast<unsigned long long>(rr.records_scanned),
                 static_cast<unsigned long long>(rr.records_redone),
                 static_cast<unsigned long long>(rr.segments_scanned),
                 static_cast<unsigned long long>(rr.segments_recycled),
                 rr.tail_segment_torn ? 1 : 0,
                 static_cast<unsigned long long>(rr.wal_bytes_dropped),
                 rr.redo_threads_used);
  }

  db->options_.tree.optimistic_reads = db->options_.optimistic_reads;
  db->tree_ = std::make_unique<BTree>(db->bp_.get(), db->log_.get(),
                                      &db->locks_, db->options_.tree);
  if (rr.tree_root == kInvalidPageId) {
    s = db->tree_->Create();
    if (!s.ok()) return s;
  } else {
    db->tree_->Attach(rr.tree_root, rr.tree_height, rr.tree_incarnation);
  }
  db->txn_mgr_->RestoreNextTxnId(rr.next_txn_id);
  db->reorg_table_.Restore(rr.reorg);

  // Logical undo hooks for runtime aborts.
  BTree* tree = db->tree_.get();
  SideFile* side = db->side_file_.get();
  db->txn_mgr_->set_undo_applier(
      [tree, side](const LogRecord& rec, Transaction* txn) -> Status {
        if (rec.type == LogType::kSideInsert) {
          side->UndoInsert(static_cast<BaseUpdateOp>(rec.unit_type), rec.key);
          return Status::OK();
        }
        if (rec.type == LogType::kSideCancel) {
          side->ReAdd(static_cast<BaseUpdateOp>(rec.unit_type), rec.key,
                      rec.page_id);
          return Status::OK();
        }
        if (rec.flags & kInternalCell) return Status::OK();
        return tree->UndoRecordOp(txn, rec);
      });

  // Loser transactions.
  s = db->recovery_->UndoLosers(tree, rr);
  if (!s.ok()) return s;

  db->reorganizer_ = std::make_unique<Reorganizer>(
      tree, db->bp_.get(), db->log_.get(), &db->locks_, db->disk_.get(),
      side, &db->reorg_table_, db->options_.reorg);
  if (rr.reorg.has_open_unit && !rr.incomplete_unit_records.empty()) {
    if (db->options_.recovery_policy == RecoveryPolicy::kForward) {
      // §5.1 Forward Recovery: finish the unit instead of rolling it back.
      s = db->reorganizer_->FinishIncompleteUnit(rr.incomplete_unit_records);
      if (!s.ok() && !s.IsBusy()) return s;
    } else {
      s = db->recovery_->UndoIncompleteUnit(tree, rr);
      if (!s.ok()) return s;
    }
  }
  db->pass3_pending_ = rr.reorg.reorg_bit;

  *out = std::move(db);
  return Status::OK();
}

Database::~Database() {
  if (bp_) bp_->FlushAll();
  if (log_) log_->Flush();
}

Transaction* Database::Begin() { return txn_mgr_->Begin(); }

Status Database::Commit(Transaction* txn) { return txn_mgr_->Commit(txn); }

Status Database::Abort(Transaction* txn) { return txn_mgr_->Abort(txn); }

Status Database::Put(const Slice& key, const Slice& value) {
  Transaction* txn = Begin();
  Status s = tree_->Insert(txn, key, value);
  if (!s.ok()) {
    txn_mgr_->Abort(txn);
    return s;
  }
  return Commit(txn);
}

Status Database::Update(const Slice& key, const Slice& value) {
  Transaction* txn = Begin();
  Status s = tree_->Update(txn, key, value);
  if (!s.ok()) {
    txn_mgr_->Abort(txn);
    return s;
  }
  return Commit(txn);
}

Status Database::Delete(const Slice& key) {
  Transaction* txn = Begin();
  Status s = tree_->Delete(txn, key);
  if (!s.ok()) {
    txn_mgr_->Abort(txn);
    return s;
  }
  return Commit(txn);
}

Status Database::Get(const Slice& key, std::string* value) {
  return tree_->Get(nullptr, key, value);
}

Status Database::Scan(const Slice& lo, const Slice& hi,
                      const std::function<bool(const Slice&, const Slice&)>&
                          cb) {
  return tree_->Scan(nullptr, lo, hi, cb);
}

Status Database::BulkLoad(
    const std::vector<std::pair<std::string, std::string>>& sorted_records,
    double leaf_fill, double internal_fill) {
  BulkBuilder builder(bp_.get(), options_.tree, leaf_fill, internal_fill);
  for (const auto& [k, v] : sorted_records) {
    Status s = builder.Add(k, v);
    if (!s.ok()) return s;
  }
  PageId root;
  uint8_t height;
  Status s = builder.Finish(&root, &height);
  if (!s.ok()) return s;

  // Retire the previous (empty) tree's pages.
  std::vector<PageId> old_internals;
  PageId old_root = tree_->root();
  std::vector<PageId> old_leaves;
  tree_->CollectLeaves(&old_leaves);
  tree_->CollectInternalPages(old_root, &old_internals);
  tree_->Attach(root, height, tree_->incarnation());
  for (PageId p : old_internals) bp_->DeletePage(p);
  for (PageId p : old_leaves) bp_->DeletePage(p);

  LogRecord rc;
  rc.type = LogType::kRootChange;
  rc.page_id = root;
  rc.flags = height;
  log_->AppendAndFlush(&rc);
  // The builder does not WAL-log page contents: a checkpoint makes the
  // loaded tree the recovery baseline.
  return Checkpoint();
}

Status Database::Reorganize() { return reorganizer_->Run(); }

Status Database::ResumeInternalPass() {
  if (!pass3_pending_) return Status::OK();
  Status s;
  if (!recovery_result_.pass3_stable_key.empty() &&
      recovery_result_.pass3_partial_top != kInvalidPageId) {
    s = reorganizer_->RunInternalPass(recovery_result_.pass3_stable_key,
                                      recovery_result_.pass3_partial_top);
  } else {
    s = reorganizer_->RunInternalPass();
  }
  if (s.ok()) pass3_pending_ = false;
  return s;
}

Status Database::Checkpoint() {
  // Capture the redo floor BEFORE the flush walk: the walk is fuzzy — it
  // runs in several flush-lock holds while updaters and the reorganizer
  // keep logging — so a record appended during it may be applied to pages
  // the walk already wrote. Every such record's LSN is >= this floor, and
  // recovery replays from here instead of from the checkpoint record.
  //
  // The capture waits for apply quiescence: a record appended just below
  // the floor whose page bytes were not yet applied (and whose page was
  // therefore not yet dirty) would be both skipped by redo and missed by
  // the walk. ApplyScope brackets in the mutators make append→apply→
  // dirty-unpin atomic with respect to this capture.
  const Lsn redo_lsn =
      bp_->CaptureAtQuiescence([this] { return log_->NextLsn(); });
  Status s = bp_->FlushAndSync();
  if (!s.ok()) return s;

  CheckpointImage image;
  image.redo_lsn = redo_lsn;
  image.disk_meta = disk_->SerializeMeta();
  image.active_txns = txn_mgr_->ActiveSnapshot();
  image.next_txn_id = txn_mgr_->next_txn_id();
  image.reorg = reorg_table_.Snapshot();
  image.tree_root = tree_->root();
  image.tree_height = tree_->height();
  image.tree_incarnation = tree_->incarnation();
  image.side_file_image = side_file_->Serialize();

  LogRecord rec;
  rec.type = LogType::kCheckpoint;
  rec.payload = image.Serialize();
  s = log_->AppendAndFlush(&rec);
  if (!s.ok()) return s;
  s = master_->Store(rec.lsn);
  if (!s.ok()) return s;

  if (options_.wal_truncate_on_checkpoint) {
    // Safe truncation floor. Recovery starts at min(redo_lsn, checkpoint
    // record), but two consumers reach further back:
    //   * UndoLosers / runtime Abort walk prev_lsn chains down to each
    //     active transaction's first record;
    //   * forward recovery of an open reorganization unit replays the unit
    //     from its BEGIN record.
    // Any segment wholly below the min of all four is dead.
    Lsn floor = image.redo_lsn < rec.lsn ? image.redo_lsn : rec.lsn;
    const Lsn oldest_txn = txn_mgr_->OldestActiveFirstLsn();
    if (oldest_txn != kInvalidLsn && oldest_txn < floor) floor = oldest_txn;
    if (image.reorg.has_open_unit && image.reorg.begin_lsn != kInvalidLsn &&
        image.reorg.begin_lsn < floor) {
      floor = image.reorg.begin_lsn;
    }
    s = log_->TruncateBelow(floor);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace soreorg
