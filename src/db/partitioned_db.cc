#include "src/db/partitioned_db.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace soreorg {

namespace {

inline uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over the key bytes with an fmix64 finalizer: cheap, and the
/// finalizer decorrelates the low bits the modulo consumes from the
/// sequential key patterns the workloads generate.
uint64_t HashKey(const Slice& key) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<unsigned char>(key.data()[i]);
    h *= 1099511628211ULL;
  }
  return Fmix64(h);
}

}  // namespace

Status PartitionedDatabase::Open(Env* env, PartitionedDBOptions options,
                                 std::unique_ptr<PartitionedDatabase>* out) {
  if (options.partitions == 0) {
    return Status::InvalidArgument("partitions must be >= 1");
  }
  if (options.scheme == PartitioningScheme::kRange) {
    if (options.range_boundaries.size() != options.partitions - 1) {
      return Status::InvalidArgument(
          "range partitioning needs partitions-1 boundaries");
    }
    for (size_t i = 1; i < options.range_boundaries.size(); ++i) {
      if (options.range_boundaries[i - 1] >= options.range_boundaries[i]) {
        return Status::InvalidArgument(
            "range boundaries must be strictly ascending");
      }
    }
  }
  if (options.max_concurrent_reorgs == 0) options.max_concurrent_reorgs = 1;
  if (options.scan_batch == 0) options.scan_batch = 1;

  std::unique_ptr<PartitionedDatabase> pdb(
      new PartitionedDatabase(std::move(options)));
  const std::string prefix = pdb->options_.base.name;
  pdb->dbs_.resize(pdb->options_.partitions);
  for (size_t i = 0; i < pdb->options_.partitions; ++i) {
    DatabaseOptions per = pdb->options_.base;
    per.name = prefix + ".p" + std::to_string(i);
    Status s = Database::Open(env, std::move(per), &pdb->dbs_[i]);
    if (!s.ok()) return s;
  }
  pdb->executor_ = std::make_unique<Executor>(pdb->options_.executor);
  *out = std::move(pdb);
  return Status::OK();
}

PartitionedDatabase::~PartitionedDatabase() {
  // Executor first: in-flight ops finish, queued-but-unstarted ops fail
  // Aborted — only then do the partitions they reference go away.
  if (executor_) executor_->Shutdown();
  dbs_.clear();
}

size_t PartitionedDatabase::PartitionOf(const Slice& key) const {
  if (dbs_.size() == 1) return 0;
  if (options_.scheme == PartitioningScheme::kHash) {
    return static_cast<size_t>(HashKey(key) % dbs_.size());
  }
  size_t p = 0;
  while (p < options_.range_boundaries.size() &&
         key.compare(Slice(options_.range_boundaries[p])) >= 0) {
    ++p;
  }
  return p;
}

int PartitionedDatabase::WorkerOf(size_t partition) const {
  return static_cast<int>(partition %
                          static_cast<size_t>(executor_->workers()));
}

// --- point operations -------------------------------------------------------

// Synchronous ops capture their arguments by reference: Execute() does not
// return until the task has run (inline or on the worker), so the caller's
// Slices outlive the task and no copies are needed.

Status PartitionedDatabase::Put(const Slice& key, const Slice& value,
                                int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  return executor_->Execute(
      WorkerOf(p), [db, &key, &value]() { return db->Put(key, value); },
      deadline_ms);
}

Status PartitionedDatabase::Update(const Slice& key, const Slice& value,
                                   int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  return executor_->Execute(
      WorkerOf(p), [db, &key, &value]() { return db->Update(key, value); },
      deadline_ms);
}

Status PartitionedDatabase::Delete(const Slice& key, int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  return executor_->Execute(
      WorkerOf(p), [db, &key]() { return db->Delete(key); }, deadline_ms);
}

Status PartitionedDatabase::Get(const Slice& key, std::string* value,
                                int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  return executor_->Execute(
      WorkerOf(p), [db, &key, value]() { return db->Get(key, value); },
      deadline_ms);
}

Status PartitionedDatabase::ReadModifyWrite(
    const Slice& key,
    const std::function<std::string(const std::string&)>& modify,
    int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  return executor_->Execute(
      WorkerOf(p),
      [db, &key, &modify]() {
        std::string cur;
        Status s = db->Get(key, &cur);
        if (!s.ok()) return s;
        return db->Update(key, modify(cur));
      },
      deadline_ms);
}

// --- asynchronous variants --------------------------------------------------

void PartitionedDatabase::AsyncGet(const Slice& key, std::string* value,
                                   Executor::Completion done,
                                   int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  executor_->Submit(
      WorkerOf(p),
      [db, k = key.ToString(), value]() { return db->Get(k, value); },
      std::move(done), deadline_ms);
}

void PartitionedDatabase::AsyncPut(const Slice& key, const Slice& value,
                                   Executor::Completion done,
                                   int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  executor_->Submit(
      WorkerOf(p),
      [db, k = key.ToString(), v = value.ToString()]() { return db->Put(k, v); },
      std::move(done), deadline_ms);
}

void PartitionedDatabase::AsyncUpdate(const Slice& key, const Slice& value,
                                      Executor::Completion done,
                                      int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  executor_->Submit(
      WorkerOf(p),
      [db, k = key.ToString(), v = value.ToString()]() {
        return db->Update(k, v);
      },
      std::move(done), deadline_ms);
}

void PartitionedDatabase::AsyncReadModifyWrite(
    const Slice& key, std::function<std::string(const std::string&)> modify,
    Executor::Completion done, int64_t deadline_ms) {
  size_t p = PartitionOf(key);
  Database* db = dbs_[p].get();
  executor_->Submit(
      WorkerOf(p),
      [db, k = key.ToString(), modify = std::move(modify)]() {
        std::string cur;
        Status s = db->Get(k, &cur);
        if (!s.ok()) return s;
        return db->Update(k, modify(cur));
      },
      std::move(done), deadline_ms);
}

// --- merged scan ------------------------------------------------------------

namespace {

struct ScanCursor {
  size_t part = 0;
  std::vector<std::pair<std::string, std::string>> batch;
  size_t pos = 0;
  bool exhausted = false;
  bool first_fetch = true;
  std::string next_lo;  // last emitted key; refetch resumes just after it
};

}  // namespace

Status PartitionedDatabase::Scan(
    const Slice& lo, const Slice& hi,
    const std::function<bool(const Slice&, const Slice&)>& cb,
    int64_t deadline_ms) {
  const size_t n = dbs_.size();
  const size_t want = options_.scan_batch;

  auto fetch = [&](ScanCursor* c) -> Status {
    c->batch.clear();
    c->pos = 0;
    if (c->exhausted) return Status::OK();
    Database* db = dbs_[c->part].get();
    // Resume from the last emitted key: Scan's lo is inclusive, so the
    // resume key itself is skipped iff it still exists.
    std::string from = c->first_fetch ? lo.ToString() : c->next_lo;
    bool skip_resume_key = !c->first_fetch;
    Status s = executor_->Execute(
        WorkerOf(c->part),
        [&]() {
          return db->Scan(
              Slice(from), hi, [&](const Slice& k, const Slice& v) {
                if (skip_resume_key) {
                  skip_resume_key = false;
                  if (k.compare(Slice(from)) == 0) return true;
                }
                c->batch.emplace_back(k.ToString(), v.ToString());
                return c->batch.size() < want;
              });
        },
        deadline_ms);
    if (!s.ok()) return s;
    if (c->batch.size() < want) c->exhausted = true;
    if (!c->batch.empty()) c->next_lo = c->batch.back().first;
    c->first_fetch = false;
    return Status::OK();
  };

  // Which partitions can hold keys in [lo, hi]? Hash: all of them. Range:
  // only those whose interval intersects.
  std::vector<ScanCursor> cursors;
  for (size_t p = 0; p < n; ++p) {
    if (options_.scheme == PartitioningScheme::kRange && n > 1) {
      // Partition p serves [B[p-1], B[p]).
      if (p > 0 && !hi.empty() &&
          hi.compare(Slice(options_.range_boundaries[p - 1])) < 0) {
        continue;  // whole partition above the scan range
      }
      if (p + 1 < n && !lo.empty() &&
          lo.compare(Slice(options_.range_boundaries[p])) >= 0) {
        continue;  // whole partition below the scan range
      }
    }
    ScanCursor c;
    c.part = p;
    cursors.push_back(std::move(c));
  }
  // One live cursor (single partition, or range pruning left one): stream
  // straight through without batching — no per-record copies, and with an
  // idle lane the executor runs the whole scan inline.
  if (cursors.empty()) return Status::OK();
  if (cursors.size() == 1) {
    Database* db = dbs_[cursors[0].part].get();
    return executor_->Execute(
        WorkerOf(cursors[0].part),
        [db, &lo, &hi, &cb]() { return db->Scan(lo, hi, cb); }, deadline_ms);
  }

  for (ScanCursor& c : cursors) {
    Status s = fetch(&c);
    if (!s.ok()) return s;
  }

  // K-way merge by smallest head key. Partition count is small (the linear
  // min costs less than a heap's bookkeeping) and the router makes keys
  // unique across partitions, so ties cannot occur.
  for (;;) {
    ScanCursor* best = nullptr;
    for (ScanCursor& c : cursors) {
      if (c.pos >= c.batch.size()) continue;
      if (best == nullptr ||
          c.batch[c.pos].first < best->batch[best->pos].first) {
        best = &c;
      }
    }
    if (best == nullptr) break;
    const auto& kv = best->batch[best->pos];
    ++best->pos;
    if (!cb(Slice(kv.first), Slice(kv.second))) return Status::OK();
    if (best->pos >= best->batch.size() && !best->exhausted) {
      Status s = fetch(best);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

// --- bulk load --------------------------------------------------------------

Status PartitionedDatabase::BulkLoad(
    const std::vector<std::pair<std::string, std::string>>& sorted_records,
    double leaf_fill, double internal_fill) {
  std::vector<std::vector<std::pair<std::string, std::string>>> routed(
      dbs_.size());
  for (const auto& kv : sorted_records) {
    routed[PartitionOf(kv.first)].push_back(kv);
  }
  // The input is sorted, so each routed stream is too.
  for (size_t i = 0; i < dbs_.size(); ++i) {
    Status s = dbs_[i]->BulkLoad(routed[i], leaf_fill, internal_fill);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// --- reorganization ---------------------------------------------------------

Status PartitionedDatabase::ReorganizePartition(size_t i) {
  if (i >= dbs_.size()) {
    return Status::InvalidArgument("no such partition");
  }
  {
    std::unique_lock<std::mutex> lk(reorg_mu_);
    reorg_slot_free_.wait(lk, [this]() {
      return active_reorgs_ < options_.max_concurrent_reorgs;
    });
    ++active_reorgs_;
    max_concurrent_seen_ = std::max(max_concurrent_seen_,
                                    static_cast<uint64_t>(active_reorgs_));
  }
  Status s = dbs_[i]->Reorganize();
  {
    std::lock_guard<std::mutex> lk(reorg_mu_);
    --active_reorgs_;
    ++reorgs_completed_;
  }
  reorg_slot_free_.notify_one();
  return s;
}

Status PartitionedDatabase::ReorganizeAll() {
  const size_t n = dbs_.size();
  size_t start;
  {
    std::lock_guard<std::mutex> lk(reorg_mu_);
    start = next_reorg_partition_ % n;
    next_reorg_partition_ = (start + 1) % n;
  }
  size_t runners = std::min(options_.max_concurrent_reorgs, n);
  std::atomic<size_t> cursor{0};
  std::mutex err_mu;
  Status first_err;
  auto work = [&]() {
    for (;;) {
      size_t k = cursor.fetch_add(1, std::memory_order_relaxed);
      if (k >= n) return;
      Status s = ReorganizePartition((start + k) % n);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (first_err.ok()) first_err = s;
      }
    }
  };
  if (runners <= 1) {
    work();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(runners);
    for (size_t t = 0; t < runners; ++t) threads.emplace_back(work);
    for (auto& t : threads) t.join();
  }
  return first_err;
}

Status PartitionedDatabase::Checkpoint() {
  for (auto& db : dbs_) {
    Status s = db->Checkpoint();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

PartitionedDBStats PartitionedDatabase::stats() const {
  PartitionedDBStats s;
  s.executor = executor_->stats();
  std::lock_guard<std::mutex> lk(reorg_mu_);
  s.reorgs_completed = reorgs_completed_;
  s.max_concurrent_reorgs_seen = max_concurrent_seen_;
  return s;
}

}  // namespace soreorg
