// Executor: the serving layer's thread-per-core request engine.
//
// One worker thread per core (or per configured lane), each consuming its own
// *bounded* MPSC request queue. Producers are the serving-layer entry points
// (PartitionedDatabase routes ops to the worker owning the target partition);
// the bound is the system's admission control — when a worker falls behind,
// requests wait for a slot up to their deadline and then fail with TimedOut
// instead of queueing unboundedly and amplifying the backlog.
//
// Deadline semantics (start deadlines):
//   * A request's deadline bounds time-to-start, i.e. queue wait — both the
//     wait for a free slot when the queue is full and the wait in the queue
//     for the worker. Once a task starts executing it runs to completion.
//   * deadline_ms == 0 uses ExecutorOptions::default_deadline_ms;
//     a resolved deadline of <= 0 means "no deadline" (wait indefinitely,
//     but still bounded in *space* by the queue capacity — a producer
//     blocks rather than growing the queue).
//
// Shutdown protocol: Shutdown() marks the executor draining, wakes every
// producer and worker, and joins the workers. A draining worker completes
// every queued-but-unstarted request with Aborted — requests are never
// dropped silently; every Submit()'s completion is invoked exactly once with
// OK/op status, TimedOut, or Aborted. The currently-executing task (if any)
// runs to completion.
//
// Inline fast path (inline_when_idle, default on): a synchronous Execute()
// finding its lane completely idle — empty queue AND no op in flight — runs
// the task on the *calling* thread instead of paying the wake/sleep handoff
// (two context switches per op on a loaded single core). The lane's `busy`
// flag keeps lane exclusivity: at most one op per lane executes at any
// instant, inline or on the worker, so per-lane serialization is unchanged —
// only the executing thread differs. The moment there is any backlog the op
// takes the queue like everyone else, which is exactly when the deadline
// machinery matters. Submit() (asynchronous) always queues.

#ifndef SOREORG_DB_EXECUTOR_H_
#define SOREORG_DB_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/status.h"

namespace soreorg {

struct ExecutorOptions {
  /// Worker (lane) count; 0 = auto: one per hardware thread, at least 1.
  int workers = 0;
  /// Per-worker queue bound. Producers finding the queue full wait for a
  /// slot up to the op deadline, then fail TimedOut.
  size_t queue_capacity = 1024;
  /// Default start-deadline for ops submitted with deadline_ms == 0.
  /// <= 0 means no deadline (producers block on a full queue).
  int64_t default_deadline_ms = 0;
  /// Run synchronous Execute() calls on the calling thread when the target
  /// lane is idle (see the header comment). Off = every op goes through the
  /// worker thread, preserving the strict "tasks run on the pinned worker"
  /// property some tests and schedules rely on.
  bool inline_when_idle = true;
};

struct ExecutorStats {
  uint64_t submitted = 0;
  uint64_t executed = 0;
  /// Never admitted: the queue stayed full until the op's deadline.
  uint64_t timed_out_queue_full = 0;
  /// Admitted but still queued at its deadline; failed without running.
  uint64_t timed_out_unstarted = 0;
  /// Queued-but-unstarted ops failed with Aborted by the shutdown drain.
  uint64_t aborted_at_shutdown = 0;
  /// High-water mark of any single worker queue.
  uint64_t max_queue_depth = 0;
};

class Executor {
 public:
  using Task = std::function<Status()>;
  using Completion = std::function<void(Status)>;

  explicit Executor(ExecutorOptions options);
  ~Executor();

  int workers() const { return static_cast<int>(lanes_.size()); }

  /// Asynchronous submission to worker `worker` (mod worker count). `done`
  /// is invoked exactly once — with the task's status from the worker
  /// thread, or with TimedOut/Aborted (possibly from the submitting thread
  /// when admission fails).
  void Submit(int worker, Task task, Completion done, int64_t deadline_ms = 0);

  /// Synchronous execution: inline on the calling thread when the lane is
  /// idle (and inline_when_idle is on), otherwise Submit + wait for the
  /// completion. Templated so the inline fast path calls the functor
  /// directly — no std::function is materialized unless the op queues.
  template <typename F>
  Status Execute(int worker, F&& task, int64_t deadline_ms = 0) {
    Lane* lane = lanes_[static_cast<size_t>(worker) % lanes_.size()].get();
    if (options_.inline_when_idle && TryClaimIdleLane(lane)) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      executed_.fetch_add(1, std::memory_order_relaxed);
      Status s = task();
      ReleaseInlineLane(lane);
      return s;
    }
    return ExecuteQueued(worker, Task(std::forward<F>(task)), deadline_ms);
  }

  /// Drain and join. Queued-but-unstarted ops fail with Aborted. Idempotent.
  void Shutdown();

  bool shutting_down() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  ExecutorStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Op {
    Task task;
    Completion done;
    Clock::time_point deadline;
    bool has_deadline = false;
  };

  struct Lane {
    std::mutex mu;
    std::condition_variable nonempty;
    std::condition_variable nonfull;
    std::deque<Op> queue;
    std::thread thread;
    uint64_t max_depth = 0;  // under mu
    /// An op is executing on this lane right now — on the worker or inline
    /// on a caller (under mu). Lane exclusivity: the worker and inline
    /// callers both acquire it before running a task.
    bool busy = false;
  };


  void WorkerMain(Lane* lane);
  /// Resolve a per-call deadline_ms against the options default.
  bool ResolveDeadline(int64_t deadline_ms, Clock::time_point* out) const;

  /// Claim the lane for inline execution iff it is completely idle: empty
  /// queue, no op in flight, not shutting down.
  bool TryClaimIdleLane(Lane* lane) {
    std::lock_guard<std::mutex> lk(lane->mu);
    if (shutdown_.load(std::memory_order_acquire) || !lane->queue.empty() ||
        lane->busy) {
      return false;
    }
    lane->busy = true;
    return true;
  }

  /// Release an inline claim; ops that queued behind it wait on
  /// (!empty && !busy), so the busy drop is their wake edge.
  void ReleaseInlineLane(Lane* lane) {
    bool wake_worker;
    {
      std::lock_guard<std::mutex> lk(lane->mu);
      lane->busy = false;
      wake_worker = !lane->queue.empty();
    }
    if (wake_worker) lane->nonempty.notify_one();
  }

  /// The queued half of Execute (admission, deadline, completion wait).
  Status ExecuteQueued(int worker, Task task, int64_t deadline_ms);

  ExecutorOptions options_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_join_mu_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> timed_out_queue_full_{0};
  std::atomic<uint64_t> timed_out_unstarted_{0};
  std::atomic<uint64_t> aborted_at_shutdown_{0};
};

}  // namespace soreorg

#endif  // SOREORG_DB_EXECUTOR_H_
