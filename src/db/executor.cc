#include "src/db/executor.h"

#include <algorithm>

namespace soreorg {

Executor::Executor(ExecutorOptions options) : options_(options) {
  int n = options_.workers;
  if (n <= 0) {
    unsigned hc = std::thread::hardware_concurrency();
    n = hc == 0 ? 1 : static_cast<int>(hc);
  }
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  lanes_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  for (auto& lane : lanes_) {
    Lane* l = lane.get();
    l->thread = std::thread([this, l]() { WorkerMain(l); });
  }
}

Executor::~Executor() { Shutdown(); }

bool Executor::ResolveDeadline(int64_t deadline_ms,
                               Clock::time_point* out) const {
  int64_t ms = deadline_ms == 0 ? options_.default_deadline_ms : deadline_ms;
  if (ms <= 0) return false;
  *out = Clock::now() + std::chrono::milliseconds(ms);
  return true;
}

void Executor::Submit(int worker, Task task, Completion done,
                      int64_t deadline_ms) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Op op;
  op.task = std::move(task);
  op.done = std::move(done);
  op.has_deadline = ResolveDeadline(deadline_ms, &op.deadline);

  size_t idx = static_cast<size_t>(worker) % lanes_.size();
  Lane* lane = lanes_[idx].get();
  bool was_empty;
  {
    std::unique_lock<std::mutex> lk(lane->mu);
    // Admission: wait for a slot, but never queue unboundedly. A deadline
    // turns slot starvation into TimedOut; without one the producer blocks
    // (backpressure) until the worker drains or shutdown begins.
    while (lane->queue.size() >= options_.queue_capacity &&
           !shutdown_.load(std::memory_order_acquire)) {
      if (op.has_deadline) {
        if (lane->nonfull.wait_until(lk, op.deadline) ==
            std::cv_status::timeout) {
          if (lane->queue.size() < options_.queue_capacity ||
              shutdown_.load(std::memory_order_acquire)) {
            break;  // slot freed (or drain took over) at the last instant
          }
          lk.unlock();
          timed_out_queue_full_.fetch_add(1, std::memory_order_relaxed);
          op.done(Status::TimedOut("request queue full past deadline"));
          return;
        }
      } else {
        lane->nonfull.wait(lk);
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      lk.unlock();
      aborted_at_shutdown_.fetch_add(1, std::memory_order_relaxed);
      op.done(Status::Aborted("executor shutting down"));
      return;
    }
    // Single consumer per lane: the worker only blocks when the queue is
    // empty, so a push onto a nonempty queue has no sleeper to wake — the
    // empty->nonempty transition carries the (futex-priced) notify and a
    // burst of submissions pays for one wakeup, not one per op.
    was_empty = lane->queue.empty();
    lane->queue.push_back(std::move(op));
    lane->max_depth = std::max(lane->max_depth,
                               static_cast<uint64_t>(lane->queue.size()));
  }
  if (was_empty) lane->nonempty.notify_one();
}

Status Executor::ExecuteQueued(int worker, Task task, int64_t deadline_ms) {
  struct WaitState {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    Status status;
  } wait;
  Submit(
      worker, std::move(task),
      [&wait](Status s) {
        std::lock_guard<std::mutex> lk(wait.mu);
        wait.status = std::move(s);
        wait.ready = true;
        wait.cv.notify_one();
      },
      deadline_ms);
  std::unique_lock<std::mutex> lk(wait.mu);
  wait.cv.wait(lk, [&wait]() { return wait.ready; });
  return wait.status;
}

void Executor::WorkerMain(Lane* lane) {
  for (;;) {
    Op op;
    {
      std::unique_lock<std::mutex> lk(lane->mu);
      // Lane exclusivity: wait out any inline caller (busy) as well as an
      // empty queue.
      lane->nonempty.wait(lk, [this, lane]() {
        return (!lane->queue.empty() && !lane->busy) ||
               shutdown_.load(std::memory_order_acquire);
      });
      if (shutdown_.load(std::memory_order_acquire)) {
        // Drain: every queued-but-unstarted op fails with Aborted — the
        // completion always fires, nothing is dropped silently.
        std::deque<Op> rest;
        rest.swap(lane->queue);
        lk.unlock();
        lane->nonfull.notify_all();
        for (Op& o : rest) {
          aborted_at_shutdown_.fetch_add(1, std::memory_order_relaxed);
          o.done(Status::Aborted("executor shutting down"));
        }
        return;
      }
      op = std::move(lane->queue.front());
      lane->queue.pop_front();
      // Hold the lane while the op runs so no inline caller overlaps it.
      lane->busy = true;
    }
    lane->nonfull.notify_one();

    if (op.has_deadline && Clock::now() > op.deadline) {
      timed_out_unstarted_.fetch_add(1, std::memory_order_relaxed);
      op.done(Status::TimedOut("queued past deadline"));
    } else {
      executed_.fetch_add(1, std::memory_order_relaxed);
      op.done(op.task());
    }
    {
      std::lock_guard<std::mutex> lk(lane->mu);
      lane->busy = false;
    }
  }
}

void Executor::Shutdown() {
  // Serializes concurrent Shutdown() callers (join must run once).
  std::lock_guard<std::mutex> join_guard(shutdown_join_mu_);
  if (!shutdown_.exchange(true, std::memory_order_acq_rel)) {
    for (auto& lane : lanes_) {
      // Taking the lane mutex orders the flag store against sleeping
      // producers/workers: anyone already inside a wait reloads the flag on
      // wake, anyone arriving later sees it before sleeping.
      { std::lock_guard<std::mutex> lk(lane->mu); }
      lane->nonempty.notify_all();
      lane->nonfull.notify_all();
    }
  }
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.timed_out_queue_full =
      timed_out_queue_full_.load(std::memory_order_relaxed);
  s.timed_out_unstarted =
      timed_out_unstarted_.load(std::memory_order_relaxed);
  s.aborted_at_shutdown =
      aborted_at_shutdown_.load(std::memory_order_relaxed);
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lk(lane->mu);
    s.max_queue_depth = std::max(s.max_queue_depth, lane->max_depth);
  }
  return s;
}

}  // namespace soreorg
