// PartitionedDatabase: the multi-tree serving layer.
//
// N independent Database instances (each its own B+tree, WAL/checkpoint
// namespace, lock manager, buffer pool, and reorganizer) behind one API. A
// router maps every key to exactly one partition — by key hash (default) or
// by explicit range boundaries — and a thread-per-core Executor carries the
// requests: each worker owns a bounded MPSC queue and serves the partitions
// that hash onto it, so a reorganization or a hot key in one partition
// cannot queue-starve the others.
//
//   * Point ops (Get/Put/Update/Delete/ReadModifyWrite) run on the routed
//     partition's worker; per-op deadlines bound queue wait and surface
//     TimedOut instead of queueing unboundedly (see executor.h).
//   * Scan merges the per-partition trees into one globally key-ordered
//     stream: batches are fetched from each partition (through the routed
//     worker) and k-way merged by smallest head key. Keys are unique across
//     partitions (the router is a function), so the merge never yields
//     duplicates.
//   * Reorganization is per-partition: ReorganizePartition(i) runs the
//     paper's three passes on tree i only, while the other partitions keep
//     serving untouched. ReorganizeAll() walks the partitions round-robin
//     (rotating its starting point call-to-call) under a global
//     concurrent-reorg cap, so at most `max_concurrent_reorgs` trees pay
//     reorganization cost at any instant.
//
// With partitions == 1 the router is constant and the scan merge is a
// passthrough: behavior is identical to a plain Database (pinned by
// partitioned_db_test), the executor adding only admission control.

#ifndef SOREORG_DB_PARTITIONED_DB_H_
#define SOREORG_DB_PARTITIONED_DB_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/db/executor.h"

namespace soreorg {

enum class PartitioningScheme {
  /// fmix64 over the key bytes, mod N. Spreads any workload; scans touch
  /// every partition (the merge reassembles global order).
  kHash,
  /// Partition i serves [boundaries[i-1], boundaries[i]); requires
  /// `range_boundaries` (sorted, size N-1). Scans touch only the
  /// partitions overlapping [lo, hi].
  kRange,
};

struct PartitionedDBOptions {
  size_t partitions = 4;
  PartitioningScheme scheme = PartitioningScheme::kHash;
  /// kRange split keys: partition 0 is (-inf, boundaries[0]), partition i
  /// is [boundaries[i-1], boundaries[i]), the last [boundaries[N-2], +inf).
  std::vector<std::string> range_boundaries;

  /// Template for every partition. `base.name` is the namespace prefix:
  /// partition i's files are "<name>.p<i>.{pages,wal,ckpt}".
  DatabaseOptions base;

  ExecutorOptions executor;

  /// Global cap on concurrently reorganizing partitions.
  size_t max_concurrent_reorgs = 1;

  /// Records pulled per partition per fetch during a merged Scan.
  size_t scan_batch = 64;
};

struct PartitionedDBStats {
  ExecutorStats executor;
  uint64_t reorgs_completed = 0;
  /// High-water mark of concurrently running partition reorganizations
  /// (never exceeds max_concurrent_reorgs).
  uint64_t max_concurrent_reorgs_seen = 0;
};

class PartitionedDatabase {
 public:
  static Status Open(Env* env, PartitionedDBOptions options,
                     std::unique_ptr<PartitionedDatabase>* out);

  /// Shuts down the executor (queued-but-unstarted ops fail Aborted), then
  /// closes every partition.
  ~PartitionedDatabase();

  // --- user operations (deadline_ms: 0 = executor default, <0 = none) ------
  Status Put(const Slice& key, const Slice& value, int64_t deadline_ms = 0);
  Status Update(const Slice& key, const Slice& value, int64_t deadline_ms = 0);
  Status Delete(const Slice& key, int64_t deadline_ms = 0);
  Status Get(const Slice& key, std::string* value, int64_t deadline_ms = 0);
  /// Get + modify + Update as one routed request (the YCSB-F primitive).
  /// `modify` receives the current value; absent keys return NotFound.
  Status ReadModifyWrite(const Slice& key,
                         const std::function<std::string(const std::string&)>&
                             modify,
                         int64_t deadline_ms = 0);

  // --- asynchronous variants (completion runs on the worker thread) --------
  void AsyncGet(const Slice& key, std::string* value, Executor::Completion done,
                int64_t deadline_ms = 0);
  void AsyncPut(const Slice& key, const Slice& value, Executor::Completion done,
                int64_t deadline_ms = 0);
  void AsyncUpdate(const Slice& key, const Slice& value,
                   Executor::Completion done, int64_t deadline_ms = 0);
  void AsyncReadModifyWrite(
      const Slice& key,
      std::function<std::string(const std::string&)> modify,
      Executor::Completion done, int64_t deadline_ms = 0);

  /// Globally key-ordered scan of [lo, hi] across all partitions; cb returns
  /// false to stop. Batches are fetched through the executor (deadline per
  /// fetch).
  Status Scan(const Slice& lo, const Slice& hi,
              const std::function<bool(const Slice&, const Slice&)>& cb,
              int64_t deadline_ms = 0);

  /// Bottom-up initial load: `sorted_records` is routed and each partition
  /// bulk-loaded at the given fill factors. The partitions must be empty.
  Status BulkLoad(
      const std::vector<std::pair<std::string, std::string>>& sorted_records,
      double leaf_fill, double internal_fill = 0.9);

  // --- reorganization ------------------------------------------------------
  /// Run the three passes on partition i, counted against the global
  /// concurrent-reorg cap (blocks for a slot if the cap is reached).
  Status ReorganizePartition(size_t i);
  /// Reorganize every partition once, round-robin from a rotating starting
  /// point, with at most max_concurrent_reorgs running at a time. Returns
  /// the first non-OK partition status (all partitions are still attempted).
  Status ReorganizeAll();

  /// Checkpoint every partition.
  Status Checkpoint();

  // --- introspection -------------------------------------------------------
  size_t partitions() const { return dbs_.size(); }
  /// The router: which partition serves `key`. Total and deterministic —
  /// every key maps to exactly one partition.
  size_t PartitionOf(const Slice& key) const;
  /// Worker lane serving partition i.
  int WorkerOf(size_t partition) const;
  Database* partition(size_t i) { return dbs_[i].get(); }
  Executor* executor() { return executor_.get(); }
  PartitionedDBStats stats() const;
  const PartitionedDBOptions& options() const { return options_; }

 private:
  explicit PartitionedDatabase(PartitionedDBOptions options)
      : options_(std::move(options)) {}

  PartitionedDBOptions options_;
  std::vector<std::unique_ptr<Database>> dbs_;
  std::unique_ptr<Executor> executor_;

  // Reorg admission: cap + round-robin cursor + stats, all under reorg_mu_.
  mutable std::mutex reorg_mu_;
  std::condition_variable reorg_slot_free_;
  size_t active_reorgs_ = 0;
  size_t next_reorg_partition_ = 0;
  uint64_t reorgs_completed_ = 0;
  uint64_t max_concurrent_seen_ = 0;
};

}  // namespace soreorg

#endif  // SOREORG_DB_PARTITIONED_DB_H_
