// Database: the embedding facade. Wires Env → DiskManager → BufferPool →
// LogManager → LockManager → TransactionManager → BTree → SideFile →
// Reorganizer, and runs restart recovery (including Forward Recovery for an
// interrupted reorganization unit) on Open.
//
// Quickstart:
//   soreorg::MemEnv env;
//   soreorg::DatabaseOptions opts;
//   std::unique_ptr<soreorg::Database> db;
//   soreorg::Database::Open(&env, opts, &db);
//   db->Put("key", "value");
//   std::string v;
//   db->Get("key", &v);
//   db->Reorganize();   // the paper's three passes

#ifndef SOREORG_DB_DATABASE_H_
#define SOREORG_DB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/btree/btree.h"
#include "src/recovery/recovery_manager.h"
#include "src/reorg/reorganizer.h"
#include "src/reorg/side_file.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/env.h"
#include "src/txn/lock_manager.h"
#include "src/txn/txn_manager.h"
#include "src/wal/checkpoint.h"
#include "src/wal/log_manager.h"

namespace soreorg {

struct DatabaseOptions {
  size_t buffer_pool_pages = 4096;
  /// Buffer-pool shard count; 0 = auto (16, scaled down for small pools).
  /// 1 gives the old single-mutex pool with exact global-LRU semantics.
  size_t buffer_pool_shards = 0;
  /// Lock-table stripe count; 0 = auto (16). 1 gives the old single-mutex
  /// lock manager with exact legacy wait/wake semantics.
  size_t lock_table_stripes = 0;
  /// WAL group-commit buffer cap (see LogManager::set_buffer_limit).
  size_t log_buffer_bytes = 256 * 1024;
  /// WAL segment size; the log rotates to <prefix>.wal.NNNNNN files of this
  /// size. 0 = unbounded (a single segment, the pre-segmentation behavior).
  uint64_t wal_segment_bytes = 4 * 1024 * 1024;
  /// Truncated WAL segments are parked for reuse up to this pool size;
  /// beyond it they are deleted.
  size_t wal_recycle_segments = 2;
  /// Drop WAL segments wholly below the recovery floor at each checkpoint.
  /// The floor respects the redo LSN, the checkpoint record, active
  /// transactions' undo chains, and an open reorganization unit.
  bool wal_truncate_on_checkpoint = true;
  /// Redo worker count at recovery: 1 = serial replay (the verification
  /// oracle), 0 = auto (min(4, hardware threads)), N>1 = partitioned
  /// parallel redo over page-disjoint components.
  int redo_threads = 1;
  /// Log one line of recovery forensics to stderr from Open.
  bool verbose_recovery = false;
  /// Latch-free read path for ephemeral point reads and scan batches
  /// (copied into tree.optimistic_reads at Open). With it off, every read
  /// takes exactly the Table-1 locks it took before the optimistic path
  /// existed — lock traces are identical.
  bool optimistic_reads = true;
  BTreeOptions tree;
  ReorganizerOptions reorg;
  RecoveryPolicy recovery_policy = RecoveryPolicy::kForward;
  /// File name prefix: <prefix>.pages, <prefix>.wal, <prefix>.ckpt.
  std::string name = "soreorg";
};

class Database {
 public:
  /// Open (creating if empty) the database, running restart recovery —
  /// redo, loser undo, and (policy-dependent) forward recovery of an
  /// interrupted reorganization unit.
  static Status Open(Env* env, DatabaseOptions options,
                     std::unique_ptr<Database>* db);

  ~Database();

  // --- transactions ---------------------------------------------------------
  Transaction* Begin();
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  // --- auto-commit convenience ops -------------------------------------------
  Status Put(const Slice& key, const Slice& value);
  Status Update(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value);
  Status Scan(const Slice& lo, const Slice& hi,
              const std::function<bool(const Slice&, const Slice&)>& cb);

  /// Bottom-up initial load from sorted records at the given fill factor.
  /// Replaces the current (must-be-empty) tree; checkpoints afterwards.
  Status BulkLoad(
      const std::vector<std::pair<std::string, std::string>>& sorted_records,
      double leaf_fill, double internal_fill = 0.9);

  // --- reorganization ----------------------------------------------------------
  /// All three passes with the configured options.
  Status Reorganize();
  Reorganizer* reorganizer() { return reorganizer_.get(); }

  /// True when a pass-3 build was interrupted by the crash this Open
  /// recovered from; ResumeInternalPass() continues it (§7.3).
  bool pass3_pending() const { return pass3_pending_; }
  Status ResumeInternalPass();

  // --- durability ---------------------------------------------------------------
  /// Flush + fsync everything and write a checkpoint record.
  Status Checkpoint();

  // --- accessors ------------------------------------------------------------------
  BTree* tree() { return tree_.get(); }
  BufferPool* buffer_pool() { return bp_.get(); }
  LogManager* log_manager() { return log_.get(); }
  LockManager* lock_manager() { return &locks_; }
  TransactionManager* txn_manager() { return txn_mgr_.get(); }
  DiskManager* disk_manager() { return disk_.get(); }
  SideFile* side_file() { return side_file_.get(); }
  ReorgTable* reorg_table() { return &reorg_table_; }
  const RecoveryResult& recovery_result() const { return recovery_result_; }
  const DatabaseOptions& options() const { return options_; }

 private:
  explicit Database(DatabaseOptions options)
      : options_(std::move(options)), locks_(options_.lock_table_stripes) {}

  DatabaseOptions options_;
  Env* env_ = nullptr;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<CheckpointMaster> master_;
  std::unique_ptr<BufferPool> bp_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> txn_mgr_;
  std::unique_ptr<SideFile> side_file_;
  ReorgTable reorg_table_;
  std::unique_ptr<BTree> tree_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<Reorganizer> reorganizer_;

  RecoveryResult recovery_result_;
  bool pass3_pending_ = false;
};

}  // namespace soreorg

#endif  // SOREORG_DB_DATABASE_H_
