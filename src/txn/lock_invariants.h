// LockInvariantChecker: machine-checked enforcement of the paper's lock
// protocol (Table 1, §4.1) at every grant/convert/release.
//
// The entire correctness argument of the reorganizer rides on a handful of
// invariants that ordinary tests only exercise incidentally:
//
//   (a) the set of concurrently *granted* modes on a lock name is pairwise
//       compatible per Table 1;
//   (b) RS is never present as a granted holder (it is an instant-duration
//       wait mode, §4.1.2 / Mohan '90);
//   (c) RX is held only by the reorganizer (kReorgTxnId) and only on
//       leaf-page names (§4.1.1);
//   (d) a waits-for cycle never survives a victim-kill round: once a victim
//       is chosen, every one of its pending waits is marked killed, so no
//       cycle can still route through it;
//   (e) when the reorganizer sits anywhere in a detected cycle, it — and
//       only it — is chosen as the victim (§4.1 "the reorganizer loses");
//   (f) inside a switch window (§7.4, bracketed by NoteSwitchEnter /
//       NoteSwitchExit), the reorganizer holds X on the *old* tree lock only
//       while it also holds the side-file X lock. The step-aside protocol
//       deliberately releases and re-acquires the side-file X lock mid-switch
//       — but only while it does NOT hold the old tree lock, so a drain can
//       never run concurrently with a recording updater. An old-tree X grant
//       without the side-file X is exactly that race.
//   (g) optimistic-mark: whenever a page-lock queue has a granted holder
//       whose mode is incompatible with S (X, IX, RX), the manager's
//       lock-free page-mark counter for that page must be non-zero — this is
//       the signal latch-free readers use to fall back to the Table-1 S-lock
//       path instead of skipping the lock manager. A marking holder without
//       a mark would let an optimistic reader slide past an exclusive page
//       lock. Checked only when the checker is attached to a LockManager
//       (set_lock_manager); standalone checkers driven by hand-built holder
//       maps skip it.
//
// The checker is wired into LockManager behind a single pointer test: debug
// and sanitizer builds (!NDEBUG or SOREORG_LOCK_INVARIANTS) install one by
// default that aborts the process on the first violation; release builds
// leave the pointer null, so the cost is one branch per lock event. Tests
// install their own checker with a recording handler to assert that a
// deliberately seeded violation is caught (negative testing) or that a
// workload stays clean.
//
// All Check* entry points are called by LockManager with its mutex held.

#ifndef SOREORG_TXN_LOCK_INVARIANTS_H_
#define SOREORG_TXN_LOCK_INVARIANTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/txn/lock_mode.h"
#include "src/wal/log_record.h"  // TxnId

namespace soreorg {

class LockManager;
struct LockName;

struct LockViolation {
  /// Stable identifier of the broken invariant: "table1-compatibility",
  /// "rs-granted", "rx-ownership", "rx-name-space", "rx-not-leaf",
  /// "victim-policy", "surviving-cycle", "switch-window", "optimistic-mark".
  std::string invariant;
  std::string detail;
};

class LockInvariantChecker {
 public:
  using Handler = std::function<void(const LockViolation&)>;

  /// With a null handler, a violation prints the full detail to stderr and
  /// aborts — the right behaviour for debug/sanitizer builds where a broken
  /// protocol must not be allowed to silently corrupt an experiment.
  explicit LockInvariantChecker(Handler handler = nullptr);

  /// Optional refinement of invariant (c): when set, an RX grant on page id
  /// `id` with `pred(id) == false` is a violation. Without it the checker
  /// still enforces the kPage name space and the kReorgTxnId owner.
  void set_leaf_page_predicate(std::function<bool(uint64_t)> pred);

  /// Enables invariant (g) by pointing the checker at the manager whose
  /// page-mark counters should agree with the holder maps it is shown.
  /// LockManager calls this when a checker is installed; a checker used
  /// standalone (direct CheckHolders calls in tests) leaves it null and
  /// invariant (g) is skipped.
  void set_lock_manager(const LockManager* lm);

  uint64_t violations() const { return violations_; }
  const std::vector<LockViolation>& recorded() const { return recorded_; }
  void Reset();

  /// Invariant (f) bracketing. The Switcher calls NoteSwitchEnter with the
  /// old tree's incarnation after flipping the root and NoteSwitchExit just
  /// before it gives up the side-file X lock for the last time. Outside the
  /// window an old-tree X grant is unremarkable (pass-1/2 unit tests take
  /// tree locks freely), so the check is window-gated. Both are safe to call
  /// with no manager mutex held; the tracked state is atomic because
  /// CheckHolders fires from whichever stripe mutex owns the touched name.
  void NoteSwitchEnter(uint64_t old_incarnation);
  void NoteSwitchExit();

  // --- hooks called by LockManager (mu_ held) ------------------------------

  /// Invariants (a)–(c) over the holders of one lock name, re-validated on
  /// every grant, conversion, downgrade, and (defensively) release.
  void CheckHolders(const LockName& name,
                    const std::map<TxnId, LockMode>& holders);

  /// Invariant (e): `victim` was just chosen for a cycle closed by
  /// `requester`; `reorg_in_cycle` says whether kReorgTxnId was a member.
  void CheckVictimChoice(TxnId requester, TxnId victim, bool reorg_in_cycle);

  /// Invariant (d): called after the kill round for `victim`; walks the
  /// manager's queues and reports any still-live wait owned by the victim
  /// (which would let the supposedly broken cycle survive).
  void CheckKillRound(const LockManager& lm, TxnId victim);

 private:
  void Report(const char* invariant, std::string detail);

  Handler handler_;
  std::function<bool(uint64_t)> leaf_pred_;
  // Invariant (g): atomic because CheckHolders fires under whichever stripe
  // mutex owns the touched name while installation happens on another thread.
  std::atomic<const LockManager*> lm_{nullptr};
  uint64_t violations_ = 0;
  std::vector<LockViolation> recorded_;

  // Invariant (f) state. switch_window_/switch_old_inc_ are written only by
  // the switcher thread via the Note* brackets; reorg_holds_side_x_ is
  // derived by CheckHolders every time the side-file queue changes.
  std::atomic<bool> switch_window_{false};
  std::atomic<uint64_t> switch_old_inc_{0};
  std::atomic<bool> reorg_holds_side_x_{false};
};

}  // namespace soreorg

#endif  // SOREORG_TXN_LOCK_INVARIANTS_H_
