#include "src/txn/transaction.h"

// Transaction is header-only today; this TU anchors the vtable-free type for
// build hygiene and future growth.
