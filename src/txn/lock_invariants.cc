#include "src/txn/lock_invariants.h"

#include <cstdio>
#include <cstdlib>

#include "src/txn/lock_manager.h"

namespace soreorg {

namespace {

const char* SpaceName(LockSpace s) {
  switch (s) {
    case LockSpace::kTree:
      return "tree";
    case LockSpace::kPage:
      return "page";
    case LockSpace::kRecord:
      return "record";
    case LockSpace::kSideFile:
      return "side-file";
    case LockSpace::kSideKey:
      return "side-key";
  }
  return "?";
}

std::string NameString(const LockName& name) {
  return std::string(SpaceName(name.space)) + "/" + std::to_string(name.id);
}

}  // namespace

LockInvariantChecker::LockInvariantChecker(Handler handler)
    : handler_(std::move(handler)) {}

void LockInvariantChecker::set_leaf_page_predicate(
    std::function<bool(uint64_t)> pred) {
  leaf_pred_ = std::move(pred);
}

void LockInvariantChecker::set_lock_manager(const LockManager* lm) {
  lm_.store(lm, std::memory_order_release);
}

void LockInvariantChecker::Reset() {
  violations_ = 0;
  recorded_.clear();
}

void LockInvariantChecker::Report(const char* invariant, std::string detail) {
  ++violations_;
  LockViolation v{invariant, std::move(detail)};
  if (handler_) {
    recorded_.push_back(v);
    handler_(v);
    return;
  }
  std::fprintf(stderr, "lock invariant violated [%s]: %s\n", v.invariant.c_str(),
               v.detail.c_str());
  std::abort();
}

void LockInvariantChecker::NoteSwitchEnter(uint64_t old_incarnation) {
  switch_old_inc_.store(old_incarnation);
  switch_window_.store(true);
}

void LockInvariantChecker::NoteSwitchExit() { switch_window_.store(false); }

void LockInvariantChecker::CheckHolders(
    const LockName& name, const std::map<TxnId, LockMode>& holders) {
  // Invariant (f) bookkeeping: track whether the reorganizer currently holds
  // the side-file X lock, and — inside a switch window — flag any old-tree X
  // grant taken without it.
  if (name.space == LockSpace::kSideFile) {
    auto side = holders.find(kReorgTxnId);
    reorg_holds_side_x_.store(side != holders.end() &&
                              side->second == LockMode::kX);
  }
  if (switch_window_.load() && name.space == LockSpace::kTree &&
      name.id == switch_old_inc_.load()) {
    auto tree = holders.find(kReorgTxnId);
    if (tree != holders.end() && tree->second == LockMode::kX &&
        !reorg_holds_side_x_.load()) {
      Report("switch-window",
             "reorganizer granted X on " + NameString(name) +
                 " inside the switch window without holding the side-file X "
                 "lock; a drain could race a recording updater");
    }
  }
  // Invariant (g): a page-lock holder that conflicts with S must be visible
  // to latch-free readers through the manager's page-mark counter, or an
  // optimistic read could slide past an exclusive page lock. The manager
  // calls CheckHolders after NoteHolderChange at every mutation, so the mark
  // is already up to date for this holder map. Hash collisions across the
  // mark slots can only make the counter larger, never zero while a marking
  // holder exists.
  if (const LockManager* lm = lm_.load(std::memory_order_acquire);
      lm != nullptr && name.space == LockSpace::kPage) {
    for (const auto& [txn, mode] : holders) {
      if (!LockCompatible(mode, LockMode::kS) &&
          !lm->PageSharedReadBlocked(static_cast<uint32_t>(name.id))) {
        Report("optimistic-mark",
               "txn " + std::to_string(txn) + " holds " + LockModeName(mode) +
                   " on " + NameString(name) +
                   " but the page-mark counter is zero; latch-free readers "
                   "would not fall back to the S-lock path");
        break;
      }
    }
  }
  for (auto it = holders.begin(); it != holders.end(); ++it) {
    const auto& [txn, mode] = *it;
    if (mode == LockMode::kRS) {
      Report("rs-granted", "txn " + std::to_string(txn) +
                               " holds RS on " + NameString(name) +
                               "; RS is instant-duration and never granted");
    }
    if (mode == LockMode::kRX) {
      if (txn != kReorgTxnId) {
        Report("rx-ownership", "txn " + std::to_string(txn) + " holds RX on " +
                                   NameString(name) +
                                   "; only the reorganizer may hold RX");
      }
      if (name.space != LockSpace::kPage) {
        Report("rx-name-space",
               "RX held on " + NameString(name) +
                   "; RX applies only to leaf pages in the current unit");
      } else if (leaf_pred_ && !leaf_pred_(name.id)) {
        Report("rx-not-leaf", "RX held on non-leaf page " +
                                  std::to_string(name.id) +
                                  "; RX applies only to leaf pages");
      }
    }
    // Pairwise Table-1 compatibility of concurrently granted modes.
    for (auto jt = std::next(it); jt != holders.end(); ++jt) {
      const auto& [other, other_mode] = *jt;
      if (!LockCompatible(mode, other_mode) ||
          !LockCompatible(other_mode, mode)) {
        Report("table1-compatibility",
               std::string(LockModeName(mode)) + " (txn " +
                   std::to_string(txn) + ") and " + LockModeName(other_mode) +
                   " (txn " + std::to_string(other) +
                   ") granted together on " + NameString(name));
      }
    }
  }
}

void LockInvariantChecker::CheckVictimChoice(TxnId requester, TxnId victim,
                                             bool reorg_in_cycle) {
  if ((reorg_in_cycle || requester == kReorgTxnId) && victim != kReorgTxnId) {
    Report("victim-policy",
           "cycle closed by txn " + std::to_string(requester) +
               " contains the reorganizer but victim is txn " +
               std::to_string(victim) + "; the reorganizer always loses");
  }
}

void LockInvariantChecker::CheckKillRound(const LockManager& lm, TxnId victim) {
  // Every pending wait of the victim must now carry the killed mark; a live
  // wait would let the cycle the victim was chosen to break survive intact.
  // Called from the deadlock sweep with every stripe mutex held, so the
  // walk over the striped table is a consistent snapshot.
  for (const auto& stripe : lm.stripes_) {
    for (const auto& [name, q] : stripe.queues) {
      for (const LockManager::Waiter* w : q.waiters) {
        if (w->txn == victim && !w->killed && !w->granted) {
          Report("surviving-cycle",
                 "victim txn " + std::to_string(victim) +
                     " still has a live wait for " + LockModeName(w->mode) +
                     " on " + NameString(name) + " after its kill round");
        }
      }
    }
  }
}

}  // namespace soreorg
