#include "src/txn/txn_manager.h"

#include <optional>

#include "src/storage/buffer_pool.h"

namespace soreorg {

TransactionManager::TransactionManager(LogManager* log, LockManager* locks,
                                       BufferPool* bp)
    : log_(log), locks_(locks), bp_(bp) {}

void TransactionManager::set_undo_applier(UndoApplier applier) {
  undo_applier_ = std::move(applier);
}

Transaction* TransactionManager::Begin() {
  std::lock_guard<std::mutex> g(mu_);
  TxnId id = next_txn_id_++;
  auto txn = std::make_unique<Transaction>(id);
  Transaction* raw = txn.get();
  active_[id] = std::move(txn);
  return raw;
}

Status TransactionManager::Commit(Transaction* txn) {
  // Apply scope (when wired): outcome record and active-table removal on
  // the same side of a concurrent checkpoint's redo floor.
  std::optional<BufferPool::ApplyScope> apply_scope;
  if (bp_ != nullptr) apply_scope.emplace(bp_);
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn_id = txn->id();
  rec.prev_lsn = txn->last_lsn();
  Status s = log_->AppendAndFlush(&rec);
  if (!s.ok()) {
    // The commit record never reached the log, so recovery will roll this
    // transaction back — but the lock table is process-local state and must
    // not keep the dead transaction's locks alive, or every later request
    // for them waits on a holder that will never release (no cycle, so the
    // deadlock detector never intervenes).
    Discard(txn, TxnState::kAborted);
    return s;
  }
  txn->set_state(TxnState::kCommitted);
  locks_->ReleaseAll(txn->id());
  ++commits_;
  Forget(txn);
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  // Walk the prev_lsn chain backwards, applying inverses.
  Lsn cur = txn->last_lsn();
  while (cur != kInvalidLsn) {
    LogRecord rec;
    Status s = log_->ReadAt(cur, &rec);
    if (!s.ok()) {
      // The record may still be in the WAL buffer: flush and retry once.
      log_->Flush();
      s = log_->ReadAt(cur, &rec);
      if (!s.ok()) {
        Discard(txn, TxnState::kAborted);
        return s;
      }
    }
    if (rec.type == LogType::kClr) {
      cur = rec.lsn2;  // undo-next pointer skips already-undone work
      continue;
    }
    if (undo_applier_ &&
        (rec.type == LogType::kInsert || rec.type == LogType::kDelete ||
         rec.type == LogType::kUpdate || rec.type == LogType::kSideInsert ||
         rec.type == LogType::kSideCancel)) {
      s = undo_applier_(rec, txn);
      if (!s.ok()) {
        Discard(txn, TxnState::kAborted);
        return s;
      }
    }
    cur = rec.prev_lsn;
  }
  std::optional<BufferPool::ApplyScope> apply_scope;
  if (bp_ != nullptr) apply_scope.emplace(bp_);
  LogRecord rec;
  rec.type = LogType::kAbort;
  rec.txn_id = txn->id();
  rec.prev_lsn = txn->last_lsn();
  Status s = log_->AppendAndFlush(&rec);
  if (!s.ok()) {
    Discard(txn, TxnState::kAborted);
    return s;
  }
  txn->set_state(TxnState::kAborted);
  locks_->ReleaseAll(txn->id());
  ++aborts_;
  Forget(txn);
  return Status::OK();
}

void TransactionManager::Discard(Transaction* txn, TxnState state) {
  // Failure cleanup: the WAL could not record the outcome (or undo could not
  // run), so recovery owns the durable state — but the in-memory lock table
  // and active set must still drop the transaction, or its locks outlive it
  // for the rest of the process with no waiter ever able to acquire them.
  txn->set_state(state);
  locks_->ReleaseAll(txn->id());
  Forget(txn);
}

void TransactionManager::Forget(Transaction* txn) {
  std::lock_guard<std::mutex> g(mu_);
  active_.erase(txn->id());
}

std::vector<std::pair<TxnId, Lsn>> TransactionManager::ActiveSnapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::pair<TxnId, Lsn>> out;
  out.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    out.emplace_back(id, txn->last_lsn());
  }
  return out;
}

Lsn TransactionManager::OldestActiveFirstLsn() const {
  std::lock_guard<std::mutex> g(mu_);
  Lsn oldest = kInvalidLsn;
  for (const auto& [id, txn] : active_) {
    Lsn first = txn->first_lsn();
    if (first == kInvalidLsn) continue;
    if (oldest == kInvalidLsn || first < oldest) oldest = first;
  }
  return oldest;
}

TxnId TransactionManager::next_txn_id() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_txn_id_;
}

void TransactionManager::RestoreNextTxnId(TxnId next) {
  std::lock_guard<std::mutex> g(mu_);
  if (next > next_txn_id_) next_txn_id_ = next;
}

}  // namespace soreorg
