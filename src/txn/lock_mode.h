// Lock modes and the paper's Table 1 compatibility matrix.
//
// Standard multi-granularity modes (IS, IX, S, X) plus the paper's three new
// modes:
//   R  — reorganizer share on *base pages* while it reads them before
//        modifying keys; compatible with S so readers keep flowing.
//   RX — reorganizer exclusive on *leaf pages* in the current reorganization
//        unit. Incompatible with every mode — and, uniquely, a conflicting
//        request does not queue: the lock manager tells the requester to back
//        off (Status::kBackoff), release its parent lock, and wait via an
//        instant-duration RS lock on the parent base page.
//   RS — "reorganizer stalled" wait mode: an unconditional *instant duration*
//        lock (Mohan '90). It is never actually granted; the request call
//        returns success only once the mode would be grantable — i.e. once
//        the reorganizer has released its R/X lock on the base page.

#ifndef SOREORG_TXN_LOCK_MODE_H_
#define SOREORG_TXN_LOCK_MODE_H_

#include <cstdint>

namespace soreorg {

enum class LockMode : uint8_t {
  kIS = 0,
  kIX = 1,
  kS = 2,
  kX = 3,
  kR = 4,
  kRX = 5,
  kRS = 6,
};

constexpr int kNumLockModes = 7;

/// True iff a lock in `requested` can be granted while `granted` is held by
/// another transaction. This is Table 1 of the paper (blanks resolved to
/// their semantically forced values; see lock_mode.cc).
bool LockCompatible(LockMode granted, LockMode requested);

/// True iff holding `held` already satisfies a request for `wanted`
/// (e.g. X covers S; R covers S on a base page).
bool LockCovers(LockMode held, LockMode wanted);

/// The combined mode after a holder of `held` additionally requests
/// `wanted` (lock conversion target). kRS inputs act as identity: RS is an
/// instant-duration wait mode that is never actually held, so it adds
/// nothing to a conversion target (and LockManager::LockImpl never routes
/// instant requests through conversion in the first place).
LockMode LockSupremum(LockMode held, LockMode wanted);

const char* LockModeName(LockMode m);

}  // namespace soreorg

#endif  // SOREORG_TXN_LOCK_MODE_H_
