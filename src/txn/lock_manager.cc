#include "src/txn/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "src/txn/lock_invariants.h"

namespace soreorg {

LockName TreeLock(uint64_t tree_incarnation) {
  return LockName{LockSpace::kTree, tree_incarnation};
}
LockName PageLock(uint32_t page_id) {
  return LockName{LockSpace::kPage, page_id};
}
LockName RecordLock(const std::string& key) {
  return LockName{LockSpace::kRecord, std::hash<std::string>{}(key)};
}
LockName SideFileLock() { return LockName{LockSpace::kSideFile, 0}; }
LockName SideKeyLock(const std::string& key) {
  return LockName{LockSpace::kSideKey, std::hash<std::string>{}(key)};
}

const char* LockEventName(LockEvent e) {
  switch (e) {
    case LockEvent::kRequest:
      return "request";
    case LockEvent::kWait:
      return "wait";
    case LockEvent::kGranted:
      return "granted";
    case LockEvent::kInstantGranted:
      return "instant-granted";
    case LockEvent::kBusy:
      return "busy";
    case LockEvent::kBackoff:
      return "backoff";
    case LockEvent::kDeadlock:
      return "deadlock";
    case LockEvent::kTimeout:
      return "timeout";
    case LockEvent::kUnlock:
      return "unlock";
    case LockEvent::kReleaseAll:
      return "release-all";
  }
  return "?";
}

LockManager::LockManager() {
#if !defined(NDEBUG) || defined(SOREORG_LOCK_INVARIANTS)
  // Debug / sanitizer builds machine-check the Table-1 protocol on every
  // grant; a violation aborts. Release builds leave checker_ null, so every
  // lock operation pays exactly one pointer test.
  default_checker_ = std::make_unique<LockInvariantChecker>();
  checker_ = default_checker_.get();
#endif
}

LockManager::~LockManager() = default;

void LockManager::SetEventHook(EventHook hook) {
  event_hook_ = std::move(hook);
}

void LockManager::SetInvariantChecker(LockInvariantChecker* checker) {
  checker_ = checker != nullptr ? checker : default_checker_.get();
}

void LockManager::Notify(LockEvent e, TxnId txn, const LockName& name,
                         LockMode mode) {
  if (event_hook_) event_hook_(e, txn, name, mode);
}

void LockManager::LockedCheckHolders(const LockName& name, const Queue& q) {
  if (checker_) checker_->CheckHolders(name, q.holders);
}

void LockManager::CheckInvariantsNow() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [name, q] : queues_) LockedCheckHolders(name, q);
}

void LockManager::ForceGrantForTest(TxnId txn, const LockName& name,
                                    LockMode mode) {
  std::lock_guard<std::mutex> g(mu_);
  Queue& q = queues_[name];
  if (q.holders.find(txn) == q.holders.end()) held_[txn].push_back(name);
  q.holders[txn] = mode;
  LockedCheckHolders(name, q);
}

bool LockManager::LockedConflictsWithGrantedRX(const Queue& q, TxnId txn,
                                               LockMode mode) const {
  for (const auto& [holder, held] : q.holders) {
    if (holder == txn) continue;
    if (held == LockMode::kRX && !LockCompatible(held, mode)) return true;
  }
  return false;
}

bool LockManager::LockedGrantable(const Queue& q, TxnId txn, LockMode mode,
                                  bool skip_queue_check,
                                  const Waiter* self) const {
  for (const auto& [holder, held] : q.holders) {
    if (holder == txn) continue;
    if (!LockCompatible(held, mode)) return false;
  }
  if (!skip_queue_check) {
    // FIFO fairness: a fresh request must not overtake an earlier durable
    // waiter it conflicts with (conversions and instant waiters excepted).
    for (const Waiter* w : q.waiters) {
      if (w == self) break;
      if (w->txn == txn || w->instant || w->killed) continue;
      if (!LockCompatible(w->mode, mode)) return false;
    }
  }
  return true;
}

void LockManager::LockedBuildWaitsFor(
    std::unordered_map<TxnId, std::vector<TxnId>>* graph) const {
  for (const auto& [name, q] : queues_) {
    for (auto it = q.waiters.begin(); it != q.waiters.end(); ++it) {
      const Waiter* w = *it;
      if (w->killed || w->granted) continue;
      for (const auto& [holder, held] : q.holders) {
        if (holder != w->txn && !LockCompatible(held, w->mode)) {
          (*graph)[w->txn].push_back(holder);
        }
      }
      if (!w->converting) {
        for (auto jt = q.waiters.begin(); jt != it; ++jt) {
          const Waiter* e = *jt;
          if (e->txn == w->txn || e->instant || e->killed) continue;
          if (!LockCompatible(e->mode, w->mode)) {
            (*graph)[w->txn].push_back(e->txn);
          }
        }
      }
    }
  }
}

TxnId LockManager::LockedFindDeadlockVictim(TxnId txn,
                                            bool* reorg_in_cycle) const {
  std::unordered_map<TxnId, std::vector<TxnId>> graph;
  LockedBuildWaitsFor(&graph);

  // DFS from txn looking for a cycle back to txn; collect the cycle members.
  std::vector<TxnId> stack;
  std::unordered_map<TxnId, int> state;  // 0 unseen, 1 on-stack, 2 done
  *reorg_in_cycle = false;
  bool found = false;

  std::function<void(TxnId)> dfs = [&](TxnId u) {
    if (found) return;
    state[u] = 1;
    stack.push_back(u);
    auto it = graph.find(u);
    if (it != graph.end()) {
      for (TxnId v : it->second) {
        if (found) return;
        if (v == txn && stack.size() > 0) {
          // Cycle closed back to the requester.
          found = true;
          for (TxnId m : stack) {
            if (m == kReorgTxnId) *reorg_in_cycle = true;
          }
          return;
        }
        if (state[v] == 0) dfs(v);
      }
    }
    if (!found) {
      stack.pop_back();
      state[u] = 2;
    }
  };
  dfs(txn);
  if (!found) return kInvalidTxnId;
  // Paper policy: the reorganizer always loses a deadlock.
  if (*reorg_in_cycle || txn == kReorgTxnId) return kReorgTxnId;
  return txn;
}

Status LockManager::LockImpl(TxnId txn, const LockName& name, LockMode mode,
                             bool instant, int64_t timeout_ms) {
  Notify(LockEvent::kRequest, txn, name, mode);
  Status s = LockWait(txn, name, mode, instant, timeout_ms);
  LockEvent e;
  if (s.ok()) {
    e = instant ? LockEvent::kInstantGranted : LockEvent::kGranted;
  } else if (s.IsBackoff()) {
    e = LockEvent::kBackoff;
  } else if (s.IsTimedOut()) {
    e = LockEvent::kTimeout;
  } else if (s.IsBusy()) {
    e = LockEvent::kBusy;
  } else {
    e = LockEvent::kDeadlock;
  }
  Notify(e, txn, name, mode);
  return s;
}

Status LockManager::LockWait(TxnId txn, const LockName& name, LockMode mode,
                             bool instant, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  Queue& q = queues_[name];

  auto h = q.holders.find(txn);
  bool converting = (h != q.holders.end());
  LockMode target;
  if (instant) {
    // Instant-duration requests (RS waits, the switch's instant IX) are
    // never granted and never convert a held lock: the requested mode is
    // judged as-is against the *other* holders. Routing them through
    // LockSupremum was the latent bug that turned an RS wait by a txn still
    // holding e.g. IX into a wait for full exclusivity (the X fallthrough).
    converting = false;
    target = mode;
  } else {
    if (converting && LockCovers(h->second, mode)) {
      ++stats_.acquisitions;
      return Status::OK();
    }
    target = converting ? LockSupremum(h->second, mode) : mode;
  }
  assert(target != LockMode::kRS || instant);

  // Back-off on a granted-RX conflict (paper §4): do not enqueue.
  if (!instant && LockedConflictsWithGrantedRX(q, txn, target)) {
    ++stats_.backoffs;
    return Status::Backoff("RX held by reorganizer");
  }

  // Fast path. (LockedGrantable with self == nullptr already refuses to
  // overtake queued waiters for fresh requests; instant requests are judged
  // against holders only.)
  if (LockedGrantable(q, txn, target, converting || instant, nullptr)) {
    if (instant) {
      ++stats_.instant_grants;
      return Status::OK();
    }
    q.holders[txn] = target;
    if (!converting) held_[txn].push_back(name);
    if (converting) ++stats_.conversions;
    ++stats_.acquisitions;
    LockedCheckHolders(name, q);
    return Status::OK();
  }

  // Slow path: enqueue and wait. Conversions go to the front of the queue.
  Waiter w{txn, target, converting, instant, false, false};
  if (converting) {
    q.waiters.push_front(&w);
  } else {
    q.waiters.push_back(&w);
  }
  ++stats_.waits;

  // Tell the schedule harness (if any) that this request is about to block;
  // the hook must run without mu_ held, and every condition is re-checked
  // after relocking, so the brief unlock is safe.
  if (event_hook_) {
    lk.unlock();
    Notify(LockEvent::kWait, txn, name, mode);
    lk.lock();
  }

  auto remove_self = [&]() {
    auto it = std::find(q.waiters.begin(), q.waiters.end(), &w);
    if (it != q.waiters.end()) q.waiters.erase(it);
  };

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms >= 0 ? timeout_ms : 0);

  while (true) {
    if (w.killed) {
      remove_self();
      cv_.notify_all();
      ++stats_.deadlocks;
      return Status::Deadlock("chosen as deadlock victim");
    }
    // Re-check the RX back-off condition: an RX lock may have been granted
    // while we waited.
    if (!instant && LockedConflictsWithGrantedRX(q, txn, target)) {
      remove_self();
      cv_.notify_all();
      ++stats_.backoffs;
      return Status::Backoff("RX granted while waiting");
    }
    if (LockedGrantable(q, txn, target, converting || instant, &w)) {
      remove_self();
      if (instant) {
        cv_.notify_all();
        ++stats_.instant_grants;
        return Status::OK();
      }
      q.holders[txn] = target;
      if (!converting) held_[txn].push_back(name);
      if (converting) ++stats_.conversions;
      ++stats_.acquisitions;
      LockedCheckHolders(name, q);
      cv_.notify_all();
      return Status::OK();
    }

    // About to block: deadlock check.
    bool reorg_in_cycle = false;
    TxnId victim = LockedFindDeadlockVictim(txn, &reorg_in_cycle);
    if (victim != kInvalidTxnId) {
      if (checker_) checker_->CheckVictimChoice(txn, victim, reorg_in_cycle);
      if (victim == txn) {
        remove_self();
        cv_.notify_all();
        ++stats_.deadlocks;
        return Status::Deadlock("requester lost deadlock");
      }
      // Kill the victim's pending waits wherever they are queued.
      for (auto& [qname, queue] : queues_) {
        for (Waiter* other : queue.waiters) {
          if (other->txn == victim) other->killed = true;
        }
      }
      if (checker_) checker_->CheckKillRound(*this, victim);
      cv_.notify_all();
      // Loop around: the victim's departure may make us grantable.
    }

    if (timeout_ms >= 0) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        remove_self();
        cv_.notify_all();
        ++stats_.timeouts;
        return Status::TimedOut("lock wait timeout");
      }
    } else {
      cv_.wait(lk);
    }
  }
}

Status LockManager::Lock(TxnId txn, const LockName& name, LockMode mode,
                         int64_t timeout_ms) {
  bool instant = (mode == LockMode::kRS);
  return LockImpl(txn, name, mode, instant, timeout_ms);
}

Status LockManager::TryLock(TxnId txn, const LockName& name, LockMode mode) {
  Notify(LockEvent::kRequest, txn, name, mode);
  Status result;
  {
    std::lock_guard<std::mutex> g(mu_);
    Queue& q = queues_[name];
    auto h = q.holders.find(txn);
    bool converting = (h != q.holders.end());
    if (converting && LockCovers(h->second, mode)) {
      ++stats_.acquisitions;
      result = Status::OK();
    } else {
      LockMode target = converting ? LockSupremum(h->second, mode) : mode;
      if (LockedConflictsWithGrantedRX(q, txn, target)) {
        ++stats_.backoffs;
        result = Status::Backoff("RX held by reorganizer");
      } else if (!LockedGrantable(q, txn, target, converting, nullptr)) {
        result = Status::Busy("lock unavailable");
      } else {
        q.holders[txn] = target;
        if (!converting) held_[txn].push_back(name);
        if (converting) ++stats_.conversions;
        ++stats_.acquisitions;
        LockedCheckHolders(name, q);
        result = Status::OK();
      }
    }
  }
  Notify(result.ok() ? LockEvent::kGranted
                     : (result.IsBackoff() ? LockEvent::kBackoff
                                           : LockEvent::kBusy),
         txn, name, mode);
  return result;
}

Status LockManager::LockInstant(TxnId txn, const LockName& name, LockMode mode,
                                int64_t timeout_ms) {
  return LockImpl(txn, name, mode, /*instant=*/true, timeout_ms);
}

Status LockManager::Unlock(TxnId txn, const LockName& name) {
  {
    std::lock_guard<std::mutex> g(mu_);
    auto qi = queues_.find(name);
    if (qi == queues_.end() || qi->second.holders.erase(txn) == 0) {
      return Status::NotFound("lock not held");
    }
    auto& names = held_[txn];
    names.erase(std::remove(names.begin(), names.end(), name), names.end());
    cv_.notify_all();
  }
  Notify(LockEvent::kUnlock, txn, name, LockMode::kIS);
  return Status::OK();
}

Status LockManager::Downgrade(TxnId txn, const LockName& name, LockMode mode) {
  std::lock_guard<std::mutex> g(mu_);
  auto qi = queues_.find(name);
  if (qi == queues_.end()) return Status::NotFound("lock not held");
  auto h = qi->second.holders.find(txn);
  if (h == qi->second.holders.end()) return Status::NotFound("lock not held");
  if (!LockCovers(h->second, mode)) {
    return Status::InvalidArgument("not a downgrade");
  }
  h->second = mode;
  LockedCheckHolders(name, qi->second);
  cv_.notify_all();
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = held_.find(txn);
    if (it == held_.end()) return;
    for (const LockName& name : it->second) {
      auto qi = queues_.find(name);
      if (qi != queues_.end()) qi->second.holders.erase(txn);
    }
    held_.erase(it);
    cv_.notify_all();
  }
  Notify(LockEvent::kReleaseAll, txn, LockName{LockSpace::kTree, 0},
         LockMode::kIS);
}

bool LockManager::HeldMode(TxnId txn, const LockName& name,
                           LockMode* mode) const {
  std::lock_guard<std::mutex> g(mu_);
  auto qi = queues_.find(name);
  if (qi == queues_.end()) return false;
  auto h = qi->second.holders.find(txn);
  if (h == qi->second.holders.end()) return false;
  *mode = h->second;
  return true;
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

LockStats LockManager::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void LockManager::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = LockStats{};
}

}  // namespace soreorg
