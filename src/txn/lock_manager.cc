#include "src/txn/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "src/txn/lock_invariants.h"

namespace soreorg {

LockName TreeLock(uint64_t tree_incarnation) {
  return LockName{LockSpace::kTree, tree_incarnation};
}
LockName PageLock(uint32_t page_id) {
  return LockName{LockSpace::kPage, page_id};
}
LockName RecordLock(const std::string& key) {
  return LockName{LockSpace::kRecord, std::hash<std::string>{}(key)};
}
LockName SideFileLock() { return LockName{LockSpace::kSideFile, 0}; }
LockName SideKeyLock(const std::string& key) {
  return LockName{LockSpace::kSideKey, std::hash<std::string>{}(key)};
}

const char* LockEventName(LockEvent e) {
  switch (e) {
    case LockEvent::kRequest:
      return "request";
    case LockEvent::kWait:
      return "wait";
    case LockEvent::kGranted:
      return "granted";
    case LockEvent::kInstantGranted:
      return "instant-granted";
    case LockEvent::kBusy:
      return "busy";
    case LockEvent::kBackoff:
      return "backoff";
    case LockEvent::kDeadlock:
      return "deadlock";
    case LockEvent::kTimeout:
      return "timeout";
    case LockEvent::kUnlock:
      return "unlock";
    case LockEvent::kReleaseAll:
      return "release-all";
  }
  return "?";
}

size_t LockManager::PickStripeCount(size_t requested) {
  if (requested == 0) return kDefaultStripes;
  size_t n = 1;
  while (n < requested && n < kMaxStripes) n <<= 1;
  return n;
}

LockManager::LockManager(size_t num_stripes)
    : stripes_(PickStripeCount(num_stripes)),
      stripe_mask_(stripes_.size() - 1),
      held_shards_(stripes_.size()),
      held_mask_(held_shards_.size() - 1),
      page_marks_(std::make_unique<std::atomic<uint32_t>[]>(kPageMarkSlots)) {
  for (size_t i = 0; i < kPageMarkSlots; ++i) {
    page_marks_[i].store(0, std::memory_order_relaxed);
  }
#if !defined(NDEBUG) || defined(SOREORG_LOCK_INVARIANTS)
  // Debug / sanitizer builds machine-check the Table-1 protocol on every
  // grant; a violation aborts. Release builds leave checker_ null, so every
  // lock operation pays exactly one pointer test.
  default_checker_ = std::make_unique<LockInvariantChecker>();
  default_checker_->set_lock_manager(this);
  checker_ = default_checker_.get();
#endif
}

LockManager::~LockManager() = default;

size_t LockManager::StripeIndex(const LockName& name) const {
  // murmur3 fmix64 over the packed (space, id): cheap and well-mixed, so
  // sequential page ids spread across stripes instead of marching through
  // one.
  uint64_t h = (static_cast<uint64_t>(name.space) << 56) ^ name.id;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<size_t>(h) & stripe_mask_;
}

LockManager::Stripe& LockManager::stripe_for(const LockName& name) {
  return stripes_[StripeIndex(name)];
}
const LockManager::Stripe& LockManager::stripe_for(const LockName& name) const {
  return stripes_[StripeIndex(name)];
}

LockManager::HeldShard& LockManager::held_shard_for(TxnId txn) {
  return held_shards_[static_cast<size_t>(txn) & held_mask_];
}
const LockManager::HeldShard& LockManager::held_shard_for(TxnId txn) const {
  return held_shards_[static_cast<size_t>(txn) & held_mask_];
}

void LockManager::RecordHeld(TxnId txn, const LockName& name) {
  HeldShard& hs = held_shard_for(txn);
  std::lock_guard<std::mutex> g(hs.mu);
  hs.held[txn].push_back(name);
}

void LockManager::ForgetHeld(TxnId txn, const LockName& name) {
  HeldShard& hs = held_shard_for(txn);
  std::lock_guard<std::mutex> g(hs.mu);
  auto it = hs.held.find(txn);
  if (it == hs.held.end()) return;
  auto& names = it->second;
  names.erase(std::remove(names.begin(), names.end(), name), names.end());
  if (names.empty()) hs.held.erase(it);
}

bool LockManager::PageMarkedMode(const LockName& name, LockMode mode) {
  return name.space == LockSpace::kPage && !LockCompatible(mode, LockMode::kS);
}

size_t LockManager::PageMarkSlot(uint64_t id) {
  // fmix64, same mix as StripeIndex but over the raw page id.
  uint64_t h = id;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<size_t>(h) & (kPageMarkSlots - 1);
}

void LockManager::NoteHolderChange(const LockName& name, const LockMode* from,
                                   const LockMode* to) {
  const bool was = from != nullptr && PageMarkedMode(name, *from);
  const bool now = to != nullptr && PageMarkedMode(name, *to);
  if (was == now) return;
  std::atomic<uint32_t>& slot = page_marks_[PageMarkSlot(name.id)];
  if (now) {
    slot.fetch_add(1, std::memory_order_acq_rel);
  } else {
    slot.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool LockManager::PageSharedReadBlocked(uint32_t page_id) const {
  return page_marks_[PageMarkSlot(page_id)].load(std::memory_order_acquire) !=
         0;
}

void LockManager::SetEventHook(EventHook hook) {
  event_hook_ = std::move(hook);
}

void LockManager::SetInvariantChecker(LockInvariantChecker* checker) {
  if (checker != nullptr) checker->set_lock_manager(this);
  checker_ = checker != nullptr ? checker : default_checker_.get();
}

void LockManager::Notify(LockEvent e, TxnId txn, const LockName& name,
                         LockMode mode) {
  if (event_hook_) event_hook_(e, txn, name, mode);
}

void LockManager::LockedCheckHolders(const LockName& name, const Queue& q) {
  if (checker_) checker_->CheckHolders(name, q.holders);
}

void LockManager::CheckInvariantsNow() {
  for (auto& st : stripes_) {
    std::lock_guard<std::mutex> g(st.mu);
    for (const auto& [name, q] : st.queues) LockedCheckHolders(name, q);
  }
}

void LockManager::ForceGrantForTest(TxnId txn, const LockName& name,
                                    LockMode mode) {
  Stripe& st = stripe_for(name);
  std::lock_guard<std::mutex> g(st.mu);
  Queue& q = st.queues[name];
  auto h = q.holders.find(txn);
  if (h == q.holders.end()) {
    RecordHeld(txn, name);
    NoteHolderChange(name, nullptr, &mode);
  } else {
    NoteHolderChange(name, &h->second, &mode);
  }
  q.holders[txn] = mode;
  LockedCheckHolders(name, q);
}

size_t LockManager::QueueCount() const {
  size_t n = 0;
  for (const auto& st : stripes_) {
    std::lock_guard<std::mutex> g(st.mu);
    n += st.queues.size();
  }
  return n;
}

bool LockManager::LockedConflictsWithGrantedRX(const Queue& q, TxnId txn,
                                               LockMode mode) const {
  for (const auto& [holder, held] : q.holders) {
    if (holder == txn) continue;
    if (held == LockMode::kRX && !LockCompatible(held, mode)) return true;
  }
  return false;
}

bool LockManager::LockedGrantable(const Queue& q, TxnId txn, LockMode mode,
                                  bool skip_queue_check,
                                  const Waiter* self) const {
  for (const auto& [holder, held] : q.holders) {
    if (holder == txn) continue;
    if (!LockCompatible(held, mode)) return false;
  }
  if (!skip_queue_check) {
    // FIFO fairness: a fresh request must not overtake an earlier durable
    // waiter it conflicts with (conversions and instant waiters excepted).
    for (const Waiter* w : q.waiters) {
      if (w == self) break;
      if (w->txn == txn || w->instant || w->killed) continue;
      if (!LockCompatible(w->mode, mode)) return false;
    }
  }
  return true;
}

void LockManager::LockedWakeWaiters(Queue& q) {
  for (Waiter* w : q.waiters) {
    if (w->signaled) continue;
    bool wake = w->killed;
    if (!wake && !w->instant &&
        LockedConflictsWithGrantedRX(q, w->txn, w->mode)) {
      wake = true;  // must wake to observe the back-off condition
    }
    if (!wake &&
        LockedGrantable(q, w->txn, w->mode, w->converting || w->instant, w)) {
      wake = true;
    }
    if (wake) {
      w->signaled = true;
      w->cv.notify_one();
    }
  }
}

void LockManager::LockedMaybeEraseQueue(
    Stripe& stripe, std::map<LockName, Queue>::iterator qit) {
  if (qit->second.holders.empty() && qit->second.waiters.empty()) {
    stripe.queues.erase(qit);
  }
}

void LockManager::AllLockedBuildWaitsFor(
    std::unordered_map<TxnId, std::vector<TxnId>>* graph) const {
  for (const auto& st : stripes_) {
    for (const auto& [name, q] : st.queues) {
      for (auto it = q.waiters.begin(); it != q.waiters.end(); ++it) {
        const Waiter* w = *it;
        if (w->killed || w->granted) continue;
        for (const auto& [holder, held] : q.holders) {
          if (holder != w->txn && !LockCompatible(held, w->mode)) {
            (*graph)[w->txn].push_back(holder);
          }
        }
        if (!w->converting) {
          for (auto jt = q.waiters.begin(); jt != it; ++jt) {
            const Waiter* e = *jt;
            if (e->txn == w->txn || e->instant || e->killed) continue;
            if (!LockCompatible(e->mode, w->mode)) {
              (*graph)[w->txn].push_back(e->txn);
            }
          }
        }
      }
    }
  }
}

TxnId LockManager::GlobalDeadlockSweep(TxnId txn) {
  // Consistent snapshot: every stripe mutex, ascending index order. The
  // sweeping thread holds no stripe mutex on entry (its own Waiter stays
  // queued, keeping it visible in the graph).
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(stripes_.size());
  for (auto& st : stripes_) guards.emplace_back(st.mu);

  std::unordered_map<TxnId, std::vector<TxnId>> graph;
  AllLockedBuildWaitsFor(&graph);

  // DFS from txn looking for a cycle back to txn; collect the cycle members.
  std::vector<TxnId> stack;
  std::unordered_map<TxnId, int> state;  // 0 unseen, 1 on-stack, 2 done
  bool reorg_in_cycle = false;
  bool found = false;

  std::function<void(TxnId)> dfs = [&](TxnId u) {
    if (found) return;
    state[u] = 1;
    stack.push_back(u);
    auto it = graph.find(u);
    if (it != graph.end()) {
      for (TxnId v : it->second) {
        if (found) return;
        if (v == txn && stack.size() > 0) {
          // Cycle closed back to the requester.
          found = true;
          for (TxnId m : stack) {
            if (m == kReorgTxnId) reorg_in_cycle = true;
          }
          return;
        }
        if (state[v] == 0) dfs(v);
      }
    }
    if (!found) {
      stack.pop_back();
      state[u] = 2;
    }
  };
  dfs(txn);
  if (!found) return kInvalidTxnId;

  // Paper policy: the reorganizer always loses a deadlock.
  TxnId victim =
      (reorg_in_cycle || txn == kReorgTxnId) ? kReorgTxnId : txn;
  if (checker_) checker_->CheckVictimChoice(txn, victim, reorg_in_cycle);
  if (victim != txn) {
    // Kill the victim's pending waits wherever they are queued; the stripes
    // are all held, so the kill round is atomic with the detection.
    for (auto& st : stripes_) {
      for (auto& [qname, queue] : st.queues) {
        for (Waiter* other : queue.waiters) {
          if (other->txn == victim && !other->killed) {
            other->killed = true;
            other->signaled = true;
            other->cv.notify_one();
          }
        }
      }
    }
    if (checker_) checker_->CheckKillRound(*this, victim);
  }
  return victim;
}

Status LockManager::LockImpl(TxnId txn, const LockName& name, LockMode mode,
                             bool instant, int64_t timeout_ms) {
  Notify(LockEvent::kRequest, txn, name, mode);
  Status s = LockWait(txn, name, mode, instant, timeout_ms);
  LockEvent e;
  if (s.ok()) {
    e = instant ? LockEvent::kInstantGranted : LockEvent::kGranted;
  } else if (s.IsBackoff()) {
    e = LockEvent::kBackoff;
  } else if (s.IsTimedOut()) {
    e = LockEvent::kTimeout;
  } else if (s.IsBusy()) {
    e = LockEvent::kBusy;
  } else {
    e = LockEvent::kDeadlock;
  }
  Notify(e, txn, name, mode);
  return s;
}

Status LockManager::LockWait(TxnId txn, const LockName& name, LockMode mode,
                             bool instant, int64_t timeout_ms) {
  Stripe& stripe = stripe_for(name);
  std::unique_lock<std::mutex> lk(stripe.mu);
  auto qit = stripe.queues.try_emplace(name).first;
  Queue& q = qit->second;

  auto h = q.holders.find(txn);
  bool converting = (h != q.holders.end());
  LockMode target;
  if (instant) {
    // Instant-duration requests (RS waits, the switch's instant IX) are
    // never granted and never convert a held lock: the requested mode is
    // judged as-is against the *other* holders. Routing them through
    // LockSupremum was the latent bug that turned an RS wait by a txn still
    // holding e.g. IX into a wait for full exclusivity (the X fallthrough).
    converting = false;
    target = mode;
  } else {
    if (converting && LockCovers(h->second, mode)) {
      stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    target = converting ? LockSupremum(h->second, mode) : mode;
  }
  assert(target != LockMode::kRS || instant);

  // Back-off on a granted-RX conflict (paper §4): do not enqueue.
  if (!instant && LockedConflictsWithGrantedRX(q, txn, target)) {
    stats_.backoffs.fetch_add(1, std::memory_order_relaxed);
    return Status::Backoff("RX held by reorganizer");
  }

  // Fast path. (LockedGrantable with self == nullptr already refuses to
  // overtake queued waiters for fresh requests; instant requests are judged
  // against holders only.)
  if (LockedGrantable(q, txn, target, converting || instant, nullptr)) {
    if (instant) {
      // An instant grant holds nothing; drop the node if try_emplace above
      // materialized it for an otherwise-unlocked name.
      LockedMaybeEraseQueue(stripe, qit);
      stats_.instant_grants.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    NoteHolderChange(name, converting ? &h->second : nullptr, &target);
    q.holders[txn] = target;
    if (!converting) RecordHeld(txn, name);
    if (converting) stats_.conversions.fetch_add(1, std::memory_order_relaxed);
    stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    LockedCheckHolders(name, q);
    // An RX grant flips already-queued conflicting waiters from "waiting"
    // to "must back off"; hand them their wake tokens now.
    if (target == LockMode::kRX) LockedWakeWaiters(q);
    return Status::OK();
  }

  // Slow path: enqueue and wait. Conversions go to the front of the queue.
  Waiter w{txn, target, converting, instant};
  if (converting) {
    q.waiters.push_front(&w);
  } else {
    q.waiters.push_back(&w);
  }
  stats_.waits.fetch_add(1, std::memory_order_relaxed);

  // Tell the schedule harness (if any) that this request is about to block;
  // the hook must run without the stripe mutex held, and every condition is
  // re-checked after relocking, so the brief unlock is safe.
  if (event_hook_) {
    lk.unlock();
    Notify(LockEvent::kWait, txn, name, mode);
    lk.lock();
  }

  // Our departure (grant, back-off, kill, timeout) can unblock FIFO
  // followers, so every exit wakes the queue after unlinking.
  auto remove_self = [&]() {
    auto it = std::find(q.waiters.begin(), q.waiters.end(), &w);
    if (it != q.waiters.end()) q.waiters.erase(it);
  };

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms >= 0 ? timeout_ms : 0);

  while (true) {
    if (w.killed) {
      remove_self();
      LockedWakeWaiters(q);
      LockedMaybeEraseQueue(stripe, qit);
      stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      return Status::Deadlock("chosen as deadlock victim");
    }
    // Re-check the RX back-off condition: an RX lock may have been granted
    // while we waited.
    if (!instant && LockedConflictsWithGrantedRX(q, txn, target)) {
      remove_self();
      LockedWakeWaiters(q);
      LockedMaybeEraseQueue(stripe, qit);
      stats_.backoffs.fetch_add(1, std::memory_order_relaxed);
      return Status::Backoff("RX granted while waiting");
    }
    if (LockedGrantable(q, txn, target, converting || instant, &w)) {
      remove_self();
      if (instant) {
        LockedWakeWaiters(q);
        LockedMaybeEraseQueue(stripe, qit);
        stats_.instant_grants.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
      // Re-find the holder entry: `h` predates the wait, and reading the
      // old mode through a stale iterator is not worth the risk.
      auto hold = q.holders.find(txn);
      NoteHolderChange(name, hold != q.holders.end() ? &hold->second : nullptr,
                       &target);
      q.holders[txn] = target;
      if (!converting) RecordHeld(txn, name);
      if (converting)
        stats_.conversions.fetch_add(1, std::memory_order_relaxed);
      stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
      LockedCheckHolders(name, q);
      LockedWakeWaiters(q);
      return Status::OK();
    }

    // About to block: deadlock check over a global snapshot. This drops the
    // stripe mutex (all-stripes lock order); our Waiter stays queued, and
    // anything that happens meanwhile leaves a wake token (signaled/killed)
    // that the wait predicate below observes, so no wakeup is lost.
    lk.unlock();
    TxnId victim = GlobalDeadlockSweep(txn);
    lk.lock();
    if (victim == txn) {
      remove_self();
      LockedWakeWaiters(q);
      LockedMaybeEraseQueue(stripe, qit);
      stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      return Status::Deadlock("requester lost deadlock");
    }
    // A non-self victim (the reorganizer) was killed inside the sweep; its
    // exit and the subsequent release of its locks will signal us. Sleep.

    if (timeout_ms >= 0) {
      if (!w.cv.wait_until(lk, deadline,
                           [&] { return w.signaled || w.killed; })) {
        remove_self();
        LockedWakeWaiters(q);
        LockedMaybeEraseQueue(stripe, qit);
        stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
        return Status::TimedOut("lock wait timeout");
      }
    } else {
      w.cv.wait(lk, [&] { return w.signaled || w.killed; });
    }
    w.signaled = false;
  }
}

Status LockManager::Lock(TxnId txn, const LockName& name, LockMode mode,
                         int64_t timeout_ms) {
  bool instant = (mode == LockMode::kRS);
  return LockImpl(txn, name, mode, instant, timeout_ms);
}

Status LockManager::TryLock(TxnId txn, const LockName& name, LockMode mode) {
  Notify(LockEvent::kRequest, txn, name, mode);
  Status result;
  {
    Stripe& stripe = stripe_for(name);
    std::lock_guard<std::mutex> g(stripe.mu);
    auto qit = stripe.queues.try_emplace(name).first;
    Queue& q = qit->second;
    auto h = q.holders.find(txn);
    bool converting = (h != q.holders.end());
    if (converting && LockCovers(h->second, mode)) {
      stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
      result = Status::OK();
    } else {
      LockMode target = converting ? LockSupremum(h->second, mode) : mode;
      if (LockedConflictsWithGrantedRX(q, txn, target)) {
        stats_.backoffs.fetch_add(1, std::memory_order_relaxed);
        result = Status::Backoff("RX held by reorganizer");
      } else if (!LockedGrantable(q, txn, target, converting, nullptr)) {
        result = Status::Busy("lock unavailable");
      } else {
        NoteHolderChange(name, converting ? &h->second : nullptr, &target);
        q.holders[txn] = target;
        if (!converting) RecordHeld(txn, name);
        if (converting)
          stats_.conversions.fetch_add(1, std::memory_order_relaxed);
        stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
        LockedCheckHolders(name, q);
        if (target == LockMode::kRX) LockedWakeWaiters(q);
        result = Status::OK();
      }
    }
    if (!result.ok()) LockedMaybeEraseQueue(stripe, qit);
  }
  Notify(result.ok() ? LockEvent::kGranted
                     : (result.IsBackoff() ? LockEvent::kBackoff
                                           : LockEvent::kBusy),
         txn, name, mode);
  return result;
}

Status LockManager::LockInstant(TxnId txn, const LockName& name, LockMode mode,
                                int64_t timeout_ms) {
  return LockImpl(txn, name, mode, /*instant=*/true, timeout_ms);
}

Status LockManager::Unlock(TxnId txn, const LockName& name) {
  {
    Stripe& stripe = stripe_for(name);
    std::lock_guard<std::mutex> g(stripe.mu);
    auto qit = stripe.queues.find(name);
    if (qit == stripe.queues.end()) {
      return Status::NotFound("lock not held");
    }
    auto h = qit->second.holders.find(txn);
    if (h == qit->second.holders.end()) {
      return Status::NotFound("lock not held");
    }
    NoteHolderChange(name, &h->second, nullptr);
    qit->second.holders.erase(h);
    ForgetHeld(txn, name);
    // Defensive revalidation on release: also keeps the invariant checker's
    // derived side-file state (invariant (f)) current when the switcher's
    // step-aside releases its X lock.
    LockedCheckHolders(name, qit->second);
    LockedWakeWaiters(qit->second);
    LockedMaybeEraseQueue(stripe, qit);
  }
  Notify(LockEvent::kUnlock, txn, name, LockMode::kIS);
  return Status::OK();
}

Status LockManager::Downgrade(TxnId txn, const LockName& name, LockMode mode) {
  Stripe& stripe = stripe_for(name);
  std::lock_guard<std::mutex> g(stripe.mu);
  auto qit = stripe.queues.find(name);
  if (qit == stripe.queues.end()) return Status::NotFound("lock not held");
  auto h = qit->second.holders.find(txn);
  if (h == qit->second.holders.end()) return Status::NotFound("lock not held");
  if (!LockCovers(h->second, mode)) {
    return Status::InvalidArgument("not a downgrade");
  }
  NoteHolderChange(name, &h->second, &mode);
  h->second = mode;
  LockedCheckHolders(name, qit->second);
  LockedWakeWaiters(qit->second);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::vector<LockName> names;
  {
    HeldShard& hs = held_shard_for(txn);
    std::lock_guard<std::mutex> g(hs.mu);
    auto it = hs.held.find(txn);
    if (it == hs.held.end()) return;
    names = std::move(it->second);
    hs.held.erase(it);
  }
  // Only the stripes of names this transaction actually held are touched,
  // one at a time — release-all never takes the whole table.
  for (const LockName& name : names) {
    Stripe& stripe = stripe_for(name);
    std::lock_guard<std::mutex> g(stripe.mu);
    auto qit = stripe.queues.find(name);
    if (qit == stripe.queues.end()) continue;
    auto h = qit->second.holders.find(txn);
    if (h != qit->second.holders.end()) {
      NoteHolderChange(name, &h->second, nullptr);
      qit->second.holders.erase(h);
    }
    LockedCheckHolders(name, qit->second);
    LockedWakeWaiters(qit->second);
    LockedMaybeEraseQueue(stripe, qit);
  }
  Notify(LockEvent::kReleaseAll, txn, LockName{LockSpace::kTree, 0},
         LockMode::kIS);
}

bool LockManager::HeldMode(TxnId txn, const LockName& name,
                           LockMode* mode) const {
  const Stripe& stripe = stripe_for(name);
  std::lock_guard<std::mutex> g(stripe.mu);
  auto qit = stripe.queues.find(name);
  if (qit == stripe.queues.end()) return false;
  auto h = qit->second.holders.find(txn);
  if (h == qit->second.holders.end()) return false;
  *mode = h->second;
  return true;
}

size_t LockManager::HeldCount(TxnId txn) const {
  const HeldShard& hs = held_shard_for(txn);
  std::lock_guard<std::mutex> g(hs.mu);
  auto it = hs.held.find(txn);
  return it == hs.held.end() ? 0 : it->second.size();
}

LockStats LockManager::stats() const {
  LockStats s;
  s.acquisitions = stats_.acquisitions.load(std::memory_order_relaxed);
  s.waits = stats_.waits.load(std::memory_order_relaxed);
  s.backoffs = stats_.backoffs.load(std::memory_order_relaxed);
  s.deadlocks = stats_.deadlocks.load(std::memory_order_relaxed);
  s.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  s.instant_grants = stats_.instant_grants.load(std::memory_order_relaxed);
  s.conversions = stats_.conversions.load(std::memory_order_relaxed);
  return s;
}

void LockManager::ResetStats() {
  stats_.acquisitions.store(0, std::memory_order_relaxed);
  stats_.waits.store(0, std::memory_order_relaxed);
  stats_.backoffs.store(0, std::memory_order_relaxed);
  stats_.deadlocks.store(0, std::memory_order_relaxed);
  stats_.timeouts.store(0, std::memory_order_relaxed);
  stats_.instant_grants.store(0, std::memory_order_relaxed);
  stats_.conversions.store(0, std::memory_order_relaxed);
}

}  // namespace soreorg
