#include "src/txn/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace soreorg {

LockName TreeLock(uint64_t tree_incarnation) {
  return LockName{LockSpace::kTree, tree_incarnation};
}
LockName PageLock(uint32_t page_id) {
  return LockName{LockSpace::kPage, page_id};
}
LockName RecordLock(const std::string& key) {
  return LockName{LockSpace::kRecord, std::hash<std::string>{}(key)};
}
LockName SideFileLock() { return LockName{LockSpace::kSideFile, 0}; }
LockName SideKeyLock(const std::string& key) {
  return LockName{LockSpace::kSideKey, std::hash<std::string>{}(key)};
}

bool LockManager::LockedConflictsWithGrantedRX(const Queue& q, TxnId txn,
                                               LockMode mode) const {
  for (const auto& [holder, held] : q.holders) {
    if (holder == txn) continue;
    if (held == LockMode::kRX && !LockCompatible(held, mode)) return true;
  }
  return false;
}

bool LockManager::LockedGrantable(const Queue& q, TxnId txn, LockMode mode,
                                  bool converting,
                                  const Waiter* self) const {
  for (const auto& [holder, held] : q.holders) {
    if (holder == txn) continue;
    if (!LockCompatible(held, mode)) return false;
  }
  if (!converting) {
    // FIFO fairness: a fresh request must not overtake an earlier durable
    // waiter it conflicts with (conversions and instant waiters excepted).
    for (const Waiter* w : q.waiters) {
      if (w == self) break;
      if (w->txn == txn || w->instant || w->killed) continue;
      if (!LockCompatible(w->mode, mode)) return false;
    }
  }
  return true;
}

void LockManager::LockedBuildWaitsFor(
    std::unordered_map<TxnId, std::vector<TxnId>>* graph) const {
  for (const auto& [name, q] : queues_) {
    for (auto it = q.waiters.begin(); it != q.waiters.end(); ++it) {
      const Waiter* w = *it;
      if (w->killed || w->granted) continue;
      for (const auto& [holder, held] : q.holders) {
        if (holder != w->txn && !LockCompatible(held, w->mode)) {
          (*graph)[w->txn].push_back(holder);
        }
      }
      if (!w->converting) {
        for (auto jt = q.waiters.begin(); jt != it; ++jt) {
          const Waiter* e = *jt;
          if (e->txn == w->txn || e->instant || e->killed) continue;
          if (!LockCompatible(e->mode, w->mode)) {
            (*graph)[w->txn].push_back(e->txn);
          }
        }
      }
    }
  }
}

TxnId LockManager::LockedFindDeadlockVictim(TxnId txn) const {
  std::unordered_map<TxnId, std::vector<TxnId>> graph;
  LockedBuildWaitsFor(&graph);

  // DFS from txn looking for a cycle back to txn; collect the cycle members.
  std::vector<TxnId> stack;
  std::unordered_map<TxnId, int> state;  // 0 unseen, 1 on-stack, 2 done
  bool reorg_in_cycle = false;
  bool found = false;

  std::function<void(TxnId)> dfs = [&](TxnId u) {
    if (found) return;
    state[u] = 1;
    stack.push_back(u);
    auto it = graph.find(u);
    if (it != graph.end()) {
      for (TxnId v : it->second) {
        if (found) return;
        if (v == txn && stack.size() > 0) {
          // Cycle closed back to the requester.
          found = true;
          for (TxnId m : stack) {
            if (m == kReorgTxnId) reorg_in_cycle = true;
          }
          return;
        }
        if (state[v] == 0) dfs(v);
      }
    }
    if (!found) {
      stack.pop_back();
      state[u] = 2;
    }
  };
  dfs(txn);
  if (!found) return kInvalidTxnId;
  // Paper policy: the reorganizer always loses a deadlock.
  if (reorg_in_cycle || txn == kReorgTxnId) return kReorgTxnId;
  return txn;
}

Status LockManager::LockImpl(TxnId txn, const LockName& name, LockMode mode,
                             bool instant, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  Queue& q = queues_[name];

  auto h = q.holders.find(txn);
  bool converting = (h != q.holders.end());
  if (converting && LockCovers(h->second, mode)) {
    ++stats_.acquisitions;
    return Status::OK();
  }
  LockMode target = converting ? LockSupremum(h->second, mode) : mode;
  assert(target != LockMode::kRS || instant);

  // Back-off on a granted-RX conflict (paper §4): do not enqueue.
  if (!instant && LockedConflictsWithGrantedRX(q, txn, target)) {
    ++stats_.backoffs;
    return Status::Backoff("RX held by reorganizer");
  }

  // Fast path. (LockedGrantable with self == nullptr already refuses to
  // overtake queued waiters for fresh requests.)
  if (LockedGrantable(q, txn, target, converting, nullptr)) {
    if (instant) {
      ++stats_.instant_grants;
      return Status::OK();
    }
    q.holders[txn] = target;
    if (!converting) held_[txn].push_back(name);
    if (converting) ++stats_.conversions;
    ++stats_.acquisitions;
    return Status::OK();
  }

  // Slow path: enqueue and wait. Conversions go to the front of the queue.
  Waiter w{txn, target, converting, instant, false, false};
  if (converting) {
    q.waiters.push_front(&w);
  } else {
    q.waiters.push_back(&w);
  }
  ++stats_.waits;

  auto remove_self = [&]() {
    auto it = std::find(q.waiters.begin(), q.waiters.end(), &w);
    if (it != q.waiters.end()) q.waiters.erase(it);
  };

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms >= 0 ? timeout_ms : 0);

  while (true) {
    if (w.killed) {
      remove_self();
      cv_.notify_all();
      ++stats_.deadlocks;
      return Status::Deadlock("chosen as deadlock victim");
    }
    // Re-check the RX back-off condition: an RX lock may have been granted
    // while we waited.
    if (!instant && LockedConflictsWithGrantedRX(q, txn, target)) {
      remove_self();
      cv_.notify_all();
      ++stats_.backoffs;
      return Status::Backoff("RX granted while waiting");
    }
    if (LockedGrantable(q, txn, target, converting, &w)) {
      remove_self();
      if (instant) {
        cv_.notify_all();
        ++stats_.instant_grants;
        return Status::OK();
      }
      q.holders[txn] = target;
      if (!converting) held_[txn].push_back(name);
      if (converting) ++stats_.conversions;
      ++stats_.acquisitions;
      cv_.notify_all();
      return Status::OK();
    }

    // About to block: deadlock check.
    TxnId victim = LockedFindDeadlockVictim(txn);
    if (victim != kInvalidTxnId) {
      if (victim == txn) {
        remove_self();
        cv_.notify_all();
        ++stats_.deadlocks;
        return Status::Deadlock("requester lost deadlock");
      }
      // Kill the victim's pending waits wherever they are queued.
      for (auto& [qname, queue] : queues_) {
        for (Waiter* other : queue.waiters) {
          if (other->txn == victim) other->killed = true;
        }
      }
      cv_.notify_all();
      // Loop around: the victim's departure may make us grantable.
    }

    if (timeout_ms >= 0) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        remove_self();
        cv_.notify_all();
        ++stats_.timeouts;
        return Status::TimedOut("lock wait timeout");
      }
    } else {
      cv_.wait(lk);
    }
  }
}

Status LockManager::Lock(TxnId txn, const LockName& name, LockMode mode,
                         int64_t timeout_ms) {
  bool instant = (mode == LockMode::kRS);
  return LockImpl(txn, name, mode, instant, timeout_ms);
}

Status LockManager::TryLock(TxnId txn, const LockName& name, LockMode mode) {
  std::lock_guard<std::mutex> g(mu_);
  Queue& q = queues_[name];
  auto h = q.holders.find(txn);
  bool converting = (h != q.holders.end());
  if (converting && LockCovers(h->second, mode)) {
    ++stats_.acquisitions;
    return Status::OK();
  }
  LockMode target = converting ? LockSupremum(h->second, mode) : mode;
  if (LockedConflictsWithGrantedRX(q, txn, target)) {
    ++stats_.backoffs;
    return Status::Backoff("RX held by reorganizer");
  }
  if (!LockedGrantable(q, txn, target, converting, nullptr)) {
    return Status::Busy("lock unavailable");
  }
  q.holders[txn] = target;
  if (!converting) held_[txn].push_back(name);
  if (converting) ++stats_.conversions;
  ++stats_.acquisitions;
  return Status::OK();
}

Status LockManager::LockInstant(TxnId txn, const LockName& name, LockMode mode,
                                int64_t timeout_ms) {
  return LockImpl(txn, name, mode, /*instant=*/true, timeout_ms);
}

Status LockManager::Unlock(TxnId txn, const LockName& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto qi = queues_.find(name);
  if (qi == queues_.end() || qi->second.holders.erase(txn) == 0) {
    return Status::NotFound("lock not held");
  }
  auto& names = held_[txn];
  names.erase(std::remove(names.begin(), names.end(), name), names.end());
  cv_.notify_all();
  return Status::OK();
}

Status LockManager::Downgrade(TxnId txn, const LockName& name, LockMode mode) {
  std::lock_guard<std::mutex> g(mu_);
  auto qi = queues_.find(name);
  if (qi == queues_.end()) return Status::NotFound("lock not held");
  auto h = qi->second.holders.find(txn);
  if (h == qi->second.holders.end()) return Status::NotFound("lock not held");
  if (!LockCovers(h->second, mode)) {
    return Status::InvalidArgument("not a downgrade");
  }
  h->second = mode;
  cv_.notify_all();
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const LockName& name : it->second) {
    auto qi = queues_.find(name);
    if (qi != queues_.end()) qi->second.holders.erase(txn);
  }
  held_.erase(it);
  cv_.notify_all();
}

bool LockManager::HeldMode(TxnId txn, const LockName& name,
                           LockMode* mode) const {
  std::lock_guard<std::mutex> g(mu_);
  auto qi = queues_.find(name);
  if (qi == queues_.end()) return false;
  auto h = qi->second.holders.find(txn);
  if (h == qi->second.holders.end()) return false;
  *mode = h->second;
  return true;
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

LockStats LockManager::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void LockManager::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = LockStats{};
}

}  // namespace soreorg
