// TransactionManager: begin/commit/abort, the active-transaction table, and
// undo processing over the per-transaction prev_lsn chain.
//
// Undo of a data operation is delegated to an UndoApplier registered by the
// data-structure layer (the B+-tree): the applier receives the original log
// record, performs the inverse change, and logs a CLR. This keeps the txn
// layer ignorant of page formats.

#ifndef SOREORG_TXN_TXN_MANAGER_H_
#define SOREORG_TXN_TXN_MANAGER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/txn/lock_manager.h"
#include "src/txn/transaction.h"
#include "src/util/status.h"
#include "src/wal/log_manager.h"

namespace soreorg {

class BufferPool;

class TransactionManager {
 public:
  /// Apply the inverse of `rec` and log a CLR for `txn`.
  using UndoApplier =
      std::function<Status(const LogRecord& rec, Transaction* txn)>;

  /// `bp` (optional) enables the checkpoint apply barrier: the COMMIT/ABORT
  /// record and the transaction's removal from the active table then land
  /// on the same side of a concurrent checkpoint's redo floor, so the
  /// checkpoint image can never show a transaction as active whose outcome
  /// record sits below the floor (recovery would wrongly undo it).
  TransactionManager(LogManager* log, LockManager* locks,
                     BufferPool* bp = nullptr);

  void set_undo_applier(UndoApplier applier);

  Transaction* Begin();

  /// Write + flush COMMIT, then release all locks.
  Status Commit(Transaction* txn);

  /// Undo all of the transaction's changes (via the applier), write ABORT,
  /// release locks.
  Status Abort(Transaction* txn);

  /// Finish a transaction whose locks were already managed elsewhere
  /// (used by the reorganizer's pseudo-transaction).
  void Forget(Transaction* txn);

  /// Snapshot of (txn id, last lsn) for all active transactions.
  std::vector<std::pair<TxnId, Lsn>> ActiveSnapshot() const;

  /// Smallest first_lsn among active transactions that have logged anything
  /// (kInvalidLsn when none have). This is the undo-chain floor for WAL
  /// truncation.
  Lsn OldestActiveFirstLsn() const;

  TxnId next_txn_id() const;
  void RestoreNextTxnId(TxnId next);

  LockManager* lock_manager() { return locks_; }
  LogManager* log_manager() { return log_; }

  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 private:
  /// Failure cleanup for Commit/Abort paths that cannot reach the WAL: the
  /// durable outcome is recovery's problem, but the in-memory locks and the
  /// active-table entry must not outlive the transaction.
  void Discard(Transaction* txn, TxnState state);

  LogManager* log_;
  LockManager* locks_;
  BufferPool* bp_ = nullptr;
  UndoApplier undo_applier_;

  mutable std::mutex mu_;
  TxnId next_txn_id_ = kFirstUserTxnId;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_;
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

}  // namespace soreorg

#endif  // SOREORG_TXN_TXN_MANAGER_H_
