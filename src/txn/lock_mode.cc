#include "src/txn/lock_mode.h"

namespace soreorg {

namespace {

// Table 1, rows = granted mode, columns = requested mode
// (IS, IX, S, X, R, RX, RS). Blanks in the paper (mode pairs that can never
// meet because one mode is used only on leaf pages and the other only on
// base pages) are resolved to their semantically forced values:
//   * RX is incompatible with everything ("not compatible with any mode").
//   * R behaves as a share lock: compatible with IS, S, R; incompatible with
//     IX, X, RX, and with RS (RS exists precisely to wait R out).
//   * RS as a request is compatible with IS/IX/S (other readers/updaters do
//     not hold the reorganizer's locks) and incompatible with X (the
//     reorganizer may have upgraded its base-page R lock to X), R, and RX.
// RS is never *granted* (instant duration), so its row is all-false; it can
// never appear on the granted axis in a correct execution.
constexpr bool kCompat[kNumLockModes][kNumLockModes] = {
    //            IS     IX     S      X      R      RX     RS
    /* IS */    {true,  true,  true,  false, true,  false, true},
    /* IX */    {true,  true,  false, false, false, false, true},
    /* S  */    {true,  false, true,  false, true,  false, true},
    /* X  */    {false, false, false, false, false, false, false},
    /* R  */    {true,  false, true,  false, true,  false, false},
    /* RX */    {false, false, false, false, false, false, false},
    /* RS */    {false, false, false, false, false, false, false},
};

// covers[held][wanted]: holding `held` already satisfies `wanted`.
constexpr bool kCovers[kNumLockModes][kNumLockModes] = {
    //            IS     IX     S      X      R      RX     RS
    /* IS */    {true,  false, false, false, false, false, false},
    /* IX */    {true,  true,  false, false, false, false, false},
    /* S  */    {true,  false, true,  false, false, false, false},
    /* X  */    {true,  true,  true,  true,  true,  false, false},
    /* R  */    {true,  false, true,  false, true,  false, false},
    /* RX */    {true,  true,  true,  true,  true,  true,  false},
    /* RS */    {false, false, false, false, false, false, false},
};

}  // namespace

bool LockCompatible(LockMode granted, LockMode requested) {
  return kCompat[static_cast<int>(granted)][static_cast<int>(requested)];
}

bool LockCovers(LockMode held, LockMode wanted) {
  return kCovers[static_cast<int>(held)][static_cast<int>(wanted)];
}

LockMode LockSupremum(LockMode held, LockMode wanted) {
  // RS is never held (instant duration), so it contributes nothing to a
  // conversion target. Before this guard, an RS input fell through every
  // case below and promoted the result to X — which turned an "RS wait" by
  // a txn that already held a lock into a wait for full exclusivity.
  if (wanted == LockMode::kRS) return held;
  if (held == LockMode::kRS) return wanted;
  if (LockCovers(held, wanted)) return held;
  if (LockCovers(wanted, held)) return wanted;
  // Remaining incomparable pairs. Without an SIX mode, promote to the
  // smallest exclusive mode that covers both.
  auto one_of = [&](LockMode a, LockMode b) {
    return (held == a && wanted == b) || (held == b && wanted == a);
  };
  if (one_of(LockMode::kIS, LockMode::kIX)) return LockMode::kIX;
  if (one_of(LockMode::kIS, LockMode::kS)) return LockMode::kS;
  if (one_of(LockMode::kIS, LockMode::kR)) return LockMode::kR;
  if (one_of(LockMode::kS, LockMode::kR)) return LockMode::kR;
  if (held == LockMode::kRX || wanted == LockMode::kRX) return LockMode::kRX;
  return LockMode::kX;  // IX+S, IX+R, anything + X, ...
}

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
    case LockMode::kR:
      return "R";
    case LockMode::kRX:
      return "RX";
    case LockMode::kRS:
      return "RS";
  }
  return "?";
}

}  // namespace soreorg
