// LockManager: the concurrency engine behind the paper's protocols (§4).
//
// Features beyond a textbook multi-granularity lock manager:
//   * the R / RX / RS modes of Table 1 (see lock_mode.h);
//   * **back-off on RX conflict**: when a request conflicts with a *granted*
//     RX lock, the requester is not enqueued — Lock() returns
//     Status::kBackoff and the caller must release its parent lock and wait
//     via an instant-duration RS lock on the parent (reader/updater
//     protocols §4.1.2–4.1.3);
//   * **instant-duration unconditional locks** (Mohan '90): LockInstant()
//     blocks until the mode would be grantable, then returns success without
//     granting anything. Used for RS waits and for the side file's
//     instant-duration IX during the switch (§7.2);
//   * lock conversion (the reorganizer upgrades its base-page R locks to X
//     after moving records); conversions have priority over fresh waiters;
//   * waits-for deadlock detection with the paper's victim policy: if the
//     reorganizer is anywhere in the cycle, *the reorganizer loses* (§4.1);
//     otherwise the requester that closed the cycle loses;
//   * optional wait timeouts (the switcher's bounded wait for the old-tree
//     X lock, §7.4).
//
// Lock names are (space, id) pairs so trees, pages, records, and the side
// file live in one namespace.

#ifndef SOREORG_TXN_LOCK_MANAGER_H_
#define SOREORG_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/txn/lock_mode.h"
#include "src/util/status.h"
#include "src/wal/log_record.h"  // TxnId

namespace soreorg {

enum class LockSpace : uint8_t {
  kTree = 0,      // the per-tree ("file") lock; id = tree incarnation
  kPage = 1,      // page locks; id = page id
  kRecord = 2,    // record locks; id = key hash
  kSideFile = 3,  // the side-file table lock; id = 0
  kSideKey = 4,   // record locks inside the side file; id = key hash
};

struct LockName {
  LockSpace space;
  uint64_t id;

  bool operator==(const LockName& o) const {
    return space == o.space && id == o.id;
  }
  bool operator<(const LockName& o) const {
    if (space != o.space) return space < o.space;
    return id < o.id;
  }
};

LockName TreeLock(uint64_t tree_incarnation);
LockName PageLock(uint32_t page_id);
LockName RecordLock(const std::string& key);
LockName SideFileLock();
LockName SideKeyLock(const std::string& key);

struct LockStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;         // requests that blocked at least once
  uint64_t backoffs = 0;      // kBackoff returns (RX conflicts)
  uint64_t deadlocks = 0;
  uint64_t timeouts = 0;
  uint64_t instant_grants = 0;
  uint64_t conversions = 0;
};

class LockManager {
 public:
  LockManager() = default;

  /// Acquire (or convert to) `mode` on `name`. Blocks until granted.
  /// Returns kBackoff on a granted-RX conflict, kDeadlock if this request
  /// closed a cycle and lost, kTimedOut if timeout_ms >= 0 elapsed, and
  /// kAborted if another thread killed this waiter as a deadlock victim.
  Status Lock(TxnId txn, const LockName& name, LockMode mode,
              int64_t timeout_ms = -1);

  /// Non-blocking attempt. Returns kBusy instead of waiting.
  Status TryLock(TxnId txn, const LockName& name, LockMode mode);

  /// Instant-duration unconditional request: wait until `mode` would be
  /// grantable, then return success WITHOUT holding anything.
  Status LockInstant(TxnId txn, const LockName& name, LockMode mode,
                     int64_t timeout_ms = -1);

  /// Release this transaction's lock on `name` (whatever its mode).
  Status Unlock(TxnId txn, const LockName& name);

  /// Downgrade a held lock (e.g. S -> IS after moving to record locks).
  Status Downgrade(TxnId txn, const LockName& name, LockMode mode);

  /// Release every lock the transaction holds (end of transaction / abort).
  void ReleaseAll(TxnId txn);

  /// Mode currently held by txn on name, or nullopt semantics via ok flag.
  bool HeldMode(TxnId txn, const LockName& name, LockMode* mode) const;

  /// Number of distinct lock names currently held by txn.
  size_t HeldCount(TxnId txn) const;

  LockStats stats() const;
  void ResetStats();

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool converting = false;
    bool instant = false;
    bool granted = false;
    bool killed = false;  // deadlock victim
  };

  struct Queue {
    std::map<TxnId, LockMode> holders;
    std::list<Waiter*> waiters;
  };

  // All Locked* helpers require mu_ held.
  bool LockedGrantable(const Queue& q, TxnId txn, LockMode mode,
                       bool converting, const Waiter* self) const;
  bool LockedConflictsWithGrantedRX(const Queue& q, TxnId txn,
                                    LockMode mode) const;
  // Detect a waits-for cycle involving `txn`; returns the victim (or
  // kInvalidTxnId if no cycle).
  TxnId LockedFindDeadlockVictim(TxnId txn) const;
  void LockedBuildWaitsFor(
      std::unordered_map<TxnId, std::vector<TxnId>>* graph) const;

  Status LockImpl(TxnId txn, const LockName& name, LockMode mode,
                  bool instant, int64_t timeout_ms);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<LockName, Queue> queues_;
  std::unordered_map<TxnId, std::vector<LockName>> held_;
  LockStats stats_;
};

}  // namespace soreorg

#endif  // SOREORG_TXN_LOCK_MANAGER_H_
