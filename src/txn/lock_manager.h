// LockManager: the concurrency engine behind the paper's protocols (§4).
//
// Features beyond a textbook multi-granularity lock manager:
//   * the R / RX / RS modes of Table 1 (see lock_mode.h);
//   * **back-off on RX conflict**: when a request conflicts with a *granted*
//     RX lock, the requester is not enqueued — Lock() returns
//     Status::kBackoff and the caller must release its parent lock and wait
//     via an instant-duration RS lock on the parent (reader/updater
//     protocols §4.1.2–4.1.3);
//   * **instant-duration unconditional locks** (Mohan '90): LockInstant()
//     blocks until the mode would be grantable, then returns success without
//     granting anything. Used for RS waits and for the side file's
//     instant-duration IX during the switch (§7.2). Instant requests bypass
//     lock conversion entirely: the requested mode is evaluated as-is
//     against the *other* holders, never combined with the requester's own
//     holding via LockSupremum;
//   * lock conversion (the reorganizer upgrades its base-page R locks to X
//     after moving records); conversions have priority over fresh waiters;
//   * waits-for deadlock detection with the paper's victim policy: if the
//     reorganizer is anywhere in the cycle, *the reorganizer loses* (§4.1);
//     otherwise the requester that closed the cycle loses;
//   * optional wait timeouts (the switcher's bounded wait for the old-tree
//     X lock, §7.4);
//   * a runtime invariant checker (lock_invariants.h) validating the
//     Table-1 discipline on every grant — installed by default in debug and
//     sanitizer builds, a single null-pointer test in release;
//   * an event hook stream (SetEventHook) that the deterministic schedule
//     harness (src/sim/schedule.h) uses to serialize multi-threaded tests
//     into reproducible interleavings.
//
// Lock names are (space, id) pairs so trees, pages, records, and the side
// file live in one namespace.
//
// Concurrency: the lock table is striped N ways (N a power of two, default
// 16; 1 restores the old single-mutex manager). A name's stripe is chosen by
// a mix of (space, id) and each stripe owns its own mutex and queue map, so
// acquire/release on names in different stripes never contend. Wakeups are
// per-waiter: every queued Waiter carries its own condition variable plus a
// `signaled` token, and an unlock/downgrade/release wakes only the waiters
// whose request became grantable (or that must wake to observe a kill or an
// RX back-off) — no broadcast, no thundering herd. The per-transaction
// held-lock index is sharded by TxnId behind its own mutexes, so ReleaseAll
// touches only the stripes of the names it actually holds.
//
// Lock order (violations deadlock the manager itself):
//   1. Multi-stripe operations — deadlock sweeps with their kill rounds,
//      CheckInvariantsNow, QueueCount — take stripe mutexes in ascending
//      stripe-index order while holding no other manager mutex. A blocked
//      request therefore *releases* its own stripe before sweeping (its
//      Waiter stays queued; every condition is re-checked after relocking).
//   2. A held-shard mutex may be taken while holding one stripe mutex
//      (stripe → held-shard); code holding a held-shard mutex never takes a
//      stripe mutex.
//   3. Stripe mutexes are leaves with respect to the rest of the system:
//      the manager calls out (event hooks) only with all of its mutexes
//      released, and callers on the commit path go lock table → WAL, never
//      the reverse (see DESIGN.md §9).

#ifndef SOREORG_TXN_LOCK_MANAGER_H_
#define SOREORG_TXN_LOCK_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/txn/lock_mode.h"
#include "src/util/status.h"
#include "src/wal/log_record.h"  // TxnId

namespace soreorg {

class LockInvariantChecker;

enum class LockSpace : uint8_t {
  kTree = 0,      // the per-tree ("file") lock; id = tree incarnation
  kPage = 1,      // page locks; id = page id
  kRecord = 2,    // record locks; id = key hash
  kSideFile = 3,  // the side-file table lock; id = 0
  kSideKey = 4,   // record locks inside the side file; id = key hash
};

struct LockName {
  LockSpace space;
  uint64_t id;

  bool operator==(const LockName& o) const {
    return space == o.space && id == o.id;
  }
  bool operator<(const LockName& o) const {
    if (space != o.space) return space < o.space;
    return id < o.id;
  }
};

LockName TreeLock(uint64_t tree_incarnation);
LockName PageLock(uint32_t page_id);
LockName RecordLock(const std::string& key);
LockName SideFileLock();
LockName SideKeyLock(const std::string& key);

struct LockStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;         // requests that blocked at least once
  uint64_t backoffs = 0;      // kBackoff returns (RX conflicts)
  uint64_t deadlocks = 0;
  uint64_t timeouts = 0;
  uint64_t instant_grants = 0;
  uint64_t conversions = 0;
};

/// Observable milestones of a lock request's lifetime, emitted (with every
/// manager mutex released) to the installed event hook. kWait fires once
/// when a request first blocks; a terminal event (kGranted / kInstantGranted
/// / kBusy / kBackoff / kDeadlock / kTimeout) fires when the call returns.
enum class LockEvent : uint8_t {
  kRequest = 0,
  kWait = 1,
  kGranted = 2,
  kInstantGranted = 3,
  kBusy = 4,
  kBackoff = 5,
  kDeadlock = 6,
  kTimeout = 7,
  kUnlock = 8,
  kReleaseAll = 9,
};

const char* LockEventName(LockEvent e);

class LockManager {
 public:
  using EventHook =
      std::function<void(LockEvent, TxnId, const LockName&, LockMode)>;

  /// `num_stripes` = 0 picks the default (16). An explicit value is rounded
  /// up to a power of two and capped at kMaxStripes; 1 collapses the table
  /// to the old single-mutex manager (exact legacy semantics, used by the
  /// stripe-equivalence tests).
  explicit LockManager(size_t num_stripes = 0);
  ~LockManager();

  /// Acquire (or convert to) `mode` on `name`. Blocks until granted.
  /// Returns kBackoff on a granted-RX conflict, kDeadlock if this request
  /// closed a cycle and lost (or another thread killed this waiter as a
  /// deadlock victim), and kTimedOut if timeout_ms >= 0 elapsed.
  Status Lock(TxnId txn, const LockName& name, LockMode mode,
              int64_t timeout_ms = -1);

  /// Non-blocking attempt. Returns kBusy instead of waiting.
  Status TryLock(TxnId txn, const LockName& name, LockMode mode);

  /// Instant-duration unconditional request: wait until `mode` would be
  /// grantable, then return success WITHOUT holding anything.
  Status LockInstant(TxnId txn, const LockName& name, LockMode mode,
                     int64_t timeout_ms = -1);

  /// Release this transaction's lock on `name` (whatever its mode).
  Status Unlock(TxnId txn, const LockName& name);

  /// Downgrade a held lock (e.g. S -> IS after moving to record locks).
  Status Downgrade(TxnId txn, const LockName& name, LockMode mode);

  /// Release every lock the transaction holds (end of transaction / abort).
  void ReleaseAll(TxnId txn);

  /// Mode currently held by txn on name, or nullopt semantics via ok flag.
  bool HeldMode(TxnId txn, const LockName& name, LockMode* mode) const;

  /// Number of distinct lock names currently held by txn.
  size_t HeldCount(TxnId txn) const;

  /// Number of stripes the table was built with (power of two).
  size_t stripe_count() const { return stripes_.size(); }

  /// Total number of lock queues currently materialized across all stripes.
  /// Empty queues are erased on last release, so this tracks *live* names —
  /// the regression oracle for the old leak where every name ever locked
  /// left a map entry behind.
  size_t QueueCount() const;

  LockStats stats() const;
  void ResetStats();

  /// Install `hook` to receive LockEvent notifications. The hook is invoked
  /// with every manager mutex released, so it may block (the schedule
  /// harness does). Install before concurrent use; not thread-safe against
  /// in-flight operations.
  void SetEventHook(EventHook hook);

  /// Install an invariant checker (see lock_invariants.h). Passing nullptr
  /// restores the build-default checker (abort-on-violation in debug and
  /// sanitizer builds, none in release). The checker must outlive its use.
  /// Install before concurrent use.
  void SetInvariantChecker(LockInvariantChecker* checker);

  /// The checker currently receiving lock events: the one installed via
  /// SetInvariantChecker, the build default, or nullptr (release builds).
  /// The Switcher uses it to bracket the §7.4 switch window so invariant (f)
  /// knows when a release-reacquire of the side-file X lock is legal.
  LockInvariantChecker* invariant_checker() const { return checker_; }

  /// Re-validate every queue against the Table-1 invariants now (test use).
  void CheckInvariantsNow();

  /// Lock-free isolation summary for the optimistic read path. Nonzero
  /// (true) means some transaction currently holds a *page-space* lock that
  /// is incompatible with a reader's S mode (X, IX, RX) on a page id
  /// hashing to `page_id`'s mark slot — i.e. the page may carry uncommitted
  /// record changes or be mid-structure-modification, and a latch-free
  /// reader must fall back to the Table-1 S-lock protocol instead of using
  /// its captured image. False negatives are impossible by construction
  /// (the counter is bumped when such a lock is granted, before the holder
  /// can touch page bytes under the latch, and only dropped at release);
  /// false positives (hash sharing, 4096 slots) merely cost a fallback.
  ///
  /// Why a reader may trust a zero AFTER a version-validated capture: if the
  /// capture observed any bytes a lock holder wrote, the holder's exclusive
  /// latch release (version bump) happens-before the reader's validating
  /// load, and the mark increment is sequenced before every latched write —
  /// so the reader's subsequent mark load sees the increment unless the
  /// holder has already released the lock, which under strict 2PL means the
  /// transaction committed (or finished undoing, bumping the version and
  /// failing the capture) first.
  bool PageSharedReadBlocked(uint32_t page_id) const;

  static constexpr size_t kPageMarkSlots = 4096;

  /// TEST ONLY: install `txn` as a holder of `mode` on `name` without any
  /// compatibility or protocol checking, then run the invariant checker on
  /// the resulting queue. This is the seeded-violation backdoor for the
  /// checker's negative tests; production code must never call it.
  void ForceGrantForTest(TxnId txn, const LockName& name, LockMode mode);

  static constexpr size_t kDefaultStripes = 16;
  static constexpr size_t kMaxStripes = 256;

 private:
  friend class LockInvariantChecker;

  struct Waiter {
    Waiter(TxnId t, LockMode m, bool conv, bool inst)
        : txn(t), mode(m), converting(conv), instant(inst) {}
    TxnId txn;
    LockMode mode;
    bool converting = false;
    bool instant = false;
    bool granted = false;
    bool killed = false;    // deadlock victim
    bool signaled = false;  // wake token, consumed by the owning thread
    // Per-waiter wakeup channel: exactly one thread ever waits on it, and
    // it is signaled only by code holding this waiter's stripe mutex.
    std::condition_variable cv;
  };

  struct Queue {
    std::map<TxnId, LockMode> holders;
    std::list<Waiter*> waiters;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::map<LockName, Queue> queues;
  };

  struct HeldShard {
    mutable std::mutex mu;
    std::unordered_map<TxnId, std::vector<LockName>> held;
  };

  static size_t PickStripeCount(size_t requested);
  size_t StripeIndex(const LockName& name) const;
  Stripe& stripe_for(const LockName& name);
  const Stripe& stripe_for(const LockName& name) const;
  HeldShard& held_shard_for(TxnId txn);
  const HeldShard& held_shard_for(TxnId txn) const;

  // Held-lock index maintenance. May be called with the name's stripe mutex
  // held (stripe → held-shard order) but never the other way around.
  void RecordHeld(TxnId txn, const LockName& name);
  void ForgetHeld(TxnId txn, const LockName& name);

  // All Locked* helpers require the queue's stripe mutex held.
  // `skip_queue_check` bypasses the FIFO no-overtaking rule: conversions
  // have priority over fresh waiters, and instant-duration requests are
  // judged against holders only ("would the mode be grantable right now").
  bool LockedGrantable(const Queue& q, TxnId txn, LockMode mode,
                       bool skip_queue_check, const Waiter* self) const;
  bool LockedConflictsWithGrantedRX(const Queue& q, TxnId txn,
                                    LockMode mode) const;
  // Hand a wake token to every waiter that could now make progress: its
  // request became grantable, it was killed, or a granted RX now forces it
  // to wake and return kBackoff. The woken thread re-evaluates under the
  // stripe mutex, so a spurious token is harmless.
  void LockedWakeWaiters(Queue& q);
  // Erase the queue's map node once it has neither holders nor waiters
  // (waiting threads hold a reference to the node across their sleep, so a
  // queue with waiters is never erased).
  void LockedMaybeEraseQueue(Stripe& stripe,
                             std::map<LockName, Queue>::iterator qit);
  void LockedCheckHolders(const LockName& name, const Queue& q);

  // Deadlock detection over a consistent multi-stripe snapshot: takes every
  // stripe mutex in ascending index order (caller must hold none), builds
  // the global waits-for graph, and — if `txn` closed a cycle — applies the
  // paper's victim policy. A victim other than `txn` has all of its pending
  // waits killed (and woken) before the stripes are released, so the cycle
  // cannot survive the sweep. Returns the victim or kInvalidTxnId.
  TxnId GlobalDeadlockSweep(TxnId txn);
  void AllLockedBuildWaitsFor(
      std::unordered_map<TxnId, std::vector<TxnId>>* graph) const;

  /// True iff a grant of `mode` on `name` must be reflected in the page
  /// marks: page-space names whose mode is incompatible with kS.
  static bool PageMarkedMode(const LockName& name, LockMode mode);
  static size_t PageMarkSlot(uint64_t id);
  /// Maintain the page marks across a holder transition on `name` (called
  /// at every site that inserts, overwrites, or erases a q.holders entry,
  /// with the stripe mutex held). `from`/`to` are null for absent.
  void NoteHolderChange(const LockName& name, const LockMode* from,
                        const LockMode* to);

  Status LockImpl(TxnId txn, const LockName& name, LockMode mode,
                  bool instant, int64_t timeout_ms);
  // The blocking core of LockImpl; the wrapper adds event notifications.
  Status LockWait(TxnId txn, const LockName& name, LockMode mode, bool instant,
                  int64_t timeout_ms);

  void Notify(LockEvent e, TxnId txn, const LockName& name, LockMode mode);

  std::vector<Stripe> stripes_;  // size is a power of two; never resized
  size_t stripe_mask_;
  std::vector<HeldShard> held_shards_;  // sized with stripes_; never resized
  size_t held_mask_;

  struct AtomicStats {
    std::atomic<uint64_t> acquisitions{0};
    std::atomic<uint64_t> waits{0};
    std::atomic<uint64_t> backoffs{0};
    std::atomic<uint64_t> deadlocks{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> instant_grants{0};
    std::atomic<uint64_t> conversions{0};
  };
  AtomicStats stats_;

  // Page-exclusive mark counters (see PageSharedReadBlocked). Writes happen
  // under the owning name's stripe mutex; reads are lock-free.
  std::unique_ptr<std::atomic<uint32_t>[]> page_marks_;

  EventHook event_hook_;
  LockInvariantChecker* checker_ = nullptr;
  std::unique_ptr<LockInvariantChecker> default_checker_;
};

}  // namespace soreorg

#endif  // SOREORG_TXN_LOCK_MANAGER_H_
