// Transaction: identity + WAL chain + lock set for one unit of user work.
//
// Undo is driven by the per-transaction prev_lsn chain (ARIES style); the
// actual inverse operations are applied by whoever owns the data structure
// (the B+-tree registers an undo applier with the TransactionManager).

#ifndef SOREORG_TXN_TRANSACTION_H_
#define SOREORG_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>

#include "src/storage/page.h"
#include "src/wal/log_record.h"

namespace soreorg {

enum class TxnState : uint8_t {
  kActive = 0,
  kCommitted = 1,
  kAborted = 2,
};

class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  TxnId id() const { return id_; }

  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  /// LSN of this transaction's most recent log record (prev_lsn of the next).
  Lsn last_lsn() const { return last_lsn_; }
  void set_last_lsn(Lsn lsn) {
    if (first_lsn_ == kInvalidLsn) first_lsn_ = lsn;
    last_lsn_ = lsn;
  }

  /// LSN of this transaction's first log record — the low end of its undo
  /// chain. WAL truncation must never remove a segment at or above the
  /// oldest active transaction's first_lsn, or a later abort could not walk
  /// its prev_lsn chain.
  Lsn first_lsn() const { return first_lsn_; }

 private:
  TxnId id_;
  TxnState state_ = TxnState::kActive;
  Lsn last_lsn_ = kInvalidLsn;
  Lsn first_lsn_ = kInvalidLsn;
};

}  // namespace soreorg

#endif  // SOREORG_TXN_TRANSACTION_H_
