// RecoveryManager: restart processing.
//
// Standard part (ARIES-lite, [GR93]):
//   * analysis — locate the latest checkpoint, restore allocation state,
//     the active-transaction table, the reorganization table and the side
//     file image;
//   * redo — replay the log forward, pageLSN-idempotently, including the
//     reorganizer's MOVE/MODIFY records (keys-only MOVE redo relies on the
//     careful-writing invariant: a source page whose move is not yet
//     reflected on disk still holds the record bodies);
//   * undo — roll back loser transactions *logically* with CLRs.
//
// Paper-specific part (§5.1, Forward Recovery): the one possibly-incomplete
// reorganization unit is NOT undone. Its records are collected and handed
// to Reorganizer::FinishIncompleteUnit, which re-acquires the unit's locks
// and completes the remaining work. For the E4 ablation an explicit
// kRollback policy is also implemented: the unit's moves are inverted and
// its work is lost, exactly what the paper's comparison baseline does.
//
// Pass-3 restart (§7.3): internal-page allocations after the most recent
// STABLE_KEY record are reclaimed, side-file entries beyond the stable key
// are pruned, and the (stable key, partial-tree top) pair is reported so
// the caller can resume TreeBuilder from there.

#ifndef SOREORG_RECOVERY_RECOVERY_MANAGER_H_
#define SOREORG_RECOVERY_RECOVERY_MANAGER_H_

#include <map>
#include <vector>

#include "src/btree/btree.h"
#include "src/reorg/side_file.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/wal/checkpoint.h"
#include "src/wal/log_manager.h"

namespace soreorg {

enum class RecoveryPolicy : uint8_t {
  kForward = 0,   // the paper's contribution
  kRollback = 1,  // conventional: abort the incomplete unit
};

struct RecoveryResult {
  PageId tree_root = kInvalidPageId;
  uint8_t tree_height = 0;
  uint64_t tree_incarnation = 1;
  TxnId next_txn_id = kFirstUserTxnId;
  ReorgTableSnapshot reorg;
  std::vector<std::pair<TxnId, Lsn>> losers;
  /// Records (BEGIN..last) of the one possibly-incomplete reorg unit.
  std::vector<LogRecord> incomplete_unit_records;
  /// Pass-3 restart point (empty stable key = no build in progress).
  std::string pass3_stable_key;
  PageId pass3_partial_top = kInvalidPageId;

  uint64_t records_scanned = 0;
  uint64_t records_redone = 0;
  uint64_t pass3_pages_reclaimed = 0;

  // I/O forensics for this recovery. A torn WAL tail is the normal
  // post-crash state (surfaced here, not an error); mid-log corruption and
  // page-checksum failures make Recover return Status::Corruption instead.
  bool wal_tail_torn = false;
  uint64_t wal_bytes_dropped = 0;
  uint64_t page_checksum_failures = 0;

  // Segment-level forensics (segmented WAL). segments_scanned counts the
  // segments redo actually visited — after a checkpoint it is bounded by
  // the log written since the redo floor, not by the log ever written.
  uint64_t segments_scanned = 0;
  uint64_t segments_recycled = 0;
  bool tail_segment_torn = false;
  uint64_t wal_bytes_scanned = 0;  // redo scan volume, for MB/s reporting

  // Parallel-redo forensics. With redo_threads <= 1 redo runs the serial
  // oracle; otherwise page-redo records are partitioned into page-disjoint
  // components and replayed by this many workers (per-thread counters are
  // distinct pages touched / records replayed).
  int redo_threads_used = 1;
  std::vector<uint64_t> redo_pages_per_thread;
  std::vector<uint64_t> redo_records_per_thread;
};

class RecoveryManager {
 public:
  RecoveryManager(DiskManager* disk, BufferPool* bp, LogManager* log,
                  CheckpointMaster* master, SideFile* side_file);

  /// Redo worker count: 1 = serial replay in log order (the verification
  /// oracle), 0 = auto (min(4, hardware threads)), N>1 = partitioned
  /// parallel redo. Parallel redo is order-safe because page redo is
  /// per-page-LSN gated and records are grouped into page-disjoint
  /// components (each replayed in log order by exactly one worker); the
  /// alloc-before-data interlock is preserved by running all allocation
  /// replay serially, in log order, before any page redo starts.
  void set_redo_threads(int n) { redo_threads_ = n; }

  /// Analysis + redo. Call before constructing/attaching the BTree.
  Status Recover(RecoveryResult* result);

  /// Logical undo of loser transactions with CLRs (call after Attach).
  Status UndoLosers(BTree* tree, const RecoveryResult& result);

  /// kRollback policy only (E4 ablation): invert the incomplete unit's
  /// moves/modifies so its work is lost, then close the unit.
  Status UndoIncompleteUnit(BTree* tree, const RecoveryResult& result);

  /// Rewrite every leaf's prev/next from key order (used after a rollback
  /// recovery, whose inversion cannot restore side pointers from the log).
  Status RepairSideChain(BTree* tree);

 private:
  Status RedoReorgMove(const LogRecord& rec);
  Status RedoReorgModify(const LogRecord& rec);
  /// Dispatch one page-redo record (kInsert..kNodeFree via BTree::RedoApply,
  /// kReorgMove/kReorgModify via the handlers above).
  Status ApplyPageRedo(const LogRecord& rec);
  /// Replay the page-redo records named by `indices` (into `records`, in
  /// ascending log order) across `threads` workers on page-disjoint
  /// components; fills the per-thread forensics in `result`.
  Status RunPageRedo(const std::vector<LogRecord>& records,
                     const std::vector<size_t>& indices, int threads,
                     RecoveryResult* result);

  DiskManager* disk_;
  BufferPool* bp_;
  LogManager* log_;
  CheckpointMaster* master_;
  SideFile* side_file_;
  int redo_threads_ = 1;
};

}  // namespace soreorg

#endif  // SOREORG_RECOVERY_RECOVERY_MANAGER_H_
