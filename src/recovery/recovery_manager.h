// RecoveryManager: restart processing.
//
// Standard part (ARIES-lite, [GR93]):
//   * analysis — locate the latest checkpoint, restore allocation state,
//     the active-transaction table, the reorganization table and the side
//     file image;
//   * redo — replay the log forward, pageLSN-idempotently, including the
//     reorganizer's MOVE/MODIFY records (keys-only MOVE redo relies on the
//     careful-writing invariant: a source page whose move is not yet
//     reflected on disk still holds the record bodies);
//   * undo — roll back loser transactions *logically* with CLRs.
//
// Paper-specific part (§5.1, Forward Recovery): the one possibly-incomplete
// reorganization unit is NOT undone. Its records are collected and handed
// to Reorganizer::FinishIncompleteUnit, which re-acquires the unit's locks
// and completes the remaining work. For the E4 ablation an explicit
// kRollback policy is also implemented: the unit's moves are inverted and
// its work is lost, exactly what the paper's comparison baseline does.
//
// Pass-3 restart (§7.3): internal-page allocations after the most recent
// STABLE_KEY record are reclaimed, side-file entries beyond the stable key
// are pruned, and the (stable key, partial-tree top) pair is reported so
// the caller can resume TreeBuilder from there.

#ifndef SOREORG_RECOVERY_RECOVERY_MANAGER_H_
#define SOREORG_RECOVERY_RECOVERY_MANAGER_H_

#include <map>
#include <vector>

#include "src/btree/btree.h"
#include "src/reorg/side_file.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/wal/checkpoint.h"
#include "src/wal/log_manager.h"

namespace soreorg {

enum class RecoveryPolicy : uint8_t {
  kForward = 0,   // the paper's contribution
  kRollback = 1,  // conventional: abort the incomplete unit
};

struct RecoveryResult {
  PageId tree_root = kInvalidPageId;
  uint8_t tree_height = 0;
  uint64_t tree_incarnation = 1;
  TxnId next_txn_id = kFirstUserTxnId;
  ReorgTableSnapshot reorg;
  std::vector<std::pair<TxnId, Lsn>> losers;
  /// Records (BEGIN..last) of the one possibly-incomplete reorg unit.
  std::vector<LogRecord> incomplete_unit_records;
  /// Pass-3 restart point (empty stable key = no build in progress).
  std::string pass3_stable_key;
  PageId pass3_partial_top = kInvalidPageId;

  uint64_t records_scanned = 0;
  uint64_t records_redone = 0;
  uint64_t pass3_pages_reclaimed = 0;

  // I/O forensics for this recovery. A torn WAL tail is the normal
  // post-crash state (surfaced here, not an error); mid-log corruption and
  // page-checksum failures make Recover return Status::Corruption instead.
  bool wal_tail_torn = false;
  uint64_t wal_bytes_dropped = 0;
  uint64_t page_checksum_failures = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(DiskManager* disk, BufferPool* bp, LogManager* log,
                  CheckpointMaster* master, SideFile* side_file);

  /// Analysis + redo. Call before constructing/attaching the BTree.
  Status Recover(RecoveryResult* result);

  /// Logical undo of loser transactions with CLRs (call after Attach).
  Status UndoLosers(BTree* tree, const RecoveryResult& result);

  /// kRollback policy only (E4 ablation): invert the incomplete unit's
  /// moves/modifies so its work is lost, then close the unit.
  Status UndoIncompleteUnit(BTree* tree, const RecoveryResult& result);

  /// Rewrite every leaf's prev/next from key order (used after a rollback
  /// recovery, whose inversion cannot restore side pointers from the log).
  Status RepairSideChain(BTree* tree);

 private:
  Status RedoReorgMove(const LogRecord& rec);
  Status RedoReorgModify(const LogRecord& rec);

  DiskManager* disk_;
  BufferPool* bp_;
  LogManager* log_;
  CheckpointMaster* master_;
  SideFile* side_file_;
};

}  // namespace soreorg

#endif  // SOREORG_RECOVERY_RECOVERY_MANAGER_H_
