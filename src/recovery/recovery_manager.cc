#include "src/recovery/recovery_manager.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/reorg/reorg_log.h"
#include "src/util/coding.h"

namespace soreorg {

namespace {

PageId DecodePid(const Slice& s) {
  return s.size() == 4 ? DecodeFixed32(s.data()) : kInvalidPageId;
}

/// True for record types whose replay mutates page images (everything the
/// page-redo dispatch in ApplyPageRedo handles).
bool IsPageRedoType(LogType t) {
  switch (t) {
    case LogType::kInsert:
    case LogType::kDelete:
    case LogType::kUpdate:
    case LogType::kClr:
    case LogType::kFormatPage:
    case LogType::kLinkPage:
    case LogType::kLeafSplit:
    case LogType::kInternalSplit:
    case LogType::kNodeFree:
    case LogType::kReorgMove:
    case LogType::kReorgModify:
      return true;
    default:
      return false;
  }
}

/// Every page a record's redo can read or write. This must stay in lockstep
/// with BTree::RedoApply / RedoReorgMove / RedoReorgModify: the parallel
/// partitioning is only sound if no two workers ever touch the same page,
/// and that guarantee is exactly "components are closed under these sets".
void TouchPages(const LogRecord& rec, std::vector<PageId>* out) {
  out->clear();
  auto add = [out](PageId p) {
    if (p != kInvalidPageId) out->push_back(p);
  };
  switch (rec.type) {
    case LogType::kInsert:
    case LogType::kDelete:
    case LogType::kUpdate:
    case LogType::kClr:
    case LogType::kFormatPage:
    case LogType::kLinkPage:
    case LogType::kReorgModify:
      add(rec.page_id);
      break;
    case LogType::kLeafSplit:
      add(rec.page_id);
      add(rec.page_id2);
      // Two-way side pointers re-point the old next leaf's prev.
      if (static_cast<SidePointerMode>(rec.flags) == SidePointerMode::kTwoWay) {
        add(DecodePid(rec.value));
      }
      break;
    case LogType::kInternalSplit:
      add(rec.page_id);
      add(rec.page_id2);
      // A root split formats the new root named in value2.
      if (rec.page_id3 == kInvalidPageId) add(DecodePid(rec.value2));
      break;
    case LogType::kNodeFree:
      add(rec.page_id);   // the freed leaf (deallocated, but keep it closed)
      add(rec.page_id2);  // prev leaf re-linked
      add(rec.page_id3);  // parent loses the child entry
      add(DecodePid(rec.value));  // next leaf re-linked
      break;
    case LogType::kReorgMove:
      add(rec.page_id);
      add(rec.page_id2);
      break;
    default:
      break;
  }
}

}  // namespace

RecoveryManager::RecoveryManager(DiskManager* disk, BufferPool* bp,
                                 LogManager* log, CheckpointMaster* master,
                                 SideFile* side_file)
    : disk_(disk), bp_(bp), log_(log), master_(master), side_file_(side_file) {}

Status RecoveryManager::RedoReorgMove(const LogRecord& rec) {
  PageId org = rec.page_id;
  PageId dest = rec.page_id2;

  if (rec.flags & kSwapImages) {
    // Swap redo: the payload is org's pre-swap image; careful writing
    // guarantees dest (which received org's image) never reached disk
    // before org did.
    Page* a;
    Status s = bp_->FetchPage(org, &a);
    if (!s.ok()) return s;
    Page* b;
    s = bp_->FetchPage(dest, &b);
    if (!s.ok()) {
      bp_->UnpinPage(org, false);
      return s;
    }
    bool a_stale = a->page_lsn() < rec.lsn;
    bool b_stale = b->page_lsn() < rec.lsn;
    if ((a_stale && a->type() != PageType::kLeaf) ||
        (b_stale && b->type() != PageType::kLeaf)) {
      bp_->UnpinPage(org, false);
      bp_->UnpinPage(dest, false);
      return Status::Corruption("swap redo found a non-leaf image at a stale "
                                "org/dest page");
    }
    std::vector<std::string> image_cells;
    UnpackCells(rec.payload, &image_cells);
    if (a_stale && b_stale) {
      SlottedPage spa(a);
      std::vector<std::string> b_new;  // a's new content = b's old cells
      SlottedPage spb(b);
      for (int i = 0; i < spb.slot_count(); ++i) {
        b_new.push_back(spb.GetCell(i).ToString());
      }
      spa.Clear();
      for (size_t i = 0; i < b_new.size(); ++i) {
        spa.InsertCell(static_cast<int>(i), b_new[i]);
      }
      spb.Clear();
      for (size_t i = 0; i < image_cells.size(); ++i) {
        spb.InsertCell(static_cast<int>(i), image_cells[i]);
      }
      a->set_page_lsn(rec.lsn);
      b->set_page_lsn(rec.lsn);
      bp_->UnpinPage(org, true);
      bp_->UnpinPage(dest, true);
    } else if (b_stale) {
      SlottedPage spb(b);
      spb.Clear();
      for (size_t i = 0; i < image_cells.size(); ++i) {
        spb.InsertCell(static_cast<int>(i), image_cells[i]);
      }
      b->set_page_lsn(rec.lsn);
      bp_->UnpinPage(org, false);
      bp_->UnpinPage(dest, true);
    } else {
      bp_->UnpinPage(org, false);
      bp_->UnpinPage(dest, false);
    }
    bp_->AddWriteOrder(org, dest);
    return Status::OK();
  }

  Page* src_page;
  Status s = bp_->FetchPage(org, &src_page);
  if (!s.ok()) return s;
  Page* dest_page;
  s = bp_->FetchPage(dest, &dest_page);
  if (!s.ok()) {
    bp_->UnpinPage(org, false);
    return s;
  }

  bool dest_stale = dest_page->page_lsn() < rec.lsn;
  bool src_stale = src_page->page_lsn() < rec.lsn;
  // A stale image must still be the leaf this record was logged against:
  // checkpoints are sharp, formats precede moves in the log, and recycled
  // page ids carry an LSN stamp newer than any old-tree record. Anything
  // else is a careful-writing violation — refuse rather than reinterpret
  // another page type as leaf cells.
  if ((src_stale && src_page->type() != PageType::kLeaf) ||
      (dest_stale && dest_page->type() != PageType::kLeaf)) {
    bp_->UnpinPage(org, false);
    bp_->UnpinPage(dest, false);
    return Status::Corruption("reorg move redo found a non-leaf image at a "
                              "stale org/dest page");
  }
  bool touched_dest = false, touched_src = false;

  if (rec.flags & kMoveKeysOnly) {
    std::vector<std::string> keys;
    s = DecodeMovedKeys(rec.payload, &keys);
    if (!s.ok()) {
      bp_->UnpinPage(org, false);
      bp_->UnpinPage(dest, false);
      return s;
    }
    if (dest_stale) {
      LeafNode sl(src_page);
      LeafNode dl(dest_page);
      for (const std::string& k : keys) {
        bool exact;
        int pos = sl.LowerBound(k, &exact);
        if (!exact) continue;  // careful-writing invariant violated?
        bool dexact;
        dl.LowerBound(k, &dexact);
        if (!dexact) dl.Insert(k, sl.ValueAt(pos));
      }
      dest_page->set_page_lsn(rec.lsn);
      touched_dest = true;
    }
    if (src_stale) {
      LeafNode sl(src_page);
      for (const std::string& k : keys) {
        bool exact;
        int pos = sl.LowerBound(k, &exact);
        if (exact) sl.RemoveAt(pos);
      }
      src_page->set_page_lsn(rec.lsn);
      touched_src = true;
    }
    // Re-establish the write-order dependency for the rest of recovery.
    bp_->AddWriteOrder(dest, org);
  } else {
    std::vector<std::pair<std::string, std::string>> records;
    s = DecodeMovedRecords(rec.payload, &records);
    if (!s.ok()) {
      bp_->UnpinPage(org, false);
      bp_->UnpinPage(dest, false);
      return s;
    }
    if (dest_stale) {
      LeafNode dl(dest_page);
      for (const auto& [k, v] : records) {
        bool exact;
        dl.LowerBound(k, &exact);
        if (!exact) dl.Insert(k, v);
      }
      dest_page->set_page_lsn(rec.lsn);
      touched_dest = true;
    }
    if (src_stale) {
      LeafNode sl(src_page);
      for (const auto& [k, v] : records) {
        bool exact;
        int pos = sl.LowerBound(k, &exact);
        if (exact) sl.RemoveAt(pos);
      }
      src_page->set_page_lsn(rec.lsn);
      touched_src = true;
    }
  }
  bp_->UnpinPage(org, touched_src);
  bp_->UnpinPage(dest, touched_dest);
  return Status::OK();
}

Status RecoveryManager::RedoReorgModify(const LogRecord& rec) {
  Page* page;
  Status s = bp_->FetchPage(rec.page_id, &page);
  if (!s.ok()) return s;
  if (page->page_lsn() >= rec.lsn) {
    bp_->UnpinPage(rec.page_id, false);
    return Status::OK();
  }
  if (page->type() != PageType::kInternal) {
    bp_->UnpinPage(rec.page_id, false);
    return Status::Corruption("reorg modify redo found a non-internal image "
                              "at a stale base page");
  }
  InternalNode node(page);
  PageId org_pid = DecodePid(rec.value);
  PageId new_pid = DecodePid(rec.value2);
  if (new_pid == kInvalidPageId) {
    // Removal of (org key -> org pid).
    bool exact;
    int pos = node.LowerBound(rec.key, &exact);
    if (exact && node.ChildAt(pos) == org_pid) node.RemoveAt(pos);
  } else if (rec.key.empty() && org_pid == kInvalidPageId &&
             !rec.key2.empty()) {
    // Insertion of (new key -> new pid).
    bool exact;
    node.LowerBound(rec.key2, &exact);
    if (!exact) node.Insert(rec.key2, new_pid);
  } else {
    // Replacement.
    bool exact;
    int pos = node.LowerBound(rec.key, &exact);
    if (exact) {
      if (rec.key == rec.key2) {
        node.SetChildAt(pos, new_pid);
      } else {
        node.RemoveAt(pos);
        bool e2;
        node.LowerBound(rec.key2, &e2);
        if (!e2) node.Insert(rec.key2, new_pid);
      }
    }
  }
  page->set_page_lsn(rec.lsn);
  bp_->UnpinPage(rec.page_id, true);
  return Status::OK();
}

Status RecoveryManager::Recover(RecoveryResult* result) {
  // --- analysis: checkpoint ---------------------------------------------------
  Lsn start_lsn = 0;
  CheckpointImage image;
  bool have_ckpt = false;
  Lsn ckpt_lsn;
  Status s = master_->Load(&ckpt_lsn);
  if (s.ok()) {
    LogRecord ck;
    s = log_->ReadAt(ckpt_lsn, &ck);
    if (!s.ok()) return s;
    if (ck.type != LogType::kCheckpoint) {
      return Status::Corruption("master points at non-checkpoint record");
    }
    s = CheckpointImage::Parse(ck.payload, &image);
    if (!s.ok()) return s;
    have_ckpt = true;
    // Redo starts at the image's redo floor, captured before the
    // checkpoint's fuzzy flush walk began — not at the checkpoint record
    // itself: records logged during the walk may be only partially
    // reflected in the flushed pages and must be replayed. Replay over the
    // [redo_lsn, ckpt_lsn) prefix is idempotent: page redo is
    // pageLSN-guarded, allocation redo is set-idempotent, metadata replay
    // re-derives what the image already holds, and side-file redo is
    // watermark-gated below.
    start_lsn = image.redo_lsn != kInvalidLsn
                    ? std::min(image.redo_lsn, ckpt_lsn)
                    : ckpt_lsn;
  } else if (!s.IsNotFound()) {
    return s;
  }

  std::map<TxnId, Lsn> txn_table;
  if (have_ckpt) {
    s = disk_->RestoreMeta(image.disk_meta);
    if (!s.ok()) return s;
    for (const auto& [txn, lsn] : txn_table) (void)txn, (void)lsn;
    for (const auto& [txn, lsn] : image.active_txns) txn_table[txn] = lsn;
    result->tree_root = image.tree_root;
    result->tree_height = image.tree_height;
    result->tree_incarnation = image.tree_incarnation;
    result->next_txn_id = image.next_txn_id;
    result->reorg = image.reorg;
    if (side_file_ && !image.side_file_image.empty()) {
      s = side_file_->Restore(image.side_file_image);
      if (!s.ok()) return s;
    }
  }
  // Side records the restored image already reflects must not be replayed:
  // RedoInsert/RedoApply are positional (blind push/pop), not idempotent.
  const Lsn side_skip_lsn =
      (side_file_ != nullptr) ? side_file_->restored_lsn() : kInvalidLsn;

  // --- redo -------------------------------------------------------------------
  const uint64_t checksum_failures_before = disk_->checksum_failures();
  std::vector<LogRecord> records;
  LogReadStats log_stats;
  s = log_->ReadAll(&records, start_lsn, &log_stats);
  if (!s.ok()) return s;
  // The usual torn tail was already truncated by LogManager::Open, so fold
  // its account in with whatever this scan still sees.
  result->wal_tail_torn = log_stats.torn_tail || log_->open_dropped_bytes() > 0;
  result->wal_bytes_dropped =
      log_stats.dropped_bytes + log_->open_dropped_bytes();
  if (log_stats.mid_log_corruption) {
    // Valid frames exist beyond a bad one: the damage is not the usual torn
    // tail but a hole in the middle of the log. Replaying the prefix and
    // silently dropping committed records would be wrong — refuse.
    return Status::Corruption(
        "WAL has valid records beyond a corrupt frame (mid-log damage, not "
        "a torn tail)");
  }

  std::vector<size_t> page_redo_indices;
  bool unit_open = result->reorg.has_open_unit;
  uint32_t open_unit = result->reorg.unit;
  std::vector<LogRecord>& unit_records = result->incomplete_unit_records;
  std::vector<PageId> pass3_allocs_since_stable;
  bool pass3_active = result->reorg.reorg_bit;
  std::string stable_key = result->reorg.stable_key;
  PageId partial_top = result->reorg.new_tree_root;

  for (const LogRecord& rec : records) {
    ++result->records_scanned;
    if (have_ckpt && rec.lsn == ckpt_lsn) continue;  // the checkpoint itself

    // Transaction table maintenance.
    if (rec.txn_id >= kFirstUserTxnId) {
      if (rec.type == LogType::kCommit || rec.type == LogType::kAbort) {
        txn_table.erase(rec.txn_id);
      } else {
        txn_table[rec.txn_id] = rec.lsn;
      }
      if (rec.txn_id + 1 > result->next_txn_id) {
        result->next_txn_id = rec.txn_id + 1;
      }
    }

    // Allocation state.
    switch (rec.type) {
      case LogType::kAllocPage:
        disk_->AllocatePageAt(rec.page_id);
        if (rec.flags == 1) pass3_allocs_since_stable.push_back(rec.page_id);
        break;
      case LogType::kDeallocPage:
        disk_->DeallocatePage(rec.page_id);
        break;
      case LogType::kFormatPage:
        disk_->AllocatePageAt(rec.page_id);
        break;
      case LogType::kLeafSplit:
        disk_->AllocatePageAt(rec.page_id2);
        break;
      case LogType::kInternalSplit:
        disk_->AllocatePageAt(rec.page_id2);
        if (rec.page_id3 == kInvalidPageId) {
          disk_->AllocatePageAt(DecodePid(rec.value2));
        }
        break;
      case LogType::kNodeFree:
        disk_->DeallocatePage(rec.page_id);
        break;
      default:
        break;
    }

    // Page redo is deferred: the analysis pass completes all allocation
    // replay (above, in log order — the alloc-before-data interlock) and
    // metadata/side-file tracking first, then RunPageRedo below replays
    // these records, serially or partitioned across workers.
    if (IsPageRedoType(rec.type)) {
      page_redo_indices.push_back(&rec - records.data());
    }

    // Metadata + reorganization-table tracking.
    switch (rec.type) {
      case LogType::kRootChange:
        result->tree_root = rec.page_id;
        result->tree_height = rec.flags;
        break;
      case LogType::kTreeSwitch:
        result->tree_root = rec.page_id;
        result->tree_height = rec.flags;
        result->tree_incarnation = DecodeFixed64(rec.value.data());
        pass3_active = false;
        stable_key.clear();
        partial_top = kInvalidPageId;
        break;
      case LogType::kReorgBegin:
        unit_open = true;
        open_unit = rec.unit;
        unit_records.clear();
        unit_records.push_back(rec);
        break;
      case LogType::kReorgEnd:
        if (unit_open && rec.unit == open_unit) {
          unit_open = false;
          unit_records.clear();
        }
        result->reorg.largest_finished_key =
            std::max(result->reorg.largest_finished_key, rec.key);
        break;
      case LogType::kReorgMove:
      case LogType::kReorgModify:
        if (unit_open && rec.unit == open_unit) unit_records.push_back(rec);
        break;
      case LogType::kLinkPage:
      case LogType::kAllocPage:
      case LogType::kDeallocPage:
        if (unit_open && rec.unit == open_unit && rec.unit != 0) {
          unit_records.push_back(rec);
        }
        break;
      case LogType::kStableKey:
        pass3_active = true;
        stable_key = rec.key;
        partial_top = rec.page_id;
        pass3_allocs_since_stable.clear();
        break;
      case LogType::kSideInsert:
        if (side_file_ && rec.lsn > side_skip_lsn) {
          side_file_->RedoInsert(static_cast<BaseUpdateOp>(rec.unit_type),
                                 rec.key, rec.page_id);
        }
        break;
      case LogType::kSideApply:
        if (side_file_ && rec.lsn > side_skip_lsn) side_file_->RedoApply();
        break;
      case LogType::kSideCancel:
        if (side_file_ && rec.lsn > side_skip_lsn) {
          side_file_->RedoCancel(static_cast<BaseUpdateOp>(rec.unit_type),
                                 rec.key, rec.page_id);
        }
        break;
      default:
        break;
    }
  }

  // --- page redo --------------------------------------------------------------
  int threads = redo_threads_;
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(std::min(4u, hw == 0 ? 1u : hw));
  }
  s = RunPageRedo(records, page_redo_indices, threads, result);
  if (!s.ok()) return s;

  // Segment-level forensics.
  result->segments_scanned = log_stats.segments_scanned;
  result->segments_recycled = log_->segments_recycled();
  result->tail_segment_torn = result->wal_tail_torn;
  uint64_t scan_base = start_lsn == 0 ? 0 : start_lsn - 1;
  result->wal_bytes_scanned =
      log_stats.valid_bytes > scan_base ? log_stats.valid_bytes - scan_base : 0;

  // --- analysis wrap-up ---------------------------------------------------------
  result->losers.assign(txn_table.begin(), txn_table.end());
  result->reorg.has_open_unit = unit_open;
  result->reorg.unit = open_unit;
  if (unit_open && !unit_records.empty()) {
    result->reorg.begin_lsn = unit_records.front().lsn;
    result->reorg.recent_lsn = unit_records.back().lsn;
  }
  result->reorg.reorg_bit = pass3_active;
  result->reorg.stable_key = stable_key;
  result->reorg.new_tree_root = partial_top;

  if (pass3_active) {
    // §7.3: reclaim pass-3 space allocated after the most recent force
    // write, and drop side-file entries the restarted builder will re-read.
    for (PageId p : pass3_allocs_since_stable) {
      disk_->DeallocatePage(p);
      ++result->pass3_pages_reclaimed;
    }
    if (side_file_) {
      if (stable_key.empty()) {
        side_file_->Clear();
      } else {
        side_file_->PruneBeyond(stable_key);
      }
    }
    result->pass3_stable_key = stable_key;
    result->pass3_partial_top = partial_top;
  }
  result->page_checksum_failures =
      disk_->checksum_failures() - checksum_failures_before;
  return Status::OK();
}

Status RecoveryManager::ApplyPageRedo(const LogRecord& rec) {
  switch (rec.type) {
    case LogType::kReorgMove:
      return RedoReorgMove(rec);
    case LogType::kReorgModify:
      return RedoReorgModify(rec);
    default:
      return BTree::RedoApply(bp_, rec);
  }
}

Status RecoveryManager::RunPageRedo(const std::vector<LogRecord>& records,
                                    const std::vector<size_t>& indices,
                                    int threads, RecoveryResult* result) {
  if (threads <= 1 || indices.size() < 2) {
    // Serial oracle: replay in log order, exactly the pre-partitioned path.
    result->redo_threads_used = 1;
    result->redo_pages_per_thread.assign(1, 0);
    result->redo_records_per_thread.assign(1, 0);
    std::unordered_set<PageId> pages;
    std::vector<PageId> touched;
    for (size_t idx : indices) {
      Status s = ApplyPageRedo(records[idx]);
      if (!s.ok()) return s;
      ++result->records_redone;
      ++result->redo_records_per_thread[0];
      TouchPages(records[idx], &touched);
      for (PageId p : touched) pages.insert(p);
    }
    result->redo_pages_per_thread[0] = pages.size();
    return Status::OK();
  }

  // Union-find over page ids: two records sharing any page land in the same
  // component, so no two workers can ever touch the same page. Per-page LSN
  // gates make replay idempotent; log order within a component (preserved
  // below) makes it order-correct; disjointness makes it race-free — the
  // final images are bit-identical to the serial oracle's.
  std::unordered_map<PageId, PageId> parent;
  std::function<PageId(PageId)> find = [&](PageId p) {
    auto it = parent.find(p);
    if (it == parent.end()) {
      parent.emplace(p, p);
      return p;
    }
    PageId root = p;
    while (parent[root] != root) root = parent[root];
    while (parent[p] != root) {
      PageId next = parent[p];
      parent[p] = root;
      p = next;
    }
    return root;
  };
  std::vector<PageId> touched;
  for (size_t idx : indices) {
    TouchPages(records[idx], &touched);
    if (touched.empty()) continue;
    PageId root = find(touched[0]);
    for (size_t i = 1; i < touched.size(); ++i) {
      parent[find(touched[i])] = root;
      root = find(root);
    }
  }
  // Group record indices by component root; each group stays in log order
  // because `indices` is ascending.
  std::unordered_map<PageId, size_t> comp_slot;
  std::vector<std::vector<size_t>> components;
  for (size_t idx : indices) {
    TouchPages(records[idx], &touched);
    if (touched.empty()) continue;
    PageId root = find(touched[0]);
    auto [it, inserted] = comp_slot.emplace(root, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(idx);
  }

  if (components.empty()) {
    result->redo_threads_used = 1;
    result->redo_pages_per_thread.assign(1, 0);
    result->redo_records_per_thread.assign(1, 0);
    return Status::OK();
  }
  const int t = static_cast<int>(
      std::min(static_cast<size_t>(threads), components.size()));
  result->redo_threads_used = t;
  result->redo_pages_per_thread.assign(t, 0);
  result->redo_records_per_thread.assign(t, 0);

  // Components are already ordered by first-touch record index; deal them
  // round-robin so early (usually large) components spread across workers.
  std::vector<std::vector<size_t>> plan(t);
  for (size_t c = 0; c < components.size(); ++c) {
    auto& lane = plan[c % t];
    lane.insert(lane.end(), components[c].begin(), components[c].end());
  }
  std::vector<Status> lane_status(t);
  std::atomic<uint64_t> redone{0};
  std::vector<std::thread> workers;
  workers.reserve(t);
  for (int w = 0; w < t; ++w) {
    workers.emplace_back([&, w] {
      std::vector<size_t>& lane = plan[w];
      std::sort(lane.begin(), lane.end());  // global log order within worker
      std::unordered_set<PageId> pages;
      std::vector<PageId> tp;
      for (size_t idx : lane) {
        Status s = ApplyPageRedo(records[idx]);
        if (!s.ok()) {
          lane_status[w] = s;
          return;
        }
        redone.fetch_add(1, std::memory_order_relaxed);
        ++result->redo_records_per_thread[w];
        TouchPages(records[idx], &tp);
        for (PageId p : tp) pages.insert(p);
      }
      result->redo_pages_per_thread[w] = pages.size();
    });
  }
  for (std::thread& th : workers) th.join();
  result->records_redone += redone.load(std::memory_order_relaxed);
  for (const Status& s : lane_status) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status RecoveryManager::UndoLosers(BTree* tree, const RecoveryResult& result) {
  for (const auto& [txn_id, last_lsn] : result.losers) {
    Transaction txn(txn_id);
    txn.set_last_lsn(last_lsn);
    Lsn cur = last_lsn;
    while (cur != kInvalidLsn) {
      LogRecord rec;
      Status s = log_->ReadAt(cur, &rec);
      if (!s.ok()) return s;
      if (rec.type == LogType::kClr) {
        cur = rec.lsn2;
        continue;
      }
      if (rec.type == LogType::kInsert || rec.type == LogType::kDelete ||
          rec.type == LogType::kUpdate) {
        if ((rec.flags & kInternalCell) == 0) {
          s = tree->UndoRecordOp(&txn, rec);
          if (!s.ok()) return s;
        }
      } else if (rec.type == LogType::kSideInsert && side_file_ != nullptr) {
        side_file_->UndoInsert(static_cast<BaseUpdateOp>(rec.unit_type),
                               rec.key);
      } else if (rec.type == LogType::kSideCancel && side_file_ != nullptr) {
        side_file_->ReAdd(static_cast<BaseUpdateOp>(rec.unit_type), rec.key,
                          rec.page_id);
      }
      cur = rec.prev_lsn;
    }
    LogRecord abort;
    abort.type = LogType::kAbort;
    abort.txn_id = txn_id;
    abort.prev_lsn = txn.last_lsn();
    log_->Append(&abort);
    tree->lock_manager()->ReleaseAll(txn_id);
  }
  return log_->Flush();
}

Status RecoveryManager::UndoIncompleteUnit(BTree* tree,
                                           const RecoveryResult& result) {
  const auto& records = result.incomplete_unit_records;
  if (records.empty()) return Status::OK();

  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const LogRecord& rec = *it;
    switch (rec.type) {
      case LogType::kReorgModify: {
        // Invert: swap the org and new roles.
        LogRecord inv = rec;
        std::swap(inv.key, inv.key2);
        std::swap(inv.value, inv.value2);
        LogRecord logged = inv;
        logged.prev_lsn = rec.lsn;
        log_->Append(&logged);
        logged.payload.clear();
        // Re-point the base page.
        inv.lsn = logged.lsn;
        Status s = RedoReorgModify(inv);
        if (!s.ok()) return s;
        break;
      }
      case LogType::kReorgMove: {
        if (rec.flags & kSwapImages) {
          // A swap is self-inverse: swap the two pages' contents again.
          Page* a;
          Page* b;
          if (!bp_->FetchPage(rec.page_id, &a).ok()) break;
          if (!bp_->FetchPage(rec.page_id2, &b).ok()) {
            bp_->UnpinPage(rec.page_id, false);
            break;
          }
          SlottedPage spa(a), spb(b);
          std::vector<std::string> ca, cb;
          for (int i = 0; i < spa.slot_count(); ++i) {
            ca.push_back(spa.GetCell(i).ToString());
          }
          for (int i = 0; i < spb.slot_count(); ++i) {
            cb.push_back(spb.GetCell(i).ToString());
          }
          spa.Clear();
          for (size_t i = 0; i < cb.size(); ++i) {
            spa.InsertCell(static_cast<int>(i), cb[i]);
          }
          spb.Clear();
          for (size_t i = 0; i < ca.size(); ++i) {
            spb.InsertCell(static_cast<int>(i), ca[i]);
          }
          LogRecord inv;
          inv.type = LogType::kReorgMove;
          inv.txn_id = kReorgTxnId;
          inv.unit = rec.unit;
          inv.flags = kSwapImages;
          inv.page_id = rec.page_id;
          inv.page_id2 = rec.page_id2;
          inv.payload = PackCellRange(spa, 0, 0);  // images already applied
          log_->Append(&inv);
          a->set_page_lsn(inv.lsn);
          b->set_page_lsn(inv.lsn);
          bp_->UnpinPage(rec.page_id, true);
          bp_->UnpinPage(rec.page_id2, true);
          break;
        }
        // Move the records back from dest to org (values live in dest now).
        std::vector<std::string> keys;
        if (rec.flags & kMoveKeysOnly) {
          DecodeMovedKeys(rec.payload, &keys);
        } else {
          std::vector<std::pair<std::string, std::string>> recs;
          DecodeMovedRecords(rec.payload, &recs);
          for (auto& [k, v] : recs) keys.push_back(k);
        }
        Page* src_page;
        Page* dest_page;
        if (!bp_->FetchPage(rec.page_id, &src_page).ok()) break;
        if (!bp_->FetchPage(rec.page_id2, &dest_page).ok()) {
          bp_->UnpinPage(rec.page_id, false);
          break;
        }
        if (src_page->type() != PageType::kLeaf) {
          LeafNode::Format(src_page, rec.page_id);
          disk_->AllocatePageAt(rec.page_id);
        }
        LeafNode sl(src_page);
        LeafNode dl(dest_page);
        std::vector<std::pair<std::string, std::string>> back;
        for (const std::string& k : keys) {
          bool exact;
          int pos = dl.LowerBound(k, &exact);
          if (exact) {
            back.emplace_back(k, dl.ValueAt(pos).ToString());
          }
        }
        LogRecord inv;
        inv.type = LogType::kReorgMove;
        inv.txn_id = kReorgTxnId;
        inv.unit = rec.unit;
        inv.page_id = rec.page_id2;  // org = old dest
        inv.page_id2 = rec.page_id;  // dest = old org
        inv.payload = EncodeMovedRecords(back);
        log_->Append(&inv);
        for (const auto& [k, v] : back) {
          bool exact;
          int pos = dl.LowerBound(k, &exact);
          if (exact) dl.RemoveAt(pos);
          bool e2;
          sl.LowerBound(k, &e2);
          if (!e2) sl.Insert(k, v);
        }
        src_page->set_page_lsn(inv.lsn);
        dest_page->set_page_lsn(inv.lsn);
        bp_->UnpinPage(rec.page_id, true);
        bp_->UnpinPage(rec.page_id2, true);
        break;
      }
      default:
        break;
    }
  }

  LogRecord end;
  end.type = LogType::kReorgEnd;
  end.txn_id = kReorgTxnId;
  end.unit = records.front().unit;
  end.key = result.reorg.largest_finished_key;
  log_->AppendAndFlush(&end);
  return RepairSideChain(tree);
}

Status RecoveryManager::RepairSideChain(BTree* tree) {
  if (tree->options().side_pointers == SidePointerMode::kNone) {
    return Status::OK();
  }
  std::vector<PageId> leaves;
  Status s = tree->CollectLeaves(&leaves);
  if (!s.ok()) return s;
  for (size_t i = 0; i < leaves.size(); ++i) {
    Page* page;
    s = bp_->FetchPage(leaves[i], &page);
    if (!s.ok()) return s;
    PageId want_prev = (i > 0) ? leaves[i - 1] : kInvalidPageId;
    PageId want_next = (i + 1 < leaves.size()) ? leaves[i + 1]
                                               : kInvalidPageId;
    if (tree->options().side_pointers == SidePointerMode::kOneWay) {
      want_prev = page->prev();
    }
    if (page->prev() != want_prev || page->next() != want_next) {
      LogRecord link;
      link.type = LogType::kLinkPage;
      link.txn_id = kReorgTxnId;
      link.page_id = leaves[i];
      link.page_id2 = want_prev;
      link.page_id3 = want_next;
      log_->Append(&link);
      page->SetPrev(want_prev);
      page->SetNext(want_next);
      page->set_page_lsn(link.lsn);
      bp_->UnpinPage(leaves[i], true);
    } else {
      bp_->UnpinPage(leaves[i], false);
    }
  }
  return log_->Flush();
}

}  // namespace soreorg
