// Typed node views over slotted pages.
//
// LeafNode cells:     varint key_len | key | varint val_len | value
// InternalNode cells: varint key_len | key | fixed32 child_page_id
//
// Following the paper's B+-tree variation, an internal node with n keys has
// n children: key[i] is the low key (separator) of child[i], and a search
// key k descends into child[i] for the largest i with key[i] <= k. Keys
// smaller than key[0] (possible only transiently at the leftmost edge)
// descend into child[0].
//
// Base pages (internal nodes at level 1, the parents of leaves) carry a
// "low mark" — the smallest key on the page when it was created (§7.1) —
// stored in the slotted page's aux blob. The pass-3 tree builder keys its
// progress (CK / Get_Next) off these low marks.

#ifndef SOREORG_BTREE_NODE_H_
#define SOREORG_BTREE_NODE_H_

#include <string>
#include <vector>

#include "src/storage/slotted_page.h"
#include "src/util/status.h"

namespace soreorg {

class LeafNode {
 public:
  explicit LeafNode(Page* page) : sp_(page) {}

  /// Format a fresh page as an empty leaf.
  static void Format(Page* page, PageId page_id);

  int Count() const { return sp_.slot_count(); }
  Slice KeyAt(int i) const;
  Slice ValueAt(int i) const;

  /// Lowest slot with key >= `key`; Count() if none. *exact set if equal.
  int LowerBound(const Slice& key, bool* exact) const;

  Status Insert(const Slice& key, const Slice& value);
  /// Replace the value of an existing key (slot i).
  Status SetValueAt(int i, const Slice& value);
  void RemoveAt(int i);
  void Clear() { sp_.Clear(); }

  size_t FreeSpace() const { return sp_.FreeSpace(); }
  size_t UsedSpace() const { return sp_.UsedSpace(); }
  double FillFactor() const { return sp_.FillFactor(); }
  size_t Capacity() const { return sp_.Capacity(); }

  /// Bytes one (key, value) cell would occupy (cell + slot overhead).
  static size_t CellSize(const Slice& key, const Slice& value);

  Page* page() { return sp_.page(); }
  const Page* page() const { return sp_.page(); }

 private:
  SlottedPage sp_;
};

class InternalNode {
 public:
  explicit InternalNode(Page* page) : sp_(page) {}

  /// Format a fresh page as an empty internal node at `level` (1 = base
  /// page) with the given low mark.
  static void Format(Page* page, PageId page_id, uint8_t level,
                     const Slice& low_mark);

  int Count() const { return sp_.slot_count(); }
  Slice KeyAt(int i) const;
  PageId ChildAt(int i) const;

  /// Index of the child a search for `key` descends into:
  /// largest i with KeyAt(i) <= key, clamped to 0. Count() must be > 0.
  int FindChild(const Slice& key) const;

  /// Lowest slot with key >= `key`; Count() if none. *exact set if equal.
  int LowerBound(const Slice& key, bool* exact) const;

  /// Slot holding `child`, or -1.
  int FindChildSlot(PageId child) const;

  Status Insert(const Slice& key, PageId child);
  Status SetKeyAt(int i, const Slice& key);
  void SetChildAt(int i, PageId child);
  void RemoveAt(int i);
  void Clear() { sp_.Clear(); }

  /// The page's creation-time low mark (§7.1).
  Slice LowMark() const { return sp_.GetAux(); }

  size_t FreeSpace() const { return sp_.FreeSpace(); }
  size_t UsedSpace() const { return sp_.UsedSpace(); }
  double FillFactor() const { return sp_.FillFactor(); }
  size_t Capacity() const { return sp_.Capacity(); }

  static size_t CellSize(const Slice& key);

  Page* page() { return sp_.page(); }
  const Page* page() const { return sp_.page(); }

 private:
  SlottedPage sp_;
};

/// Pack raw slotted cells [from, to) into a length-prefixed bundle (split /
/// move log payloads).
std::string PackCellRange(const SlottedPage& sp, int from, int to);

/// Unpack a bundle produced by PackCellRange.
Status UnpackCells(Slice bundle, std::vector<std::string>* cells);

}  // namespace soreorg

#endif  // SOREORG_BTREE_NODE_H_
