#include "src/btree/bulk_builder.h"

namespace soreorg {

// ---------------------------------------------------------------------------
// InternalBuilder
// ---------------------------------------------------------------------------

InternalBuilder::InternalBuilder(BufferPool* bp, double internal_fill)
    : bp_(bp), fill_(internal_fill) {}

Status InternalBuilder::OpenPageAt(size_t level, const Slice& low_mark) {
  PageId pid;
  Page* page;
  Status s = bp_->NewPage(&pid, &page);
  if (!s.ok()) return s;
  // Log the allocation (pass 3) before the page can be evicted: the page id
  // may be a recycled one with old-tree records still ahead of it in the
  // redo stream, and the LSN stamp is what makes redo leave the rebuilt
  // image alone.
  Lsn stamp = 0;
  if (alloc_logger_) {
    s = alloc_logger_(pid, &stamp);
    if (!s.ok()) {
      bp_->UnpinPage(pid, false);
      bp_->DeletePage(pid);
      return s;
    }
  }
  InternalNode::Format(page, pid, static_cast<uint8_t>(level + 1), low_mark);
  page->set_page_lsn(stamp);
  bp_->UnpinPage(pid, true);
  created_.push_back(pid);
  levels_[level].open = pid;
  if (levels_[level].first == kInvalidPageId) levels_[level].first = pid;
  return Status::OK();
}

Status InternalBuilder::InsertInto(PageId pid, const Slice& separator,
                                   PageId child) {
  Page* page;
  Status s = bp_->FetchPage(pid, &page);
  if (!s.ok()) return s;
  InternalNode node(page);
  if (skip_duplicates_) {
    bool exact;
    node.LowerBound(separator, &exact);
    if (exact) {
      bp_->UnpinPage(pid, false);
      return Status::OK();
    }
  }
  s = node.Insert(separator, child);
  bp_->UnpinPage(pid, s.ok());
  return s;
}

Status InternalBuilder::AddAt(size_t level, const Slice& separator,
                              PageId child) {
  if (level >= levels_.size()) {
    // A new top level: its first page adopts the previously lone page of
    // the level below under the -infinity separator.
    levels_.resize(level + 1);
    Status s = OpenPageAt(level, Slice());
    if (!s.ok()) return s;
    if (level > 0) {
      s = InsertInto(levels_[level].open, Slice(), levels_[level - 1].first);
      if (!s.ok()) return s;
    }
  }

  // Close the open page if this entry would push it past the fill target.
  {
    Page* page;
    Status s = bp_->FetchPage(levels_[level].open, &page);
    if (!s.ok()) return s;
    InternalNode node(page);
    bool full =
        node.Count() > 0 &&
        static_cast<double>(node.UsedSpace() +
                            InternalNode::CellSize(separator)) >
            fill_ * static_cast<double>(node.Capacity());
    bp_->UnpinPage(levels_[level].open, false);
    if (full) {
      completed_.push_back(levels_[level].open);
      s = OpenPageAt(level, separator);
      if (!s.ok()) return s;
      s = AddAt(level + 1, separator, levels_[level].open);
      if (!s.ok()) return s;
    }
  }
  return InsertInto(levels_[level].open, separator, child);
}

Status InternalBuilder::Add(const Slice& separator, PageId child) {
  if (levels_.empty()) {
    levels_.resize(1);
    Status s = OpenPageAt(0, Slice());
    if (!s.ok()) return s;
  }
  return AddAt(0, separator, child);
}

Status InternalBuilder::Finish(PageId* root, uint8_t* height) {
  if (levels_.empty()) {
    return Status::InvalidArgument("no entries added");
  }
  for (const Level& lv : levels_) {
    if (lv.open != kInvalidPageId) completed_.push_back(lv.open);
  }
  *root = levels_.back().open;
  *height = static_cast<uint8_t>(levels_.size() + 1);
  return Status::OK();
}

std::vector<PageId> InternalBuilder::TakeCompletedPages() {
  std::vector<PageId> out = std::move(completed_);
  completed_.clear();
  return out;
}


std::vector<PageId> InternalBuilder::OpenPages() const {
  std::vector<PageId> out;
  for (const Level& lv : levels_) {
    if (lv.open != kInvalidPageId) out.push_back(lv.open);
  }
  return out;
}

PageId InternalBuilder::TopPage() const {
  return levels_.empty() ? kInvalidPageId : levels_.back().open;
}

Status InternalBuilder::RestoreSpine(PageId top, const Slice& stable_key) {
  levels_.clear();
  created_.clear();
  completed_.clear();

  // Walk down the rightmost spine from the top page: each spine node is the
  // open page of its level.
  std::vector<PageId> spine;  // top-down
  PageId cur = top;
  while (cur != kInvalidPageId) {
    Page* page;
    Status s = bp_->FetchPage(cur, &page);
    if (!s.ok()) return s;
    if (page->type() != PageType::kInternal) {
      bp_->UnpinPage(cur, false);
      return Status::Corruption("spine page is not internal");
    }
    spine.push_back(cur);
    uint8_t level = page->level();
    InternalNode node(page);
    PageId next = (level > 1 && node.Count() > 0)
                      ? node.ChildAt(node.Count() - 1)
                      : kInvalidPageId;
    bp_->UnpinPage(cur, false);
    cur = next;
  }
  // spine.back() is the level-1 (base-page) open page; builder level 0.
  size_t n = spine.size();
  levels_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    levels_[i].open = spine[n - 1 - i];
  }

  // Trim entries past the stable key: they were built after the last force
  // write and will be re-read.
  for (size_t i = 0; i < n; ++i) {
    Page* page;
    Status s = bp_->FetchPage(levels_[i].open, &page);
    if (!s.ok()) return s;
    InternalNode node(page);
    bool dirty = false;
    while (node.Count() > 0 &&
           node.KeyAt(node.Count() - 1).compare(stable_key) > 0) {
      node.RemoveAt(node.Count() - 1);
      dirty = true;
    }
    bp_->UnpinPage(levels_[i].open, dirty);
  }

  // Leftmost spine gives each level's first page (for top-level adoption).
  cur = top;
  std::vector<PageId> left;  // top-down
  while (cur != kInvalidPageId) {
    Page* page;
    Status s = bp_->FetchPage(cur, &page);
    if (!s.ok()) return s;
    left.push_back(cur);
    uint8_t level = page->level();
    InternalNode node(page);
    PageId next =
        (level > 1 && node.Count() > 0) ? node.ChildAt(0) : kInvalidPageId;
    bp_->UnpinPage(cur, false);
    cur = next;
  }
  for (size_t i = 0; i < n && i < left.size(); ++i) {
    levels_[i].first = left[left.size() - 1 - i];
  }
  skip_duplicates_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// BulkBuilder
// ---------------------------------------------------------------------------

BulkBuilder::BulkBuilder(BufferPool* bp, const BTreeOptions& options,
                         double leaf_fill, double internal_fill)
    : bp_(bp),
      options_(options),
      leaf_fill_(leaf_fill),
      internal_(bp, internal_fill) {}

Status BulkBuilder::OpenLeaf() {
  Page* page;
  Status s = bp_->NewPage(&cur_leaf_, &page);
  if (!s.ok()) return s;
  LeafNode::Format(page, cur_leaf_);
  if (options_.side_pointers != SidePointerMode::kNone &&
      prev_leaf_ != kInvalidPageId) {
    if (options_.side_pointers == SidePointerMode::kTwoWay) {
      page->SetPrev(prev_leaf_);
    }
    Page* prev_page;
    if (bp_->FetchPage(prev_leaf_, &prev_page).ok()) {
      prev_page->SetNext(cur_leaf_);
      bp_->UnpinPage(prev_leaf_, true);
    }
  }
  bp_->UnpinPage(cur_leaf_, true);
  cur_first_key_.clear();
  ++leaves_built_;
  return Status::OK();
}

Status BulkBuilder::CloseLeaf() {
  if (cur_leaf_ == kInvalidPageId) return Status::OK();
  Slice sep = any_after_first_leaf_ ? Slice(cur_first_key_) : Slice();
  Status s = internal_.Add(sep, cur_leaf_);
  if (!s.ok()) return s;
  any_after_first_leaf_ = true;
  prev_leaf_ = cur_leaf_;
  cur_leaf_ = kInvalidPageId;
  return Status::OK();
}

Status BulkBuilder::Add(const Slice& key, const Slice& value) {
  if (cur_leaf_ == kInvalidPageId) {
    Status s = OpenLeaf();
    if (!s.ok()) return s;
    cur_first_key_ = key.ToString();
  }
  Page* page;
  Status s = bp_->FetchPage(cur_leaf_, &page);
  if (!s.ok()) return s;
  LeafNode ln(page);
  bool full = ln.Count() > 0 &&
              static_cast<double>(ln.UsedSpace() +
                                  LeafNode::CellSize(key, value)) >
                  leaf_fill_ * static_cast<double>(ln.Capacity());
  if (full) {
    bp_->UnpinPage(cur_leaf_, false);
    s = CloseLeaf();
    if (!s.ok()) return s;
    s = OpenLeaf();
    if (!s.ok()) return s;
    cur_first_key_ = key.ToString();
    s = bp_->FetchPage(cur_leaf_, &page);
    if (!s.ok()) return s;
    ln = LeafNode(page);
  }
  s = ln.Insert(key, value);
  bp_->UnpinPage(cur_leaf_, s.ok());
  any_ = true;
  return s;
}

Status BulkBuilder::Finish(PageId* root, uint8_t* height) {
  if (!any_ && cur_leaf_ == kInvalidPageId) {
    Status s = OpenLeaf();
    if (!s.ok()) return s;
  }
  Status s = CloseLeaf();
  if (!s.ok()) return s;
  return internal_.Finish(root, height);
}

}  // namespace soreorg
