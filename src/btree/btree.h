// BTree: the primary-index B+-tree under reorganization.
//
// Shape: height >= 2 always (a root internal node above at least one leaf),
// so "base pages" (parents of leaves, level 1) exist from the start. An
// internal node with n keys has n children (the paper's variation); the
// leftmost separator of the whole tree is the empty slice (= -infinity).
//
// Concurrency follows §4.1 of the paper exactly:
//   * readers:  IS tree lock, S lock-couple to the leaf; if the leaf lock
//     request hits a granted RX lock the lock manager answers kBackoff and
//     the reader releases its base-page S lock, waits on an unconditional
//     instant-duration RS lock on the base page, then retries the descent;
//   * updaters: IX tree lock, S lock-couple, X on the leaf; same RX
//     back-off rule. If a split / free-at-empty is needed the operation
//     restarts with Bayer-Scholnick X lock-coupling, releasing ancestors
//     above the deepest safe node — this is what waits for (rather than
//     backs off from) a reorganizer holding R on a base page;
//   * deletions never consolidate: a leaf is deallocated only when it
//     becomes completely empty (free-at-empty, [JS93]) — this is the policy
//     that produces the sparse trees the reorganizer exists to fix.
//
// Structure modifications (splits, free-at-empty) are logged as single
// atomic WAL records (kLeafSplit / kInternalSplit / kNodeFree) so redo can
// replay them page-by-page against pageLSNs; record-level changes use
// physiological kInsert/kDelete/kUpdate records undone *logically* (ARIES
// index-management style) via the TransactionManager's undo applier.
//
// Pass-3 integration (§7.2): when the reorganization bit is set, every
// committed base-page modification is reported — under the base page's X
// lock — to the registered BaseUpdateHook, which implements the CK
// comparison and side-file insertion. A hook return of kBusy means "the
// switch completed under you": the operation re-reads the (new) root and
// retries against the new tree.

#ifndef SOREORG_BTREE_BTREE_H_
#define SOREORG_BTREE_BTREE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/btree/node.h"
#include "src/storage/buffer_pool.h"
#include "src/txn/lock_manager.h"
#include "src/txn/transaction.h"
#include "src/util/status.h"
#include "src/wal/log_manager.h"

namespace soreorg {

enum class SidePointerMode : uint8_t { kNone = 0, kOneWay = 1, kTwoWay = 2 };

struct BTreeOptions {
  SidePointerMode side_pointers = SidePointerMode::kTwoWay;
  /// Fraction of used bytes kept in the left page on a split.
  double split_fraction = 0.5;
  /// Max op-level retries after Backoff/Deadlock before giving up.
  int max_retries = 256;
  /// Serve ephemeral point reads and iterator leaf batches latch-free when
  /// possible: snapshot page images against the frame version stamp and
  /// validate, consulting only the lock manager's page-mark counters. Any
  /// validation failure falls back to the Table-1 S-lock protocol. With
  /// this off every read takes exactly the locks it did before the
  /// optimistic path existed.
  bool optimistic_reads = true;
  /// Full-descent restarts before an optimistic read gives up and falls
  /// back to the S-lock path.
  int optimistic_restarts = 4;
};

/// What kind of base-page change an updater performed (for the side file).
enum class BaseUpdateOp : uint8_t { kInsert = 0, kDelete = 1 };

/// Counters for the latch-free read path (relaxed; test/bench use).
struct ReadPathStats {
  uint64_t optimistic_gets = 0;     // point reads served without any lock
  uint64_t optimistic_batches = 0;  // iterator leaf batches served likewise
  uint64_t fallbacks = 0;           // reads that fell back to the S-lock path
};

/// Aggregate shape statistics (drives the before/after tables).
struct BTreeStats {
  uint64_t height = 0;
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;  // includes base pages and the root
  uint64_t base_pages = 0;
  uint64_t records = 0;
  double avg_leaf_fill = 0.0;
  double avg_internal_fill = 0.0;
  /// Leaves whose page id is exactly prev leaf id + 1 (disk contiguity).
  uint64_t leaves_in_disk_order = 0;
};

class BTree {
 public:
  /// (txn, op, key, leaf, base page id) -> OK, or kBusy if the tree
  /// switched while the caller waited (retry against the new tree).
  /// Invoked under the base page's X lock (§7.2).
  using BaseUpdateHook =
      std::function<Status(Transaction* txn, BaseUpdateOp op, const Slice& key,
                           PageId leaf, PageId base_page)>;
  /// Compensation for a successful BaseUpdateHook whose structure
  /// modification then failed and will be retried or abandoned.
  using BaseUpdateCancelHook = std::function<void(
      Transaction* txn, BaseUpdateOp op, const Slice& key, PageId leaf)>;

  BTree(BufferPool* bp, LogManager* log, LockManager* locks,
        BTreeOptions options);

  /// Create a fresh tree: one empty leaf under a root base page.
  Status Create();

  /// Adopt existing on-disk state (after recovery / on reopen).
  void Attach(PageId root, uint8_t height, uint64_t incarnation);

  // --- user operations -----------------------------------------------------
  Status Insert(Transaction* txn, const Slice& key, const Slice& value);
  Status Update(Transaction* txn, const Slice& key, const Slice& value);
  Status Delete(Transaction* txn, const Slice& key);
  /// txn may be null for an ephemeral (non-transactional) read.
  Status Get(Transaction* txn, const Slice& key, std::string* value);

  /// Ordered scan of [lo, hi]; cb returns false to stop early. Follows side
  /// pointers when available, re-descends otherwise (and on RX back-off).
  Status Scan(Transaction* txn, const Slice& lo, const Slice& hi,
              const std::function<bool(const Slice& key, const Slice& value)>&
                  cb);

  // --- introspection -------------------------------------------------------
  PageId root() const { return root_.load(); }
  uint8_t height() const { return height_.load(); }
  uint64_t incarnation() const { return incarnation_.load(); }

  /// Full-tree statistics (walks every page; test/bench use).
  Status ComputeStats(BTreeStats* stats);

  /// Deep invariant check: key order, separator correctness, side-pointer
  /// symmetry, level sanity. Test use.
  Status CheckConsistency();

  /// All leaf page ids in key order (reorg pass 2 + tests).
  Status CollectLeaves(std::vector<PageId>* leaves);
  /// All base page ids in key order.
  Status CollectBasePages(std::vector<PageId>* bases);

  // --- reorganizer integration --------------------------------------------
  bool reorg_bit() const { return reorg_bit_.load(); }
  void set_reorg_bit(bool b) { reorg_bit_.store(b); }
  void set_base_update_hook(BaseUpdateHook hook);
  void set_base_update_cancel_hook(BaseUpdateCancelHook hook);

  /// Descend (S lock-coupling under `locker`) to the base page covering
  /// `key`; returns with the base page locked in `mode` and pinned into
  /// *guard. Caller unlocks.
  Status LockBasePage(TxnId locker, const Slice& key, LockMode mode,
                      PageId* base_pid, PageGuard* guard);

  /// §7.1 "follow the leftmost pointers": the first base page and its low
  /// mark. Takes/releases its own S locks under `locker`.
  Status FirstBasePage(TxnId locker, std::string* low_mark, PageId* base_pid);

  /// §7.1 Get_Next: low mark of the first base page whose low mark is
  /// strictly greater than `key`; kNotFound at the end. Also returns the
  /// page id. Takes/releases its own S locks under `locker`.
  Status NextBasePage(TxnId locker, const Slice& key, std::string* low_mark,
                      PageId* base_pid);

  /// Apply a base-level change directly: insert or remove the (key -> leaf)
  /// entry in the base page covering `key`, splitting base pages if needed.
  /// Used by the pass-3 builder to apply side-file entries to the new tree
  /// (which is Attach()-ed to a temporary BTree object before the switch).
  /// Duplicate-tolerant (§7.4 step-aside): inserting a separator that is
  /// already present is a verified no-op, not an error — the recording
  /// updater may have applied its split to this tree directly after a Busy
  /// redirect, with the side entry drained afterwards. When the change was
  /// found already in effect, *already_applied (if non-null) is set true.
  Status BaseApply(Transaction* txn, BaseUpdateOp op, const Slice& key,
                   PageId leaf, bool* already_applied = nullptr);

  /// Undo one of this transaction's record operations (logical, ARIES
  /// style): performs the inverse change wherever the key now lives and
  /// logs a CLR whose undo-next is original.prev_lsn.
  Status UndoRecordOp(Transaction* txn, const LogRecord& original);

  /// Atomically install a new root/height/incarnation (the pass-3 switch).
  /// Logs kTreeSwitch. The caller (Switcher) owns the locking protocol.
  Status SwitchRoot(PageId new_root, uint8_t new_height,
                    uint64_t new_incarnation);

  /// Ids of the internal pages (all levels >= 1) reachable from `root`;
  /// used to discard the old tree's upper levels after the switch.
  Status CollectInternalPages(PageId root, std::vector<PageId>* pages);

  BufferPool* buffer_pool() { return bp_; }
  LogManager* log_manager() { return log_; }
  LockManager* lock_manager() { return locks_; }
  const BTreeOptions& options() const { return options_; }

  /// Ephemeral lock-owner id for non-transactional work (readers, the
  /// reorganizer's scouting descents).
  TxnId NewEphemeralId() { return ephemeral_next_.fetch_add(1); }

  ReadPathStats read_path_stats() const {
    ReadPathStats s;
    s.optimistic_gets = opt_gets_.load(std::memory_order_relaxed);
    s.optimistic_batches = opt_batches_.load(std::memory_order_relaxed);
    s.fallbacks = opt_fallbacks_.load(std::memory_order_relaxed);
    return s;
  }

  /// Result of one latch-free descent attempt. Two guard slots alternate as
  /// parent/child down the tree (a grandparent image is never needed again
  /// once its child validated, so its slot can be recycled); on success one
  /// slot holds the leaf image and the other its base page.
  struct OptimisticDescent {
    OptimisticPageGuard slots[2];
    int leaf_slot = -1;
    int base_slot = -1;
    PageId leaf_pid = kInvalidPageId;
    PageId base_pid = kInvalidPageId;
    std::string leaf_separator;  // base entry key that routed to the leaf
    uint64_t incarnation = 0;    // tree incarnation the descent ran under
    Page* leaf_image() { return slots[leaf_slot].page(); }
    Page* base_image() { return slots[base_slot].page(); }
  };

  /// One latch-free descent to the leaf covering `key`: no locks, no pins,
  /// no shard mutex. Per node: capture an image against the frame version
  /// stamp, consult the lock manager's page-mark counter (an S-incompatible
  /// page lock anywhere on the node forces fallback), then revalidate the
  /// parent image — in that order; see DESIGN.md §13 for why the order is
  /// what makes cross-SMO routing safe. False on any validation failure
  /// (caller restarts or falls back to the S-lock protocol). Public for the
  /// iterator, tests, and benches; it takes no locks, so any thread may call
  /// it at any time.
  bool OptimisticDescend(const Slice& key, OptimisticDescent* out);

  /// Bounded-restart optimistic point read. True when the read completed
  /// latch-free (*found says whether the key exists); false directs the
  /// caller to the Table-1 S-lock path.
  bool TryGetOptimistic(const Slice& key, std::string* value, bool* found);

  // Exposed for recovery redo (applies physiological records to pages).
  static Status RedoApply(BufferPool* bp, const LogRecord& rec);

 private:
  friend class BTreeIterator;

  struct DescentResult {
    PageId leaf = kInvalidPageId;
    PageId base = kInvalidPageId;
    bool base_locked = false;  // base page S lock retained
    std::string leaf_separator;  // the base entry key that routed here
  };

  /// Reader/updater optimistic descent. Handles the RX back-off protocol
  /// internally (instant RS on the parent + full retry). On success the
  /// leaf is locked in `leaf_mode` under `locker`; if keep_base_lock, the
  /// base page S lock is retained too.
  Status FindLeaf(TxnId locker, const Slice& key, LockMode leaf_mode,
                  bool keep_base_lock, DescentResult* out);

  /// Pessimistic Bayer-Scholnick descent: X lock-couple, releasing
  /// ancestors above safe nodes. Returns the X-locked path (top-down,
  /// always ending at the leaf). for_insert selects the safety predicate.
  Status FindLeafPessimistic(TxnId locker, const Slice& key, bool for_insert,
                             size_t need_bytes,
                             std::vector<PageId>* locked_path);

  /// Generalized pessimistic descent stopping at `stop_level` (0 = leaf,
  /// 1 = base page).
  Status FindPathPessimistic(TxnId locker, const Slice& key, bool for_insert,
                             size_t need_bytes, uint8_t stop_level,
                             std::vector<PageId>* locked_path);

  /// Split the leaf at the end of `path` and insert its separator upward.
  /// All pages in `path` are X-locked by txn. All fallible steps (locks,
  /// allocation, internal splits) happen before any leaf cell moves, so a
  /// failure never leaves records unreachable.
  Status SplitLeaf(Transaction* txn, const std::vector<PageId>& path,
                   const Slice& key);

  /// Make sure the internal node path[idx] (or a split half of it) has room
  /// for `separator`; splits propagate recursively up `path`. On return,
  /// *target is the X-locked node covering `separator` with room, and every
  /// newly created right half is appended to *extra_locked (caller unlocks
  /// after its insert).
  Status EnsureSeparatorRoom(Transaction* txn, const std::vector<PageId>& path,
                             size_t idx, const Slice& separator,
                             PageId* target, std::vector<PageId>* extra_locked);

  /// Split the internal node path[idx]; requires that path[idx-1] already
  /// has room for the promoted separator (or idx == 0: a root split).
  Status SplitInternal(Transaction* txn, const std::vector<PageId>& path,
                       size_t idx, std::string* out_separator,
                       PageId* out_new_pid);

  /// Insert (separator, child) into an internal node that is guaranteed to
  /// have room, with logging.
  Status InsertSeparatorInto(Transaction* txn, PageId node_pid,
                             const Slice& separator, PageId child);

  /// Free-at-empty: deallocate the (empty) leaf at the end of `path`,
  /// remove its separator from the base page, fix side pointers, cascade
  /// upward if internal nodes empty. Failure is benign (the empty leaf
  /// simply stays linked).
  Status FreeEmptyLeaf(Transaction* txn, const std::vector<PageId>& path);

  /// Keep separators exact: if the base entry routing `key` has a separator
  /// above `key` (the key would only be reachable via slot-0 clamping,
  /// which pass 3's flat rebuild cannot preserve), lower the separator to
  /// `key` under the base page's X lock, with pass-3 side-file
  /// notification. Idempotent; retries internally on deadlock.
  Status LowerSeparatorIfNeeded(Transaction* txn, const Slice& key);

  /// Invoke the base-update hook if the reorganization bit is set.
  Status NotifyBaseUpdate(Transaction* txn, BaseUpdateOp op, const Slice& key,
                          PageId leaf, PageId base_pid);
  /// Invoke the cancel hook (after a successful NotifyBaseUpdate whose
  /// operation then failed).
  void CancelBaseUpdate(Transaction* txn, BaseUpdateOp op, const Slice& key,
                        PageId leaf);

  /// Log a record-level op for txn and stamp the page LSN.
  Status LogRecordOp(Transaction* txn, LogType type, PageId page,
                     const Slice& key, const Slice& old_value,
                     const Slice& new_value, Page* page_obj);

  Status UnlockPages(TxnId locker, std::vector<PageId>* pids);

  /// Recursive helper for NextBasePage; node_pid is S-locked by the caller
  /// and has level >= 2.
  Status NextBaseIn(TxnId locker, PageId node_pid, const Slice& key,
                    std::string* low_mark, PageId* base_pid);

  /// Recursive invariant check for CheckConsistency().
  Status CheckSubtree(PageId pid, const Slice& lo, const Slice& hi,
                      uint8_t expect_level, bool is_root);

  BufferPool* bp_;
  LogManager* log_;
  LockManager* locks_;
  BTreeOptions options_;

  std::atomic<PageId> root_{kInvalidPageId};
  std::atomic<uint8_t> height_{0};
  std::atomic<uint64_t> incarnation_{1};
  std::atomic<bool> reorg_bit_{false};
  std::atomic<TxnId> ephemeral_next_{1ull << 62};

  std::atomic<uint64_t> opt_gets_{0};
  std::atomic<uint64_t> opt_batches_{0};
  std::atomic<uint64_t> opt_fallbacks_{0};

  BaseUpdateHook base_update_hook_;
  BaseUpdateCancelHook base_update_cancel_hook_;
  std::mutex hook_mu_;
};

}  // namespace soreorg

#endif  // SOREORG_BTREE_BTREE_H_
