// BTreeIterator: a batched, cursor-stability iterator over the tree.
//
// Each leaf visit takes a short S lock (via the reader protocol, including
// the RX back-off/RS wait dance), copies the qualifying records into a
// private buffer, releases the lock, and advances using the *upper-bound
// separator* learned from the base page — so iteration never chases raw
// side pointers into pages the reorganizer may be relocating, and tolerates
// empty leaves, leaf frees and splits happening mid-scan.
//
// Isolation is cursor stability, not serializability: records inserted or
// moved behind the cursor are not revisited; records committed ahead of the
// cursor are seen.

#ifndef SOREORG_BTREE_ITERATOR_H_
#define SOREORG_BTREE_ITERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "src/btree/btree.h"

namespace soreorg {

class BTreeIterator {
 public:
  /// txn may be null: the iterator then locks under an ephemeral owner id.
  BTreeIterator(BTree* tree, Transaction* txn);
  ~BTreeIterator();

  BTreeIterator(const BTreeIterator&) = delete;
  BTreeIterator& operator=(const BTreeIterator&) = delete;

  /// Position at the first record with key >= `key`.
  Status Seek(const Slice& key);

  bool Valid() const { return idx_ < buf_.size(); }
  Slice key() const { return buf_[idx_].first; }
  Slice value() const { return buf_[idx_].second; }

  Status Next();

  /// Physical page ids the iterator has touched (leaf visits in order);
  /// feeds the range-scan I/O experiments.
  const std::vector<PageId>& leaf_trail() const { return leaf_trail_; }

 private:
  /// Load the batch for the leaf covering `from_key`.
  Status LoadBatch(const Slice& from_key);

  /// Latch-free variant of one LoadBatch hop: descend optimistically, learn
  /// the upper bound from the base-page image and copy the batch from the
  /// leaf image, all without locks or pins. False (leaving no trace in
  /// buf_) when validation kept failing — the caller runs the S-lock body
  /// for this hop instead. The iterator's leaf/base S locks are transient
  /// by design (cursor stability), so skipping them loses no isolation;
  /// the per-scan tree IS lock taken in Seek is retained either way.
  bool TryLoadBatchOptimistic(const Slice& probe, std::string* upper,
                              bool* has_upper, std::string* base_last_sep);

  BTree* tree_;
  TxnId locker_;
  bool ephemeral_;
  uint64_t tree_lock_inc_ = 0;
  bool tree_locked_ = false;

  std::vector<std::pair<std::string, std::string>> buf_;
  size_t idx_ = 0;
  std::string upper_bound_;  // next batch starts here; empty + !has = end
  bool has_upper_ = false;
  std::vector<PageId> leaf_trail_;
};

}  // namespace soreorg

#endif  // SOREORG_BTREE_ITERATOR_H_
