#include "src/btree/iterator.h"

namespace soreorg {

BTreeIterator::BTreeIterator(BTree* tree, Transaction* txn)
    : tree_(tree),
      locker_(txn != nullptr ? txn->id() : tree->NewEphemeralId()),
      ephemeral_(txn == nullptr) {}

BTreeIterator::~BTreeIterator() {
  if (tree_locked_ && ephemeral_) {
    tree_->lock_manager()->Unlock(locker_, TreeLock(tree_lock_inc_));
  }
}

Status BTreeIterator::Seek(const Slice& key) {
  if (!tree_locked_) {
    tree_lock_inc_ = tree_->incarnation();
    Status s = tree_->lock_manager()->Lock(locker_, TreeLock(tree_lock_inc_),
                                           LockMode::kIS);
    if (!s.ok()) return s;
    tree_locked_ = true;
  }
  return LoadBatch(key);
}

bool BTreeIterator::TryLoadBatchOptimistic(const Slice& probe,
                                           std::string* upper, bool* has_upper,
                                           std::string* base_last_sep) {
  for (int attempt = 0; attempt < tree_->options().optimistic_restarts;
       ++attempt) {
    BTree::OptimisticDescent d;
    if (!tree_->OptimisticDescend(probe, &d)) continue;
    InternalNode base(d.base_image());
    int slot = base.FindChildSlot(d.leaf_pid);
    if (slot < 0) continue;  // descent raced a base change; retry
    if (slot + 1 < base.Count()) {
      *upper = base.KeyAt(slot + 1).ToString();
      *has_upper = true;
    } else {
      *base_last_sep = base.KeyAt(base.Count() - 1).ToString();
    }
    LeafNode ln(d.leaf_image());
    bool exact;
    for (int i = ln.LowerBound(probe, &exact); i < ln.Count(); ++i) {
      buf_.emplace_back(ln.KeyAt(i).ToString(), ln.ValueAt(i).ToString());
    }
    leaf_trail_.push_back(d.leaf_pid);
    tree_->opt_batches_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  tree_->opt_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

Status BTreeIterator::LoadBatch(const Slice& from_key) {
  buf_.clear();
  idx_ = 0;
  std::string probe = from_key.ToString();

  // Hop leaves until a non-empty batch or the end of the tree. Bounded by
  // the retry budget to stay robust against pathological concurrent churn.
  for (int hops = 0; hops < tree_->options().max_retries; ++hops) {
    std::string upper;
    bool has_upper = false;
    std::string base_last_sep;

    if (!tree_->options().optimistic_reads ||
        !TryLoadBatchOptimistic(probe, &upper, &has_upper, &base_last_sep)) {
      // S-lock body: the pre-optimistic protocol, verbatim.
      BTree::DescentResult r;
      Status s = tree_->FindLeaf(locker_, probe, LockMode::kS,
                                 /*keep_base_lock=*/true, &r);
      if (!s.ok()) return s;

      LockManager* lm = tree_->lock_manager();
      BufferPool* bp = tree_->buffer_pool();

      // Learn this leaf's upper bound from the base page: the next
      // separator in the base page, or the next base page's low mark.
      {
        Page* base_page;
        s = bp->FetchPage(r.base, &base_page);
        if (!s.ok()) {
          lm->Unlock(locker_, PageLock(r.base));
          lm->Unlock(locker_, PageLock(r.leaf));
          return s;
        }
        std::shared_lock<PageLatch> latch(base_page->latch());
        InternalNode node(base_page);
        int slot = node.FindChildSlot(r.leaf);
        if (slot >= 0 && slot + 1 < node.Count()) {
          upper = node.KeyAt(slot + 1).ToString();
          has_upper = true;
        } else {
          base_last_sep = node.KeyAt(node.Count() - 1).ToString();
        }
        bp->UnpinPage(r.base, false);
      }
      lm->Unlock(locker_, PageLock(r.base));

      // Copy qualifying records.
      {
        Page* leaf_page;
        s = bp->FetchPage(r.leaf, &leaf_page);
        if (!s.ok()) {
          lm->Unlock(locker_, PageLock(r.leaf));
          return s;
        }
        std::shared_lock<PageLatch> latch(leaf_page->latch());
        LeafNode ln(leaf_page);
        bool exact;
        for (int i = ln.LowerBound(probe, &exact); i < ln.Count(); ++i) {
          buf_.emplace_back(ln.KeyAt(i).ToString(), ln.ValueAt(i).ToString());
        }
        bp->UnpinPage(r.leaf, false);
      }
      lm->Unlock(locker_, PageLock(r.leaf));
      leaf_trail_.push_back(r.leaf);
    }

    if (!has_upper) {
      // Last leaf of its base page: the upper bound is the next base page's
      // low mark (racy but monotonic; see header).
      std::string lm_key;
      PageId next_base;
      Status s = tree_->NextBasePage(locker_, base_last_sep, &lm_key, &next_base);
      if (s.ok()) {
        upper = lm_key;
        has_upper = true;
      } else if (!s.IsNotFound()) {
        return s;
      }
    }
    upper_bound_ = upper;
    has_upper_ = has_upper;

    if (!buf_.empty()) return Status::OK();
    if (!has_upper_) return Status::OK();  // end of tree, Valid() == false
    probe = upper_bound_;
  }
  return Status::Busy("iterator hop budget exhausted");
}

Status BTreeIterator::Next() {
  if (idx_ + 1 < buf_.size()) {
    ++idx_;
    return Status::OK();
  }
  if (!has_upper_) {
    idx_ = buf_.size();  // end
    return Status::OK();
  }
  return LoadBatch(upper_bound_);
}

}  // namespace soreorg
